file(REMOVE_RECURSE
  "CMakeFiles/alidrone_gps.dir/driver.cpp.o"
  "CMakeFiles/alidrone_gps.dir/driver.cpp.o.d"
  "CMakeFiles/alidrone_gps.dir/fix.cpp.o"
  "CMakeFiles/alidrone_gps.dir/fix.cpp.o.d"
  "CMakeFiles/alidrone_gps.dir/receiver_sim.cpp.o"
  "CMakeFiles/alidrone_gps.dir/receiver_sim.cpp.o.d"
  "CMakeFiles/alidrone_gps.dir/trace.cpp.o"
  "CMakeFiles/alidrone_gps.dir/trace.cpp.o.d"
  "libalidrone_gps.a"
  "libalidrone_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
