
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gps/driver.cpp" "src/gps/CMakeFiles/alidrone_gps.dir/driver.cpp.o" "gcc" "src/gps/CMakeFiles/alidrone_gps.dir/driver.cpp.o.d"
  "/root/repo/src/gps/fix.cpp" "src/gps/CMakeFiles/alidrone_gps.dir/fix.cpp.o" "gcc" "src/gps/CMakeFiles/alidrone_gps.dir/fix.cpp.o.d"
  "/root/repo/src/gps/receiver_sim.cpp" "src/gps/CMakeFiles/alidrone_gps.dir/receiver_sim.cpp.o" "gcc" "src/gps/CMakeFiles/alidrone_gps.dir/receiver_sim.cpp.o.d"
  "/root/repo/src/gps/trace.cpp" "src/gps/CMakeFiles/alidrone_gps.dir/trace.cpp.o" "gcc" "src/gps/CMakeFiles/alidrone_gps.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/alidrone_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/alidrone_nmea.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alidrone_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
