file(REMOVE_RECURSE
  "libalidrone_gps.a"
)
