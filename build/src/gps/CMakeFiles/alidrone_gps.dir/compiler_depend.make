# Empty compiler generated dependencies file for alidrone_gps.
# This may be replaced when dependencies are built.
