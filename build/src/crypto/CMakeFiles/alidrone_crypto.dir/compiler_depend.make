# Empty compiler generated dependencies file for alidrone_crypto.
# This may be replaced when dependencies are built.
