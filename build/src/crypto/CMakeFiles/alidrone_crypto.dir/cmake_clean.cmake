file(REMOVE_RECURSE
  "CMakeFiles/alidrone_crypto.dir/bigint.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/bytes.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/montgomery.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/montgomery.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/prime.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/random.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/random.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/rsa.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/sha1.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/alidrone_crypto.dir/sha256.cpp.o"
  "CMakeFiles/alidrone_crypto.dir/sha256.cpp.o.d"
  "libalidrone_crypto.a"
  "libalidrone_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
