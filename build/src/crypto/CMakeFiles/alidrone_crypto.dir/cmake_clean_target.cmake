file(REMOVE_RECURSE
  "libalidrone_crypto.a"
)
