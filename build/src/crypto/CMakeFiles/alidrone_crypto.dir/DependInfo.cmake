
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/bytes.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/bytes.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/ecdsa.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/ecdsa.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/ecdsa.cpp.o.d"
  "/root/repo/src/crypto/montgomery.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/montgomery.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/montgomery.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/prime.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/random.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/random.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/alidrone_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/alidrone_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
