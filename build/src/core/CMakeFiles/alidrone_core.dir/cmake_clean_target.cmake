file(REMOVE_RECURSE
  "libalidrone_core.a"
)
