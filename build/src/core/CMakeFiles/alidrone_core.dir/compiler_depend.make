# Empty compiler generated dependencies file for alidrone_core.
# This may be replaced when dependencies are built.
