
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attacks.cpp" "src/core/CMakeFiles/alidrone_core.dir/attacks.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/attacks.cpp.o.d"
  "/root/repo/src/core/audit_log.cpp" "src/core/CMakeFiles/alidrone_core.dir/audit_log.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/audit_log.cpp.o.d"
  "/root/repo/src/core/auditor.cpp" "src/core/CMakeFiles/alidrone_core.dir/auditor.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/auditor.cpp.o.d"
  "/root/repo/src/core/drone_client.cpp" "src/core/CMakeFiles/alidrone_core.dir/drone_client.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/drone_client.cpp.o.d"
  "/root/repo/src/core/flight.cpp" "src/core/CMakeFiles/alidrone_core.dir/flight.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/flight.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/alidrone_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/poa.cpp" "src/core/CMakeFiles/alidrone_core.dir/poa.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/poa.cpp.o.d"
  "/root/repo/src/core/poa_store.cpp" "src/core/CMakeFiles/alidrone_core.dir/poa_store.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/poa_store.cpp.o.d"
  "/root/repo/src/core/preflight.cpp" "src/core/CMakeFiles/alidrone_core.dir/preflight.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/preflight.cpp.o.d"
  "/root/repo/src/core/privacy.cpp" "src/core/CMakeFiles/alidrone_core.dir/privacy.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/privacy.cpp.o.d"
  "/root/repo/src/core/registry_store.cpp" "src/core/CMakeFiles/alidrone_core.dir/registry_store.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/registry_store.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/core/CMakeFiles/alidrone_core.dir/sampler.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/sampler.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/alidrone_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/sufficiency.cpp" "src/core/CMakeFiles/alidrone_core.dir/sufficiency.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/sufficiency.cpp.o.d"
  "/root/repo/src/core/thinning.cpp" "src/core/CMakeFiles/alidrone_core.dir/thinning.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/thinning.cpp.o.d"
  "/root/repo/src/core/zone_index.cpp" "src/core/CMakeFiles/alidrone_core.dir/zone_index.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/zone_index.cpp.o.d"
  "/root/repo/src/core/zone_owner.cpp" "src/core/CMakeFiles/alidrone_core.dir/zone_owner.cpp.o" "gcc" "src/core/CMakeFiles/alidrone_core.dir/zone_owner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/alidrone_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alidrone_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gps/CMakeFiles/alidrone_gps.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/alidrone_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/alidrone_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alidrone_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/alidrone_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/alidrone_nmea.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
