# Empty compiler generated dependencies file for alidrone_geo.
# This may be replaced when dependencies are built.
