file(REMOVE_RECURSE
  "CMakeFiles/alidrone_geo.dir/ellipse.cpp.o"
  "CMakeFiles/alidrone_geo.dir/ellipse.cpp.o.d"
  "CMakeFiles/alidrone_geo.dir/ellipsoid.cpp.o"
  "CMakeFiles/alidrone_geo.dir/ellipsoid.cpp.o.d"
  "CMakeFiles/alidrone_geo.dir/geopoint.cpp.o"
  "CMakeFiles/alidrone_geo.dir/geopoint.cpp.o.d"
  "CMakeFiles/alidrone_geo.dir/polygon.cpp.o"
  "CMakeFiles/alidrone_geo.dir/polygon.cpp.o.d"
  "libalidrone_geo.a"
  "libalidrone_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
