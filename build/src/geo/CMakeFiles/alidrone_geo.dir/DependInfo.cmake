
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/ellipse.cpp" "src/geo/CMakeFiles/alidrone_geo.dir/ellipse.cpp.o" "gcc" "src/geo/CMakeFiles/alidrone_geo.dir/ellipse.cpp.o.d"
  "/root/repo/src/geo/ellipsoid.cpp" "src/geo/CMakeFiles/alidrone_geo.dir/ellipsoid.cpp.o" "gcc" "src/geo/CMakeFiles/alidrone_geo.dir/ellipsoid.cpp.o.d"
  "/root/repo/src/geo/geopoint.cpp" "src/geo/CMakeFiles/alidrone_geo.dir/geopoint.cpp.o" "gcc" "src/geo/CMakeFiles/alidrone_geo.dir/geopoint.cpp.o.d"
  "/root/repo/src/geo/polygon.cpp" "src/geo/CMakeFiles/alidrone_geo.dir/polygon.cpp.o" "gcc" "src/geo/CMakeFiles/alidrone_geo.dir/polygon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
