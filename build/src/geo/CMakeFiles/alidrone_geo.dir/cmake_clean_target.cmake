file(REMOVE_RECURSE
  "libalidrone_geo.a"
)
