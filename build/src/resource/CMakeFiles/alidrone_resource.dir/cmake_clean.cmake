file(REMOVE_RECURSE
  "CMakeFiles/alidrone_resource.dir/cost_model.cpp.o"
  "CMakeFiles/alidrone_resource.dir/cost_model.cpp.o.d"
  "libalidrone_resource.a"
  "libalidrone_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
