# Empty compiler generated dependencies file for alidrone_resource.
# This may be replaced when dependencies are built.
