file(REMOVE_RECURSE
  "libalidrone_resource.a"
)
