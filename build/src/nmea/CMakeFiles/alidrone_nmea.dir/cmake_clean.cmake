file(REMOVE_RECURSE
  "CMakeFiles/alidrone_nmea.dir/gga.cpp.o"
  "CMakeFiles/alidrone_nmea.dir/gga.cpp.o.d"
  "CMakeFiles/alidrone_nmea.dir/rmc.cpp.o"
  "CMakeFiles/alidrone_nmea.dir/rmc.cpp.o.d"
  "CMakeFiles/alidrone_nmea.dir/sentence.cpp.o"
  "CMakeFiles/alidrone_nmea.dir/sentence.cpp.o.d"
  "CMakeFiles/alidrone_nmea.dir/vtg.cpp.o"
  "CMakeFiles/alidrone_nmea.dir/vtg.cpp.o.d"
  "libalidrone_nmea.a"
  "libalidrone_nmea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_nmea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
