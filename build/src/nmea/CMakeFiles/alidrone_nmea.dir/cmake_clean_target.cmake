file(REMOVE_RECURSE
  "libalidrone_nmea.a"
)
