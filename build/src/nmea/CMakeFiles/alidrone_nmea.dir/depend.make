# Empty dependencies file for alidrone_nmea.
# This may be replaced when dependencies are built.
