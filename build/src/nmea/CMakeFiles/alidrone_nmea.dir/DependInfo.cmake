
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmea/gga.cpp" "src/nmea/CMakeFiles/alidrone_nmea.dir/gga.cpp.o" "gcc" "src/nmea/CMakeFiles/alidrone_nmea.dir/gga.cpp.o.d"
  "/root/repo/src/nmea/rmc.cpp" "src/nmea/CMakeFiles/alidrone_nmea.dir/rmc.cpp.o" "gcc" "src/nmea/CMakeFiles/alidrone_nmea.dir/rmc.cpp.o.d"
  "/root/repo/src/nmea/sentence.cpp" "src/nmea/CMakeFiles/alidrone_nmea.dir/sentence.cpp.o" "gcc" "src/nmea/CMakeFiles/alidrone_nmea.dir/sentence.cpp.o.d"
  "/root/repo/src/nmea/vtg.cpp" "src/nmea/CMakeFiles/alidrone_nmea.dir/vtg.cpp.o" "gcc" "src/nmea/CMakeFiles/alidrone_nmea.dir/vtg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/alidrone_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
