# Empty dependencies file for alidrone_net.
# This may be replaced when dependencies are built.
