file(REMOVE_RECURSE
  "CMakeFiles/alidrone_net.dir/codec.cpp.o"
  "CMakeFiles/alidrone_net.dir/codec.cpp.o.d"
  "CMakeFiles/alidrone_net.dir/message_bus.cpp.o"
  "CMakeFiles/alidrone_net.dir/message_bus.cpp.o.d"
  "libalidrone_net.a"
  "libalidrone_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
