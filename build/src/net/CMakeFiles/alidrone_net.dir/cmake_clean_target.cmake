file(REMOVE_RECURSE
  "libalidrone_net.a"
)
