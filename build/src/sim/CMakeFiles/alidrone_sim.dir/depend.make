# Empty dependencies file for alidrone_sim.
# This may be replaced when dependencies are built.
