
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/planner.cpp" "src/sim/CMakeFiles/alidrone_sim.dir/planner.cpp.o" "gcc" "src/sim/CMakeFiles/alidrone_sim.dir/planner.cpp.o.d"
  "/root/repo/src/sim/route.cpp" "src/sim/CMakeFiles/alidrone_sim.dir/route.cpp.o" "gcc" "src/sim/CMakeFiles/alidrone_sim.dir/route.cpp.o.d"
  "/root/repo/src/sim/scenarios.cpp" "src/sim/CMakeFiles/alidrone_sim.dir/scenarios.cpp.o" "gcc" "src/sim/CMakeFiles/alidrone_sim.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/alidrone_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/gps/CMakeFiles/alidrone_gps.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alidrone_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/alidrone_nmea.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
