file(REMOVE_RECURSE
  "CMakeFiles/alidrone_sim.dir/planner.cpp.o"
  "CMakeFiles/alidrone_sim.dir/planner.cpp.o.d"
  "CMakeFiles/alidrone_sim.dir/route.cpp.o"
  "CMakeFiles/alidrone_sim.dir/route.cpp.o.d"
  "CMakeFiles/alidrone_sim.dir/scenarios.cpp.o"
  "CMakeFiles/alidrone_sim.dir/scenarios.cpp.o.d"
  "libalidrone_sim.a"
  "libalidrone_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
