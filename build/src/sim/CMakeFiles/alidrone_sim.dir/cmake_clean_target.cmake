file(REMOVE_RECURSE
  "libalidrone_sim.a"
)
