file(REMOVE_RECURSE
  "CMakeFiles/alidrone_tee.dir/gps_sampler_ta.cpp.o"
  "CMakeFiles/alidrone_tee.dir/gps_sampler_ta.cpp.o.d"
  "CMakeFiles/alidrone_tee.dir/key_vault.cpp.o"
  "CMakeFiles/alidrone_tee.dir/key_vault.cpp.o.d"
  "CMakeFiles/alidrone_tee.dir/plausibility.cpp.o"
  "CMakeFiles/alidrone_tee.dir/plausibility.cpp.o.d"
  "CMakeFiles/alidrone_tee.dir/sample_codec.cpp.o"
  "CMakeFiles/alidrone_tee.dir/sample_codec.cpp.o.d"
  "CMakeFiles/alidrone_tee.dir/secure_monitor.cpp.o"
  "CMakeFiles/alidrone_tee.dir/secure_monitor.cpp.o.d"
  "CMakeFiles/alidrone_tee.dir/secure_storage.cpp.o"
  "CMakeFiles/alidrone_tee.dir/secure_storage.cpp.o.d"
  "CMakeFiles/alidrone_tee.dir/trusted_app.cpp.o"
  "CMakeFiles/alidrone_tee.dir/trusted_app.cpp.o.d"
  "libalidrone_tee.a"
  "libalidrone_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
