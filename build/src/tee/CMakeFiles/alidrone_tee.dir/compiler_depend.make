# Empty compiler generated dependencies file for alidrone_tee.
# This may be replaced when dependencies are built.
