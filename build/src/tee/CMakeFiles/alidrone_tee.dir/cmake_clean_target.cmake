file(REMOVE_RECURSE
  "libalidrone_tee.a"
)
