
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/gps_sampler_ta.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/gps_sampler_ta.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/gps_sampler_ta.cpp.o.d"
  "/root/repo/src/tee/key_vault.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/key_vault.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/key_vault.cpp.o.d"
  "/root/repo/src/tee/plausibility.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/plausibility.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/plausibility.cpp.o.d"
  "/root/repo/src/tee/sample_codec.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/sample_codec.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/sample_codec.cpp.o.d"
  "/root/repo/src/tee/secure_monitor.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/secure_monitor.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/secure_monitor.cpp.o.d"
  "/root/repo/src/tee/secure_storage.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/secure_storage.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/secure_storage.cpp.o.d"
  "/root/repo/src/tee/trusted_app.cpp" "src/tee/CMakeFiles/alidrone_tee.dir/trusted_app.cpp.o" "gcc" "src/tee/CMakeFiles/alidrone_tee.dir/trusted_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/alidrone_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gps/CMakeFiles/alidrone_gps.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/alidrone_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/alidrone_nmea.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/alidrone_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
