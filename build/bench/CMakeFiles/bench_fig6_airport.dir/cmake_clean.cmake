file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_airport.dir/bench_fig6_airport.cpp.o"
  "CMakeFiles/bench_fig6_airport.dir/bench_fig6_airport.cpp.o.d"
  "bench_fig6_airport"
  "bench_fig6_airport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_airport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
