# Empty compiler generated dependencies file for bench_fig6_airport.
# This may be replaced when dependencies are built.
