file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_ablation.dir/bench_adaptive_ablation.cpp.o"
  "CMakeFiles/bench_adaptive_ablation.dir/bench_adaptive_ablation.cpp.o.d"
  "bench_adaptive_ablation"
  "bench_adaptive_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
