file(REMOVE_RECURSE
  "CMakeFiles/bench_signing_alternatives.dir/bench_signing_alternatives.cpp.o"
  "CMakeFiles/bench_signing_alternatives.dir/bench_signing_alternatives.cpp.o.d"
  "bench_signing_alternatives"
  "bench_signing_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signing_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
