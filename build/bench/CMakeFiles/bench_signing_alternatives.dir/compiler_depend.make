# Empty compiler generated dependencies file for bench_signing_alternatives.
# This may be replaced when dependencies are built.
