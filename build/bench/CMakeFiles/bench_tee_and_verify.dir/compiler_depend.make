# Empty compiler generated dependencies file for bench_tee_and_verify.
# This may be replaced when dependencies are built.
