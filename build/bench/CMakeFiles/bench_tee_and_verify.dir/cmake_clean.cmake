file(REMOVE_RECURSE
  "CMakeFiles/bench_tee_and_verify.dir/bench_tee_and_verify.cpp.o"
  "CMakeFiles/bench_tee_and_verify.dir/bench_tee_and_verify.cpp.o.d"
  "bench_tee_and_verify"
  "bench_tee_and_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tee_and_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
