file(REMOVE_RECURSE
  "CMakeFiles/bench_geo_micro.dir/bench_geo_micro.cpp.o"
  "CMakeFiles/bench_geo_micro.dir/bench_geo_micro.cpp.o.d"
  "bench_geo_micro"
  "bench_geo_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
