file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_residential.dir/bench_fig8_residential.cpp.o"
  "CMakeFiles/bench_fig8_residential.dir/bench_fig8_residential.cpp.o.d"
  "bench_fig8_residential"
  "bench_fig8_residential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_residential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
