file(REMOVE_RECURSE
  "CMakeFiles/delivery_mission.dir/delivery_mission.cpp.o"
  "CMakeFiles/delivery_mission.dir/delivery_mission.cpp.o.d"
  "delivery_mission"
  "delivery_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
