# Empty dependencies file for delivery_mission.
# This may be replaced when dependencies are built.
