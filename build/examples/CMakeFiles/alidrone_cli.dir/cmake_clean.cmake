file(REMOVE_RECURSE
  "CMakeFiles/alidrone_cli.dir/alidrone_cli.cpp.o"
  "CMakeFiles/alidrone_cli.dir/alidrone_cli.cpp.o.d"
  "alidrone_cli"
  "alidrone_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alidrone_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
