# Empty dependencies file for alidrone_cli.
# This may be replaced when dependencies are built.
