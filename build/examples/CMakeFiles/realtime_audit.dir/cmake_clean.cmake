file(REMOVE_RECURSE
  "CMakeFiles/realtime_audit.dir/realtime_audit.cpp.o"
  "CMakeFiles/realtime_audit.dir/realtime_audit.cpp.o.d"
  "realtime_audit"
  "realtime_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
