# Empty compiler generated dependencies file for realtime_audit.
# This may be replaced when dependencies are built.
