# Empty compiler generated dependencies file for route_planner_demo.
# This may be replaced when dependencies are built.
