file(REMOVE_RECURSE
  "CMakeFiles/route_planner_demo.dir/route_planner_demo.cpp.o"
  "CMakeFiles/route_planner_demo.dir/route_planner_demo.cpp.o.d"
  "route_planner_demo"
  "route_planner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_planner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
