file(REMOVE_RECURSE
  "CMakeFiles/airport_scenario.dir/airport_scenario.cpp.o"
  "CMakeFiles/airport_scenario.dir/airport_scenario.cpp.o.d"
  "airport_scenario"
  "airport_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airport_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
