# Empty compiler generated dependencies file for airport_scenario.
# This may be replaced when dependencies are built.
