file(REMOVE_RECURSE
  "CMakeFiles/residential_scenario.dir/residential_scenario.cpp.o"
  "CMakeFiles/residential_scenario.dir/residential_scenario.cpp.o.d"
  "residential_scenario"
  "residential_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residential_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
