# Empty compiler generated dependencies file for residential_scenario.
# This may be replaced when dependencies are built.
