# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_airport_scenario "/root/repo/build/examples/airport_scenario")
set_tests_properties(example_airport_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_residential_scenario "/root/repo/build/examples/residential_scenario")
set_tests_properties(example_residential_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_demo "/root/repo/build/examples/attack_demo")
set_tests_properties(example_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privacy_audit "/root/repo/build/examples/privacy_audit")
set_tests_properties(example_privacy_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_route_planner_demo "/root/repo/build/examples/route_planner_demo")
set_tests_properties(example_route_planner_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_delivery_mission "/root/repo/build/examples/delivery_mission")
set_tests_properties(example_delivery_mission PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_realtime_audit "/root/repo/build/examples/realtime_audit")
set_tests_properties(example_realtime_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_simulate "/root/repo/build/examples/alidrone_cli" "simulate" "--scenario" "airport" "--out" "/root/repo/build/examples/smoke.poa")
set_tests_properties(example_cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_verify "/root/repo/build/examples/alidrone_cli" "verify" "--scenario" "airport" "--poa" "/root/repo/build/examples/smoke.poa")
set_tests_properties(example_cli_verify PROPERTIES  DEPENDS "example_cli_simulate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
