# Empty compiler generated dependencies file for core_mode_matrix_test.
# This may be replaced when dependencies are built.
