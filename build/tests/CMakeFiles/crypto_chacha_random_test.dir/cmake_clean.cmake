file(REMOVE_RECURSE
  "CMakeFiles/crypto_chacha_random_test.dir/crypto_chacha_random_test.cpp.o"
  "CMakeFiles/crypto_chacha_random_test.dir/crypto_chacha_random_test.cpp.o.d"
  "crypto_chacha_random_test"
  "crypto_chacha_random_test.pdb"
  "crypto_chacha_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_chacha_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
