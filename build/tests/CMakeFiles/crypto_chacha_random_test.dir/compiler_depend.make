# Empty compiler generated dependencies file for crypto_chacha_random_test.
# This may be replaced when dependencies are built.
