# Empty compiler generated dependencies file for resource_net_test.
# This may be replaced when dependencies are built.
