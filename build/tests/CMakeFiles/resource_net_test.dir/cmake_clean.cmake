file(REMOVE_RECURSE
  "CMakeFiles/resource_net_test.dir/resource_net_test.cpp.o"
  "CMakeFiles/resource_net_test.dir/resource_net_test.cpp.o.d"
  "resource_net_test"
  "resource_net_test.pdb"
  "resource_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
