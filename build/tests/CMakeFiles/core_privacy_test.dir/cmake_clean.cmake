file(REMOVE_RECURSE
  "CMakeFiles/core_privacy_test.dir/core_privacy_test.cpp.o"
  "CMakeFiles/core_privacy_test.dir/core_privacy_test.cpp.o.d"
  "core_privacy_test"
  "core_privacy_test.pdb"
  "core_privacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_privacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
