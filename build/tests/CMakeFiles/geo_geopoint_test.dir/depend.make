# Empty dependencies file for geo_geopoint_test.
# This may be replaced when dependencies are built.
