file(REMOVE_RECURSE
  "CMakeFiles/geo_geopoint_test.dir/geo_geopoint_test.cpp.o"
  "CMakeFiles/geo_geopoint_test.dir/geo_geopoint_test.cpp.o.d"
  "geo_geopoint_test"
  "geo_geopoint_test.pdb"
  "geo_geopoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_geopoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
