# Empty dependencies file for geo_vec_test.
# This may be replaced when dependencies are built.
