file(REMOVE_RECURSE
  "CMakeFiles/geo_vec_test.dir/geo_vec_test.cpp.o"
  "CMakeFiles/geo_vec_test.dir/geo_vec_test.cpp.o.d"
  "geo_vec_test"
  "geo_vec_test.pdb"
  "geo_vec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
