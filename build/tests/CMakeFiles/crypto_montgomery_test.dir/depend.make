# Empty dependencies file for crypto_montgomery_test.
# This may be replaced when dependencies are built.
