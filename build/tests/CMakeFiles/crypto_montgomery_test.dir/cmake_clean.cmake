file(REMOVE_RECURSE
  "CMakeFiles/crypto_montgomery_test.dir/crypto_montgomery_test.cpp.o"
  "CMakeFiles/crypto_montgomery_test.dir/crypto_montgomery_test.cpp.o.d"
  "crypto_montgomery_test"
  "crypto_montgomery_test.pdb"
  "crypto_montgomery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_montgomery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
