file(REMOVE_RECURSE
  "CMakeFiles/geo_polygon_test.dir/geo_polygon_test.cpp.o"
  "CMakeFiles/geo_polygon_test.dir/geo_polygon_test.cpp.o.d"
  "geo_polygon_test"
  "geo_polygon_test.pdb"
  "geo_polygon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_polygon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
