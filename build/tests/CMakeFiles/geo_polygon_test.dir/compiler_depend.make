# Empty compiler generated dependencies file for geo_polygon_test.
# This may be replaced when dependencies are built.
