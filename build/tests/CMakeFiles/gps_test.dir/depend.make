# Empty dependencies file for gps_test.
# This may be replaced when dependencies are built.
