file(REMOVE_RECURSE
  "CMakeFiles/gps_test.dir/gps_test.cpp.o"
  "CMakeFiles/gps_test.dir/gps_test.cpp.o.d"
  "gps_test"
  "gps_test.pdb"
  "gps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
