# Empty compiler generated dependencies file for tee_plausibility_test.
# This may be replaced when dependencies are built.
