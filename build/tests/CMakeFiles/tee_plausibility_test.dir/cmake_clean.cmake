file(REMOVE_RECURSE
  "CMakeFiles/tee_plausibility_test.dir/tee_plausibility_test.cpp.o"
  "CMakeFiles/tee_plausibility_test.dir/tee_plausibility_test.cpp.o.d"
  "tee_plausibility_test"
  "tee_plausibility_test.pdb"
  "tee_plausibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tee_plausibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
