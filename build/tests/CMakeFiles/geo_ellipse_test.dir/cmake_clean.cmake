file(REMOVE_RECURSE
  "CMakeFiles/geo_ellipse_test.dir/geo_ellipse_test.cpp.o"
  "CMakeFiles/geo_ellipse_test.dir/geo_ellipse_test.cpp.o.d"
  "geo_ellipse_test"
  "geo_ellipse_test.pdb"
  "geo_ellipse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_ellipse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
