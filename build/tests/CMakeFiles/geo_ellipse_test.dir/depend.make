# Empty dependencies file for geo_ellipse_test.
# This may be replaced when dependencies are built.
