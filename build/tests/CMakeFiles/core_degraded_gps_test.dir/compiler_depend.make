# Empty compiler generated dependencies file for core_degraded_gps_test.
# This may be replaced when dependencies are built.
