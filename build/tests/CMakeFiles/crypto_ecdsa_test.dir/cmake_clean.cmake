file(REMOVE_RECURSE
  "CMakeFiles/crypto_ecdsa_test.dir/crypto_ecdsa_test.cpp.o"
  "CMakeFiles/crypto_ecdsa_test.dir/crypto_ecdsa_test.cpp.o.d"
  "crypto_ecdsa_test"
  "crypto_ecdsa_test.pdb"
  "crypto_ecdsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_ecdsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
