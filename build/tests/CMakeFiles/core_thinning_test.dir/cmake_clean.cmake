file(REMOVE_RECURSE
  "CMakeFiles/core_thinning_test.dir/core_thinning_test.cpp.o"
  "CMakeFiles/core_thinning_test.dir/core_thinning_test.cpp.o.d"
  "core_thinning_test"
  "core_thinning_test.pdb"
  "core_thinning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_thinning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
