# Empty dependencies file for core_thinning_test.
# This may be replaced when dependencies are built.
