file(REMOVE_RECURSE
  "CMakeFiles/core_misc_coverage_test.dir/core_misc_coverage_test.cpp.o"
  "CMakeFiles/core_misc_coverage_test.dir/core_misc_coverage_test.cpp.o.d"
  "core_misc_coverage_test"
  "core_misc_coverage_test.pdb"
  "core_misc_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_misc_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
