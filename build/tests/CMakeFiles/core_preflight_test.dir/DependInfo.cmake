
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_preflight_test.cpp" "tests/CMakeFiles/core_preflight_test.dir/core_preflight_test.cpp.o" "gcc" "tests/CMakeFiles/core_preflight_test.dir/core_preflight_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/alidrone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alidrone_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/alidrone_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/gps/CMakeFiles/alidrone_gps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/alidrone_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/alidrone_nmea.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/alidrone_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alidrone_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/alidrone_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
