# Empty compiler generated dependencies file for core_preflight_test.
# This may be replaced when dependencies are built.
