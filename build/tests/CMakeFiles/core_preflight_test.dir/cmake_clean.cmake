file(REMOVE_RECURSE
  "CMakeFiles/core_preflight_test.dir/core_preflight_test.cpp.o"
  "CMakeFiles/core_preflight_test.dir/core_preflight_test.cpp.o.d"
  "core_preflight_test"
  "core_preflight_test.pdb"
  "core_preflight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_preflight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
