file(REMOVE_RECURSE
  "CMakeFiles/core_zone_index_test.dir/core_zone_index_test.cpp.o"
  "CMakeFiles/core_zone_index_test.dir/core_zone_index_test.cpp.o.d"
  "core_zone_index_test"
  "core_zone_index_test.pdb"
  "core_zone_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_zone_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
