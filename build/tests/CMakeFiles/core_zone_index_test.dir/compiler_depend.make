# Empty compiler generated dependencies file for core_zone_index_test.
# This may be replaced when dependencies are built.
