file(REMOVE_RECURSE
  "CMakeFiles/core_multidrone_test.dir/core_multidrone_test.cpp.o"
  "CMakeFiles/core_multidrone_test.dir/core_multidrone_test.cpp.o.d"
  "core_multidrone_test"
  "core_multidrone_test.pdb"
  "core_multidrone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multidrone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
