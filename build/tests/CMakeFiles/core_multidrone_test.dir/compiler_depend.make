# Empty compiler generated dependencies file for core_multidrone_test.
# This may be replaced when dependencies are built.
