# Empty dependencies file for core_poa_test.
# This may be replaced when dependencies are built.
