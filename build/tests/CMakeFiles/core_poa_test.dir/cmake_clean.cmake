file(REMOVE_RECURSE
  "CMakeFiles/core_poa_test.dir/core_poa_test.cpp.o"
  "CMakeFiles/core_poa_test.dir/core_poa_test.cpp.o.d"
  "core_poa_test"
  "core_poa_test.pdb"
  "core_poa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_poa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
