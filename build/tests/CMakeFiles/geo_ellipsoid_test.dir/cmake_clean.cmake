file(REMOVE_RECURSE
  "CMakeFiles/geo_ellipsoid_test.dir/geo_ellipsoid_test.cpp.o"
  "CMakeFiles/geo_ellipsoid_test.dir/geo_ellipsoid_test.cpp.o.d"
  "geo_ellipsoid_test"
  "geo_ellipsoid_test.pdb"
  "geo_ellipsoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_ellipsoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
