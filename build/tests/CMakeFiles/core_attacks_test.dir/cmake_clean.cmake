file(REMOVE_RECURSE
  "CMakeFiles/core_attacks_test.dir/core_attacks_test.cpp.o"
  "CMakeFiles/core_attacks_test.dir/core_attacks_test.cpp.o.d"
  "core_attacks_test"
  "core_attacks_test.pdb"
  "core_attacks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_attacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
