# Empty compiler generated dependencies file for core_attacks_test.
# This may be replaced when dependencies are built.
