# Empty dependencies file for core_retention_test.
# This may be replaced when dependencies are built.
