file(REMOVE_RECURSE
  "CMakeFiles/core_retention_test.dir/core_retention_test.cpp.o"
  "CMakeFiles/core_retention_test.dir/core_retention_test.cpp.o.d"
  "core_retention_test"
  "core_retention_test.pdb"
  "core_retention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_retention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
