// Drone-side signing throughput: the TEE hot path of Table II.
//
// Per-sample in-TEE RSA signing caps the achievable GPS sampling rate, so
// every layer of the signing fast path is measured in isolation:
//   - cold:    rsa_sign_blinded — per-call window tables and a fresh
//              blinding pair (mod_pow(e, n) + extended-Euclid inverse)
//              every signature;
//   - planned: RsaSigningPlan with blinding_refresh_interval = 1 — cached
//              CRT window plans, still a fresh blinding pair per call;
//   - reuse:   the full fast path — plans + blinding-pair squaring with
//              the default re-randomize interval;
//   - batch:   the coalesced TA invoke, which amortizes the world-switch
//              pair across a queue of samples (cost-model effect; the
//              crypto per sample equals the reuse path).
// All three fast-path variants emit byte-identical signatures to
// rsa_sign; tests/crypto_signing_plan_test.cpp asserts that.
//
// The TESLA hash-chain PoA mode replaces the per-sample private operation
// with one chain-key HMAC tag (µs-class); the BM_Tesla* benches measure
// it raw and through the full TA command. Before any benchmark runs the
// process executes three mandatory exit checks (CI perf-smoke fails on
// the nonzero exit):
//   1. tesla-alloc-guard:  the per-sample tag path (chain-key derivation
//      + MAC-key separation + tag) performs ZERO heap allocations;
//   2. tesla-speedup:      a TESLA tag is >= 100x faster than a planned
//      2048-bit RSA signature (the Table II headline of the mode);
//   3. tesla-one-rsa:      a whole TESLA flight through the TA charges
//      exactly ONE RSA private operation (the kTeslaBegin commitment) —
//      per-sample and disclosure commands stay symmetric-only.
//
// Pass --json <path> for flat {bench, config, metric, value} records.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "crypto/hash_chain.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "gps/receiver_sim.h"
#include "obs/metrics.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

// ---- allocation counter (same idiom as bench_verify_throughput) --------
// Counts every scalar/array new; frees are uncounted (the metric is
// allocations per tag, not live bytes).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

/// One deterministic key per size, generated once (2048-bit generation is
/// seconds of prime search; it must not run per benchmark).
const crypto::RsaKeyPair& key_for_bits(std::size_t bits) {
  static crypto::RsaKeyPair k512 = [] {
    crypto::DeterministicRandom rng(std::string_view("sign-bench-512"));
    return crypto::generate_rsa_keypair(512, rng);
  }();
  static crypto::RsaKeyPair k1024 = [] {
    crypto::DeterministicRandom rng(std::string_view("sign-bench-1024"));
    return crypto::generate_rsa_keypair(1024, rng);
  }();
  static crypto::RsaKeyPair k2048 = [] {
    crypto::DeterministicRandom rng(std::string_view("sign-bench-2048"));
    return crypto::generate_rsa_keypair(2048, rng);
  }();
  switch (bits) {
    case 512:
      return k512;
    case 1024:
      return k1024;
    default:
      return k2048;
  }
}

crypto::Bytes sample_message() {
  gps::GpsFix fix;
  fix.position = {40.1164, -88.2434};
  fix.unix_time = kT0;
  return tee::encode_sample(fix);
}

void set_sign_counters(benchmark::State& state) {
  state.counters["signs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

/// Cold path: what GpsSamplerTA::get_gps_auth cost before the plan.
void BM_SignBlindedCold(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  crypto::DeterministicRandom rng(std::string_view("cold-blinding"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::rsa_sign_blinded(kp.priv, msg, crypto::HashAlgorithm::kSha1, rng));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignBlindedCold)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Plan only: cached CRT window plans, fresh blinding pair per signature.
void BM_SignPlanned(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  crypto::RsaSigningPlanConfig config;
  config.blinding_refresh_interval = 1;
  crypto::RsaSigningPlan plan(kp.priv, config);
  crypto::DeterministicRandom rng(std::string_view("planned-blinding"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.sign(msg, crypto::HashAlgorithm::kSha1, rng));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignPlanned)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Full fast path: plans + blinding-pair reuse (default interval).
void BM_SignPlannedReuse(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  crypto::RsaSigningPlan plan(kp.priv);
  crypto::DeterministicRandom rng(std::string_view("reuse-blinding"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.sign(msg, crypto::HashAlgorithm::kSha1, rng));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignPlannedReuse)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Unblinded reference (rsa_sign): the floor the blinded paths approach.
void BM_SignUnblinded(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::rsa_sign(kp.priv, msg, crypto::HashAlgorithm::kSha1));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignUnblinded)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Coalesced TA batch: N queued fixes signed in one world switch. Arg =
/// batch size. Reports signs/sec plus world-switch pairs per sample (the
/// amortization the cost model charges: 1/N instead of 1).
void BM_CoalescedTaBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  tee::DroneTee tee = bench::make_bench_tee("sign-throughput-device");

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim sim(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.1164 + 1e-6 * (t - kT0), -88.2434};
    f.unix_time = t;
    return f;
  });

  const std::uint64_t switches_before = tee.monitor().world_switches();
  std::uint64_t total_samples = 0;
  double t = kT0;
  for (auto _ : state) {
    state.PauseTiming();  // queueing fixes is the receiver's job, not the TA's
    for (std::size_t i = 0; i < batch; ++i) {
      t += 1.0 / rc.update_rate_hz;
      for (const std::string& s : sim.advance_to(t)) tee.feed_gps(s);
    }
    state.ResumeTiming();
    const tee::InvokeResult r = tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsAuthCoalesced));
    benchmark::DoNotOptimize(r);
    total_samples += r.outputs.size() / 2;
  }
  const std::uint64_t switch_pairs =
      (tee.monitor().world_switches() - switches_before) / 2;
  state.counters["signs_per_sec"] = benchmark::Counter(
      static_cast<double>(total_samples), benchmark::Counter::kIsRate);
  state.counters["switch_pairs_per_sample"] =
      total_samples > 0
          ? static_cast<double>(switch_pairs) / static_cast<double>(total_samples)
          : 0.0;
}
BENCHMARK(BM_CoalescedTaBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// ---- TESLA hash-chain mode ---------------------------------------------

/// Raw TESLA per-sample authentication: derive K_i from the sender's
/// checkpoint cache, separate the MAC key, tag the canonical sample.
/// Arg = chain length (the √N checkpoint walk is part of the honest
/// per-sample cost).
void BM_TeslaTagPerSample(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  crypto::ChainKey seed{};
  seed.fill(0x42);
  const crypto::HashChain chain(seed, length);
  const crypto::Bytes msg = sample_message();
  std::uint64_t interval = 0;
  for (auto _ : state) {
    interval = interval % length + 1;
    const crypto::ChainKey mac_key = crypto::tesla_mac_key(chain.key(interval));
    benchmark::DoNotOptimize(crypto::tesla_tag(mac_key, interval, msg));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_TeslaTagPerSample)->Arg(1024)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

/// The full TA command (kGetGpsTesla): world-switch pair + sample
/// encoding + chain-key tag, i.e. what replaces kGetGpsAuth's per-sample
/// RSA signature in TESLA mode.
void BM_TeslaTaPerSample(benchmark::State& state) {
  tee::DroneTee tee = bench::make_bench_tee("tesla-throughput-device");

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim sim(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.1164 + 1e-6 * (t - kT0), -88.2434};
    f.unix_time = t;
    return f;
  });
  for (const std::string& s : sim.advance_to(kT0)) tee.feed_gps(s);

  const auto be32 = [](std::uint32_t v) {
    return crypto::Bytes{static_cast<std::uint8_t>(v >> 24),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v)};
  };
  const crypto::Bytes interval_us{0, 0, 0, 0, 0, 0x03, 0x0D, 0x40};  // 200ms
  const std::vector<crypto::Bytes> begin_params{be32(1024), be32(2),
                                                interval_us};
  const tee::InvokeResult begun = tee.monitor().invoke(
      tee.sampler_uuid(), static_cast<std::uint32_t>(tee::SamplerCommand::kTeslaBegin),
      begin_params);
  if (!begun.ok()) state.SkipWithError("kTeslaBegin failed");

  const std::uint64_t switches_before = tee.monitor().world_switches();
  std::uint64_t samples = 0;
  for (auto _ : state) {
    // The receiver is not advanced: the steady-state per-sample cost is
    // measured on one fix/interval, unbounded by the chain length.
    const tee::InvokeResult r = tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsTesla));
    benchmark::DoNotOptimize(r);
    if (r.ok()) ++samples;
  }
  const std::uint64_t switch_pairs =
      (tee.monitor().world_switches() - switches_before) / 2;
  state.counters["signs_per_sec"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
  state.counters["switch_pairs_per_sample"] =
      samples > 0
          ? static_cast<double>(switch_pairs) / static_cast<double>(samples)
          : 0.0;
}
BENCHMARK(BM_TeslaTaPerSample)->Unit(benchmark::kMicrosecond);

}  // namespace

// ---- mandatory exit checks (CI perf-smoke) ------------------------------

/// The per-sample TESLA tag path must not touch the heap: chain-key
/// re-derivation from a checkpoint, MAC-key separation and the tag itself
/// are all fixed-width stack computation.
bool run_tesla_alloc_guard() {
  crypto::ChainKey seed{};
  seed.fill(0x42);
  const crypto::HashChain chain(seed, 1024);
  const crypto::Bytes msg = sample_message();
  // Warm-up (first call may fault in lazily allocated internals).
  (void)crypto::tesla_tag(crypto::tesla_mac_key(chain.key(1)), 1, msg);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  std::size_t tags = 0;
  for (std::uint64_t interval = 1; interval <= 1024; ++interval) {
    const crypto::ChainKey mac_key = crypto::tesla_mac_key(chain.key(interval));
    const crypto::ChainKey tag = crypto::tesla_tag(mac_key, interval, msg);
    if (tag[0] == tag[1] && tag[1] == tag[2] && tag[2] == tag[3] &&
        tag[0] == 0) {
      // Statistically impossible for HMAC output; keeps the loop live.
      std::fprintf(stderr, "tesla-alloc-guard: degenerate tag\n");
      return false;
    }
    ++tags;
  }
  const std::uint64_t delta =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  std::fprintf(stderr, "tesla-alloc-guard: %zu tags, %llu heap allocations\n",
               tags, static_cast<unsigned long long>(delta));
  return delta == 0;
}

/// The mode's headline: per-sample TESLA authentication must be at least
/// 100x faster than the planned-RSA per-sample signature at 2048 bits.
bool run_tesla_speedup_check() {
  const crypto::RsaKeyPair& kp = key_for_bits(2048);
  const crypto::Bytes msg = sample_message();
  crypto::RsaSigningPlan plan(kp.priv);
  crypto::DeterministicRandom rng(std::string_view("speedup-blinding"));

  using clock = std::chrono::steady_clock;
  constexpr int kRsaIters = 12;
  (void)plan.sign(msg, crypto::HashAlgorithm::kSha1, rng);  // warm the plan
  const auto rsa_start = clock::now();
  for (int i = 0; i < kRsaIters; ++i) {
    benchmark::DoNotOptimize(plan.sign(msg, crypto::HashAlgorithm::kSha1, rng));
  }
  const double rsa_s =
      std::chrono::duration<double>(clock::now() - rsa_start).count() /
      kRsaIters;

  crypto::ChainKey seed{};
  seed.fill(0x42);
  const crypto::HashChain chain(seed, 1024);
  constexpr int kTagIters = 200000;
  const auto tag_start = clock::now();
  for (int i = 0; i < kTagIters; ++i) {
    const std::uint64_t interval = static_cast<std::uint64_t>(i % 1024) + 1;
    const crypto::ChainKey mac_key = crypto::tesla_mac_key(chain.key(interval));
    benchmark::DoNotOptimize(crypto::tesla_tag(mac_key, interval, msg));
  }
  const double tag_s =
      std::chrono::duration<double>(clock::now() - tag_start).count() /
      kTagIters;

  const double speedup = tag_s > 0.0 ? rsa_s / tag_s : 0.0;
  std::fprintf(stderr,
               "tesla-speedup: planned RSA-2048 %.3f ms/sign, TESLA tag "
               "%.3f us/tag -> %.0fx (need >= 100x)\n",
               rsa_s * 1e3, tag_s * 1e6, speedup);
  return speedup >= 100.0;
}

/// Sum of every key-vault private-operation counter in the process-wide
/// registry (each DroneTee's vault registers its own instance scope).
static std::uint64_t vault_private_ops() {
  std::uint64_t total = 0;
  for (const obs::MetricRecord& record :
       obs::MetricsRegistry::global().snapshot()) {
    if (record.name.find("key_vault") != std::string::npos &&
        record.name.find(".private_ops") != std::string::npos) {
      total += static_cast<std::uint64_t>(record.value);
    }
  }
  return total;
}

/// A whole TESLA flight — commitment, 32 tagged samples, one disclosure —
/// must charge exactly one RSA private operation (the commitment).
bool run_tesla_one_rsa_check() {
  tee::DroneTee tee = bench::make_bench_tee("tesla-one-rsa-device");

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim sim(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.1164 + 1e-6 * (t - kT0), -88.2434};
    f.unix_time = t;
    return f;
  });
  for (const std::string& s : sim.advance_to(kT0)) tee.feed_gps(s);

  const std::uint64_t ops_before = vault_private_ops();

  const auto be32 = [](std::uint32_t v) {
    return crypto::Bytes{static_cast<std::uint8_t>(v >> 24),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v)};
  };
  const crypto::Bytes interval_us{0, 0, 0, 0, 0, 0x03, 0x0D, 0x40};  // 200ms
  const std::vector<crypto::Bytes> begin_params{be32(1024), be32(2),
                                                interval_us};
  const tee::InvokeResult begun = tee.monitor().invoke(
      tee.sampler_uuid(), static_cast<std::uint32_t>(tee::SamplerCommand::kTeslaBegin),
      begin_params);
  if (!begun.ok()) {
    std::fprintf(stderr, "tesla-one-rsa: kTeslaBegin failed\n");
    return false;
  }

  double t = kT0;
  std::size_t samples = 0;
  for (int i = 0; i < 32; ++i) {
    t += 1.0 / rc.update_rate_hz;
    for (const std::string& s : sim.advance_to(t)) tee.feed_gps(s);
    const tee::InvokeResult r = tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsTesla));
    if (r.ok()) ++samples;
  }
  if (samples != 32) {
    std::fprintf(stderr, "tesla-one-rsa: %zu/32 samples tagged\n", samples);
    return false;
  }
  // By now the TA's GPS time is t0 + 6.4s = interval 33; index 1 matured
  // at t0 + (1 + 2) * 0.2s, so its disclosure must succeed RSA-free.
  const std::vector<crypto::Bytes> disclose_params{
      crypto::Bytes{0, 0, 0, 0, 0, 0, 0, 1}};
  const tee::InvokeResult disclosed = tee.monitor().invoke(
      tee.sampler_uuid(),
      static_cast<std::uint32_t>(tee::SamplerCommand::kTeslaDisclose),
      disclose_params);
  if (!disclosed.ok()) {
    std::fprintf(stderr, "tesla-one-rsa: kTeslaDisclose failed\n");
    return false;
  }

  const std::uint64_t delta = vault_private_ops() - ops_before;
  std::fprintf(stderr,
               "tesla-one-rsa: %zu samples + 1 disclosure, %llu RSA private "
               "ops (need exactly 1)\n",
               samples, static_cast<unsigned long long>(delta));
  return delta == 1;
}

}  // namespace alidrone

int main(int argc, char** argv) {
  if (!alidrone::run_tesla_alloc_guard()) return 1;
  if (!alidrone::run_tesla_speedup_check()) return 1;
  if (!alidrone::run_tesla_one_rsa_check()) return 1;
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
