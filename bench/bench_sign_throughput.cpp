// Drone-side signing throughput: the TEE hot path of Table II.
//
// Per-sample in-TEE RSA signing caps the achievable GPS sampling rate, so
// every layer of the signing fast path is measured in isolation:
//   - cold:    rsa_sign_blinded — per-call window tables and a fresh
//              blinding pair (mod_pow(e, n) + extended-Euclid inverse)
//              every signature;
//   - planned: RsaSigningPlan with blinding_refresh_interval = 1 — cached
//              CRT window plans, still a fresh blinding pair per call;
//   - reuse:   the full fast path — plans + blinding-pair squaring with
//              the default re-randomize interval;
//   - batch:   the coalesced TA invoke, which amortizes the world-switch
//              pair across a queue of samples (cost-model effect; the
//              crypto per sample equals the reuse path).
// All three fast-path variants emit byte-identical signatures to
// rsa_sign; tests/crypto_signing_plan_test.cpp asserts that.
//
// Pass --json <path> for flat {bench, config, metric, value} records.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "gps/receiver_sim.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

/// One deterministic key per size, generated once (2048-bit generation is
/// seconds of prime search; it must not run per benchmark).
const crypto::RsaKeyPair& key_for_bits(std::size_t bits) {
  static crypto::RsaKeyPair k512 = [] {
    crypto::DeterministicRandom rng(std::string_view("sign-bench-512"));
    return crypto::generate_rsa_keypair(512, rng);
  }();
  static crypto::RsaKeyPair k1024 = [] {
    crypto::DeterministicRandom rng(std::string_view("sign-bench-1024"));
    return crypto::generate_rsa_keypair(1024, rng);
  }();
  static crypto::RsaKeyPair k2048 = [] {
    crypto::DeterministicRandom rng(std::string_view("sign-bench-2048"));
    return crypto::generate_rsa_keypair(2048, rng);
  }();
  switch (bits) {
    case 512:
      return k512;
    case 1024:
      return k1024;
    default:
      return k2048;
  }
}

crypto::Bytes sample_message() {
  gps::GpsFix fix;
  fix.position = {40.1164, -88.2434};
  fix.unix_time = kT0;
  return tee::encode_sample(fix);
}

void set_sign_counters(benchmark::State& state) {
  state.counters["signs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

/// Cold path: what GpsSamplerTA::get_gps_auth cost before the plan.
void BM_SignBlindedCold(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  crypto::DeterministicRandom rng(std::string_view("cold-blinding"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::rsa_sign_blinded(kp.priv, msg, crypto::HashAlgorithm::kSha1, rng));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignBlindedCold)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Plan only: cached CRT window plans, fresh blinding pair per signature.
void BM_SignPlanned(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  crypto::RsaSigningPlanConfig config;
  config.blinding_refresh_interval = 1;
  crypto::RsaSigningPlan plan(kp.priv, config);
  crypto::DeterministicRandom rng(std::string_view("planned-blinding"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.sign(msg, crypto::HashAlgorithm::kSha1, rng));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignPlanned)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Full fast path: plans + blinding-pair reuse (default interval).
void BM_SignPlannedReuse(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  crypto::RsaSigningPlan plan(kp.priv);
  crypto::DeterministicRandom rng(std::string_view("reuse-blinding"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.sign(msg, crypto::HashAlgorithm::kSha1, rng));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignPlannedReuse)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Unblinded reference (rsa_sign): the floor the blinded paths approach.
void BM_SignUnblinded(benchmark::State& state) {
  const crypto::RsaKeyPair& kp = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const crypto::Bytes msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::rsa_sign(kp.priv, msg, crypto::HashAlgorithm::kSha1));
  }
  set_sign_counters(state);
}
BENCHMARK(BM_SignUnblinded)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Coalesced TA batch: N queued fixes signed in one world switch. Arg =
/// batch size. Reports signs/sec plus world-switch pairs per sample (the
/// amortization the cost model charges: 1/N instead of 1).
void BM_CoalescedTaBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  tee::DroneTee tee = bench::make_bench_tee("sign-throughput-device");

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim sim(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.1164 + 1e-6 * (t - kT0), -88.2434};
    f.unix_time = t;
    return f;
  });

  const std::uint64_t switches_before = tee.monitor().world_switches();
  std::uint64_t total_samples = 0;
  double t = kT0;
  for (auto _ : state) {
    state.PauseTiming();  // queueing fixes is the receiver's job, not the TA's
    for (std::size_t i = 0; i < batch; ++i) {
      t += 1.0 / rc.update_rate_hz;
      for (const std::string& s : sim.advance_to(t)) tee.feed_gps(s);
    }
    state.ResumeTiming();
    const tee::InvokeResult r = tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsAuthCoalesced));
    benchmark::DoNotOptimize(r);
    total_samples += r.outputs.size() / 2;
  }
  const std::uint64_t switch_pairs =
      (tee.monitor().world_switches() - switches_before) / 2;
  state.counters["signs_per_sec"] = benchmark::Counter(
      static_cast<double>(total_samples), benchmark::Counter::kIsRate);
  state.counters["switch_pairs_per_sample"] =
      total_samples > 0
          ? static_cast<double>(switch_pairs) / static_cast<double>(total_samples)
          : 0.0;
}
BENCHMARK(BM_CoalescedTaBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) {
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
