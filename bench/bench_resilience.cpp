// Resilience-layer microbenchmarks: what does the ReliableChannel wrapper
// cost on the happy path (it should be a strict pass-through), what does a
// retried request cost when faults bite, and how expensive are the
// per-request idempotency ids and breaker checks that make the layer safe.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <string>

#include "crypto/bytes.h"
#include "net/message_bus.h"
#include "resilience/circuit_breaker.h"
#include "resilience/reliable_channel.h"
#include "resilience/sim_clock.h"

namespace alidrone::resilience {
namespace {

constexpr const char* kEndpoint = "bench.echo";

crypto::Bytes payload() { return crypto::Bytes(64, 0x5A); }

net::MessageBus& echo_bus() {
  static net::MessageBus bus = [] {
    net::MessageBus b;
    b.register_endpoint(kEndpoint,
                        [](const crypto::Bytes& request) { return request; });
    return b;
  }();
  return bus;
}

void BM_RawBusRequest(benchmark::State& state) {
  net::MessageBus& bus = echo_bus();
  const crypto::Bytes body = payload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.request(kEndpoint, body));
  }
}
BENCHMARK(BM_RawBusRequest);

void BM_ReliableChannelPassThrough(benchmark::State& state) {
  net::MessageBus& bus = echo_bus();
  SimClock clock;
  ReliableChannel channel(bus, clock);
  const crypto::Bytes body = payload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.request(kEndpoint, body));
  }
  // The pass-through claim, as measurable counters: one bus attempt per
  // logical request and a clock that never moved.
  state.counters["attempts_per_request"] =
      static_cast<double>(channel.counters().attempts) /
      static_cast<double>(channel.counters().requests);
  state.counters["clock_advances"] = static_cast<double>(clock.advances());
}
BENCHMARK(BM_ReliableChannelPassThrough);

void BM_ReliableChannelRetriedRequest(benchmark::State& state) {
  // A never-ending intermittent outage: each attempt independently fails
  // with probability 0.5, so a logical request averages two bus attempts
  // plus the backoff bookkeeping between them.
  net::MessageBus bus;
  bus.register_endpoint(kEndpoint,
                        [](const crypto::Bytes& request) { return request; });
  net::MessageBus::FaultConfig faults;
  faults.seed = 42;
  net::FaultWindow window;
  window.endpoint = kEndpoint;
  window.start = 0.0;
  window.end = 1e18;
  window.kind = net::FaultKind::kOutage;
  window.probability = 0.5;
  faults.schedule.push_back(window);
  bus.set_faults(faults);

  SimClock clock;
  ReliableChannel::Config config;
  config.retry.max_attempts = 8;
  config.retry.deadline_s = 0.0;  // unlimited; the attempt cap bounds work
  config.breaker.failure_threshold = 64;  // keep the breaker out of the path
  ReliableChannel channel(bus, clock, config);
  const crypto::Bytes body = payload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.request(kEndpoint, body));
  }
  state.counters["attempts_per_request"] =
      static_cast<double>(channel.counters().attempts) /
      static_cast<double>(channel.counters().requests);
}
BENCHMARK(BM_ReliableChannelRetriedRequest);

void BM_RequestIdDerivation(benchmark::State& state) {
  const crypto::Bytes body = payload();
  const std::string endpoint(kEndpoint);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReliableChannel::request_id(endpoint, body));
  }
}
BENCHMARK(BM_RequestIdDerivation);

void BM_CircuitBreakerHotPath(benchmark::State& state) {
  CircuitBreaker breaker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(breaker.allow(0.0));
    breaker.on_success();
  }
}
BENCHMARK(BM_CircuitBreakerHotPath);

}  // namespace
}  // namespace alidrone::resilience

int main(int argc, char** argv) {
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
