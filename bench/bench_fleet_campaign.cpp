// Fleet campaign bench (FlightActor + FleetScheduler PR).
//
// Flies one adversarial fleet campaign — N concurrent flights on the
// deterministic scheduler, submitted through the batched AuditorIngest
// into the ledger-anchored audit pipeline — and reports end-to-end
// throughput plus the Auditor's per-attack-class detection quality.
// Built-in shape checks so CI can run this as a smoke test:
//
//   - the same seed re-run with a different scheduler worker count must
//     reproduce the campaign fingerprint byte-identically;
//   - chain-forge and replay attacks must score precision/recall 1.0.
//
// Usage: bench_fleet_campaign [--flights N] [--workers W] [--shards S]
//                             [--verify-threads V] [--seed X]
//                             [--json <path>] [--metrics <path>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "sim/campaign.h"

namespace alidrone {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Options {
  std::size_t flights = 128;
  std::size_t workers = 4;
  std::size_t shards = 8;
  std::size_t verify_threads = 2;
  std::uint64_t seed = 1;
};

std::optional<std::size_t> take_size_flag(int& argc, char** argv,
                                          const std::string& name) {
  const auto text = bench::take_path_flag(argc, argv, name);
  if (!text) return std::nullopt;
  return static_cast<std::size_t>(std::strtoull(text->c_str(), nullptr, 10));
}

int run(int argc, char** argv) {
  const auto json_path = bench::take_json_flag(argc, argv);
  bench::MetricsDump metrics_dump(bench::take_metrics_flag(argc, argv),
                                  "bench_fleet_campaign");

  Options opt;
  if (const auto v = take_size_flag(argc, argv, "flights")) opt.flights = *v;
  if (const auto v = take_size_flag(argc, argv, "workers")) opt.workers = *v;
  if (const auto v = take_size_flag(argc, argv, "shards")) opt.shards = *v;
  if (const auto v = take_size_flag(argc, argv, "verify-threads")) {
    opt.verify_threads = *v;
  }
  if (const auto v = take_size_flag(argc, argv, "seed")) opt.seed = *v;

  sim::CampaignConfig config;
  config.flights = opt.flights;
  config.seed = opt.seed;
  config.scheduler_workers = opt.workers;
  config.auditor_shards = opt.shards;
  config.ingest_verify_threads = opt.verify_threads;

  const double t0 = now_s();
  const sim::CampaignReport report = sim::run_campaign(config);
  const double elapsed = now_s() - t0;
  const double proofs_per_sec =
      static_cast<double>(report.outcomes.size()) / elapsed;

  std::printf("fleet campaign: %zu flights, %zu workers, %zu shards, %zu "
              "verify threads, seed %llu\n",
              opt.flights, opt.workers, opt.shards, opt.verify_threads,
              static_cast<unsigned long long>(opt.seed));
  std::printf("  %.2f s wall, %.1f proofs/sec, %llu scheduler steps in %llu "
              "batches (max batch %llu)\n",
              elapsed, proofs_per_sec,
              static_cast<unsigned long long>(report.scheduler.steps),
              static_cast<unsigned long long>(report.scheduler.batches),
              static_cast<unsigned long long>(report.scheduler.max_batch));
  std::printf("  %-15s %8s %8s %10s %8s\n", "class", "flights", "flagged",
              "precision", "recall");
  for (std::size_t c = 0; c < sim::kAttackClassCount; ++c) {
    const sim::ClassMetrics& m = report.per_class[c];
    std::printf("  %-15s %8zu %8zu %10.3f %8.3f\n",
                sim::attack_class_name(static_cast<sim::AttackClass>(c)),
                m.flights, m.flagged, m.precision, m.recall);
  }
  std::printf("  ledger: %llu entries, root %.16s...\n",
              static_cast<unsigned long long>(report.ledger_entries),
              report.ledger_root_hex.c_str());

  // Shape check 1: a serial re-run of the same seed must land on the
  // same fingerprint (worker-count independence).
  sim::CampaignConfig serial = config;
  serial.scheduler_workers = 1;
  const sim::CampaignReport replay = sim::run_campaign(serial);
  if (replay.fingerprint() != report.fingerprint()) {
    std::fprintf(stderr, "FAIL: fingerprint differs between %zu-worker and "
                 "serial runs of seed %llu\n",
                 opt.workers, static_cast<unsigned long long>(opt.seed));
    return 1;
  }
  // Shape check 2: the hard-reject attack classes must be detected
  // perfectly.
  for (const sim::AttackClass c :
       {sim::AttackClass::kChainForge, sim::AttackClass::kReplay}) {
    const sim::ClassMetrics& m = report.per_class[static_cast<std::size_t>(c)];
    if (m.flights == 0) continue;
    if (m.precision != 1.0 || m.recall != 1.0) {
      std::fprintf(stderr, "FAIL: %s precision/recall %.3f/%.3f (want 1/1)\n",
                   sim::attack_class_name(c), m.precision, m.recall);
      return 1;
    }
  }
  std::printf("  replay check: serial fingerprint identical; "
              "chain-forge/replay at 1.0/1.0\n");

  if (json_path) {
    bench::JsonRecordWriter writer(*json_path);
    const std::string cfg = "flights=" + std::to_string(opt.flights) +
                            ",workers=" + std::to_string(opt.workers) +
                            ",shards=" + std::to_string(opt.shards);
    writer.write("bench_fleet_campaign", cfg, "proofs_per_sec", proofs_per_sec);
    writer.write("bench_fleet_campaign", cfg, "wall_seconds", elapsed);
    writer.write("bench_fleet_campaign", cfg, "scheduler_batches",
                 static_cast<double>(report.scheduler.batches));
    writer.write("bench_fleet_campaign", cfg, "scheduler_max_batch",
                 static_cast<double>(report.scheduler.max_batch));
    writer.write("bench_fleet_campaign", cfg, "ledger_entries",
                 static_cast<double>(report.ledger_entries));
    for (std::size_t c = 0; c < sim::kAttackClassCount; ++c) {
      const sim::ClassMetrics& m = report.per_class[c];
      if (m.flights == 0) continue;
      const std::string name =
          sim::attack_class_name(static_cast<sim::AttackClass>(c));
      writer.write("bench_fleet_campaign", cfg, name + "_precision",
                   m.precision);
      writer.write("bench_fleet_campaign", cfg, name + "_recall", m.recall);
    }
    if (!writer.ok()) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path->c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) { return alidrone::run(argc, argv); }
