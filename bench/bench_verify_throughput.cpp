// PoA verification throughput: the Auditor-side hot path at scale.
//
// Measures proofs-verified-per-second for the serial loop vs. the
// ThreadPool-backed batch path (1/2/4/8 workers), and isolates the
// Montgomery context cache by re-verifying under a cold cache
// (R^2 setup rebuilt every operation) vs. the warm process-wide cache.
// Same harness and JSON shape as the other google-benchmark micro
// benches: pass --benchmark_format=json, or --json <path> for the flat
// {bench, config, metric, value} perf-trajectory records (bench_util.h).
// The process also runs a mandatory zero-allocation guard before the
// benchmarks: a warm RsaVerifyEngine must complete its steady-state
// verify loop with ZERO heap allocations (the CI perf-smoke job fails on
// the nonzero exit). The counting-operator-new idiom matches
// bench_auditor_scale.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/auditor.h"
#include "core/messages.h"
#include "core/poa.h"
#include "crypto/batch_verify.h"
#include "crypto/montgomery.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "runtime/thread_pool.h"
#include "tee/sample_codec.h"

// ---- allocation counter -------------------------------------------------
// Counts every scalar/array new. Frees are uncounted (the metric is
// allocations per verify, not live bytes).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

/// One registered drone plus a corpus of valid per-sample-signed proofs
/// (the paper-baseline mode, one RSA verify per sample).
struct VerifyCorpus {
  crypto::DeterministicRandom auditor_rng{std::string_view("throughput-auditor")};
  core::Auditor auditor{512, auditor_rng};
  crypto::RsaKeyPair tee_keys;
  std::vector<core::ProofOfAlibi> poas;
  std::size_t total_samples = 0;

  VerifyCorpus(std::size_t n_poas, std::size_t samples_per_poa) {
    crypto::DeterministicRandom key_rng(std::string_view("throughput-keys"));
    tee_keys = crypto::generate_rsa_keypair(512, key_rng);
    const crypto::RsaKeyPair op_keys = crypto::generate_rsa_keypair(512, key_rng);

    core::RegisterDroneRequest reg;
    reg.operator_key_n = op_keys.pub.n.to_bytes();
    reg.operator_key_e = op_keys.pub.e.to_bytes();
    reg.tee_key_n = tee_keys.pub.n.to_bytes();
    reg.tee_key_e = tee_keys.pub.e.to_bytes();
    const core::DroneId drone_id = auditor.register_drone(reg).drone_id;

    for (std::size_t p = 0; p < n_poas; ++p) {
      core::ProofOfAlibi poa;
      poa.drone_id = drone_id;
      poa.mode = core::AuthMode::kRsaPerSample;
      poa.hash = crypto::HashAlgorithm::kSha1;
      for (std::size_t s = 0; s < samples_per_poa; ++s) {
        gps::GpsFix fix;
        fix.position = geo::GeoPoint{40.0 + 0.001 * static_cast<double>(p),
                                     -88.0 + 0.001 * static_cast<double>(s)};
        fix.unix_time = kT0 + static_cast<double>(p * samples_per_poa + s);
        core::SignedSample sample;
        sample.sample = tee::encode_sample(fix);
        sample.signature = crypto::rsa_sign(tee_keys.priv, sample.sample, poa.hash);
        poa.samples.push_back(std::move(sample));
        ++total_samples;
      }
      poas.push_back(std::move(poa));
    }
  }

  /// Keep retention from growing without bound across iterations.
  void reset_retention() { auditor.expire_poas(kT0 + 1e12); }
};

VerifyCorpus& corpus() {
  static VerifyCorpus c(/*n_poas=*/32, /*samples_per_poa=*/8);
  return c;
}

void set_counters(benchmark::State& state, const VerifyCorpus& c) {
  state.counters["proofs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * c.poas.size()),
      benchmark::Counter::kIsRate);
  state.counters["sample_verifies_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * c.total_samples),
      benchmark::Counter::kIsRate);
  state.counters["proofs_per_batch"] = static_cast<double>(c.poas.size());
}

/// Serial baseline: verify_poa in a loop (warm context cache).
void BM_VerifyBatchSerial(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.auditor.verify_poa_batch(c.poas, kT0, nullptr));
    c.reset_retention();
  }
  set_counters(state, c);
}
BENCHMARK(BM_VerifyBatchSerial)->Unit(benchmark::kMillisecond);

/// Pooled batch path; Arg = worker count.
void BM_VerifyBatchPooled(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.auditor.verify_poa_batch(c.poas, kT0, &pool));
    c.reset_retention();
  }
  set_counters(state, c);
}
BENCHMARK(BM_VerifyBatchPooled)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Montgomery cache ablation — the serial sample-verify sweep over the
/// whole corpus with the process-wide context cache emptied before every
/// verify (every operation pays the R^2 setup division again) vs. the
/// warm cache.
void BM_SampleVerifiesSerialColdContext(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  for (auto _ : state) {
    for (const core::ProofOfAlibi& poa : c.poas) {
      for (const core::SignedSample& s : poa.samples) {
        crypto::MontgomeryContextCache::global().clear();
        benchmark::DoNotOptimize(crypto::rsa_verify(
            c.tee_keys.pub, s.sample, s.signature, crypto::HashAlgorithm::kSha1));
      }
    }
  }
  set_counters(state, c);
}
BENCHMARK(BM_SampleVerifiesSerialColdContext)->Unit(benchmark::kMillisecond);

void BM_SampleVerifiesSerialCachedContext(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  for (auto _ : state) {
    for (const core::ProofOfAlibi& poa : c.poas) {
      for (const core::SignedSample& s : poa.samples) {
        benchmark::DoNotOptimize(crypto::rsa_verify(
            c.tee_keys.pub, s.sample, s.signature, crypto::HashAlgorithm::kSha1));
      }
    }
  }
  set_counters(state, c);
}
BENCHMARK(BM_SampleVerifiesSerialCachedContext)->Unit(benchmark::kMillisecond);

/// The allocation-free per-key engine, reused across the whole corpus —
/// the verify inner loop the Auditor actually runs.
void BM_SampleVerifiesEngine(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  crypto::RsaVerifyEngine engine(c.tee_keys.pub);
  for (auto _ : state) {
    for (const core::ProofOfAlibi& poa : c.poas) {
      for (const core::SignedSample& s : poa.samples) {
        benchmark::DoNotOptimize(
            engine.verify(s.sample, s.signature, crypto::HashAlgorithm::kSha1));
      }
    }
  }
  set_counters(state, c);
}
BENCHMARK(BM_SampleVerifiesEngine)->Unit(benchmark::kMillisecond);

/// Batched small-exponents verification over the corpus. Args: items per
/// flush, challenge width (0 = plain product test).
void BM_SampleVerifiesBatched(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  crypto::BatchVerifyConfig config;
  config.max_batch = static_cast<std::size_t>(state.range(0));
  config.check_bits = static_cast<std::size_t>(state.range(1));
  crypto::BatchRsaVerifier bv(c.tee_keys.pub, config);
  for (auto _ : state) {
    // One stream across the whole corpus (one drone, one key) so K really
    // reaches max_batch rather than the per-PoA sample count.
    std::size_t tag = 0;
    for (const core::ProofOfAlibi& poa : c.poas) {
      for (const core::SignedSample& s : poa.samples) {
        if (!bv.enqueue(tag++, s.sample, s.signature,
                        crypto::HashAlgorithm::kSha1)) {
          std::abort();  // corpus is all-valid
        }
        if (bv.full()) benchmark::DoNotOptimize(bv.flush());
      }
    }
    benchmark::DoNotOptimize(bv.flush());
  }
  set_counters(state, c);
  state.counters["fallbacks"] = static_cast<double>(bv.fallbacks());
}
BENCHMARK(BM_SampleVerifiesBatched)
    ->Args({8, 16})->Args({32, 16})->Args({8, 0})->Args({32, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace

/// Mandatory pre-benchmark guard: a warm engine's steady-state verify
/// loop must not allocate. Returns false (process exits 1) on any heap
/// traffic — the regression CI is watching for.
bool run_verify_alloc_guard() {
  VerifyCorpus& c = corpus();
  crypto::RsaVerifyEngine engine(c.tee_keys.pub);
  const core::ProofOfAlibi& poa = c.poas.front();
  for (const core::SignedSample& s : poa.samples) {  // warm-up
    if (!engine.verify(s.sample, s.signature, crypto::HashAlgorithm::kSha1)) {
      std::fprintf(stderr, "alloc-guard: warm-up verify failed\n");
      return false;
    }
  }
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  std::size_t verifies = 0;
  for (int round = 0; round < 64; ++round) {
    for (const core::SignedSample& s : poa.samples) {
      if (!engine.verify(s.sample, s.signature, crypto::HashAlgorithm::kSha1)) {
        std::fprintf(stderr, "alloc-guard: verify failed\n");
        return false;
      }
      ++verifies;
    }
  }
  const std::uint64_t delta =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  std::fprintf(stderr, "alloc-guard: %zu verifies, %llu heap allocations\n",
               verifies, static_cast<unsigned long long>(delta));
  return delta == 0;
}

}  // namespace alidrone

int main(int argc, char** argv) {
  if (!alidrone::run_verify_alloc_guard()) return 1;
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
