// PoA verification throughput: the Auditor-side hot path at scale.
//
// Measures proofs-verified-per-second for the serial loop vs. the
// ThreadPool-backed batch path (1/2/4/8 workers), and isolates the
// Montgomery context cache by re-verifying under a cold cache
// (R^2 setup rebuilt every operation) vs. the warm process-wide cache.
// Same harness and JSON shape as the other google-benchmark micro
// benches: pass --benchmark_format=json, or --json <path> for the flat
// {bench, config, metric, value} perf-trajectory records (bench_util.h).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "core/auditor.h"
#include "core/messages.h"
#include "core/poa.h"
#include "crypto/montgomery.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "runtime/thread_pool.h"
#include "tee/sample_codec.h"

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

/// One registered drone plus a corpus of valid per-sample-signed proofs
/// (the paper-baseline mode, one RSA verify per sample).
struct VerifyCorpus {
  crypto::DeterministicRandom auditor_rng{std::string_view("throughput-auditor")};
  core::Auditor auditor{512, auditor_rng};
  crypto::RsaKeyPair tee_keys;
  std::vector<core::ProofOfAlibi> poas;
  std::size_t total_samples = 0;

  VerifyCorpus(std::size_t n_poas, std::size_t samples_per_poa) {
    crypto::DeterministicRandom key_rng(std::string_view("throughput-keys"));
    tee_keys = crypto::generate_rsa_keypair(512, key_rng);
    const crypto::RsaKeyPair op_keys = crypto::generate_rsa_keypair(512, key_rng);

    core::RegisterDroneRequest reg;
    reg.operator_key_n = op_keys.pub.n.to_bytes();
    reg.operator_key_e = op_keys.pub.e.to_bytes();
    reg.tee_key_n = tee_keys.pub.n.to_bytes();
    reg.tee_key_e = tee_keys.pub.e.to_bytes();
    const core::DroneId drone_id = auditor.register_drone(reg).drone_id;

    for (std::size_t p = 0; p < n_poas; ++p) {
      core::ProofOfAlibi poa;
      poa.drone_id = drone_id;
      poa.mode = core::AuthMode::kRsaPerSample;
      poa.hash = crypto::HashAlgorithm::kSha1;
      for (std::size_t s = 0; s < samples_per_poa; ++s) {
        gps::GpsFix fix;
        fix.position = geo::GeoPoint{40.0 + 0.001 * static_cast<double>(p),
                                     -88.0 + 0.001 * static_cast<double>(s)};
        fix.unix_time = kT0 + static_cast<double>(p * samples_per_poa + s);
        core::SignedSample sample;
        sample.sample = tee::encode_sample(fix);
        sample.signature = crypto::rsa_sign(tee_keys.priv, sample.sample, poa.hash);
        poa.samples.push_back(std::move(sample));
        ++total_samples;
      }
      poas.push_back(std::move(poa));
    }
  }

  /// Keep retention from growing without bound across iterations.
  void reset_retention() { auditor.expire_poas(kT0 + 1e12); }
};

VerifyCorpus& corpus() {
  static VerifyCorpus c(/*n_poas=*/32, /*samples_per_poa=*/8);
  return c;
}

void set_counters(benchmark::State& state, const VerifyCorpus& c) {
  state.counters["proofs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * c.poas.size()),
      benchmark::Counter::kIsRate);
  state.counters["sample_verifies_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * c.total_samples),
      benchmark::Counter::kIsRate);
  state.counters["proofs_per_batch"] = static_cast<double>(c.poas.size());
}

/// Serial baseline: verify_poa in a loop (warm context cache).
void BM_VerifyBatchSerial(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.auditor.verify_poa_batch(c.poas, kT0, nullptr));
    c.reset_retention();
  }
  set_counters(state, c);
}
BENCHMARK(BM_VerifyBatchSerial)->Unit(benchmark::kMillisecond);

/// Pooled batch path; Arg = worker count.
void BM_VerifyBatchPooled(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.auditor.verify_poa_batch(c.poas, kT0, &pool));
    c.reset_retention();
  }
  set_counters(state, c);
}
BENCHMARK(BM_VerifyBatchPooled)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Montgomery cache ablation — the serial sample-verify sweep over the
/// whole corpus with the process-wide context cache emptied before every
/// verify (every operation pays the R^2 setup division again) vs. the
/// warm cache.
void BM_SampleVerifiesSerialColdContext(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  for (auto _ : state) {
    for (const core::ProofOfAlibi& poa : c.poas) {
      for (const core::SignedSample& s : poa.samples) {
        crypto::MontgomeryContextCache::global().clear();
        benchmark::DoNotOptimize(crypto::rsa_verify(
            c.tee_keys.pub, s.sample, s.signature, crypto::HashAlgorithm::kSha1));
      }
    }
  }
  set_counters(state, c);
}
BENCHMARK(BM_SampleVerifiesSerialColdContext)->Unit(benchmark::kMillisecond);

void BM_SampleVerifiesSerialCachedContext(benchmark::State& state) {
  VerifyCorpus& c = corpus();
  for (auto _ : state) {
    for (const core::ProofOfAlibi& poa : c.poas) {
      for (const core::SignedSample& s : poa.samples) {
        benchmark::DoNotOptimize(crypto::rsa_verify(
            c.tee_keys.pub, s.sample, s.signature, crypto::HashAlgorithm::kSha1));
      }
    }
  }
  set_counters(state, c);
}
BENCHMARK(BM_SampleVerifiesSerialCachedContext)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) {
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
