// Regenerates Table II: CPU utilization, power and memory of the AliDrone
// client on the Raspberry Pi 3, for fixed 2/3/5 Hz sampling and for the
// two field-study replays, with 1024- and 2048-bit TEE sign keys.
//
// The Pi 3 and its power meter are not available here; utilization is
// computed from the calibrated per-operation cost model
// (resource::CostProfile::raspberry_pi3, see DESIGN.md), power from the
// Kaup et al. model the paper uses (eq. 4), and memory from the measured
// resident set. Sample counts for the field rows come from actually
// running the adaptive sampler over the synthetic scenario routes.
//
// Paper values for comparison:
//   1024-bit: 2Hz 2.17% | 3Hz 3.17% | 5Hz 5.59% | airport 0.024% | res. 1.567%
//   2048-bit: 2Hz 10.94% | 3Hz 16.81% | 5Hz  -   | airport 0.122% | res.  -
//   memory: 3.27 MB (0.3%)
#include <cstdio>

#include "bench_util.h"
#include "resilience/sim_clock.h"

namespace alidrone::bench {
namespace {

using resource::CostProfile;
using resource::CpuAccountant;
using resource::MemoryAccountant;
using resource::PowerModel;

struct Row {
  std::string label;
  bool sustainable = true;
  double cpu_percent = 0.0;  // of the whole 4-core CPU, like `top`
  double power_watts = 0.0;
};

/// Laboratory fixed-rate run: `rate` authenticated samples per second for
/// five minutes, no NFZ logic.
Row fixed_rate_row(const CostProfile& profile, double rate_hz, std::size_t key_bits) {
  constexpr double kDuration = 300.0;  // the paper's 5-minute runs
  // Wall time comes from the shared obs::Clock authority (a SimClock
  // here), the same way the resilience layer keeps time.
  resilience::SimClock clock;
  CpuAccountant cpu(4);
  cpu.bind_clock(&clock);
  clock.advance(kDuration);
  cpu.sync_wall();
  const double samples = rate_hz * kDuration;
  cpu.charge(samples * profile.per_sample_cost(key_bits));

  Row row;
  row.label = std::to_string(static_cast<int>(rate_hz)) + " Hz fixed";
  row.sustainable = cpu.sustainable();
  row.cpu_percent = cpu.system_utilization_percent();
  row.power_watts = PowerModel{}.power_watts(row.cpu_percent / 100.0);
  return row;
}

/// Field replay: adaptive sampling over a scenario; CPU charged per the
/// recorded sample/update counts. The run is declared unsustainable when
/// the densest one-second burst of authenticated samples exceeds one core
/// (the paper omits those cells).
Row field_row(const CostProfile& profile, const sim::Scenario& scenario,
              std::size_t key_bits) {
  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                               geo::kFaaMaxSpeedMps, 5.0);
  const ScenarioRun run = run_scenario(scenario, 5.0, policy);

  CpuAccountant cpu(4);
  cpu.advance_wall(run.duration);
  cpu.charge(static_cast<double>(run.result.poa_samples.size()) *
             profile.per_sample_cost(key_bits));
  // The Adapter's normal-world poll reads a cached fix and evaluates the
  // Algorithm 1 conditions — orders of magnitude cheaper than a sample.
  cpu.charge(static_cast<double>(run.result.gps_updates) * profile.ellipse_check);

  // Peak-burst sustainability: near zones the adaptive sampler needs the
  // full 5 Hz; if a few seconds of that exceed one core, the key size
  // cannot support the flight (the paper leaves those cells blank).
  constexpr double kWindow = 3.0;
  std::vector<double> times;
  for (const core::SignedSample& s : run.result.poa_samples) {
    if (const auto f = s.fix()) times.push_back(f->unix_time);
  }
  std::size_t peak = 0;
  for (std::size_t i = 0, j = 0; i < times.size(); ++i) {
    while (times[i] - times[j] > kWindow) ++j;
    peak = std::max(peak, i - j + 1);
  }
  const bool peak_sustainable =
      static_cast<double>(peak) * profile.per_sample_cost(key_bits) <= kWindow;

  Row row;
  row.label = scenario.name + " (adaptive)";
  row.sustainable = cpu.sustainable() && peak_sustainable;
  row.cpu_percent = cpu.system_utilization_percent();
  row.power_watts = PowerModel{}.power_watts(row.cpu_percent / 100.0);
  return row;
}

void print_row(const Row& row, double paper_cpu, const char* paper_note) {
  if (row.sustainable) {
    std::printf("  %-22s %8.3f %%   %8.4f W      paper: %s\n", row.label.c_str(),
                row.cpu_percent, row.power_watts, paper_note);
  } else {
    std::printf("  %-22s %8s     %8s        paper: %s\n", row.label.c_str(), "-",
                "-", paper_note);
  }
  (void)paper_cpu;
}

}  // namespace
}  // namespace alidrone::bench

int main(int argc, char** argv) {
  using namespace alidrone;
  using namespace alidrone::bench;

  const auto json_path = take_json_flag(argc, argv);
  const MetricsDump metrics_dump(take_metrics_flag(argc, argv),
                                 "bench_table2_overhead");
  const CostProfile profile = CostProfile::raspberry_pi3();
  const sim::Scenario airport = sim::make_airport_scenario(kStartTime);
  const sim::Scenario residential = sim::make_residential_scenario(kStartTime);

  print_header("Table II: CPU, power and memory benchmarks (Pi 3 cost model)");

  std::printf("\nKey size 1024 bits\n");
  print_rule();
  print_row(fixed_rate_row(profile, 2.0, 1024), 2.17, "2.17 %, 1.5817 W");
  print_row(fixed_rate_row(profile, 3.0, 1024), 3.17, "3.17 %, 1.5835 W");
  print_row(fixed_rate_row(profile, 5.0, 1024), 5.59, "5.59 %, 1.5879 W");
  print_row(field_row(profile, airport, 1024), 0.024, "0.024 %, 1.5778 W");
  print_row(field_row(profile, residential, 1024), 1.567, "1.567 %, 1.5806 W");

  std::printf("\nKey size 2048 bits\n");
  print_rule();
  print_row(fixed_rate_row(profile, 2.0, 2048), 10.94, "10.94 %, 1.5976 W");
  print_row(fixed_rate_row(profile, 3.0, 2048), 16.81, "16.81 %, 1.6082 W");
  print_row(fixed_rate_row(profile, 5.0, 2048), -1, "- (cannot sustain 5 Hz)");
  print_row(field_row(profile, airport, 2048), 0.122, "0.122 %, 1.5780 W");
  print_row(field_row(profile, residential, 2048), -1, "- (cannot sustain bursts)");

  const MemoryAccountant mem = MemoryAccountant::alidrone_client();
  std::printf("\nMemory: %.2f MB (%.1f %% of 1 GB)      paper: 3.27 MB (0.3 %%)\n",
              mem.resident_mb(), mem.percent_of_pi3());

  // Shape checks.
  const Row f5_2048 = fixed_rate_row(profile, 5.0, 2048);
  const Row res_2048 = field_row(profile, residential, 2048);
  const Row f5_1024 = fixed_rate_row(profile, 5.0, 1024);
  const Row res_1024 = field_row(profile, residential, 1024);
  const Row air_1024 = field_row(profile, airport, 1024);
  const bool shape_ok = !f5_2048.sustainable && !res_2048.sustainable &&
                        f5_1024.sustainable &&
                        res_1024.cpu_percent < f5_1024.cpu_percent &&
                        air_1024.cpu_percent < res_1024.cpu_percent;
  std::printf("shape vs paper: %s\n", shape_ok ? "OK" : "MISMATCH");

  if (json_path) {
    JsonRecordWriter writer(*json_path);
    const auto record = [&](const char* config, const Row& row) {
      writer.write("table2_overhead", config, "sustainable",
                   row.sustainable ? 1.0 : 0.0);
      if (row.sustainable) {
        writer.write("table2_overhead", config, "cpu_percent", row.cpu_percent);
        writer.write("table2_overhead", config, "power_watts", row.power_watts);
      }
    };
    record("fixed_5hz_1024", f5_1024);
    record("residential_adaptive_1024", res_1024);
    record("airport_adaptive_1024", air_1024);
    record("fixed_5hz_2048", f5_2048);
    record("residential_adaptive_2048", res_2048);
    writer.write("table2_overhead", "client", "memory_mb", mem.resident_mb());
    writer.write("table2_overhead", "all", "shape_ok", shape_ok ? 1.0 : 0.0);
  }
  return shape_ok ? 0 : 1;
}
