// Ablation A1: crypto microbenchmarks grounding Table II and the
// Section VII-A1 discussion — per-operation costs of everything the PoA
// pipeline uses, on this host (absolute numbers differ from the Pi 3;
// ratios are what matter: RSA-2048 sign >> RSA-1024 sign >> HMAC).
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "crypto/chacha20.h"
#include "crypto/ecdsa.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/prime.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {
namespace {

const RsaKeyPair& key_for(std::size_t bits) {
  static const RsaKeyPair k512 = [] {
    DeterministicRandom rng("bench-512");
    return generate_rsa_keypair(512, rng);
  }();
  static const RsaKeyPair k1024 = [] {
    DeterministicRandom rng("bench-1024");
    return generate_rsa_keypair(1024, rng);
  }();
  static const RsaKeyPair k2048 = [] {
    DeterministicRandom rng("bench-2048");
    return generate_rsa_keypair(2048, rng);
  }();
  switch (bits) {
    case 512:
      return k512;
    case 1024:
      return k1024;
    default:
      return k2048;
  }
}

const Bytes& sample_bytes() {
  static const Bytes sample(32, 0x5A);  // one canonical GPS sample
  return sample;
}

void BM_RsaSign(benchmark::State& state) {
  const RsaKeyPair& kp = key_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_sign(kp.priv, sample_bytes(), HashAlgorithm::kSha1));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  const RsaKeyPair& kp = key_for(static_cast<std::size_t>(state.range(0)));
  const Bytes sig = rsa_sign(kp.priv, sample_bytes(), HashAlgorithm::kSha1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_verify(kp.pub, sample_bytes(), sig, HashAlgorithm::kSha1));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaEncrypt(benchmark::State& state) {
  const RsaKeyPair& kp = key_for(static_cast<std::size_t>(state.range(0)));
  DeterministicRandom rng("bench-encrypt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_encrypt(kp.pub, sample_bytes(), rng));
  }
}
BENCHMARK(BM_RsaEncrypt)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaDecrypt(benchmark::State& state) {
  const RsaKeyPair& kp = key_for(static_cast<std::size_t>(state.range(0)));
  DeterministicRandom rng("bench-decrypt");
  const Bytes ct = rsa_encrypt(kp.pub, sample_bytes(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_decrypt(kp.priv, ct));
  }
}
BENCHMARK(BM_RsaDecrypt)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaKeygen(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    DeterministicRandom rng(seed++);
    benchmark::DoNotOptimize(
        generate_rsa_keypair(static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Sha1(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(32)->Arg(1024)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256::mac(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(1024);

void BM_ChaCha20(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaCha20::crypt(key, nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(32)->Arg(4096);

void BM_EcdsaSign(benchmark::State& state) {
  DeterministicRandom rng("bench-ecdsa");
  const EcdsaKeyPair kp = ecdsa_generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_sign(kp.private_key, sample_bytes()));
  }
}
BENCHMARK(BM_EcdsaSign)->Unit(benchmark::kMicrosecond);

void BM_EcdsaVerify(benchmark::State& state) {
  DeterministicRandom rng("bench-ecdsa");
  const EcdsaKeyPair kp = ecdsa_generate(rng);
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, sample_bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify(kp.public_key, sample_bytes(), sig));
  }
}
BENCHMARK(BM_EcdsaVerify)->Unit(benchmark::kMicrosecond);

void BM_EcdsaKeygen(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    DeterministicRandom rng(seed++);
    benchmark::DoNotOptimize(ecdsa_generate(rng));
  }
}
BENCHMARK(BM_EcdsaKeygen)->Unit(benchmark::kMicrosecond);

// Satellite of the 64-bit bignum PR: the surviving BigInt call sites now
// accumulate in place (operator+= / -= reuse this->limbs_ capacity)
// instead of routing through the full-copy operator+ / operator-. The
// pair below is the before/after: same running sum, copy vs in-place.
void BM_BigIntAccumulateCopy(benchmark::State& state) {
  DeterministicRandom rng("bench-bigint-accum");
  const BigInt step = rng.random_bits(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    BigInt sum;
    for (int i = 0; i < 64; ++i) sum = sum + step;  // copy per add
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BigIntAccumulateCopy)->Arg(1024)->Arg(4096);

void BM_BigIntAccumulateInPlace(benchmark::State& state) {
  DeterministicRandom rng("bench-bigint-accum");
  const BigInt step = rng.random_bits(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    BigInt sum;
    for (int i = 0; i < 64; ++i) sum += step;  // capacity reused
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BigIntAccumulateInPlace)->Arg(1024)->Arg(4096);

// ---- TESLA hash-chain primitives (the hash-chain PoA mode) -------------

/// Chain construction: N SHA-256 steps from seed to anchor, plus the
/// checkpoint cache. Paid once per flight.
void BM_TeslaChainBuild(benchmark::State& state) {
  ChainKey seed{};
  seed.fill(0x5A);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashChain(seed, n));
  }
  state.counters["hashes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TeslaChainBuild)->Arg(1024)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

/// Checkpoint-cache ablation: K_i lookup cost by stride. Args: {length,
/// stride} — stride 1 caches every key (O(1) lookups, N keys of memory),
/// 0 the √N default, `length` a single checkpoint (worst-case walk).
/// The hashes_per_key counter is the chain's own derive_hashes() meter.
void BM_TeslaChainKey(benchmark::State& state) {
  ChainKey seed{};
  seed.fill(0x5A);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const HashChain chain(seed, n, static_cast<std::size_t>(state.range(1)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.key((i++ * 7919) % n + 1));
  }
  state.counters["hashes_per_key"] =
      state.iterations() > 0
          ? static_cast<double>(chain.derive_hashes()) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_TeslaChainKey)
    ->Args({4096, 1})->Args({4096, 0})->Args({4096, 256})->Args({4096, 4096})
    ->Unit(benchmark::kMicrosecond);

/// Per-sample tag (MAC-key separation + HMAC over interval || sample):
/// the entire TESLA signing cost once K_i is in hand.
void BM_TeslaTag(benchmark::State& state) {
  ChainKey key{};
  key.fill(0x77);
  std::uint64_t interval = 0;
  for (auto _ : state) {
    const ChainKey mac_key = tesla_mac_key(key);
    benchmark::DoNotOptimize(tesla_tag(mac_key, ++interval, sample_bytes()));
  }
  state.counters["tags_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TeslaTag)->Unit(benchmark::kMicrosecond);

/// Verifier frontier: one full flight of in-order disclosures costs N
/// hashes total (the per-accept cost here is a single chain step).
void BM_TeslaFrontierAccept(benchmark::State& state) {
  ChainKey seed{};
  seed.fill(0x5A);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const HashChain chain(seed, n, 1);  // stride 1: O(1) key lookups
  std::vector<ChainKey> keys;
  keys.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) keys.push_back(chain.key(i));
  for (auto _ : state) {
    ChainFrontier frontier(chain.anchor(), n);
    for (std::size_t i = 1; i <= n; ++i) {
      if (!frontier.accept(i, keys[i - 1])) std::abort();  // keys are genuine
    }
    benchmark::DoNotOptimize(frontier);
  }
  state.counters["accepts_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TeslaFrontierAccept)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_MillerRabin(benchmark::State& state) {
  DeterministicRandom rng("bench-mr");
  const BigInt prime = generate_prime(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_probable_prime(prime, rng, 16));
  }
}
BENCHMARK(BM_MillerRabin)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alidrone::crypto

int main(int argc, char** argv) {
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
