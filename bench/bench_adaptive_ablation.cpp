// Ablation A3: sensitivity of the adaptive sampling algorithm — how the
// number of PoA samples scales with zone distance, zone density, the
// assumed v_max, and the GPS update rate. These are the design knobs
// Section IV-C3 trades off; none are swept in the paper's evaluation, so
// this bench documents the behaviour the design implies.
#include <cstdio>

#include "bench_util.h"
#include "core/sufficiency.h"
#include "geo/ellipse.h"

namespace alidrone::bench {
namespace {

const geo::GeoPoint kAnchor{40.1100, -88.2200};

/// Straight 1 km drive at 10 m/s past `zone_count` zones of radius 6.1 m
/// (20 ft) at lateral `offset_m` from the road, spaced 30 m apart around
/// the midpoint.
sim::Scenario lateral_scenario(double offset_m, int zone_count) {
  const geo::LocalFrame frame(kAnchor);
  std::vector<geo::GeoZone> zones;
  zones.reserve(static_cast<std::size_t>(zone_count));
  for (int i = 0; i < zone_count; ++i) {
    const double along = 500.0 + (i - zone_count / 2) * 30.0;
    zones.push_back({frame.to_geo({along, offset_m}), 6.1});
  }
  const sim::Route route(frame, {{{0, 0}, 10.0}, {{1000, 0}, 10.0}}, kStartTime);
  return sim::Scenario{"lateral", route, std::move(zones), frame};
}

struct AblationResult {
  std::size_t samples = 0;
  std::size_t violations = 0;
};

AblationResult run_case(const sim::Scenario& scenario, double vmax, double gps_rate) {
  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(), vmax,
                               gps_rate);
  const ScenarioRun run = run_scenario(scenario, gps_rate, policy);

  std::vector<gps::GpsFix> fixes;
  for (const core::SignedSample& s : run.result.poa_samples) {
    if (const auto f = s.fix()) fixes.push_back(*f);
  }
  const core::SufficiencyReport report =
      core::check_sufficiency(fixes, scenario.zones, vmax);
  return {run.result.poa_samples.size(), report.violations.size()};
}

}  // namespace
}  // namespace alidrone::bench

int main(int argc, char** argv) {
  using namespace alidrone;
  using namespace alidrone::bench;
  using sim::Route;

  const auto json_path = take_json_flag(argc, argv);
  const MetricsDump metrics_dump(take_metrics_flag(argc, argv),
                                 "bench_adaptive_ablation");
  print_header("Adaptive-sampling ablation: samples vs zone distance");
  std::printf("  (1 km drive at 10 m/s past one 20 ft zone; GPS 5 Hz, v_max 100 mph)\n");
  std::printf("  %-18s %10s %12s\n", "lateral offset", "#samples", "#violations");
  std::vector<std::size_t> by_distance;
  for (const double offset : {15.0, 30.0, 60.0, 120.0, 250.0, 500.0, 1000.0}) {
    const auto r = run_case(bench::lateral_scenario(offset, 1),
                            geo::kFaaMaxSpeedMps, 5.0);
    by_distance.push_back(r.samples);
    std::printf("  %15.0f m %10zu %12zu\n", offset, r.samples, r.violations);
  }

  print_header("Adaptive-sampling ablation: samples vs zone density");
  std::printf("  (zones 30 m apart at 40 m lateral offset)\n");
  std::printf("  %-18s %10s %12s\n", "#zones", "#samples", "#violations");
  std::vector<std::size_t> by_density;
  for (const int count : {1, 2, 4, 8, 16, 30}) {
    const auto r =
        run_case(bench::lateral_scenario(40.0, count), geo::kFaaMaxSpeedMps, 5.0);
    by_density.push_back(r.samples);
    std::printf("  %18d %10zu %12zu\n", count, r.samples, r.violations);
  }

  print_header("Adaptive-sampling ablation: samples vs assumed v_max");
  std::printf("  (one zone at 40 m; smaller v_max bounds the drone tighter -> fewer samples)\n");
  std::printf("  %-18s %10s %12s\n", "v_max (mph)", "#samples", "#violations");
  std::vector<std::size_t> by_vmax;
  for (const double vmax_mph : {30.0, 60.0, 100.0, 150.0, 300.0}) {
    const auto r = run_case(bench::lateral_scenario(40.0, 1),
                            geo::mph_to_mps(vmax_mph), 5.0);
    by_vmax.push_back(r.samples);
    std::printf("  %18.0f %10zu %12zu\n", vmax_mph, r.samples, r.violations);
  }

  print_header("Adaptive-sampling ablation: samples vs GPS update rate");
  std::printf("  (one zone at 40 m; condition (3) widens its window at low rates)\n");
  std::printf("  %-18s %10s %12s\n", "GPS rate (Hz)", "#samples", "#violations");
  for (const double rate : {1.0, 2.0, 3.0, 5.0}) {
    const auto r = run_case(bench::lateral_scenario(40.0, 1),
                            geo::kFaaMaxSpeedMps, rate);
    std::printf("  %18.0f %10zu %12zu\n", rate, r.samples, r.violations);
  }

  // How conservative is the paper's focal-distance test (eq. 2) relative
  // to exact ellipse/circle disjointness? Sweep random geometries and
  // count the cases where only the exact test can certify the alibi —
  // the sampling-rate headroom a more expensive verifier would buy.
  print_header("Focal test (eq. 2) conservatism vs exact disjointness");
  crypto::DeterministicRandom rng("conservatism");
  int disjoint_exact = 0;
  int certified_focal = 0;
  int total = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const geo::Vec2 f1{rng.uniform_double() * 200.0 - 100.0,
                       rng.uniform_double() * 200.0 - 100.0};
    const geo::Vec2 f2{rng.uniform_double() * 200.0 - 100.0,
                       rng.uniform_double() * 200.0 - 100.0};
    const double slack = 1.0 + rng.uniform_double() * 100.0;
    const geo::TravelEllipse e(f1, f2, geo::distance(f1, f2) + slack);
    const geo::Circle z{{rng.uniform_double() * 400.0 - 200.0,
                         rng.uniform_double() * 400.0 - 200.0},
                        5.0 + rng.uniform_double() * 40.0};
    ++total;
    const bool exact = e.exactly_disjoint(z);
    const bool focal = e.focal_test_disjoint(z);
    if (exact) ++disjoint_exact;
    if (focal) ++certified_focal;
    if (focal && !exact) {
      std::printf("  UNSOUND focal certification found (bug!)\n");
      return 1;
    }
  }
  std::printf("  %d random geometries: exact disjoint %d, focal certified %d\n",
              total, disjoint_exact, certified_focal);
  std::printf("  focal test misses %.1f%% of provable alibis (the price of a\n"
              "  closed-form check the drone can afford per GPS update)\n",
              100.0 * (disjoint_exact - certified_focal) /
                  std::max(1, disjoint_exact));

  // Shape: samples decrease with distance, increase with density and vmax.
  const bool shape_ok = by_distance.front() > by_distance.back() &&
                        by_density.front() < by_density.back() &&
                        by_vmax.front() < by_vmax.back() &&
                        certified_focal <= disjoint_exact;
  std::printf("\nshape (monotone trends): %s\n", shape_ok ? "OK" : "MISMATCH");

  if (json_path) {
    JsonRecordWriter writer(*json_path);
    writer.write("adaptive_ablation", "nearest_zone", "samples",
                 static_cast<double>(by_distance.front()));
    writer.write("adaptive_ablation", "farthest_zone", "samples",
                 static_cast<double>(by_distance.back()));
    writer.write("adaptive_ablation", "densest", "samples",
                 static_cast<double>(by_density.back()));
    writer.write("adaptive_ablation", "focal_test", "certified",
                 static_cast<double>(certified_focal));
    writer.write("adaptive_ablation", "focal_test", "exact_disjoint",
                 static_cast<double>(disjoint_exact));
    writer.write("adaptive_ablation", "all", "shape_ok", shape_ok ? 1.0 : 0.0);
  }
  return shape_ok ? 0 : 1;
}
