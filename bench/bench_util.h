// Shared helpers for the figure/table regeneration benches.
//
// Machine-readable output: every bench accepts `--json <path>` (or
// `--json=<path>`) and appends flat `{bench, config, metric, value}`
// records to that file as a JSON array — the cross-PR perf-trajectory
// format (`BENCH_*.json`). Plain benches use JsonRecordWriter directly;
// google-benchmark benches include <benchmark/benchmark.h> *before* this
// header and call `benchmark_main_with_json(argc, argv)` instead of
// BENCHMARK_MAIN(), which tees every run and counter into the file.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/flight.h"
#include "core/sampler.h"
#include "geo/units.h"
#include "obs/metrics.h"
#include "sim/scenarios.h"
#include "tee/secure_monitor.h"

namespace alidrone::bench {

/// Writes `{bench, config, metric, value}` records as a JSON array.
/// Strings must not contain quotes/backslashes (benchmark identifiers
/// never do; nothing here escapes them).
class JsonRecordWriter {
 public:
  explicit JsonRecordWriter(const std::string& path) : out_(path) {
    out_ << "[";
  }
  ~JsonRecordWriter() { out_ << "\n]\n"; }

  JsonRecordWriter(const JsonRecordWriter&) = delete;
  JsonRecordWriter& operator=(const JsonRecordWriter&) = delete;

  void write(const std::string& bench, const std::string& config,
             const std::string& metric, double value) {
    out_ << (first_ ? "\n" : ",\n") << "  {\"bench\": \"" << bench
         << "\", \"config\": \"" << config << "\", \"metric\": \"" << metric
         << "\", \"value\": " << value << "}";
    first_ = false;
  }

  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
  bool first_ = true;
};

/// Extract `--<name> <value>` / `--<name>=<value>` from argv (compacting
/// it) so remaining flags can go to the bench's own parser.
inline std::optional<std::string> take_path_flag(int& argc, char** argv,
                                                 const std::string& name) {
  const std::string bare = "--" + name;
  const std::string eq = bare + "=";
  std::optional<std::string> path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == bare && r + 1 < argc) {
      path = argv[++r];
    } else if (arg.rfind(eq, 0) == 0) {
      path = arg.substr(eq.size());
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// Extract `--json <path>` / `--json=<path>` from argv (compacting it).
inline std::optional<std::string> take_json_flag(int& argc, char** argv) {
  return take_path_flag(argc, argv, "json");
}

/// Extract `--metrics <path>` / `--metrics=<path>`: where to dump the
/// process-wide obs::MetricsRegistry snapshot after the bench ran.
inline std::optional<std::string> take_metrics_flag(int& argc, char** argv) {
  return take_path_flag(argc, argv, "metrics");
}

/// Writes the global metrics-registry snapshot to `path` on destruction,
/// as `{bench, "metrics", <metric name>, value}` records — the same
/// JsonRecordWriter shape run_all.sh merges into BENCH_metrics.json.
/// Constructed with nullopt it does nothing, so a bench main can hold one
/// unconditionally:
///   MetricsDump dump(take_metrics_flag(argc, argv), "bench_fig6_airport");
class MetricsDump {
 public:
  MetricsDump(std::optional<std::string> path, std::string bench)
      : path_(std::move(path)), bench_(std::move(bench)) {}

  MetricsDump(const MetricsDump&) = delete;
  MetricsDump& operator=(const MetricsDump&) = delete;

  ~MetricsDump() {
    if (!path_) return;
    JsonRecordWriter writer(*path_);
    for (const obs::MetricRecord& record :
         obs::MetricsRegistry::global().snapshot()) {
      writer.write(bench_, "metrics", record.name, record.value);
    }
  }

 private:
  std::optional<std::string> path_;
  std::string bench_;
};

inline constexpr double kStartTime = 1528400000.0;

/// A fast TEE for simulation-driven benches: 512-bit keys keep the real
/// crypto cheap; Table II numbers come from the calibrated Pi 3 cost
/// model, not from x86 wall-clock time.
inline tee::DroneTee make_bench_tee(const std::string& seed = "bench-device") {
  tee::DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = seed;
  return tee::DroneTee(config);
}

struct ScenarioRun {
  core::FlightResult result;
  double duration = 0.0;
  std::size_t scheduled_misses = 0;
};

/// Run one sampling policy over a scenario at the given GPS update rate.
inline ScenarioRun run_scenario(const sim::Scenario& scenario, double gps_rate_hz,
                                core::SamplingPolicy& policy,
                                std::vector<double> scheduled_miss_times = {}) {
  tee::DroneTee tee = make_bench_tee();

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = gps_rate_hz;
  rc.start_time = scenario.route.start_time();
  rc.scheduled_miss_times = std::move(scheduled_miss_times);
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  core::FlightConfig config;
  config.end_time = scenario.route.end_time();
  config.frame = scenario.frame;
  config.local_zones = scenario.local_zones();

  ScenarioRun run;
  run.result = core::run_flight(tee, receiver, policy, config);
  run.duration = scenario.route.duration();
  run.scheduled_misses = static_cast<std::size_t>(receiver.missed_updates());
  return run;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf("-------------------------------------------------------------------\n");
}

}  // namespace alidrone::bench

// google-benchmark bridge — only compiled when <benchmark/benchmark.h>
// was included before this header (the microbenches do; the plain
// figure-regeneration benches don't link the benchmark library).
#ifdef BENCHMARK_BENCHMARK_H_
namespace alidrone::bench {

/// Display reporter that renders the normal console output AND flattens
/// every finished run into {bench, config, metric, value} records:
/// per-iteration real/cpu seconds plus every user counter (already
/// rate-finalized by the runner). A wrapper rather than a secondary file
/// reporter because RunSpecifiedBenchmarks ties the file-reporter slot
/// to --benchmark_out.
class JsonRecordReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonRecordReporter(JsonRecordWriter& writer) : writer_(writer) {}

  bool ReportContext(const Context& context) override {
    console_.SetOutputStream(&GetOutputStream());
    console_.SetErrorStream(&GetErrorStream());
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      const std::string bench = name.substr(0, slash);
      const std::string config =
          slash == std::string::npos ? "" : name.substr(slash + 1);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      writer_.write(bench, config, "real_time_s",
                    run.real_accumulated_time / iters);
      writer_.write(bench, config, "cpu_time_s",
                    run.cpu_accumulated_time / iters);
      for (const auto& [counter_name, counter] : run.counters) {
        writer_.write(bench, config, counter_name, counter.value);
      }
    }
  }

  void Finalize() override { console_.Finalize(); }

 private:
  JsonRecordWriter& writer_;
  benchmark::ConsoleReporter console_;
};

/// Drop-in BENCHMARK_MAIN() replacement with `--json <path>` and
/// `--metrics <path>` support. The metrics dump (labelled with argv[0]'s
/// basename) is written after every benchmark ran.
inline int benchmark_main_with_json(int argc, char** argv) {
  const std::optional<std::string> json_path = take_json_flag(argc, argv);
  const std::optional<std::string> metrics_path = take_metrics_flag(argc, argv);
  std::string bench_name = argc > 0 ? argv[0] : "bench";
  const std::size_t sep = bench_name.find_last_of('/');
  if (sep != std::string::npos) bench_name = bench_name.substr(sep + 1);
  const MetricsDump metrics_dump(metrics_path, bench_name);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path) {
    JsonRecordWriter writer(*json_path);
    JsonRecordReporter reporter(writer);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace alidrone::bench
#endif  // BENCHMARK_BENCHMARK_H_
