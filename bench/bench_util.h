// Shared helpers for the figure/table regeneration benches.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/flight.h"
#include "core/sampler.h"
#include "geo/units.h"
#include "sim/scenarios.h"
#include "tee/secure_monitor.h"

namespace alidrone::bench {

inline constexpr double kStartTime = 1528400000.0;

/// A fast TEE for simulation-driven benches: 512-bit keys keep the real
/// crypto cheap; Table II numbers come from the calibrated Pi 3 cost
/// model, not from x86 wall-clock time.
inline tee::DroneTee make_bench_tee(const std::string& seed = "bench-device") {
  tee::DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = seed;
  return tee::DroneTee(config);
}

struct ScenarioRun {
  core::FlightResult result;
  double duration = 0.0;
  std::size_t scheduled_misses = 0;
};

/// Run one sampling policy over a scenario at the given GPS update rate.
inline ScenarioRun run_scenario(const sim::Scenario& scenario, double gps_rate_hz,
                                core::SamplingPolicy& policy,
                                std::vector<double> scheduled_miss_times = {}) {
  tee::DroneTee tee = make_bench_tee();

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = gps_rate_hz;
  rc.start_time = scenario.route.start_time();
  rc.scheduled_miss_times = std::move(scheduled_miss_times);
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  core::FlightConfig config;
  config.end_time = scenario.route.end_time();
  config.frame = scenario.frame;
  config.local_zones = scenario.local_zones();

  ScenarioRun run;
  run.result = core::run_flight(tee, receiver, policy, config);
  run.duration = scenario.route.duration();
  run.scheduled_misses = static_cast<std::size_t>(receiver.missed_updates());
  return run;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf("-------------------------------------------------------------------\n");
}

}  // namespace alidrone::bench
