// Ablation A2 (Section VII-A1): per-sample RSA signatures vs the two
// proposed alternatives — ephemeral symmetric HMAC session keys, and
// caching the trace in secure memory to sign it once at flight end.
//
// Reports (a) real per-sample cost on this host through the actual TEE
// command path, and (b) the sustainable sampling rate each scheme would
// allow on the paper's Raspberry Pi 3 under the calibrated cost model.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "crypto/rsa.h"
#include "tee/gps_sampler_ta.h"

namespace alidrone::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Feed a fix and invoke `command` n times; returns seconds per call.
double time_command(tee::DroneTee& tee, tee::SamplerCommand command, int n,
                    std::span<const crypto::Bytes> params = {}) {
  const auto start = Clock::now();
  for (int i = 0; i < n; ++i) {
    const tee::InvokeResult result = tee.monitor().invoke(
        tee.sampler_uuid(), static_cast<std::uint32_t>(command), params);
    if (!result.ok()) {
      std::fprintf(stderr, "command %u failed: %s\n",
                   static_cast<unsigned>(command),
                   tee::to_string(result.status).c_str());
      return -1.0;
    }
  }
  return seconds_since(start) / n;
}

void feed_one_fix(tee::DroneTee& tee) {
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kStartTime;
  gps::GpsReceiverSim sim(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.1164, -88.2434};
    f.unix_time = t;
    return f;
  });
  for (const std::string& s : sim.advance_to(kStartTime)) tee.feed_gps(s);
}

}  // namespace
}  // namespace alidrone::bench

int main(int argc, char** argv) {
  using namespace alidrone;
  using namespace alidrone::bench;

  const auto json_path = take_json_flag(argc, argv);
  const MetricsDump metrics_dump(take_metrics_flag(argc, argv),
                                 "bench_signing_alternatives");
  print_header("Section VII-A1 ablation: per-sample authentication schemes");

  constexpr int kIterations = 200;

  // A real TEE with a 1024-bit key (the paper's short-key configuration).
  tee::DroneTee::Config config;
  config.key_bits = 1024;
  config.manufacturing_seed = "signing-alt-device";
  tee::DroneTee tee(config);
  feed_one_fix(tee);

  // 1. Per-sample RSA (the paper's baseline).
  const double rsa_per_sample =
      time_command(tee, tee::SamplerCommand::kGetGpsAuth, kIterations);

  // 2. HMAC session mode: establish a key with the Auditor, then MAC.
  crypto::DeterministicRandom auditor_rng("signing-alt-auditor");
  const crypto::RsaKeyPair auditor = crypto::generate_rsa_keypair(1024, auditor_rng);
  const std::vector<crypto::Bytes> establish_params{auditor.pub.n.to_bytes(),
                                                    auditor.pub.e.to_bytes()};
  const auto setup_start = std::chrono::steady_clock::now();
  tee.monitor().invoke(
      tee.sampler_uuid(),
      static_cast<std::uint32_t>(tee::SamplerCommand::kEstablishHmacKey),
      establish_params);
  const double hmac_setup = seconds_since(setup_start);
  const double hmac_per_sample =
      time_command(tee, tee::SamplerCommand::kGetGpsHmac, kIterations);

  // 3. Batch mode: append n samples, one signature at the end.
  tee.monitor().invoke(tee.sampler_uuid(),
                       static_cast<std::uint32_t>(tee::SamplerCommand::kBatchBegin));
  const double append_per_sample =
      time_command(tee, tee::SamplerCommand::kBatchAppend, kIterations);
  const auto finalize_start = std::chrono::steady_clock::now();
  tee.monitor().invoke(
      tee.sampler_uuid(),
      static_cast<std::uint32_t>(tee::SamplerCommand::kBatchFinalize));
  const double finalize_cost = seconds_since(finalize_start);
  const double batch_per_sample = append_per_sample + finalize_cost / kIterations;

  print_rule();
  std::printf("  scheme                 per-sample (this host)   one-time cost\n");
  std::printf("  RSA-1024 per sample    %12.1f us            -\n",
              rsa_per_sample * 1e6);
  std::printf("  HMAC session           %12.1f us            %.1f us key setup\n",
              hmac_per_sample * 1e6, hmac_setup * 1e6);
  std::printf("  batch (sign at end)    %12.1f us            %.1f us final sign\n",
              batch_per_sample * 1e6, finalize_cost * 1e6);
  std::printf("  RSA/HMAC speedup: %.0fx\n", rsa_per_sample / hmac_per_sample);

  // Projection onto the Pi 3: sustainable sampling rate per scheme.
  const resource::CostProfile p = resource::CostProfile::raspberry_pi3();
  const double rsa_1024 = p.per_sample_cost(1024);
  const double rsa_2048 = p.per_sample_cost(2048);
  const double hmac_cost =
      2.0 * p.world_switch + p.gps_read_parse + p.hmac_sign + p.persist_sample;
  const double batch_cost = 2.0 * p.world_switch + p.gps_read_parse;

  const double ecdsa_cost =
      2.0 * p.world_switch + p.gps_read_parse + p.ecdsa_sign + p.persist_sample;

  print_rule();
  std::printf("  Pi 3 projection (calibrated model): max sustainable rate\n");
  std::printf("  RSA-1024 per sample    %8.1f Hz   (paper: keeps up with 5 Hz)\n",
              1.0 / rsa_1024);
  std::printf("  RSA-2048 per sample    %8.1f Hz   (paper: cannot keep 5 Hz)\n",
              1.0 / rsa_2048);
  std::printf("  ECDSA P-256 per sample %8.1f Hz   (the \"more efficient scheme\"\n",
              1.0 / ecdsa_cost);
  std::printf("  %36s Section VI-B asks for)\n", "");
  std::printf("  HMAC session           %8.1f Hz\n", 1.0 / hmac_cost);
  std::printf("  batch (sign at end)    %8.1f Hz   + one %.0f ms sign per flight\n",
              1.0 / batch_cost, p.rsa_sign_1024 * 1e3);

  // Real-time streaming vs end-of-flight upload (Section IV-B step 4):
  // the radio-energy reason the paper submits PoAs after landing.
  print_rule();
  std::printf("  Radio energy: per-sample streaming vs one upload per flight\n");
  const resource::RadioModel radio;
  const std::size_t sample_bytes = 32;
  const std::size_t sig_bytes = 128;  // RSA-1024 signature
  for (const std::size_t samples : {27u, 394u}) {  // airport / residential
    const double streaming =
        static_cast<double>(samples) *
        radio.transmit_energy_j(sample_bytes + sig_bytes + 12);
    const double batch =
        radio.transmit_energy_j(samples * (sample_bytes + sig_bytes + 8) + 64);
    std::printf("  %4zu samples: streaming %.2f J vs batch %.3f J (%.0fx)\n",
                samples, streaming, batch, streaming / batch);
  }

  const bool shape_ok = rsa_per_sample > hmac_per_sample &&
                        1.0 / rsa_2048 < 5.0 && 1.0 / rsa_1024 > 5.0 &&
                        1.0 / hmac_cost > 100.0;
  std::printf("shape vs paper: %s\n", shape_ok ? "OK" : "MISMATCH");

  if (json_path) {
    JsonRecordWriter writer(*json_path);
    writer.write("signing_alternatives", "rsa_1024", "per_sample_s", rsa_per_sample);
    writer.write("signing_alternatives", "hmac_session", "per_sample_s",
                 hmac_per_sample);
    writer.write("signing_alternatives", "batch", "per_sample_s", batch_per_sample);
    writer.write("signing_alternatives", "pi3_rsa_1024", "max_rate_hz", 1.0 / rsa_1024);
    writer.write("signing_alternatives", "pi3_rsa_2048", "max_rate_hz", 1.0 / rsa_2048);
    writer.write("signing_alternatives", "pi3_hmac", "max_rate_hz", 1.0 / hmac_cost);
    writer.write("signing_alternatives", "all", "shape_ok", shape_ok ? 1.0 : 0.0);
  }
  return shape_ok ? 0 : 1;
}
