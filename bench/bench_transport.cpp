// Socket transport bench (perf PR): what the epoll reactor + framed
// UDS path costs relative to the in-process MessageBus, and proof that
// the zero-copy decode path really is allocation-free.
//
// Three measurements, each with a built-in shape check so CI can run
// this as a smoke test without parsing numbers:
//
//   bus          proofs/sec submitting one pre-built PoA frame over the
//                in-process MessageBus (the no-transport upper bound;
//                after the first full verification the submissions hit
//                the Auditor's content-dedup cache, so both paths
//                measure delivery + hashing, not RSA).
//   uds          proofs/sec over a real Unix-domain socket at 1, 64,
//                512 and 4096 concurrent connections: a single-threaded
//                poll() driver with one outstanding request per
//                connection against a 2-worker TransportServer. Checks:
//                every verdict byte-identical to the bus run, and the
//                best UDS config >= 0.5x the bus rate.
//   allocs       heap allocations per decoded submission on the wire
//                path (FrameAssembler writable/commit -> parse_request
//                -> SubmitPoaRequest::decode_view -> PoaView::parse_into)
//                after warmup, counted by a global operator new hook.
//                Check: exactly 0.
//
// Usage: bench_transport [--messages N] [--alloc-iters N]
//                        [--json <path>] [--metrics <path>]
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/poa.h"
#include "core/sampler.h"
#include "core/zone_owner.h"
#include "crypto/random.h"
#include "geo/units.h"
#include "net/buffer_pool.h"
#include "net/message_bus.h"
#include "net/transport/frame.h"
#include "net/transport/server.h"
#include "net/transport/sockets.h"
#include "sim/route.h"

// ---- global allocation counter -----------------------------------------
// Counts every operator new in the process; the alloc measurement runs
// single-threaded with the server stopped, so the delta it reads is
// attributable to the decode path alone.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kKeyBits = 512;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::optional<std::size_t> take_size_flag(int& argc, char** argv,
                                          const std::string& name) {
  const auto text = bench::take_path_flag(argc, argv, name);
  if (!text) return std::nullopt;
  return static_cast<std::size_t>(std::strtoull(text->c_str(), nullptr, 10));
}

const geo::LocalFrame& frame() {
  static const geo::LocalFrame f(geo::GeoPoint{40.0, -88.0});
  return f;
}

core::ProofOfAlibi make_poa(core::DroneClient& drone) {
  // The route skirts the zone at 60 m, so the adaptive sampler runs near
  // its peak rate for most of the flight — the proof carries enough
  // samples that every delivery pays for real verification, not just
  // framing (an empty-ish proof would make any transport look slow).
  sim::Route route(
      frame(), {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}},
      kT0);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  rc.seed = 99;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());
  std::vector<geo::Circle> zones = {{geo::Vec2{300.0, 60.0}, 30.0}};
  core::AdaptiveSampler policy(frame(), zones, geo::kFaaMaxSpeedMps, 0.2);
  core::FlightConfig config;
  config.end_time = kT0 + 60.0;
  config.frame = frame();
  config.local_zones = zones;
  return drone.fly(receiver, policy, config);
}

std::unique_ptr<core::Auditor> make_auditor(obs::MetricsRegistry& registry) {
  crypto::DeterministicRandom rng("bench-transport-auditor");
  core::ProtocolParams params;
  params.auditor_shards = 8;
  params.metrics = &registry;
  return std::make_unique<core::Auditor>(kKeyBits, rng, params);
}

/// One connection of the poll() driver: a blocking fd plus reassembly
/// state for the response in flight (reads arrive in arbitrary chunks).
struct DrivenConn {
  int fd = -1;
  net::transport::FrameAssembler assembler;
  bool busy = false;

  explicit DrivenConn(net::BufferPool* pool) : assembler(pool) {}
};

/// Single-threaded driver: one outstanding request per connection,
/// poll() multiplexing the responses. Returns proofs/sec; bumps
/// `mismatches` for every verdict that differs from `expected`.
double drive_uds(const std::string& address, std::size_t connections,
                 std::size_t messages, const crypto::Bytes& request_frame,
                 const crypto::Bytes& expected,
                 std::size_t& mismatches) {
  using namespace net::transport;
  net::BufferPool pool(connections + 8);
  std::vector<std::unique_ptr<DrivenConn>> conns;
  conns.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    conns.push_back(std::make_unique<DrivenConn>(&pool));
    // A connection storm can transiently fill the UDS listen backlog
    // (connect fails with EAGAIN until the acceptor drains it) — retry.
    for (int attempt = 0;; ++attempt) {
      try {
        conns.back()->fd = connect_socket(address, 5.0);
        break;
      } catch (const std::runtime_error&) {
        if (attempt >= 200) throw;
        usleep(1000);
      }
    }
  }
  std::vector<pollfd> pfds(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    pfds[i] = {conns[i]->fd, POLLIN, 0};
  }

  const auto send_request = [&](DrivenConn& conn) {
    std::size_t off = 0;
    while (off < request_frame.size()) {
      const ssize_t n = write(conn.fd, request_frame.data() + off,
                              request_frame.size() - off);
      if (n <= 0) throw std::runtime_error("bench: request write failed");
      off += static_cast<std::size_t>(n);
    }
    conn.busy = true;
  };

  // Every connection serves at least one request.
  const std::size_t total = std::max(messages, connections);
  std::size_t sent = 0;
  std::size_t completed = 0;
  const double start = now_s();
  for (const auto& conn : conns) {
    if (sent >= total) break;
    send_request(*conn);
    ++sent;
  }
  while (completed < total) {
    const int ready = poll(pfds.data(), pfds.size(), 5000);
    if (ready <= 0) throw std::runtime_error("bench: poll failed/timed out");
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      DrivenConn& conn = *conns[i];
      const std::span<std::uint8_t> dst = conn.assembler.writable(16384);
      const ssize_t n = read(conn.fd, dst.data(), dst.size());
      if (n <= 0) throw std::runtime_error("bench: response read failed");
      const std::string err = conn.assembler.commit(
          static_cast<std::size_t>(n), 16384,
          [&](std::span<const std::uint8_t> payload) -> std::string {
            ResponseEnvelope response;
            const std::string perr = parse_response(payload, response);
            if (!perr.empty()) return perr;
            if (response.status != kStatusOk) return "non-ok status";
            if (!std::equal(response.body.begin(), response.body.end(),
                            expected.begin(), expected.end())) {
              ++mismatches;
            }
            conn.busy = false;
            ++completed;
            return std::string();
          });
      if (!err.empty()) throw std::runtime_error("bench: " + err);
      if (!conn.busy && sent < total) {
        send_request(conn);
        ++sent;
      }
    }
  }
  const double elapsed = now_s() - start;
  for (const auto& conn : conns) close(conn->fd);
  return static_cast<double>(total) / elapsed;
}

int run(int argc, char** argv) {
  const auto json_path = bench::take_json_flag(argc, argv);
  const bench::MetricsDump metrics_dump(bench::take_metrics_flag(argc, argv),
                                        "bench_transport");
  std::size_t messages = 2000;
  std::size_t alloc_iters = 200;
  if (const auto v = take_size_flag(argc, argv, "messages")) messages = *v;
  if (const auto v = take_size_flag(argc, argv, "alloc-iters")) {
    alloc_iters = *v;
  }
  bool ok = true;

  // Shared workload: one drone, one proof, one serialized frame.
  crypto::DeterministicRandom operator_rng("bench-transport-operator");
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kKeyBits;
  tee_config.manufacturing_seed = "bench-transport-device";
  tee::DroneTee tee(tee_config);
  core::DroneClient drone(tee, kKeyBits, operator_rng);
  {
    obs::MetricsRegistry scratch;
    auto auditor = make_auditor(scratch);
    net::MessageBus bus;
    auditor->bind(bus);
    if (!drone.register_with_auditor(bus)) {
      std::fprintf(stderr, "bench_transport: registration failed\n");
      return 1;
    }
  }
  core::ProofOfAlibi poa = make_poa(drone);
  // Corrupt the signature: a rejected proof is re-verified on every
  // submission (only accepted verdicts enter the dedup cache), so each
  // message costs real signature verification on both paths instead of
  // a cache hit no transport could keep up with. The verdict bytes stay
  // deterministic, so byte-identity across paths is still asserted.
  if (!poa.batch_signature.empty()) {
    poa.batch_signature.back() ^= 0x01;
  } else if (!poa.samples.empty()) {
    poa.samples.back().signature.back() ^= 0x01;
  }
  const crypto::Bytes submit_frame =
      core::SubmitPoaRequest{poa.serialize()}.encode();
  std::printf("workload: one %zu-byte PoA submission frame (%zu samples, "
              "verified on every delivery)\n",
              submit_frame.size(), poa.samples.size());

  // ---- in-process bus baseline -----------------------------------------
  bench::print_header("in-process MessageBus submissions");
  crypto::Bytes expected_verdict;
  double bus_rate = 0.0;
  {
    obs::MetricsRegistry registry;
    auto auditor = make_auditor(registry);
    net::MessageBus bus;
    auditor->bind(bus);
    drone.register_with_auditor(bus);
    expected_verdict = bus.request("auditor.submit_poa", submit_frame);
    const double start = now_s();
    for (std::size_t i = 0; i < messages; ++i) {
      if (bus.request("auditor.submit_poa", submit_frame) !=
          expected_verdict) {
        ok = false;
      }
    }
    bus_rate = static_cast<double>(messages) / (now_s() - start);
    std::printf("  bus: %zu submissions -> %.0f proofs/sec\n", messages,
                bus_rate);
  }

  // ---- UDS at 1 / 64 / 512 / 4096 connections --------------------------
  bench::print_header("UDS socket submissions (poll driver, 2 workers)");
  const std::string address =
      "uds:/tmp/alidrone_bench_transport_" + std::to_string(getpid()) +
      ".sock";
  obs::MetricsRegistry registry;
  auto auditor = make_auditor(registry);
  net::transport::TransportServer::Config server_config;
  server_config.listen = {address};
  server_config.workers = 2;
  server_config.registry = &registry;
  net::transport::TransportServer server(std::move(server_config));
  auditor->bind(server);
  server.start();
  drone.register_with_auditor(server);  // loopback: same endpoint table
  server.request("auditor.submit_poa", submit_frame);  // warm caches/pools

  crypto::Bytes request_frame;
  net::transport::append_request_frame(request_frame, 1,
                                       "auditor.submit_poa", submit_frame);

  double best_uds_rate = 0.0;
  std::size_t mismatches = 0;
  std::vector<std::pair<std::size_t, double>> uds_rates;
  for (const std::size_t connections : {1u, 64u, 512u, 4096u}) {
    net::transport::raise_fd_limit(connections + 64);
    const double rate = drive_uds(address, connections, messages,
                                  request_frame, expected_verdict,
                                  mismatches);
    uds_rates.emplace_back(connections, rate);
    best_uds_rate = std::max(best_uds_rate, rate);
    std::printf("  uds conns=%4zu: %.0f proofs/sec (%.2fx bus)\n",
                connections, rate, rate / bus_rate);
  }
  server.stop();
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "bench_transport: FAIL %zu verdicts differed from the "
                 "bus run\n",
                 mismatches);
    ok = false;
  }
  if (best_uds_rate < 0.5 * bus_rate) {
    std::fprintf(stderr,
                 "bench_transport: FAIL best UDS rate %.0f < 0.5x bus rate "
                 "%.0f\n",
                 best_uds_rate, bus_rate);
    ok = false;
  }

  // ---- allocations per decoded submission ------------------------------
  bench::print_header("allocations per decoded submission (wire path)");
  double allocs_per_message = 0.0;
  {
    net::BufferPool pool(4);
    net::transport::FrameAssembler assembler(&pool);
    core::PoaView view;
    std::size_t decoded = 0;
    const auto decode_stream = [&](std::size_t rounds) {
      for (std::size_t r = 0; r < rounds; ++r) {
        std::size_t off = 0;
        while (off < request_frame.size()) {
          const std::size_t chunk =
              std::min<std::size_t>(16384, request_frame.size() - off);
          const std::span<std::uint8_t> dst = assembler.writable(chunk);
          std::memcpy(dst.data(), request_frame.data() + off, chunk);
          off += chunk;
          const std::string err = assembler.commit(
              chunk, chunk,
              [&](std::span<const std::uint8_t> payload) -> std::string {
                net::transport::RequestEnvelope request;
                const std::string perr =
                    net::transport::parse_request(payload, request);
                if (!perr.empty()) return perr;
                const auto poa_bytes =
                    core::SubmitPoaRequest::decode_view(request.body);
                if (!poa_bytes) return "bad submit frame";
                if (!core::PoaView::parse_into(*poa_bytes, view)) {
                  return "unparseable PoA";
                }
                ++decoded;
                return std::string();
              });
        if (!err.empty()) throw std::runtime_error("bench alloc: " + err);
        }
      }
    };
    decode_stream(8);  // warmup: buffer + sample-vector capacities settle
    const std::uint64_t before = g_allocations.load();
    decoded = 0;
    decode_stream(alloc_iters);
    const std::uint64_t delta = g_allocations.load() - before;
    allocs_per_message =
        static_cast<double>(delta) / static_cast<double>(decoded);
    std::printf("  %zu messages decoded, %llu allocations -> %.3f/message\n",
                decoded, static_cast<unsigned long long>(delta),
                allocs_per_message);
    if (delta != 0) {
      std::fprintf(stderr,
                   "bench_transport: FAIL wire decode allocated %llu times "
                   "(want 0)\n",
                   static_cast<unsigned long long>(delta));
      ok = false;
    }
  }

  if (json_path) {
    bench::JsonRecordWriter writer(*json_path);
    writer.write("bench_transport", "bus", "proofs_per_sec", bus_rate);
    for (const auto& [connections, rate] : uds_rates) {
      writer.write("bench_transport",
                   "uds_conns_" + std::to_string(connections),
                   "proofs_per_sec", rate);
    }
    writer.write("bench_transport", "wire_decode", "allocs_per_message",
                 allocs_per_message);
    if (!writer.ok()) {
      std::fprintf(stderr, "bench_transport: FAIL writing %s\n",
                   json_path->c_str());
      ok = false;
    }
  }

  std::printf("\n%s\n", ok ? "bench_transport: all shape checks passed"
                           : "bench_transport: SHAPE CHECKS FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) { return alidrone::run(argc, argv); }
