#!/usr/bin/env sh
# Run every bench with --json and merge the records into one
# BENCH_results.json array — the cross-PR perf-trajectory file.
#
# Usage: bench/run_all.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   BENCHMARK_MIN_TIME   per-benchmark min time for the google-benchmark
#                        micro benches (default: 0.01 — smoke-level; unset
#                        it to BENCHMARK_MIN_TIME="" for full runs)
#
# Exit status is non-zero if any bench fails its own shape checks, so CI
# can use this as a perf smoke test without parsing any numbers. The merge
# is plain sed/grep on the writers' fixed one-record-per-line format — no
# jq or python in the loop.
set -u

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_results.json}
MIN_TIME=${BENCHMARK_MIN_TIME-0.01}

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_all.sh: no $BUILD_DIR/bench — build first (BUILD_DIR=...)" >&2
  exit 2
fi

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
: > "$tmp_dir/records"
fail=0

run_bench() {
  name=$1
  shift
  bin="$BUILD_DIR/bench/$name"
  json="$tmp_dir/$name.json"
  echo "== $name =="
  if ! "$bin" "$@" --json "$json"; then
    echo "run_all.sh: FAIL $name" >&2
    fail=1
  fi
  # One record per line, trailing commas stripped; re-joined at the end.
  if [ -f "$json" ]; then
    grep '^  {' "$json" | sed 's/,$//' >>"$tmp_dir/records"
  fi
}

# Figure/table regeneration harnesses (shape-checked exit codes).
run_bench bench_fig6_airport
run_bench bench_fig8_residential
run_bench bench_table2_overhead
run_bench bench_signing_alternatives
run_bench bench_adaptive_ablation

# Fleet-scale ingestion (exit code checks serial/pipeline verdict parity).
run_bench bench_auditor_scale --drones 8 --proofs 4

# google-benchmark micro benches.
micro_args=""
if [ -n "$MIN_TIME" ]; then
  micro_args="--benchmark_min_time=$MIN_TIME"
fi
for name in bench_crypto_micro bench_geo_micro bench_tee_and_verify \
    bench_verify_throughput bench_sign_throughput bench_resilience; do
  # shellcheck disable=SC2086
  run_bench "$name" $micro_args
done

{
  echo '['
  sed '$!s/$/,/' "$tmp_dir/records" | sed 's/^  //;s/^/  /'
  echo ']'
} >"$OUT"

count=$(grep -c '{' "$OUT" || true)
echo "== wrote $count records to $OUT (fail=$fail) =="
exit "$fail"
