#!/usr/bin/env sh
# Run every bench with --json/--metrics and merge the records into
#   BENCH_results.json  — the cross-PR perf-trajectory file, and
#   BENCH_metrics.json  — the obs::MetricsRegistry snapshot of each bench
#                         process (one "metric" record per registry entry).
#
# Usage: bench/run_all.sh [results.json] [metrics.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   BENCHMARK_MIN_TIME   per-benchmark min time for the google-benchmark
#                        micro benches (default: 0.01 — smoke-level; unset
#                        it to BENCHMARK_MIN_TIME="" for full runs)
#
# Exit status is non-zero if any bench fails its own shape checks, so CI
# can use this as a perf smoke test without parsing any numbers. Merging
# is done by the strict `merge_json` tool built next to the benches: it
# parses the writers' fixed one-record-per-line format and fails loudly on
# any line it does not recognize, instead of silently dropping it the way
# the old grep/sed pipeline did.
set -u

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_results.json}
METRICS_OUT=${2:-BENCH_metrics.json}
MIN_TIME=${BENCHMARK_MIN_TIME-0.01}

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_all.sh: no $BUILD_DIR/bench — build first (BUILD_DIR=...)" >&2
  exit 2
fi
if [ ! -x "$BUILD_DIR/bench/merge_json" ]; then
  echo "run_all.sh: no $BUILD_DIR/bench/merge_json — rebuild the bench tree" >&2
  exit 2
fi

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
fail=0
json_files=""
metrics_files=""

run_bench() {
  name=$1
  shift
  bin="$BUILD_DIR/bench/$name"
  json="$tmp_dir/$name.json"
  metrics="$tmp_dir/$name.metrics.json"
  echo "== $name =="
  if [ ! -x "$bin" ]; then
    # A missing binary means the build tree is stale — fail loudly
    # instead of silently shipping a BENCH_results.json with a hole in it.
    echo "run_all.sh: MISSING bench binary $bin (stale build tree?)" >&2
    fail=1
    return
  fi
  if ! "$bin" "$@" --json "$json" --metrics "$metrics"; then
    echo "run_all.sh: FAIL $name" >&2
    fail=1
  fi
  if [ -f "$json" ]; then
    json_files="$json_files $json"
  fi
  if [ -f "$metrics" ]; then
    metrics_files="$metrics_files $metrics"
  fi
}

# Figure/table regeneration harnesses (shape-checked exit codes).
run_bench bench_fig6_airport
run_bench bench_fig8_residential
run_bench bench_table2_overhead
run_bench bench_signing_alternatives
run_bench bench_adaptive_ablation

# Fleet-scale ingestion (exit code checks serial/pipeline verdict parity).
run_bench bench_auditor_scale --drones 8 --proofs 4

# Adversarial fleet campaign on the deterministic scheduler (exit code
# checks serial-replay fingerprint identity and perfect chain-forge /
# replay detection).
run_bench bench_fleet_campaign --flights 64 --workers 4 --shards 8 \
  --verify-threads 2

# Ledger append/proof throughput and replica catch-up (exit code checks
# root equality, proof verification and the reapplied-write count).
run_bench bench_ledger_replication --appends 4000 --durable-appends 1000 \
  --writes 40

# Socket transport vs the in-process bus (exit code checks byte-identical
# verdicts, best-UDS >= 0.5x bus, and 0 allocs per decoded submission).
run_bench bench_transport --messages 512 --alloc-iters 50

# google-benchmark micro benches.
micro_args=""
if [ -n "$MIN_TIME" ]; then
  micro_args="--benchmark_min_time=$MIN_TIME"
fi
for name in bench_crypto_micro bench_geo_micro bench_tee_and_verify \
    bench_verify_throughput bench_sign_throughput bench_resilience; do
  # shellcheck disable=SC2086
  run_bench "$name" $micro_args
done

# Strict merges: any malformed record line aborts with a file:line error.
# shellcheck disable=SC2086
if ! "$BUILD_DIR/bench/merge_json" "$OUT" $json_files; then
  echo "run_all.sh: merge of bench records failed" >&2
  exit 1
fi
# shellcheck disable=SC2086
if ! "$BUILD_DIR/bench/merge_json" "$METRICS_OUT" $metrics_files; then
  echo "run_all.sh: merge of metrics snapshots failed" >&2
  exit 1
fi

echo "== results: $OUT  metrics: $METRICS_OUT (fail=$fail) =="
exit "$fail"
