// Fleet-scale Auditor ingestion bench (PR 4 tentpole).
//
// End-to-end proofs/sec for a fleet of drones submitting serialized
// SubmitPoaRequest frames:
//
//   serial    one thread, unsharded Auditor (auditor_shards=1), the
//             unbatched verify_poa_bytes path — the pre-PR shape.
//   pipeline  N producer threads pushing into AuditorIngest (bounded
//             queue -> batch -> parallel evaluate -> serial commit)
//             against a sharded Auditor.
//
// Plus the decode-allocation ablation: heap allocations per message for
// the owning decode (SubmitPoaRequest::decode + ProofOfAlibi::parse)
// vs. the pooled zero-copy decode (decode_view + PoaView::parse_into
// into reused scratch), counted by a global operator-new override.
//
// The pipeline's verdict bytes are compared against the serial path's
// for every frame — the determinism claim, checked here too, not just in
// the tests. Note: on a single-core container the pipeline shows little
// or no speedup (there is nothing to fan out onto); the >=2x acceptance
// number is for a multicore host.
//
// Usage: bench_auditor_scale [--drones N] [--proofs K] [--producers P]
//                            [--json <path>]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/auditor.h"
#include "core/ingest.h"
#include "core/messages.h"
#include "core/poa.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "net/message_bus.h"
#include "tee/sample_codec.h"

// ---- allocation counter -------------------------------------------------
// Counts every scalar/array new. Frees are uncounted (the metric is
// allocations per decoded message, not live bytes).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One registered fleet plus every drone's pre-encoded submission frames.
struct FleetCorpus {
  std::vector<core::RegisterDroneRequest> registrations;
  std::vector<core::DroneId> drone_ids;       // as assigned by register order
  std::vector<crypto::Bytes> frames;          // serialized SubmitPoaRequest
  std::size_t samples_per_poa = 4;

  FleetCorpus(std::size_t n_drones, std::size_t proofs_per_drone) {
    crypto::DeterministicRandom key_rng(std::string_view("scale-bench-keys"));
    std::vector<crypto::RsaKeyPair> tee_keys;
    for (std::size_t d = 0; d < n_drones; ++d) {
      tee_keys.push_back(crypto::generate_rsa_keypair(512, key_rng));
      const crypto::RsaKeyPair op = crypto::generate_rsa_keypair(512, key_rng);
      core::RegisterDroneRequest reg;
      reg.operator_key_n = op.pub.n.to_bytes();
      reg.operator_key_e = op.pub.e.to_bytes();
      reg.tee_key_n = tee_keys.back().pub.n.to_bytes();
      reg.tee_key_e = tee_keys.back().pub.e.to_bytes();
      registrations.push_back(std::move(reg));
    }

    // Register against a throwaway Auditor only to learn the ids the real
    // Auditors will assign (registration order fixes them).
    crypto::DeterministicRandom rng(std::string_view("scale-bench-id-probe"));
    core::Auditor probe(512, rng);
    for (const auto& reg : registrations) {
      drone_ids.push_back(probe.register_drone(reg).drone_id);
    }

    for (std::size_t d = 0; d < n_drones; ++d) {
      for (std::size_t p = 0; p < proofs_per_drone; ++p) {
        core::ProofOfAlibi poa;
        poa.drone_id = drone_ids[d];
        poa.mode = core::AuthMode::kRsaPerSample;
        poa.hash = crypto::HashAlgorithm::kSha1;
        for (std::size_t s = 0; s < samples_per_poa; ++s) {
          gps::GpsFix fix;
          fix.position =
              geo::GeoPoint{40.0 + 0.001 * static_cast<double>(d),
                            -88.0 + 0.001 * static_cast<double>(p)};
          fix.unix_time = kT0 + static_cast<double>(
                                    (d * proofs_per_drone + p) * samples_per_poa + s);
          core::SignedSample sample;
          sample.sample = tee::encode_sample(fix);
          sample.signature =
              crypto::rsa_sign(tee_keys[d].priv, sample.sample, poa.hash);
          poa.samples.push_back(std::move(sample));
        }
        core::SubmitPoaRequest request;
        request.poa = poa.serialize();
        frames.push_back(request.encode());
      }
    }
  }

  /// Register the whole fleet in registration order (same ids everywhere).
  void register_fleet(core::Auditor& auditor) const {
    for (const auto& reg : registrations) auditor.register_drone(reg);
  }
};

struct Options {
  std::size_t drones = 16;
  std::size_t proofs_per_drone = 8;
  std::size_t producers = 8;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> std::size_t {
      return i + 1 < argc ? static_cast<std::size_t>(std::atol(argv[++i])) : 0;
    };
    if (std::strcmp(argv[i], "--drones") == 0) opt.drones = next();
    else if (std::strcmp(argv[i], "--proofs") == 0) opt.proofs_per_drone = next();
    else if (std::strcmp(argv[i], "--producers") == 0) opt.producers = next();
  }
  if (opt.drones == 0) opt.drones = 1;
  if (opt.proofs_per_drone == 0) opt.proofs_per_drone = 1;
  if (opt.producers == 0) opt.producers = 1;
  return opt;
}

int run(int argc, char** argv) {
  const auto json_path = bench::take_json_flag(argc, argv);
  const bench::MetricsDump metrics_dump(bench::take_metrics_flag(argc, argv),
                                        "bench_auditor_scale");
  const Options opt = parse_options(argc, argv);
  const std::size_t n_frames = opt.drones * opt.proofs_per_drone;

  std::printf("building corpus: %zu drones x %zu proofs (%zu frames)...\n",
              opt.drones, opt.proofs_per_drone, n_frames);
  FleetCorpus corpus(opt.drones, opt.proofs_per_drone);

  // ---- decode allocations: owning vs. zero-copy view --------------------
  bench::print_header("decode allocations per message");
  double owning_allocs = 0.0;
  {
    const std::uint64_t before = allocs();
    for (const crypto::Bytes& frame : corpus.frames) {
      const auto request = core::SubmitPoaRequest::decode(frame);
      if (!request) return std::fprintf(stderr, "owning decode failed\n"), 1;
      const auto poa = core::ProofOfAlibi::parse(request->poa);
      if (!poa) return std::fprintf(stderr, "owning parse failed\n"), 1;
    }
    owning_allocs = static_cast<double>(allocs() - before) /
                    static_cast<double>(n_frames);
  }
  double view_allocs = 0.0;
  {
    core::PoaView view;
    // Warm the reused scratch: the first parse sizes the sample vector.
    core::PoaView::parse_into(*core::SubmitPoaRequest::decode_view(corpus.frames[0]),
                              view);
    const std::uint64_t before = allocs();
    for (const crypto::Bytes& frame : corpus.frames) {
      const auto bytes = core::SubmitPoaRequest::decode_view(frame);
      if (!bytes || !core::PoaView::parse_into(*bytes, view)) {
        return std::fprintf(stderr, "view decode failed\n"), 1;
      }
    }
    view_allocs = static_cast<double>(allocs() - before) /
                  static_cast<double>(n_frames);
  }
  const double alloc_ratio =
      view_allocs > 0.0 ? owning_allocs / view_allocs : owning_allocs;
  std::printf("  owning decode: %8.2f allocs/message\n", owning_allocs);
  std::printf("  view decode:   %8.2f allocs/message\n", view_allocs);
  std::printf("  ratio:         %8.2fx fewer\n", alloc_ratio);

  // ---- serial baseline: 1 thread, 1 shard, unbatched ---------------------
  bench::print_header("serial baseline (1 thread, auditor_shards=1)");
  core::ProtocolParams serial_params;
  serial_params.auditor_shards = 1;
  crypto::DeterministicRandom serial_rng{std::string_view("scale-bench-serial")};
  core::Auditor serial_auditor(512, serial_rng, serial_params);
  corpus.register_fleet(serial_auditor);
  std::vector<crypto::Bytes> serial_verdicts(n_frames);
  const double serial_start = now_s();
  for (std::size_t i = 0; i < n_frames; ++i) {
    core::PoaView view;
    const auto bytes = core::SubmitPoaRequest::decode_view(corpus.frames[i]);
    core::PoaView::parse_into(*bytes, view);
    const double t = view.end_time().value_or(0.0);
    serial_verdicts[i] = serial_auditor.verify_poa_bytes(*bytes, t).encode();
  }
  const double serial_elapsed = now_s() - serial_start;
  const double serial_pps = static_cast<double>(n_frames) / serial_elapsed;
  std::printf("  %zu proofs in %.3fs -> %.1f proofs/sec\n", n_frames,
              serial_elapsed, serial_pps);

  // ---- pipeline: P producers -> AuditorIngest ----------------------------
  bench::print_header("ingest pipeline (producers -> batch -> parallel verify)");
  core::ProtocolParams sharded_params;
  sharded_params.auditor_shards = 16;
  crypto::DeterministicRandom sharded_rng{std::string_view("scale-bench-sharded")};
  core::Auditor sharded_auditor(512, sharded_rng, sharded_params);
  corpus.register_fleet(sharded_auditor);
  core::AuditorIngest::Config ingest_config;
  ingest_config.queue_capacity = 1024;
  ingest_config.max_batch = 32;
  ingest_config.verify_threads = 8;
  core::AuditorIngest ingest(sharded_auditor, ingest_config);

  std::vector<crypto::Bytes> pipeline_verdicts(n_frames);
  const double pipeline_start = now_s();
  {
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < opt.producers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = p; i < n_frames; i += opt.producers) {
          crypto::Bytes reply = ingest.submit(corpus.frames[i]);
          while (net::is_retry_later(reply)) {
            std::this_thread::yield();
            reply = ingest.submit(corpus.frames[i]);
          }
          pipeline_verdicts[i] = std::move(reply);
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  const double pipeline_elapsed = now_s() - pipeline_start;
  const double pipeline_pps = static_cast<double>(n_frames) / pipeline_elapsed;
  const auto counters = ingest.counters();
  std::printf("  %zu proofs in %.3fs -> %.1f proofs/sec\n", n_frames,
              pipeline_elapsed, pipeline_pps);
  std::printf("  batches=%llu max_batch=%llu retry_later=%llu duplicates=%llu\n",
              static_cast<unsigned long long>(counters.batches),
              static_cast<unsigned long long>(counters.max_batch_seen),
              static_cast<unsigned long long>(counters.retry_later),
              static_cast<unsigned long long>(counters.duplicates));

  const double speedup = pipeline_pps / serial_pps;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n_frames; ++i) {
    if (serial_verdicts[i] != pipeline_verdicts[i]) ++mismatches;
  }
  bench::print_rule();
  std::printf("speedup: %.2fx   verdict mismatches: %zu/%zu\n", speedup,
              mismatches, n_frames);

  if (json_path) {
    bench::JsonRecordWriter writer(*json_path);
    const std::string cfg = std::to_string(opt.drones) + "drones_x" +
                            std::to_string(opt.proofs_per_drone) + "proofs";
    writer.write("auditor_scale", cfg + "/decode_owning", "allocs_per_message",
                 owning_allocs);
    writer.write("auditor_scale", cfg + "/decode_view", "allocs_per_message",
                 view_allocs);
    writer.write("auditor_scale", cfg, "decode_alloc_ratio", alloc_ratio);
    writer.write("auditor_scale", cfg + "/serial_shards1", "proofs_per_sec",
                 serial_pps);
    writer.write("auditor_scale",
                 cfg + "/pipeline_shards16_threads8_producers" +
                     std::to_string(opt.producers),
                 "proofs_per_sec", pipeline_pps);
    writer.write("auditor_scale", cfg, "pipeline_speedup", speedup);
    writer.write("auditor_scale", cfg, "verdict_mismatches",
                 static_cast<double>(mismatches));
    if (!writer.ok()) return 1;
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) { return alidrone::run(argc, argv); }
