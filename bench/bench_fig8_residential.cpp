// Regenerates Figure 8 (and stands in for the Figure 7 map): residential
// scenario — a ~1 mile drive past 94 dense house NFZs (radius 20 ft).
//
//  (a) distance to the nearest NFZ over time  (50-100 ft band tightening
//      to 20-70 ft, closest approach ~21 ft);
//  (b) instantaneous PoA sampling rate for 2/3/5 Hz Fix Rate Sampling vs
//      Adaptive Sampling (adaptive stays below 2 Hz in the sparse stretch
//      and pushes toward max rate in the dense stretch);
//  (c) cumulative count of insufficient PoA pairs (paper: 39 at 2 Hz,
//      9 at 3 Hz, and a single insufficiency for 5 Hz/adaptive caused by
//      a missed GPS hardware update at the 25 ft closest approach).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/sufficiency.h"

namespace alidrone::bench {
namespace {

struct PolicyOutcome {
  std::string name;
  std::size_t samples = 0;
  int insufficient = 0;
  std::vector<std::pair<double, double>> rate_series;  // (t, inst. rate)
  std::vector<std::pair<double, int>> insufficiency_series;
};

PolicyOutcome evaluate(const sim::Scenario& scenario,
                       std::unique_ptr<core::SamplingPolicy> policy,
                       const std::string& name, double gps_rate,
                       const std::vector<double>& miss_times) {
  const ScenarioRun run = run_scenario(scenario, gps_rate, *policy, miss_times);

  PolicyOutcome out;
  out.name = name;
  out.samples = run.result.poa_samples.size();

  // Decode the recorded PoA.
  std::vector<gps::GpsFix> fixes;
  for (const core::SignedSample& s : run.result.poa_samples) {
    if (const auto f = s.fix()) fixes.push_back(*f);
  }

  // (b) instantaneous rate = 1/gap between consecutive PoA samples.
  for (std::size_t i = 1; i < fixes.size(); ++i) {
    const double gap = fixes[i].unix_time - fixes[i - 1].unix_time;
    if (gap > 0.0) {
      out.rate_series.push_back({fixes[i].unix_time - kStartTime, 1.0 / gap});
    }
  }

  // (c) cumulative insufficiency (the Fig. 8(c) counting rule).
  core::InsufficiencyCounter counter(scenario.frame, scenario.local_zones(),
                                     geo::kFaaMaxSpeedMps);
  for (const gps::GpsFix& f : fixes) {
    counter.add_sample(f);
    out.insufficiency_series.push_back({f.unix_time - kStartTime, counter.count()});
  }
  out.insufficient = counter.count();
  return out;
}

double series_at(const std::vector<std::pair<double, double>>& series, double t) {
  double value = 0.0;
  for (const auto& [time, v] : series) {
    if (time > t) break;
    value = v;
  }
  return value;
}

int count_at(const std::vector<std::pair<double, int>>& series, double t) {
  int value = 0;
  for (const auto& [time, v] : series) {
    if (time > t) break;
    value = v;
  }
  return value;
}

}  // namespace
}  // namespace alidrone::bench

int main(int argc, char** argv) {
  using namespace alidrone;
  using namespace alidrone::bench;

  const auto json_path = take_json_flag(argc, argv);
  const MetricsDump metrics_dump(take_metrics_flag(argc, argv),
                                 "bench_fig8_residential");
  const sim::Scenario scenario = sim::make_residential_scenario(kStartTime);
  const auto zones = scenario.local_zones();

  // ---- Figure 7 stand-in: route & zone layout summary ----
  print_header("Figure 7 (stand-in): residential route and NFZ layout");
  std::printf("route: %.2f miles in %.0f s; %zu house NFZs of radius %.0f ft\n",
              geo::meters_to_miles(scenario.route.length_m()),
              scenario.route.duration(), scenario.zones.size(),
              geo::meters_to_feet(scenario.zones[0].radius_m));
  std::printf("leg 1: %.0f m east along street 1 (sparser, deeper setbacks)\n", 800.0);
  std::printf("leg 2: %.0f m north along street 2 (dense, shallow setbacks)\n", 810.0);

  // ---- (a) distance to the nearest NFZ + closest approach ----
  print_header("Figure 8(a): distance to the nearest NFZ over time");
  double min_dist = 1e18;
  double min_dist_time = 0.0;
  for (double t = scenario.route.start_time(); t <= scenario.route.end_time();
       t += 0.1) {
    const double d = core::nearest_zone_boundary_distance(
        scenario.route.local_position_at(t), zones);
    if (d < min_dist) {
      min_dist = d;
      min_dist_time = t;
    }
  }
  std::printf("t(s):        ");
  for (double t = 0; t <= scenario.route.duration(); t += 15.0) std::printf(" %6.0f", t);
  std::printf("\ndistance(ft):");
  for (double t = 0; t <= scenario.route.duration(); t += 15.0) {
    const double d = core::nearest_zone_boundary_distance(
        scenario.route.local_position_at(kStartTime + t), zones);
    std::printf(" %6.1f", geo::meters_to_feet(d));
  }
  std::printf("\nclosest approach: %.1f ft at t=%.1f s  (paper: 21 ft)\n",
              geo::meters_to_feet(min_dist), min_dist_time - kStartTime);

  // A missed hardware update is injected at the closest approach, as
  // observed in the paper's field study.
  const std::vector<double> miss_times{min_dist_time};

  // ---- run all four policies ----
  std::vector<PolicyOutcome> outcomes;
  outcomes.push_back(evaluate(
      scenario, std::make_unique<core::FixedRateSampler>(2.0, kStartTime),
      "2Hz Fix Rate", 5.0, miss_times));
  outcomes.push_back(evaluate(
      scenario, std::make_unique<core::FixedRateSampler>(3.0, kStartTime),
      "3Hz Fix Rate", 5.0, miss_times));
  outcomes.push_back(evaluate(
      scenario, std::make_unique<core::FixedRateSampler>(5.0, kStartTime),
      "5Hz Fix Rate", 5.0, miss_times));
  outcomes.push_back(evaluate(
      scenario,
      std::make_unique<core::AdaptiveSampler>(scenario.frame, zones,
                                              geo::kFaaMaxSpeedMps, 5.0),
      "Adaptive", 5.0, miss_times));

  // ---- (b) instantaneous sampling rate ----
  print_header("Figure 8(b): instantaneous sampling rate (Hz)");
  std::printf("%-14s", "t(s):");
  for (double t = 10; t <= scenario.route.duration(); t += 15.0) std::printf(" %6.0f", t);
  std::printf("\n");
  for (const PolicyOutcome& o : outcomes) {
    std::printf("%-14s", o.name.c_str());
    for (double t = 10; t <= scenario.route.duration(); t += 15.0) {
      std::printf(" %6.2f", series_at(o.rate_series, t));
    }
    std::printf("\n");
  }

  // ---- (c) cumulative insufficient PoAs ----
  print_header("Figure 8(c): total number of insufficient PoA pairs");
  std::printf("%-14s", "t(s):");
  for (double t = 15; t <= scenario.route.duration(); t += 15.0) std::printf(" %6.0f", t);
  std::printf("\n");
  for (const PolicyOutcome& o : outcomes) {
    std::printf("%-14s", o.name.c_str());
    for (double t = 15; t <= scenario.route.duration(); t += 15.0) {
      std::printf(" %6d", count_at(o.insufficiency_series, t));
    }
    std::printf("\n");
  }

  print_rule();
  std::printf("%-14s %10s %14s    (paper: 2Hz=39, 3Hz=9, 5Hz~=adaptive~=1 due to\n",
              "policy", "#samples", "#insufficient");
  std::printf("%-14s %10s %14s     a missed GPS update at 25 ft)\n", "", "", "");
  for (const PolicyOutcome& o : outcomes) {
    std::printf("%-14s %10zu %14d\n", o.name.c_str(), o.samples, o.insufficient);
  }

  // Shape checks: who wins and in what order.
  const bool shape_ok =
      outcomes[0].insufficient > outcomes[1].insufficient &&   // 2Hz worst
      outcomes[1].insufficient > outcomes[3].insufficient &&   // 3Hz worse than adaptive
      outcomes[3].insufficient <= outcomes[2].insufficient + 1 &&  // adaptive ~ 5Hz
      outcomes[3].samples < outcomes[2].samples;               // with fewer samples
  std::printf("shape vs paper: %s\n", shape_ok ? "OK" : "MISMATCH");

  if (json_path) {
    JsonRecordWriter writer(*json_path);
    for (const PolicyOutcome& o : outcomes) {
      std::string config = o.name;
      for (char& c : config) {
        if (c == ' ') c = '_';
      }
      writer.write("fig8_residential", config, "samples",
                   static_cast<double>(o.samples));
      writer.write("fig8_residential", config, "insufficient_poas",
                   static_cast<double>(o.insufficient));
    }
    writer.write("fig8_residential", "all", "shape_ok", shape_ok ? 1.0 : 0.0);
  }
  return shape_ok ? 0 : 1;
}
