// Ablation A4: geometry microbenchmarks — the smallest-enclosing-circle
// registration cost (Section VII-B2 claims linear time; Welzl is expected
// linear) and the per-update cost of the alibi geometry primitives that
// Algorithm 1 and the verifier run constantly.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <string>
#include <vector>

#include "core/zone_index.h"
#include "crypto/random.h"
#include "geo/ellipse.h"
#include "geo/ellipsoid.h"
#include "geo/geopoint.h"
#include "geo/polygon.h"

namespace alidrone::geo {
namespace {

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  crypto::DeterministicRandom rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform_double() * 1000.0, rng.uniform_double() * 1000.0});
  }
  return pts;
}

void BM_SmallestEnclosingCircle(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smallest_enclosing_circle(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SmallestEnclosingCircle)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_FocalDisjointTest(benchmark::State& state) {
  const TravelEllipse e({0, 0}, {100, 0}, 300.0);
  const Circle z{{400, 150}, 50.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.focal_test_disjoint(z));
  }
}
BENCHMARK(BM_FocalDisjointTest);

void BM_ExactDisjointTest(benchmark::State& state) {
  const TravelEllipse e({0, 0}, {100, 0}, 300.0);
  const Circle z{{400, 150}, 50.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.exactly_disjoint(z));
  }
}
BENCHMARK(BM_ExactDisjointTest);

void BM_NearestZoneScan(benchmark::State& state) {
  // The FindNearestZone step of Algorithm 1 over a residential-sized list.
  const auto centers = random_points(static_cast<std::size_t>(state.range(0)), 13);
  std::vector<Circle> zones;
  zones.reserve(centers.size());
  for (const Vec2 c : centers) zones.push_back({c, 6.1});
  const Vec2 p1{500, 500};
  const Vec2 p2{501, 500};
  for (auto _ : state) {
    double best = 1e300;
    for (const Circle& z : zones) {
      best = std::min(best, z.boundary_distance(p1) + z.boundary_distance(p2));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_NearestZoneScan)->Arg(94)->Arg(1000);

void BM_Ellipsoid3dExactTest(benchmark::State& state) {
  const TravelEllipsoid e({0, 0, 40}, {100, 0, 60}, 300.0);
  const Cylinder z{{400, 150}, 50.0, 120.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.exactly_disjoint(z));
  }
}
BENCHMARK(BM_Ellipsoid3dExactTest);

/// ZoneIndex hot paths at B4UFLY-ish scale (hash-grid storage). Arg =
/// registered zone count.
core::ZoneIndex build_zone_index(std::size_t n_zones) {
  crypto::DeterministicRandom rng(std::uint64_t{21});
  core::ZoneIndex index;
  index.reserve(n_zones);
  for (std::size_t i = 0; i < n_zones; ++i) {
    GeoZone z;
    z.center = {35.0 + 10.0 * rng.uniform_double(),
                -95.0 + 10.0 * rng.uniform_double()};
    z.radius_m = 30.0 + 200.0 * rng.uniform_double();
    index.insert("zone-" + std::to_string(i), z);
  }
  return index;
}

void BM_ZoneIndexInsert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::ZoneIndex index = build_zone_index(n);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ZoneIndexInsert)->Arg(1000)->Arg(10000);

void BM_ZoneIndexQueryRect(benchmark::State& state) {
  const core::ZoneIndex index =
      build_zone_index(static_cast<std::size_t>(state.range(0)));
  const core::QueryRect rect{{40.0, -90.5}, {40.5, -90.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query_rect(rect));
  }
}
BENCHMARK(BM_ZoneIndexQueryRect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ZoneIndexNearest(benchmark::State& state) {
  const core::ZoneIndex index =
      build_zone_index(static_cast<std::size_t>(state.range(0)));
  const GeoPoint p{40.1164, -88.2434};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.nearest(p));
  }
}
BENCHMARK(BM_ZoneIndexNearest)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HaversineDistance(benchmark::State& state) {
  const GeoPoint a{40.1164, -88.2434};
  const GeoPoint b{40.0393, -88.2781};
  for (auto _ : state) {
    benchmark::DoNotOptimize(haversine_distance(a, b));
  }
}
BENCHMARK(BM_HaversineDistance);

}  // namespace
}  // namespace alidrone::geo

int main(int argc, char** argv) {
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
