// Ablation A5: TEE world-switch overhead and Auditor-side verification
// throughput — the two ends of the PoA pipeline Table II does not break
// out. Uses google-benchmark for the hot paths.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/sampler.h"
#include "core/zone_index.h"
#include "net/message_bus.h"
#include "sim/planner.h"
#include "gps/receiver_sim.h"
#include "sim/scenarios.h"
#include "tee/gps_sampler_ta.h"
#include "tee/secure_monitor.h"

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

tee::DroneTee& bench_tee() {
  static tee::DroneTee tee = [] {
    tee::DroneTee::Config config;
    config.key_bits = 512;
    config.manufacturing_seed = "tee-bench";
    tee::DroneTee t(config);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = kT0;
    gps::GpsReceiverSim sim(rc, [](double tt) {
      gps::GpsFix f;
      f.position = {40.1164, -88.2434};
      f.unix_time = tt;
      return f;
    });
    for (const std::string& s : sim.advance_to(kT0)) t.feed_gps(s);
    return t;
  }();
  return tee;
}

/// Pure world-switch + dispatch cost: a command that does no crypto.
void BM_WorldSwitchRoundTrip(benchmark::State& state) {
  tee::DroneTee& tee = bench_tee();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetPublicKey)));
  }
}
BENCHMARK(BM_WorldSwitchRoundTrip);

/// Full GetGPSAuth: switch + read + sign (512-bit key on this host).
void BM_GetGpsAuth(benchmark::State& state) {
  tee::DroneTee& tee = bench_tee();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsAuth)));
  }
}
BENCHMARK(BM_GetGpsAuth)->Unit(benchmark::kMicrosecond);

/// End-to-end Auditor verification of a residential-scenario PoA.
struct VerifySetup {
  crypto::DeterministicRandom auditor_rng{std::string_view("verify-bench-auditor")};
  crypto::DeterministicRandom operator_rng{std::string_view("verify-bench-operator")};
  net::MessageBus bus;
  core::Auditor auditor{512, auditor_rng};
  tee::DroneTee tee;
  core::DroneClient client;
  core::ProofOfAlibi poa;

  VerifySetup()
      : tee([] {
          tee::DroneTee::Config config;
          config.key_bits = 512;
          config.manufacturing_seed = "verify-bench-device";
          return config;
        }()),
        client(tee, 512, operator_rng) {
    auditor.bind(bus);
    client.register_with_auditor(bus);

    const sim::Scenario scenario = sim::make_residential_scenario(kT0);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
    core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                                 geo::kFaaMaxSpeedMps, 5.0);
    core::FlightConfig config;
    config.end_time = scenario.route.end_time();
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    poa = client.fly(receiver, policy, config);
  }
};

VerifySetup& verify_setup() {
  static VerifySetup setup;
  return setup;
}

void BM_AuditorVerifyPoa(benchmark::State& state) {
  VerifySetup& s = verify_setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.auditor.verify_poa(s.poa, kT0 + 500));
  }
  state.counters["samples_per_poa"] =
      static_cast<double>(s.poa.samples.size());
  state.counters["verifies_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AuditorVerifyPoa)->Unit(benchmark::kMillisecond);

void BM_PoaSerializeParse(benchmark::State& state) {
  VerifySetup& s = verify_setup();
  for (auto _ : state) {
    const crypto::Bytes bytes = s.poa.serialize();
    benchmark::DoNotOptimize(core::ProofOfAlibi::parse(bytes));
  }
  state.counters["poa_bytes"] = static_cast<double>(s.poa.serialize().size());
}
BENCHMARK(BM_PoaSerializeParse);

void BM_SufficiencyCheck(benchmark::State& state) {
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  // One decoded fix per second along the route.
  std::vector<gps::GpsFix> fixes;
  for (double t = scenario.route.start_time(); t <= scenario.route.end_time();
       t += 1.0) {
    fixes.push_back(scenario.route.state_at(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::check_sufficiency(fixes, scenario.zones, geo::kFaaMaxSpeedMps));
  }
  state.counters["pairs"] = static_cast<double>(fixes.size() - 1);
  state.counters["zones"] = static_cast<double>(scenario.zones.size());
}
BENCHMARK(BM_SufficiencyCheck)->Unit(benchmark::kMicrosecond);

/// Zone-query scaling: spatial index vs linear scan at B4UFLY-like sizes.
struct ZoneDb {
  core::ZoneIndex index;
  std::vector<std::pair<core::ZoneId, geo::GeoZone>> flat;

  explicit ZoneDb(int n) {
    crypto::DeterministicRandom rng("zone-db-bench");
    for (int i = 0; i < n; ++i) {
      const geo::GeoZone z{{35.0 + 10.0 * rng.uniform_double(),
                            -95.0 + 10.0 * rng.uniform_double()},
                           50.0};
      const core::ZoneId id = "zone-" + std::to_string(i);
      index.insert(id, z);
      flat.emplace_back(id, z);
    }
  }
};

void BM_ZoneQueryIndexed(benchmark::State& state) {
  const ZoneDb db(static_cast<int>(state.range(0)));
  const core::QueryRect rect{{40.0, -90.5}, {40.3, -90.2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.index.query_rect(rect));
  }
}
BENCHMARK(BM_ZoneQueryIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ZoneQueryLinearScan(benchmark::State& state) {
  const ZoneDb db(static_cast<int>(state.range(0)));
  const core::QueryRect rect{{40.0, -90.5}, {40.3, -90.2}};
  for (auto _ : state) {
    std::vector<core::ZoneId> hits;
    for (const auto& [id, z] : db.flat) {
      if (rect.contains(z.center)) hits.push_back(id);
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_ZoneQueryLinearScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PlannerVisibilityGraph(benchmark::State& state) {
  crypto::DeterministicRandom rng("planner-bench");
  std::vector<geo::Circle> zones;
  for (int i = 0; i < state.range(0); ++i) {
    zones.push_back({{100.0 + 1000.0 * rng.uniform_double(),
                      -300.0 + 600.0 * rng.uniform_double()},
                     20.0 + 20.0 * rng.uniform_double()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::plan_route({0, 0}, {1200, 0}, zones));
  }
}
BENCHMARK(BM_PlannerVisibilityGraph)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) {
  return alidrone::bench::benchmark_main_with_json(argc, argv);
}
