// Regenerates Figure 6: airport scenario — cumulative number of GPS
// samples in the PoA vs distance to the no-fly-zone boundary, for 1 Hz
// Fix Rate Sampling and for Adaptive Sampling.
//
// Paper result: 649 samples at 1 Hz fixed vs 14 samples adaptive over a
// ~12 minute drive receding from a 5-mile airport NFZ. The shape to
// reproduce: the fixed-rate curve grows linearly with time regardless of
// distance, while the adaptive curve flattens out almost immediately —
// an order-of-magnitude-plus reduction.
#include <cstdio>

#include "bench_util.h"
#include "core/sufficiency.h"

namespace alidrone::bench {
namespace {

struct Series {
  std::string name;
  std::size_t total_samples = 0;
  // (distance_to_nfz_ft, cumulative_samples) at regular distance stops.
  std::vector<std::pair<double, std::size_t>> points;
};

Series run_series(const sim::Scenario& scenario, const std::string& name,
                  bool adaptive) {
  const double gps_rate = 5.0;  // receiver max rate; sampler decides usage
  std::unique_ptr<core::SamplingPolicy> policy;
  if (adaptive) {
    policy = std::make_unique<core::AdaptiveSampler>(
        scenario.frame, scenario.local_zones(), geo::kFaaMaxSpeedMps, gps_rate);
  } else {
    policy = std::make_unique<core::FixedRateSampler>(1.0, kStartTime);
  }
  const ScenarioRun run = run_scenario(scenario, gps_rate, *policy);

  Series series;
  series.name = name;
  series.total_samples = run.result.poa_samples.size();

  double next_stop_ft = 0.0;
  for (const core::FlightLogEntry& e : run.result.log) {
    const double dist_ft = geo::meters_to_feet(e.nearest_zone_distance);
    if (dist_ft >= next_stop_ft) {
      series.points.push_back({dist_ft, e.cumulative_samples});
      next_stop_ft += 1000.0;
    }
  }
  return series;
}

}  // namespace
}  // namespace alidrone::bench

int main(int argc, char** argv) {
  using namespace alidrone;
  using namespace alidrone::bench;

  const auto json_path = take_json_flag(argc, argv);
  const MetricsDump metrics_dump(take_metrics_flag(argc, argv),
                                 "bench_fig6_airport");
  const sim::Scenario scenario = sim::make_airport_scenario(kStartTime);

  print_header("Figure 6: airport scenario (NFZ radius 5 mi, receding drive)");
  std::printf("route: %.2f miles in %.1f minutes, start %.1f ft outside the NFZ\n",
              geo::meters_to_miles(scenario.route.length_m()),
              scenario.route.duration() / 60.0,
              geo::meters_to_feet(geo::to_local(scenario.frame, scenario.zones[0])
                                      .boundary_distance(scenario.route.local_position_at(
                                          scenario.route.start_time()))));

  const Series fixed = run_series(scenario, "1Hz Fix Rate Sampling", false);
  const Series adaptive = run_series(scenario, "Adaptive Sampling", true);

  print_rule();
  std::printf("%-22s | cumulative #samples vs distance to NFZ boundary\n", "");
  std::printf("%-22s |", "distance (ft)");
  for (const auto& [dist, n] : fixed.points) std::printf(" %7.0f", dist);
  std::printf("\n");
  std::printf("%-22s |", fixed.name.c_str());
  for (const auto& [dist, n] : fixed.points) std::printf(" %7zu", n);
  std::printf("\n");
  std::printf("%-22s |", adaptive.name.c_str());
  for (const auto& [dist, n] : adaptive.points) std::printf(" %7zu", n);
  std::printf("\n");
  print_rule();

  std::printf("TOTALS   fixed 1Hz: %zu samples   adaptive: %zu samples   "
              "reduction: %.1fx\n",
              fixed.total_samples, adaptive.total_samples,
              static_cast<double>(fixed.total_samples) /
                  static_cast<double>(std::max<std::size_t>(1, adaptive.total_samples)));
  std::printf("paper    fixed 1Hz: 649 samples   adaptive: 14 samples   "
              "reduction: 46.4x\n");

  // Sanity: the adaptive PoA must still be sufficient.
  std::vector<gps::GpsFix> fixes;
  {
    std::unique_ptr<core::SamplingPolicy> policy =
        std::make_unique<core::AdaptiveSampler>(scenario.frame, scenario.local_zones(),
                                                geo::kFaaMaxSpeedMps, 5.0);
    const ScenarioRun run = run_scenario(scenario, 5.0, *policy);
    for (const core::SignedSample& s : run.result.poa_samples) {
      if (const auto f = s.fix()) fixes.push_back(*f);
    }
  }
  const core::SufficiencyReport report =
      core::check_sufficiency(fixes, scenario.zones, geo::kFaaMaxSpeedMps);
  std::printf("adaptive PoA sufficiency (eq. 1): %s\n",
              report.sufficient ? "SUFFICIENT" : "INSUFFICIENT");

  if (json_path) {
    JsonRecordWriter writer(*json_path);
    writer.write("fig6_airport", "fixed_1hz", "total_samples",
                 static_cast<double>(fixed.total_samples));
    writer.write("fig6_airport", "adaptive", "total_samples",
                 static_cast<double>(adaptive.total_samples));
    writer.write("fig6_airport", "adaptive", "sample_reduction",
                 static_cast<double>(fixed.total_samples) /
                     static_cast<double>(
                         std::max<std::size_t>(1, adaptive.total_samples)));
    writer.write("fig6_airport", "adaptive", "sufficient",
                 report.sufficient ? 1.0 : 0.0);
  }
  return report.sufficient ? 0 : 1;
}
