// merge_json — strict merger for per-bench JsonRecordWriter files.
//
// run_all.sh used to splice per-bench record files together with
// grep/sed, which silently dropped anything that didn't look like a
// record and produced a corrupt merged array when a writer's format
// drifted. This tool is the replacement: it parses every input against
// the exact shape JsonRecordWriter emits — `[`, one
// `{"bench": ..., "config": ..., "metric": ..., "value": N}` record per
// line, `]` — and re-emits all records through JsonRecordWriter itself,
// so the merged file and the per-bench files share one writer code path.
// Any unrecognized line is a loud error naming the file and line number,
// and the tool exits non-zero without writing partial output.
//
// Usage: merge_json <output.json> <input.json> [input.json ...]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

struct Record {
  std::string bench;
  std::string config;
  std::string metric;
  double value = 0.0;
};

class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  bool literal(const std::string& expected) {
    if (line_.compare(pos_, expected.size(), expected) != 0) return false;
    pos_ += expected.size();
    return true;
  }

  /// A quoted string with no escapes (JsonRecordWriter never emits any).
  bool quoted(std::string& out) {
    if (pos_ >= line_.size() || line_[pos_] != '"') return false;
    const std::size_t end = line_.find('"', pos_ + 1);
    if (end == std::string::npos) return false;
    out = line_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    return true;
  }

  bool number(double& out) {
    std::size_t used = 0;
    try {
      out = std::stod(line_.substr(pos_), &used);
    } catch (...) {
      return false;
    }
    pos_ += used;
    return true;
  }

  bool at_end() const { return pos_ == line_.size(); }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

bool parse_record(std::string line, Record& out) {
  // Strip indentation and the record separator; everything else is exact.
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
    line.erase(line.begin());
  }
  if (!line.empty() && line.back() == ',') line.pop_back();
  LineParser p(line);
  return p.literal("{\"bench\": ") && p.quoted(out.bench) &&
         p.literal(", \"config\": ") && p.quoted(out.config) &&
         p.literal(", \"metric\": ") && p.quoted(out.metric) &&
         p.literal(", \"value\": ") && p.number(out.value) &&
         p.literal("}") && p.at_end();
}

bool is_blank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

int fail(const std::string& path, std::size_t line_no, const std::string& line) {
  std::fprintf(stderr, "merge_json: %s:%zu: unrecognized line: %s\n",
               path.c_str(), line_no, line.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: merge_json <output.json> <input.json> [...]\n");
    return 2;
  }

  std::vector<Record> records;
  for (int i = 2; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "merge_json: cannot open %s\n", path.c_str());
      return 1;
    }
    bool saw_open = false;
    bool saw_close = false;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (is_blank(line)) continue;
      if (saw_close) return fail(path, line_no, line);
      if (!saw_open) {
        if (line != "[") return fail(path, line_no, line);
        saw_open = true;
        continue;
      }
      if (line == "]") {
        saw_close = true;
        continue;
      }
      Record record;
      if (!parse_record(line, record)) return fail(path, line_no, line);
      records.push_back(std::move(record));
    }
    if (!saw_open || !saw_close) {
      std::fprintf(stderr, "merge_json: %s: not a complete record array\n",
                   path.c_str());
      return 1;
    }
  }

  alidrone::bench::JsonRecordWriter writer(argv[1]);
  for (const Record& record : records) {
    writer.write(record.bench, record.config, record.metric, record.value);
  }
  if (!writer.ok()) {
    std::fprintf(stderr, "merge_json: failed writing %s\n", argv[1]);
    return 1;
  }
  std::printf("merge_json: wrote %zu records to %s\n", records.size(), argv[1]);
  return 0;
}
