// Tamper-evident ledger + replication bench (robustness PR).
//
// Three measurements, each with a built-in shape check so CI can run this
// as a smoke test without parsing numbers:
//
//   append       entries/sec into an in-memory ledger and into a durable
//                (CRC-framed, flushed) directory-backed ledger. Check:
//                both streams end on the byte-identical root.
//   proofs       inclusion-proof generation and verification per second
//                over the in-memory ledger. Check: every proof verifies
//                against the root, and none verifies under a flipped
//                leaf.
//   catch_up     wall time for a replica that missed W replicated writes
//                (its .apply endpoint dark the whole run) to pull the
//                backlog segment-by-segment from a peer. Check: the
//                reapplied count equals W and both replicas end on the
//                same root.
//
// Usage: bench_ledger_replication [--appends N] [--durable-appends N]
//                                 [--writes W] [--json <path>]
//                                 [--metrics <path>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/replicated_auditor.h"
#include "core/zone_owner.h"
#include "crypto/random.h"
#include "geo/geopoint.h"
#include "ledger/ledger.h"
#include "net/message_bus.h"
#include "resilience/sim_clock.h"

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Options {
  std::size_t appends = 20000;
  std::size_t durable_appends = 4000;
  std::size_t writes = 100;  ///< replicated writes the laggard misses
};

std::optional<std::size_t> take_size_flag(int& argc, char** argv,
                                          const std::string& name) {
  const auto text = bench::take_path_flag(argc, argv, name);
  if (!text) return std::nullopt;
  return static_cast<std::size_t>(std::strtoull(text->c_str(), nullptr, 10));
}

crypto::Bytes entry_payload(std::size_t i) {
  const std::string line = std::to_string(kT0 + static_cast<double>(i)) +
                           "|poa_verdict|drone-" + std::to_string(i % 64) +
                           "|ok|speed plausible; zones clear";
  return crypto::Bytes(line.begin(), line.end());
}

std::size_t fill(ledger::Ledger& led, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    led.append(ledger::EntryKind::kAuditEvent, kT0 + static_cast<double>(i),
               entry_payload(i));
  }
  return count;
}

int run(int argc, char** argv) {
  const auto json_path = bench::take_json_flag(argc, argv);
  const bench::MetricsDump metrics_dump(bench::take_metrics_flag(argc, argv),
                                        "bench_ledger_replication");
  Options opt;
  if (const auto v = take_size_flag(argc, argv, "appends")) opt.appends = *v;
  if (const auto v = take_size_flag(argc, argv, "durable-appends")) {
    opt.durable_appends = *v;
  }
  if (const auto v = take_size_flag(argc, argv, "writes")) opt.writes = *v;
  bool ok = true;

  // ---- append throughput -------------------------------------------------
  bench::print_header("ledger append (segment_capacity=256)");
  ledger::Ledger memory_ledger;
  double start = now_s();
  fill(memory_ledger, opt.appends);
  const double memory_elapsed = now_s() - start;
  const double memory_aps = static_cast<double>(opt.appends) / memory_elapsed;
  std::printf("  in-memory: %zu entries in %.3fs -> %.0f appends/sec\n",
              opt.appends, memory_elapsed, memory_aps);

  const auto dir = std::filesystem::temp_directory_path() /
                   "alidrone-bench-ledger-replication";
  std::filesystem::remove_all(dir);
  double durable_aps = 0.0;
  {
    ledger::Ledger::Config config;
    config.directory = dir;
    ledger::Ledger durable_ledger(config);
    start = now_s();
    fill(durable_ledger, opt.durable_appends);
    const double durable_elapsed = now_s() - start;
    durable_aps = static_cast<double>(opt.durable_appends) / durable_elapsed;
    std::printf("  durable:   %zu entries in %.3fs -> %.0f appends/sec\n",
                opt.durable_appends, durable_elapsed, durable_aps);

    // Shape check: the durable stream is the same stream — its root after
    // N entries equals the in-memory ledger's root after the same N.
    ledger::Ledger prefix_ledger;
    fill(prefix_ledger, opt.durable_appends);
    if (durable_ledger.root_hash() != prefix_ledger.root_hash()) {
      std::printf("  FAIL: durable root differs from in-memory root\n");
      ok = false;
    }
  }
  std::filesystem::remove_all(dir);

  // ---- inclusion proofs --------------------------------------------------
  bench::print_header("inclusion proofs");
  const ledger::Digest root = memory_ledger.root_hash();
  std::vector<ledger::Ledger::InclusionProof> proofs;
  std::vector<ledger::Digest> leaves;
  proofs.reserve(opt.appends);
  leaves.reserve(opt.appends);
  start = now_s();
  for (std::uint64_t seq = 0; seq < opt.appends; ++seq) {
    auto proof = memory_ledger.prove(seq);
    if (!proof) {
      std::printf("  FAIL: no proof for seq %llu\n",
                  static_cast<unsigned long long>(seq));
      ok = false;
      break;
    }
    leaves.push_back(memory_ledger.entry(seq)->leaf_hash());
    proofs.push_back(std::move(*proof));
  }
  const double prove_elapsed = now_s() - start;
  const double prove_ps = static_cast<double>(proofs.size()) / prove_elapsed;

  std::size_t verified = 0;
  start = now_s();
  for (std::size_t i = 0; i < proofs.size(); ++i) {
    if (ledger::Ledger::verify_inclusion(root, leaves[i], proofs[i])) {
      ++verified;
    }
  }
  const double verify_elapsed = now_s() - start;
  const double verify_ps = static_cast<double>(proofs.size()) / verify_elapsed;
  std::printf("  %zu proofs: %.0f prove/sec, %.0f verify/sec\n", proofs.size(),
              prove_ps, verify_ps);
  if (verified != proofs.size()) {
    std::printf("  FAIL: %zu/%zu proofs verified\n", verified, proofs.size());
    ok = false;
  }
  if (!proofs.empty()) {
    ledger::Digest flipped = leaves[0];
    flipped[0] ^= 0x01;
    if (ledger::Ledger::verify_inclusion(root, flipped, proofs[0])) {
      std::printf("  FAIL: flipped leaf still verified\n");
      ok = false;
    }
  }

  // ---- replication catch-up ----------------------------------------------
  bench::print_header("replication catch-up");
  net::MessageBus bus;
  resilience::SimClock clock(0.0);
  core::ReplicatedAuditor::Config fed_config;
  fed_config.replicas = 2;
  fed_config.key_bits = 512;
  fed_config.key_seed = "bench-ledger-replication";
  fed_config.segment_capacity = 64;
  core::ReplicatedAuditor fed(bus, clock, fed_config);

  // Replica 1 misses everything: its replication inlet is dark for the
  // whole write phase.
  net::MessageBus::FaultConfig faults;
  faults.seed = 1;
  net::FaultWindow window;
  window.endpoint = "auditor1.apply";
  window.start = 0.0;
  window.end = 1e12;
  window.kind = net::FaultKind::kOutage;
  window.probability = 1.0;
  faults.schedule.push_back(window);
  bus.set_faults(faults);

  crypto::DeterministicRandom owner_rng("bench-ledger-owner");
  core::ZoneOwner owner(512, owner_rng);
  const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  for (std::size_t i = 0; i < opt.writes; ++i) {
    const geo::GeoZone zone{
        frame.to_geo(geo::Vec2{static_cast<double>(i) * 50.0, 400.0}), 30.0};
    owner.register_zone(bus, zone, "bench zone " + std::to_string(i),
                        "auditor0");
  }

  bus.set_faults(net::MessageBus::FaultConfig{});  // the outage ends
  start = now_s();
  const auto reapplied = fed.catch_up(1, 0);
  const double catchup_elapsed = now_s() - start;
  const double catchup_wps =
      static_cast<double>(opt.writes) / catchup_elapsed;
  std::printf("  %zu missed writes reapplied in %.3fs -> %.0f writes/sec\n",
              opt.writes, catchup_elapsed, catchup_wps);
  if (!reapplied || *reapplied != opt.writes || !fed.converged()) {
    std::printf("  FAIL: reapplied=%lld converged=%d (want %zu, true)\n",
                reapplied ? static_cast<long long>(*reapplied) : -1,
                fed.converged() ? 1 : 0, opt.writes);
    ok = false;
  }

  bench::print_rule();
  std::printf("shape checks: %s\n", ok ? "ok" : "FAILED");

  if (json_path) {
    bench::JsonRecordWriter writer(*json_path);
    const std::string cfg = std::to_string(opt.appends) + "entries";
    writer.write("ledger_replication", cfg + "/memory", "appends_per_sec",
                 memory_aps);
    writer.write("ledger_replication",
                 std::to_string(opt.durable_appends) + "entries/durable",
                 "appends_per_sec", durable_aps);
    writer.write("ledger_replication", cfg, "proofs_per_sec", prove_ps);
    writer.write("ledger_replication", cfg, "proof_verify_per_sec", verify_ps);
    writer.write("ledger_replication",
                 std::to_string(opt.writes) + "writes", "catchup_seconds",
                 catchup_elapsed);
    writer.write("ledger_replication",
                 std::to_string(opt.writes) + "writes",
                 "catchup_writes_per_sec", catchup_wps);
    writer.write("ledger_replication", cfg, "shape_check_failures",
                 ok ? 0.0 : 1.0);
    if (!writer.ok()) return 1;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace alidrone

int main(int argc, char** argv) { return alidrone::run(argc, argv); }
