// Resilience layer unit tests: SimClock, RetryPolicy, CircuitBreaker and
// ReliableChannel — deterministic behaviour of each piece in isolation,
// plus the pass-through guarantee (no faults => no overhead) the chaos
// harness builds on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "crypto/random.h"
#include "net/message_bus.h"
#include "resilience/circuit_breaker.h"
#include "resilience/reliable_channel.h"
#include "resilience/retry_policy.h"
#include "resilience/sim_clock.h"

namespace alidrone::resilience {
namespace {

// ---------------------------------------------------------------- SimClock

TEST(SimClockTest, AdvanceIsMonotonicAndCounted) {
  SimClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);
  EXPECT_EQ(clock.advances(), 0u);

  EXPECT_DOUBLE_EQ(clock.advance(2.5), 102.5);
  EXPECT_DOUBLE_EQ(clock.advance(-5.0), 102.5);  // negative deltas ignored
  EXPECT_EQ(clock.advances(), 2u);

  clock.advance_to(200.0);
  EXPECT_DOUBLE_EQ(clock.now(), 200.0);
  clock.advance_to(50.0);  // no travelling back
  EXPECT_DOUBLE_EQ(clock.now(), 200.0);
}

// ------------------------------------------------------------- RetryPolicy

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.5;
  policy.jitter_fraction = 0.0;  // exact values

  crypto::DeterministicRandom rng(7);
  EXPECT_DOUBLE_EQ(policy.backoff_after(1, rng), 0.1);
  EXPECT_DOUBLE_EQ(policy.backoff_after(2, rng), 0.2);
  EXPECT_DOUBLE_EQ(policy.backoff_after(3, rng), 0.4);
  EXPECT_DOUBLE_EQ(policy.backoff_after(4, rng), 0.5);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_after(9, rng), 0.5);  // stays capped
}

TEST(RetryPolicyTest, JitterStaysWithinFractionAndReplays) {
  RetryPolicy policy;
  policy.initial_backoff_s = 1.0;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.2;

  crypto::DeterministicRandom rng_a(42);
  crypto::DeterministicRandom rng_b(42);
  bool saw_jitter = false;
  for (std::uint32_t attempt = 1; attempt <= 64; ++attempt) {
    const double a = policy.backoff_after(attempt, rng_a);
    EXPECT_GE(a, 0.8);
    EXPECT_LE(a, 1.2);
    if (std::abs(a - 1.0) > 1e-6) saw_jitter = true;
    // Same seed => bit-identical schedule.
    EXPECT_DOUBLE_EQ(a, policy.backoff_after(attempt, rng_b));
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(RetryPolicyTest, ZeroJitterStillConsumesOneDraw) {
  // The stream position must not depend on whether jitter is enabled, so
  // a schedule stays reproducible when jitter is toggled.
  RetryPolicy with_jitter;
  with_jitter.jitter_fraction = 0.1;
  RetryPolicy without = with_jitter;
  without.jitter_fraction = 0.0;

  crypto::DeterministicRandom rng_a(9);
  crypto::DeterministicRandom rng_b(9);
  (void)with_jitter.backoff_after(1, rng_a);
  (void)without.backoff_after(1, rng_b);
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

// ---------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.cooldown_s = 10.0;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.on_failure(0.0);
  breaker.on_failure(0.1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(0.2));
  breaker.on_failure(0.2);  // third consecutive failure trips it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  EXPECT_FALSE(breaker.allow(0.3));  // fail fast during cool-down
  EXPECT_FALSE(breaker.allow(9.0));
  EXPECT_EQ(breaker.rejections(), 2u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker::Config config;
  config.failure_threshold = 2;
  CircuitBreaker breaker(config);

  breaker.on_failure(0.0);
  breaker.on_success();  // streak broken
  breaker.on_failure(1.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.on_failure(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOrReopens) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown_s = 5.0;
  CircuitBreaker breaker(config);

  breaker.on_failure(0.0);  // threshold 1: open immediately
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cool-down elapsed: one probe is let through.
  EXPECT_TRUE(breaker.allow(5.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // Probe fails: re-open with a fresh cool-down from the failure time.
  breaker.on_failure(5.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(9.9));

  // Second probe succeeds: closed again.
  EXPECT_TRUE(breaker.allow(10.0));
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(10.1));
}

TEST(CircuitBreakerTest, StateNamesForDiagnostics) {
  EXPECT_EQ(to_string(CircuitBreaker::State::kClosed), "closed");
  EXPECT_EQ(to_string(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(to_string(CircuitBreaker::State::kHalfOpen), "half-open");
}

// --------------------------------------------------------- ReliableChannel

net::FaultWindow make_window(const std::string& endpoint, double start,
                             double end, net::FaultKind kind) {
  net::FaultWindow window;
  window.endpoint = endpoint;
  window.start = start;
  window.end = end;
  window.kind = kind;
  return window;
}

struct ChannelFixture : ::testing::Test {
  net::MessageBus bus;
  SimClock clock{0.0};

  void bind_echo(const std::string& endpoint) {
    bus.register_endpoint(endpoint, [](const crypto::Bytes& payload) {
      crypto::Bytes reply = payload;
      reply.push_back(0xEE);
      return reply;
    });
  }

  static ReliableChannel::Config fast_config() {
    ReliableChannel::Config config;
    config.retry.max_attempts = 5;
    config.retry.initial_backoff_s = 1.0;
    config.retry.backoff_multiplier = 2.0;
    config.retry.max_backoff_s = 8.0;
    config.retry.jitter_fraction = 0.0;  // exact timelines in tests
    config.retry.deadline_s = 0.0;       // no deadline unless a test sets one
    config.breaker.failure_threshold = 3;
    config.breaker.cooldown_s = 30.0;
    return config;
  }
};

TEST_F(ChannelFixture, PassThroughWithoutFaultsAddsNothing) {
  bind_echo("svc.echo");
  ReliableChannel channel(bus, clock, fast_config());

  for (int i = 0; i < 10; ++i) {
    const auto outcome = channel.request("svc.echo", crypto::Bytes{1, 2, 3});
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.attempts, 1u);
  }
  // The zero-overhead proof: one bus attempt per logical request, no
  // retries, no backoff sleeps, no breaker activity.
  EXPECT_EQ(channel.counters().requests, 10u);
  EXPECT_EQ(channel.counters().attempts, 10u);
  EXPECT_EQ(channel.counters().retries, 0u);
  EXPECT_EQ(channel.breaker_trips(), 0u);
  EXPECT_EQ(clock.advances(), 0u);
  EXPECT_EQ(bus.requests_sent(), 10u);
}

TEST_F(ChannelFixture, RetriesThroughAnOutageWindow) {
  bind_echo("svc.echo");
  // Outage for t in [0, 2.5): the first two attempts (t=0, t=1) die, the
  // third (t=3 after 1s + 2s backoffs) lands.
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back(make_window("svc.echo", 0.0, 2.5, net::FaultKind::kOutage));
  bus.set_faults(faults);

  ReliableChannel channel(bus, clock, fast_config());
  const auto outcome = channel.request("svc.echo", crypto::Bytes{7});
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(channel.counters().retries, 2u);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  EXPECT_EQ(channel.breaker_trips(), 0u);  // recovered before the threshold
}

TEST_F(ChannelFixture, ExhaustedRetriesReportFailure) {
  bind_echo("svc.echo");
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back(make_window("svc.echo", 0.0, 1e9, net::FaultKind::kOutage));
  bus.set_faults(faults);

  ReliableChannel::Config config = fast_config();
  config.breaker.failure_threshold = 100;  // isolate retry behaviour
  ReliableChannel channel(bus, clock, config);

  const auto outcome = channel.request("svc.echo", crypto::Bytes{7});
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.circuit_open);
  EXPECT_EQ(outcome.attempts, 5u);
  EXPECT_EQ(channel.counters().failures, 1u);
}

TEST_F(ChannelFixture, BreakerTripsAndFailsFastThenRecovers) {
  bind_echo("svc.echo");
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back({"svc.echo", 0.0, 20.0, net::FaultKind::kOutage});
  bus.set_faults(faults);

  ReliableChannel channel(bus, clock, fast_config());

  // Threshold 3: the first logical request burns 3 attempts and trips.
  auto outcome = channel.request("svc.echo", crypto::Bytes{1});
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.circuit_open);  // 4th attempt refused by the breaker
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(channel.breaker_trips(), 1u);

  // While open: immediate fast-fail, no bus traffic.
  const std::uint64_t sent_before = bus.requests_sent();
  outcome = channel.request("svc.echo", crypto::Bytes{2});
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.circuit_open);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(bus.requests_sent(), sent_before);
  EXPECT_GE(channel.counters().breaker_fast_fails, 1u);

  // After the cool-down (30 s) the outage is over: the half-open probe
  // succeeds and the breaker closes.
  clock.advance_to(40.0);
  outcome = channel.request("svc.echo", crypto::Bytes{3});
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
  ASSERT_NE(channel.breaker("svc.echo"), nullptr);
  EXPECT_EQ(channel.breaker("svc.echo")->state(),
            CircuitBreaker::State::kClosed);
}

TEST_F(ChannelFixture, BreakersAreIndependentPerEndpoint) {
  bind_echo("svc.up");
  bind_echo("svc.down");
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back(make_window("svc.down", 0.0, 1e9, net::FaultKind::kOutage));
  bus.set_faults(faults);

  ReliableChannel channel(bus, clock, fast_config());
  EXPECT_FALSE(channel.request("svc.down", crypto::Bytes{1}).ok);
  ASSERT_NE(channel.breaker("svc.down"), nullptr);
  EXPECT_EQ(channel.breaker("svc.down")->state(), CircuitBreaker::State::kOpen);

  // The healthy endpoint is unaffected by its neighbour's open breaker.
  EXPECT_TRUE(channel.request("svc.up", crypto::Bytes{2}).ok);
  ASSERT_NE(channel.breaker("svc.up"), nullptr);
  EXPECT_EQ(channel.breaker("svc.up")->state(), CircuitBreaker::State::kClosed);
}

TEST_F(ChannelFixture, DeadlineStopsRetriesEarly) {
  bind_echo("svc.echo");
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back(make_window("svc.echo", 0.0, 1e9, net::FaultKind::kOutage));
  bus.set_faults(faults);

  ReliableChannel::Config config = fast_config();
  config.retry.deadline_s = 2.0;  // allows the 1 s backoff, not the 2 s one
  config.breaker.failure_threshold = 100;
  ReliableChannel channel(bus, clock, config);

  const auto outcome = channel.request("svc.echo", crypto::Bytes{1});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_NE(outcome.error.find("deadline"), std::string::npos);
}

TEST_F(ChannelFixture, UnknownEndpointIsNotRetried) {
  ReliableChannel channel(bus, clock, fast_config());
  const auto outcome = channel.request("svc.ghost", crypto::Bytes{1});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);  // a wiring bug, not a transient fault
  EXPECT_EQ(channel.counters().retries, 0u);
}

TEST_F(ChannelFixture, LatencyWindowChargesTheClock) {
  bind_echo("svc.echo");
  net::MessageBus::FaultConfig faults;
  net::FaultWindow window = make_window("svc.echo", 0.0, 1e9, net::FaultKind::kLatency);
  window.latency_s = 0.75;
  faults.schedule.push_back(window);
  bus.set_faults(faults);

  ReliableChannel channel(bus, clock, fast_config());
  const auto outcome = channel.request("svc.echo", crypto::Bytes{1});
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);  // slow, but not lost
  EXPECT_DOUBLE_EQ(clock.now(), 0.75);
  EXPECT_DOUBLE_EQ(bus.latency_injected_s(), 0.75);
}

TEST_F(ChannelFixture, ResponseLossRunsHandlerButRetries) {
  int handler_runs = 0;
  bus.register_endpoint("svc.count", [&handler_runs](const crypto::Bytes&) {
    ++handler_runs;
    return crypto::Bytes{static_cast<std::uint8_t>(handler_runs)};
  });
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back(make_window("svc.count", 0.0, 0.5, net::FaultKind::kResponseLoss));
  bus.set_faults(faults);

  ReliableChannel channel(bus, clock, fast_config());
  const auto outcome = channel.request("svc.count", crypto::Bytes{});
  ASSERT_TRUE(outcome.ok);
  // The first attempt reached the handler even though its response was
  // lost — the retry makes the handler run twice. This is the ambiguity
  // that forces server-side idempotency.
  EXPECT_EQ(handler_runs, 2);
  EXPECT_EQ(outcome.attempts, 2u);
}

TEST(RequestIdTest, DeterministicAndDistinct) {
  const crypto::Bytes payload{1, 2, 3};
  const auto id_a = ReliableChannel::request_id("svc.a", payload);
  const auto id_b = ReliableChannel::request_id("svc.a", payload);
  EXPECT_EQ(id_a, id_b);
  EXPECT_EQ(id_a.size(), 16u);

  EXPECT_NE(id_a, ReliableChannel::request_id("svc.b", payload));
  EXPECT_NE(id_a, ReliableChannel::request_id("svc.a", crypto::Bytes{1, 2}));
  // The 0x00 separator keeps (endpoint, payload) framing unambiguous.
  EXPECT_NE(ReliableChannel::request_id("ab", {'c'}),
            ReliableChannel::request_id("a", {'b', 'c'}));
}

TEST_F(ChannelFixture, FaultScheduleReplaysBitForBit) {
  // Same seed + schedule => identical attempt counts and final clock.
  const auto run = [](std::uint64_t seed) {
    net::MessageBus bus;
    SimClock clock(0.0);
    bus.register_endpoint("svc.echo",
                          [](const crypto::Bytes& p) { return p; });
    net::MessageBus::FaultConfig faults;
    faults.seed = seed;
    net::FaultWindow window = make_window("svc.echo", 0.0, 6.0, net::FaultKind::kOutage);
    window.probability = 0.5;  // intermittent: exercises the seeded stream
    faults.schedule.push_back(window);
    bus.set_faults(faults);

    ReliableChannel::Config config = ChannelFixture::fast_config();
    config.breaker.failure_threshold = 100;
    ReliableChannel channel(bus, clock, config);
    std::uint64_t attempts = 0;
    for (int i = 0; i < 8; ++i) {
      attempts += channel.request("svc.echo", crypto::Bytes{1}).attempts;
    }
    return std::pair<std::uint64_t, double>{attempts, clock.now()};
  };

  const auto a = run(11);
  const auto b = run(11);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  const auto c = run(12);
  // A different seed almost surely lands on a different trajectory;
  // equality of both measures would mean the stream is being ignored.
  EXPECT_TRUE(a.first != c.first || a.second != c.second);
}

}  // namespace
}  // namespace alidrone::resilience
