// Coalesced GetGPSAuth: N queued fixes signed inside ONE world switch.
//
// The per-invoke SMC pair is the fixed cost the coalesced command
// amortizes — these tests pin the contract: one invoke drains the
// driver's pending queue oldest-first, returns N verifying
// (sample, signature) pairs, and the monitor/cost-model charge exactly
// one switch pair regardless of N.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/rsa.h"
#include "gps/driver.h"
#include "gps/receiver_sim.h"
#include "resource/cost_model.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

namespace alidrone::tee {
namespace {

constexpr double kT0 = 1528395200.0;

class CoalescedFixture : public ::testing::Test {
 protected:
  CoalescedFixture() : tee_(make_config()) {}

  static DroneTee::Config make_config() {
    DroneTee::Config config;
    config.key_bits = 512;
    config.manufacturing_seed = "coalesced-test-device";
    return config;
  }

  /// Feed one GPS epoch (one $GPRMC plus companions) at time t.
  void feed_fix(geo::GeoPoint p, double t) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = t;
    gps::GpsReceiverSim sim(rc, [p](double tt) {
      gps::GpsFix f;
      f.position = p;
      f.unix_time = tt;
      return f;
    });
    for (const std::string& s : sim.advance_to(t)) tee_.feed_gps(s);
  }

  void feed_track(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      feed_fix({40.0 + 0.0001 * static_cast<double>(i), -88.0},
               kT0 + static_cast<double>(i));
    }
  }

  InvokeResult invoke_coalesced(std::span<const crypto::Bytes> params = {}) {
    return tee_.monitor().invoke(
        tee_.sampler_uuid(),
        static_cast<std::uint32_t>(SamplerCommand::kGetGpsAuthCoalesced), params);
  }

  DroneTee tee_;
};

TEST_F(CoalescedFixture, EmptyQueueIsNotReady) {
  EXPECT_EQ(invoke_coalesced().status, TeeStatus::kNotReady);
}

TEST_F(CoalescedFixture, DrainsWholeBacklogOldestFirstAllVerify) {
  constexpr std::size_t kN = 7;
  feed_track(kN);

  const InvokeResult result = invoke_coalesced();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 2 * kN);

  double prev_time = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto fix = decode_sample(result.outputs[2 * i]);
    ASSERT_TRUE(fix.has_value()) << i;
    EXPECT_GT(fix->unix_time, prev_time) << "not oldest-first at " << i;
    prev_time = fix->unix_time;
    EXPECT_TRUE(crypto::rsa_verify(tee_.verification_key(), result.outputs[2 * i],
                                   result.outputs[2 * i + 1],
                                   crypto::HashAlgorithm::kSha1))
        << i;
  }

  // The queue was drained: a second invoke has nothing to sign.
  EXPECT_EQ(invoke_coalesced().status, TeeStatus::kNotReady);
}

TEST_F(CoalescedFixture, CoalescedSignaturesMatchPerSamplePath) {
  // Byte-identical to the one-at-a-time command: same codec, same key,
  // same deterministic PKCS1-v1_5 signature.
  feed_fix({40.1164, -88.2434}, kT0);
  const InvokeResult single = tee_.monitor().invoke(
      tee_.sampler_uuid(), static_cast<std::uint32_t>(SamplerCommand::kGetGpsAuth));
  ASSERT_TRUE(single.ok());

  const InvokeResult batch = invoke_coalesced();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.outputs.size(), 2u);
  EXPECT_EQ(batch.outputs[0], single.outputs[0]);
  EXPECT_EQ(batch.outputs[1], single.outputs[1]);
}

TEST_F(CoalescedFixture, OneWorldSwitchPairForTheWholeBatch) {
  constexpr std::size_t kN = 12;
  feed_track(kN);

  const std::uint64_t before = tee_.monitor().world_switches();
  const InvokeResult result = invoke_coalesced();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 2 * kN);
  // Exactly one SMC entry + exit for all 12 signatures — the whole point.
  EXPECT_EQ(tee_.monitor().world_switches(), before + 2);
}

TEST_F(CoalescedFixture, CostModelChargesOneSwitchPairPlusPerSampleWork) {
  constexpr std::size_t kN = 5;
  feed_track(kN);

  resource::CpuAccountant cpu(4);
  const resource::CostProfile profile = resource::CostProfile::raspberry_pi3();
  tee_.set_cost_meter(&cpu, profile);

  ASSERT_TRUE(invoke_coalesced().ok());
  // One switch pair, then N * (read/parse + signature). The 512-bit test
  // key maps to the 1024 cost bucket, as in the per-sample path.
  EXPECT_NEAR(cpu.busy_seconds(),
              2 * profile.world_switch +
                  kN * (profile.gps_read_parse + profile.rsa_sign_1024),
              1e-12);
}

TEST_F(CoalescedFixture, MaxSamplesParamBoundsTheBatchAndKeepsTheRest) {
  feed_track(6);

  const std::vector<crypto::Bytes> limit2{crypto::Bytes{0, 0, 0, 2}};
  const InvokeResult first = invoke_coalesced(limit2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.outputs.size(), 4u);  // 2 pairs

  // Leftover fixes stayed queued, still oldest-first.
  const InvokeResult rest = invoke_coalesced();
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest.outputs.size(), 8u);  // remaining 4 pairs
  const auto first_fix = decode_sample(first.outputs[0]);
  const auto rest_fix = decode_sample(rest.outputs[0]);
  ASSERT_TRUE(first_fix.has_value());
  ASSERT_TRUE(rest_fix.has_value());
  EXPECT_LT(first_fix->unix_time, rest_fix->unix_time);
}

TEST_F(CoalescedFixture, BadLimitParamRejected) {
  feed_track(1);
  const std::vector<crypto::Bytes> wrong_size{crypto::Bytes{0, 2}};
  EXPECT_EQ(invoke_coalesced(wrong_size).status, TeeStatus::kBadParameters);
  const std::vector<crypto::Bytes> zero{crypto::Bytes{0, 0, 0, 0}};
  EXPECT_EQ(invoke_coalesced(zero).status, TeeStatus::kBadParameters);
  // The queue is untouched by rejected invokes.
  EXPECT_EQ(invoke_coalesced().outputs.size(), 2u);
}

TEST_F(CoalescedFixture, WorksThroughSessionsLikeAnyCommand) {
  feed_track(3);
  const SessionId s = tee_.monitor().open_session(tee_.sampler_uuid());
  ASSERT_GE(s, 1u);
  const InvokeResult result = tee_.monitor().invoke(
      s, static_cast<std::uint32_t>(SamplerCommand::kGetGpsAuthCoalesced));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs.size(), 6u);
  EXPECT_TRUE(tee_.monitor().close_session(s));
}

// --- driver pending-queue mechanics --------------------------------------

std::vector<std::string> epoch_sentences(geo::GeoPoint p, double t) {
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = t;
  gps::GpsReceiverSim sim(rc, [p](double tt) {
    gps::GpsFix f;
    f.position = p;
    f.unix_time = tt;
    return f;
  });
  return sim.advance_to(t);
}

TEST(GpsDriverPending, AccumulatesAndDrainsOldestFirst) {
  gps::GpsDriver driver;
  for (int i = 0; i < 3; ++i) {
    for (const std::string& s :
         epoch_sentences({40.0, -88.0}, kT0 + static_cast<double>(i))) {
      driver.feed(s);
    }
  }
  EXPECT_EQ(driver.pending_fix_count(), 3u);

  const std::vector<gps::GpsFix> first = driver.take_pending(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_LT(first[0].unix_time, first[1].unix_time);
  EXPECT_EQ(driver.pending_fix_count(), 1u);

  const std::vector<gps::GpsFix> rest = driver.take_pending();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_GT(rest[0].unix_time, first[1].unix_time);
  EXPECT_EQ(driver.take_pending().size(), 0u);
}

TEST(GpsDriverPending, OverflowDropsOldestKeepsLatest) {
  gps::GpsDriver driver;
  const std::size_t overfill = gps::GpsDriver::kPendingCapacity + 5;
  for (std::size_t i = 0; i < overfill; ++i) {
    for (const std::string& s :
         epoch_sentences({40.0, -88.0}, kT0 + static_cast<double>(i))) {
      driver.feed(s);
    }
  }
  EXPECT_EQ(driver.pending_fix_count(), gps::GpsDriver::kPendingCapacity);
  EXPECT_EQ(driver.dropped_fixes(), 5u);

  // The latest fix survives both in the queue tail and in get_gps().
  const std::vector<gps::GpsFix> drained = driver.take_pending();
  ASSERT_EQ(drained.size(), gps::GpsDriver::kPendingCapacity);
  const double last_t = kT0 + static_cast<double>(overfill - 1);
  EXPECT_NEAR(drained.back().unix_time, last_t, 1e-3);
  ASSERT_TRUE(driver.get_gps().has_value());
  EXPECT_NEAR(driver.get_gps()->unix_time, last_t, 1e-3);
}

TEST(GpsDriverPending, MergesReachPendingEntries) {
  // GGA altitude arriving after the RMC must be reflected in the drained
  // copy, matching get_gps() (the TA signs whatever the driver reports).
  gps::GpsDriver driver;
  for (const std::string& s : epoch_sentences({40.0, -88.0}, kT0)) {
    driver.feed(s);
  }
  const auto latest = driver.get_gps();
  ASSERT_TRUE(latest.has_value());
  const std::vector<gps::GpsFix> drained = driver.take_pending();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].altitude_m, latest->altitude_m);
  EXPECT_EQ(drained[0].speed_mps, latest->speed_mps);
}

}  // namespace
}  // namespace alidrone::tee
