// HMAC edge cases: the complete RFC 4231 (HMAC-SHA256) and RFC 2202
// (HMAC-SHA1) known-answer sets, plus the key-length boundaries the RFCs
// leave implicit — empty key, empty message, and the exactly-block-size /
// one-over-block-size transition where RFC 2104 switches from padding the
// key to hashing it first.
#include <gtest/gtest.h>

#include <string>

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {
namespace {

template <typename Digest>
std::string hex(const Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 4231 shared inputs (cases 4-7; 1-3 use trivial literals inline).
Bytes rfc_case4_key() {
  return from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
}
const char* kLongKeyMsg =
    "Test Using Larger Than Block-Size Key - Hash Key First";
const char* kLongBothMsg =
    "This is a test using a larger than block-size key and a larger than "
    "block-size data. The key needs to be hashed before being used by the "
    "HMAC algorithm.";

// ---- RFC 4231: HMAC-SHA256 ----

TEST(HmacSha256Rfc4231, Case1) {
  EXPECT_EQ(hex(HmacSha256::mac(Bytes(20, 0x0b), to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Rfc4231, Case2ShortKey) {
  EXPECT_EQ(hex(HmacSha256::mac(to_bytes("Jefe"),
                                to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Rfc4231, Case3BinaryData) {
  EXPECT_EQ(hex(HmacSha256::mac(Bytes(20, 0xaa), Bytes(50, 0xdd))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Rfc4231, Case4TwentyFiveByteKey) {
  EXPECT_EQ(hex(HmacSha256::mac(rfc_case4_key(), Bytes(50, 0xcd))),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256Rfc4231, Case5Truncated128) {
  // RFC 4231 specifies only the first 128 bits of the output here.
  const auto mac = HmacSha256::mac(Bytes(20, 0x0c), to_bytes("Test With Truncation"));
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(mac.data(), 16)),
            "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacSha256Rfc4231, Case6KeyLargerThanBlock) {
  EXPECT_EQ(hex(HmacSha256::mac(Bytes(131, 0xaa), to_bytes(kLongKeyMsg))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Rfc4231, Case7KeyAndDataLargerThanBlock) {
  EXPECT_EQ(hex(HmacSha256::mac(Bytes(131, 0xaa), to_bytes(kLongBothMsg))),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// ---- RFC 2202: HMAC-SHA1 ----

TEST(HmacSha1Rfc2202, Case1) {
  EXPECT_EQ(hex(HmacSha1::mac(Bytes(20, 0x0b), to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Rfc2202, Case2ShortKey) {
  EXPECT_EQ(hex(HmacSha1::mac(to_bytes("Jefe"),
                              to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Rfc2202, Case3BinaryData) {
  EXPECT_EQ(hex(HmacSha1::mac(Bytes(20, 0xaa), Bytes(50, 0xdd))),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Rfc2202, Case4TwentyFiveByteKey) {
  EXPECT_EQ(hex(HmacSha1::mac(rfc_case4_key(), Bytes(50, 0xcd))),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
}

TEST(HmacSha1Rfc2202, Case5Truncation) {
  const auto mac = HmacSha1::mac(Bytes(20, 0x0c), to_bytes("Test With Truncation"));
  EXPECT_EQ(hex(mac), "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04");
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(mac.data(), 12)),
            "4c1a03424b55e07fe7f27be1");
}

TEST(HmacSha1Rfc2202, Case6KeyLargerThanBlock) {
  EXPECT_EQ(hex(HmacSha1::mac(Bytes(80, 0xaa), to_bytes(kLongKeyMsg))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1Rfc2202, Case7KeyAndDataLargerThanBlock) {
  EXPECT_EQ(hex(HmacSha1::mac(
                Bytes(80, 0xaa),
                to_bytes("Test Using Larger Than Block-Size Key and Larger "
                         "Than One Block-Size Data"))),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91");
}

// ---- Edges the RFC vectors skip ----

TEST(HmacEdges, EmptyKeyEmptyMessage) {
  // Known answers (OpenSSL cross-check): both key and message empty.
  EXPECT_EQ(hex(HmacSha256::mac(Bytes{}, Bytes{})),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
  EXPECT_EQ(hex(HmacSha1::mac(Bytes{}, Bytes{})),
            "fbdb1d1b18aa6c08324b7d64b71fb76370690e1d");
}

TEST(HmacEdges, EmptyMessageNonEmptyKey) {
  // HMAC-SHA256(key="key", msg="") — cross-checked against OpenSSL.
  EXPECT_EQ(hex(HmacSha256::mac(to_bytes("key"), Bytes{})),
            "5d5d139563c95b5967b9bd9a8c9b233a9dedb45072794cd232dc1b74832607d0");
}

TEST(HmacEdges, KeyExactlyBlockSizeIsUsedRaw) {
  // A 64-byte key sits on the RFC 2104 boundary: it is padded (a no-op),
  // not hashed. Using SHA-256(key) instead must give a different MAC.
  const Bytes key(Sha256::kBlockSize, 0x42);
  const Bytes msg = to_bytes("boundary");
  const auto raw = HmacSha256::mac(key, msg);
  const auto hashed_key = Sha256::hash(key);
  const auto via_hash = HmacSha256::mac(hashed_key, msg);
  EXPECT_NE(hex(raw), hex(via_hash));
}

TEST(HmacEdges, KeyOneOverBlockSizeIsHashedFirst) {
  // A 65-byte key must behave exactly like its SHA-256 digest used as key.
  const Bytes key(Sha256::kBlockSize + 1, 0x42);
  const Bytes msg = to_bytes("boundary");
  const auto hashed_key = Sha256::hash(key);
  EXPECT_EQ(hex(HmacSha256::mac(key, msg)),
            hex(HmacSha256::mac(hashed_key, msg)));
}

TEST(HmacEdges, IncrementalMatchesOneShot) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  HmacSha256 h(key);
  for (const char c : msg) {
    const auto b = static_cast<std::uint8_t>(c);
    h.update({&b, 1});
  }
  EXPECT_EQ(hex(h.finalize()), hex(HmacSha256::mac(key, to_bytes(msg))));
}

TEST(HmacEdges, ResetAllowsReuse) {
  HmacSha256 h(Bytes(20, 0x0b));
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("Hi There"));
  EXPECT_EQ(hex(h.finalize()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

}  // namespace
}  // namespace alidrone::crypto
