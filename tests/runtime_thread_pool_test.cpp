#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "crypto/random.h"
#include "runtime/latch.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace alidrone::runtime {
namespace {

TEST(ThreadPool, SubmitDeliversReturnValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);

  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsEnqueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor: every task already enqueued must run
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, WorkerIndexAndRngAreWorkerLocal) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
  EXPECT_EQ(ThreadPool::worker_rng(), nullptr);

  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> indices;
  std::vector<std::future<void>> futures;
  Latch gate(3);
  for (int i = 0; i < 3; ++i) {
    futures.push_back(pool.submit([&] {
      // Hold every worker at the gate so all three indices are observed.
      gate.arrive_and_wait();
      ASSERT_NE(ThreadPool::worker_rng(), nullptr);
      ThreadPool::worker_rng()->next_u64();  // private stream, no locking
      const std::lock_guard<std::mutex> lock(mu);
      indices.insert(ThreadPool::worker_index());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(indices, (std::set<int>{0, 1, 2}));
}

TEST(ThreadPool, PerWorkerRngStreamsAreIndependent) {
  // fork(i) from the same seed must give distinct, reproducible streams.
  crypto::DeterministicRandom base(std::string_view("pool-streams"));
  crypto::DeterministicRandom a = base.fork(0);
  crypto::DeterministicRandom b = base.fork(1);
  crypto::DeterministicRandom a_again = base.fork(0);
  const std::uint64_t va = a.next_u64();
  EXPECT_NE(va, b.next_u64());
  EXPECT_EQ(va, a_again.next_u64());

  // Forking does not consume the parent stream.
  crypto::DeterministicRandom parent1(std::string_view("seed"));
  crypto::DeterministicRandom parent2(std::string_view("seed"));
  parent1.fork(7);
  EXPECT_EQ(parent1.next_u64(), parent2.next_u64());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> touched(1000, 0);
  parallel_for(pool, 0, touched.size(),
               [&](std::size_t i) { ++touched[i]; });
  for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelFor, EmptyAndOffsetRanges) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL() << "empty range ran"; });

  std::vector<int> touched(10, 0);
  parallel_for(pool, 3, 7, [&](std::size_t i) { ++touched[i]; });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], (i >= 3 && i < 7) ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [&](std::size_t i) {
                     ran.fetch_add(1, std::memory_order_relaxed);
                     if (i == 50) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // parallel_for waits for every chunk before rethrowing: nothing may
  // still be incrementing `ran` once it returns.
  const int snapshot = ran.load();
  EXPECT_GE(snapshot, 1);
  EXPECT_LE(snapshot, 100);
  pool.submit([] {}).get();
  EXPECT_EQ(ran.load(), snapshot);
}

TEST(Latch, CountDownReleasesWaiters) {
  Latch latch(2);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // must not block once the count is zero
}

TEST(Latch, BlocksAcrossThreads) {
  Latch latch(3);
  ThreadPool pool(3);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(pool.submit([&latch] { latch.count_down(); }));
  }
  latch.wait();
  for (auto& f : futures) f.get();
  EXPECT_TRUE(latch.try_wait());
}

TEST(Latch, RejectsOverDecrement) {
  Latch latch(1);
  EXPECT_THROW(latch.count_down(2), std::invalid_argument);
  EXPECT_THROW(Latch(-1), std::invalid_argument);
}

}  // namespace
}  // namespace alidrone::runtime
