// FleetScheduler + adversarial campaign (labelled `fleet tsan`).
//
// The determinism contract: a campaign is a pure function of its seed.
// Worker count, Auditor shard count and ingest verify threads change
// only wall-clock behaviour — the canonical fingerprint (per-flight
// verdicts, ingest counters, audit-event count, ledger root) must be
// byte-identical across every configuration. Plus the detector-quality
// shape the paper's threat model demands: no honest false positives and
// every attack class flagged.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/campaign.h"

namespace alidrone::sim {
namespace {

CampaignConfig small_campaign(std::uint64_t seed) {
  CampaignConfig config;
  config.flights = 18;  // 3 route families x 6 stagger slots
  config.seed = seed;
  config.adversary_fraction = 0.5;  // all six attack classes present
  return config;
}

TEST(FleetCampaign, FingerprintInvariantAcrossWorkersAndShards) {
  const CampaignConfig base = small_campaign(42);

  CampaignConfig reference_config = base;
  reference_config.scheduler_workers = 1;
  reference_config.auditor_shards = 1;
  const CampaignReport reference = run_campaign(reference_config);
  const std::string want = reference.fingerprint();
  ASSERT_FALSE(want.empty());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      if (workers == 1 && shards == 1) continue;
      CampaignConfig config = base;
      config.scheduler_workers = workers;
      config.auditor_shards = shards;
      config.ingest_verify_threads = workers > 1 ? 2 : 0;
      const CampaignReport report = run_campaign(config);
      EXPECT_EQ(report.fingerprint(), want)
          << "workers=" << workers << " shards=" << shards;
    }
  }
}

TEST(FleetCampaign, DifferentSeedsDiverge) {
  const CampaignReport a = run_campaign(small_campaign(42));
  const CampaignReport b = run_campaign(small_campaign(43));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.ledger_root_hex, b.ledger_root_hex);
}

TEST(FleetCampaign, PerClassVerdictsMatchThreatModel) {
  const CampaignReport report = run_campaign(small_campaign(42));
  ASSERT_EQ(report.outcomes.size(), 18u);

  std::set<AttackClass> seen;
  for (const FlightOutcome& outcome : report.outcomes) {
    seen.insert(outcome.attack);
    switch (outcome.attack) {
      case AttackClass::kHonest:
        ASSERT_TRUE(outcome.verdict.has_value()) << outcome.drone_id;
        EXPECT_TRUE(outcome.verdict->accepted)
            << outcome.drone_id << ": " << outcome.verdict->detail;
        EXPECT_TRUE(outcome.verdict->compliant)
            << outcome.drone_id << ": " << outcome.verdict->detail;
        break;
      case AttackClass::kChainForge:
      case AttackClass::kReplay:
      case AttackClass::kTamper:
        // Cryptographic rejects: the Auditor refuses the proof outright.
        ASSERT_TRUE(outcome.verdict.has_value()) << outcome.drone_id;
        EXPECT_FALSE(outcome.verdict->accepted) << outcome.drone_id;
        break;
      case AttackClass::kDropWindow:
      case AttackClass::kThinningAbuse:
        // Geometric rejects: valid signatures, insufficient alibi.
        ASSERT_TRUE(outcome.verdict.has_value()) << outcome.drone_id;
        EXPECT_TRUE(outcome.verdict->accepted)
            << outcome.drone_id << ": " << outcome.verdict->detail;
        EXPECT_FALSE(outcome.verdict->compliant) << outcome.drone_id;
        break;
      case AttackClass::kNavDeviation:
        // The PoA itself documents the zone entry.
        ASSERT_TRUE(outcome.verdict.has_value()) << outcome.drone_id;
        EXPECT_TRUE(outcome.verdict->accepted) << outcome.drone_id;
        EXPECT_FALSE(outcome.verdict->compliant) << outcome.drone_id;
        EXPECT_GT(outcome.verdict->violation_count, 0u) << outcome.drone_id;
        break;
    }
  }
  EXPECT_EQ(seen.size(), kAttackClassCount);  // every class exercised

  for (std::size_t c = 0; c < kAttackClassCount; ++c) {
    const ClassMetrics& m = report.per_class[c];
    EXPECT_EQ(m.precision, 1.0) << attack_class_name(AttackClass(c));
    EXPECT_EQ(m.recall, 1.0) << attack_class_name(AttackClass(c));
  }
}

TEST(FleetCampaign, IngestAndLedgerAccounting) {
  CampaignConfig config = small_campaign(7);
  config.scheduler_workers = 4;
  config.auditor_shards = 8;
  config.ingest_verify_threads = 2;
  const CampaignReport report = run_campaign(config);

  // Every flight's submission eventually committed (retries included in
  // submitted, each flight admitted exactly once).
  EXPECT_GE(report.ingest.submitted, report.outcomes.size());
  EXPECT_EQ(report.ingest.committed, report.outcomes.size());
  EXPECT_EQ(report.ingest.malformed, 0u);

  // Ledger anchors registrations, zone grants and verdicts; it can never
  // be empty and its root rides in the fingerprint.
  EXPECT_GT(report.ledger_entries, 0u);
  EXPECT_EQ(report.ledger_root_hex.size(), 64u);  // SHA-256 hex
  EXPECT_GT(report.audit_events, 0u);

  // The scheduler actually interleaved: staggered takeoff groups force
  // multi-actor batches.
  EXPECT_GT(report.scheduler.max_batch, 1u);
  EXPECT_GT(report.scheduler.steps, report.outcomes.size());
}

}  // namespace
}  // namespace alidrone::sim
