// Ledger core invariants (labelled `ledger` in ctest): canonical entry
// encoding, Merkle tree/path/range algebra, chain and root determinism,
// inclusion proofs across segment boundaries, crash recovery (torn-tail
// truncation of the open segment), tamper detection with exact segment
// localization, and compaction keeping the root fixed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ledger/crc32.h"
#include "ledger/entry.h"
#include "ledger/ledger.h"
#include "ledger/merkle.h"
#include "ledger/segment.h"
#include "obs/metrics.h"

namespace alidrone::ledger {
namespace {

constexpr double kT0 = 1528400000.0;

crypto::Bytes payload_bytes(const std::string& s) {
  return crypto::Bytes(s.begin(), s.end());
}

LedgerEntry make_entry(std::uint64_t seq, const std::string& payload) {
  LedgerEntry entry;
  entry.seq = seq;
  entry.kind = EntryKind::kAuditEvent;
  entry.time = kT0 + static_cast<double>(seq);
  entry.payload = payload_bytes(payload);
  return entry;
}

/// Append `count` deterministic entries; returns the payload strings.
std::vector<std::string> fill(Ledger& ledger, std::size_t count,
                              std::size_t offset = 0) {
  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string payload =
        "event-" + std::to_string(offset + i) + "|detail";
    const crypto::Bytes bytes = payload_bytes(payload);
    ledger.append(EntryKind::kAuditEvent, kT0 + static_cast<double>(offset + i),
                  bytes);
    payloads.push_back(payload);
  }
  return payloads;
}

class LedgerDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("alidrone-ledger-" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Ledger::Config durable_config(std::size_t capacity = 4) {
    Ledger::Config config;
    config.directory = dir_;
    config.segment_capacity = capacity;
    config.metrics = &metrics_;
    return config;
  }

  std::filesystem::path segment_file(std::uint64_t first_seq) const {
    char name[32];
    std::snprintf(name, sizeof(name), "segment-%012llu.seg",
                  static_cast<unsigned long long>(first_seq));
    return dir_ / name;
  }

  std::filesystem::path dir_;
  obs::MetricsRegistry metrics_;
};

// ---- Entry encoding ----

TEST(LedgerEntryTest, CanonicalRoundTrip) {
  const LedgerEntry entry = make_entry(42, "hello|world");
  const crypto::Bytes encoded = entry.canonical();
  EXPECT_EQ(encoded.size(), entry.canonical_size());

  const auto decoded = LedgerEntry::parse(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, entry.seq);
  EXPECT_EQ(decoded->kind, entry.kind);
  EXPECT_EQ(decoded->time, entry.time);
  EXPECT_EQ(decoded->payload, entry.payload);
  EXPECT_EQ(decoded->leaf_hash(), entry.leaf_hash());
}

TEST(LedgerEntryTest, ParseIsStrict) {
  const crypto::Bytes encoded = make_entry(7, "x").canonical();

  crypto::Bytes trailing = encoded;
  trailing.push_back(0x00);
  EXPECT_FALSE(LedgerEntry::parse(trailing).has_value());

  crypto::Bytes truncated(encoded.begin(), encoded.end() - 1);
  EXPECT_FALSE(LedgerEntry::parse(truncated).has_value());

  crypto::Bytes bad_kind = encoded;
  bad_kind[8] = 0xEE;  // unknown EntryKind
  EXPECT_FALSE(LedgerEntry::parse(bad_kind).has_value());
}

TEST(LedgerEntryTest, LeafAndChainAreDomainSeparated) {
  const LedgerEntry entry = make_entry(0, "payload");
  const Digest leaf = entry.leaf_hash();
  const Digest chain = chain_link(kZeroDigest, leaf);
  EXPECT_NE(leaf, chain);
  EXPECT_NE(leaf, crypto::Sha256::hash(entry.canonical()));
}

// ---- Merkle algebra ----

TEST(MerkleTest, KnownShapes) {
  EXPECT_EQ(merkle_root({}), kZeroDigest);

  std::vector<Digest> leaves;
  for (int i = 0; i < 7; ++i) {
    leaves.push_back(crypto::Sha256::hash("leaf-" + std::to_string(i)));
  }
  // Single leaf: the tree IS the leaf.
  EXPECT_EQ(merkle_root({leaves.data(), 1}), leaves[0]);
  // Two leaves: one interior node.
  EXPECT_EQ(merkle_root({leaves.data(), 2}), merkle_node(leaves[0], leaves[1]));
  // RFC 6962 split: 7 leaves split 4 + 3.
  const Digest left = merkle_root({leaves.data(), 4});
  const Digest right = merkle_root({leaves.data() + 4, 3});
  EXPECT_EQ(merkle_root(leaves), merkle_node(left, right));
}

TEST(MerkleTest, PathsVerifyAtEveryIndexAndCount) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 13; ++i) {
    leaves.push_back(crypto::Sha256::hash("leaf-" + std::to_string(i)));
    const Digest root = merkle_root(leaves);
    for (std::size_t j = 0; j < leaves.size(); ++j) {
      const std::vector<Digest> path = merkle_path(leaves, j);
      EXPECT_TRUE(merkle_verify(root, leaves[j], j, leaves.size(), path));
      // The same path must not verify a different leaf.
      const Digest wrong = crypto::Sha256::hash("not-a-leaf");
      EXPECT_FALSE(merkle_verify(root, wrong, j, leaves.size(), path));
    }
  }
}

TEST(MerkleTest, RangeHashesComposeLikeSubtrees) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 11; ++i) {
    leaves.push_back(crypto::Sha256::hash("r-" + std::to_string(i)));
  }
  EXPECT_EQ(merkle_range(leaves, 0, leaves.size()), merkle_root(leaves));
  // A range hash depends only on the leaves inside it, so two parties
  // with different totals can still compare [lo, hi).
  std::vector<Digest> shorter(leaves.begin(), leaves.begin() + 8);
  EXPECT_EQ(merkle_range(leaves, 2, 8), merkle_range(shorter, 2, 8));
}

TEST(MerkleTest, FirstDivergentLeafFindsTheExactIndex) {
  constexpr std::size_t kLeaves = 21;
  std::vector<Digest> a;
  for (std::size_t i = 0; i < kLeaves; ++i) {
    a.push_back(crypto::Sha256::hash("leaf-" + std::to_string(i)));
  }
  const auto probe = [](const std::vector<Digest>& leaves) {
    return [&leaves](std::size_t lo,
                     std::size_t hi) -> std::optional<Digest> {
      return merkle_range(leaves, lo, hi);
    };
  };

  // Identical trees: no divergence.
  EXPECT_EQ(first_divergent_leaf(a.size(), probe(a), a.size(), probe(a)),
            std::nullopt);

  // Flip each leaf in turn: the descent names exactly that index.
  for (std::size_t flip = 0; flip < kLeaves; ++flip) {
    std::vector<Digest> b = a;
    b[flip][0] ^= 0x01;
    const auto found =
        first_divergent_leaf(a.size(), probe(a), b.size(), probe(b));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, flip);
  }

  // Strict prefix: divergence at the shorter count.
  std::vector<Digest> prefix(a.begin(), a.begin() + 9);
  const auto found =
      first_divergent_leaf(a.size(), probe(a), prefix.size(), probe(prefix));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, prefix.size());
}

// ---- In-memory ledger ----

TEST(LedgerTest, RootIsDeterministicAndOrderSensitive) {
  Ledger::Config config;
  config.segment_capacity = 4;
  Ledger a(config), b(config), c(config);
  fill(a, 10);
  fill(b, 10);
  EXPECT_EQ(a.root_hash(), b.root_hash());
  EXPECT_EQ(a.chain_tip(), b.chain_tip());

  // Same entries, one pair swapped: everything downstream changes.
  const crypto::Bytes first = payload_bytes("event-1|detail");
  const crypto::Bytes second = payload_bytes("event-0|detail");
  c.append(EntryKind::kAuditEvent, kT0 + 1.0, first);
  c.append(EntryKind::kAuditEvent, kT0, second);
  fill(c, 8, 2);
  EXPECT_NE(a.root_hash(), c.root_hash());
}

TEST(LedgerTest, RootCoversKindTimeAndCount) {
  Ledger a, b;
  const crypto::Bytes payload = payload_bytes("same-bytes");
  a.append(EntryKind::kAuditEvent, kT0, payload);
  b.append(EntryKind::kPoaAnchor, kT0, payload);
  EXPECT_NE(a.root_hash(), b.root_hash());

  Ledger c;
  c.append(EntryKind::kAuditEvent, kT0 + 1.0, payload);
  EXPECT_NE(a.root_hash(), c.root_hash());

  // An empty ledger and a one-entry ledger never share a root.
  Ledger empty;
  EXPECT_NE(empty.root_hash(), a.root_hash());
}

TEST(LedgerTest, InclusionProofsVerifyAcrossSegmentBoundaries) {
  Ledger::Config config;
  config.segment_capacity = 4;
  Ledger ledger(config);
  fill(ledger, 11);  // 2 sealed segments + 3 entries open

  const Digest root = ledger.root_hash();
  EXPECT_EQ(ledger.segment_count(), 3u);
  for (std::uint64_t seq = 0; seq < 11; ++seq) {
    const auto proof = ledger.prove(seq);
    ASSERT_TRUE(proof.has_value()) << "seq " << seq;
    const auto entry = ledger.entry(seq);
    ASSERT_TRUE(entry.has_value());
    EXPECT_TRUE(Ledger::verify_inclusion(root, entry->leaf_hash(), *proof))
        << "seq " << seq;

    // A proof is only as good as the leaf it binds.
    const Digest wrong = crypto::Sha256::hash("forged");
    EXPECT_FALSE(Ledger::verify_inclusion(wrong, entry->leaf_hash(), *proof));
    EXPECT_FALSE(Ledger::verify_inclusion(root, wrong, *proof));
  }

  // Appending invalidates old proofs against the new root.
  const auto proof = ledger.prove(0);
  ledger.append(EntryKind::kAuditEvent, kT0 + 100.0, payload_bytes("more"));
  const auto entry = ledger.entry(0);
  EXPECT_FALSE(
      Ledger::verify_inclusion(ledger.root_hash(), entry->leaf_hash(), *proof));
}

TEST(LedgerTest, CompactionPreservesRootAndRemainingProofs) {
  Ledger::Config config;
  config.segment_capacity = 4;
  Ledger ledger(config);
  fill(ledger, 14);  // segments [0,4) [4,8) [8,12) sealed, [12,14) open

  const Digest root = ledger.root_hash();
  EXPECT_EQ(ledger.compact_before(8), 2u);
  EXPECT_EQ(ledger.root_hash(), root);
  EXPECT_EQ(ledger.entry_count(), 14u);

  // Compacted range: no entries, no proofs; retained range still proves.
  EXPECT_FALSE(ledger.entry(3).has_value());
  EXPECT_FALSE(ledger.prove(3).has_value());
  const auto proof = ledger.prove(9);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(
      Ledger::verify_inclusion(root, ledger.entry(9)->leaf_hash(), *proof));

  // The open segment is never compacted.
  EXPECT_EQ(ledger.compact_before(100), 1u);  // only [8,12) goes
  EXPECT_TRUE(ledger.entry(12).has_value());
  EXPECT_EQ(ledger.root_hash(), root);

  // audit_segments still passes: compacted segments are skipped, retained
  // ones re-verify.
  const auto report = ledger.audit_segments();
  EXPECT_FALSE(report.first_divergent.has_value()) << report.detail;
}

// ---- Durable ledger ----

TEST_F(LedgerDirTest, ReopenRestoresRootChainAndProofs) {
  Digest root, chain;
  {
    Ledger ledger(durable_config());
    fill(ledger, 10);
    root = ledger.root_hash();
    chain = ledger.chain_tip();
  }
  Ledger reopened(durable_config());
  EXPECT_EQ(reopened.entry_count(), 10u);
  EXPECT_EQ(reopened.root_hash(), root);
  EXPECT_EQ(reopened.chain_tip(), chain);
  EXPECT_EQ(reopened.recovered_tail_records(), 0u);

  // The reopened ledger keeps proving and appending.
  const auto proof = reopened.prove(7);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(
      Ledger::verify_inclusion(root, reopened.entry(7)->leaf_hash(), *proof));
  fill(reopened, 3, 10);
  EXPECT_EQ(reopened.entry_count(), 13u);

  // An in-memory ledger fed the same stream lands on the same root.
  Ledger::Config mem;
  mem.segment_capacity = 4;
  Ledger shadow(mem);
  fill(shadow, 13);
  EXPECT_EQ(reopened.root_hash(), shadow.root_hash());
}

TEST_F(LedgerDirTest, TornTailIsTruncatedOnRecovery) {
  {
    Ledger ledger(durable_config());
    fill(ledger, 10);  // segments [0,4) [4,8) sealed; [8,10) open
  }
  // Crash mid-append: chop bytes off the open segment's last record.
  const auto open_file = segment_file(8);
  ASSERT_TRUE(std::filesystem::exists(open_file));
  const auto size = std::filesystem::file_size(open_file);
  std::filesystem::resize_file(open_file, size - 5);

  Ledger recovered(durable_config());
  EXPECT_EQ(recovered.entry_count(), 9u);  // entry 9 was torn away
  EXPECT_EQ(recovered.recovered_tail_records(), 1u);
  EXPECT_FALSE(recovered.audit_segments().first_divergent.has_value());

  // Appending resumes at the truncated point and converges with a clean
  // ledger fed the same surviving stream.
  fill(recovered, 1, 9);
  Ledger shadow(Ledger::Config{{}, 4, nullptr, nullptr});
  fill(shadow, 10);
  EXPECT_EQ(recovered.root_hash(), shadow.root_hash());
}

TEST_F(LedgerDirTest, BitFlipInSealedSegmentIsLocalizedExactly) {
  {
    Ledger ledger(durable_config());
    fill(ledger, 14);  // sealed [0,4) [4,8) [8,12), open [12,14)
  }
  // Tamper with one payload byte inside the SECOND sealed segment. The
  // record's CRC and the sealed root both disagree now.
  const auto victim = segment_file(4);
  {
    std::fstream file(victim,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(60);  // inside the first record's payload
    char byte = 0;
    file.seekg(60);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(60);
    file.write(&byte, 1);
  }

  Ledger reopened(durable_config());
  const auto report = reopened.audit_segments();
  ASSERT_TRUE(report.first_divergent.has_value());
  EXPECT_EQ(*report.first_divergent, 1u) << report.detail;
  EXPECT_FALSE(report.detail.empty());
}

TEST_F(LedgerDirTest, SegmentWireFramesRoundTrip) {
  Ledger ledger(durable_config());
  fill(ledger, 9);

  for (std::size_t i = 0; i < ledger.segment_count(); ++i) {
    const crypto::Bytes frame = ledger.encode_segment(i);
    ASSERT_FALSE(frame.empty());
    const auto decoded = decode_segment(frame);
    ASSERT_TRUE(decoded.has_value());
    const auto info = ledger.segment_info(i);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(decoded->header.first_seq, info->first_seq);
    EXPECT_EQ(decoded->entries.size(), info->entries);
  }

  // A torn frame decodes to nothing (wire corruption is loud).
  crypto::Bytes torn = ledger.encode_segment(0);
  torn.resize(torn.size() - 3);
  EXPECT_FALSE(decode_segment(torn).has_value());
  EXPECT_TRUE(ledger.encode_segment(99).empty());
}

TEST_F(LedgerDirTest, CompactedSegmentSurvivesReopen) {
  Digest root;
  {
    Ledger ledger(durable_config());
    fill(ledger, 14);
    root = ledger.root_hash();
    EXPECT_EQ(ledger.compact_before(8), 2u);
    EXPECT_FALSE(std::filesystem::exists(segment_file(0)));
  }
  Ledger reopened(durable_config());
  EXPECT_EQ(reopened.root_hash(), root);
  EXPECT_EQ(reopened.entry_count(), 14u);
  EXPECT_FALSE(reopened.entry(2).has_value());
  EXPECT_TRUE(reopened.entry(9).has_value());
  EXPECT_TRUE(reopened.encode_segment(0).empty());
  EXPECT_FALSE(reopened.audit_segments().first_divergent.has_value());
}

}  // namespace
}  // namespace alidrone::ledger
