// alidrone_auditord as a real child process (labelled `transport`): the
// test forks + execs the daemon binary (path in $ALIDRONE_AUDITORD, set
// by CMake), waits for its "ready" line, drives the full wire protocol
// through a TransportClient over a Unix-domain socket, then SIGTERMs it
// and checks the graceful-drain report. The acceptance claim: the ledger
// root the daemon prints on exit is byte-identical to an in-process
// MessageBus run fed the same requests in the same order with the same
// --seed.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/ingest.h"
#include "core/zone_owner.h"
#include "crypto/bytes.h"
#include "geo/units.h"
#include "ledger/ledger.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "net/transport/client.h"
#include "obs/metrics.h"
#include "sim/route.h"

namespace alidrone {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;
constexpr std::uint64_t kAuditorSeed = 7;

const geo::LocalFrame& test_frame() {
  static const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  return frame;
}

std::vector<geo::GeoZone> test_zones() {
  std::vector<geo::GeoZone> zones;
  for (double x : {100.0, 300.0}) {
    zones.push_back({test_frame().to_geo(geo::Vec2{x, 400.0}), 30.0});
  }
  return zones;
}

core::ProofOfAlibi make_flight_poa(core::DroneClient& client, double start,
                                   std::uint64_t gps_seed) {
  sim::Route route(
      test_frame(),
      {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}}, start);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = start;
  rc.seed = gps_seed;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());

  std::vector<geo::Circle> local_zones;
  for (const geo::GeoZone& z : test_zones()) {
    local_zones.push_back({test_frame().to_local(z.center), z.radius_m});
  }
  core::AdaptiveSampler policy(test_frame(), local_zones,
                               geo::kFaaMaxSpeedMps, 0.2);
  core::FlightConfig config;
  config.end_time = start + 30.0;
  config.frame = test_frame();
  config.local_zones = local_zones;
  return client.fly(receiver, policy, config);
}

/// The daemon's stdout, read line-at-a-time by the parent.
class DaemonProcess {
 public:
  DaemonProcess(const std::string& binary, const std::string& address) {
    int out_pipe[2];
    if (pipe(out_pipe) != 0) throw std::runtime_error("pipe failed");
    pid_ = fork();
    if (pid_ < 0) throw std::runtime_error("fork failed");
    if (pid_ == 0) {
      dup2(out_pipe[1], STDOUT_FILENO);
      close(out_pipe[0]);
      close(out_pipe[1]);
      execl(binary.c_str(), binary.c_str(), "--listen", address.c_str(),
            "--seed", std::to_string(kAuditorSeed).c_str(),
            static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    close(out_pipe[1]);
    stdout_ = fdopen(out_pipe[0], "r");
    if (stdout_ == nullptr) throw std::runtime_error("fdopen failed");
  }

  ~DaemonProcess() {
    if (stdout_ != nullptr) fclose(stdout_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);  // no-op if already reaped
      int status = 0;
      waitpid(pid_, &status, WNOHANG);
    }
  }

  /// Next stdout line without the trailing newline; "" on EOF.
  std::string read_line() {
    char buffer[4096];
    if (fgets(buffer, sizeof(buffer), stdout_) == nullptr) return {};
    std::string line(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    return line;
  }

  /// Read until a line starting with `prefix`; returns it ("" on EOF).
  std::string read_until(const std::string& prefix) {
    for (;;) {
      const std::string line = read_line();
      if (line.empty()) return {};
      if (line.rfind(prefix, 0) == 0) return line;
    }
  }

  void terminate() { kill(pid_, SIGTERM); }

  int wait_exit() {
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  FILE* stdout_ = nullptr;
};

TEST(AuditordProcessTest, LedgerRootMatchesInProcessRun) {
  const char* binary = std::getenv("ALIDRONE_AUDITORD");
  if (binary == nullptr || *binary == '\0') {
    GTEST_SKIP() << "ALIDRONE_AUDITORD not set (run via ctest)";
  }

  // Shared request material, generated once so both the in-process
  // reference and the daemon see byte-identical wire traffic.
  crypto::DeterministicRandom operator_rng("auditord-operator");
  crypto::DeterministicRandom owner_rng("auditord-owner");
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "auditord-device";
  tee::DroneTee tee(tee_config);
  core::DroneClient drone(tee, kTestKeyBits, operator_rng);
  core::ZoneOwner owner(kTestKeyBits, owner_rng);
  std::vector<crypto::Bytes> zone_frames;
  for (const geo::GeoZone& zone : test_zones()) {
    zone_frames.push_back(owner.make_zone_request(zone, "daemon zone").encode());
  }

  // ---- In-process reference: exactly the daemon's wiring, over a bus.
  // Same seed, same shards, same ingest pipeline, same request order:
  // register drone, register zones, submit 2 proofs.
  std::vector<crypto::Bytes> proof_frames;
  std::vector<crypto::Bytes> reference_verdicts;
  std::string reference_root_hex;
  {
    obs::MetricsRegistry registry;
    crypto::DeterministicRandom auditor_rng(kAuditorSeed);
    core::ProtocolParams params;
    params.auditor_shards = 8;
    params.metrics = &registry;
    core::Auditor auditor(kTestKeyBits, auditor_rng, params);
    auto led = std::make_shared<ledger::Ledger>();
    auto log = std::make_shared<core::AuditLog>();
    log->attach_ledger(led);
    auditor.attach_audit_log(log);
    core::AuditorIngest ingest(auditor, {});

    net::MessageBus bus;
    auditor.bind(bus);
    ingest.bind(bus);

    ASSERT_TRUE(drone.register_with_auditor(bus));
    for (const crypto::Bytes& frame : zone_frames) {
      bus.request("auditor.register_zone", frame);
    }
    for (int f = 0; f < 2; ++f) {
      const core::ProofOfAlibi poa =
          make_flight_poa(drone, kT0 + f * 100.0, 240u + f);
      proof_frames.push_back(
          core::SubmitPoaRequest{poa.serialize()}.encode());
      reference_verdicts.push_back(
          bus.request("auditor.submit_poa", proof_frames.back()));
    }
    reference_root_hex = crypto::to_hex(led->root_hash());
  }

  // ---- The daemon, as a real child process over a real socket.
  const std::string address = "uds:/tmp/alidrone_auditord_test_" +
                              std::to_string(getpid()) + ".sock";
  DaemonProcess daemon(binary, address);
  ASSERT_EQ(daemon.read_until("listening"), "listening " + address);
  ASSERT_EQ(daemon.read_until("ready"), "ready");

  {
    net::transport::TransportClient::Config client_config;
    client_config.address = address;
    net::transport::TransportClient client(std::move(client_config));

    ASSERT_TRUE(drone.register_with_auditor(client));
    for (const crypto::Bytes& frame : zone_frames) {
      client.request("auditor.register_zone", frame);
    }
    for (std::size_t f = 0; f < proof_frames.size(); ++f) {
      EXPECT_EQ(client.request("auditor.submit_poa", proof_frames[f]),
                reference_verdicts[f])
          << "proof " << f;
    }
  }  // close the connection before asking the daemon to drain

  daemon.terminate();
  const std::string root_line = daemon.read_until("ledger_root");
  EXPECT_EQ(root_line, "ledger_root " + reference_root_hex);
  const std::string requests_line = daemon.read_until("requests");
  // drone registration + 2 zones + 2 proofs, all over the socket
  EXPECT_EQ(requests_line, "requests 5");
  EXPECT_EQ(daemon.read_until("drained"), "drained");
  const int status = daemon.wait_exit();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace alidrone
