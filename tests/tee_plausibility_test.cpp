// Section VII-A2: the secure-world GPS plausibility monitor and its
// integration with the GPS Sampler TA (decline-to-sign semantics).
#include <gtest/gtest.h>

#include "gps/receiver_sim.h"
#include "tee/gps_sampler_ta.h"
#include "tee/plausibility.h"
#include "tee/secure_monitor.h"

namespace alidrone::tee {
namespace {

constexpr double kT0 = 1528400000.0;

gps::GpsFix fix_at(geo::GeoPoint p, double t, double speed = 10.0) {
  gps::GpsFix f;
  f.position = p;
  f.unix_time = t;
  f.speed_mps = speed;
  return f;
}

TEST(PlausibilityMonitor, AcceptsPhysicalMotion) {
  PlausibilityMonitor monitor;
  const geo::LocalFrame frame({40.0, -88.0});
  for (int i = 0; i < 50; ++i) {
    // 10 m/s east, 5 Hz updates.
    const gps::GpsFix f = fix_at(frame.to_geo({i * 2.0, 0}), kT0 + i * 0.2);
    EXPECT_TRUE(monitor.observe(f)) << i;
  }
  EXPECT_EQ(monitor.anomalies(), 0u);
  EXPECT_FALSE(monitor.suspicious());
}

TEST(PlausibilityMonitor, FlagsTeleportation) {
  PlausibilityMonitor monitor;
  const geo::LocalFrame frame({40.0, -88.0});
  EXPECT_TRUE(monitor.observe(fix_at(frame.to_geo({0, 0}), kT0)));
  // 5 km in 0.2 s: 25 km/s.
  EXPECT_FALSE(monitor.observe(fix_at(frame.to_geo({5000, 0}), kT0 + 0.2)));
  EXPECT_TRUE(monitor.suspicious());
  EXPECT_EQ(monitor.anomalies(), 1u);
  EXPECT_NE(monitor.last_reason().find("position jump"), std::string::npos);
}

TEST(PlausibilityMonitor, FlagsTimeReversal) {
  PlausibilityMonitor monitor;
  const geo::LocalFrame frame({40.0, -88.0});
  EXPECT_TRUE(monitor.observe(fix_at(frame.to_geo({0, 0}), kT0)));
  EXPECT_FALSE(monitor.observe(fix_at(frame.to_geo({1, 0}), kT0 - 5.0)));
  EXPECT_NE(monitor.last_reason().find("backwards"), std::string::npos);
}

TEST(PlausibilityMonitor, FlagsAbsurdReportedSpeed) {
  PlausibilityMonitor monitor;
  EXPECT_FALSE(monitor.observe(fix_at({40.0, -88.0}, kT0, 500.0)));
  EXPECT_NE(monitor.last_reason().find("speed"), std::string::npos);
}

TEST(PlausibilityMonitor, QuarantineRequiresCleanStreak) {
  PlausibilityConfig config;
  config.quarantine_length = 5;
  PlausibilityMonitor monitor(config);
  const geo::LocalFrame frame({40.0, -88.0});

  monitor.observe(fix_at(frame.to_geo({0, 0}), kT0));
  monitor.observe(fix_at(frame.to_geo({9000, 0}), kT0 + 0.2));  // anomaly
  EXPECT_TRUE(monitor.suspicious());

  // Clean follow-ups: the monitor stays suspicious until 5 in a row pass.
  for (int i = 1; i <= 4; ++i) {
    EXPECT_FALSE(monitor.observe(
        fix_at(frame.to_geo({9000.0 + i * 2.0, 0}), kT0 + 0.2 + i * 0.2)))
        << i;
  }
  EXPECT_TRUE(monitor.observe(fix_at(frame.to_geo({9010.0, 0}), kT0 + 1.4)));
  EXPECT_FALSE(monitor.suspicious());
}

TEST(PlausibilityMonitor, AnomalyDuringQuarantineRestartsIt) {
  PlausibilityConfig config;
  config.quarantine_length = 3;
  PlausibilityMonitor monitor(config);
  const geo::LocalFrame frame({40.0, -88.0});

  monitor.observe(fix_at(frame.to_geo({0, 0}), kT0));
  monitor.observe(fix_at(frame.to_geo({9000, 0}), kT0 + 0.2));  // anomaly 1
  monitor.observe(fix_at(frame.to_geo({9002, 0}), kT0 + 0.4));  // clean
  monitor.observe(fix_at(frame.to_geo({0, 0}), kT0 + 0.6));     // anomaly 2
  EXPECT_EQ(monitor.anomalies(), 2u);
  EXPECT_TRUE(monitor.suspicious());
}

TEST(PlausibilityMonitor, ResetClearsState) {
  PlausibilityMonitor monitor;
  monitor.observe(fix_at({40.0, -88.0}, kT0, 500.0));
  EXPECT_TRUE(monitor.suspicious());
  monitor.reset();
  EXPECT_FALSE(monitor.suspicious());
  EXPECT_EQ(monitor.anomalies(), 0u);
}

// ---- Integration: the TA declines to sign in a suspicious environment ----

class PlausibilityTaFixture : public ::testing::Test {
 protected:
  PlausibilityTaFixture() : tee_(make_config()) {}

  static DroneTee::Config make_config() {
    DroneTee::Config config;
    config.key_bits = 512;
    config.manufacturing_seed = "plausibility-device";
    config.enable_plausibility_check = true;
    return config;
  }

  void feed_fix(geo::GeoPoint p, double t) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = t;
    gps::GpsReceiverSim sim(rc, [p](double tt) {
      gps::GpsFix f;
      f.position = p;
      f.unix_time = tt;
      f.speed_mps = 10.0;
      return f;
    });
    for (const std::string& s : sim.advance_to(t)) tee_.feed_gps(s);
  }

  InvokeResult get_auth() {
    return tee_.monitor().invoke(
        tee_.sampler_uuid(),
        static_cast<std::uint32_t>(SamplerCommand::kGetGpsAuth));
  }

  DroneTee tee_;
};

TEST_F(PlausibilityTaFixture, SignsNormalFixesButRefusesAfterTeleport) {
  const geo::LocalFrame frame({40.0, -88.0});
  feed_fix(frame.to_geo({0, 0}), kT0);
  EXPECT_TRUE(get_auth().ok());

  // The "spoofed UART" suddenly claims the drone is 50 km away.
  feed_fix(frame.to_geo({50000, 0}), kT0 + 0.2);
  EXPECT_EQ(get_auth().status, TeeStatus::kAccessDenied);

  // Even plausible-looking follow-ups are refused during quarantine.
  feed_fix(frame.to_geo({50002, 0}), kT0 + 0.4);
  EXPECT_EQ(get_auth().status, TeeStatus::kAccessDenied);
}

TEST_F(PlausibilityTaFixture, RecoversAfterQuarantine) {
  const geo::LocalFrame frame({40.0, -88.0});
  feed_fix(frame.to_geo({0, 0}), kT0);
  EXPECT_TRUE(get_auth().ok());
  feed_fix(frame.to_geo({50000, 0}), kT0 + 0.2);
  EXPECT_EQ(get_auth().status, TeeStatus::kAccessDenied);

  // The tenth consecutive clean observation completes quarantine and is
  // itself trusted again (default quarantine_length = 10).
  for (int i = 1; i <= 10; ++i) {
    feed_fix(frame.to_geo({50000.0 + i * 2.0, 0}), kT0 + 0.2 + i * 0.2);
    const InvokeResult result = get_auth();
    if (i <= 9) {
      EXPECT_EQ(result.status, TeeStatus::kAccessDenied) << i;
    } else {
      EXPECT_TRUE(result.ok()) << i;
    }
  }
}

TEST(PlausibilityDisabled, DefaultTeeSignsEverything) {
  DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = "no-plausibility-device";
  DroneTee tee(config);  // checks disabled by default (paper's baseline)

  const geo::LocalFrame frame({40.0, -88.0});
  for (const double x : {0.0, 50000.0}) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = kT0 + x / 1000.0;
    gps::GpsReceiverSim sim(rc, [&frame, x](double tt) {
      gps::GpsFix f;
      f.position = frame.to_geo({x, 0});
      f.unix_time = tt;
      return f;
    });
    for (const std::string& s : sim.advance_to(rc.start_time)) tee.feed_gps(s);
    EXPECT_TRUE(tee.monitor()
                    .invoke(tee.sampler_uuid(),
                            static_cast<std::uint32_t>(SamplerCommand::kGetGpsAuth))
                    .ok());
  }
}

}  // namespace
}  // namespace alidrone::tee
