// FlightActor — the resumable flight state machine (labelled `tsan`).
//
// The refactor's contract is byte-identity: cutting run_flight /
// run_tesla_broadcast_flight at the GPS update grid and driving the
// slices from a scheduler must not change a single byte of what the
// Auditor sees. Coverage:
//  1. two standard actors interleaved step-by-step on one virtual
//     timeline produce PoAs byte-identical to back-to-back blocking runs;
//  2. the TESLA actor driven externally matches the blocking loop —
//     result counters, verdict and the Auditor-side audit trail;
//  3. the submission phase: verdict delivery over the bus, the attack
//     mutate hook, and capped-backoff retries through an outage window.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/attacks.h"
#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/flight_actor.h"
#include "core/sampler.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "resilience/sim_clock.h"
#include "sim/route.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;
constexpr double kRateHz = 5.0;

// A 600 m corridor at 10 m/s with three zones 400 m off to the side —
// honest adaptive flights stay compliant, thinned ones do not.
struct Corridor {
  geo::LocalFrame frame{geo::GeoPoint{40.0, -88.0}};
  std::vector<geo::Circle> local_zones{{geo::Vec2{100.0, 400.0}, 30.0},
                                       {geo::Vec2{300.0, 400.0}, 30.0},
                                       {geo::Vec2{500.0, 400.0}, 30.0}};

  sim::Route route() const {
    return sim::Route(frame,
                      {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}},
                      kT0);
  }

  FlightConfig flight_config() const {
    FlightConfig config;
    config.end_time = route().end_time();
    config.frame = frame;
    config.local_zones = local_zones;
    return config;
  }
};

tee::DroneTee::Config tee_config(const std::string& seed) {
  tee::DroneTee::Config config;
  config.key_bits = kTestKeyBits;
  config.manufacturing_seed = seed;
  return config;
}

gps::GpsReceiverSim make_receiver(const Corridor& corridor) {
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = kRateHz;
  rc.start_time = kT0;
  return gps::GpsReceiverSim(rc, corridor.route().as_position_source());
}

// ---- 1. Standard mode: interleaving preserves every byte ----

TEST(FlightActor, InterleavedActorsMatchBlockingRunsByteForByte) {
  const Corridor corridor;
  const FlightConfig config = corridor.flight_config();

  // Reference: each flight alone through the blocking entry point.
  std::vector<ProofOfAlibi> reference;
  std::vector<FlightResult> reference_results;
  for (const std::string seed : {"actor-twin-a", "actor-twin-b"}) {
    tee::DroneTee tee(tee_config(seed));
    gps::GpsReceiverSim receiver = make_receiver(corridor);
    AdaptiveSampler policy(corridor.frame, corridor.local_zones,
                           geo::kFaaMaxSpeedMps, kRateHz);
    FlightResult result = run_flight(tee, receiver, policy, config);
    reference.push_back(assemble_poa("drone-" + seed, config,
                                     crypto::HashAlgorithm::kSha1, result));
    reference_results.push_back(std::move(result));
  }

  // Same two flights as actors, interleaved one step at a time in
  // earliest-wakeup order — the FleetScheduler's core move, in miniature.
  tee::DroneTee tee_a(tee_config("actor-twin-a"));
  tee::DroneTee tee_b(tee_config("actor-twin-b"));
  gps::GpsReceiverSim recv_a = make_receiver(corridor);
  gps::GpsReceiverSim recv_b = make_receiver(corridor);
  AdaptiveSampler policy_a(corridor.frame, corridor.local_zones,
                           geo::kFaaMaxSpeedMps, kRateHz);
  AdaptiveSampler policy_b(corridor.frame, corridor.local_zones,
                           geo::kFaaMaxSpeedMps, kRateHz);
  FlightActor actor_a(tee_a, recv_a, policy_a, config);
  FlightActor actor_b(tee_b, recv_b, policy_b, config);

  std::size_t steps = 0;
  while (!actor_a.done() || !actor_b.done()) {
    FlightActor* next = nullptr;
    if (actor_a.done()) {
      next = &actor_b;
    } else if (actor_b.done()) {
      next = &actor_a;
    } else {
      next = actor_a.next_wakeup() <= actor_b.next_wakeup() ? &actor_a
                                                            : &actor_b;
    }
    next->step();
    ++steps;
  }
  EXPECT_GT(steps, 2u);  // genuinely sliced, not two monolithic runs

  const FlightResult result_a = actor_a.take_flight();
  const FlightResult result_b = actor_b.take_flight();
  const ProofOfAlibi poa_a = assemble_poa("drone-actor-twin-a", config,
                                          crypto::HashAlgorithm::kSha1, result_a);
  const ProofOfAlibi poa_b = assemble_poa("drone-actor-twin-b", config,
                                          crypto::HashAlgorithm::kSha1, result_b);

  EXPECT_EQ(poa_a.serialize(), reference[0].serialize());
  EXPECT_EQ(poa_b.serialize(), reference[1].serialize());
  EXPECT_EQ(result_a.gps_updates, reference_results[0].gps_updates);
  EXPECT_EQ(result_a.authentications, reference_results[0].authentications);
  EXPECT_EQ(result_a.tee_failures, reference_results[0].tee_failures);
  EXPECT_EQ(result_b.gps_updates, reference_results[1].gps_updates);
  EXPECT_EQ(result_b.authentications, reference_results[1].authentications);
}

// ---- 2. TESLA mode: external driving matches the blocking loop ----

struct TeslaRig {
  crypto::DeterministicRandom auditor_rng{"actor-tesla-auditor"};
  crypto::DeterministicRandom operator_rng{"actor-tesla-operator"};
  crypto::DeterministicRandom owner_rng{"actor-tesla-owner"};
  net::MessageBus bus;
  Auditor auditor{kTestKeyBits, auditor_rng};
  ZoneOwner owner{kTestKeyBits, owner_rng};
  tee::DroneTee tee{tee_config("actor-tesla-device")};
  DroneClient client{tee, kTestKeyBits, operator_rng};
  std::shared_ptr<AuditLog> audit = std::make_shared<AuditLog>();
  Corridor corridor;

  TeslaRig() {
    auditor.attach_audit_log(audit);
    auditor.bind(bus);
    EXPECT_TRUE(client.register_with_auditor(bus));
    for (const geo::Circle& z : corridor.local_zones) {
      owner.register_zone(bus, {corridor.frame.to_geo(z.center), z.radius},
                          "corridor zone");
    }
  }

  TeslaFlightConfig tesla_config() const {
    TeslaFlightConfig config;
    config.end_time = kT0 + 30.0;
    config.session_nonce = 7;
    config.disclosure_delay = 2;
    config.interval_s = 1.0;
    config.local_zones = corridor.local_zones;
    config.frame = corridor.frame;
    return config;
  }
};

TEST(FlightActor, TeslaActorMatchesBlockingLoop) {
  // Blocking reference run.
  TeslaRig loop_rig;
  gps::GpsReceiverSim loop_recv = make_receiver(loop_rig.corridor);
  AdaptiveSampler loop_policy(loop_rig.corridor.frame,
                              loop_rig.corridor.local_zones,
                              geo::kFaaMaxSpeedMps, kRateHz);
  const TeslaFlightResult blocking = run_tesla_broadcast_flight(
      loop_rig.tee, loop_recv, loop_policy, loop_rig.bus,
      loop_rig.client.id(), loop_rig.tesla_config());
  ASSERT_TRUE(blocking.finalized);
  EXPECT_TRUE(blocking.verdict.accepted) << blocking.verdict.detail;

  // Identically-seeded deployment, actor driven from the outside.
  TeslaRig actor_rig;
  gps::GpsReceiverSim actor_recv = make_receiver(actor_rig.corridor);
  AdaptiveSampler actor_policy(actor_rig.corridor.frame,
                               actor_rig.corridor.local_zones,
                               geo::kFaaMaxSpeedMps, kRateHz);
  FlightActor actor(actor_rig.tee, actor_recv, actor_policy,
                    actor_rig.client.id(), actor_rig.tesla_config());
  EXPECT_TRUE(actor.is_tesla());
  while (!actor.done()) {
    actor.step();
    actor.flush(actor_rig.bus);
  }
  const TeslaFlightResult driven = actor.take_tesla();

  EXPECT_EQ(driven.announced, blocking.announced);
  EXPECT_EQ(driven.finalized, blocking.finalized);
  EXPECT_EQ(driven.gps_updates, blocking.gps_updates);
  EXPECT_EQ(driven.samples_sent, blocking.samples_sent);
  EXPECT_EQ(driven.samples_dropped, blocking.samples_dropped);
  EXPECT_EQ(driven.samples_rejected, blocking.samples_rejected);
  EXPECT_EQ(driven.disclosures_sent, blocking.disclosures_sent);
  EXPECT_EQ(driven.verdict.accepted, blocking.verdict.accepted);
  EXPECT_EQ(driven.verdict.compliant, blocking.verdict.compliant);
  EXPECT_EQ(driven.verdict.detail, blocking.verdict.detail);

  // The Auditors lived through identical request sequences.
  const auto& loop_events = loop_rig.audit->events();
  const auto& actor_events = actor_rig.audit->events();
  ASSERT_EQ(actor_events.size(), loop_events.size());
  for (std::size_t i = 0; i < loop_events.size(); ++i) {
    EXPECT_EQ(actor_events[i].type, loop_events[i].type) << "event " << i;
    EXPECT_EQ(actor_events[i].subject, loop_events[i].subject) << "event " << i;
    EXPECT_EQ(actor_events[i].detail, loop_events[i].detail) << "event " << i;
    EXPECT_EQ(actor_events[i].outcome_ok, loop_events[i].outcome_ok)
        << "event " << i;
  }
}

// ---- 3. The submission phase ----

struct SubmissionRig {
  crypto::DeterministicRandom auditor_rng{"actor-submit-auditor"};
  crypto::DeterministicRandom operator_rng{"actor-submit-operator"};
  crypto::DeterministicRandom owner_rng{"actor-submit-owner"};
  resilience::SimClock clock{kT0};
  net::MessageBus bus;
  Auditor auditor{kTestKeyBits, auditor_rng};
  ZoneOwner owner{kTestKeyBits, owner_rng};
  tee::DroneTee tee{tee_config("actor-submit-device")};
  DroneClient client{tee, kTestKeyBits, operator_rng};
  Corridor corridor;

  SubmissionRig() {
    bus.set_clock(&clock);
    auditor.bind(bus);
    EXPECT_TRUE(client.register_with_auditor(bus));
    for (const geo::Circle& z : corridor.local_zones) {
      owner.register_zone(bus, {corridor.frame.to_geo(z.center), z.radius},
                          "corridor zone");
    }
  }

  // Scheduler-style driver: advance the shared clock to the actor's next
  // wakeup, run the slice, flush its sends at that instant.
  void drive(FlightActor& actor) {
    while (!actor.done()) {
      const double t = actor.next_wakeup();
      if (t > clock.now()) clock.advance(t - clock.now());
      actor.step();
      actor.flush(bus);
    }
  }
};

TEST(FlightActor, SubmissionDeliversVerdictOverBus) {
  SubmissionRig rig;
  gps::GpsReceiverSim receiver = make_receiver(rig.corridor);
  AdaptiveSampler policy(rig.corridor.frame, rig.corridor.local_zones,
                         geo::kFaaMaxSpeedMps, kRateHz);
  FlightActor actor(rig.tee, receiver, policy, rig.corridor.flight_config());
  FlightActor::Submission submission;
  submission.drone_id = rig.client.id();
  actor.set_submission(std::move(submission));
  rig.drive(actor);

  ASSERT_TRUE(actor.submission_verdict().has_value());
  EXPECT_TRUE(actor.submission_verdict()->accepted)
      << actor.submission_verdict()->detail;
  EXPECT_TRUE(actor.submission_verdict()->compliant);
  EXPECT_EQ(actor.submission_attempts(), 1u);
}

TEST(FlightActor, SubmissionMutateHookAppliesAttack) {
  SubmissionRig rig;
  gps::GpsReceiverSim receiver = make_receiver(rig.corridor);
  AdaptiveSampler policy(rig.corridor.frame, rig.corridor.local_zones,
                         geo::kFaaMaxSpeedMps, kRateHz);
  FlightActor actor(rig.tee, receiver, policy, rig.corridor.flight_config());
  FlightActor::Submission submission;
  submission.drone_id = rig.client.id();
  submission.mutate = [](ProofOfAlibi poa) {
    return attacks::thinning_abuse(poa, 2);
  };
  actor.set_submission(std::move(submission));
  rig.drive(actor);

  ASSERT_TRUE(actor.submission_verdict().has_value());
  EXPECT_TRUE(actor.submission_verdict()->accepted);    // signatures intact
  EXPECT_FALSE(actor.submission_verdict()->compliant);  // the gap convicts
}

TEST(FlightActor, SubmissionRetriesThroughOutageWindow) {
  SubmissionRig rig;
  // The submit endpoint is dark until one second past the flight's end;
  // a 2 s fixed backoff guarantees attempt 2 lands after the outage.
  net::FaultWindow outage;
  outage.endpoint = "auditor.submit_poa";
  outage.start = 0.0;
  outage.end = rig.corridor.route().end_time() + 1.0;
  net::MessageBus::FaultConfig faults;
  faults.schedule = {outage};
  rig.bus.set_faults(faults);

  gps::GpsReceiverSim receiver = make_receiver(rig.corridor);
  AdaptiveSampler policy(rig.corridor.frame, rig.corridor.local_zones,
                         geo::kFaaMaxSpeedMps, kRateHz);
  FlightActor actor(rig.tee, receiver, policy, rig.corridor.flight_config());
  FlightActor::Submission submission;
  submission.drone_id = rig.client.id();
  submission.retry.max_attempts = 4;
  submission.retry.initial_backoff_s = 2.0;
  submission.retry.backoff_multiplier = 1.0;
  submission.retry.max_backoff_s = 2.0;
  submission.retry.jitter_fraction = 0.0;
  actor.set_submission(std::move(submission));
  rig.drive(actor);

  ASSERT_TRUE(actor.submission_verdict().has_value());
  EXPECT_TRUE(actor.submission_verdict()->accepted);
  EXPECT_EQ(actor.submission_attempts(), 2u);
}

TEST(FlightActor, SubmissionExhaustsRetriesUnderTotalOutage) {
  SubmissionRig rig;
  net::FaultWindow outage;
  outage.endpoint = "auditor.submit_poa";
  outage.start = 0.0;
  outage.end = 1e18;
  net::MessageBus::FaultConfig faults;
  faults.schedule = {outage};
  rig.bus.set_faults(faults);

  gps::GpsReceiverSim receiver = make_receiver(rig.corridor);
  AdaptiveSampler policy(rig.corridor.frame, rig.corridor.local_zones,
                         geo::kFaaMaxSpeedMps, kRateHz);
  FlightActor actor(rig.tee, receiver, policy, rig.corridor.flight_config());
  FlightActor::Submission submission;
  submission.drone_id = rig.client.id();
  submission.retry.max_attempts = 3;
  submission.retry.jitter_fraction = 0.0;
  actor.set_submission(std::move(submission));
  rig.drive(actor);

  EXPECT_FALSE(actor.submission_verdict().has_value());
  EXPECT_EQ(actor.submission_attempts(), 3u);
}

}  // namespace
}  // namespace alidrone::core
