// Differential suite for the fixed-capacity 64-bit bignum core: SmallInt
// arithmetic and the limb64 Montgomery kernels are checked limb-for-limb
// against the general BigInt path at 1024/2048/4096 bits, the
// allocation-free RsaVerifyEngine against rsa_verify, and the batched
// small-exponents test against serial verification — including the
// security property that one forged signature inside a batch flips the
// product check into the per-proof fallback with serial-identical
// verdicts, at the crypto layer and end to end through the Auditor.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "geo/units.h"
#include "crypto/batch_verify.h"
#include "crypto/montgomery.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/smallint.h"
#include "net/message_bus.h"
#include "obs/metrics.h"
#include "sim/scenarios.h"

namespace alidrone::crypto {
namespace {

using Limb = limb64::Limb;

// ---- SmallInt vs BigInt differential arithmetic ----

BigInt odd_modulus(DeterministicRandom& rng, std::size_t bits) {
  BigInt m = (BigInt(1) << (bits - 1)) + rng.random_bits(bits - 1);
  if (!m.is_odd()) m = m + BigInt(1);  // even => +1 cannot carry past a bit
  return m;
}

TEST(SmallInt, EdgeCases) {
  using S = SmallInt<4>;
  EXPECT_TRUE(S().is_zero());
  EXPECT_EQ(S(0).size(), 0u);
  EXPECT_EQ(S(7).bit_length(), 3u);

  // Carry chain across every limb: (2^256 - 1) + 1 needs a fifth limb.
  const Limb all[4] = {~0ull, ~0ull, ~0ull, ~0ull};
  S ones = S::from_limbs(all, 4);
  EXPECT_THROW(ones += S(1), std::overflow_error);

  // Borrow chain: 2^192 - 1 == (2^192) - 1 via BigInt cross-check.
  S pow = S::from_big(BigInt(1) << 192);
  S dec = pow;
  dec -= S(1);
  EXPECT_EQ(dec.to_big(), (BigInt(1) << 192) - BigInt(1));
  EXPECT_EQ(dec.size(), 3u);
  EXPECT_THROW(S(1) - S(2), std::underflow_error);
  EXPECT_EQ((S(5) - S(5)).size(), 0u);

  EXPECT_THROW(S::from_big(BigInt(-1)), std::domain_error);
  EXPECT_THROW(S::from_big(BigInt(1) << 256), std::length_error);
}

TEST(SmallInt, BytesRoundTrip) {
  DeterministicRandom rng("smallint-bytes");
  for (int iter = 0; iter < 50; ++iter) {
    const BigInt a = rng.random_bits(500);
    const auto s = SmallInt<8>::from_big(a);
    std::uint8_t buf[64] = {};
    s.to_bytes(buf);
    EXPECT_EQ(SmallInt<8>::from_bytes(buf).to_big(), a);
    EXPECT_EQ(BigInt::from_bytes(buf), a);
  }
}

TEST(SmallInt, DifferentialAddSubMul) {
  DeterministicRandom rng("smallint-diff");
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    for (int iter = 0; iter < 30; ++iter) {
      const BigInt a = rng.random_bits(bits - 1);
      const BigInt b = rng.random_bits(bits - 1);
      const auto sa = SmallInt<64>::from_big(a);
      const auto sb = SmallInt<64>::from_big(b);
      EXPECT_EQ((sa + sb).to_big(), a + b) << bits;
      const bool a_ge_b = a >= b;
      EXPECT_EQ((a_ge_b ? sa - sb : sb - sa).to_big(),
                a_ge_b ? a - b : b - a)
          << bits;
      EXPECT_EQ(sa.compare(sb) < 0, a < b) << bits;
    }
  }
  // Full products at half capacity so NA + NB stays within the template.
  for (int iter = 0; iter < 30; ++iter) {
    const BigInt a = rng.random_bits(2048);
    const BigInt b = rng.random_bits(2048);
    const auto p = SmallInt<32>::from_big(a) * SmallInt<32>::from_big(b);
    EXPECT_EQ(p.to_big(), a * b);
  }
}

// ---- limb64 Montgomery kernels vs BigInt ----

TEST(SmallInt, DifferentialMontgomeryKernels) {
  DeterministicRandom rng("smallint-mont");
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    const BigInt m = odd_modulus(rng, bits);
    const MontgomeryContext ctx(m);
    const limb64::Mont& mont = ctx.mont();
    const std::size_t k = ctx.limb_count();
    std::vector<Limb> a_hat(k), b_hat(k), out(k), t(k + 2);

    for (int iter = 0; iter < 10; ++iter) {
      const BigInt a = rng.random_range(BigInt(0), m - BigInt(1));
      const BigInt b = rng.random_range(BigInt(0), m - BigInt(1));

      // mont_mul over raw limbs: from_mont(a-hat * b-hat) == a*b mod m.
      ctx.to_mont(a).to_limbs64(a_hat.data(), k);
      ctx.to_mont(b).to_limbs64(b_hat.data(), k);
      limb64::mont_mul(mont, a_hat.data(), b_hat.data(), out.data(), t.data());
      limb64::redc(mont, out.data(), out.data(), t.data());
      EXPECT_EQ(BigInt::from_limbs64(out.data(), k), (a * b).mod(m)) << bits;

      // redc inverts to_mont exactly.
      limb64::redc(mont, a_hat.data(), out.data(), t.data());
      EXPECT_EQ(BigInt::from_limbs64(out.data(), k), a) << bits;
    }

    // modexp: windowed (wide exponent) and square-multiply (<= 64 bits)
    // paths against BigInt::mod_pow.
    const BigInt base = rng.random_range(BigInt(0), m - BigInt(1));
    for (const std::size_t ebits : {40u, 256u}) {
      const BigInt e = rng.random_bits(ebits);
      EXPECT_EQ(ctx.pow(base, e), base.mod_pow(e, m)) << bits << ":" << ebits;
    }
  }
}

// ---- RsaVerifyEngine vs rsa_verify ----

TEST(SmallInt, VerifyEngineMatchesRsaVerify) {
  DeterministicRandom rng("engine-vs-serial");
  const RsaKeyPair key = generate_rsa_keypair(1024, rng);
  ASSERT_TRUE(RsaVerifyEngine::supports(key.pub));
  RsaVerifyEngine engine(key.pub);

  const Bytes msg = {'p', 'o', 'a', '-', 's', 'a', 'm', 'p', 'l', 'e'};
  Bytes sig = rsa_sign(key.priv, msg, HashAlgorithm::kSha256);

  const auto both = [&](std::span<const std::uint8_t> m,
                        std::span<const std::uint8_t> s) {
    const bool serial = rsa_verify(key.pub, m, s, HashAlgorithm::kSha256);
    EXPECT_EQ(engine.verify(m, s, HashAlgorithm::kSha256), serial);
    return serial;
  };

  EXPECT_TRUE(both(msg, sig));
  Bytes bad = sig;
  bad[7] ^= 0x40;
  EXPECT_FALSE(both(msg, bad));           // corrupted signature
  Bytes other = msg;
  other[0] ^= 0x01;
  EXPECT_FALSE(both(other, sig));         // corrupted message
  EXPECT_FALSE(both(msg, Bytes(sig.begin(), sig.end() - 1)));  // wrong length
  EXPECT_FALSE(both(msg, key.pub.n.to_bytes(sig.size())));     // s == n >= n
}

// ---- Batched verification: throughput path and the forgery flip ----

struct SignedMsg {
  Bytes msg;
  Bytes sig;
};

std::vector<SignedMsg> make_signed(const RsaKeyPair& key, std::size_t count) {
  std::vector<SignedMsg> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].msg = {static_cast<std::uint8_t>(i), 0x55, 0xaa,
                  static_cast<std::uint8_t>(i * 7)};
    out[i].sig = rsa_sign(key.priv, out[i].msg, HashAlgorithm::kSha256);
  }
  return out;
}

TEST(BatchVerify, AllValidBatchSettlesWithoutFallback) {
  DeterministicRandom rng("batch-valid");
  const RsaKeyPair key = generate_rsa_keypair(1024, rng);
  const auto items = make_signed(key, 8);

  BatchVerifyConfig config;
  config.max_batch = 8;
  BatchRsaVerifier bv(key.pub, config);
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(bv.enqueue(i, items[i].msg, items[i].sig, HashAlgorithm::kSha256));
  }
  EXPECT_TRUE(bv.full());
  EXPECT_EQ(bv.flush(), std::nullopt);
  EXPECT_EQ(bv.flushes(), 1u);
  EXPECT_EQ(bv.batched_items(), 8u);
  EXPECT_EQ(bv.fallbacks(), 0u);
  EXPECT_EQ(bv.size(), 0u);  // queue reset
}

TEST(BatchVerify, ForgedSignatureFlipsToPerProofFallback) {
  DeterministicRandom rng("batch-forged");
  const RsaKeyPair key = generate_rsa_keypair(1024, rng);
  auto items = make_signed(key, 8);
  // A structurally valid forgery: index 3 carries index 0's signature.
  items[3].sig = items[0].sig;

  for (const std::size_t check_bits : {0u, 16u}) {
    BatchVerifyConfig config;
    config.max_batch = 8;
    config.check_bits = check_bits;
    BatchRsaVerifier bv(key.pub, config);
    for (std::size_t i = 0; i < items.size(); ++i) {
      ASSERT_TRUE(
          bv.enqueue(i, items[i].msg, items[i].sig, HashAlgorithm::kSha256));
    }
    const auto bad = bv.flush();
    ASSERT_TRUE(bad.has_value()) << check_bits;
    EXPECT_EQ(*bad, 3u) << check_bits;
    EXPECT_EQ(bv.fallbacks(), 1u);

    // The fallback's per-proof verdicts are serial verification verbatim.
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(rsa_verify(key.pub, items[i].msg, items[i].sig,
                           HashAlgorithm::kSha256),
                i != 3)
          << i;
    }
  }
}

TEST(BatchVerify, ReportsFirstOfSeveralForgeries) {
  DeterministicRandom rng("batch-two-forged");
  const RsaKeyPair key = generate_rsa_keypair(1024, rng);
  auto items = make_signed(key, 6);
  items[2].sig = items[0].sig;
  items[5].sig = items[1].sig;

  BatchRsaVerifier bv(key.pub);
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(
        bv.enqueue(i, items[i].msg, items[i].sig, HashAlgorithm::kSha256));
  }
  EXPECT_EQ(bv.flush(), std::optional<std::size_t>(2));  // lowest index wins
}

// The check_bits = 0 plain product test verifies permutation-invariant
// set authenticity: swapping two valid signatures leaves both products
// unchanged, so the batch passes even though serial verification rejects
// both items. Distinct per-item challenges (check_bits > 0) break that
// symmetry. This is why the Auditor never selects screening implicitly.
TEST(BatchVerify, ScreeningIsPermutationInvariantChallengesAreNot) {
  DeterministicRandom rng("batch-swap");
  const RsaKeyPair key = generate_rsa_keypair(1024, rng);
  auto items = make_signed(key, 6);
  std::swap(items[1].sig, items[4].sig);

  // Each swapped pair is individually invalid.
  EXPECT_FALSE(rsa_verify(key.pub, items[1].msg, items[1].sig,
                          HashAlgorithm::kSha256));
  EXPECT_FALSE(rsa_verify(key.pub, items[4].msg, items[4].sig,
                          HashAlgorithm::kSha256));

  BatchVerifyConfig screening;
  screening.check_bits = 0;
  BatchRsaVerifier plain(key.pub, screening);
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(
        plain.enqueue(i, items[i].msg, items[i].sig, HashAlgorithm::kSha256));
  }
  EXPECT_EQ(plain.flush(), std::nullopt);  // the product cannot see the swap
  EXPECT_EQ(plain.fallbacks(), 0u);

  BatchRsaVerifier challenged(key.pub);  // default 16-bit challenges
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(challenged.enqueue(i, items[i].msg, items[i].sig,
                                   HashAlgorithm::kSha256));
  }
  EXPECT_EQ(challenged.flush(), std::optional<std::size_t>(1));
  EXPECT_EQ(challenged.fallbacks(), 1u);
}

TEST(BatchVerify, StructurallyInvalidItemsAreRejectedWithoutQueueing) {
  DeterministicRandom rng("batch-structural");
  const RsaKeyPair key = generate_rsa_keypair(1024, rng);
  const auto items = make_signed(key, 2);

  BatchRsaVerifier bv(key.pub);
  ASSERT_TRUE(bv.enqueue(0, items[0].msg, items[0].sig, HashAlgorithm::kSha256));
  const Bytes short_sig(items[1].sig.begin(), items[1].sig.end() - 1);
  EXPECT_FALSE(bv.enqueue(1, items[1].msg, short_sig, HashAlgorithm::kSha256));
  const Bytes big_sig = key.pub.n.to_bytes(items[1].sig.size());  // s == n
  EXPECT_FALSE(bv.enqueue(1, items[1].msg, big_sig, HashAlgorithm::kSha256));
  EXPECT_EQ(bv.size(), 1u);              // nothing was queued
  EXPECT_EQ(bv.flush(), std::nullopt);   // the queued item is still valid
}

// Shared immutable Montgomery state: many engines on one cached context,
// verifying concurrently. Run under the tsan label.
TEST(BatchVerify, ConcurrentEnginesShareContextSafely) {
  DeterministicRandom rng("batch-threads");
  const RsaKeyPair key = generate_rsa_keypair(512, rng);
  const auto items = make_signed(key, 4);

  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      RsaVerifyEngine engine(key.pub);
      for (int round = 0; round < 8; ++round) {
        for (const auto& it : items) {
          ASSERT_TRUE(engine.verify(it.msg, it.sig, HashAlgorithm::kSha256));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace alidrone::crypto

// ---- End to end: Auditor verdicts and audit detail are identical with
// batching on and off, and the batch counters surface in the registry ----

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

class AuditorBatchEquivalence : public ::testing::Test {
 protected:
  AuditorBatchEquivalence()
      : rng_serial_("batch-eq-auditor"),
        rng_batched_("batch-eq-auditor"),  // same seed: same keypair
        operator_rng_("batch-eq-operator"),
        serial_(kTestKeyBits, rng_serial_, serial_params()),
        batched_(kTestKeyBits, rng_batched_, batched_params()),
        tee_(make_tee_config()),
        client_(tee_, kTestKeyBits, operator_rng_) {
    serial_.bind(serial_bus_);
    batched_.bind(batched_bus_);
    EXPECT_TRUE(client_.register_with_auditor(serial_bus_));
    EXPECT_TRUE(client_.register_with_auditor(batched_bus_));
  }

  static ProtocolParams serial_params() {
    ProtocolParams p;
    p.batch_verify = false;
    return p;
  }
  static ProtocolParams batched_params() {
    ProtocolParams p;
    p.batch_verify = true;
    p.batch_verify_max_batch = 4;  // force several flushes per PoA
    // 8-bit challenges keep the Auditor's cost gate open for e = 65537
    // (17 bits > 8 + 4) so these tests actually exercise the batch path;
    // the default 16-bit setting makes the gate choose the serial engine.
    p.batch_verify_check_bits = 8;
    return p;
  }
  static tee::DroneTee::Config make_tee_config() {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "batch-eq-device";
    return config;
  }

  ProofOfAlibi fly() {
    const sim::Scenario scenario = sim::make_airport_scenario(kT0);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
    AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = scenario.route.start_time() +
                      std::min(60.0, scenario.route.duration());
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    config.auth_mode = AuthMode::kRsaPerSample;
    return client_.fly(receiver, policy, config);
  }

  crypto::DeterministicRandom rng_serial_;
  crypto::DeterministicRandom rng_batched_;
  crypto::DeterministicRandom operator_rng_;
  net::MessageBus serial_bus_;
  net::MessageBus batched_bus_;
  Auditor serial_;
  Auditor batched_;
  tee::DroneTee tee_;
  DroneClient client_;
};

TEST_F(AuditorBatchEquivalence, VerdictsMatchSerialForValidAndForgedPoas) {
  ProofOfAlibi poa = fly();
  ASSERT_GT(poa.samples.size(), 4u);

  const PoaVerdict vs = serial_.verify_poa(poa, kT0 + 500);
  const PoaVerdict vb = batched_.verify_poa(poa, kT0 + 500);
  EXPECT_TRUE(vb.accepted) << vb.detail;
  EXPECT_EQ(vb.accepted, vs.accepted);
  EXPECT_EQ(vb.compliant, vs.compliant);
  EXPECT_EQ(vb.detail, vs.detail);

  // Forge one signature mid-PoA: both paths must report the same sample.
  const std::size_t victim = poa.samples.size() / 2;
  poa.samples[victim].signature = poa.samples[0].signature;
  const PoaVerdict fs = serial_.verify_poa(poa, kT0 + 501);
  const PoaVerdict fb = batched_.verify_poa(poa, kT0 + 501);
  EXPECT_FALSE(fb.accepted);
  EXPECT_EQ(fb.detail, "sample " + std::to_string(victim) + " signature invalid");
  EXPECT_EQ(fb.detail, fs.detail);

  // Two forgeries: serial ordering says the lower index is reported.
  poa.samples[victim + 1].signature = poa.samples[1].signature;
  EXPECT_EQ(batched_.verify_poa(poa, kT0 + 502).detail,
            serial_.verify_poa(poa, kT0 + 502).detail);

  // Signature swap: each swapped sample is individually invalid but the
  // multiset of signatures is unchanged — exactly the case the randomized
  // challenges exist for. Both paths must reject with the lower index.
  ProofOfAlibi swapped = fly();
  std::swap(swapped.samples[1].signature, swapped.samples[3].signature);
  const PoaVerdict ss = serial_.verify_poa(swapped, kT0 + 503);
  const PoaVerdict sb = batched_.verify_poa(swapped, kT0 + 503);
  EXPECT_FALSE(sb.accepted);
  EXPECT_EQ(sb.detail, "sample 1 signature invalid");
  EXPECT_EQ(sb.detail, ss.detail);
}

TEST_F(AuditorBatchEquivalence, BatchCountersSurfaceInMetricsRegistry) {
  obs::MetricsRegistry registry;
  ProtocolParams params = batched_params();
  params.metrics = &registry;
  crypto::DeterministicRandom rng("batch-metrics-auditor");
  Auditor auditor(kTestKeyBits, rng, params);
  net::MessageBus bus;
  auditor.bind(bus);
  ASSERT_TRUE(client_.register_with_auditor(bus));

  const ProofOfAlibi poa = fly();
  ASSERT_GT(poa.samples.size(), 4u);
  ASSERT_TRUE(auditor.verify_poa(poa, kT0 + 500).accepted);

  // First auditor in a fresh registry => instance scope core.auditor#0.
  const std::uint64_t groups =
      registry.counter("core.auditor#0.batch.groups").value();
  const std::uint64_t samples =
      registry.counter("core.auditor#0.batch.samples").value();
  EXPECT_GE(groups, 2u);  // max_batch = 4 forces multiple flushes
  EXPECT_EQ(samples, poa.samples.size());
  EXPECT_EQ(registry.counter("core.auditor#0.batch.fallbacks").value(), 0u);
  EXPECT_GT(registry.gauge("core.auditor#0.batch.max_group").value(), 0.0);
  EXPECT_NE(registry.to_json().find("core.auditor#0.batch.groups"),
            std::string::npos);
}

}  // namespace
}  // namespace alidrone::core
