// GPS forgery attacks (Section III-B) — every move a dishonest Drone
// Operator can make must be rejected by the Auditor (Goal G3).
#include <gtest/gtest.h>

#include "core/attacks.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

class AttackFixture : public ::testing::Test {
 protected:
  AttackFixture()
      : auditor_rng_("attack-auditor"),
        owner_rng_("attack-owner"),
        operator_rng_("attack-operator"),
        attacker_rng_("attacker"),
        auditor_(kTestKeyBits, auditor_rng_),
        owner_(kTestKeyBits, owner_rng_),
        tee_(make_tee_config()),
        client_(tee_, kTestKeyBits, operator_rng_),
        scenario_(sim::make_residential_scenario(kT0)) {
    auditor_.bind(bus_);
    EXPECT_TRUE(client_.register_with_auditor(bus_));
    for (const geo::GeoZone& z : scenario_.zones) {
      owner_.register_zone(bus_, z, "house");
    }
  }

  static tee::DroneTee::Config make_tee_config() {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "attack-test-device";
    return config;
  }

  ProofOfAlibi honest_flight() {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario_.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario_.route.as_position_source());
    AdaptiveSampler policy(scenario_.frame, scenario_.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = scenario_.route.end_time();
    config.frame = scenario_.frame;
    config.local_zones = scenario_.local_zones();
    return client_.fly(receiver, policy, config);
  }

  crypto::DeterministicRandom auditor_rng_;
  crypto::DeterministicRandom owner_rng_;
  crypto::DeterministicRandom operator_rng_;
  crypto::DeterministicRandom attacker_rng_;
  net::MessageBus bus_;
  Auditor auditor_;
  ZoneOwner owner_;
  tee::DroneTee tee_;
  DroneClient client_;
  sim::Scenario scenario_;
};

TEST_F(AttackFixture, HonestBaselinePasses) {
  const PoaVerdict verdict = auditor_.verify_poa(honest_flight(), kT0 + 200);
  EXPECT_TRUE(verdict.accepted);
  EXPECT_TRUE(verdict.compliant);
}

TEST_F(AttackFixture, ForgedTraceRejectedSignatureMismatch) {
  // The attacker pre-computes an innocuous route far from every zone and
  // signs it with a key they generated — T- is out of reach.
  std::vector<gps::GpsFix> fake_route;
  const geo::LocalFrame frame(scenario_.frame);
  for (int i = 0; i < 20; ++i) {
    gps::GpsFix f;
    f.position = frame.to_geo({-5000.0 + i * 10.0, -5000.0});
    f.unix_time = kT0 + i * 0.2;
    fake_route.push_back(f);
  }
  const ProofOfAlibi forged = attacks::forge_trace(
      client_.id(), fake_route, crypto::HashAlgorithm::kSha1, kTestKeyBits,
      attacker_rng_);

  const PoaVerdict verdict = auditor_.verify_poa(forged, kT0 + 100);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_NE(verdict.detail.find("signature invalid"), std::string::npos);
}

TEST_F(AttackFixture, RelayedPoaRejectedWrongTeeKey) {
  // A second drone with its own TEE flies honestly; our attacker presents
  // that drone's PoA under their own id.
  tee::DroneTee::Config other_config;
  other_config.key_bits = kTestKeyBits;
  other_config.manufacturing_seed = "accomplice-device";
  tee::DroneTee other_tee(other_config);
  crypto::DeterministicRandom other_rng("accomplice-operator");
  DroneClient accomplice(other_tee, kTestKeyBits, other_rng);
  ASSERT_TRUE(accomplice.register_with_auditor(bus_));

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario_.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario_.route.as_position_source());
  AdaptiveSampler policy(scenario_.frame, scenario_.local_zones(),
                         geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig config;
  config.end_time = scenario_.route.end_time();
  config.frame = scenario_.frame;
  config.local_zones = scenario_.local_zones();
  const ProofOfAlibi accomplice_poa = accomplice.fly(receiver, policy, config);

  // Sanity: the accomplice's own submission verifies.
  EXPECT_TRUE(auditor_.verify_poa(accomplice_poa, kT0 + 200).accepted);

  const ProofOfAlibi relayed = attacks::relay(accomplice_poa, client_.id());
  const PoaVerdict verdict = auditor_.verify_poa(relayed, kT0 + 200);
  EXPECT_FALSE(verdict.accepted);
}

TEST_F(AttackFixture, TamperedPositionRejected) {
  ProofOfAlibi poa = honest_flight();
  // Teleport sample 3 a kilometer west without re-signing.
  const auto fix = poa.samples[3].fix();
  ASSERT_TRUE(fix.has_value());
  const ProofOfAlibi tampered = attacks::tamper_position(
      poa, 3, {fix->position.lat_deg, fix->position.lon_deg - 0.01});
  const PoaVerdict verdict = auditor_.verify_poa(tampered, kT0 + 200);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_NE(verdict.detail.find("sample 3"), std::string::npos);
}

TEST_F(AttackFixture, TamperedTimestampRejected) {
  const ProofOfAlibi tampered = attacks::tamper_time(honest_flight(), 5, 30.0);
  EXPECT_FALSE(auditor_.verify_poa(tampered, kT0 + 200).accepted);
}

TEST_F(AttackFixture, DroppedSamplesBreakSufficiencyNearZones) {
  // The operator cuts the middle of the trace (e.g. to hide a detour into
  // a backyard). Signatures remain valid but the time gap near dense NFZs
  // is insufficient under eq. (1).
  ProofOfAlibi poa = honest_flight();
  ASSERT_GT(poa.samples.size(), 30u);
  const std::size_t from = poa.samples.size() / 3;
  const std::size_t to = poa.samples.size() * 2 / 3;
  const ProofOfAlibi gapped = attacks::drop_samples(poa, from, to);

  const PoaVerdict verdict = auditor_.verify_poa(gapped, kT0 + 200);
  EXPECT_TRUE(verdict.accepted);       // nothing is forged...
  EXPECT_FALSE(verdict.compliant);     // ...but the alibi no longer holds
  EXPECT_GT(verdict.violation_count, 0u);
}

TEST_F(AttackFixture, ReplayedPoaCannotAnswerLaterIncident) {
  // The operator submits an honest PoA for flight 1, then flies into a
  // zone at a later time and replays the old PoA. The accusation at the
  // later incident time is not covered by the replayed flight window.
  const ProofOfAlibi poa = honest_flight();
  ASSERT_TRUE(auditor_.verify_poa(poa, kT0 + 200).compliant);

  const ZoneId accused_zone = "zone-11";
  const double later_incident = kT0 + 5000.0;  // a different flight entirely
  const AccusationRequest accusation =
      owner_.make_accusation(accused_zone, client_.id(), later_incident);
  const AccusationResponse response = auditor_.handle_accusation(accusation);
  EXPECT_TRUE(response.ok);
  EXPECT_FALSE(response.alibi_holds);
}

TEST_F(AttackFixture, ReorderedSamplesRejected) {
  ProofOfAlibi poa = honest_flight();
  ASSERT_GT(poa.samples.size(), 4u);
  std::swap(poa.samples[1], poa.samples[2]);
  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 200);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.detail, "samples not time-ordered");
}

TEST_F(AttackFixture, SignatureSwapAcrossSamplesRejected) {
  ProofOfAlibi poa = honest_flight();
  ASSERT_GT(poa.samples.size(), 4u);
  std::swap(poa.samples[1].signature, poa.samples[2].signature);
  EXPECT_FALSE(auditor_.verify_poa(poa, kT0 + 200).accepted);
}

TEST_F(AttackFixture, MaliciousUartInjectionDocumentedLimitation) {
  // Section V-A: an attacker who wires a programmable UART into the GPS
  // port can make the TEE sign forged positions — the signatures then
  // verify. This test documents the acknowledged limitation (mitigation:
  // embedded GPS chips).
  const geo::LocalFrame frame(scenario_.frame);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  // The "UART device" claims the drone is far away from everything.
  gps::GpsReceiverSim fake_receiver(rc, [&frame](double t) {
    gps::GpsFix f;
    f.position = frame.to_geo({-50000.0, -50000.0});
    f.unix_time = t;
    return f;
  });

  FixedRateSampler policy(1.0, kT0);
  FlightConfig config;
  config.end_time = kT0 + 30.0;
  const FlightResult result = run_flight(tee_, fake_receiver, policy, config);

  ProofOfAlibi poa;
  poa.drone_id = client_.id();
  poa.samples = result.poa_samples;
  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 100);
  EXPECT_TRUE(verdict.accepted);  // the TEE signed what the "hardware" said
  EXPECT_TRUE(verdict.compliant);
}

TEST_F(AttackFixture, NavigationDeviationDriftConvictedByItsOwnPoa) {
  // Gradual GPS spoofing drifts the vehicle into house #10's zone. The
  // attack defeats navigation, not the alibi: the TEE signs the deviated
  // fixes, so the PoA itself documents the zone entry.
  const geo::GeoZone target = scenario_.zones[10];
  gps::PositionSource source = attacks::spoofed_drift_source(
      scenario_.route.as_position_source(), scenario_.frame,
      scenario_.frame.to_local(target.center),
      scenario_.route.start_time() + 10.0, 15.0);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario_.route.start_time();
  gps::GpsReceiverSim receiver(rc, std::move(source));
  AdaptiveSampler policy(scenario_.frame, scenario_.local_zones(),
                         geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig config;
  config.end_time = scenario_.route.end_time();
  config.frame = scenario_.frame;
  config.local_zones = scenario_.local_zones();
  const ProofOfAlibi poa = client_.fly(receiver, policy, config);

  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 500);
  EXPECT_TRUE(verdict.accepted) << verdict.detail;  // genuine TEE signatures
  EXPECT_FALSE(verdict.compliant);                  // ...over a zone entry
  EXPECT_GT(verdict.violation_count, 0u);
}

TEST_F(AttackFixture, SpoofedDriftIsIdentityBeforeOnset) {
  // Before the onset time (and with no drift budget) the wrapper must
  // pass the truth through untouched.
  const gps::PositionSource truth = scenario_.route.as_position_source();
  const gps::PositionSource wrapped = attacks::spoofed_drift_source(
      scenario_.route.as_position_source(), scenario_.frame, {0.0, 0.0},
      scenario_.route.start_time() + 50.0, 15.0);
  const double t = scenario_.route.start_time() + 20.0;
  EXPECT_EQ(wrapped(t), truth(t));
}

TEST_F(AttackFixture, ThinningAbuseFlaggedInsufficientNearZones) {
  const ProofOfAlibi honest = honest_flight();
  ASSERT_GT(honest.samples.size(), 2u);
  const ProofOfAlibi abused = attacks::thinning_abuse(honest, 2);
  ASSERT_EQ(abused.samples.size(), 2u);

  const PoaVerdict verdict = auditor_.verify_poa(abused, kT0 + 500);
  EXPECT_TRUE(verdict.accepted);   // the kept signatures are untouched
  EXPECT_FALSE(verdict.compliant); // the gap violates eq. (1) near houses
  EXPECT_GT(verdict.violation_count, 0u);
}

TEST_F(AttackFixture, ThinningAbuseKeepsEndpointsAndOrder) {
  const ProofOfAlibi honest = honest_flight();
  ASSERT_GE(honest.samples.size(), 5u);
  const ProofOfAlibi thinned = attacks::thinning_abuse(honest, 4);
  ASSERT_EQ(thinned.samples.size(), 4u);
  EXPECT_EQ(thinned.samples.front().sample, honest.samples.front().sample);
  EXPECT_EQ(thinned.samples.back().sample, honest.samples.back().sample);
  // keep >= size is a no-op.
  const ProofOfAlibi untouched =
      attacks::thinning_abuse(honest, honest.samples.size() + 3);
  EXPECT_EQ(untouched.samples.size(), honest.samples.size());
}

}  // namespace
}  // namespace alidrone::core
