#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "gps/receiver_sim.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

namespace alidrone::tee {
namespace {

constexpr double kT0 = 1528395200.0;

/// A DroneTee with a small (fast) key, fed one fix.
class TeeFixture : public ::testing::Test {
 protected:
  TeeFixture() : tee_(make_config()) {}

  static DroneTee::Config make_config() {
    DroneTee::Config config;
    config.key_bits = 512;  // fast for tests; protocol-realistic sizes in benches
    config.manufacturing_seed = "tee-test-device";
    return config;
  }

  void feed_fix(geo::GeoPoint p, double t) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = t;
    gps::GpsReceiverSim sim(rc, [p](double tt) {
      gps::GpsFix f;
      f.position = p;
      f.unix_time = tt;
      return f;
    });
    for (const std::string& s : sim.advance_to(t)) tee_.feed_gps(s);
  }

  InvokeResult invoke(SamplerCommand cmd, std::span<const crypto::Bytes> params = {}) {
    return tee_.monitor().invoke(tee_.sampler_uuid(), static_cast<std::uint32_t>(cmd),
                                 params);
  }

  DroneTee tee_;
};

TEST(Uuid, DeterministicFromName) {
  const Uuid a = Uuid::from_name("alidrone.gps_sampler");
  const Uuid b = Uuid::from_name("alidrone.gps_sampler");
  const Uuid c = Uuid::from_name("other.ta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string().size(), 36u);
}

TEST(SampleCodec, RoundTripPreservesPrecision) {
  gps::GpsFix fix;
  fix.position = {40.116412345, -88.243498765};
  fix.altitude_m = 123.456;
  fix.unix_time = kT0 + 0.123456;

  const crypto::Bytes encoded = encode_sample(fix);
  EXPECT_EQ(encoded.size(), kEncodedSampleSize);
  const auto decoded = decode_sample(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NEAR(decoded->position.lat_deg, fix.position.lat_deg, 1e-9);
  EXPECT_NEAR(decoded->position.lon_deg, fix.position.lon_deg, 1e-9);
  EXPECT_NEAR(decoded->altitude_m, fix.altitude_m, 1e-3);
  EXPECT_NEAR(decoded->unix_time, fix.unix_time, 1e-6);
}

TEST(SampleCodec, EncodeDecodeEncodeIsIdentity) {
  gps::GpsFix fix;
  fix.position = {-33.8688, 151.2093};
  fix.unix_time = kT0;
  const crypto::Bytes once = encode_sample(fix);
  const auto decoded = decode_sample(once);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(encode_sample(*decoded), once);  // signatures stay verifiable
}

TEST(SampleCodec, RejectsWrongSize) {
  EXPECT_FALSE(decode_sample(crypto::Bytes(31, 0)).has_value());
  EXPECT_FALSE(decode_sample(crypto::Bytes(33, 0)).has_value());
  EXPECT_FALSE(decode_sample({}).has_value());
}

TEST(SecureStorage, PutGetEraseAndCapacity) {
  SecureStorage storage(100);
  EXPECT_TRUE(storage.put("a", crypto::Bytes(60, 1)));
  EXPECT_EQ(storage.used_bytes(), 60u);
  EXPECT_FALSE(storage.put("b", crypto::Bytes(60, 2)));  // over capacity
  EXPECT_TRUE(storage.put("a", crypto::Bytes(30, 3)));   // replace shrinks
  EXPECT_EQ(storage.used_bytes(), 30u);
  EXPECT_EQ(storage.get("a"), crypto::Bytes(30, 3));
  EXPECT_TRUE(storage.erase("a"));
  EXPECT_FALSE(storage.erase("a"));
  EXPECT_EQ(storage.used_bytes(), 0u);
  EXPECT_FALSE(storage.get("missing").has_value());
}

TEST(KeyVault, SignaturesVerifyWithExportedKey) {
  crypto::DeterministicRandom rng("vault-test");
  const KeyVault vault = KeyVault::manufacture(512, rng);
  const crypto::Bytes msg = crypto::to_bytes("sample");
  const crypto::Bytes sig = vault.sign(msg, crypto::HashAlgorithm::kSha256);
  EXPECT_TRUE(crypto::rsa_verify(vault.verification_key(), msg, sig,
                                 crypto::HashAlgorithm::kSha256));
  EXPECT_EQ(vault.key_bits(), 512u);
}

TEST_F(TeeFixture, GetGpsAuthBeforeAnyFixIsNotReady) {
  const InvokeResult result = invoke(SamplerCommand::kGetGpsAuth);
  EXPECT_EQ(result.status, TeeStatus::kNotReady);
}

TEST_F(TeeFixture, GetGpsAuthSignsTheCurrentFix) {
  feed_fix({40.1164, -88.2434}, kT0);
  const InvokeResult result = invoke(SamplerCommand::kGetGpsAuth);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 2u);

  const auto fix = decode_sample(result.outputs[0]);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->position.lat_deg, 40.1164, 1e-4);

  EXPECT_TRUE(crypto::rsa_verify(tee_.verification_key(), result.outputs[0],
                                 result.outputs[1], crypto::HashAlgorithm::kSha1));
}

TEST_F(TeeFixture, SignatureBreaksWhenSampleTampered) {
  feed_fix({40.1164, -88.2434}, kT0);
  InvokeResult result = invoke(SamplerCommand::kGetGpsAuth);
  ASSERT_TRUE(result.ok());
  result.outputs[0][5] ^= 0x01;
  EXPECT_FALSE(crypto::rsa_verify(tee_.verification_key(), result.outputs[0],
                                  result.outputs[1], crypto::HashAlgorithm::kSha1));
}

TEST_F(TeeFixture, UnknownCommandAndUuidRejected) {
  EXPECT_EQ(invoke(static_cast<SamplerCommand>(999)).status, TeeStatus::kBadCommand);
  const InvokeResult result =
      tee_.monitor().invoke(Uuid::from_name("no.such.ta"), 1, {});
  EXPECT_EQ(result.status, TeeStatus::kNotFound);
}

TEST_F(TeeFixture, MonitorCountsWorldSwitches) {
  feed_fix({40.0, -88.0}, kT0);
  const std::uint64_t before = tee_.monitor().world_switches();
  invoke(SamplerCommand::kGetGpsAuth);
  invoke(SamplerCommand::kGetPublicKey);
  EXPECT_EQ(tee_.monitor().world_switches(), before + 4);  // 2 per invocation
  EXPECT_GE(tee_.monitor().invocations(), 2u);
}

TEST_F(TeeFixture, GetPublicKeyMatchesVaultKey) {
  const InvokeResult result = invoke(SamplerCommand::kGetPublicKey);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 2u);
  EXPECT_EQ(crypto::BigInt::from_bytes(result.outputs[0]), tee_.verification_key().n);
  EXPECT_EQ(crypto::BigInt::from_bytes(result.outputs[1]), tee_.verification_key().e);
}

TEST_F(TeeFixture, HmacSessionFlow) {
  feed_fix({40.0, -88.0}, kT0);

  // Before a key is established, HMAC sampling is refused.
  EXPECT_EQ(invoke(SamplerCommand::kGetGpsHmac).status, TeeStatus::kNotReady);

  // The "Auditor's" keypair.
  crypto::DeterministicRandom rng("auditor-hmac-test");
  const crypto::RsaKeyPair auditor = crypto::generate_rsa_keypair(512, rng);
  const std::vector<crypto::Bytes> params{auditor.pub.n.to_bytes(),
                                          auditor.pub.e.to_bytes()};
  const InvokeResult establish = invoke(SamplerCommand::kEstablishHmacKey, params);
  ASSERT_TRUE(establish.ok());
  ASSERT_EQ(establish.outputs.size(), 2u);

  // The ciphertext is signed by the TEE and decryptable by the Auditor.
  EXPECT_TRUE(crypto::rsa_verify(tee_.verification_key(), establish.outputs[0],
                                 establish.outputs[1], crypto::HashAlgorithm::kSha1));
  const auto key = crypto::rsa_decrypt(auditor.priv, establish.outputs[0]);
  ASSERT_TRUE(key.has_value());
  ASSERT_EQ(key->size(), 32u);

  // HMAC samples verify under the shared key.
  const InvokeResult sampled = invoke(SamplerCommand::kGetGpsHmac);
  ASSERT_TRUE(sampled.ok());
  const auto tag = crypto::HmacSha256::mac(*key, sampled.outputs[0]);
  EXPECT_EQ(sampled.outputs[1], crypto::Bytes(tag.begin(), tag.end()));
}

TEST_F(TeeFixture, EstablishHmacKeyRejectsBadParams) {
  EXPECT_EQ(invoke(SamplerCommand::kEstablishHmacKey).status, TeeStatus::kBadParameters);
  const std::vector<crypto::Bytes> tiny{crypto::Bytes{1}, crypto::Bytes{3}};
  EXPECT_EQ(invoke(SamplerCommand::kEstablishHmacKey, tiny).status,
            TeeStatus::kBadParameters);
}

TEST_F(TeeFixture, BatchModeSignsWholeTraceAtOnce) {
  // Section VII-A1b: cache samples, one signature at the end.
  ASSERT_TRUE(invoke(SamplerCommand::kBatchBegin).ok());

  crypto::Bytes expected_payload;
  for (int i = 0; i < 5; ++i) {
    feed_fix({40.0 + i * 0.001, -88.0}, kT0 + i);
    const InvokeResult appended = invoke(SamplerCommand::kBatchAppend);
    ASSERT_TRUE(appended.ok());
    expected_payload.insert(expected_payload.end(), appended.outputs[0].begin(),
                            appended.outputs[0].end());
  }

  const InvokeResult finalized = invoke(SamplerCommand::kBatchFinalize);
  ASSERT_TRUE(finalized.ok());
  ASSERT_EQ(finalized.outputs.size(), 2u);
  EXPECT_EQ(finalized.outputs[0], expected_payload);
  EXPECT_TRUE(crypto::rsa_verify(tee_.verification_key(), finalized.outputs[0],
                                 finalized.outputs[1], crypto::HashAlgorithm::kSha1));

  // Finalize closes the batch.
  EXPECT_EQ(invoke(SamplerCommand::kBatchFinalize).status, TeeStatus::kNotReady);
}

TEST_F(TeeFixture, BatchAppendWithoutBeginRefused) {
  feed_fix({40.0, -88.0}, kT0);
  EXPECT_EQ(invoke(SamplerCommand::kBatchAppend).status, TeeStatus::kNotReady);
}

TEST_F(TeeFixture, CostMeterChargesSignAndSwitches) {
  feed_fix({40.0, -88.0}, kT0);
  resource::CpuAccountant cpu(4);
  const resource::CostProfile profile = resource::CostProfile::raspberry_pi3();
  tee_.set_cost_meter(&cpu, profile);

  invoke(SamplerCommand::kGetGpsAuth);
  // 2 world switches + GPS read + one 1024-class signature (512-bit key
  // maps to the 1024 bucket).
  EXPECT_NEAR(cpu.busy_seconds(),
              2 * profile.world_switch + profile.gps_read_parse + profile.rsa_sign_1024,
              1e-12);
}

// ---- GlobalPlatform-style sessions ----

TEST_F(TeeFixture, OpenInvokeCloseSessionLifecycle) {
  const SessionId session = tee_.monitor().open_session(tee_.sampler_uuid());
  ASSERT_GE(session, 1u);
  EXPECT_EQ(tee_.monitor().open_session_count(), 1u);

  const InvokeResult key = tee_.monitor().invoke(
      session, static_cast<std::uint32_t>(SamplerCommand::kGetPublicKey));
  EXPECT_TRUE(key.ok());

  EXPECT_TRUE(tee_.monitor().close_session(session));
  EXPECT_FALSE(tee_.monitor().close_session(session));  // already closed
  EXPECT_EQ(tee_.monitor().open_session_count(), 0u);

  // Invoking a closed session is refused.
  const InvokeResult after = tee_.monitor().invoke(
      session, static_cast<std::uint32_t>(SamplerCommand::kGetPublicKey));
  EXPECT_EQ(after.status, TeeStatus::kAccessDenied);
}

TEST_F(TeeFixture, OpenSessionToUnknownTaFails) {
  EXPECT_EQ(tee_.monitor().open_session(Uuid::from_name("no.such.ta")), 0u);
}

TEST_F(TeeFixture, HmacKeysAreIsolatedBetweenSessions) {
  feed_fix({40.0, -88.0}, kT0);
  const SessionId s1 = tee_.monitor().open_session(tee_.sampler_uuid());
  const SessionId s2 = tee_.monitor().open_session(tee_.sampler_uuid());
  ASSERT_NE(s1, s2);

  crypto::DeterministicRandom rng("session-auditor");
  const crypto::RsaKeyPair auditor = crypto::generate_rsa_keypair(512, rng);
  const std::vector<crypto::Bytes> params{auditor.pub.n.to_bytes(),
                                          auditor.pub.e.to_bytes()};
  ASSERT_TRUE(tee_.monitor()
                  .invoke(s1,
                          static_cast<std::uint32_t>(SamplerCommand::kEstablishHmacKey),
                          params)
                  .ok());

  // Session 1 can MAC samples; session 2 has no key and is refused.
  EXPECT_TRUE(tee_.monitor()
                  .invoke(s1, static_cast<std::uint32_t>(SamplerCommand::kGetGpsHmac))
                  .ok());
  EXPECT_EQ(tee_.monitor()
                .invoke(s2, static_cast<std::uint32_t>(SamplerCommand::kGetGpsHmac))
                .status,
            TeeStatus::kNotReady);
}

TEST_F(TeeFixture, BatchesAreIsolatedBetweenSessions) {
  feed_fix({40.0, -88.0}, kT0);
  const SessionId s1 = tee_.monitor().open_session(tee_.sampler_uuid());
  const SessionId s2 = tee_.monitor().open_session(tee_.sampler_uuid());

  const auto cmd = [&](SessionId s, SamplerCommand c) {
    return tee_.monitor().invoke(s, static_cast<std::uint32_t>(c));
  };
  ASSERT_TRUE(cmd(s1, SamplerCommand::kBatchBegin).ok());
  ASSERT_TRUE(cmd(s1, SamplerCommand::kBatchAppend).ok());

  // Session 2 never began a batch.
  EXPECT_EQ(cmd(s2, SamplerCommand::kBatchAppend).status, TeeStatus::kNotReady);

  // Two independent batches can run concurrently.
  ASSERT_TRUE(cmd(s2, SamplerCommand::kBatchBegin).ok());
  feed_fix({40.001, -88.0}, kT0 + 1.0);
  ASSERT_TRUE(cmd(s2, SamplerCommand::kBatchAppend).ok());
  ASSERT_TRUE(cmd(s1, SamplerCommand::kBatchAppend).ok());

  const InvokeResult f1 = cmd(s1, SamplerCommand::kBatchFinalize);
  const InvokeResult f2 = cmd(s2, SamplerCommand::kBatchFinalize);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.outputs[0].size(), 2 * kEncodedSampleSize);
  EXPECT_EQ(f2.outputs[0].size(), 1 * kEncodedSampleSize);
}

TEST_F(TeeFixture, CloseSessionReleasesBatchStorage) {
  feed_fix({40.0, -88.0}, kT0);
  const SessionId s = tee_.monitor().open_session(tee_.sampler_uuid());
  tee_.monitor().invoke(s, static_cast<std::uint32_t>(SamplerCommand::kBatchBegin));
  tee_.monitor().invoke(s, static_cast<std::uint32_t>(SamplerCommand::kBatchAppend));
  tee_.monitor().close_session(s);

  // A new session with the same numeric id cannot exist, and storage was
  // cleaned: a fresh session starts with no batch.
  const SessionId s2 = tee_.monitor().open_session(tee_.sampler_uuid());
  EXPECT_EQ(tee_.monitor()
                .invoke(s2, static_cast<std::uint32_t>(SamplerCommand::kBatchAppend))
                .status,
            TeeStatus::kNotReady);
}

TEST_F(TeeFixture, SessionOperationsCountWorldSwitches) {
  const std::uint64_t before = tee_.monitor().world_switches();
  const SessionId s = tee_.monitor().open_session(tee_.sampler_uuid());
  tee_.monitor().invoke(s, static_cast<std::uint32_t>(SamplerCommand::kGetPublicKey));
  tee_.monitor().close_session(s);
  EXPECT_EQ(tee_.monitor().world_switches(), before + 6);  // open+invoke+close
}

TEST(DroneTee, DistinctSeedsDistinctKeys) {
  DroneTee::Config a;
  a.key_bits = 512;
  a.manufacturing_seed = "device-a";
  DroneTee::Config b;
  b.key_bits = 512;
  b.manufacturing_seed = "device-b";
  EXPECT_NE(DroneTee(a).verification_key().n, DroneTee(b).verification_key().n);
}

}  // namespace
}  // namespace alidrone::tee
