#include <gtest/gtest.h>

#include "crypto/montgomery.h"
#include "crypto/prime.h"
#include "crypto/random.h"
#include "crypto/rsa.h"

namespace alidrone::crypto {
namespace {

TEST(Montgomery, RejectsEvenOrTinyModulus) {
  EXPECT_THROW(MontgomeryContext(BigInt(100)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(1)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(-7)), std::invalid_argument);
  EXPECT_NO_THROW(MontgomeryContext(BigInt(3)));
}

TEST(Montgomery, ToFromMontRoundTrip) {
  const BigInt m = BigInt::from_string("0xffffffffffffffffffffffffffffff61");
  const MontgomeryContext ctx(m);
  DeterministicRandom rng(9);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = rng.random_range(BigInt(0), m - BigInt(1));
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST(Montgomery, MulMatchesPlainModularMultiplication) {
  const BigInt m = BigInt::from_string("0xffffffffffffffffffffffffffffff61");
  const MontgomeryContext ctx(m);
  DeterministicRandom rng(10);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = rng.random_range(BigInt(0), m - BigInt(1));
    const BigInt b = rng.random_range(BigInt(0), m - BigInt(1));
    const BigInt expected = (a * b).mod(m);
    const BigInt got =
        ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, expected);
  }
}

TEST(Montgomery, PowMatchesSmallModulusPath) {
  // A modulus below the dispatch threshold exercises the plain path; the
  // Montgomery context must agree with it.
  const BigInt m(1000003);  // odd prime, < 128 bits
  const MontgomeryContext ctx(m);
  DeterministicRandom rng(11);
  for (int i = 0; i < 20; ++i) {
    const BigInt base(static_cast<std::int64_t>(rng.uniform(1000000)));
    const BigInt exp(static_cast<std::int64_t>(rng.uniform(100000)));
    EXPECT_EQ(ctx.pow(base, exp), base.mod_pow(exp, m));
  }
}

TEST(Montgomery, PowEdgeCases) {
  const BigInt m = BigInt::from_string("0xffffffffffffffffffffffffffffff61");
  const MontgomeryContext ctx(m);
  EXPECT_EQ(ctx.pow(BigInt(5), BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx.pow(BigInt(0), BigInt(5)), BigInt(0));
  EXPECT_EQ(ctx.pow(BigInt(1), BigInt::from_string("123456789")), BigInt(1));
  EXPECT_EQ(ctx.pow(m - BigInt(1), BigInt(2)), BigInt(1));  // (-1)^2
  EXPECT_THROW(ctx.pow(BigInt(2), BigInt(-1)), std::domain_error);
}

TEST(Montgomery, FermatOnLargePrime) {
  // 2^521 - 1 is a Mersenne prime; a^(p-1) = 1 mod p.
  const BigInt p = (BigInt(1) << 521) - BigInt(1);
  const MontgomeryContext ctx(p);
  for (std::int64_t a : {2, 3, 65537}) {
    EXPECT_EQ(ctx.pow(BigInt(a), p - BigInt(1)), BigInt(1)) << a;
  }
}

// Property sweep: Montgomery pow agrees with an independent reference
// (square-and-multiply with division-based reduction) on random inputs
// across modulus sizes.
class MontgomeryEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MontgomeryEquivalence, AgreesWithDivisionBasedModexp) {
  const std::size_t bits = GetParam();
  DeterministicRandom rng(bits * 1009);
  BigInt m = rng.random_bits(bits);
  if (m.is_even()) m += BigInt(1);
  const MontgomeryContext ctx(m);

  for (int i = 0; i < 4; ++i) {
    const BigInt base = rng.random_bits(bits + 7);
    const BigInt exp = rng.random_bits(64);

    // Reference: plain square-and-multiply, division-based reduction.
    BigInt reference(1);
    BigInt b = base.mod(m);
    for (std::size_t j = exp.bit_length(); j-- > 0;) {
      reference = (reference * reference).mod(m);
      if (exp.bit(j)) reference = (reference * b).mod(m);
    }

    EXPECT_EQ(ctx.pow(base, exp), reference) << "bits=" << bits << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusSizes, MontgomeryEquivalence,
                         ::testing::Values(128, 160, 255, 256, 512, 1024, 2048));

TEST(Montgomery, RsaSignStillVerifiesThroughDispatch) {
  // End-to-end: mod_pow now routes through Montgomery for RSA sizes.
  DeterministicRandom rng("montgomery-rsa");
  const RsaKeyPair kp = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("montgomery dispatch check");
  const Bytes sig = rsa_sign(kp.priv, msg, HashAlgorithm::kSha256);
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
}

TEST(MontgomeryCache, HitsReuseTheSameContext) {
  MontgomeryContextCache cache(8);
  const BigInt m = (BigInt(1) << 521) - BigInt(1);
  const auto first = cache.get(m);
  const auto second = cache.get(m);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first->modulus(), m);
}

TEST(MontgomeryCache, LruEvictsOldestModulus) {
  MontgomeryContextCache cache(2);
  const BigInt m1 = (BigInt(1) << 521) - BigInt(1);
  const BigInt m2 = (BigInt(1) << 127) - BigInt(1);  // also a Mersenne prime
  const BigInt m3 = (BigInt(1) << 255) - BigInt(19);
  const auto c1 = cache.get(m1);
  cache.get(m2);
  cache.get(m1);  // bump m1 to most-recent
  cache.get(m3);  // evicts m2, not m1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(m1).get(), c1.get());  // still cached
  const std::uint64_t misses_before = cache.misses();
  cache.get(m2);  // must rebuild
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(MontgomeryCache, EvictedContextStaysUsableThroughSharedPtr) {
  MontgomeryContextCache cache(1);
  const BigInt m = (BigInt(1) << 521) - BigInt(1);
  const auto ctx = cache.get(m);
  cache.get((BigInt(1) << 127) - BigInt(1));  // evicts m
  // The caller's shared_ptr keeps the evicted context alive and correct.
  EXPECT_EQ(ctx->pow(BigInt(2), m - BigInt(1)), BigInt(1));
}

TEST(MontgomeryCache, CachedPowMatchesFreshContext) {
  const BigInt m = (BigInt(1) << 255) - BigInt(19);
  DeterministicRandom rng("cache-equivalence");
  for (int i = 0; i < 8; ++i) {
    const BigInt base = rng.random_range(BigInt(2), m - BigInt(1));
    const BigInt exp = rng.random_bits(64);
    const auto cached = MontgomeryContextCache::global().get(m);
    EXPECT_EQ(cached->pow(base, exp), MontgomeryContext(m).pow(base, exp));
    EXPECT_EQ(cached->pow(base, exp), base.mod_pow(exp, m));
  }
}

TEST(MontgomeryCache, GlobalCacheServesRepeatVerifies) {
  DeterministicRandom rng("cache-verify");
  const RsaKeyPair kp = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("cached verify");
  const Bytes sig = rsa_sign(kp.priv, msg, HashAlgorithm::kSha256);

  MontgomeryContextCache& cache = MontgomeryContextCache::global();
  ASSERT_TRUE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
  const std::uint64_t misses_after_warmup = cache.misses();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
  }
  // Re-verifying under the same public key must not rebuild contexts.
  EXPECT_EQ(cache.misses(), misses_after_warmup);
}

}  // namespace
}  // namespace alidrone::crypto
