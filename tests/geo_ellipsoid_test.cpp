#include <gtest/gtest.h>

#include "geo/ellipsoid.h"

namespace alidrone::geo {
namespace {

TEST(Cylinder, ContainsAndDistance) {
  const Cylinder cyl{{0, 0}, 10.0, 50.0};
  EXPECT_TRUE(cyl.contains({0, 0, 0}));
  EXPECT_TRUE(cyl.contains({10, 0, 50}));
  EXPECT_FALSE(cyl.contains({10.01, 0, 25}));
  EXPECT_FALSE(cyl.contains({0, 0, 50.01}));
  EXPECT_FALSE(cyl.contains({0, 0, -0.01}));

  EXPECT_DOUBLE_EQ(cyl.distance_to({0, 0, 25}), 0.0);
  EXPECT_DOUBLE_EQ(cyl.distance_to({13, 0, 25}), 3.0);  // radial only
  EXPECT_DOUBLE_EQ(cyl.distance_to({0, 0, 60}), 10.0);  // axial only
  // Corner: radial 3, axial 4 -> 5.
  EXPECT_DOUBLE_EQ(cyl.distance_to({13, 0, 54}), 5.0);
}

TEST(Cylinder, ProjectClampsIntoSolid) {
  const Cylinder cyl{{0, 0}, 10.0, 50.0};
  const Vec3 p = cyl.project({20, 0, 70});
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
  EXPECT_DOUBLE_EQ(p.z, 50.0);
  const Vec3 inside = cyl.project({1, 2, 3});
  EXPECT_EQ(inside, (Vec3{1, 2, 3}));
}

TEST(TravelEllipsoid, ContainsFociAndMidpoint) {
  const TravelEllipsoid e({0, 0, 10}, {100, 0, 30}, 200.0);
  EXPECT_TRUE(e.contains({0, 0, 10}));
  EXPECT_TRUE(e.contains({100, 0, 30}));
  EXPECT_TRUE(e.contains({50, 0, 20}));
}

TEST(TravelEllipsoid, InfeasiblePairIsDisjointFromEverything) {
  const TravelEllipsoid e({0, 0, 0}, {1000, 0, 0}, 10.0);
  EXPECT_FALSE(e.feasible());
  EXPECT_TRUE(e.exactly_disjoint(Cylinder{{500, 0}, 100.0, 100.0}));
}

TEST(TravelEllipsoid, FocalTestDisjointFarCylinder) {
  const TravelEllipsoid e({0, 0, 50}, {100, 0, 50}, 150.0);
  const Cylinder far_zone{{2000, 0}, 50.0, 200.0};
  EXPECT_TRUE(e.focal_test_disjoint(far_zone));
  EXPECT_TRUE(e.exactly_disjoint(far_zone));
}

TEST(TravelEllipsoid, IntersectsCylinderItPassesThrough) {
  // Flight straight over the cylinder below the ceiling.
  const TravelEllipsoid e({-100, 0, 30}, {100, 0, 30}, 250.0);
  const Cylinder zone{{0, 0}, 20.0, 60.0};
  EXPECT_FALSE(e.focal_test_disjoint(zone));
  EXPECT_FALSE(e.exactly_disjoint(zone));
}

TEST(TravelEllipsoid, FlyingAboveTheCeilingIsAlibi) {
  // The same planar path, but the drone holds 200 m altitude while the
  // cylinder tops out at 60 m: the 3D model certifies the alibi the 2D
  // model cannot (motivation for Section VII-B1).
  const TravelEllipsoid e({-100, 0, 200}, {100, 0, 200}, 210.0);
  const Cylinder zone{{0, 0}, 20.0, 60.0};
  EXPECT_TRUE(e.exactly_disjoint(zone));
}

TEST(TravelEllipsoid, MinFocalSumMatchesHandComputation) {
  // Foci at (0,0,100) and (0,0,120) directly above the cylinder top center
  // (radius 5, height 50). The nearest cylinder point is (0,0,50): sum =
  // 50 + 70 = 120.
  const TravelEllipsoid e({0, 0, 100}, {0, 0, 120}, 1000.0);
  const Cylinder zone{{0, 0}, 5.0, 50.0};
  EXPECT_NEAR(e.min_focal_sum_over_cylinder(zone), 120.0, 1e-3);
}

TEST(TravelEllipsoid, FocalTestConservativeInThreeD) {
  // Broadside geometry where the focal test under-certifies.
  const TravelEllipsoid e({-40, 0, 100}, {40, 0, 100}, 100.0);
  const Cylinder zone{{0, 60}, 10.0, 80.0};
  // Exact: nearest cylinder point ~ (0, 50, 80..100 clipped to 80):
  // distance from each focus ~ sqrt(40^2 + 50^2 + 20^2) ~ 67.1 -> sum 134 > 100.
  EXPECT_TRUE(e.exactly_disjoint(zone));
  // Focal distances: sqrt(40^2+50^2+20^2) - but distance_to computes radial
  // sqrt(40^2+60^2)-10 ~ 62.1 and axial 20 -> ~65.2 per focus, sum ~130 >=
  // 100, so the focal test also certifies at this distance.
  EXPECT_TRUE(e.focal_test_disjoint(zone));
  // Tighten the focal sum so only the exact test can certify.
  const TravelEllipsoid tight({-40, 0, 100}, {40, 0, 100}, 131.0);
  EXPECT_TRUE(tight.exactly_disjoint(zone));
  EXPECT_FALSE(tight.focal_test_disjoint(zone));
}

// Property: focal-test soundness in 3D — whenever the focal test certifies
// disjointness the exact minimizer agrees.
class Ellipsoid3Property : public ::testing::TestWithParam<int> {};

TEST_P(Ellipsoid3Property, FocalTestSound) {
  const double offset = static_cast<double>(GetParam()) * 17.0;
  const TravelEllipsoid e({-30, offset * 0.1, 40}, {30, 0, 60}, 90.0);
  const Cylinder zone{{offset, 40}, 12.0, 70.0};
  if (e.focal_test_disjoint(zone)) {
    EXPECT_TRUE(e.exactly_disjoint(zone));
  }
  // And the exact min is never below the focal lower bound.
  const double lower = zone.distance_to(e.focus1()) + zone.distance_to(e.focus2());
  EXPECT_GE(e.min_focal_sum_over_cylinder(zone) + 1e-9, lower);
}

INSTANTIATE_TEST_SUITE_P(Offsets, Ellipsoid3Property, ::testing::Range(0, 15));

}  // namespace
}  // namespace alidrone::geo
