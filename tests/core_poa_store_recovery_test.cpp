// PoaStore crash consistency (labelled `ledger`): a save interrupted
// mid-write leaves a truncated or CRC-failing highest-sequence file. The
// opening scan must recognize that signature, drop the file, count it in
// the recovered-tail gauge — and keep treating damage anywhere ELSE as
// corruption, because a torn middle file cannot be a crashed tail.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/poa.h"
#include "core/poa_store.h"
#include "geo/geopoint.h"
#include "obs/metrics.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;

ProofOfAlibi make_poa(const DroneId& drone_id, double t) {
  ProofOfAlibi poa;
  poa.drone_id = drone_id;
  poa.mode = AuthMode::kRsaPerSample;
  poa.hash = crypto::HashAlgorithm::kSha1;
  gps::GpsFix fix;
  fix.position = geo::GeoPoint{40.0, -88.0};
  fix.unix_time = t;
  SignedSample sample;
  sample.sample = tee::encode_sample(fix);
  sample.signature = crypto::Bytes{4, 5, 6};  // the store never verifies
  poa.samples.push_back(std::move(sample));
  return poa;
}

class PoaStoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("alidrone-poa-recovery-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Paths of all stored files, sorted by filename (= sequence order).
  std::vector<std::filesystem::path> stored_files() const {
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  std::filesystem::path dir_;
};

TEST_F(PoaStoreRecoveryTest, TruncatedTrailingSaveIsDroppedAndCounted) {
  {
    PoaStore store(dir_);
    for (int i = 0; i < 3; ++i) {
      store.save("drone-a", kT0 + i, make_poa("drone-a", kT0 + i));
    }
  }
  // Crash mid-save: the highest-sequence file loses its tail bytes.
  const auto files = stored_files();
  ASSERT_EQ(files.size(), 3u);
  const auto torn = files.back();
  std::filesystem::resize_file(torn, std::filesystem::file_size(torn) - 7);

  obs::MetricsRegistry reg;
  PoaStore recovered(dir_, &reg);
  EXPECT_EQ(recovered.count(), 2u);
  EXPECT_EQ(recovered.recovered_tail_files(), 1u);
  EXPECT_EQ(recovered.corrupt_files_seen(), 0u);
  EXPECT_FALSE(std::filesystem::exists(torn));

  // The store keeps working: the lost submission is simply re-saved.
  recovered.save("drone-a", kT0 + 2, make_poa("drone-a", kT0 + 2));
  EXPECT_EQ(recovered.count(), 3u);
  EXPECT_EQ(recovered.load_for_drone("drone-a").size(), 3u);
}

TEST_F(PoaStoreRecoveryTest, CrcCatchesBitFlipInTrailingSave) {
  {
    PoaStore store(dir_);
    store.save("drone-b", kT0, make_poa("drone-b", kT0));
    store.save("drone-b", kT0 + 1, make_poa("drone-b", kT0 + 1));
  }
  // Flip one payload byte (well past the 8-byte magic+crc header): the
  // length structure still parses, only the CRC can notice.
  const auto victim = stored_files().back();
  {
    std::fstream file(victim,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(12);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(12);
    file.write(&byte, 1);
  }

  PoaStore recovered(dir_);
  EXPECT_EQ(recovered.count(), 1u);
  EXPECT_EQ(recovered.recovered_tail_files(), 1u);
  EXPECT_EQ(recovered.corrupt_files_seen(), 0u);
}

TEST_F(PoaStoreRecoveryTest, DamagedMiddleFileIsCorruptionNotATornTail) {
  {
    PoaStore store(dir_);
    for (int i = 0; i < 3; ++i) {
      store.save("drone-c", kT0 + i, make_poa("drone-c", kT0 + i));
    }
  }
  // Truncate the MIDDLE file: a crash cannot tear a file that later saves
  // succeeded after, so this must be reported, not silently dropped.
  const auto files = stored_files();
  ASSERT_EQ(files.size(), 3u);
  std::filesystem::resize_file(files[1],
                               std::filesystem::file_size(files[1]) - 7);

  PoaStore recovered(dir_);
  EXPECT_EQ(recovered.recovered_tail_files(), 0u);
  EXPECT_EQ(recovered.corrupt_files_seen(), 1u);
  EXPECT_TRUE(std::filesystem::exists(files[1]));  // evidence is preserved
  EXPECT_EQ(recovered.count(), 3u);  // count() scans; damage stays visible
  EXPECT_EQ(recovered.load_all().size(), 2u);  // loads skip the damage
}

TEST_F(PoaStoreRecoveryTest, ReopenedStoreRoundTripsV2Files) {
  {
    PoaStore store(dir_);
    store.save("drone-d", kT0, make_poa("drone-d", kT0));
    store.save("drone-e", kT0 + 1, make_poa("drone-e", kT0 + 1));
  }
  PoaStore reopened(dir_);
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(reopened.recovered_tail_files(), 0u);
  const auto all = reopened.load_all();
  ASSERT_EQ(all.size(), 2u);
  const auto for_d = reopened.load_for_drone("drone-d");
  ASSERT_EQ(for_d.size(), 1u);
  EXPECT_EQ(for_d[0].submission_time, kT0);
  EXPECT_EQ(for_d[0].poa.samples.size(), 1u);
}

}  // namespace
}  // namespace alidrone::core
