#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/message_bus.h"
#include "resilience/sim_clock.h"
#include "resource/cost_model.h"

namespace alidrone {
namespace {

using resource::CostProfile;
using resource::CpuAccountant;
using resource::MemoryAccountant;
using resource::Op;
using resource::PowerModel;

TEST(CostProfile, Pi3CalibrationMatchesTable2Inversion) {
  const CostProfile p = CostProfile::raspberry_pi3();
  // Per-sample costs implied by Table II at 2 Hz: ~43.4 ms (1024) and
  // ~219 ms (2048) of one core.
  EXPECT_NEAR(p.per_sample_cost(1024), 0.0434, 0.002);
  EXPECT_NEAR(p.per_sample_cost(2048), 0.2190, 0.005);
  // 2048-bit signing must make 5 Hz unsustainable on one core.
  EXPECT_GT(5.0 * p.per_sample_cost(2048), 1.0);
  EXPECT_LT(5.0 * p.per_sample_cost(1024), 1.0);
}

TEST(CostProfile, CostSwitchCoversAllOps) {
  const CostProfile p = CostProfile::raspberry_pi3();
  for (const Op op : {Op::kWorldSwitch, Op::kGpsReadParse, Op::kRsaSign1024,
                      Op::kRsaSign2048, Op::kRsaEncrypt1024, Op::kRsaEncrypt2048,
                      Op::kHmacSign, Op::kPersistSample, Op::kEllipseCheck}) {
    EXPECT_GT(p.cost(op), 0.0);
  }
  EXPECT_GT(p.cost(Op::kRsaSign2048), p.cost(Op::kRsaSign1024));
  EXPECT_GT(p.cost(Op::kRsaSign1024), p.cost(Op::kHmacSign));
}

TEST(CpuAccountant, UtilizationArithmetic) {
  CpuAccountant cpu(4);
  cpu.advance_wall(10.0);
  cpu.charge(1.0);
  EXPECT_DOUBLE_EQ(cpu.core_utilization(), 0.1);
  EXPECT_DOUBLE_EQ(cpu.system_utilization_percent(), 2.5);  // of 4 cores
  EXPECT_TRUE(cpu.sustainable());

  cpu.charge(20.0);  // more busy time than wall time: unsustainable
  EXPECT_FALSE(cpu.sustainable());

  cpu.reset();
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.core_utilization(), 0.0);
}

TEST(CpuAccountant, ChargeByOpUsesProfile) {
  const CostProfile p = CostProfile::raspberry_pi3();
  CpuAccountant cpu(4);
  cpu.charge(Op::kRsaSign1024, p);
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), p.rsa_sign_1024);
}

TEST(CpuAccountant, WallTimeFollowsBoundClock) {
  resilience::SimClock clock;
  clock.advance(5.0);  // binding starts the integration at the clock's now
  CpuAccountant cpu(4);
  cpu.bind_clock(&clock);
  EXPECT_DOUBLE_EQ(cpu.wall_seconds(), 0.0);

  clock.advance(10.0);
  cpu.sync_wall();
  EXPECT_DOUBLE_EQ(cpu.wall_seconds(), 10.0);

  // sync_wall is idempotent until the clock moves again.
  cpu.sync_wall();
  EXPECT_DOUBLE_EQ(cpu.wall_seconds(), 10.0);

  clock.advance(2.5);
  cpu.sync_wall();
  EXPECT_DOUBLE_EQ(cpu.wall_seconds(), 12.5);

  cpu.charge(1.25);
  EXPECT_DOUBLE_EQ(cpu.core_utilization(), 0.1);

  // reset() re-anchors the integration at the clock's current time.
  cpu.reset();
  EXPECT_DOUBLE_EQ(cpu.wall_seconds(), 0.0);
  clock.advance(4.0);
  cpu.sync_wall();
  EXPECT_DOUBLE_EQ(cpu.wall_seconds(), 4.0);
}

TEST(PowerModel, KaupEquationFour) {
  const PowerModel power;
  // Idle: P(0) = 1.5778 W.
  EXPECT_DOUBLE_EQ(power.power_watts(0.0), 1.5778);
  // Full load: P(1) = 1.7588 W.
  EXPECT_NEAR(power.power_watts(1.0), 1.7588, 1e-9);
  // Table II's 5 Hz/1024-bit row: 5.59% utilization -> 1.5879 W.
  EXPECT_NEAR(power.power_watts(0.0559), 1.5879, 1e-4);
}

TEST(MemoryAccountant, PaperResidentSet) {
  const MemoryAccountant mem = MemoryAccountant::alidrone_client();
  EXPECT_NEAR(mem.resident_mb(), 3.27, 0.01);
  // 3.27 MB of 1 GB is ~0.3% (Table II's memory row).
  EXPECT_NEAR(mem.percent_of_pi3(), 0.32, 0.05);
}

TEST(MemoryAccountant, AllocateReleaseBalance) {
  MemoryAccountant mem(1000);
  mem.allocate(500);
  EXPECT_EQ(mem.resident_bytes(), 1500u);
  mem.release(200);
  EXPECT_EQ(mem.resident_bytes(), 1300u);
  mem.release(10000);  // over-release clamps at the baseline
  EXPECT_EQ(mem.resident_bytes(), 1000u);
}

TEST(Codec, PrimitivesRoundTrip) {
  net::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-88.2434);
  w.str("alibi");
  w.bytes(crypto::Bytes{1, 2, 3});

  const crypto::Bytes data = std::move(w).take();
  net::Reader r(data);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -88.2434);
  EXPECT_EQ(r.str(), "alibi");
  EXPECT_EQ(r.bytes(), (crypto::Bytes{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, ReaderRejectsTruncation) {
  net::Writer w;
  w.u64(7);
  crypto::Bytes data = std::move(w).take();
  data.pop_back();
  net::Reader r(data);
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Codec, BytesLengthPrefixBoundsChecked) {
  net::Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  const crypto::Bytes data = std::move(w).take();
  net::Reader r(data);
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(MessageBus, RequestResponseRoundTrip) {
  net::MessageBus bus;
  bus.register_endpoint("echo", [](const crypto::Bytes& in) {
    crypto::Bytes out = in;
    out.push_back(0xFF);
    return out;
  });
  const crypto::Bytes reply = bus.request("echo", {1, 2});
  EXPECT_EQ(reply, (crypto::Bytes{1, 2, 0xFF}));
  EXPECT_EQ(bus.requests_sent(), 1u);
  EXPECT_GT(bus.bytes_transferred(), 0u);
}

TEST(MessageBus, UnknownEndpointThrows) {
  net::MessageBus bus;
  EXPECT_THROW(bus.request("nope", {}), std::out_of_range);
}

TEST(MessageBus, DropFaultRaisesTimeout) {
  net::MessageBus bus;
  int calls = 0;
  bus.register_endpoint("svc", [&](const crypto::Bytes&) {
    ++calls;
    return crypto::Bytes{};
  });
  net::MessageBus::FaultConfig faults;
  faults.drop_probability = 1.0;  // drop everything
  faults.seed = 7;
  bus.set_faults(faults);
  EXPECT_THROW(bus.request("svc", {}), net::TimeoutError);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(bus.requests_dropped(), 1u);
}

TEST(MessageBus, DuplicateFaultInvokesHandlerTwice) {
  net::MessageBus bus;
  int calls = 0;
  bus.register_endpoint("svc", [&](const crypto::Bytes&) {
    ++calls;
    return crypto::Bytes{9};
  });
  net::MessageBus::FaultConfig faults;
  faults.duplicate_probability = 1.0;  // duplicate everything
  faults.seed = 7;
  bus.set_faults(faults);
  const crypto::Bytes reply = bus.request("svc", {});
  EXPECT_EQ(reply, crypto::Bytes{9});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(bus.requests_duplicated(), 1u);
}

TEST(MessageBus, PartialDropRateRoughlyHonored) {
  net::MessageBus bus;
  bus.register_endpoint("svc", [](const crypto::Bytes&) { return crypto::Bytes{}; });
  net::MessageBus::FaultConfig faults;
  faults.drop_probability = 0.3;
  faults.seed = 11;
  bus.set_faults(faults);
  int dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    try {
      bus.request("svc", {});
    } catch (const net::TimeoutError&) {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 200);
  EXPECT_LT(dropped, 400);
}

}  // namespace
}  // namespace alidrone
