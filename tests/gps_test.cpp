#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gps/driver.h"
#include "gps/fix.h"
#include "gps/receiver_sim.h"
#include "gps/trace.h"
#include "geo/units.h"
#include "nmea/vtg.h"

namespace alidrone::gps {
namespace {

constexpr double kT0 = 1528395200.0;  // 2018-06-07 18:13:20 UTC

GpsFix fix_at(geo::GeoPoint p, double t, double speed = 10.0) {
  GpsFix f;
  f.position = p;
  f.unix_time = t;
  f.speed_mps = speed;
  return f;
}

PositionSource stationary(geo::GeoPoint p) {
  return [p](double t) { return fix_at(p, t, 0.0); };
}

TEST(CivilTime, EpochAndKnownDate) {
  const CivilTime epoch = civil_from_unix(0.0);
  EXPECT_EQ(epoch.year, 1970);
  EXPECT_EQ(epoch.month, 1);
  EXPECT_EQ(epoch.day, 1);
  EXPECT_EQ(epoch.hour, 0);

  const CivilTime t = civil_from_unix(kT0);
  EXPECT_EQ(t.year, 2018);
  EXPECT_EQ(t.month, 6);
  EXPECT_EQ(t.day, 7);
  EXPECT_EQ(t.hour, 18);
  EXPECT_EQ(t.minute, 13);
  EXPECT_NEAR(t.second, 20.0, 1e-9);
}

TEST(ReceiverSim, EmitsAtConfiguredRate) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 5.0;
  config.start_time = kT0;
  GpsReceiverSim sim(config, stationary({40.0, -88.0}));

  const auto sentences = sim.advance_to(kT0 + 2.0);
  EXPECT_EQ(sentences.size(), 11u);  // t0, t0+0.2, ..., t0+2.0 inclusive
  for (const std::string& s : sentences) {
    EXPECT_EQ(s.substr(0, 6), "$GPRMC");
  }
}

TEST(ReceiverSim, RejectsOutOfRangeRate) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 10.0;
  EXPECT_THROW(GpsReceiverSim(config, stationary({0, 0})), std::invalid_argument);
  config.update_rate_hz = 0.5;
  EXPECT_THROW(GpsReceiverSim(config, stationary({0, 0})), std::invalid_argument);
}

TEST(ReceiverSim, SentencesParseBackToSourcePositions) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 1.0;
  config.start_time = kT0;
  GpsReceiverSim sim(config, stationary({40.1164, -88.2434}));

  GpsDriver driver;
  for (const std::string& s : sim.advance_to(kT0 + 5.0)) driver.feed(s);

  const auto fix = driver.get_gps();
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->position.lat_deg, 40.1164, 1e-5);
  EXPECT_NEAR(fix->position.lon_deg, -88.2434, 1e-5);
  EXPECT_NEAR(fix->unix_time, kT0 + 5.0, 1e-3);
  EXPECT_EQ(driver.sequence(), 6u);
}

TEST(ReceiverSim, ScheduledMissSkipsExactlyOneUpdate) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 5.0;
  config.start_time = kT0;
  config.scheduled_miss_times = {kT0 + 1.0};
  GpsReceiverSim sim(config, stationary({40.0, -88.0}));

  const auto sentences = sim.advance_to(kT0 + 2.0);
  EXPECT_EQ(sentences.size(), 10u);  // 11 scheduled - 1 missed
  EXPECT_EQ(sim.missed_updates(), 1);
}

TEST(ReceiverSim, RandomMissesAreDeterministicPerSeed) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 5.0;
  config.start_time = kT0;
  config.miss_probability = 0.2;
  config.seed = 42;

  GpsReceiverSim a(config, stationary({40.0, -88.0}));
  GpsReceiverSim b(config, stationary({40.0, -88.0}));
  EXPECT_EQ(a.advance_to(kT0 + 30.0).size(), b.advance_to(kT0 + 30.0).size());
  EXPECT_EQ(a.missed_updates(), b.missed_updates());
  EXPECT_GT(a.missed_updates(), 0);
}

TEST(ReceiverSim, NoiseStaysBounded) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 5.0;
  config.start_time = kT0;
  config.noise_std_m = 2.0;
  GpsReceiverSim sim(config, stationary({40.0, -88.0}));

  GpsDriver driver;
  double max_offset = 0.0;
  const geo::LocalFrame frame({40.0, -88.0});
  for (const std::string& s : sim.advance_to(kT0 + 60.0)) {
    driver.feed(s);
    const auto fix = driver.get_gps();
    ASSERT_TRUE(fix.has_value());
    max_offset = std::max(max_offset, frame.to_local(fix->position).norm());
  }
  EXPECT_GT(max_offset, 0.1);   // noise present
  EXPECT_LT(max_offset, 20.0);  // but within ~10 sigma
}

TEST(ReceiverSim, GgaEmissionCarriesAltitude) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 1.0;
  config.start_time = kT0;
  config.emit_gga = true;
  GpsReceiverSim sim(config, [](double t) {
    GpsFix f = fix_at({40.0, -88.0}, t);
    f.altitude_m = 120.5;
    return f;
  });

  GpsDriver driver;
  for (const std::string& s : sim.advance_to(kT0 + 1.0)) driver.feed(s);
  const auto fix = driver.get_gps();
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->altitude_m, 120.5, 0.1);
}

TEST(ReceiverSim, VtgEmissionParses) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 1.0;
  config.start_time = kT0;
  config.emit_vtg = true;
  GpsReceiverSim sim(config, [](double t) {
    GpsFix f = fix_at({40.0, -88.0}, t, 12.0);
    f.course_deg = 359.99;  // wraps to 0.0 in the emitted sentence
    return f;
  });

  const auto sentences = sim.advance_to(kT0);
  ASSERT_EQ(sentences.size(), 2u);  // RMC + VTG
  const auto vtg = alidrone::nmea::parse_vtg(sentences[1]);
  ASSERT_TRUE(vtg.has_value());
  EXPECT_NEAR(vtg->course_true_deg, 0.0, 1e-9);
  EXPECT_NEAR(geo::knots_to_mps(vtg->speed_knots), 12.0, 0.05);
}

TEST(Driver, VtgRefreshesSpeedAndCourse) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 1.0;
  config.start_time = kT0;
  GpsReceiverSim sim(config, stationary({40.0, -88.0}));
  GpsDriver driver;
  for (const std::string& s : sim.advance_to(kT0)) driver.feed(s);
  ASSERT_TRUE(driver.get_gps().has_value());
  const std::uint64_t seq = driver.sequence();

  alidrone::nmea::VtgSentence vtg;
  vtg.course_true_deg = 123.0;
  vtg.speed_knots = 20.0;
  vtg.speed_kmh = 37.0;
  driver.feed(alidrone::nmea::emit_vtg(vtg));

  const auto fix = driver.get_gps();
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->course_deg, 123.0, 1e-9);
  EXPECT_NEAR(fix->speed_mps, geo::knots_to_mps(20.0), 1e-9);
  // A VTG is not a new position fix: the sequence must not advance.
  EXPECT_EQ(driver.sequence(), seq);
}

TEST(Driver, CountsRejectedSentences) {
  GpsDriver driver;
  driver.feed("garbage line");
  driver.feed("$GPRMC,badframe*00");
  EXPECT_EQ(driver.rejected_sentences(), 2u);
  EXPECT_EQ(driver.accepted_sentences(), 0u);
  EXPECT_FALSE(driver.get_gps().has_value());
}

TEST(Driver, FeedBytesSplitsOnNewlines) {
  GpsReceiverSim::Config config;
  config.update_rate_hz = 1.0;
  config.start_time = kT0;
  GpsReceiverSim sim(config, stationary({40.0, -88.0}));

  std::string stream;
  for (const std::string& s : sim.advance_to(kT0 + 3.0)) stream += s;

  GpsDriver driver;
  // Feed in awkward chunks to exercise the partial-line buffer.
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    driver.feed_bytes(stream.substr(i, 7));
  }
  EXPECT_EQ(driver.sequence(), 4u);
}

TEST(Trace, AppendEnforcesTimeOrder) {
  GpsTrace trace;
  trace.append(fix_at({40.0, -88.0}, kT0));
  trace.append(fix_at({40.001, -88.0}, kT0 + 1.0));
  EXPECT_THROW(trace.append(fix_at({40.0, -88.0}, kT0 - 1.0)), std::invalid_argument);
}

TEST(Trace, InterpolatesLinearly) {
  GpsTrace trace;
  trace.append(fix_at({40.0, -88.0}, kT0));
  trace.append(fix_at({40.01, -88.0}, kT0 + 10.0));

  const GpsFix mid = trace.at(kT0 + 5.0);
  EXPECT_NEAR(mid.position.lat_deg, 40.005, 1e-9);
  EXPECT_DOUBLE_EQ(mid.unix_time, kT0 + 5.0);

  // Clamping at the ends.
  EXPECT_DOUBLE_EQ(trace.at(kT0 - 100.0).position.lat_deg, 40.0);
  EXPECT_DOUBLE_EQ(trace.at(kT0 + 100.0).position.lat_deg, 40.01);
}

TEST(Trace, PathLengthMatchesGeodesy) {
  GpsTrace trace;
  trace.append(fix_at({40.0, -88.0}, kT0));
  trace.append(fix_at({40.01, -88.0}, kT0 + 10.0));
  // One hundredth of a degree of latitude is ~1112 m.
  EXPECT_NEAR(trace.path_length_m(), 1112.0, 1.0);
}

TEST(Trace, CsvRoundTrip) {
  GpsTrace trace;
  for (int i = 0; i < 20; ++i) {
    GpsFix f = fix_at({40.0 + i * 1e-4, -88.0 - i * 2e-4}, kT0 + i * 0.5, 9.5);
    f.altitude_m = 100.0 + i;
    f.course_deg = 123.4;
    trace.append(f);
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "alidrone_trace_test.csv").string();
  trace.save_csv(path);
  const GpsTrace loaded = GpsTrace::load_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(loaded.fixes()[i].position.lat_deg, trace.fixes()[i].position.lat_deg, 1e-10);
    EXPECT_NEAR(loaded.fixes()[i].unix_time, trace.fixes()[i].unix_time, 1e-6);
    EXPECT_NEAR(loaded.fixes()[i].altitude_m, trace.fixes()[i].altitude_m, 1e-9);
  }
}

TEST(Trace, LoadRejectsMalformedCsv) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "alidrone_bad_trace.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("unix_time,lat_deg,lon_deg,alt_m,speed_mps,course_deg\n", f);
    std::fputs("not,a,valid,row,at,all\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(GpsTrace::load_csv(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(GpsTrace::load_csv("/nonexistent/file.csv"), std::runtime_error);
}

TEST(Trace, AsPositionSourceMatchesAt) {
  GpsTrace trace;
  trace.append(fix_at({40.0, -88.0}, kT0));
  trace.append(fix_at({40.002, -88.001}, kT0 + 4.0));
  const PositionSource source = trace.as_position_source();
  const GpsFix a = source(kT0 + 1.7);
  const GpsFix b = trace.at(kT0 + 1.7);
  EXPECT_DOUBLE_EQ(a.position.lat_deg, b.position.lat_deg);
  EXPECT_DOUBLE_EQ(a.position.lon_deg, b.position.lon_deg);
}

}  // namespace
}  // namespace alidrone::gps
