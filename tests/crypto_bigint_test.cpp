#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "crypto/bigint.h"
#include "crypto/random.h"

namespace alidrone::crypto {
namespace {

TEST(BigInt, DefaultIsZero) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_decimal_string(), "0");
}

TEST(BigInt, SmallValueRoundTrip) {
  EXPECT_EQ(BigInt(42).to_decimal_string(), "42");
  EXPECT_EQ(BigInt(-42).to_decimal_string(), "-42");
  EXPECT_EQ(BigInt(1000000007).to_decimal_string(), "1000000007");
}

TEST(BigInt, Int64MinHandledCorrectly) {
  const BigInt v(INT64_MIN);
  EXPECT_EQ(v.to_decimal_string(), "-9223372036854775808");
  EXPECT_EQ((-v).to_decimal_string(), "9223372036854775808");
}

TEST(BigInt, ParseDecimalAndHex) {
  EXPECT_EQ(BigInt::from_string("123456789012345678901234567890").to_decimal_string(),
            "123456789012345678901234567890");
  EXPECT_EQ(BigInt::from_string("0xff"), BigInt(255));
  EXPECT_EQ(BigInt::from_string("-0x100"), BigInt(-256));
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("0x"), std::invalid_argument);
}

TEST(BigInt, HexStringRoundTrip) {
  const BigInt v = BigInt::from_string("0xdeadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex_string(), "0xdeadbeefcafebabe0123456789");
  EXPECT_EQ(BigInt::from_string(v.to_hex_string()), v);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("0xffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).to_hex_string(), "0x10000000000000000");
}

TEST(BigInt, SignedAddSub) {
  const BigInt a(100);
  const BigInt b(-250);
  EXPECT_EQ(a + b, BigInt(-150));
  EXPECT_EQ(a - b, BigInt(350));
  EXPECT_EQ(b - a, BigInt(-350));
  EXPECT_EQ(a - a, BigInt(0));
}

TEST(BigInt, MultiplicationLargeValues) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  const BigInt b = BigInt::from_string("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_decimal_string(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigInt, MultiplicationSigns) {
  EXPECT_EQ(BigInt(-3) * BigInt(7), BigInt(-21));
  EXPECT_EQ(BigInt(-3) * BigInt(-7), BigInt(21));
  EXPECT_EQ(BigInt(0) * BigInt(-7), BigInt(0));
  EXPECT_FALSE((BigInt(0) * BigInt(-7)).is_negative());
}

TEST(BigInt, DivisionBasic) {
  EXPECT_EQ(BigInt(100) / BigInt(7), BigInt(14));
  EXPECT_EQ(BigInt(100) % BigInt(7), BigInt(2));
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
}

TEST(BigInt, DivisionTruncatedSignRules) {
  // C-style truncated division: remainder takes the dividend's sign.
  EXPECT_EQ(BigInt(-100) / BigInt(7), BigInt(-14));
  EXPECT_EQ(BigInt(-100) % BigInt(7), BigInt(-2));
  EXPECT_EQ(BigInt(100) / BigInt(-7), BigInt(-14));
  EXPECT_EQ(BigInt(100) % BigInt(-7), BigInt(2));
}

TEST(BigInt, DivisionMultiLimbKnuthD) {
  const BigInt a = BigInt::from_string(
      "340282366920938463463374607431768211455123456789");
  const BigInt b = BigInt::from_string("18446744073709551629");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_TRUE(dm.remainder < b);
  EXPECT_FALSE(dm.remainder.is_negative());
}

TEST(BigInt, DivisionAddBackCase) {
  // Exercise the rare "add back" branch of Knuth D: divisor with a
  // maximal leading limb pattern.
  const BigInt b = (BigInt(1) << 96) - BigInt(1);
  const BigInt a = (b * BigInt::from_string("0xffffffffffffffff")) + (b - BigInt(2));
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_TRUE(dm.remainder < b);
}

TEST(BigInt, ShiftsRoundTrip) {
  const BigInt v = BigInt::from_string("0x123456789abcdef");
  EXPECT_EQ((v << 64) >> 64, v);
  EXPECT_EQ((v << 13) >> 13, v);
  EXPECT_EQ(v >> 200, BigInt(0));
  EXPECT_EQ(BigInt(1) << 32, BigInt::from_string("0x100000000"));
}

TEST(BigInt, ModNonNegativeResidue) {
  EXPECT_EQ(BigInt(-1).mod(BigInt(5)), BigInt(4));
  EXPECT_EQ(BigInt(-10).mod(BigInt(5)), BigInt(0));
  EXPECT_EQ(BigInt(13).mod(BigInt(5)), BigInt(3));
  EXPECT_THROW(BigInt(1).mod(BigInt(0)), std::domain_error);
  EXPECT_THROW(BigInt(1).mod(BigInt(-5)), std::domain_error);
}

TEST(BigInt, ModU32) {
  EXPECT_EQ(BigInt::from_string("123456789012345678901234567890").mod_u32(97u),
            BigInt::from_string("123456789012345678901234567890").mod(BigInt(97)).mod_u32(100000u));
  EXPECT_EQ(BigInt(100).mod_u32(7u), 2u);
  EXPECT_THROW(BigInt(1).mod_u32(0u), std::domain_error);
}

TEST(BigInt, ModPowSmallKnownValues) {
  EXPECT_EQ(BigInt(2).mod_pow(BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(BigInt(3).mod_pow(BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(BigInt(5).mod_pow(BigInt(117), BigInt(1)), BigInt(0));
}

TEST(BigInt, ModPowFermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  const BigInt p = BigInt::from_string("1000000007");
  for (std::int64_t a : {2, 3, 65537, 999999999}) {
    EXPECT_EQ(BigInt(a).mod_pow(p - BigInt(1), p), BigInt(1)) << a;
  }
}

TEST(BigInt, ModPowMatchesRepeatedMultiplication) {
  const BigInt m = BigInt::from_string("0xfffffffb");
  BigInt expected(1);
  const BigInt base(12345);
  for (int i = 0; i < 77; ++i) expected = (expected * base).mod(m);
  EXPECT_EQ(base.mod_pow(BigInt(77), m), expected);
}

TEST(BigInt, GcdAndInverse) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(0)), BigInt(17));
  EXPECT_EQ(BigInt::gcd(BigInt(-48), BigInt(36)), BigInt(12));

  const BigInt inv = BigInt(3).mod_inverse(BigInt(11));
  EXPECT_EQ(inv, BigInt(4));
  EXPECT_THROW(BigInt(4).mod_inverse(BigInt(8)), std::domain_error);
}

TEST(BigInt, ModInverseLarge) {
  const BigInt m = BigInt::from_string("0xffffffffffffffffffffffffffffff61");
  const BigInt a = BigInt::from_string("0x123456789abcdef0123456789abcdef");
  const BigInt inv = a.mod_inverse(m);
  EXPECT_EQ((a * inv).mod(m), BigInt(1));
}

TEST(BigInt, BytesRoundTripBigEndian) {
  const Bytes be{0x01, 0x02, 0x03, 0x04, 0x05};
  const BigInt v = BigInt::from_bytes(be);
  EXPECT_EQ(v.to_hex_string(), "0x102030405");
  EXPECT_EQ(v.to_bytes(), be);
}

TEST(BigInt, ToBytesPadding) {
  const BigInt v(0xABCD);
  const Bytes padded = v.to_bytes(4);
  EXPECT_EQ(padded, (Bytes{0x00, 0x00, 0xAB, 0xCD}));
  EXPECT_THROW(v.to_bytes(1), std::length_error);
}

TEST(BigInt, FromBytesLeadingZerosIgnored) {
  const Bytes be{0x00, 0x00, 0x12, 0x34};
  EXPECT_EQ(BigInt::from_bytes(be), BigInt(0x1234));
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_string("0x8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
}

TEST(BigInt, CompareTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(100), BigInt(99));
  EXPECT_LE(BigInt(7), BigInt(7));
}

// Property sweeps over random operands: algebraic laws that must hold for
// any correct big-integer implementation.
class BigIntAlgebra : public ::testing::TestWithParam<int> {
 protected:
  DeterministicRandom rng_{static_cast<std::uint64_t>(GetParam()) * 7919u + 3u};

  BigInt random_value(std::size_t max_bits) {
    const std::size_t bits = 1 + rng_.uniform(max_bits);
    BigInt v = rng_.random_bits(bits);
    if (rng_.uniform(2) == 1) v = -v;
    return v;
  }
};

TEST_P(BigIntAlgebra, AddCommutesAndAssociates) {
  const BigInt a = random_value(512);
  const BigInt b = random_value(512);
  const BigInt c = random_value(512);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a + BigInt(0), a);
  EXPECT_EQ(a - a, BigInt(0));
}

TEST_P(BigIntAlgebra, MulDistributesOverAdd) {
  const BigInt a = random_value(384);
  const BigInt b = random_value(384);
  const BigInt c = random_value(384);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * BigInt(1), a);
}

TEST_P(BigIntAlgebra, DivModReconstructsDividend) {
  const BigInt a = random_value(768);
  BigInt b = random_value(320);
  if (b.is_zero()) b = BigInt(1);
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder.compare_magnitude(b), 0);
}

TEST_P(BigIntAlgebra, ShiftEquivalentToMulByPowerOfTwo) {
  const BigInt a = random_value(300);
  const std::size_t k = rng_.uniform(130);
  EXPECT_EQ(a << k, a * (BigInt(1) << k));
}

TEST_P(BigIntAlgebra, BytesRoundTrip) {
  BigInt a = random_value(520);
  if (a.is_negative()) a = -a;
  EXPECT_EQ(BigInt::from_bytes(a.to_bytes()), a);
}

TEST_P(BigIntAlgebra, ModPowMultiplicative) {
  // (a*b)^e = a^e * b^e (mod m)
  BigInt m = random_value(160);
  if (m.is_negative()) m = -m;
  m += BigInt(2);
  const BigInt a = random_value(200);
  const BigInt b = random_value(200);
  const BigInt e(65537);
  const BigInt lhs = (a * b).mod(m).mod_pow(e, m);
  const BigInt rhs = (a.mod_pow(e, m) * b.mod_pow(e, m)).mod(m);
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntAlgebra, ::testing::Range(0, 24));

// Large operands cross the Karatsuba threshold (32 limbs); verify the
// recursive path against division (exact inverse) and distributivity.
class KaratsubaProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KaratsubaProperty, ProductConsistentWithDivision) {
  const std::size_t bits = GetParam();
  DeterministicRandom rng(bits);
  const BigInt a = rng.random_bits(bits);
  const BigInt b = rng.random_bits(bits / 2 + 17);
  const BigInt p = a * b;
  EXPECT_EQ(p / a, b);
  EXPECT_EQ(p % a, BigInt(0));
  EXPECT_EQ(p / b, a);
  // Distributivity across the threshold boundary.
  const BigInt c = rng.random_bits(64);
  EXPECT_EQ((a + c) * b, p + c * b);
}

TEST_P(KaratsubaProperty, AsymmetricOperandSizes) {
  const std::size_t bits = GetParam();
  DeterministicRandom rng(bits + 999);
  const BigInt a = rng.random_bits(bits);
  const BigInt b = rng.random_bits(1100);  // just above threshold
  const BigInt p = a * b;
  EXPECT_EQ(p / b, a);
  EXPECT_EQ(p % b, BigInt(0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KaratsubaProperty,
                         ::testing::Values(1024, 1536, 2048, 4096, 8192));

}  // namespace
}  // namespace alidrone::crypto
