// Audit log: event recording through the Auditor, filtered queries, and
// file-sink replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

TEST(AuditEvent, LineRoundTrip) {
  AuditEvent event;
  event.time = kT0 + 12.5;
  event.type = AuditEventType::kPoaVerdict;
  event.subject = "drone-3";
  event.outcome_ok = true;
  event.detail = "sufficient alibi";

  const auto parsed = AuditEvent::from_line(event.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->time, event.time);
  EXPECT_EQ(parsed->type, event.type);
  EXPECT_EQ(parsed->subject, "drone-3");
  EXPECT_TRUE(parsed->outcome_ok);
  EXPECT_EQ(parsed->detail, "sufficient alibi");
}

TEST(AuditEvent, EscapesDelimitersAndNewlines) {
  AuditEvent event;
  event.type = AuditEventType::kAccusation;
  event.subject = "zone|weird\\name";
  event.detail = "line1\nline2 | with pipe";
  const std::string line = event.to_line();
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const auto parsed = AuditEvent::from_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subject, event.subject);
  EXPECT_EQ(parsed->detail, event.detail);
}

TEST(AuditEvent, RejectsMalformedLines) {
  EXPECT_FALSE(AuditEvent::from_line("").has_value());
  EXPECT_FALSE(AuditEvent::from_line("1|2|3").has_value());
  EXPECT_FALSE(AuditEvent::from_line("abc|poa-verdict|s|1|d").has_value());
  EXPECT_FALSE(AuditEvent::from_line("1.0|nope|s|1|d").has_value());
  EXPECT_FALSE(AuditEvent::from_line("1.0|poa-verdict|s|2|d").has_value());
}

TEST(AuditLog, FilteredQueries) {
  AuditLog log;
  log.record({10.0, AuditEventType::kDroneRegistered, "drone-1", "", true});
  log.record({20.0, AuditEventType::kPoaVerdict, "drone-1", "ok", true});
  log.record({30.0, AuditEventType::kPoaVerdict, "drone-2", "bad", false});
  log.record({40.0, AuditEventType::kAccusation, "drone-1", "no alibi", false});

  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.by_type(AuditEventType::kPoaVerdict).size(), 2u);
  EXPECT_EQ(log.by_subject("drone-1").size(), 3u);
  EXPECT_EQ(log.in_window(15.0, 35.0).size(), 2u);
}

TEST(AuditLog, FileSinkReplays) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("alidrone_audit_" + std::to_string(::getpid()) + ".log");
  std::filesystem::remove(path);
  {
    AuditLog log(path);
    log.record({1.0, AuditEventType::kZoneRegistered, "zone-1", "house", true});
    log.record({2.0, AuditEventType::kZoneQuery, "drone-1", "5 zones", true});
  }
  {
    // Corrupt line in the middle must be skipped, not fatal.
    std::ofstream append(path, std::ios::app);
    append << "garbage line\n";
  }

  std::size_t corrupt = 0;
  const AuditLog replayed = AuditLog::replay(path, &corrupt);
  EXPECT_EQ(replayed.size(), 2u);
  EXPECT_EQ(corrupt, 1u);
  EXPECT_EQ(replayed.events()[1].detail, "5 zones");
  std::filesystem::remove(path);
}

TEST(AuditLog, AuditorRecordsFullProtocolRun) {
  crypto::DeterministicRandom auditor_rng("audit-auditor");
  crypto::DeterministicRandom owner_rng("audit-owner");
  crypto::DeterministicRandom operator_rng("audit-operator");

  Auditor auditor(kTestKeyBits, auditor_rng);
  const auto log = std::make_shared<AuditLog>();
  auditor.attach_audit_log(log);
  net::MessageBus bus;
  auditor.bind(bus);

  ZoneOwner owner(kTestKeyBits, owner_rng);
  tee::DroneTee::Config config;
  config.key_bits = kTestKeyBits;
  config.manufacturing_seed = "audit-device";
  tee::DroneTee tee(config);
  DroneClient client(tee, kTestKeyBits, operator_rng);

  ASSERT_TRUE(client.register_with_auditor(bus));
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  const ZoneId zone_id = owner.register_zone(bus, scenario.zones[0], "airport");
  client.query_zones(bus, {{39.9, -88.4}, {40.2, -88.1}});

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                         geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig flight;
  flight.end_time = scenario.route.start_time() + 60.0;
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const ProofOfAlibi poa = client.fly(receiver, policy, flight);
  client.submit_poa(bus, poa);

  auditor.handle_accusation(owner.make_accusation(zone_id, client.id(), kT0 + 30.0));

  // One event of each type, in order.
  ASSERT_EQ(log->size(), 5u);
  EXPECT_EQ(log->events()[0].type, AuditEventType::kDroneRegistered);
  EXPECT_EQ(log->events()[1].type, AuditEventType::kZoneRegistered);
  EXPECT_EQ(log->events()[2].type, AuditEventType::kZoneQuery);
  EXPECT_EQ(log->events()[3].type, AuditEventType::kPoaVerdict);
  EXPECT_TRUE(log->events()[3].outcome_ok);  // compliant flight
  EXPECT_EQ(log->events()[4].type, AuditEventType::kAccusation);
  EXPECT_TRUE(log->events()[4].outcome_ok);  // alibi held
  // Registration, query, verdict and accusation all reference the drone.
  EXPECT_EQ(log->by_subject(client.id()).size(), 4u);
}

}  // namespace
}  // namespace alidrone::core
