#include <gtest/gtest.h>

#include <algorithm>

#include "core/zone_index.h"
#include "crypto/random.h"

namespace alidrone::core {
namespace {

TEST(ZoneIndex, InsertFindErase) {
  ZoneIndex index;
  EXPECT_EQ(index.size(), 0u);
  index.insert("z1", {{40.0, -88.0}, 50.0});
  EXPECT_EQ(index.size(), 1u);
  ASSERT_NE(index.find("z1"), nullptr);
  EXPECT_DOUBLE_EQ(index.find("z1")->radius_m, 50.0);
  EXPECT_EQ(index.find("z2"), nullptr);

  EXPECT_TRUE(index.erase("z1"));
  EXPECT_FALSE(index.erase("z1"));
  EXPECT_EQ(index.size(), 0u);
}

TEST(ZoneIndex, InsertReplacesExistingId) {
  ZoneIndex index;
  index.insert("z1", {{40.0, -88.0}, 50.0});
  index.insert("z1", {{41.0, -89.0}, 70.0});  // moves to a different cell
  EXPECT_EQ(index.size(), 1u);
  EXPECT_DOUBLE_EQ(index.find("z1")->radius_m, 70.0);
  // The old cell must not still report it.
  const auto hits = index.query_rect({{39.9, -88.1}, {40.1, -87.9}});
  EXPECT_TRUE(hits.empty());
}

TEST(ZoneIndex, RejectsBadCellSize) {
  EXPECT_THROW(ZoneIndex(0.0), std::invalid_argument);
  EXPECT_THROW(ZoneIndex(-1.0), std::invalid_argument);
}

TEST(ZoneIndex, QueryRectMatchesLinearScan) {
  crypto::DeterministicRandom rng("zone-index");
  ZoneIndex index;
  std::vector<std::pair<ZoneId, geo::GeoZone>> zones;
  for (int i = 0; i < 500; ++i) {
    const geo::GeoZone z{{39.0 + 2.0 * rng.uniform_double(),
                          -89.0 + 2.0 * rng.uniform_double()},
                         10.0 + 40.0 * rng.uniform_double()};
    const ZoneId id = "zone-" + std::to_string(i);
    zones.emplace_back(id, z);
    index.insert(id, z);
  }

  for (int q = 0; q < 30; ++q) {
    const QueryRect rect{{39.0 + 2.0 * rng.uniform_double(),
                          -89.0 + 2.0 * rng.uniform_double()},
                         {39.0 + 2.0 * rng.uniform_double(),
                          -89.0 + 2.0 * rng.uniform_double()}};
    std::vector<ZoneId> expected;
    for (const auto& [id, z] : zones) {
      if (rect.contains(z.center)) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(index.query_rect(rect), expected) << "query " << q;
  }
}

TEST(ZoneIndex, QueryRectBoundaryInclusive) {
  ZoneIndex index;
  index.insert("z", {{40.0, -88.0}, 10.0});
  EXPECT_EQ(index.query_rect({{40.0, -88.0}, {41.0, -87.0}}).size(), 1u);
  EXPECT_EQ(index.query_rect({{39.0, -89.0}, {40.0, -88.0}}).size(), 1u);
}

TEST(ZoneIndex, NearestEmptyIsNullopt) {
  ZoneIndex index;
  EXPECT_FALSE(index.nearest({40.0, -88.0}).has_value());
}

TEST(ZoneIndex, NearestMatchesLinearScan) {
  crypto::DeterministicRandom rng("zone-nearest");
  ZoneIndex index;
  std::vector<std::pair<ZoneId, geo::GeoZone>> zones;
  for (int i = 0; i < 300; ++i) {
    const geo::GeoZone z{{40.0 + 0.5 * rng.uniform_double(),
                          -88.5 + 0.5 * rng.uniform_double()},
                         5.0 + 20.0 * rng.uniform_double()};
    const ZoneId id = "zone-" + std::to_string(i);
    zones.emplace_back(id, z);
    index.insert(id, z);
  }

  for (int q = 0; q < 20; ++q) {
    const geo::GeoPoint p{40.0 + 0.5 * rng.uniform_double(),
                          -88.5 + 0.5 * rng.uniform_double()};
    double best = 1e18;
    for (const auto& [id, z] : zones) {
      best = std::min(best, geo::haversine_distance(p, z.center) - z.radius_m);
    }
    const auto nearest = index.nearest(p);
    ASSERT_TRUE(nearest.has_value());
    EXPECT_NEAR(nearest->boundary_distance_m, best, 1e-6) << "query " << q;
  }
}

TEST(ZoneIndex, NearestFindsFarawayZone) {
  // One zone several cells away: the ring expansion must reach it.
  ZoneIndex index(0.05);
  index.insert("far", {{41.0, -88.0}, 100.0});
  const auto nearest = index.nearest({40.0, -88.0});
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->id, "far");
  EXPECT_NEAR(nearest->boundary_distance_m, 111195.0 - 100.0, 200.0);
}

}  // namespace
}  // namespace alidrone::core
