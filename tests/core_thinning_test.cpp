// Offline PoA thinning: the minimal-witness extraction that mirrors
// adaptive sampling on the verification side.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/flight.h"
#include "core/sampler.h"
#include "core/thinning.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
const geo::GeoPoint kAnchor{40.1100, -88.2200};

gps::GpsFix make_fix(double east_m, double north_m, double t) {
  const geo::LocalFrame frame(kAnchor);
  gps::GpsFix f;
  f.position = frame.to_geo({east_m, north_m});
  f.unix_time = t;
  return f;
}

TEST(Thinning, EmptyAndSingleSample) {
  EXPECT_TRUE(thin_samples({}, {}, geo::kFaaMaxSpeedMps).kept_indices.empty());
  const auto single =
      thin_samples({make_fix(0, 0, kT0)}, {}, geo::kFaaMaxSpeedMps);
  EXPECT_EQ(single.kept_indices, (std::vector<std::size_t>{0}));
}

TEST(Thinning, NoZonesKeepsOnlyEndpoints) {
  std::vector<gps::GpsFix> samples;
  for (int i = 0; i < 50; ++i) samples.push_back(make_fix(i * 2.0, 0, kT0 + i * 0.2));
  const ThinningResult result = thin_samples(samples, {}, geo::kFaaMaxSpeedMps);
  EXPECT_EQ(result.kept_indices, (std::vector<std::size_t>{0, 49}));
  EXPECT_TRUE(result.output_sufficient);
}

TEST(Thinning, KeptSubsetStaysSufficientNearZone) {
  const geo::LocalFrame frame(kAnchor);
  const geo::GeoZone zone{frame.to_geo({500, 40}), 6.1};
  // A dense 5 Hz trace driving past the zone.
  std::vector<gps::GpsFix> samples;
  for (int i = 0; i <= 500; ++i) {
    samples.push_back(make_fix(i * 2.0, 0, kT0 + i * 0.2));
  }
  const ThinningResult result = thin_samples(samples, {zone}, geo::kFaaMaxSpeedMps);
  EXPECT_TRUE(result.input_sufficient);
  EXPECT_TRUE(result.output_sufficient);
  EXPECT_LT(result.kept_indices.size(), samples.size() / 4);
  // Endpoints preserved.
  EXPECT_EQ(result.kept_indices.front(), 0u);
  EXPECT_EQ(result.kept_indices.back(), samples.size() - 1);
  // Kept indices strictly increasing.
  for (std::size_t i = 1; i < result.kept_indices.size(); ++i) {
    EXPECT_LT(result.kept_indices[i - 1], result.kept_indices[i]);
  }
}

TEST(Thinning, InsufficientTraceKeepsTheEvidence) {
  const geo::LocalFrame frame(kAnchor);
  const geo::GeoZone zone{frame.to_geo({50, 10}), 6.1};
  // A huge gap right next to the zone: insufficient pair.
  const std::vector<gps::GpsFix> samples{
      make_fix(0, 0, kT0), make_fix(50, 0, kT0 + 1.0),
      make_fix(50, 0, kT0 + 30.0),  // 29 s hole at 4 m from the zone
      make_fix(100, 0, kT0 + 31.0)};
  const ThinningResult result = thin_samples(samples, {zone}, geo::kFaaMaxSpeedMps);
  EXPECT_FALSE(result.input_sufficient);
  EXPECT_FALSE(result.output_sufficient);  // the violation survives thinning
}

TEST(Thinning, FixedRatePoaShrinksTowardAdaptiveSize) {
  // Fly the residential scenario twice: 5 Hz fixed and adaptive. Thinning
  // the fixed-rate PoA should land near (or below) the adaptive count —
  // they run the same argmax, online vs offline.
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);

  const auto fly = [&](bool adaptive) {
    tee::DroneTee::Config config;
    config.key_bits = 512;
    config.manufacturing_seed = "thinning-device";
    tee::DroneTee tee(config);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
    std::unique_ptr<SamplingPolicy> policy;
    if (adaptive) {
      policy = std::make_unique<AdaptiveSampler>(
          scenario.frame, scenario.local_zones(), geo::kFaaMaxSpeedMps, 5.0);
    } else {
      policy = std::make_unique<FixedRateSampler>(5.0, rc.start_time);
    }
    FlightConfig flight;
    flight.end_time = scenario.route.end_time();
    flight.frame = scenario.frame;
    flight.local_zones = scenario.local_zones();
    ProofOfAlibi poa;
    poa.drone_id = "drone-1";
    poa.samples = run_flight(tee, receiver, *policy, flight).poa_samples;
    return poa;
  };

  const ProofOfAlibi fixed = fly(false);
  const ProofOfAlibi adaptive = fly(true);

  const ProofOfAlibi thinned = thin_poa(fixed, scenario.zones, geo::kFaaMaxSpeedMps);
  EXPECT_LT(thinned.samples.size(), fixed.samples.size() / 2);
  EXPECT_LE(thinned.samples.size(), adaptive.samples.size() + 20);

  // Thinned PoA remains fully verifiable: same signed bytes, subset only.
  std::vector<gps::GpsFix> fixes;
  for (const SignedSample& s : thinned.samples) {
    const auto f = s.fix();
    ASSERT_TRUE(f.has_value());
    fixes.push_back(*f);
  }
  EXPECT_TRUE(
      check_sufficiency(fixes, scenario.zones, geo::kFaaMaxSpeedMps).sufficient);
}

TEST(Thinning, AuditorRetainsThinnedPoaWhenConfigured) {
  ProtocolParams params;
  params.thin_before_retention = true;
  crypto::DeterministicRandom auditor_rng("thin-auditor");
  Auditor auditor(512, auditor_rng, params);

  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  crypto::DeterministicRandom owner_rng("thin-owner");
  ZoneOwner owner(512, owner_rng);
  net::MessageBus bus;
  auditor.bind(bus);
  for (const geo::GeoZone& z : scenario.zones) owner.register_zone(bus, z, "house");

  tee::DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = "thin-retention-device";
  tee::DroneTee tee(config);
  crypto::DeterministicRandom operator_rng("thin-operator");
  DroneClient client(tee, 512, operator_rng);
  ASSERT_TRUE(client.register_with_auditor(bus));

  // 5 Hz fixed-rate flight: heavily redundant.
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  FixedRateSampler policy(5.0, rc.start_time);
  FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const ProofOfAlibi poa = client.fly(receiver, policy, flight);

  const PoaVerdict verdict = auditor.verify_poa(poa, kT0 + 500);
  ASSERT_TRUE(verdict.accepted && verdict.compliant) << verdict.detail;

  // The retained (thinned) PoA still answers an accusation.
  const AccusationRequest accusation =
      owner.make_accusation("zone-11", client.id(), kT0 + 60.0);
  const AccusationResponse response = auditor.handle_accusation(accusation);
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.alibi_holds) << response.detail;
}

TEST(Thinning, NonThinnableModesReturnedUnchanged) {
  ProofOfAlibi hmac;
  hmac.mode = AuthMode::kHmacSession;
  hmac.samples = {{crypto::Bytes(32, 1), crypto::Bytes(32, 2)}};
  EXPECT_EQ(thin_poa(hmac, {}, geo::kFaaMaxSpeedMps).samples.size(), 1u);

  ProofOfAlibi encrypted;
  encrypted.mode = AuthMode::kRsaPerSample;
  encrypted.encrypted = true;
  encrypted.samples = {{crypto::Bytes(64, 1), crypto::Bytes(64, 2)}};
  EXPECT_EQ(thin_poa(encrypted, {}, geo::kFaaMaxSpeedMps).samples.size(), 1u);
}

}  // namespace
}  // namespace alidrone::core
