#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "crypto/random.h"
#include "geo/polygon.h"

namespace alidrone::geo {
namespace {

TEST(Polygon, ContainsCentroidOfConvexPolygon) {
  const Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(square.contains({5, 5}));
  EXPECT_FALSE(square.contains({15, 5}));
  EXPECT_FALSE(square.contains({-1, -1}));
}

TEST(Polygon, BoundaryCountsAsInside) {
  const Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(square.contains({0, 5}));
  EXPECT_TRUE(square.contains({10, 10}));
}

TEST(Polygon, SignedAreaOrientation) {
  const Polygon ccw({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon cw({{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  EXPECT_DOUBLE_EQ(ccw.signed_area(), 100.0);
  EXPECT_DOUBLE_EQ(cw.signed_area(), -100.0);
}

TEST(Polygon, CentroidOfSquare) {
  const Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Vec2 c = square.centroid();
  EXPECT_DOUBLE_EQ(c.x, 5.0);
  EXPECT_DOUBLE_EQ(c.y, 5.0);
}

TEST(Polygon, ConcavePolygonContainment) {
  // L-shape: the notch at top-right is outside.
  const Polygon ell({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  EXPECT_TRUE(ell.contains({2, 8}));
  EXPECT_TRUE(ell.contains({8, 2}));
  EXPECT_FALSE(ell.contains({8, 8}));
}

TEST(CircleFrom, TwoPointsDiameter) {
  const Circle c = circle_from({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(c.center.x, 5.0);
  EXPECT_DOUBLE_EQ(c.center.y, 0.0);
  EXPECT_DOUBLE_EQ(c.radius, 5.0);
}

TEST(CircleFrom, ThreePointCircumcircle) {
  // Right triangle: circumcenter at hypotenuse midpoint.
  const Circle c = circle_from({0, 0}, {6, 0}, {0, 8});
  EXPECT_NEAR(c.center.x, 3.0, 1e-12);
  EXPECT_NEAR(c.center.y, 4.0, 1e-12);
  EXPECT_NEAR(c.radius, 5.0, 1e-12);
}

TEST(CircleFrom, CollinearPointsFallBack) {
  const Circle c = circle_from({0, 0}, {5, 0}, {10, 0});
  EXPECT_NEAR(c.radius, 5.0, 1e-9);
  EXPECT_TRUE(c.contains({0, 0}));
  EXPECT_TRUE(c.contains({10, 0}));
}

TEST(SmallestEnclosingCircle, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(smallest_enclosing_circle({}).radius, 0.0);
  const Vec2 p{3, 4};
  const Circle c = smallest_enclosing_circle({&p, 1});
  EXPECT_EQ(c.center, p);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(SmallestEnclosingCircle, TwoPoints) {
  const std::vector<Vec2> pts{{0, 0}, {8, 6}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-9);
  EXPECT_NEAR(c.center.x, 4.0, 1e-9);
  EXPECT_NEAR(c.center.y, 3.0, 1e-9);
}

TEST(SmallestEnclosingCircle, SquareUsesDiagonal) {
  const std::vector<Vec2> pts{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, std::sqrt(50.0), 1e-9);
  EXPECT_NEAR(c.center.x, 5.0, 1e-9);
  EXPECT_NEAR(c.center.y, 5.0, 1e-9);
}

TEST(SmallestEnclosingCircle, InteriorPointsDoNotGrowCircle) {
  std::vector<Vec2> pts{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const Circle base = smallest_enclosing_circle(pts);
  pts.push_back({5, 5});
  pts.push_back({2, 7});
  pts.push_back({9, 1});
  const Circle grown = smallest_enclosing_circle(pts);
  EXPECT_NEAR(grown.radius, base.radius, 1e-9);
}

// Property sweep: for random point clouds the result encloses every point,
// and shrinking the radius by epsilon excludes at least one point
// (minimality witness).
class WelzlProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelzlProperty, EnclosesAllAndIsMinimal) {
  crypto::DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 3 + static_cast<int>(rng.uniform(200));
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform_double() * 1000.0 - 500.0,
                   rng.uniform_double() * 1000.0 - 500.0});
  }
  const Circle c = smallest_enclosing_circle(pts);
  double max_dist = 0.0;
  for (const Vec2 p : pts) {
    const double d = distance(p, c.center);
    EXPECT_LE(d, c.radius + 1e-6);
    max_dist = std::max(max_dist, d);
  }
  // Some point must sit (numerically) on the boundary, else c is not minimal.
  EXPECT_NEAR(max_dist, c.radius, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelzlProperty, ::testing::Range(1, 21));

// The paper's registration flow: polygon NFZ -> smallest enclosing circle
// covers every vertex (Section VII-B2).
TEST(SmallestEnclosingCircle, CoversRegularPolygonWithCircumradius) {
  std::vector<Vec2> pts;
  const double r = 75.0;
  for (int k = 0; k < 12; ++k) {
    const double a = 2.0 * std::numbers::pi * k / 12.0;
    pts.push_back({100.0 + r * std::cos(a), -40.0 + r * std::sin(a)});
  }
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, r, 1e-9);
  EXPECT_NEAR(c.center.x, 100.0, 1e-9);
  EXPECT_NEAR(c.center.y, -40.0, 1e-9);
}

}  // namespace
}  // namespace alidrone::geo
