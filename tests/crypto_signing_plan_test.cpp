// Signing fast-path equivalence and robustness.
//
// Every optimization layer (fixed-exponent window plans, blinding-pair
// reuse, KeyVault's owned plan) must emit signatures byte-identical to
// the unoptimized rsa_sign — RSASSA-PKCS1-v1_5 is deterministic, so any
// divergence is a bug, and the Auditor's rsa_verify must accept all of
// them. The CRT fault guard (Bellcore defence) is exercised by corrupting
// one CRT half and asserting no bad signature escapes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/montgomery.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "tee/key_vault.h"

namespace alidrone::crypto {
namespace {

RsaKeyPair test_keypair(std::size_t bits, std::string_view seed) {
  DeterministicRandom rng(seed);
  return generate_rsa_keypair(bits, rng);
}

TEST(FixedExponentPlan, MatchesModPowAcrossWindowSizes) {
  DeterministicRandom rng(std::string_view("plan-pow"));
  // Exponent lengths straddling every window-selection threshold.
  for (const std::size_t exp_bits :
       {3u, 17u, 64u, 200u, 256u, 700u, 896u, 1100u}) {
    BigInt m = rng.random_bits(512);
    if (m.is_even()) m += BigInt(1);
    const auto ctx = MontgomeryContextCache::global().get(m);
    const BigInt e = rng.random_bits(exp_bits);
    FixedExponentPlan plan(ctx, e);
    for (int i = 0; i < 4; ++i) {
      const BigInt base = rng.random_bits(512 + 5);
      EXPECT_EQ(plan.pow(base), base.mod_pow(e, m))
          << "exp_bits=" << exp_bits << " i=" << i;
    }
  }
}

TEST(FixedExponentPlan, EdgeExponents) {
  const BigInt m = (BigInt(1) << 255) - BigInt(19);
  const auto ctx = MontgomeryContextCache::global().get(m);

  FixedExponentPlan zero(ctx, BigInt(0));
  EXPECT_EQ(zero.pow(BigInt(7)), BigInt(1));

  FixedExponentPlan one(ctx, BigInt(1));
  EXPECT_EQ(one.pow(BigInt(7)), BigInt(7));
  EXPECT_EQ(one.pow(m + BigInt(3)), BigInt(3));  // base reduced mod m

  FixedExponentPlan two(ctx, BigInt(2));
  EXPECT_EQ(two.pow(m - BigInt(1)), BigInt(1));  // (-1)^2

  EXPECT_THROW(FixedExponentPlan(ctx, BigInt(-2)), std::domain_error);
  EXPECT_THROW(FixedExponentPlan(nullptr, BigInt(2)), std::invalid_argument);
}

TEST(FixedExponentPlan, ReusedPlanStaysCorrect) {
  // The same plan object replayed many times (buffer-reuse regression).
  const BigInt m = (BigInt(1) << 521) - BigInt(1);
  const auto ctx = MontgomeryContextCache::global().get(m);
  DeterministicRandom rng(std::string_view("plan-reuse"));
  const BigInt e = rng.random_bits(500);
  FixedExponentPlan plan(ctx, e);
  for (int i = 0; i < 32; ++i) {
    const BigInt base = rng.random_bits(521);
    ASSERT_EQ(plan.pow(base), base.mod_pow(e, m)) << i;
  }
}

/// All fast-path layers, across key sizes / hashes / refresh intervals:
/// byte-identical to rsa_sign and accepted by rsa_verify.
class SigningEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SigningEquivalence, FastPathsMatchSlowPathByteForByte) {
  const std::size_t bits = GetParam();
  const RsaKeyPair kp = test_keypair(bits, "equivalence-key");
  DeterministicRandom rng(std::string_view("equivalence-rng"));

  for (const HashAlgorithm hash : {HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    // Refresh intervals crossing the boundaries: always-fresh (0/1), the
    // square-reuse cadence (2, 3) and a long steady-state run (8).
    for (const std::uint64_t interval : {0ull, 1ull, 2ull, 3ull, 8ull}) {
      RsaSigningPlanConfig config;
      config.blinding_refresh_interval = interval;
      RsaSigningPlan plan(kp.priv, config);
      for (int i = 0; i < 12; ++i) {
        const Bytes msg = rng.bytes(16 + static_cast<std::size_t>(i));
        const Bytes slow = rsa_sign(kp.priv, msg, hash);
        const Bytes blinded = rsa_sign_blinded(kp.priv, msg, hash, rng);
        const Bytes fast = plan.sign(msg, hash, rng);
        EXPECT_EQ(fast, slow) << "bits=" << bits << " interval=" << interval
                              << " i=" << i;
        EXPECT_EQ(blinded, slow);
        EXPECT_TRUE(rsa_verify(kp.pub, msg, fast, hash));
      }
      EXPECT_EQ(plan.crt_fault_fallbacks(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, SigningEquivalence,
                         ::testing::Values(512, 768, 1024));

TEST(SigningPlan, BlindingRefreshCadence) {
  const RsaKeyPair kp = test_keypair(512, "cadence-key");
  DeterministicRandom rng(std::string_view("cadence-rng"));
  const Bytes msg = rng.bytes(24);

  RsaSigningPlanConfig config;
  config.blinding_refresh_interval = 4;
  RsaSigningPlan plan(kp.priv, config);
  for (int i = 0; i < 12; ++i) {
    plan.sign(msg, HashAlgorithm::kSha256, rng);
  }
  // A pair serves 4 signatures: ops 1, 5 and 9 draw fresh pairs.
  EXPECT_EQ(plan.blinding_refreshes(), 3u);
  EXPECT_EQ(plan.private_ops(), 12u);

  RsaSigningPlanConfig fresh_every;
  fresh_every.blinding_refresh_interval = 1;
  RsaSigningPlan fresh_plan(kp.priv, fresh_every);
  for (int i = 0; i < 5; ++i) {
    fresh_plan.sign(msg, HashAlgorithm::kSha256, rng);
  }
  EXPECT_EQ(fresh_plan.blinding_refreshes(), 5u);
}

TEST(SigningPlan, NonCrtKeyUsesSinglePlan) {
  RsaKeyPair kp = test_keypair(512, "non-crt-key");
  kp.priv.p = BigInt();
  kp.priv.q = BigInt();  // has_crt() now false
  RsaSigningPlan plan(kp.priv);
  DeterministicRandom rng(std::string_view("non-crt-rng"));
  const Bytes msg = rng.bytes(20);
  const Bytes fast = plan.sign(msg, HashAlgorithm::kSha256, rng);
  EXPECT_EQ(fast, rsa_sign(kp.priv, msg, HashAlgorithm::kSha256));
  EXPECT_TRUE(rsa_verify(kp.pub, msg, fast, HashAlgorithm::kSha256));
}

// --- Bellcore CRT fault guard -------------------------------------------

TEST(CrtFaultGuard, CorruptedCrtHalfNeverEscapes) {
  const RsaKeyPair good = test_keypair(512, "fault-key");
  DeterministicRandom rng(std::string_view("fault-rng"));
  const Bytes msg = rng.bytes(32);

  // Corrupt each CRT parameter in turn; a faulted recombination without
  // the guard would emit an s with gcd(s^e - m, n) = p or q.
  for (const int which : {0, 1, 2}) {
    RsaKeyPair bad = good;
    switch (which) {
      case 0:
        bad.priv.d_p += BigInt(2);
        break;
      case 1:
        bad.priv.d_q += BigInt(2);
        break;
      default:
        bad.priv.q_inv += BigInt(1);
        break;
    }

    // Free-function path: the guard falls back to the non-CRT exponent.
    const Bytes sig = rsa_sign(bad.priv, msg, HashAlgorithm::kSha256);
    EXPECT_TRUE(rsa_verify(good.pub, msg, sig, HashAlgorithm::kSha256))
        << "which=" << which;

    // Plan path: same result, and the fallback is visible in the stats.
    RsaSigningPlan plan(bad.priv);
    const Bytes fast = plan.sign(msg, HashAlgorithm::kSha256, rng);
    EXPECT_EQ(fast, sig) << "which=" << which;
    EXPECT_TRUE(rsa_verify(good.pub, msg, fast, HashAlgorithm::kSha256));
    EXPECT_GE(plan.crt_fault_fallbacks(), 1u);
  }
}

// --- KeyVault ------------------------------------------------------------

TEST(KeyVaultPlan, FastSignMatchesSlowSign) {
  DeterministicRandom mfg(std::string_view("vault-a"));
  const tee::KeyVault vault = tee::KeyVault::manufacture(512, mfg);
  DeterministicRandom rng(std::string_view("vault-a-rng"));
  const Bytes msg = rng.bytes(32);
  const Bytes fast = vault.sign_fast(msg, HashAlgorithm::kSha1, rng);
  EXPECT_EQ(fast, vault.sign(msg, HashAlgorithm::kSha1));
  EXPECT_TRUE(rsa_verify(vault.verification_key(), msg, fast, HashAlgorithm::kSha1));
  EXPECT_EQ(vault.plan_stats().crt_fault_fallbacks, 0u);
}

TEST(KeyVaultPlan, PlanStateIsPerVaultIsolated) {
  // Two vaults (two "sessions" of the manufacturing line) interleaved:
  // each plan's cached window tables and blinding pair must stay tied to
  // its own key.
  DeterministicRandom mfg_a(std::string_view("vault-iso-a"));
  DeterministicRandom mfg_b(std::string_view("vault-iso-b"));
  const tee::KeyVault vault_a = tee::KeyVault::manufacture(512, mfg_a);
  const tee::KeyVault vault_b = tee::KeyVault::manufacture(512, mfg_b);
  ASSERT_NE(vault_a.verification_key(), vault_b.verification_key());

  DeterministicRandom rng(std::string_view("vault-iso-rng"));
  for (int i = 0; i < 6; ++i) {
    const Bytes msg = rng.bytes(16);
    const Bytes sig_a = vault_a.sign_fast(msg, HashAlgorithm::kSha256, rng);
    const Bytes sig_b = vault_b.sign_fast(msg, HashAlgorithm::kSha256, rng);
    EXPECT_EQ(sig_a, vault_a.sign(msg, HashAlgorithm::kSha256));
    EXPECT_EQ(sig_b, vault_b.sign(msg, HashAlgorithm::kSha256));
    // Cross-check: a's signature must not verify under b's key.
    EXPECT_FALSE(rsa_verify(vault_b.verification_key(), msg, sig_a,
                            HashAlgorithm::kSha256));
  }
  EXPECT_EQ(vault_a.plan_stats().private_ops, 6u);
  EXPECT_EQ(vault_b.plan_stats().private_ops, 6u);
}

TEST(KeyVaultPlan, ConcurrentFastSignsStaySerializedAndCorrect) {
  // The vault guards its mutable plan with a mutex; hammer it from
  // several threads (each with its own RNG — RandomSource is not
  // thread-safe) and assert every signature is the deterministic
  // rsa_sign output. Runs under TSan via the ctest `tsan` label.
  DeterministicRandom mfg(std::string_view("vault-mt"));
  const tee::KeyVault vault = tee::KeyVault::manufacture(512, mfg);
  const Bytes msg = to_bytes("concurrent signing");
  const Bytes expected = vault.sign(msg, HashAlgorithm::kSha256);

  constexpr int kThreads = 4;
  constexpr int kSignsPerThread = 8;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        DeterministicRandom rng(static_cast<std::uint64_t>(w) + 1000);
        for (int i = 0; i < kSignsPerThread; ++i) {
          if (vault.sign_fast(msg, HashAlgorithm::kSha256, rng) != expected) {
            ++mismatches[static_cast<std::size_t>(w)];
          }
        }
      });
    }
    for (std::thread& th : workers) th.join();
  }
  for (const int m : mismatches) EXPECT_EQ(m, 0);
  EXPECT_EQ(vault.plan_stats().private_ops,
            static_cast<std::uint64_t>(kThreads * kSignsPerThread));
}

}  // namespace
}  // namespace alidrone::crypto
