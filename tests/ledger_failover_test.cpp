// Chaos-driven failover for the replicated Auditor (labelled `ledger` and
// `chaos` in ctest): the primary replica is killed mid-flight and the
// drone re-targets a follower. Invariants, for every schedule:
//
//   1. every verdict is byte-identical to the fault-free baseline;
//   2. the surviving replicas converge to the SAME ledger root as the
//      fault-free run — losing the primary loses no history and forks
//      nothing;
//   3. the dead primary holds a strict prefix, and one catch_up() call
//      brings it to the identical root once its outage ends;
//   4. a lost response (verify-then-timeout ambiguity) resubmitted to a
//      DIFFERENT replica is absorbed by content dedup, never
//      double-counted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/drone_client.h"
#include "core/replicated_auditor.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "obs/flight_recorder.h"
#include "sim/route.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;
constexpr int kFlights = 2;
constexpr std::uint64_t kGpsSeed = 42;  // fixed: PoA bytes identical per run

enum class Schedule {
  kNone,          // fault-free baseline
  kPrimaryDead,   // every auditor0.* endpoint dark mid-run
  kResponseLoss,  // auditor0 verifies but its submit responses vanish
};

std::string to_string(Schedule schedule) {
  switch (schedule) {
    case Schedule::kNone: return "None";
    case Schedule::kPrimaryDead: return "PrimaryDead";
    case Schedule::kResponseLoss: return "ResponseLoss";
  }
  return "?";
}

/// Every endpoint replica 0 serves — wire methods, the replication inlet
/// and the ledger introspection endpoints. Killing the primary means all
/// of them.
std::vector<std::string> primary_endpoints() {
  std::vector<std::string> endpoints;
  for (const char* suffix :
       {"register_drone", "register_zone", "query_zones", "submit_poa",
        "tesla_announce", "tesla_sample", "tesla_disclose", "tesla_finalize",
        "accuse", "apply", "ledger_info", "ledger_range", "ledger_segment"}) {
    endpoints.push_back(std::string("auditor0.") + suffix);
  }
  return endpoints;
}

constexpr double kFaultStart = 1.0;
constexpr double kFaultEnd = 4000.0;

net::MessageBus::FaultConfig bus_faults(Schedule schedule, std::uint64_t seed) {
  net::MessageBus::FaultConfig faults;
  faults.seed = seed;
  switch (schedule) {
    case Schedule::kNone:
      break;
    case Schedule::kPrimaryDead:
      for (const std::string& endpoint : primary_endpoints()) {
        net::FaultWindow w;
        w.endpoint = endpoint;
        w.start = kFaultStart;
        w.end = kFaultEnd;
        w.kind = net::FaultKind::kOutage;
        w.probability = 1.0;
        faults.schedule.push_back(w);
      }
      break;
    case Schedule::kResponseLoss: {
      net::FaultWindow w;
      w.endpoint = "auditor0.submit_poa";
      w.start = kFaultStart;
      w.end = kFaultEnd;
      w.kind = net::FaultKind::kResponseLoss;
      w.probability = 1.0;
      faults.schedule.push_back(w);
      break;
    }
  }
  return faults;
}

struct RunResult {
  bool registered = false;
  std::vector<crypto::Bytes> verdict_bytes;  // one per flight, in order
  std::vector<ledger::Digest> roots;         // per replica, END of run
  std::vector<std::uint64_t> entry_counts;   // per replica
  bool survivors_converged = false;          // replicas 1 and 2 agree
  bool all_converged = false;                // including the primary
  std::uint64_t failovers = 0;
  std::uint64_t forward_failures = 0;
  std::uint64_t dedup_hits = 0;
  std::size_t retained_on_survivor = 0;
  bool caught_up = false;     // primary converged after catch_up()
  std::size_t outbox_left = 999;
  /// Replica 1's full entry stream ("kind|time|payload-hex"): when a root
  /// mismatch fails the run, the first differing entry names the culprit.
  std::vector<std::string> entries1;
};

std::string hex(const crypto::Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

RunResult run_scenario(Schedule schedule, std::uint64_t seed,
                       obs::FlightRecorder* recorder = nullptr) {
  RunResult result;
  obs::MetricsRegistry reg;
  net::MessageBus bus;
  resilience::SimClock clock(0.0);

  ReplicatedAuditor::Config fed_config;
  fed_config.replicas = 3;
  fed_config.key_bits = kTestKeyBits;
  fed_config.key_seed = "failover-auditor";
  fed_config.segment_capacity = 4;
  fed_config.params.metrics = &reg;
  fed_config.metrics = &reg;
  fed_config.recorder = recorder;
  fed_config.channel.retry.max_attempts = 4;
  fed_config.channel.retry.initial_backoff_s = 0.5;
  fed_config.channel.retry.backoff_multiplier = 2.0;
  fed_config.channel.retry.max_backoff_s = 4.0;
  fed_config.channel.retry.jitter_fraction = 0.1;
  fed_config.channel.breaker.failure_threshold = 3;
  fed_config.channel.breaker.cooldown_s = 10.0;
  fed_config.channel.seed = seed;
  ReplicatedAuditor fed(bus, clock, fed_config);
  bus.set_faults(bus_faults(schedule, seed));

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "failover-device";
  tee::DroneTee tee(tee_config);
  crypto::DeterministicRandom operator_rng("failover-operator");
  DroneClient client(tee, kTestKeyBits, operator_rng, &reg);
  client.set_auditor_endpoints(fed.client_prefixes());
  client.set_trace(recorder);

  resilience::ReliableChannel::Config channel_config = fed_config.channel;
  channel_config.metrics = &reg;
  channel_config.trace = recorder;
  resilience::ReliableChannel channel(bus, clock, channel_config);

  // t=0, before any window opens: registration and zones go to the
  // primary and replicate out — every run shares this prefix.
  result.registered = client.register_with_auditor(channel);
  if (!result.registered) return result;
  crypto::DeterministicRandom owner_rng("failover-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);
  const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  std::vector<geo::GeoZone> zones;
  for (double x : {100.0, 300.0}) {
    zones.push_back({frame.to_geo(geo::Vec2{x, 400.0}), 30.0});
  }
  for (const geo::GeoZone& zone : zones) {
    owner.register_zone(bus, zone, "failover zone", "auditor0");
  }

  // ... and then the primary dies.
  clock.advance(kFaultStart + 1.0);

  for (int f = 0; f < kFlights; ++f) {
    const double start = kT0 + f * 1000.0;
    sim::Route route(
        frame, {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}},
        start);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = start;
    rc.seed = kGpsSeed + static_cast<std::uint64_t>(f);
    gps::GpsReceiverSim receiver(rc, route.as_position_source());

    std::vector<geo::Circle> local_zones;
    for (const geo::GeoZone& z : zones) {
      local_zones.push_back({frame.to_local(z.center), z.radius_m});
    }
    AdaptiveSampler policy(frame, local_zones, geo::kFaaMaxSpeedMps, 0.2);
    FlightConfig flight_config;
    flight_config.end_time = start + 60.0;
    flight_config.frame = frame;
    flight_config.local_zones = local_zones;
    // Samples encrypted for the shared federation key: the proof stays
    // verifiable no matter which replica ends up serving it. The padding
    // rng is seeded per flight so the SAME proof bytes are produced under
    // every fault schedule — the root-equality invariant depends on it.
    flight_config.auditor_encryption_key = fed.replica(0).encryption_key();
    crypto::DeterministicRandom encryption_rng("failover-encryption-" +
                                               std::to_string(f));
    flight_config.encryption_rng = &encryption_rng;

    const ProofOfAlibi poa = client.fly(receiver, policy, flight_config);
    client.enqueue_poa(poa);
    for (int i = 0; i < 100 && client.outbox_size() > 0; ++i) {
      for (PoaVerdict& verdict : client.drain_outbox(channel)) {
        result.verdict_bytes.push_back(verdict.encode());
      }
      if (client.outbox_size() > 0) clock.advance(1.5);
    }
  }
  result.outbox_left = client.outbox_size();
  result.failovers = client.failovers();

  for (std::size_t k = 0; k < 3; ++k) {
    result.roots.push_back(fed.root_of(k));
    result.entry_counts.push_back(fed.replica_ledger(k)->entry_count());
  }
  for (std::uint64_t seq = 0; seq < result.entry_counts[1]; ++seq) {
    const auto entry = fed.replica_ledger(1)->entry(seq);
    if (!entry) { result.entries1.push_back("<gone>"); continue; }
    result.entries1.push_back(std::to_string(static_cast<int>(entry->kind)) +
                              "|" + std::to_string(entry->time) + "|" +
                              hex(entry->payload));
  }
  result.survivors_converged = fed.root_of(1) == fed.root_of(2);
  result.all_converged = fed.converged();
  result.forward_failures = fed.counters().forward_failures;
  result.dedup_hits = fed.counters().dedup_hits;
  result.retained_on_survivor = fed.replica(1).retained_poa_count();

  // The outage ends; one catch-up pull from a survivor must land the
  // primary on the identical root.
  clock.advance(kFaultEnd + 100.0);
  const auto reapplied = fed.catch_up(0, 1);
  result.caught_up = reapplied.has_value() && fed.converged();
  return result;
}

const RunResult& baseline() {
  static const RunResult result = run_scenario(Schedule::kNone, 1);
  return result;
}

void expect_matches_baseline(const RunResult& result, const std::string& label) {
  const RunResult& base = baseline();
  EXPECT_TRUE(result.registered) << label;
  EXPECT_EQ(result.outbox_left, 0u) << label;
  ASSERT_EQ(result.verdict_bytes.size(), base.verdict_bytes.size()) << label;
  for (std::size_t i = 0; i < base.verdict_bytes.size(); ++i) {
    EXPECT_EQ(result.verdict_bytes[i], base.verdict_bytes[i])
        << label << " flight " << i;
  }
  // Survivors carry the byte-identical history of the fault-free run —
  // diff entry by entry so a regression names the first divergent record.
  EXPECT_TRUE(result.survivors_converged) << label;
  const std::size_t n = std::min(result.entries1.size(), base.entries1.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (result.entries1[i] != base.entries1[i]) {
      ADD_FAILURE() << label << " first differing entry seq=" << i
                    << "\n  run : " << result.entries1[i].substr(0, 400)
                    << "\n  base: " << base.entries1[i].substr(0, 400);
      break;
    }
  }
  EXPECT_EQ(result.entries1.size(), base.entries1.size()) << label;
  EXPECT_EQ(result.roots[1], base.roots[1]) << label;
  EXPECT_EQ(result.retained_on_survivor, base.retained_on_survivor) << label;
  EXPECT_TRUE(result.caught_up) << label;
}

TEST(LedgerFailoverTest, BaselineIsHealthy) {
  const RunResult& base = baseline();
  ASSERT_TRUE(base.registered);
  ASSERT_EQ(base.verdict_bytes.size(), static_cast<std::size_t>(kFlights));
  EXPECT_EQ(base.outbox_left, 0u);
  EXPECT_EQ(base.failovers, 0u);
  EXPECT_EQ(base.forward_failures, 0u);
  EXPECT_TRUE(base.all_converged);
  EXPECT_EQ(base.retained_on_survivor, static_cast<std::size_t>(kFlights));
  EXPECT_GT(base.entry_counts[0], 0u);
}

TEST(LedgerFailoverTest, PrimaryKilledMidFlightFailsOverAndConverges) {
  for (const std::uint64_t seed : {2u, 3u, 4u}) {
    obs::FlightRecorder recorder(seed, 4096);
    const RunResult result =
        run_scenario(Schedule::kPrimaryDead, seed, &recorder);
    const std::string label =
        to_string(Schedule::kPrimaryDead) + "/seed=" + std::to_string(seed);
    if (::testing::Test::HasFailure()) break;

    expect_matches_baseline(result, label);
    // The client really did re-target a follower...
    EXPECT_GT(result.failovers, 0u) << label;
    bool saw_failover_trace = false;
    for (const obs::TraceEvent& event : recorder.events()) {
      if (event.kind == obs::TraceKind::kReplicaFailover) {
        saw_failover_trace = true;
      }
    }
    EXPECT_TRUE(saw_failover_trace) << label;
    // ...the survivors could not reach the dead primary...
    EXPECT_GT(result.forward_failures, 0u) << label;
    // ...which, until catch-up, held a strict prefix.
    EXPECT_LT(result.entry_counts[0], result.entry_counts[1]) << label;
  }
}

TEST(LedgerFailoverTest, LostResponsesAreAbsorbedByContentDedup) {
  for (const std::uint64_t seed : {5u, 6u}) {
    const RunResult result = run_scenario(Schedule::kResponseLoss, seed);
    const std::string label =
        to_string(Schedule::kResponseLoss) + "/seed=" + std::to_string(seed);
    if (::testing::Test::HasFailure()) break;

    expect_matches_baseline(result, label);
    // The primary DID verify each proof (its responses just vanished), so
    // the failover resubmission to a follower hit the dedup cache — and
    // every replica stayed in lockstep the whole time.
    EXPECT_GT(result.dedup_hits, 0u) << label;
    EXPECT_EQ(result.entry_counts[0], result.entry_counts[1]) << label;
  }
}

}  // namespace
}  // namespace alidrone::core
