// Serial/parallel equivalence of Auditor::verify_poa_batch: verdicts,
// retention and audit-log contents must be byte-identical no matter how
// many threads evaluate the batch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/auditor.h"
#include "core/messages.h"
#include "core/poa.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "runtime/thread_pool.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr double kSubmitTime = kT0 + 600.0;

/// Identically keyed Auditor instances: DeterministicRandom makes key
/// generation reproducible, so every auditor in a test sees the same
/// keypair and produces the same ciphertext-independent verdicts.
std::unique_ptr<Auditor> make_auditor() {
  crypto::DeterministicRandom rng(std::string_view("parallel-auditor"));
  return std::make_unique<Auditor>(512, rng);
}

struct Corpus {
  crypto::RsaKeyPair tee_keys;
  DroneId drone_id;
  std::vector<ProofOfAlibi> poas;
};

crypto::Bytes encode_fix(double lat, double lon, double t) {
  gps::GpsFix f;
  f.position = geo::GeoPoint{lat, lon};
  f.unix_time = t;
  return tee::encode_sample(f);
}

/// Register one drone and build a 500-proof corpus: mostly valid proofs
/// plus deliberately corrupted signatures, malformed samples, unknown
/// drones, unordered timestamps and empty proofs sprinkled throughout.
Corpus make_corpus(Auditor& auditor, std::size_t n_poas = 500) {
  Corpus corpus;
  crypto::DeterministicRandom key_rng(std::string_view("corpus-keys"));
  corpus.tee_keys = crypto::generate_rsa_keypair(512, key_rng);
  const crypto::RsaKeyPair operator_keys = crypto::generate_rsa_keypair(512, key_rng);

  RegisterDroneRequest reg;
  reg.operator_key_n = operator_keys.pub.n.to_bytes();
  reg.operator_key_e = operator_keys.pub.e.to_bytes();
  reg.tee_key_n = corpus.tee_keys.pub.n.to_bytes();
  reg.tee_key_e = corpus.tee_keys.pub.e.to_bytes();
  const RegisterDroneResponse response = auditor.register_drone(reg);
  EXPECT_TRUE(response.ok);
  corpus.drone_id = response.drone_id;

  for (std::size_t p = 0; p < n_poas; ++p) {
    ProofOfAlibi poa;
    poa.drone_id = corpus.drone_id;
    poa.mode = AuthMode::kRsaPerSample;
    poa.hash = crypto::HashAlgorithm::kSha1;

    const double base = kT0 + static_cast<double>(p);
    const std::size_t n_samples = 2 + p % 3;
    for (std::size_t s = 0; s < n_samples; ++s) {
      SignedSample sample;
      sample.sample = encode_fix(40.0 + 0.0001 * static_cast<double>(p),
                                 -88.0 + 0.0001 * static_cast<double>(s),
                                 base + static_cast<double>(s));
      sample.signature = crypto::rsa_sign(corpus.tee_keys.priv, sample.sample,
                                          poa.hash);
      poa.samples.push_back(std::move(sample));
    }

    // Deterministic defects so the batch exercises every rejection path.
    switch (p % 10) {
      case 3:  // corrupted signature
        poa.samples[0].signature[4] ^= 0x5A;
        break;
      case 5:  // malformed (truncated) sample bytes
        poa.samples.back().sample.pop_back();
        break;
      case 7:  // unknown drone
        poa.drone_id = "drone-unregistered";
        break;
      case 9:  // not time-ordered: swap the signed samples
        std::swap(poa.samples.front(), poa.samples.back());
        break;
      default:
        break;
    }
    if (p == 250) poa.samples.clear();  // one empty PoA

    corpus.poas.push_back(std::move(poa));
  }
  return corpus;
}

void expect_verdicts_identical(const std::vector<PoaVerdict>& a,
                               const std::vector<PoaVerdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // encode() compares every field byte for byte.
    EXPECT_EQ(a[i].encode(), b[i].encode()) << "verdict " << i << ": '"
                                            << a[i].detail << "' vs '"
                                            << b[i].detail << "'";
  }
}

void expect_audit_logs_identical(const AuditLog& a, const AuditLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].to_line(), b.events()[i].to_line())
        << "audit event " << i;
  }
}

TEST(AuditorParallel, BatchMatchesSerialLoop) {
  auto serial = make_auditor();
  auto batch = make_auditor();
  const Corpus corpus = make_corpus(*serial);
  make_corpus(*batch);

  std::vector<PoaVerdict> loop_verdicts;
  for (const ProofOfAlibi& poa : corpus.poas) {
    loop_verdicts.push_back(serial->verify_poa(poa, kSubmitTime));
  }
  const std::vector<PoaVerdict> batch_verdicts =
      batch->verify_poa_batch(corpus.poas, kSubmitTime, nullptr);

  expect_verdicts_identical(loop_verdicts, batch_verdicts);
  EXPECT_EQ(serial->retained_poa_count(), batch->retained_poa_count());
}

TEST(AuditorParallel, ParallelMatchesSerialOn500ProofCorpus) {
  auto serial = make_auditor();
  auto parallel = make_auditor();
  const auto serial_log = std::make_shared<AuditLog>();
  const auto parallel_log = std::make_shared<AuditLog>();
  serial->attach_audit_log(serial_log);
  parallel->attach_audit_log(parallel_log);

  const Corpus corpus = make_corpus(*serial);
  make_corpus(*parallel);

  // Sanity: the corpus must exercise accept and reject paths.
  const std::vector<PoaVerdict> serial_verdicts =
      serial->verify_poa_batch(corpus.poas, kSubmitTime, nullptr);
  std::size_t accepted = 0;
  for (const PoaVerdict& v : serial_verdicts) accepted += v.accepted ? 1 : 0;
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, corpus.poas.size());

  runtime::ThreadPool pool(4);
  const std::vector<PoaVerdict> parallel_verdicts =
      parallel->verify_poa_batch(corpus.poas, kSubmitTime, &pool);

  expect_verdicts_identical(serial_verdicts, parallel_verdicts);
  expect_audit_logs_identical(*serial_log, *parallel_log);
  EXPECT_EQ(serial->retained_poa_count(), parallel->retained_poa_count());
}

TEST(AuditorParallel, DeterministicAcrossThreadCounts) {
  auto two = make_auditor();
  auto eight = make_auditor();
  const Corpus corpus = make_corpus(*two);
  make_corpus(*eight);

  runtime::ThreadPool pool2(2);
  runtime::ThreadPool pool8(8);
  const std::vector<PoaVerdict> v2 =
      two->verify_poa_batch(corpus.poas, kSubmitTime, &pool2);
  const std::vector<PoaVerdict> v8 =
      eight->verify_poa_batch(corpus.poas, kSubmitTime, &pool8);
  expect_verdicts_identical(v2, v8);
  EXPECT_EQ(two->retained_poa_count(), eight->retained_poa_count());
}

TEST(AuditorParallel, CorruptedSignaturesRejectedIdenticallyInParallel) {
  auto serial = make_auditor();
  auto parallel = make_auditor();
  Corpus corpus = make_corpus(*serial, 120);
  make_corpus(*parallel, 120);

  // Corrupt EVERY proof's first signature: an all-reject corpus.
  for (ProofOfAlibi& poa : corpus.poas) {
    if (!poa.samples.empty() && !poa.samples[0].signature.empty()) {
      poa.samples[0].signature[0] ^= 0xFF;
    }
  }

  const std::vector<PoaVerdict> serial_verdicts =
      serial->verify_poa_batch(corpus.poas, kSubmitTime, nullptr);
  runtime::ThreadPool pool(4);
  const std::vector<PoaVerdict> parallel_verdicts =
      parallel->verify_poa_batch(corpus.poas, kSubmitTime, &pool);

  expect_verdicts_identical(serial_verdicts, parallel_verdicts);
  for (const PoaVerdict& v : serial_verdicts) EXPECT_FALSE(v.accepted);
  EXPECT_EQ(parallel->retained_poa_count(), 0u);
}

}  // namespace
}  // namespace alidrone::core
