// obs::MetricsRegistry — handle semantics, deterministic snapshots, and
// thread safety of the counter/gauge hot paths (run under TSan via the
// `tsan` ctest label).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace alidrone::obs {
namespace {

TEST(MetricsRegistry, CounterHandlesAreSharedByName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("core.test.events");
  Counter& b = reg.counter("core.test.events");
  EXPECT_EQ(&a, &b);

  a.increment();
  b.add(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(MetricsRegistry, GaugeSetAddAndHighWaterMark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("resource.test.busy_seconds");
  g.set(1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  g.set_max(1.0);  // below current: no effect
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulativeOnExport) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("net.test.latency", {0.001, 0.01, 0.1});
  h.observe(0.0005);
  h.observe(0.005);
  h.observe(0.05);
  h.observe(5.0);  // +inf bucket

  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0005 + 0.005 + 0.05 + 5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow
}

TEST(MetricsRegistry, InstanceScopesNumberInConstructionOrder) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.instance_scope("net.buffer_pool"), "net.buffer_pool#0");
  EXPECT_EQ(reg.instance_scope("net.buffer_pool"), "net.buffer_pool#1");
  EXPECT_EQ(reg.instance_scope("tee.monitor"), "tee.monitor#0");
  EXPECT_EQ(reg.instance_scope("net.buffer_pool"), "net.buffer_pool#2");
}

TEST(MetricsRegistry, SnapshotIsLexicographicallyOrdered) {
  MetricsRegistry reg;
  reg.counter("z.last").increment();
  reg.gauge("a.first").set(1.0);
  reg.counter("m.middle").add(2);

  const std::vector<MetricRecord> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.middle");
  EXPECT_EQ(snap[2].name, "z.last");
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
}

// The property the scale test leans on: the same logical operations yield
// byte-identical JSON exports, regardless of registration interleaving.
TEST(MetricsRegistry, JsonExportIsDeterministicAcrossRegistrationOrder) {
  const auto populate = [](MetricsRegistry& reg, bool reversed) {
    if (reversed) {
      reg.gauge("resource.cpu#0.busy_seconds").set(0.25);
      reg.counter("core.ingest#0.admitted").add(17);
      reg.counter("core.auditor#0.duplicate_poa_submissions").add(3);
    } else {
      reg.counter("core.auditor#0.duplicate_poa_submissions").add(3);
      reg.counter("core.ingest#0.admitted").add(17);
      reg.gauge("resource.cpu#0.busy_seconds").set(0.25);
    }
  };
  MetricsRegistry forward;
  MetricsRegistry backward;
  populate(forward, false);
  populate(backward, true);
  EXPECT_EQ(forward.to_json(), backward.to_json());
  EXPECT_EQ(forward.to_prometheus(), backward.to_prometheus());
}

TEST(MetricsRegistry, JsonCountersPrintAsIntegers) {
  MetricsRegistry reg;
  reg.counter("core.test.n").add(1234567);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"value\": 1234567"), std::string::npos) << json;
  EXPECT_EQ(json.find("1.23457e"), std::string::npos) << json;
}

TEST(MetricsRegistry, PrometheusSanitizesNames) {
  MetricsRegistry reg;
  reg.counter("net.bus#0.requests_sent").increment();
  const std::string text = reg.to_prometheus();
  // The '#' and '.' in the registry name are not legal in a Prometheus
  // metric name; only `# TYPE`/`# HELP` comment lines may keep a '#'.
  EXPECT_NE(text.find("net_bus_0_requests_sent"), std::string::npos) << text;
  EXPECT_EQ(text.find("net.bus#0"), std::string::npos) << text;
}

// TSan target: many writers hammering shared counters while a reader
// snapshots concurrently. The striped relaxed atomics must neither race
// nor lose increments.
TEST(MetricsRegistry, ConcurrentIncrementAndSnapshot) {
  MetricsRegistry reg;
  Counter& hits = reg.counter("stress.hits");
  Gauge& level = reg.gauge("stress.level");

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&hits, &level] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        hits.increment();
        level.set_max(static_cast<double>(i));
      }
    });
  }
  // A concurrent reader: registrations and snapshots share the registry
  // lock while the counter writes stay lock-free.
  threads.emplace_back([&reg] {
    for (int i = 0; i < 50; ++i) {
      const auto snap = reg.snapshot();
      EXPECT_GE(snap.size(), 2u);
      (void)reg.to_json();
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(hits.value(), kWriters * kPerWriter);
  EXPECT_DOUBLE_EQ(level.value(), static_cast<double>(kPerWriter - 1));
}

TEST(MetricsRegistry, ConcurrentRegistrationYieldsOneHandlePerName) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter& c = reg.counter("race.single");
      c.increment();
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(reg.counter("race.single").value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistry, GlobalRegistryIsAStableSingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, WriteJsonMatchesToJson) {
  MetricsRegistry reg;
  reg.counter("x.y").add(9);
  std::ostringstream out;
  reg.write_json(out);
  EXPECT_EQ(out.str(), reg.to_json());
}

}  // namespace
}  // namespace alidrone::obs
