// Durable identity databases: the Auditor's drone/zone registries survive
// restarts through RegistryStore, including 3D ceilings and id counters.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "net/message_bus.h"

namespace alidrone::core {
namespace {

constexpr std::size_t kTestKeyBits = 512;

class RegistryFixture : public ::testing::Test {
 protected:
  RegistryFixture()
      : file_(std::filesystem::temp_directory_path() /
              ("alidrone_registry_" + std::to_string(::getpid()) + ".bin")) {
    std::filesystem::remove(file_);
  }
  ~RegistryFixture() override { std::filesystem::remove(file_); }

  std::filesystem::path file_;
};

TEST_F(RegistryFixture, SnapshotRoundTrip) {
  RegistryStore store(file_);
  EXPECT_FALSE(store.load().has_value());  // nothing yet

  crypto::DeterministicRandom rng("registry-keys");
  const crypto::RsaKeyPair op = crypto::generate_rsa_keypair(512, rng);
  const crypto::RsaKeyPair tee = crypto::generate_rsa_keypair(512, rng);
  const crypto::RsaKeyPair owner = crypto::generate_rsa_keypair(512, rng);

  RegistryStore::Snapshot snapshot;
  snapshot.next_drone_number = 5;
  snapshot.next_zone_number = 9;
  snapshot.drones["drone-4"] = DroneRecord{"drone-4", op.pub, tee.pub};
  ZoneRecord zone{"zone-8", {{40.1, -88.2}, 33.0}, owner.pub, "lot", {}};
  zone.ceiling_m = 55.0;
  snapshot.zones["zone-8"] = zone;
  store.save(snapshot);

  const auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->next_drone_number, 5);
  EXPECT_EQ(loaded->next_zone_number, 9);
  ASSERT_EQ(loaded->drones.size(), 1u);
  EXPECT_EQ(loaded->drones.at("drone-4").tee_key, tee.pub);
  EXPECT_EQ(loaded->drones.at("drone-4").operator_key, op.pub);
  ASSERT_EQ(loaded->zones.size(), 1u);
  const ZoneRecord& z = loaded->zones.at("zone-8");
  EXPECT_DOUBLE_EQ(z.zone.radius_m, 33.0);
  EXPECT_EQ(z.description, "lot");
  ASSERT_TRUE(z.ceiling_m.has_value());
  EXPECT_DOUBLE_EQ(*z.ceiling_m, 55.0);
}

TEST_F(RegistryFixture, CorruptFileLoadsAsNullopt) {
  {
    std::ofstream bad(file_, std::ios::binary);
    bad << "garbage";
  }
  EXPECT_FALSE(RegistryStore(file_).load().has_value());
}

TEST_F(RegistryFixture, AuditorRestartKeepsIdentitiesAndCounters) {
  crypto::DeterministicRandom owner_rng("registry-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);

  tee::DroneTee::Config config;
  config.key_bits = kTestKeyBits;
  config.manufacturing_seed = "registry-device";
  tee::DroneTee tee(config);

  // First life: register one drone and two zones (one with a ceiling).
  {
    crypto::DeterministicRandom auditor_rng("registry-auditor");
    Auditor auditor(kTestKeyBits, auditor_rng);
    auditor.attach_registry(std::make_shared<RegistryStore>(file_));
    net::MessageBus bus;
    auditor.bind(bus);

    crypto::DeterministicRandom operator_rng("registry-operator");
    DroneClient client(tee, kTestKeyBits, operator_rng);
    ASSERT_TRUE(client.register_with_auditor(bus));
    ASSERT_EQ(client.id(), "drone-1");

    ASSERT_EQ(owner.register_zone(bus, {{40.1, -88.2}, 20.0}, "a"), "zone-1");
    RegisterZoneRequest cyl = owner.make_zone_request({{40.2, -88.3}, 25.0}, "b");
    ASSERT_TRUE(auditor.register_zone_3d(cyl, 60.0).ok);
  }

  // Second life: everything restored, counters continue, queries work.
  {
    crypto::DeterministicRandom auditor_rng("registry-auditor");
    Auditor restarted(kTestKeyBits, auditor_rng);
    restarted.attach_registry(std::make_shared<RegistryStore>(file_));

    EXPECT_EQ(restarted.drone_count(), 1u);
    EXPECT_EQ(restarted.zone_count(), 2u);
    ASSERT_TRUE(restarted.zones().at("zone-2").ceiling_m.has_value());
    EXPECT_DOUBLE_EQ(*restarted.zones().at("zone-2").ceiling_m, 60.0);

    // The restored drone can query zones (operator key survived) and the
    // restored spatial index answers.
    net::MessageBus bus;
    restarted.bind(bus);
    crypto::DeterministicRandom operator_rng("registry-operator");
    DroneClient client(tee, kTestKeyBits, operator_rng);
    // The same TEE + operator key re-registering is idempotent: it gets
    // its original identity back, counted as a duplicate...
    EXPECT_TRUE(client.register_with_auditor(bus));
    EXPECT_EQ(client.id(), "drone-1");
    EXPECT_EQ(restarted.duplicate_registrations(), 1u);

    // ...but the same TEE under a different operator key is refused.
    crypto::DeterministicRandom other_rng("registry-operator-2");
    DroneClient impostor(tee, kTestKeyBits, other_rng);
    EXPECT_FALSE(impostor.register_with_auditor(bus));

    // ...but a new zone gets the next counter, not a recycled id.
    EXPECT_EQ(owner.register_zone(bus, {{40.3, -88.4}, 15.0}, "c"), "zone-3");
  }
}

}  // namespace
}  // namespace alidrone::core
