// End-to-end protocol tests: registration, zone query, flight, PoA
// verification, accusations, and transport fault injection — the full
// workflow of Fig. 2 over the message bus.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;  // fast; realistic sizes in benches

class ProtocolFixture : public ::testing::Test {
 protected:
  ProtocolFixture()
      : auditor_rng_("auditor-seed"),
        owner_rng_("owner-seed"),
        operator_rng_("operator-seed"),
        auditor_(kTestKeyBits, auditor_rng_),
        owner_(kTestKeyBits, owner_rng_),
        tee_(make_tee_config()),
        client_(tee_, kTestKeyBits, operator_rng_) {
    auditor_.bind(bus_);
  }

  static tee::DroneTee::Config make_tee_config() {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "protocol-test-device";
    return config;
  }

  /// Fly the given scenario adaptively and return the (plaintext) PoA.
  ProofOfAlibi fly_scenario(const sim::Scenario& scenario, bool encrypt = false) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

    AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = scenario.route.end_time();
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    if (encrypt) config.auditor_encryption_key = auditor_.encryption_key();
    return client_.fly(receiver, policy, config);
  }

  crypto::DeterministicRandom auditor_rng_;
  crypto::DeterministicRandom owner_rng_;
  crypto::DeterministicRandom operator_rng_;
  net::MessageBus bus_;
  Auditor auditor_;
  ZoneOwner owner_;
  tee::DroneTee tee_;
  DroneClient client_;
};

TEST_F(ProtocolFixture, DroneRegistrationIssuesId) {
  EXPECT_TRUE(client_.register_with_auditor(bus_));
  EXPECT_EQ(client_.id(), "drone-1");
  EXPECT_EQ(auditor_.drone_count(), 1u);
}

TEST_F(ProtocolFixture, SameTeeCannotRegisterTwice) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  DroneClient second(tee_, kTestKeyBits, operator_rng_);
  EXPECT_FALSE(second.register_with_auditor(bus_));
  EXPECT_EQ(auditor_.drone_count(), 1u);
}

TEST_F(ProtocolFixture, ZoneRegistrationRequiresValidOwnershipProof) {
  const geo::GeoZone zone{{40.111, -88.221}, 50.0};
  EXPECT_EQ(owner_.register_zone(bus_, zone, "my backyard"), "zone-1");
  EXPECT_EQ(auditor_.zone_count(), 1u);

  // Forged proof: signature by a different key.
  crypto::DeterministicRandom other_rng("other-owner");
  const ZoneOwner impostor(kTestKeyBits, other_rng);
  RegisterZoneRequest request = impostor.make_zone_request(zone, "not mine");
  request.owner_key_n = owner_.public_key().n.to_bytes();  // claims to be owner_
  request.owner_key_e = owner_.public_key().e.to_bytes();
  EXPECT_FALSE(auditor_.register_zone(request).ok);
  EXPECT_EQ(auditor_.zone_count(), 1u);
}

TEST_F(ProtocolFixture, ZoneRegistrationValidatesGeometry) {
  EXPECT_FALSE(
      auditor_.register_zone(owner_.make_zone_request({{40.0, -88.0}, -5.0}, "bad")).ok);
  EXPECT_FALSE(
      auditor_.register_zone(owner_.make_zone_request({{95.0, -88.0}, 5.0}, "bad")).ok);
}

TEST_F(ProtocolFixture, ZoneQueryReturnsOnlyZonesInRectangle) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  owner_.register_zone(bus_, {{40.111, -88.221}, 30.0}, "inside");
  owner_.register_zone(bus_, {{41.500, -88.221}, 30.0}, "outside");

  const QueryRect rect{{40.0, -88.4}, {40.3, -88.0}};
  const auto zones = client_.query_zones(bus_, rect);
  ASSERT_TRUE(zones.has_value());
  ASSERT_EQ(zones->size(), 1u);
  EXPECT_EQ((*zones)[0].id, "zone-1");
}

TEST_F(ProtocolFixture, ZoneQueryRejectsUnregisteredDroneAndBadSignature) {
  // Unregistered drone.
  ZoneQueryRequest request;
  request.drone_id = "drone-99";
  request.nonce = crypto::Bytes(16, 1);
  request.nonce_signature = crypto::Bytes(64, 0);
  EXPECT_FALSE(auditor_.query_zones(request).ok);

  // Registered drone, corrupted signature.
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  ZoneQueryRequest bad = client_.make_zone_query({{40.0, -89.0}, {41.0, -88.0}});
  bad.nonce_signature[0] ^= 0x01;
  EXPECT_FALSE(auditor_.query_zones(bad).ok);
  EXPECT_EQ(auditor_.query_zones(bad).error, "bad nonce signature");
}

TEST_F(ProtocolFixture, ZoneQueryNonceReplayRejected) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const ZoneQueryRequest request =
      client_.make_zone_query({{40.0, -89.0}, {41.0, -88.0}});
  EXPECT_TRUE(auditor_.query_zones(request).ok);
  const ZoneQueryResponse replayed = auditor_.query_zones(request);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.error, "replayed nonce");
}

TEST_F(ProtocolFixture, ZoneQueryShortNonceRejected) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  ZoneQueryRequest request = client_.make_zone_query({{40.0, -89.0}, {41.0, -88.0}});
  request.nonce = crypto::Bytes(4, 9);
  EXPECT_EQ(auditor_.query_zones(request).error, "nonce too short");
}

TEST_F(ProtocolFixture, CompliantFlightEndToEnd) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  for (const geo::GeoZone& z : scenario.zones) {
    ASSERT_FALSE(owner_.register_zone(bus_, z, "house").empty());
  }
  ASSERT_EQ(auditor_.zone_count(), 94u);

  const ProofOfAlibi poa = fly_scenario(scenario);
  ASSERT_GT(poa.samples.size(), 1u);

  const auto verdict = client_.submit_poa(bus_, poa);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->accepted) << verdict->detail;
  EXPECT_TRUE(verdict->compliant) << verdict->detail;
  EXPECT_EQ(auditor_.retained_poa_count(), 1u);
}

TEST_F(ProtocolFixture, EncryptedPoaVerifiesAfterDecryption) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  owner_.register_zone(bus_, scenario.zones[0], "airport");

  const ProofOfAlibi poa = fly_scenario(scenario, /*encrypt=*/true);
  ASSERT_TRUE(poa.encrypted);
  const auto verdict = client_.submit_poa(bus_, poa);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->accepted) << verdict->detail;
  EXPECT_TRUE(verdict->compliant);
}

TEST_F(ProtocolFixture, UnknownDronePoaRejected) {
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  ProofOfAlibi poa = fly_scenario(scenario);
  poa.drone_id = "drone-404";
  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.detail, "unknown drone");
}

TEST_F(ProtocolFixture, EmptyPoaRejected) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  ProofOfAlibi poa;
  poa.drone_id = client_.id();
  EXPECT_FALSE(auditor_.verify_poa(poa, kT0).accepted);
}

TEST_F(ProtocolFixture, UnparseablePoaBytesRejected) {
  const PoaVerdict verdict = auditor_.verify_poa_bytes(crypto::Bytes{1, 2, 3}, kT0);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.detail, "unparseable PoA");
}

TEST_F(ProtocolFixture, NonCompliantFlightDetected) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  // Zone directly on the flight path: the honest PoA cannot prove alibi.
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  const geo::Vec2 mid = scenario.route.local_position_at(kT0 + 300.0);
  const geo::GeoZone on_path{scenario.frame.to_geo(mid), 80.0};
  owner_.register_zone(bus_, on_path, "on the route");

  const ProofOfAlibi poa = fly_scenario(scenario);
  const auto verdict = client_.submit_poa(bus_, poa);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->accepted);          // signatures are genuine
  EXPECT_FALSE(verdict->compliant);        // but the alibi fails
  EXPECT_GT(verdict->violation_count, 0u);
}

TEST_F(ProtocolFixture, AccusationAdjudicatedFromRetainedPoa) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  const ZoneId zone_id = owner_.register_zone(bus_, scenario.zones[10], "house 10");
  ASSERT_FALSE(zone_id.empty());

  const ProofOfAlibi poa = fly_scenario(scenario);
  ASSERT_TRUE(client_.submit_poa(bus_, poa)->compliant);

  // Owner accuses for a time inside the flight: the retained PoA clears it.
  const AccusationRequest accusation =
      owner_.make_accusation(zone_id, client_.id(), kT0 + 60.0);
  const AccusationResponse response = auditor_.handle_accusation(accusation);
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.alibi_holds) << response.detail;
}

TEST_F(ProtocolFixture, AccusationWithoutPoaOnRecordFails) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const ZoneId zone_id = owner_.register_zone(bus_, {{40.111, -88.221}, 30.0}, "z");
  const AccusationRequest accusation =
      owner_.make_accusation(zone_id, client_.id(), kT0 + 60.0);
  const AccusationResponse response = auditor_.handle_accusation(accusation);
  EXPECT_TRUE(response.ok);
  EXPECT_FALSE(response.alibi_holds);  // burden of proof on the operator
}

TEST_F(ProtocolFixture, AccusationOutsideFlightWindowFails) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  const ZoneId zone_id = owner_.register_zone(bus_, scenario.zones[0], "house");
  client_.submit_poa(bus_, fly_scenario(scenario));

  const AccusationRequest accusation =
      owner_.make_accusation(zone_id, client_.id(), kT0 + 9999.0);
  const AccusationResponse response = auditor_.handle_accusation(accusation);
  EXPECT_TRUE(response.ok);
  EXPECT_FALSE(response.alibi_holds);
}

TEST_F(ProtocolFixture, AccusationSignatureChecked) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const ZoneId zone_id = owner_.register_zone(bus_, {{40.111, -88.221}, 30.0}, "z");

  AccusationRequest forged = owner_.make_accusation(zone_id, client_.id(), kT0);
  forged.incident_time += 1.0;  // payload changed after signing
  const AccusationResponse response = auditor_.handle_accusation(forged);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.detail, "bad owner signature");
}

TEST_F(ProtocolFixture, PoaRetentionExpires) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  const ProofOfAlibi poa = fly_scenario(scenario);
  auditor_.verify_poa(poa, kT0);
  EXPECT_EQ(auditor_.retained_poa_count(), 1u);

  auditor_.expire_poas(kT0 + auditor_.params().poa_retention_seconds + 1.0);
  EXPECT_EQ(auditor_.retained_poa_count(), 0u);
}

TEST_F(ProtocolFixture, PolygonZoneReducedToSmallestEnclosingCircle) {
  // A 100 m square lot: the covering circle has radius ~70.7 m.
  const geo::LocalFrame frame(geo::GeoPoint{40.111, -88.221});
  std::vector<geo::GeoPoint> vertices;
  for (const geo::Vec2 v :
       {geo::Vec2{0, 0}, geo::Vec2{100, 0}, geo::Vec2{100, 100}, geo::Vec2{0, 100}}) {
    vertices.push_back(frame.to_geo(v));
  }
  const crypto::Bytes sig = owner_.sign_polygon(vertices, "square lot");
  const RegisterZoneResponse response =
      auditor_.register_polygon_zone(vertices, owner_.public_key(), sig, "square lot");
  ASSERT_TRUE(response.ok);

  const ZoneRecord& record = auditor_.zones().at(response.zone_id);
  EXPECT_NEAR(record.zone.radius_m, 70.71, 0.1);
  // Center near the square's middle.
  EXPECT_NEAR(frame.to_local(record.zone.center).x, 50.0, 0.5);
  EXPECT_NEAR(frame.to_local(record.zone.center).y, 50.0, 0.5);
}

TEST_F(ProtocolFixture, PolygonZoneRejectsBadSignatureOrTooFewVertices) {
  const std::vector<geo::GeoPoint> two{{40.0, -88.0}, {40.1, -88.0}};
  EXPECT_FALSE(
      auditor_.register_polygon_zone(two, owner_.public_key(), {}, "x").ok);

  std::vector<geo::GeoPoint> tri{{40.0, -88.0}, {40.1, -88.0}, {40.0, -88.1}};
  crypto::Bytes sig = owner_.sign_polygon(tri, "lot");
  sig[0] ^= 1;
  EXPECT_FALSE(
      auditor_.register_polygon_zone(tri, owner_.public_key(), sig, "lot").ok);
}

TEST_F(ProtocolFixture, TransportDropSurfacesAsTimeout) {
  ASSERT_TRUE(client_.register_with_auditor(bus_));
  net::MessageBus::FaultConfig faults;
  faults.drop_probability = 1.0;
  faults.seed = 3;
  bus_.set_faults(faults);
  EXPECT_THROW(client_.query_zones(bus_, {{40.0, -89.0}, {41.0, -88.0}}),
               net::TimeoutError);
}

TEST_F(ProtocolFixture, DuplicatedRegistrationIsSafeViaTeeKeyCheck) {
  // The bus may duplicate a registration request; the TEE-key uniqueness
  // rule keeps the database consistent (one drone, first id wins).
  net::MessageBus::FaultConfig faults;
  faults.duplicate_probability = 1.0;
  faults.seed = 5;
  bus_.set_faults(faults);
  EXPECT_TRUE(client_.register_with_auditor(bus_));
  EXPECT_EQ(auditor_.drone_count(), 1u);
}

}  // namespace
}  // namespace alidrone::core
