#include <gtest/gtest.h>

#include <optional>

#include "crypto/prime.h"
#include "crypto/rsa.h"

namespace alidrone::crypto {
namespace {

// Key generation is the slow part; share fixtures across tests.
const RsaKeyPair& test_key_512() {
  static const RsaKeyPair kp = [] {
    DeterministicRandom rng("alidrone-test-key-512");
    return generate_rsa_keypair(512, rng);
  }();
  return kp;
}

const RsaKeyPair& test_key_1024() {
  static const RsaKeyPair kp = [] {
    DeterministicRandom rng("alidrone-test-key-1024");
    return generate_rsa_keypair(1024, rng);
  }();
  return kp;
}

TEST(Prime, SmallKnownPrimesAndComposites) {
  DeterministicRandom rng(1);
  for (std::int64_t p : {2, 3, 5, 7, 65537, 1000000007}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
  for (std::int64_t c : {0, 1, 4, 9, 561, 41041, 1000000008}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  DeterministicRandom rng(2);
  for (std::int64_t c : {561, 1105, 1729, 2465, 2821, 6601, 8911}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, LargeKnownPrime) {
  DeterministicRandom rng(3);
  // 2^127 - 1 (Mersenne prime).
  const BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 128) - BigInt(1), rng));
}

TEST(Prime, GeneratedPrimeHasRequestedSizeAndPassesTest) {
  DeterministicRandom rng(4);
  const BigInt p = generate_prime(256, rng);
  EXPECT_EQ(p.bit_length(), 256u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, rng, 64));
}

TEST(Prime, TrialDivisionCatchesSmallFactors) {
  EXPECT_FALSE(passes_trial_division(BigInt(3) * BigInt(65521)));
  EXPECT_TRUE(passes_trial_division(BigInt::from_string("0xffffffffffffffc5")));
  // A small prime itself must pass.
  EXPECT_TRUE(passes_trial_division(BigInt(65521)));
}

TEST(RsaKeygen, KeyPairInternallyConsistent) {
  const RsaKeyPair& kp = test_key_512();
  EXPECT_EQ(kp.pub.n, kp.priv.n);
  EXPECT_EQ(kp.pub.modulus_bits(), 512u);
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.priv.n);
  EXPECT_TRUE(kp.priv.has_crt());
  EXPECT_GT(kp.priv.p, kp.priv.q);
  // e*d = 1 mod phi
  const BigInt phi = (kp.priv.p - BigInt(1)) * (kp.priv.q - BigInt(1));
  EXPECT_EQ((kp.priv.e * kp.priv.d).mod(phi), BigInt(1));
  // CRT params
  EXPECT_EQ(kp.priv.d_p, kp.priv.d % (kp.priv.p - BigInt(1)));
  EXPECT_EQ((kp.priv.q_inv * kp.priv.q).mod(kp.priv.p), BigInt(1));
}

TEST(RsaKeygen, DeterministicSeedsReproduceKeys) {
  DeterministicRandom rng1("fixed-seed");
  DeterministicRandom rng2("fixed-seed");
  const RsaKeyPair a = generate_rsa_keypair(512, rng1);
  const RsaKeyPair b = generate_rsa_keypair(512, rng2);
  EXPECT_EQ(a.pub.n, b.pub.n);
  EXPECT_EQ(a.priv.d, b.priv.d);
}

TEST(RsaKeygen, RejectsBadParameters) {
  DeterministicRandom rng(1);
  EXPECT_THROW(generate_rsa_keypair(128, rng), std::invalid_argument);
  EXPECT_THROW(generate_rsa_keypair(513, rng), std::invalid_argument);
}

TEST(RsaPrivateOp, CrtMatchesPlainExponentiation) {
  const RsaKeyPair& kp = test_key_512();
  DeterministicRandom rng(11);
  for (int i = 0; i < 5; ++i) {
    const BigInt m = rng.random_range(BigInt(2), kp.priv.n - BigInt(2));
    RsaPrivateKey no_crt = kp.priv;
    no_crt.p = BigInt();
    no_crt.q = BigInt();
    EXPECT_EQ(rsa_private_op(kp.priv, m), rsa_private_op(no_crt, m));
  }
}

TEST(RsaPrivateOp, RoundTripsWithPublicExponent) {
  const RsaKeyPair& kp = test_key_512();
  const BigInt m(123456789);
  const BigInt s = rsa_private_op(kp.priv, m);
  EXPECT_EQ(s.mod_pow(kp.pub.e, kp.pub.n), m);
}

TEST(RsaPrivateOp, BlindedMatchesUnblinded) {
  // Kocher blinding must be a pure countermeasure: same output, random
  // internal representative.
  const RsaKeyPair& kp = test_key_512();
  DeterministicRandom value_rng(31);
  for (int i = 0; i < 5; ++i) {
    const BigInt m = value_rng.random_range(BigInt(2), kp.priv.n - BigInt(2));
    DeterministicRandom blind_a(100 + i);
    DeterministicRandom blind_b(200 + i);  // different blinding factors...
    const BigInt plain = rsa_private_op(kp.priv, m);
    EXPECT_EQ(rsa_private_op_blinded(kp.priv, m, blind_a), plain);
    EXPECT_EQ(rsa_private_op_blinded(kp.priv, m, blind_b), plain);  // ...same result
  }
}

TEST(RsaPrivateOp, BlindedRejectsOutOfRange) {
  const RsaKeyPair& kp = test_key_512();
  DeterministicRandom rng(1);
  EXPECT_THROW(rsa_private_op_blinded(kp.priv, kp.priv.n, rng), std::domain_error);
  EXPECT_THROW(rsa_private_op_blinded(kp.priv, BigInt(-1), rng), std::domain_error);
}

TEST(RsaSign, SignVerifyRoundTripSha1AndSha256) {
  const RsaKeyPair& kp = test_key_1024();
  const Bytes msg = to_bytes("GPS sample 40.1164,-88.2434 @ t=1528395000");
  for (const HashAlgorithm h : {HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const Bytes sig = rsa_sign(kp.priv, msg, h);
    EXPECT_EQ(sig.size(), kp.pub.modulus_bytes());
    EXPECT_TRUE(rsa_verify(kp.pub, msg, sig, h)) << to_string(h);
  }
}

TEST(RsaSign, TamperedMessageFailsVerification) {
  const RsaKeyPair& kp = test_key_1024();
  Bytes msg = to_bytes("lat=40.1164,lon=-88.2434,t=100.0");
  const Bytes sig = rsa_sign(kp.priv, msg, HashAlgorithm::kSha256);
  msg[4] ^= 0x01;  // flip one bit of the latitude
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
}

TEST(RsaSign, TamperedSignatureFailsVerification) {
  const RsaKeyPair& kp = test_key_1024();
  const Bytes msg = to_bytes("alibi");
  Bytes sig = rsa_sign(kp.priv, msg, HashAlgorithm::kSha256);
  sig[sig.size() / 2] ^= 0x80;
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
}

TEST(RsaSign, WrongKeyFailsVerification) {
  const RsaKeyPair& kp = test_key_1024();
  DeterministicRandom rng("attacker-key");
  const RsaKeyPair attacker = generate_rsa_keypair(1024, rng);
  const Bytes msg = to_bytes("alibi");
  const Bytes sig = rsa_sign(attacker.priv, msg, HashAlgorithm::kSha256);
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
}

TEST(RsaSign, WrongHashAlgorithmFailsVerification) {
  const RsaKeyPair& kp = test_key_1024();
  const Bytes msg = to_bytes("alibi");
  const Bytes sig = rsa_sign(kp.priv, msg, HashAlgorithm::kSha1);
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig, HashAlgorithm::kSha256));
}

TEST(RsaVerify, MalformedSignaturesRejectedWithoutThrowing) {
  const RsaKeyPair& kp = test_key_1024();
  const Bytes msg = to_bytes("alibi");
  EXPECT_FALSE(rsa_verify(kp.pub, msg, Bytes{}, HashAlgorithm::kSha256));
  EXPECT_FALSE(rsa_verify(kp.pub, msg, Bytes(10, 0xFF), HashAlgorithm::kSha256));
  // Signature numerically >= n.
  const Bytes too_big = (kp.pub.n + BigInt(1)).to_bytes(kp.pub.modulus_bytes() + 1);
  EXPECT_FALSE(rsa_verify(kp.pub, msg,
                          std::span<const std::uint8_t>(too_big).subspan(1),
                          HashAlgorithm::kSha256));
}

TEST(RsaEncrypt, EncryptDecryptRoundTrip) {
  const RsaKeyPair& kp = test_key_1024();
  DeterministicRandom rng(21);
  const Bytes msg = to_bytes("session-key-material-0123456789");
  const Bytes ct = rsa_encrypt(kp.pub, msg, rng);
  EXPECT_EQ(ct.size(), kp.pub.modulus_bytes());
  const std::optional<Bytes> pt = rsa_decrypt(kp.priv, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaEncrypt, RandomizedPaddingProducesDistinctCiphertexts) {
  const RsaKeyPair& kp = test_key_1024();
  DeterministicRandom rng(22);
  const Bytes msg = to_bytes("same message");
  EXPECT_NE(rsa_encrypt(kp.pub, msg, rng), rsa_encrypt(kp.pub, msg, rng));
}

TEST(RsaEncrypt, MessageTooLongThrows) {
  const RsaKeyPair& kp = test_key_512();
  DeterministicRandom rng(23);
  const Bytes msg(kp.pub.modulus_bytes() - 10, 0x41);  // needs k-11 max
  EXPECT_THROW(rsa_encrypt(kp.pub, msg, rng), std::length_error);
  const Bytes ok(kp.pub.modulus_bytes() - 11, 0x41);
  EXPECT_NO_THROW(rsa_encrypt(kp.pub, ok, rng));
}

TEST(RsaDecrypt, CorruptedCiphertextRejected) {
  const RsaKeyPair& kp = test_key_1024();
  DeterministicRandom rng(24);
  Bytes ct = rsa_encrypt(kp.pub, to_bytes("secret"), rng);
  ct[0] ^= 0x01;
  // Either padding fails (nullopt) or decrypts to something else; both are
  // acceptable for PKCS1 v1.5, but it must not equal the plaintext.
  const auto pt = rsa_decrypt(kp.priv, ct);
  if (pt.has_value()) EXPECT_NE(*pt, to_bytes("secret"));
  EXPECT_EQ(rsa_decrypt(kp.priv, Bytes(3, 0)), std::nullopt);
}

TEST(RsaPublicKey, FingerprintStableAndDistinct) {
  const RsaKeyPair& a = test_key_512();
  const RsaKeyPair& b = test_key_1024();
  EXPECT_EQ(a.pub.fingerprint(), a.pub.fingerprint());
  EXPECT_NE(a.pub.fingerprint(), b.pub.fingerprint());
  EXPECT_EQ(a.pub.fingerprint().size(), 32u);
}

// Property sweep: sign/verify across key sizes and both digests.
struct RsaParam {
  std::size_t bits;
  HashAlgorithm hash;
};

class RsaRoundTrip : public ::testing::TestWithParam<RsaParam> {};

TEST_P(RsaRoundTrip, SignVerifyAndEncryptDecrypt) {
  const auto [bits, hash] = GetParam();
  DeterministicRandom rng("rsa-roundtrip-" + std::to_string(bits));
  const RsaKeyPair kp = generate_rsa_keypair(bits, rng);

  for (int i = 0; i < 3; ++i) {
    const Bytes msg = rng.bytes(20 + i * 40);
    const Bytes sig = rsa_sign(kp.priv, msg, hash);
    EXPECT_TRUE(rsa_verify(kp.pub, msg, sig, hash));

    Bytes corrupted = sig;
    corrupted[static_cast<std::size_t>(i) % corrupted.size()] ^= 0x40;
    EXPECT_FALSE(rsa_verify(kp.pub, msg, corrupted, hash));
  }

  const Bytes secret = rng.bytes(24);
  EXPECT_EQ(rsa_decrypt(kp.priv, rsa_encrypt(kp.pub, secret, rng)), secret);
}

INSTANTIATE_TEST_SUITE_P(
    KeySizesAndHashes, RsaRoundTrip,
    ::testing::Values(RsaParam{512, HashAlgorithm::kSha1},
                      RsaParam{512, HashAlgorithm::kSha256},
                      RsaParam{768, HashAlgorithm::kSha256},
                      RsaParam{1024, HashAlgorithm::kSha1},
                      RsaParam{1024, HashAlgorithm::kSha256}));

}  // namespace
}  // namespace alidrone::crypto
