// PoaStore's in-memory per-drone index vs the directory on disk: after
// any sequence of saves and expiries, load_for_drone (index-served) must
// agree exactly with a fresh PoaStore that rebuilds its index by
// scanning the same directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/poa_store.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;

class PoaStoreIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("alidrone-poa-index-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ProofOfAlibi make_poa(const DroneId& drone_id, double t) {
    ProofOfAlibi poa;
    poa.drone_id = drone_id;
    poa.mode = AuthMode::kRsaPerSample;
    poa.hash = crypto::HashAlgorithm::kSha1;
    gps::GpsFix fix;
    fix.position = geo::GeoPoint{40.0, -88.0};
    fix.unix_time = t;
    SignedSample sample;
    sample.sample = tee::encode_sample(fix);
    sample.signature = crypto::rsa_sign(keys_.priv, sample.sample, poa.hash);
    poa.samples.push_back(std::move(sample));
    return poa;
  }

  /// load_for_drone from `store` must match a fresh store that re-scans
  /// the directory (same proofs, same order).
  void expect_index_matches_rescan(const PoaStore& store,
                                   const std::vector<DroneId>& drones) {
    const PoaStore fresh(store.directory());
    for (const DroneId& id : drones) {
      const auto indexed = store.load_for_drone(id);
      const auto scanned = fresh.load_for_drone(id);
      ASSERT_EQ(indexed.size(), scanned.size()) << "drone " << id;
      for (std::size_t i = 0; i < indexed.size(); ++i) {
        EXPECT_EQ(indexed[i].submission_time, scanned[i].submission_time);
        EXPECT_EQ(indexed[i].poa.serialize(), scanned[i].poa.serialize());
      }
    }
  }

  std::filesystem::path dir_;
  crypto::DeterministicRandom key_rng_{std::string_view("poa-index-keys")};
  crypto::RsaKeyPair keys_ = crypto::generate_rsa_keypair(512, key_rng_);
};

TEST_F(PoaStoreIndexTest, IndexAgreesWithDirectoryScanAfterExpiry) {
  const std::vector<DroneId> drones{"drone-1", "drone-2", "drone-3"};
  PoaStore store(dir_);
  for (int i = 0; i < 12; ++i) {
    const DroneId& id = drones[static_cast<std::size_t>(i) % drones.size()];
    const double t = kT0 + 100.0 * i;
    store.save(id, t, make_poa(id, t));
  }
  expect_index_matches_rescan(store, drones);

  // Expire the first half; files and index entries must both go.
  const std::size_t deleted = store.expire_before(kT0 + 100.0 * 6);
  EXPECT_EQ(deleted, 6u);
  EXPECT_EQ(store.count(), 6u);  // directory scan agrees on the total
  expect_index_matches_rescan(store, drones);

  // Expire everything.
  EXPECT_EQ(store.expire_before(kT0 + 1e9), 6u);
  EXPECT_EQ(store.count(), 0u);
  expect_index_matches_rescan(store, drones);
  for (const DroneId& id : drones) {
    EXPECT_TRUE(store.load_for_drone(id).empty());
  }
}

TEST_F(PoaStoreIndexTest, SavesAfterExpiryLandInTheIndex) {
  PoaStore store(dir_);
  store.save("drone-1", kT0, make_poa("drone-1", kT0));
  ASSERT_EQ(store.expire_before(kT0 + 1.0), 1u);

  // New saves after a full expiry must be indexed (the per-drone key was
  // erased, so this exercises re-creation).
  store.save("drone-1", kT0 + 10.0, make_poa("drone-1", kT0 + 10.0));
  const auto loaded = store.load_for_drone("drone-1");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].submission_time, kT0 + 10.0);
  expect_index_matches_rescan(store, {"drone-1"});
}

TEST_F(PoaStoreIndexTest, LoadForDroneIsSortedBySubmissionTime) {
  PoaStore store(dir_);
  // Save out of time order; the index keeps the per-drone list sorted.
  for (const double t : {kT0 + 300.0, kT0 + 100.0, kT0 + 200.0}) {
    store.save("drone-9", t, make_poa("drone-9", t));
  }
  const auto loaded = store.load_for_drone("drone-9");
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_LT(loaded[0].submission_time, loaded[1].submission_time);
  EXPECT_LT(loaded[1].submission_time, loaded[2].submission_time);
  expect_index_matches_rescan(store, {"drone-9"});
}

TEST_F(PoaStoreIndexTest, ReopenedStoreIndexesExistingFiles) {
  {
    PoaStore store(dir_);
    store.save("drone-a", kT0, make_poa("drone-a", kT0));
    store.save("drone-b", kT0 + 1.0, make_poa("drone-b", kT0 + 1.0));
  }
  PoaStore reopened(dir_);
  EXPECT_EQ(reopened.load_for_drone("drone-a").size(), 1u);
  EXPECT_EQ(reopened.load_for_drone("drone-b").size(), 1u);
  // Sequence numbers continue: a new save must not clobber old files.
  reopened.save("drone-a", kT0 + 2.0, make_poa("drone-a", kT0 + 2.0));
  EXPECT_EQ(reopened.count(), 3u);
  EXPECT_EQ(reopened.load_for_drone("drone-a").size(), 2u);
}

}  // namespace
}  // namespace alidrone::core
