// Multi-drone ingestion pipeline (labelled `scale` in ctest; also run
// under ALIDRONE_SANITIZE=thread).
//
// The tentpole claim under test: for ANY shard count, verifier thread
// count or batch size, the AuditorIngest pipeline produces verdicts and
// audit logs byte-identical to the serial, unsharded path — plus the
// backpressure (kRetryLater) and exactly-once (content-digest dedup)
// semantics around it, including end-to-end through ReliableChannel
// under chaos-style fault schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/ingest.h"
#include "core/messages.h"
#include "core/poa.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "net/message_bus.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resilience/reliable_channel.h"
#include "resilience/sim_clock.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;

struct Fleet {
  std::vector<RegisterDroneRequest> registrations;
  std::vector<DroneId> drone_ids;
  std::vector<crypto::Bytes> frames;  // serialized SubmitPoaRequest, unique
};

crypto::Bytes encode_fix(double lat, double lon, double t) {
  gps::GpsFix fix;
  fix.position = geo::GeoPoint{lat, lon};
  fix.unix_time = t;
  return tee::encode_sample(fix);
}

/// A small fleet with a mixed corpus: valid proofs plus deterministic
/// defects (bad signature, unknown drone, unordered samples) so the
/// pipeline's verdict stream exercises accept AND reject paths.
/// `valid_only` restricts to accepted proofs (the chaos test needs every
/// redelivery to hit the dedup cache, which only caches accepted ones).
Fleet make_fleet(std::size_t n_drones, std::size_t proofs_per_drone,
                 bool valid_only = false) {
  Fleet fleet;
  crypto::DeterministicRandom key_rng(std::string_view("ingest-fleet-keys"));
  std::vector<crypto::RsaKeyPair> tee_keys;
  for (std::size_t d = 0; d < n_drones; ++d) {
    tee_keys.push_back(crypto::generate_rsa_keypair(512, key_rng));
    const crypto::RsaKeyPair op = crypto::generate_rsa_keypair(512, key_rng);
    RegisterDroneRequest reg;
    reg.operator_key_n = op.pub.n.to_bytes();
    reg.operator_key_e = op.pub.e.to_bytes();
    reg.tee_key_n = tee_keys.back().pub.n.to_bytes();
    reg.tee_key_e = tee_keys.back().pub.e.to_bytes();
    fleet.registrations.push_back(std::move(reg));
  }

  {  // learn the ids registration order will assign
    crypto::DeterministicRandom rng(std::string_view("ingest-fleet-probe"));
    Auditor probe(512, rng);
    for (const auto& reg : fleet.registrations) {
      fleet.drone_ids.push_back(probe.register_drone(reg).drone_id);
    }
  }

  for (std::size_t d = 0; d < n_drones; ++d) {
    for (std::size_t p = 0; p < proofs_per_drone; ++p) {
      ProofOfAlibi poa;
      poa.drone_id = fleet.drone_ids[d];
      poa.mode = AuthMode::kRsaPerSample;
      poa.hash = crypto::HashAlgorithm::kSha1;
      const double base =
          kT0 + static_cast<double>((d * proofs_per_drone + p) * 16);
      for (std::size_t s = 0; s < 3; ++s) {
        SignedSample sample;
        sample.sample = encode_fix(40.0 + 0.001 * static_cast<double>(d),
                                   -88.0 + 0.001 * static_cast<double>(p),
                                   base + static_cast<double>(s));
        sample.signature =
            crypto::rsa_sign(tee_keys[d].priv, sample.sample, poa.hash);
        poa.samples.push_back(std::move(sample));
      }
      if (!valid_only) {
        switch ((d * proofs_per_drone + p) % 7) {
          case 2: poa.samples[0].signature[3] ^= 0x5A; break;    // bad sig
          case 4: poa.drone_id = "drone-unregistered"; break;    // unknown
          case 6: std::swap(poa.samples.front(), poa.samples.back()); break;
          default: break;
        }
      }
      SubmitPoaRequest request;
      request.poa = poa.serialize();
      fleet.frames.push_back(request.encode());
    }
  }
  return fleet;
}

struct TestAuditor {
  crypto::DeterministicRandom rng;
  Auditor auditor;
  std::shared_ptr<AuditLog> log = std::make_shared<AuditLog>();

  TestAuditor(const Fleet& fleet, std::size_t shards,
              obs::MetricsRegistry* metrics = nullptr)
      : rng(std::string_view("ingest-test-auditor")),
        auditor(512, rng,
                [shards, metrics] {
                  ProtocolParams p;
                  p.auditor_shards = shards;
                  p.metrics = metrics;
                  return p;
                }()) {
    auditor.attach_audit_log(log);
    for (const auto& reg : fleet.registrations) auditor.register_drone(reg);
  }
};

/// The unbatched reference: decode + verify_poa_bytes in submission
/// order, with the same end-of-proof submission time the pipeline uses.
std::vector<crypto::Bytes> serial_verdicts(Auditor& auditor,
                                           const Fleet& fleet) {
  std::vector<crypto::Bytes> verdicts;
  for (const crypto::Bytes& frame : fleet.frames) {
    const auto poa_bytes = SubmitPoaRequest::decode_view(frame);
    PoaView view;
    PoaView::parse_into(*poa_bytes, view);
    const double t = view.end_time().value_or(0.0);
    verdicts.push_back(auditor.verify_poa_bytes(*poa_bytes, t).encode());
  }
  return verdicts;
}

void expect_logs_identical(const AuditLog& a, const AuditLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].to_line(), b.events()[i].to_line())
        << "audit event " << i;
  }
}

TEST(IngestScale, PipelineMatchesSerialForAnyShardAndThreadCount) {
  const Fleet fleet = make_fleet(6, 5);
  TestAuditor reference(fleet, 1);
  const std::vector<crypto::Bytes> expected =
      serial_verdicts(reference.auditor, fleet);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
      TestAuditor sharded(fleet, shards);
      AuditorIngest::Config config;
      config.queue_capacity = 8;
      config.max_batch = 4;
      config.verify_threads = threads;
      AuditorIngest ingest(sharded.auditor, config);

      // Single producer: admission order == submission order, so the
      // audit log must be byte-identical, not just equivalent.
      std::vector<crypto::Bytes> got;
      for (const crypto::Bytes& frame : fleet.frames) {
        got.push_back(ingest.submit(frame));
      }
      ingest.stop();

      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "shards=" << shards << " threads=" << threads << " frame " << i;
      }
      expect_logs_identical(*reference.log, *sharded.log);
      EXPECT_EQ(sharded.auditor.retained_poa_count(),
                reference.auditor.retained_poa_count());
    }
  }
}

TEST(IngestScale, ConcurrentProducersMatchSerialVerdicts) {
  const Fleet fleet = make_fleet(8, 4);
  TestAuditor reference(fleet, 1);
  const std::vector<crypto::Bytes> expected =
      serial_verdicts(reference.auditor, fleet);

  TestAuditor sharded(fleet, 8);
  AuditorIngest::Config config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.verify_threads = 4;
  AuditorIngest ingest(sharded.auditor, config);

  constexpr std::size_t kProducers = 4;
  std::vector<crypto::Bytes> got(fleet.frames.size());
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < fleet.frames.size(); i += kProducers) {
        crypto::Bytes reply = ingest.submit(fleet.frames[i]);
        while (net::is_retry_later(reply)) {
          std::this_thread::yield();
          reply = ingest.submit(fleet.frames[i]);
        }
        got[i] = std::move(reply);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ingest.stop();

  // Interleaving is nondeterministic, but every per-frame verdict is
  // order-independent (unique frames, pure evaluation), so each must be
  // byte-identical to the serial path's.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "frame " << i;
  }
  EXPECT_EQ(sharded.auditor.retained_poa_count(),
            reference.auditor.retained_poa_count());

  // The audit log's ORDER follows admission order; its contents must be
  // the same multiset of events as the serial run.
  ASSERT_EQ(sharded.log->size(), reference.log->size());
  std::multiset<std::string> a, b;
  for (const auto& e : reference.log->events()) a.insert(e.to_line());
  for (const auto& e : sharded.log->events()) b.insert(e.to_line());
  EXPECT_EQ(a, b);
}

// The observability acceptance bar: a deterministic scenario exports a
// byte-identical metrics snapshot no matter how many verifier threads the
// pipeline fans evaluation out to. Every frame lands in one multi-frame
// batch (via the pause gate), so verify_threads > 0 genuinely runs the
// parallel path.
TEST(IngestScale, RegistrySnapshotsByteIdenticalAcrossThreadCounts) {
  const Fleet fleet = make_fleet(4, 4);  // mixed corpus: reject paths too
  std::string baseline;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    obs::MetricsRegistry registry;
    TestAuditor sharded(fleet, 4, &registry);
    AuditorIngest::Config config;
    config.queue_capacity = fleet.frames.size() + 8;
    config.max_batch = fleet.frames.size();
    config.verify_threads = threads;
    AuditorIngest ingest(sharded.auditor, config);

    // Freeze the gate with the first frame held, queue the rest behind
    // it, then release: the whole fleet evaluates as a single batch.
    ingest.pause();
    std::vector<std::thread> producers;
    producers.emplace_back([&] { ingest.submit(fleet.frames[0]); });
    while (ingest.counters().gate_waits == 0) std::this_thread::yield();
    for (std::size_t i = 1; i < fleet.frames.size(); ++i) {
      producers.emplace_back([&, i] { ingest.submit(fleet.frames[i]); });
    }
    while (ingest.counters().admitted < fleet.frames.size()) {
      std::this_thread::yield();
    }
    ingest.resume();
    for (std::thread& t : producers) t.join();
    ingest.stop();

    EXPECT_EQ(ingest.counters().batches, 1u);
    EXPECT_EQ(ingest.counters().max_batch_seen, fleet.frames.size());

    const std::string snapshot = registry.to_json();
    if (baseline.empty()) {
      baseline = snapshot;
    } else {
      EXPECT_EQ(snapshot, baseline) << "threads=" << threads;
    }
  }
}

TEST(IngestScale, SameBatchDuplicatesCommitExactlyOnce) {
  const Fleet fleet = make_fleet(1, 1, /*valid_only=*/true);
  TestAuditor sharded(fleet, 4);
  AuditorIngest::Config config;
  config.queue_capacity = 4;
  config.max_batch = 4;
  AuditorIngest ingest(sharded.auditor, config);

  // Pause, then land two copies of the same frame in one batch: the
  // first is popped and held at the gate, the second queues behind it
  // (its digest is not cached yet — nothing has committed).
  ingest.pause();
  std::thread first([&] { ingest.submit(fleet.frames[0]); });
  while (ingest.counters().gate_waits == 0) std::this_thread::yield();
  std::thread second([&] { ingest.submit(fleet.frames[0]); });
  while (ingest.counters().admitted < 2) std::this_thread::yield();
  ingest.resume();
  first.join();
  second.join();
  ingest.stop();

  const auto counters = ingest.counters();
  EXPECT_EQ(counters.committed, 1u);   // exactly-once
  EXPECT_EQ(counters.duplicates, 1u);  // the second copy hit the commit-time re-check
  EXPECT_EQ(sharded.auditor.retained_poa_count(), 1u);

  // A later resubmission is answered straight from the cache.
  const crypto::Bytes again = ingest.submit(fleet.frames[0]);
  EXPECT_FALSE(net::is_retry_later(again));
  EXPECT_EQ(ingest.counters().committed, 1u);
}

TEST(IngestScale, FullQueueAnswersRetryLater) {
  const Fleet fleet = make_fleet(1, 5, /*valid_only=*/true);
  TestAuditor sharded(fleet, 4);
  AuditorIngest::Config config;
  config.queue_capacity = 2;
  config.max_batch = 4;
  AuditorIngest ingest(sharded.auditor, config);

  // Freeze the pipeline with one frame held at the gate, two more
  // filling the queue — admission capacity is now provably exhausted.
  ingest.pause();
  std::vector<std::thread> blocked;
  blocked.emplace_back([&] { ingest.submit(fleet.frames[0]); });
  while (ingest.counters().gate_waits == 0) std::this_thread::yield();
  blocked.emplace_back([&] { ingest.submit(fleet.frames[1]); });
  blocked.emplace_back([&] { ingest.submit(fleet.frames[2]); });
  while (ingest.counters().admitted < 3) std::this_thread::yield();

  // The next submission cannot queue: explicit backpressure, no blocking.
  const crypto::Bytes reply = ingest.submit(fleet.frames[3]);
  EXPECT_TRUE(net::is_retry_later(reply));
  EXPECT_EQ(ingest.counters().retry_later, 1u);

  ingest.resume();
  for (std::thread& t : blocked) t.join();
  ingest.stop();

  // The rejected frame was never admitted or committed...
  EXPECT_EQ(ingest.counters().committed, 3u);
  EXPECT_EQ(sharded.auditor.retained_poa_count(), 3u);
}

// End-to-end through ReliableChannel: kRetryLater is retried with backoff
// and never charged to the circuit breaker.
TEST(IngestScale, ReliableChannelRetriesRetryLater) {
  net::MessageBus bus;
  resilience::SimClock clock;
  resilience::ReliableChannel channel(bus, clock);

  // An endpoint that refuses twice, then serves.
  int calls = 0;
  bus.register_endpoint("auditor.submit_poa", [&](const crypto::Bytes&) {
    return ++calls <= 2 ? net::retry_later_reply() : crypto::Bytes{1, 2, 3};
  });

  const auto outcome = channel.request("auditor.submit_poa", crypto::Bytes{9});
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.response, (crypto::Bytes{1, 2, 3}));
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(channel.counters().retry_later_replies, 2u);
  EXPECT_EQ(channel.breaker_trips(), 0u);  // backpressure is not a fault

  // A server that never recovers exhausts the budget as a clean failure.
  bus.register_endpoint("auditor.submit_poa", [&](const crypto::Bytes&) {
    return net::retry_later_reply();
  });
  const auto exhausted = channel.request("auditor.submit_poa", crypto::Bytes{9});
  EXPECT_FALSE(exhausted.ok);
  EXPECT_FALSE(exhausted.circuit_open);
  EXPECT_NE(exhausted.error.find("busy"), std::string::npos);
  EXPECT_EQ(channel.breaker_trips(), 0u);
}

// Chaos-style schedule: response loss + latency windows on the submit
// endpoint. Every proof must still be verified exactly once and the
// verdict/audit-log stream must be byte-identical to the fault-free
// serial baseline (redeliveries are absorbed by the digest cache).
TEST(IngestScale, ChaosScheduleKeepsVerdictsAndLogByteIdentical) {
  const Fleet fleet = make_fleet(4, 4, /*valid_only=*/true);
  TestAuditor reference(fleet, 1);
  const std::vector<crypto::Bytes> expected =
      serial_verdicts(reference.auditor, fleet);

  // The black box: bus faults, channel retries, breaker transitions and
  // ingest batches all land in one recorder, dumped if the test fails.
  obs::FlightRecorder recorder(1337);

  TestAuditor sharded(fleet, 8);
  AuditorIngest::Config config;
  config.queue_capacity = 32;
  config.max_batch = 8;
  config.verify_threads = 2;
  config.recorder = &recorder;
  AuditorIngest ingest(sharded.auditor, config);

  net::MessageBus bus;
  resilience::SimClock clock;
  resilience::ReliableChannel::Config channel_config;
  channel_config.trace = &recorder;
  resilience::ReliableChannel channel(bus, clock, channel_config);
  ingest.bind(bus);

  net::MessageBus::FaultConfig faults;
  faults.seed = 1337;
  net::FaultWindow loss;
  loss.endpoint = "auditor.submit_poa";
  loss.start = 0.0;
  loss.end = 1e9;
  loss.kind = net::FaultKind::kResponseLoss;
  loss.probability = 0.3;
  faults.schedule.push_back(loss);
  net::FaultWindow latency;
  latency.endpoint = "auditor.submit_poa";
  latency.start = 0.0;
  latency.end = 1e9;
  latency.kind = net::FaultKind::kLatency;
  latency.probability = 0.5;
  latency.latency_s = 0.05;
  faults.schedule.push_back(latency);
  bus.set_faults(faults);

  for (std::size_t i = 0; i < fleet.frames.size(); ++i) {
    const auto outcome = channel.request("auditor.submit_poa", fleet.frames[i]);
    ASSERT_TRUE(outcome.ok) << "frame " << i << ": " << outcome.error;
    EXPECT_EQ(outcome.response, expected[i]) << "frame " << i;
  }
  ingest.stop();

  EXPECT_GT(channel.counters().retries, 0u);  // the schedule actually bit
  EXPECT_GT(recorder.recorded(), 0u);         // ... and was traced
  EXPECT_EQ(sharded.auditor.retained_poa_count(),
            reference.auditor.retained_poa_count());
  expect_logs_identical(*reference.log, *sharded.log);

  if (::testing::Test::HasFailure()) {
    std::cerr << "--- flight recorder dump (seed 1337) ---\n";
    recorder.dump(std::cerr);
  }
}

}  // namespace
}  // namespace alidrone::core
