// Privacy-preserving verification (Section VII-B3): the Auditor learns at
// most two trajectory points per accusation.
#include <gtest/gtest.h>

#include "core/privacy.h"
#include "geo/units.h"
#include "gps/receiver_sim.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
const geo::GeoPoint kAnchor{40.1100, -88.2200};

/// Build an honest plaintext PoA by driving a real TEE: straight-line
/// drive past a zone, one sample per second.
struct PrivacySetup {
  tee::DroneTee tee;
  ProofOfAlibi poa;

  PrivacySetup() : tee(make_config()) {
    const geo::LocalFrame frame(kAnchor);
    for (int i = 0; i < 30; ++i) {
      gps::GpsFix f;
      f.position = frame.to_geo({i * 10.0, 0.0});
      f.unix_time = kT0 + i;
      f.valid = true;

      // Feed via the UART path so the TA signs real driver data.
      gps::GpsReceiverSim::Config rc;
      rc.update_rate_hz = 5.0;
      rc.start_time = f.unix_time;
      gps::GpsReceiverSim sim(rc, [f](double t) {
        gps::GpsFix g = f;
        g.unix_time = t;
        return g;
      });
      for (const std::string& s : sim.advance_to(f.unix_time)) tee.feed_gps(s);

      const tee::InvokeResult result = tee.monitor().invoke(
          tee.sampler_uuid(),
          static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsAuth));
      poa.samples.push_back({result.outputs[0], result.outputs[1]});
    }
    poa.drone_id = "drone-1";
    poa.hash = crypto::HashAlgorithm::kSha1;
  }

  static tee::DroneTee::Config make_config() {
    tee::DroneTee::Config config;
    config.key_bits = 512;
    config.manufacturing_seed = "privacy-device";
    return config;
  }
};

PrivacySetup& setup() {
  static PrivacySetup s;
  return s;
}

TEST(PrivatePoa, CiphertextsHideSamples) {
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);
  ASSERT_EQ(bundle.upload.entries.size(), setup().poa.samples.size());
  ASSERT_EQ(bundle.secrets.keys.size(), setup().poa.samples.size());

  for (std::size_t i = 0; i < bundle.upload.entries.size(); ++i) {
    EXPECT_NE(bundle.upload.entries[i].ciphertext, setup().poa.samples[i].sample);
    // Without the key, the ciphertext does not decode as a sample... the
    // size matches, so check it decodes to garbage coordinates instead.
    const auto garbled = tee::decode_sample(bundle.upload.entries[i].ciphertext);
    if (garbled.has_value()) {
      const auto real = setup().poa.samples[i].fix();
      EXPECT_NE(garbled->unix_time, real->unix_time);
    }
  }
  // One-time keys are all distinct.
  for (std::size_t i = 1; i < bundle.secrets.keys.size(); ++i) {
    EXPECT_NE(bundle.secrets.keys[i - 1], bundle.secrets.keys[i]);
  }
}

TEST(PrivatePoa, RevealBracketsIncidentTime) {
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);

  const auto reveal = make_reveal(bundle.secrets, kT0 + 10.5);
  ASSERT_TRUE(reveal.has_value());
  EXPECT_EQ(reveal->first_index, 10u);

  EXPECT_FALSE(make_reveal(bundle.secrets, kT0 - 5.0).has_value());
  EXPECT_FALSE(make_reveal(bundle.secrets, kT0 + 1e6).has_value());

  // Edge: incident exactly at a sample time.
  const auto at_sample = make_reveal(bundle.secrets, kT0 + 10.0);
  ASSERT_TRUE(at_sample.has_value());
}

TEST(PrivatePoa, AuditAcceptsTrueAlibi) {
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);
  const geo::LocalFrame frame(kAnchor);
  // Zone 400 m north of the straight-line drive: alibi holds.
  const geo::GeoZone zone{frame.to_geo({100, 400}), 30.0};

  const double incident = kT0 + 10.5;
  const auto reveal = make_reveal(bundle.secrets, incident);
  ASSERT_TRUE(reveal.has_value());

  const PrivateAuditResult result =
      audit_reveal(bundle.upload, *reveal, setup().tee.verification_key(), zone,
                   incident, geo::kFaaMaxSpeedMps);
  EXPECT_TRUE(result.signatures_valid);
  EXPECT_TRUE(result.bracket_covers_incident);
  EXPECT_TRUE(result.alibi_holds);
  ASSERT_TRUE(result.first.has_value());
  EXPECT_NEAR(result.first->unix_time, kT0 + 10.0, 1e-6);
}

TEST(PrivatePoa, AuditRejectsAlibiNearZone) {
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);
  const geo::LocalFrame frame(kAnchor);
  // Zone right on the path at the incident location.
  const geo::GeoZone zone{frame.to_geo({105, 0}), 20.0};

  const double incident = kT0 + 10.5;
  const auto reveal = make_reveal(bundle.secrets, incident);
  const PrivateAuditResult result =
      audit_reveal(bundle.upload, *reveal, setup().tee.verification_key(), zone,
                   incident, geo::kFaaMaxSpeedMps);
  EXPECT_TRUE(result.signatures_valid);
  EXPECT_FALSE(result.alibi_holds);
}

TEST(PrivatePoa, WrongKeyFailsSignatureCheck) {
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);
  const geo::LocalFrame frame(kAnchor);
  const geo::GeoZone zone{frame.to_geo({100, 400}), 30.0};

  auto reveal = make_reveal(bundle.secrets, kT0 + 10.5);
  ASSERT_TRUE(reveal.has_value());
  reveal->key_first[0] ^= 0x01;  // operator reveals a wrong key

  const PrivateAuditResult result =
      audit_reveal(bundle.upload, *reveal, setup().tee.verification_key(), zone,
                   kT0 + 10.5, geo::kFaaMaxSpeedMps);
  EXPECT_FALSE(result.signatures_valid);
  EXPECT_FALSE(result.alibi_holds);
}

TEST(PrivatePoa, OperatorCannotPointAtWrongBracket) {
  // Revealing a pair that does not bracket the incident is detected.
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);
  const geo::LocalFrame frame(kAnchor);
  const geo::GeoZone zone{frame.to_geo({100, 400}), 30.0};

  KeyReveal dishonest;
  dishonest.first_index = 2;  // pair (2, 3) covers t in [kT0+2, kT0+3]
  dishonest.key_first = bundle.secrets.keys[2];
  dishonest.key_second = bundle.secrets.keys[3];

  const PrivateAuditResult result =
      audit_reveal(bundle.upload, dishonest, setup().tee.verification_key(), zone,
                   kT0 + 10.5, geo::kFaaMaxSpeedMps);
  EXPECT_TRUE(result.signatures_valid);
  EXPECT_FALSE(result.bracket_covers_incident);
  EXPECT_FALSE(result.alibi_holds);
}

TEST(PrivatePoa, OutOfRangeRevealIndexRejected) {
  crypto::DeterministicRandom rng("otk");
  const PrivatePoaBundle bundle = build_private_poa(setup().poa, rng);
  const geo::LocalFrame frame(kAnchor);
  const geo::GeoZone zone{frame.to_geo({100, 400}), 30.0};

  KeyReveal bad;
  bad.first_index = bundle.upload.entries.size();  // out of range
  bad.key_first = crypto::Bytes(32, 0);
  bad.key_second = crypto::Bytes(32, 0);
  const PrivateAuditResult result =
      audit_reveal(bundle.upload, bad, setup().tee.verification_key(), zone,
                   kT0 + 10.5, geo::kFaaMaxSpeedMps);
  EXPECT_FALSE(result.signatures_valid);
}

}  // namespace
}  // namespace alidrone::core
