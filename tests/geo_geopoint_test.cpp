#include <gtest/gtest.h>

#include <cmath>

#include "geo/geopoint.h"
#include "geo/units.h"

namespace alidrone::geo {
namespace {

TEST(Units, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(mph_to_mps(mps_to_mph(10.0)), 10.0);
  EXPECT_DOUBLE_EQ(miles_to_meters(1.0), 1609.344);
  EXPECT_DOUBLE_EQ(feet_to_meters(1.0), 0.3048);
  EXPECT_NEAR(knots_to_mps(1.0), 0.514444, 1e-6);
}

TEST(Units, FaaMaxSpeed) {
  // 100 mph in m/s, the paper's v_max.
  EXPECT_NEAR(kFaaMaxSpeedMps, 44.704, 1e-9);
}

TEST(Haversine, ZeroDistanceForSamePoint) {
  const GeoPoint p{40.0, -88.0};
  EXPECT_DOUBLE_EQ(haversine_distance(p, p), 0.0);
}

TEST(Haversine, KnownCityPair) {
  // Champaign, IL to Chicago, IL: roughly 200 km.
  const GeoPoint champaign{40.1164, -88.2434};
  const GeoPoint chicago{41.8781, -87.6298};
  const double d = haversine_distance(champaign, chicago);
  EXPECT_NEAR(d, 201000.0, 5000.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{40.7958, -73.9187};  // Fig. 2's first zone coordinate
  const GeoPoint b{40.7094, -74.0130};  // Fig. 2's second zone coordinate
  EXPECT_DOUBLE_EQ(haversine_distance(a, b), haversine_distance(b, a));
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const GeoPoint a{40.0, -88.0};
  const GeoPoint b{41.0, -88.0};
  EXPECT_NEAR(haversine_distance(a, b), 111195.0, 100.0);
}

TEST(Bearing, CardinalDirections) {
  const GeoPoint origin{40.0, -88.0};
  EXPECT_NEAR(initial_bearing_deg(origin, {41.0, -88.0}), 0.0, 0.01);    // north
  EXPECT_NEAR(initial_bearing_deg(origin, {39.0, -88.0}), 180.0, 0.01);  // south
  EXPECT_NEAR(initial_bearing_deg(origin, {40.0, -87.0}), 90.0, 0.5);    // east
  EXPECT_NEAR(initial_bearing_deg(origin, {40.0, -89.0}), 270.0, 0.5);   // west
}

TEST(DestinationPoint, InvertsDistanceAndBearing) {
  const GeoPoint origin{40.1164, -88.2434};
  const double bearing = 63.0;
  const double dist = 5000.0;
  const GeoPoint dest = destination_point(origin, bearing, dist);
  EXPECT_NEAR(haversine_distance(origin, dest), dist, 0.01);
  EXPECT_NEAR(initial_bearing_deg(origin, dest), bearing, 0.01);
}

TEST(LocalFrame, OriginMapsToZero) {
  const LocalFrame frame({40.0, -88.0});
  const Vec2 v = frame.to_local({40.0, -88.0});
  EXPECT_DOUBLE_EQ(v.x, 0.0);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
}

TEST(LocalFrame, RoundTripIsExact) {
  const LocalFrame frame({40.1164, -88.2434});
  const GeoPoint p{40.1301, -88.2201};
  const GeoPoint back = frame.to_geo(frame.to_local(p));
  EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-12);
  EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-12);
}

TEST(LocalFrame, DistancesMatchHaversineNearOrigin) {
  const LocalFrame frame({40.1164, -88.2434});
  const GeoPoint a{40.1200, -88.2400};
  const GeoPoint b{40.1250, -88.2300};
  const double planar = distance(frame.to_local(a), frame.to_local(b));
  const double geodesic = haversine_distance(a, b);
  // Sub-meter agreement within a few km of the anchor.
  EXPECT_NEAR(planar, geodesic, 0.5);
}

TEST(LocalFrame, NorthIsPositiveYEastIsPositiveX) {
  const LocalFrame frame({40.0, -88.0});
  EXPECT_GT(frame.to_local({40.01, -88.0}).y, 0.0);
  EXPECT_GT(frame.to_local({40.0, -87.99}).x, 0.0);
}

// Property sweep: destination_point followed by haversine recovers the
// distance across many bearings and ranges.
class GeodesyRoundTrip : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GeodesyRoundTrip, DistancePreserved) {
  const auto [bearing, dist] = GetParam();
  const GeoPoint origin{40.1164, -88.2434};
  const GeoPoint dest = destination_point(origin, bearing, dist);
  EXPECT_NEAR(haversine_distance(origin, dest), dist, dist * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    BearingsAndRanges, GeodesyRoundTrip,
    ::testing::Combine(::testing::Values(0.0, 45.0, 90.0, 135.0, 225.0, 315.0),
                       ::testing::Values(10.0, 500.0, 8046.72, 100000.0)));

}  // namespace
}  // namespace alidrone::geo
