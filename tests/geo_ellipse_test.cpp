#include <gtest/gtest.h>

#include <cmath>

#include "crypto/random.h"
#include "geo/ellipse.h"
#include "geo/units.h"

namespace alidrone::geo {
namespace {

TEST(TravelEllipse, ContainsFociWhenFeasible) {
  const TravelEllipse e({0, 0}, {100, 0}, 150.0);
  ASSERT_TRUE(e.feasible());
  EXPECT_TRUE(e.contains({0, 0}));
  EXPECT_TRUE(e.contains({100, 0}));
  EXPECT_TRUE(e.contains({50, 0}));
}

TEST(TravelEllipse, InfeasibleWhenSamplesTooFarApart) {
  // 1000 m apart but focal sum only 100 m: no physical trajectory.
  const TravelEllipse e({0, 0}, {1000, 0}, 100.0);
  EXPECT_FALSE(e.feasible());
}

TEST(TravelEllipse, FromSamplesUsesSpeedTimesTime) {
  const double vmax = kFaaMaxSpeedMps;
  const TravelEllipse e = TravelEllipse::from_samples({0, 0}, 10.0, {50, 0}, 12.0, vmax);
  EXPECT_DOUBLE_EQ(e.focal_sum(), vmax * 2.0);
}

TEST(TravelEllipse, AxesMatchClosedForm) {
  const TravelEllipse e({-30, 0}, {30, 0}, 100.0);
  EXPECT_DOUBLE_EQ(e.semi_major(), 50.0);
  EXPECT_DOUBLE_EQ(e.semi_minor(), 40.0);  // sqrt(50^2 - 30^2)
}

TEST(TravelEllipse, BoundaryPointOnSemiMinorAxis) {
  const TravelEllipse e({-30, 0}, {30, 0}, 100.0);
  // Point (0, 40) has focal sum exactly 2*sqrt(30^2+40^2) = 100.
  EXPECT_NEAR(e.focal_distance_sum({0, 40}), 100.0, 1e-9);
  EXPECT_TRUE(e.contains({0, 40}));
  EXPECT_FALSE(e.contains({0, 40.001}));
}

TEST(FocalTest, DisjointWhenFarAway) {
  const TravelEllipse e({0, 0}, {10, 0}, 20.0);
  const Circle z{{1000, 0}, 50.0};
  EXPECT_TRUE(e.focal_test_disjoint(z));
  EXPECT_TRUE(e.exactly_disjoint(z));
}

TEST(FocalTest, NotDisjointWhenFocusInside) {
  const TravelEllipse e({0, 0}, {10, 0}, 20.0);
  const Circle z{{0, 0}, 5.0};
  EXPECT_FALSE(e.focal_test_disjoint(z));
  EXPECT_FALSE(e.exactly_disjoint(z));
}

TEST(FocalTest, IsConservativeRelativeToExactTest) {
  // A zone beside the ellipse's waist: focal test can fail to certify
  // disjointness even though the exact test proves it. This is the
  // worst-case geometry for eq. (2): the circle sits broadside.
  const TravelEllipse e({-40, 0}, {40, 0}, 100.0);  // semi-minor = 30
  const Circle z{{0, 45}, 10.0};                    // gap of 5 m from ellipse top
  EXPECT_TRUE(e.exactly_disjoint(z));
  // D1 + D2 = 2*(sqrt(40^2+45^2) - 10) ~ 100.4 >= 100, so the focal test
  // *just* certifies here; shrink the gap and it stops certifying while
  // the exact test still certifies.
  const Circle closer{{0, 42}, 10.0};
  EXPECT_TRUE(e.exactly_disjoint(closer));
  EXPECT_FALSE(e.focal_test_disjoint(closer));
}

TEST(FocalTest, NeverCertifiesAnActualIntersection) {
  // Soundness direction: if focal test says disjoint, exact must agree.
  const TravelEllipse e({-40, 0}, {40, 0}, 100.0);
  for (double cx = -150; cx <= 150; cx += 7.5) {
    for (double cy = -120; cy <= 120; cy += 7.5) {
      const Circle z{{cx, cy}, 15.0};
      if (e.focal_test_disjoint(z)) {
        EXPECT_TRUE(e.exactly_disjoint(z))
            << "focal test certified intersecting zone at (" << cx << "," << cy << ")";
      }
    }
  }
}

TEST(ExactTest, TangentCircleIsBorderline) {
  const TravelEllipse e({-30, 0}, {30, 0}, 100.0);  // semi-major 50
  // Circle tangent to the ellipse at (50, 0) from outside.
  const Circle touching{{60, 0}, 10.0};
  EXPECT_FALSE(e.exactly_disjoint(touching));  // closed sets: touch = intersect
  const Circle separated{{60.01, 0}, 10.0};
  EXPECT_TRUE(e.exactly_disjoint(separated));
}

TEST(ExactTest, MinFocalSumOverDiskWhenSegmentCrossesDisk) {
  const TravelEllipse e({-10, 0}, {10, 0}, 30.0);
  const Circle z{{0, 0}, 2.0};  // contains part of the focal segment
  EXPECT_DOUBLE_EQ(e.min_focal_sum_over_disk(z), 20.0);  // inter-focal distance
}

TEST(ExactTest, MinFocalSumMatchesHandComputedBoundaryCase) {
  // Foci at (+-3,0), circle centered (0,10) radius 2. By symmetry the
  // minimizing boundary point is (0, 8); focal sum = 2*sqrt(9+64).
  const TravelEllipse e({-3, 0}, {3, 0}, 100.0);
  const Circle z{{0, 10}, 2.0};
  EXPECT_NEAR(e.min_focal_sum_over_disk(z), 2.0 * std::sqrt(73.0), 1e-6);
}

// Property: monotonicity of travel ellipses in time (paper Section IV-C3):
// E(S_i, S_j) is contained in E(S_i, S_k) for t_j < t_k when positions lie
// on a v_max-feasible path. Containment of regions implies: any zone
// disjoint from the later ellipse is disjoint from the earlier one.
class EllipseMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(EllipseMonotonicity, LongerIntervalContainsShorter) {
  const double vmax = kFaaMaxSpeedMps;
  const double speed = GetParam();  // actual speed <= vmax
  const Vec2 start{0, 0};
  const double t0 = 0.0;
  // Straight path at `speed`.
  const auto pos = [&](double t) { return Vec2{speed * t, 0}; };

  const double tj = 5.0;
  const double tk = 9.0;
  const TravelEllipse ej = TravelEllipse::from_samples(start, t0, pos(tj), tj, vmax);
  const TravelEllipse ek = TravelEllipse::from_samples(start, t0, pos(tk), tk, vmax);

  // Sample points just inside ej's boundary and check membership in ek.
  constexpr double kInward = 1.0 - 1e-9;  // avoid FP ties on the boundary
  for (double theta = 0; theta < 6.28; theta += 0.1) {
    const double a = ej.semi_major() * kInward;
    const double b = ej.semi_minor() * kInward;
    const Vec2 center = (ej.focus1() + ej.focus2()) * 0.5;
    const Vec2 p{center.x + a * std::cos(theta), center.y + b * std::sin(theta)};
    ASSERT_TRUE(ej.contains({p.x, p.y}));
    EXPECT_TRUE(ek.contains(p)) << "speed=" << speed << " theta=" << theta;
  }
}

// Top speed just below v_max: at exactly v_max the ellipse degenerates to a
// segment and boundary membership becomes a floating-point tie.
INSTANTIATE_TEST_SUITE_P(Speeds, EllipseMonotonicity,
                         ::testing::Values(0.0, 10.0, 25.0, 44.0, 44.7));

// Numeric cross-check: the golden-section minimizer in
// min_focal_sum_over_disk agrees with a brute-force grid search over the
// disk across random geometries.
class ExactMinimizerCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(ExactMinimizerCrossCheck, GoldenSectionMatchesBruteForce) {
  crypto::DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 613 + 3);
  const Vec2 f1{rng.uniform_double() * 200.0 - 100.0,
                rng.uniform_double() * 200.0 - 100.0};
  const Vec2 f2{rng.uniform_double() * 200.0 - 100.0,
                rng.uniform_double() * 200.0 - 100.0};
  const TravelEllipse e(f1, f2, distance(f1, f2) + 50.0);
  const Circle z{{rng.uniform_double() * 300.0 - 150.0,
                  rng.uniform_double() * 300.0 - 150.0},
                 5.0 + rng.uniform_double() * 40.0};

  const double fast = e.min_focal_sum_over_disk(z);

  // Brute force over a polar grid of the disk.
  double brute = 1e300;
  for (int ri = 0; ri <= 60; ++ri) {
    for (int ai = 0; ai < 240; ++ai) {
      const double r = z.radius * ri / 60.0;
      const double a = 2.0 * 3.14159265358979323846 * ai / 240.0;
      const Vec2 p{z.center.x + r * std::cos(a), z.center.y + r * std::sin(a)};
      brute = std::min(brute, e.focal_distance_sum(p));
    }
  }
  // The grid overestimates the true minimum by at most its resolution.
  EXPECT_LE(fast, brute + 1e-9);
  EXPECT_GE(fast, brute - z.radius * 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMinimizerCrossCheck, ::testing::Range(1, 13));

// Property: the focal test is exactly the paper's eq. (2) criterion.
TEST(FocalTest, MatchesEquationTwoArithmetic) {
  const Vec2 f1{0, 0};
  const Vec2 f2{100, 0};
  const Circle z{{300, 40}, 25.0};
  const double d1 = distance(f1, z.center) - z.radius;
  const double d2 = distance(f2, z.center) - z.radius;
  // Just below and just above the D1+D2 threshold.
  const TravelEllipse tight(f1, f2, d1 + d2 - 1e-9);
  const TravelEllipse loose(f1, f2, d1 + d2 + 1e-9);
  EXPECT_TRUE(tight.focal_test_disjoint(z));
  EXPECT_FALSE(loose.focal_test_disjoint(z));
}

}  // namespace
}  // namespace alidrone::geo
