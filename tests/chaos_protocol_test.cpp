// Chaos harness for the full protocol (labelled `chaos` in ctest).
//
// Multi-flight scenarios — registration, zone query, flights, PoA
// submission through the store-and-forward outbox — run under seeded
// fault schedules: bus outage windows, GPS miss bursts, corrupted NMEA,
// response loss, injected latency and transient TEE failures. The
// invariants, checked for every (seed, schedule) pair:
//
//   1. every generated PoA is eventually delivered and verified exactly
//      once (retained count == flights; dedup absorbs redelivery), and
//   2. the verdicts are byte-for-byte identical to the fault-free
//      baseline, and
//   3. with no faults, the resilience layer adds zero overhead (no extra
//      bus requests, no backoff sleeps, no breaker activity).
#include <gtest/gtest.h>

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "obs/flight_recorder.h"
#include "resilience/reliable_channel.h"
#include "sim/route.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;  // fast; realistic sizes in benches
constexpr int kFlights = 3;
constexpr double kFlightDuration = 60.0;
constexpr double kFlightSpacing = 1000.0;  // unix-time gap between flights

enum class Schedule {
  kNone,           // fault-free baseline
  kBusOutages,     // scripted outage windows on the submit endpoint + all
  kGpsMissBurst,   // random misses plus a scheduled mid-flight burst
  kCorruptedNmea,  // checksum-breaking NMEA noise + submit response loss
  kCombined,       // outages + response loss + latency + GPS + TEE busy
};

std::string to_string(Schedule schedule) {
  switch (schedule) {
    case Schedule::kNone: return "None";
    case Schedule::kBusOutages: return "BusOutages";
    case Schedule::kGpsMissBurst: return "GpsMissBurst";
    case Schedule::kCorruptedNmea: return "CorruptedNmea";
    case Schedule::kCombined: return "Combined";
  }
  return "?";
}

net::FaultWindow window(const std::string& endpoint, double start, double end,
                        net::FaultKind kind, double probability = 1.0,
                        double latency_s = 0.0) {
  net::FaultWindow w;
  w.endpoint = endpoint;
  w.start = start;
  w.end = end;
  w.kind = kind;
  w.probability = probability;
  w.latency_s = latency_s;
  return w;
}

net::MessageBus::FaultConfig bus_faults(Schedule schedule, std::uint64_t seed) {
  net::MessageBus::FaultConfig faults;
  faults.seed = seed;
  switch (schedule) {
    case Schedule::kNone:
    case Schedule::kGpsMissBurst:
      break;
    case Schedule::kBusOutages:
      faults.schedule.push_back(
          window("auditor.submit_poa", 0.0, 12.0, net::FaultKind::kOutage));
      faults.schedule.push_back(
          window("", 30.0, 45.0, net::FaultKind::kOutage));
      faults.schedule.push_back(window("auditor.submit_poa", 60.0, 90.0,
                                       net::FaultKind::kOutage, 0.5));
      break;
    case Schedule::kCorruptedNmea:
      // The NMEA corruption itself is configured on the receiver; the bus
      // contributes lost submit responses (verify-then-timeout ambiguity).
      faults.schedule.push_back(
          window("auditor.submit_poa", 0.0, 10.0, net::FaultKind::kResponseLoss));
      break;
    case Schedule::kCombined:
      faults.schedule.push_back(
          window("auditor.submit_poa", 0.0, 12.0, net::FaultKind::kOutage));
      faults.schedule.push_back(
          window("", 20.0, 28.0, net::FaultKind::kResponseLoss, 0.7));
      faults.schedule.push_back(window("auditor.submit_poa", 30.0, 50.0,
                                       net::FaultKind::kLatency, 1.0, 0.5));
      break;
  }
  return faults;
}

struct RunResult {
  std::vector<crypto::Bytes> verdict_bytes;  // one per flight, in order
  std::vector<PoaVerdict> verdicts;
  std::size_t retained = 0;
  std::uint64_t duplicate_submissions = 0;
  std::uint64_t duplicate_registrations = 0;
  resilience::ReliableChannel::Counters channel;
  std::uint64_t breaker_trips = 0;
  std::uint64_t clock_advances = 0;
  std::uint64_t bus_requests = 0;
  int gps_missed = 0;
  int nmea_corrupted = 0;
  std::uint64_t tee_busy_injected = 0;
  std::uint64_t tee_retries = 0;
  std::uint64_t tee_failures = 0;
  std::size_t outbox_left = 999;
  bool registered = false;
  bool queried = false;
};

/// One fully deterministic protocol run under (schedule, seed). When a
/// recorder is passed, the channel traces bus requests, injected faults,
/// retries and breaker transitions into it — the black box a failing
/// invariant dumps.
RunResult run_scenario(Schedule schedule, std::uint64_t seed,
                       obs::FlightRecorder* recorder = nullptr) {
  RunResult result;

  crypto::DeterministicRandom auditor_rng("chaos-auditor");
  crypto::DeterministicRandom owner_rng("chaos-owner");
  crypto::DeterministicRandom operator_rng("chaos-operator");
  Auditor auditor(kTestKeyBits, auditor_rng);
  ZoneOwner owner(kTestKeyBits, owner_rng);

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "chaos-device";
  tee::DroneTee tee(tee_config);
  DroneClient client(tee, kTestKeyBits, operator_rng);

  if (schedule == Schedule::kCombined) {
    tee::SecureMonitor::FaultConfig tee_faults;
    tee_faults.busy_probability = 0.12;
    tee_faults.seed = seed;
    tee.monitor().set_faults(tee_faults);
  }

  net::MessageBus bus;
  auditor.bind(bus);
  bus.set_faults(bus_faults(schedule, seed));

  resilience::SimClock clock(0.0);
  resilience::ReliableChannel::Config channel_config;
  channel_config.retry.max_attempts = 4;
  channel_config.retry.initial_backoff_s = 0.5;
  channel_config.retry.backoff_multiplier = 2.0;
  channel_config.retry.max_backoff_s = 4.0;
  channel_config.retry.jitter_fraction = 0.1;
  channel_config.retry.deadline_s = 0.0;
  channel_config.breaker.failure_threshold = 3;
  channel_config.breaker.cooldown_s = 10.0;
  channel_config.seed = seed;
  channel_config.trace = recorder;
  resilience::ReliableChannel channel(bus, clock, channel_config);

  // The flight corridor: a straight 600 m line; zones 400 m off to the
  // side, far enough that even multi-second GPS gaps leave the alibi
  // sufficient (the time-feasible ellipse cannot reach them).
  const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  std::vector<geo::GeoZone> zones;
  for (double x : {100.0, 300.0, 500.0}) {
    zones.push_back({frame.to_geo(geo::Vec2{x, 400.0}), 30.0});
  }

  // Step 0: registration through the channel; keep nudging the clock
  // until the breaker lets it through.
  for (int i = 0; i < 50 && !result.registered; ++i) {
    result.registered = client.register_with_auditor(channel);
    if (!result.registered) clock.advance(2.0);
  }
  if (!result.registered) return result;

  for (const geo::GeoZone& zone : zones) {
    auditor.register_zone(owner.make_zone_request(zone, "chaos zone"));
  }

  // Steps 2-3: zone query through the channel (fresh nonce per retry).
  const QueryRect rect{{39.99, -88.01}, {40.02, -87.98}};
  for (int i = 0; i < 50 && !result.queried; ++i) {
    const auto found = client.query_zones(channel, rect);
    result.queried = found.has_value() && found->size() == zones.size();
    if (!result.queried) clock.advance(2.0);
  }

  // Flights: fly, enqueue the PoA, drain the outbox until delivered.
  for (int f = 0; f < kFlights; ++f) {
    const double start = kT0 + f * kFlightSpacing;
    sim::Route route(frame,
                     {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}},
                     start);

    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = start;
    rc.seed = seed * 100 + static_cast<std::uint64_t>(f);
    if (schedule == Schedule::kGpsMissBurst) {
      rc.miss_probability = 0.15;
      // A scheduled burst: ~2 s of consecutive missed updates mid-flight,
      // the paper's residential worst case.
      for (double t = start + 20.0; t <= start + 22.0; t += 0.2) {
        rc.scheduled_miss_times.push_back(t);
      }
    } else if (schedule == Schedule::kCorruptedNmea) {
      rc.corrupt_probability = 0.25;
    } else if (schedule == Schedule::kCombined) {
      rc.miss_probability = 0.1;
      rc.corrupt_probability = 0.1;
    }
    gps::GpsReceiverSim receiver(rc, route.as_position_source());

    std::vector<geo::Circle> local_zones;
    for (const geo::GeoZone& z : zones) {
      local_zones.push_back({frame.to_local(z.center), z.radius_m});
    }
    // Algorithm 1 rides the sufficiency edge: it records only when the
    // pair is about to go insufficient within 2/R seconds. At the true
    // R = 5 Hz that guard band is 0.4 s, and a multi-second GPS miss
    // burst lands a pair past the edge (the paper's residential event).
    // The chaos scenarios need verdicts invariant under GPS faults, so
    // the sampler is derated to R = 0.2 Hz — a 10 s guard band.
    AdaptiveSampler policy(frame, local_zones, geo::kFaaMaxSpeedMps, 0.2);
    FlightConfig flight_config;
    flight_config.end_time = start + kFlightDuration;
    flight_config.frame = frame;
    flight_config.local_zones = local_zones;

    const ProofOfAlibi poa = client.fly(receiver, policy, flight_config);
    result.gps_missed += receiver.missed_updates();
    result.nmea_corrupted += receiver.corrupted_sentences();
    result.tee_retries += client.last_flight().tee_retries;
    result.tee_failures += client.last_flight().tee_failures;

    client.enqueue_poa(poa);
    for (int i = 0; i < 200 && client.outbox_size() > 0; ++i) {
      for (PoaVerdict& verdict : client.drain_outbox(channel)) {
        result.verdict_bytes.push_back(verdict.encode());
        result.verdicts.push_back(std::move(verdict));
      }
      if (client.outbox_size() > 0) clock.advance(1.5);
    }
    // Simulated time passes between flights so later fault windows get
    // their shot. The fault-free baseline skips this: its run must prove
    // the channel is sleep-free end to end.
    if (schedule != Schedule::kNone) clock.advance(10.0);
  }

  result.retained = auditor.retained_poa_count();
  result.duplicate_submissions = auditor.duplicate_poa_submissions();
  result.duplicate_registrations = auditor.duplicate_registrations();
  result.channel = channel.counters();
  result.breaker_trips = channel.breaker_trips();
  result.clock_advances = clock.advances();
  result.bus_requests = bus.requests_sent();
  result.tee_busy_injected = tee.monitor().injected_busy_faults();
  result.outbox_left = client.outbox_size();
  return result;
}

/// The fault-free reference outcome; identical for every seed (no fault
/// stream is consumed), so it is computed once and shared.
const RunResult& baseline() {
  static const RunResult result = run_scenario(Schedule::kNone, 1);
  return result;
}

class ChaosFixture
    : public ::testing::TestWithParam<std::tuple<Schedule, std::uint64_t>> {};

TEST_P(ChaosFixture, EveryPoaVerifiedExactlyOnceWithBaselineVerdicts) {
  const auto [schedule, seed] = GetParam();
  obs::FlightRecorder recorder(seed);
  const RunResult run = run_scenario(schedule, seed, &recorder);

  ASSERT_TRUE(run.registered);
  EXPECT_TRUE(run.queried);

  // Invariant 1: eventually delivered, verified exactly once.
  ASSERT_EQ(run.verdict_bytes.size(), static_cast<std::size_t>(kFlights));
  EXPECT_EQ(run.outbox_left, 0u);
  EXPECT_EQ(run.retained, static_cast<std::size_t>(kFlights));

  for (const PoaVerdict& verdict : run.verdicts) {
    EXPECT_TRUE(verdict.accepted) << verdict.detail;
    EXPECT_TRUE(verdict.compliant) << verdict.detail;
  }

  // Invariant 2: byte-for-byte the fault-free verdicts.
  ASSERT_EQ(baseline().verdict_bytes.size(), static_cast<std::size_t>(kFlights));
  for (int f = 0; f < kFlights; ++f) {
    EXPECT_EQ(run.verdict_bytes[f], baseline().verdict_bytes[f])
        << "flight " << f << " verdict diverged under " << to_string(schedule)
        << " seed " << seed;
  }

  // Fault schedules must actually bite (a chaos run that injected nothing
  // proves nothing).
  switch (schedule) {
    case Schedule::kNone:
      // Invariant 3: zero overhead without faults.
      EXPECT_EQ(run.channel.attempts, run.channel.requests);
      EXPECT_EQ(run.channel.retries, 0u);
      EXPECT_EQ(run.breaker_trips, 0u);
      EXPECT_EQ(run.clock_advances, 0u);
      EXPECT_EQ(run.bus_requests, run.channel.requests);
      EXPECT_EQ(run.duplicate_submissions, 0u);
      break;
    case Schedule::kBusOutages:
      EXPECT_GT(run.channel.retries, 0u);
      break;
    case Schedule::kGpsMissBurst:
      EXPECT_GT(run.gps_missed, 10);
      break;
    case Schedule::kCorruptedNmea:
      EXPECT_GT(run.nmea_corrupted, 0);
      // Response loss ran the handler, the retry hit the dedup cache.
      EXPECT_GT(run.duplicate_submissions, 0u);
      break;
    case Schedule::kCombined:
      EXPECT_GT(run.channel.retries, 0u);
      EXPECT_GT(run.tee_busy_injected, 0u);
      EXPECT_GT(run.tee_retries, 0u);
      EXPECT_EQ(run.tee_failures, 0u);  // bounded retry absorbed every kBusy
      break;
  }

  if (::testing::Test::HasFailure()) {
    std::cerr << "--- flight recorder dump (" << to_string(schedule) << " seed "
              << seed << ") ---\n";
    recorder.dump(std::cerr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededSchedules, ChaosFixture,
    ::testing::Combine(::testing::Values(Schedule::kNone, Schedule::kBusOutages,
                                         Schedule::kGpsMissBurst,
                                         Schedule::kCorruptedNmea,
                                         Schedule::kCombined),
                       ::testing::Range<std::uint64_t>(1, 6)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Targeted regression tests riding on the chaos fixtures ----

struct ReplayFixture : ::testing::Test {
  ReplayFixture()
      : auditor_rng_("replay-auditor"),
        operator_rng_("replay-operator"),
        auditor_(kTestKeyBits, auditor_rng_),
        tee_(make_tee_config()),
        client_(tee_, kTestKeyBits, operator_rng_),
        channel_(bus_, clock_, make_channel_config()) {
    auditor_.bind(bus_);
  }

  static tee::DroneTee::Config make_tee_config() {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "replay-device";
    return config;
  }

  static resilience::ReliableChannel::Config make_channel_config() {
    resilience::ReliableChannel::Config config;
    config.retry.max_attempts = 4;
    config.retry.initial_backoff_s = 0.5;
    config.retry.jitter_fraction = 0.0;
    config.retry.deadline_s = 0.0;
    return config;
  }

  void lose_responses(const std::string& endpoint, double until) {
    net::MessageBus::FaultConfig faults;
    faults.schedule.push_back(
        window(endpoint, 0.0, until, net::FaultKind::kResponseLoss));
    bus_.set_faults(faults);
  }

  crypto::DeterministicRandom auditor_rng_;
  crypto::DeterministicRandom operator_rng_;
  Auditor auditor_;
  tee::DroneTee tee_;
  DroneClient client_;
  net::MessageBus bus_;
  resilience::SimClock clock_{0.0};
  resilience::ReliableChannel channel_;
};

TEST_F(ReplayFixture, RegistrationRetryAfterLostResponseIsIdempotent) {
  // The first delivery registers the drone but its response is lost; the
  // channel's retry re-delivers the same bytes and must get the same id.
  lose_responses("auditor.register_drone", 0.25);

  ASSERT_TRUE(client_.register_with_auditor(channel_));
  EXPECT_EQ(client_.id(), "drone-1");
  EXPECT_EQ(auditor_.drone_count(), 1u);
  EXPECT_GE(auditor_.duplicate_registrations(), 1u);
}

TEST_F(ReplayFixture, ZoneQueryRetriesWithFreshNonceAfterLostResponse) {
  ASSERT_TRUE(client_.register_with_auditor(channel_));
  auditor_.register_zone(
      ZoneOwner(kTestKeyBits, auditor_rng_).make_zone_request(
          {{40.001, -88.001}, 30.0}, "z"));

  // The handler consumes the nonce, then the response is lost. The bus
  // retry of the *same* bytes is rejected as a replay — only the client's
  // re-signed fresh nonce can succeed.
  lose_responses("auditor.query_zones", 0.25);

  const auto zones =
      client_.query_zones(channel_, {{39.99, -88.01}, {40.02, -87.98}});
  ASSERT_TRUE(zones.has_value());
  EXPECT_EQ(zones->size(), 1u);
}

TEST_F(ReplayFixture, OutboxSurvivesAcrossDrainsAndDeduplicates) {
  ASSERT_TRUE(client_.register_with_auditor(channel_));

  // A flight's PoA is queued while the submit endpoint is dark.
  net::MessageBus::FaultConfig faults;
  faults.schedule.push_back(
      window("auditor.submit_poa", 0.0, 100.0, net::FaultKind::kOutage));
  bus_.set_faults(faults);

  const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  sim::Route route(frame, {{geo::Vec2{0.0, 0.0}, 10.0},
                           {geo::Vec2{300.0, 0.0}, 10.0}},
                   kT0);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());
  AdaptiveSampler policy(frame, {}, geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig config;
  config.end_time = kT0 + 30.0;
  config.frame = frame;
  const ProofOfAlibi poa = client_.fly(receiver, policy, config);

  EXPECT_FALSE(client_.submit_poa(channel_, poa).has_value());
  EXPECT_EQ(client_.outbox_size(), 1u);  // queued, not lost

  // Much later (endpoint recovered), a plain drain delivers it once.
  clock_.advance(200.0);
  const auto verdicts = client_.drain_outbox(channel_);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].accepted);
  EXPECT_EQ(client_.outbox_size(), 0u);
  EXPECT_EQ(auditor_.retained_poa_count(), 1u);

  // Redundant re-submission of the same proof is absorbed by the dedup
  // cache: same verdict, still verified exactly once.
  const auto again = client_.submit_poa(channel_, poa);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->encode(), verdicts[0].encode());
  EXPECT_EQ(auditor_.retained_poa_count(), 1u);
  EXPECT_EQ(auditor_.duplicate_poa_submissions(), 1u);
}

TEST_F(ReplayFixture, GpsDropsAreAuditTrailed) {
  // The per-sample flight path never drains the secure pending queue, so
  // a minute at 5 Hz overflows it; the audit log gets the onset and the
  // end-of-flight summary, not one event per dropped fix.
  const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  sim::Route route(frame, {{geo::Vec2{0.0, 0.0}, 10.0},
                           {geo::Vec2{600.0, 0.0}, 10.0}},
                   kT0);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());
  AdaptiveSampler policy(frame, {}, geo::kFaaMaxSpeedMps, 5.0);

  AuditLog audit;
  FlightConfig config;
  config.end_time = kT0 + 60.0;
  config.frame = frame;
  config.audit = &audit;
  client_.fly(receiver, policy, config);

  EXPECT_GT(tee_.gps_fixes_dropped(), 0u);
  const auto events = audit.by_type(AuditEventType::kGpsFixDropped);
  ASSERT_EQ(events.size(), 2u);  // onset + summary
  EXPECT_EQ(events[0].subject, "tee-gps-driver");
  EXPECT_FALSE(events[0].outcome_ok);
  EXPECT_NE(events[1].detail.find("flight summary"), std::string::npos);
}

}  // namespace
}  // namespace alidrone::core
