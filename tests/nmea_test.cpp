#include <gtest/gtest.h>

#include "nmea/gga.h"
#include "nmea/rmc.h"
#include "nmea/sentence.h"
#include "nmea/vtg.h"

namespace alidrone::nmea {
namespace {

TEST(Sentence, ChecksumXorOfBody) {
  // Classic example: "$GPGGA,...*47" style check over a known body.
  EXPECT_EQ(checksum("GPRMC"), ('G' ^ 'P' ^ 'R' ^ 'M' ^ 'C'));
  EXPECT_EQ(checksum(""), 0);
}

TEST(Sentence, FrameProducesDollarStarHexCrlf) {
  const std::string framed = frame("GPRMC,123519,A");
  EXPECT_EQ(framed.front(), '$');
  EXPECT_EQ(framed.substr(framed.size() - 2), "\r\n");
  const auto star = framed.find('*');
  ASSERT_NE(star, std::string::npos);
  EXPECT_EQ(framed.size() - star, 5u);  // *XX\r\n
}

TEST(Sentence, UnframeRoundTrip) {
  const std::string framed = frame("GPRMC,081836,A,3751.65,S,14507.36,E");
  const UnframeResult result = unframe(framed);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.body, "GPRMC,081836,A,3751.65,S,14507.36,E");
}

TEST(Sentence, UnframeRejectsBadChecksum) {
  std::string framed = frame("GPRMC,081836,A");
  framed[5] = 'X';  // corrupt the body, keep the checksum
  EXPECT_FALSE(unframe(framed).ok);
}

TEST(Sentence, UnframeRejectsMalformedFrames) {
  EXPECT_FALSE(unframe("").ok);
  EXPECT_FALSE(unframe("GPRMC,1*00").ok);        // no '$'
  EXPECT_FALSE(unframe("$GPRMC,1").ok);          // no '*'
  EXPECT_FALSE(unframe("$GPRMC,1*0").ok);        // short checksum
  EXPECT_FALSE(unframe("$GPRMC,1*GG").ok);       // non-hex checksum
}

TEST(Sentence, UnframeAcceptsWithoutCrlf) {
  std::string framed = frame("GPGGA,1,2,3");
  framed.resize(framed.size() - 2);  // strip CRLF
  EXPECT_TRUE(unframe(framed).ok);
}

TEST(Sentence, SplitFieldsPreservesEmpties) {
  const auto f = split_fields("GPRMC,,A,,");
  ASSERT_EQ(f.size(), 5u);
  EXPECT_EQ(f[0], "GPRMC");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "A");
  EXPECT_EQ(f[4], "");
}

TEST(DegreesNmea, RoundTrip) {
  for (const double deg : {0.0, 40.1164, 88.2434, 179.9999, 0.5}) {
    EXPECT_NEAR(nmea_to_degrees(degrees_to_nmea(deg)), deg, 1e-9) << deg;
  }
  // 48 degrees 07.038 minutes == 4807.038 in NMEA convention.
  EXPECT_NEAR(nmea_to_degrees(4807.038), 48.0 + 7.038 / 60.0, 1e-12);
}

TEST(Rmc, ParseCanonicalSentence) {
  // Adapted from the NMEA 0183 reference sentence.
  const std::string s = frame(
      "GPRMC,123519.000,A,4807.0380,N,01131.0000,E,022.4,084.4,230394,,,A");
  const auto rmc = parse_rmc(s);
  ASSERT_TRUE(rmc.has_value());
  EXPECT_TRUE(rmc->valid);
  EXPECT_EQ(rmc->time.hour, 12);
  EXPECT_EQ(rmc->time.minute, 35);
  EXPECT_DOUBLE_EQ(rmc->time.second, 19.0);
  EXPECT_NEAR(rmc->position.lat_deg, 48.1173, 1e-4);
  EXPECT_NEAR(rmc->position.lon_deg, 11.5167, 1e-4);
  EXPECT_DOUBLE_EQ(rmc->speed_knots, 22.4);
  EXPECT_DOUBLE_EQ(rmc->course_deg, 84.4);
  EXPECT_EQ(rmc->date.day, 23);
  EXPECT_EQ(rmc->date.month, 3);
  EXPECT_EQ(rmc->date.year, 2094);  // two-digit year, 20xx convention
}

TEST(Rmc, SouthAndWestAreNegative) {
  const std::string s =
      frame("GPRMC,000000.000,A,4007.0000,S,08814.0000,W,000.0,000.0,010118,,,A");
  const auto rmc = parse_rmc(s);
  ASSERT_TRUE(rmc.has_value());
  EXPECT_LT(rmc->position.lat_deg, 0.0);
  EXPECT_LT(rmc->position.lon_deg, 0.0);
}

TEST(Rmc, VoidStatusParsesAsInvalid) {
  const std::string s =
      frame("GPRMC,000000.000,V,4007.0000,N,08814.0000,W,000.0,000.0,010118,,,A");
  const auto rmc = parse_rmc(s);
  ASSERT_TRUE(rmc.has_value());
  EXPECT_FALSE(rmc->valid);
}

TEST(Rmc, RejectsGarbageFields) {
  EXPECT_FALSE(parse_rmc(frame("GPRMC,badtime,A,4007.0,N,08814.0,W,0,0,010118")).has_value());
  EXPECT_FALSE(parse_rmc(frame("GPRMC,000000,X,4007.0,N,08814.0,W,0,0,010118")).has_value());
  EXPECT_FALSE(parse_rmc(frame("GPRMC,000000,A,????,N,08814.0,W,0,0,010118")).has_value());
  EXPECT_FALSE(parse_rmc(frame("GPRMC,000000,A,4007.0,Q,08814.0,W,0,0,010118")).has_value());
  EXPECT_FALSE(parse_rmc(frame("GPRMC,000000,A,4007.0,N,08814.0,W,0,0,990199")).has_value());
  EXPECT_FALSE(parse_rmc(frame("GPGGA,000000,A")).has_value());  // wrong type
  EXPECT_FALSE(parse_rmc("not a sentence").has_value());
}

TEST(Rmc, RejectsOutOfRangeCoordinates) {
  // 99 degrees latitude is impossible.
  EXPECT_FALSE(
      parse_rmc(frame("GPRMC,000000,A,9907.0,N,08814.0,W,0,0,010118")).has_value());
}

TEST(Rmc, EmitParseRoundTrip) {
  RmcSentence rmc;
  rmc.time = {14, 25, 36.500};
  rmc.valid = true;
  rmc.position = {40.1164, -88.2434};
  rmc.speed_knots = 12.3;
  rmc.course_deg = 275.0;
  rmc.date = {7, 7, 2026};

  const auto parsed = parse_rmc(emit_rmc(rmc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time.hour, 14);
  EXPECT_EQ(parsed->time.minute, 25);
  EXPECT_NEAR(parsed->time.second, 36.5, 1e-3);
  EXPECT_NEAR(parsed->position.lat_deg, 40.1164, 1e-5);
  EXPECT_NEAR(parsed->position.lon_deg, -88.2434, 1e-5);
  EXPECT_NEAR(parsed->speed_knots, 12.3, 0.05);
  EXPECT_EQ(parsed->date.day, 7);
  EXPECT_EQ(parsed->date.year, 2026);
}

TEST(Rmc, UnixTimeKnownEpochValues) {
  RmcSentence rmc;
  rmc.date = {1, 1, 1970};
  rmc.time = {0, 0, 0.0};
  EXPECT_DOUBLE_EQ(rmc.unix_time(), 0.0);

  rmc.date = {2, 1, 1970};
  EXPECT_DOUBLE_EQ(rmc.unix_time(), 86400.0);

  // 2018-06-07 18:13:20 UTC == 1528395200.
  rmc.date = {7, 6, 2018};
  rmc.time = {18, 13, 20.0};
  EXPECT_DOUBLE_EQ(rmc.unix_time(), 1528395200.0);
}

TEST(Gga, ParseCanonicalSentence) {
  const std::string s =
      frame("GPGGA,123519.000,4807.0380,N,01131.0000,E,1,08,0.9,545.4,M,46.9,M,,");
  const auto gga = parse_gga(s);
  ASSERT_TRUE(gga.has_value());
  EXPECT_EQ(gga->quality, FixQuality::kGpsFix);
  EXPECT_EQ(gga->satellites, 8);
  EXPECT_DOUBLE_EQ(gga->hdop, 0.9);
  EXPECT_DOUBLE_EQ(gga->altitude_m, 545.4);
  EXPECT_DOUBLE_EQ(gga->geoid_separation_m, 46.9);
  EXPECT_NEAR(gga->position.lat_deg, 48.1173, 1e-4);
}

TEST(Gga, EmitParseRoundTrip) {
  GgaSentence gga;
  gga.time = {9, 30, 15.250};
  gga.position = {40.0393, -88.2781};
  gga.quality = FixQuality::kGpsFix;
  gga.satellites = 9;
  gga.hdop = 1.1;
  gga.altitude_m = 228.6;
  gga.geoid_separation_m = -33.5;

  const auto parsed = parse_gga(emit_gga(gga));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NEAR(parsed->position.lat_deg, 40.0393, 1e-5);
  EXPECT_NEAR(parsed->position.lon_deg, -88.2781, 1e-5);
  EXPECT_NEAR(parsed->altitude_m, 228.6, 1e-6);
  EXPECT_EQ(parsed->satellites, 9);
}

TEST(Vtg, ParseCanonicalSentence) {
  const std::string s = frame("GPVTG,054.7,T,034.4,M,005.5,N,010.2,K,A");
  const auto vtg = parse_vtg(s);
  ASSERT_TRUE(vtg.has_value());
  EXPECT_DOUBLE_EQ(vtg->course_true_deg, 54.7);
  ASSERT_TRUE(vtg->course_magnetic_deg.has_value());
  EXPECT_DOUBLE_EQ(*vtg->course_magnetic_deg, 34.4);
  EXPECT_DOUBLE_EQ(vtg->speed_knots, 5.5);
  EXPECT_DOUBLE_EQ(vtg->speed_kmh, 10.2);
}

TEST(Vtg, EmptyMagneticCourseAllowed) {
  const auto vtg = parse_vtg(frame("GPVTG,120.0,T,,M,012.0,N,022.2,K,A"));
  ASSERT_TRUE(vtg.has_value());
  EXPECT_FALSE(vtg->course_magnetic_deg.has_value());
}

TEST(Vtg, EmitParseRoundTrip) {
  VtgSentence vtg;
  vtg.course_true_deg = 275.5;
  vtg.speed_knots = 19.4;
  vtg.speed_kmh = 35.9;
  const auto parsed = parse_vtg(emit_vtg(vtg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NEAR(parsed->course_true_deg, 275.5, 1e-9);
  EXPECT_NEAR(parsed->speed_knots, 19.4, 1e-9);
  EXPECT_FALSE(parsed->course_magnetic_deg.has_value());

  vtg.course_magnetic_deg = 272.1;
  const auto parsed2 = parse_vtg(emit_vtg(vtg));
  ASSERT_TRUE(parsed2.has_value());
  EXPECT_NEAR(*parsed2->course_magnetic_deg, 272.1, 1e-9);
}

TEST(Vtg, RejectsMalformed) {
  EXPECT_FALSE(parse_vtg(frame("GPRMC,1,2,3")).has_value());
  EXPECT_FALSE(parse_vtg(frame("GPVTG,361.0,T,,M,005.5,N,010.2,K,A")).has_value());
  EXPECT_FALSE(parse_vtg(frame("GPVTG,054.7,X,,M,005.5,N,010.2,K,A")).has_value());
  EXPECT_FALSE(parse_vtg(frame("GPVTG,054.7,T,,M,-1.0,N,010.2,K,A")).has_value());
  EXPECT_FALSE(parse_vtg(frame("GPVTG,054.7,T,,M")).has_value());
}

TEST(Gga, RejectsWrongTypeAndBadQuality) {
  EXPECT_FALSE(parse_gga(frame("GPRMC,000000,A")).has_value());
  EXPECT_FALSE(
      parse_gga(frame("GPGGA,123519,4807.038,N,01131.000,E,9,08,0.9,545.4,M,46.9,M,,"))
          .has_value());
}

}  // namespace
}  // namespace alidrone::nmea
