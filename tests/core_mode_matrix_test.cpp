// Coverage matrix: every PoA authentication mode × encryption setting ×
// field-study scenario must verify end to end, and tampering must be
// caught in every combination.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

struct MatrixParam {
  AuthMode mode;
  bool encrypted;
  const char* scenario;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string name = to_string(info.param.mode);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += info.param.encrypted ? "_encrypted_" : "_plain_";
  name += info.param.scenario;
  return name;
}

class ModeMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  ModeMatrix()
      : auditor_rng_("matrix-auditor"),
        owner_rng_("matrix-owner"),
        operator_rng_("matrix-operator"),
        auditor_(kTestKeyBits, auditor_rng_),
        owner_(kTestKeyBits, owner_rng_),
        tee_(make_tee_config()),
        client_(tee_, kTestKeyBits, operator_rng_) {
    auditor_.bind(bus_);
    EXPECT_TRUE(client_.register_with_auditor(bus_));
  }

  static tee::DroneTee::Config make_tee_config() {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "matrix-device";
    return config;
  }

  ProofOfAlibi fly(const sim::Scenario& scenario, AuthMode mode, bool encrypted) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
    AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    // Cap the flight length so the 18-combination matrix stays fast.
    config.end_time = scenario.route.start_time() +
                      std::min(90.0, scenario.route.duration());
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    config.auth_mode = mode;
    // HMAC mode always needs the Auditor key (session establishment);
    // the matrix only exercises HMAC with encryption on, so `encrypted`
    // and key presence coincide for every cell.
    if (encrypted) config.auditor_encryption_key = auditor_.encryption_key();
    return client_.fly(receiver, policy, config);
  }

  crypto::DeterministicRandom auditor_rng_;
  crypto::DeterministicRandom owner_rng_;
  crypto::DeterministicRandom operator_rng_;
  net::MessageBus bus_;
  Auditor auditor_;
  ZoneOwner owner_;
  tee::DroneTee tee_;
  DroneClient client_;
};

TEST_P(ModeMatrix, HonestFlightVerifies) {
  const MatrixParam param = GetParam();
  const sim::Scenario scenario = std::string(param.scenario) == "airport"
                                     ? sim::make_airport_scenario(kT0)
                                     : sim::make_residential_scenario(kT0);
  for (const geo::GeoZone& z : scenario.zones) owner_.register_zone(bus_, z, "z");

  const ProofOfAlibi poa = fly(scenario, param.mode, param.encrypted);
  ASSERT_GT(poa.samples.size(), 1u);

  // Serialize across the bus like a real submission.
  const auto verdict = client_.submit_poa(bus_, poa);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->accepted) << verdict->detail;
  EXPECT_TRUE(verdict->compliant) << verdict->detail;
}

TEST_P(ModeMatrix, TamperedSampleCaught) {
  const MatrixParam param = GetParam();
  const sim::Scenario scenario = std::string(param.scenario) == "airport"
                                     ? sim::make_airport_scenario(kT0)
                                     : sim::make_residential_scenario(kT0);

  ProofOfAlibi poa = fly(scenario, param.mode, param.encrypted);
  ASSERT_GT(poa.samples.size(), 1u);
  poa.samples[poa.samples.size() / 2].sample[9] ^= 0x01;

  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 500);
  EXPECT_FALSE(verdict.accepted) << to_string(param.mode);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModeMatrix,
    ::testing::Values(
        MatrixParam{AuthMode::kRsaPerSample, false, "airport"},
        MatrixParam{AuthMode::kRsaPerSample, true, "airport"},
        MatrixParam{AuthMode::kRsaPerSample, false, "residential"},
        MatrixParam{AuthMode::kRsaPerSample, true, "residential"},
        MatrixParam{AuthMode::kHmacSession, true, "airport"},
        MatrixParam{AuthMode::kHmacSession, true, "residential"},
        MatrixParam{AuthMode::kBatchSignature, false, "airport"},
        MatrixParam{AuthMode::kBatchSignature, true, "airport"},
        MatrixParam{AuthMode::kBatchSignature, false, "residential"}),
    param_name);

}  // namespace
}  // namespace alidrone::core
