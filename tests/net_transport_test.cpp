// Socket transport end-to-end (labelled `transport tsan`):
//
//   1. request/response over UDS and TCP with the exact error contract
//      the in-process bus defines (out_of_range for unknown endpoints,
//      rethrown handler errors, TimeoutError on resets, DeadlineExpired
//      on hung reads);
//   2. correlation-id multiplexing: many caller threads share a few
//      sockets without crosstalk;
//   3. ReliableChannel riding a socket client unmodified — a stalled
//      server trips the per-attempt deadline, charges the breaker and
//      bumps the deadline_expired counter (the retry loop stays live);
//   4. the acceptance bar: an Auditor served over >= 1024 concurrent
//      loopback connections produces verdicts, audit logs and a ledger
//      root byte-identical to the same submissions over the in-process
//      MessageBus.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/ingest.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "ledger/ledger.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "net/transport/client.h"
#include "net/transport/frame.h"
#include "net/transport/server.h"
#include "net/transport/sockets.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resilience/reliable_channel.h"
#include "resilience/sim_clock.h"
#include "sim/route.h"

namespace alidrone {
namespace {

using net::transport::TransportClient;
using net::transport::TransportServer;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::size_t kManyConnections = 256;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::size_t kManyConnections = 256;
#else
constexpr std::size_t kManyConnections = 1024;
#endif
#else
constexpr std::size_t kManyConnections = 1024;
#endif

std::string unique_uds(const std::string& tag) {
  return "uds:/tmp/alidrone_" + tag + "_" + std::to_string(getpid()) + ".sock";
}

crypto::Bytes bytes_of(std::string_view text) {
  return crypto::Bytes(text.begin(), text.end());
}

// ---- 1. Contract over real sockets -------------------------------------

class TransportContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TransportContractTest, EchoUnknownEndpointAndHandlerErrors) {
  obs::MetricsRegistry registry;
  TransportServer::Config config;
  config.listen = {GetParam()};
  config.workers = 2;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.register_endpoint("echo", [](const crypto::Bytes& in) {
    crypto::Bytes out = in;
    out.push_back('!');
    return out;
  });
  server.register_endpoint("boom", [](const crypto::Bytes&) -> crypto::Bytes {
    throw std::runtime_error("handler exploded");
  });
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.registry = &registry;
  TransportClient client(std::move(client_config));

  crypto::Bytes expected = bytes_of("hello");
  expected.push_back('!');
  EXPECT_EQ(client.request("echo", bytes_of("hello")), expected);
  EXPECT_EQ(client.request("echo", crypto::Bytes{}), bytes_of("!"));

  EXPECT_THROW(client.request("nope", bytes_of("x")), std::out_of_range);
  try {
    client.request("boom", bytes_of("x"));
    FAIL() << "handler error not propagated";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "handler exploded");
  }

  // Clients have no server side.
  EXPECT_THROW(client.register_endpoint("x", [](const crypto::Bytes& in) {
    return in;
  }),
               std::logic_error);

  // Local loopback dispatch on the server itself (what a co-resident
  // ReplicatedAuditor uses) shares the endpoint table.
  EXPECT_EQ(server.request("echo", bytes_of("local")), bytes_of("local!"));
  EXPECT_THROW(server.request("nope", bytes_of("x")), std::out_of_range);

  server.stop();
}

INSTANTIATE_TEST_SUITE_P(UdsAndTcp, TransportContractTest,
                         ::testing::Values(std::string("tcp:127.0.0.1:0"),
                                           unique_uds("contract")));

TEST(TransportTest, ConnectionTraceAndCountersTrack) {
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(1, 128);
  TransportServer::Config config;
  config.listen = {unique_uds("trace")};
  config.workers = 1;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.set_trace(&recorder);
  server.register_endpoint("echo",
                           [](const crypto::Bytes& in) { return in; });
  server.start();

  {
    TransportClient::Config client_config;
    client_config.address = server.bound_addresses()[0];
    client_config.registry = &registry;
    TransportClient client(std::move(client_config));
    EXPECT_EQ(client.request("echo", bytes_of("ping")), bytes_of("ping"));
    EXPECT_EQ(client.stats().requests, 1u);
    EXPECT_EQ(client.stats().connects, 1u);
  }  // client destruction closes the socket

  // Poll briefly: the close lands on the worker asynchronously.
  for (int i = 0; i < 100 && server.stats().conns_closed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const TransportServer::Stats stats = server.stats();
  EXPECT_EQ(stats.conns_opened, 1u);
  EXPECT_EQ(stats.conns_closed, 1u);
  EXPECT_EQ(stats.frames_in, 1u);
  EXPECT_EQ(stats.frames_out, 1u);
  EXPECT_EQ(stats.requests_handled, 1u);
  EXPECT_EQ(stats.torn_frames, 0u);
  server.stop();

  bool saw_open = false;
  bool saw_close = false;
  for (const obs::TraceEvent& event : recorder.events()) {
    if (event.kind != obs::TraceKind::kTransportConn) continue;
    if (event.a == 1) saw_open = true;
    if (event.a == 0) saw_close = true;
  }
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(saw_close);
}

// ---- 2. Correlation-id multiplexing ------------------------------------

TEST(TransportTest, ManyThreadsMultiplexFewConnections) {
  obs::MetricsRegistry registry;
  TransportServer::Config config;
  config.listen = {unique_uds("mux")};
  config.workers = 2;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.register_endpoint("double", [](const crypto::Bytes& in) {
    crypto::Bytes out = in;
    out.insert(out.end(), in.begin(), in.end());
    return out;
  });
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.connections = 2;  // 8 threads share 2 sockets
  client_config.registry = &registry;
  TransportClient client(std::move(client_config));

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 25;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, &mismatches, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const crypto::Bytes payload =
            bytes_of("t" + std::to_string(t) + ".r" + std::to_string(i));
        crypto::Bytes expected = payload;
        expected.insert(expected.end(), payload.begin(), payload.end());
        if (client.request("double", payload) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(client.stats().requests, kThreads * kPerThread);
  EXPECT_EQ(client.stats().connects, 2u);  // the pool, not one per request
  EXPECT_EQ(server.stats().requests_handled, kThreads * kPerThread);
  server.stop();
}

// ---- 3. Deadlines: a hung socket trips retry/breaker -------------------

TEST(TransportTest, DeadlineExpiredOnHungHandler) {
  obs::MetricsRegistry registry;
  TransportServer::Config config;
  config.listen = {unique_uds("deadline")};
  config.workers = 2;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.register_endpoint("slow", [](const crypto::Bytes& in) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return in;
  });
  server.register_endpoint("fast",
                           [](const crypto::Bytes& in) { return in; });
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.connections = 2;
  client_config.registry = &registry;
  TransportClient client(std::move(client_config));

  // Raw client: the 3-arg request throws DeadlineExpired, which IS a
  // TimeoutError (so untyped retry loops keep working).
  EXPECT_THROW(client.request("slow", bytes_of("x"), 0.02),
               net::DeadlineExpired);
  try {
    client.request("slow", bytes_of("x"), 0.02);
    FAIL() << "deadline did not fire";
  } catch (const net::TimeoutError&) {
  }
  EXPECT_EQ(client.stats().deadline_expired, 2u);

  // ReliableChannel over the socket client, unmodified: each hung
  // attempt costs attempt_timeout_s, bumps deadline_expired, charges the
  // breaker, and the retry loop regains control instead of hanging.
  resilience::SimClock clock;
  resilience::ReliableChannel::Config channel_config;
  channel_config.retry.max_attempts = 3;
  channel_config.retry.attempt_timeout_s = 0.02;
  channel_config.retry.initial_backoff_s = 0.01;
  channel_config.retry.deadline_s = 0.0;  // per-attempt deadline does the work
  channel_config.breaker.failure_threshold = 3;
  channel_config.breaker.cooldown_s = 1000.0;
  channel_config.metrics = &registry;
  resilience::ReliableChannel channel(client, clock, channel_config);

  const auto outcome = channel.request("slow", bytes_of("x"));
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_NE(outcome.error.find("attempt deadline"), std::string::npos);
  EXPECT_EQ(channel.counters().deadline_expired, 3u);
  EXPECT_EQ(channel.breaker_trips(), 1u);  // 3 failures tripped the breaker

  // The breaker now fails fast — no socket wait at all.
  const auto fast_fail = channel.request("slow", bytes_of("x"));
  EXPECT_FALSE(fast_fail.ok);
  EXPECT_TRUE(fast_fail.circuit_open);

  // Let the stalled responses land (and be dropped as unmatched ids),
  // then prove the connections survived the abandonments.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_EQ(client.request("fast", bytes_of("still alive")),
            bytes_of("still alive"));
  server.stop();
}

// ---- 4. The acceptance bar: >= 1024 connections, byte-identical --------

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

const geo::LocalFrame& test_frame() {
  static const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  return frame;
}

std::vector<geo::GeoZone> test_zones() {
  std::vector<geo::GeoZone> zones;
  for (double x : {100.0, 300.0}) {
    zones.push_back({test_frame().to_geo(geo::Vec2{x, 400.0}), 30.0});
  }
  return zones;
}

core::ProofOfAlibi make_flight_poa(core::DroneClient& client, double start,
                                   std::uint64_t gps_seed) {
  sim::Route route(
      test_frame(),
      {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}}, start);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = start;
  rc.seed = gps_seed;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());

  std::vector<geo::Circle> local_zones;
  for (const geo::GeoZone& z : test_zones()) {
    local_zones.push_back({test_frame().to_local(z.center), z.radius_m});
  }
  core::AdaptiveSampler policy(test_frame(), local_zones,
                               geo::kFaaMaxSpeedMps, 0.2);
  core::FlightConfig config;
  config.end_time = start + 30.0;
  config.frame = test_frame();
  config.local_zones = local_zones;
  return client.fly(receiver, policy, config);
}

/// One raw framed request on an already-connected blocking socket.
crypto::Bytes raw_request(int fd, std::uint64_t correlation,
                          const std::string& endpoint,
                          const crypto::Bytes& body) {
  using namespace net::transport;
  crypto::Bytes frame;
  append_request_frame(frame, correlation, endpoint, body);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = write(fd, frame.data() + off, frame.size() - off);
    if (n <= 0) throw std::runtime_error("raw_request: write failed");
    off += static_cast<std::size_t>(n);
  }

  FrameAssembler assembler;
  crypto::Bytes response;
  bool done = false;
  while (!done) {
    const std::span<std::uint8_t> dst = assembler.writable(4096);
    const ssize_t n = read(fd, dst.data(), dst.size());
    if (n <= 0) throw std::runtime_error("raw_request: read failed");
    const std::string err = assembler.commit(
        static_cast<std::size_t>(n), 4096,
        [&](std::span<const std::uint8_t> payload) -> std::string {
          ResponseEnvelope resp;
          const std::string perr = parse_response(payload, resp);
          if (!perr.empty()) return perr;
          if (resp.correlation_id != correlation) {
            return "unexpected correlation id";
          }
          if (resp.status != kStatusOk) return "non-ok status";
          response.assign(resp.body.begin(), resp.body.end());
          done = true;
          return std::string();
        });
    if (!err.empty()) throw std::runtime_error("raw_request: " + err);
  }
  return response;
}

TEST(TransportAuditorTest, ByteIdenticalToBusOver1024Connections) {
  net::transport::raise_fd_limit(kManyConnections + 256);

  // Shared, generated once: the drone, its proofs, the zone requests.
  // Both runs then see byte-identical wire traffic.
  crypto::DeterministicRandom operator_rng("transport-operator");
  crypto::DeterministicRandom owner_rng("transport-owner");
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "transport-device";
  tee::DroneTee tee(tee_config);
  core::DroneClient drone(tee, kTestKeyBits, operator_rng);
  core::ZoneOwner owner(kTestKeyBits, owner_rng);
  std::vector<core::RegisterZoneRequest> zone_requests;
  for (const geo::GeoZone& zone : test_zones()) {
    zone_requests.push_back(owner.make_zone_request(zone, "transport zone"));
  }

  auto make_auditor = [&](obs::MetricsRegistry& reg) {
    crypto::DeterministicRandom auditor_rng("transport-auditor");
    core::ProtocolParams params;
    params.auditor_shards = 8;
    params.metrics = &reg;
    auto auditor =
        std::make_unique<core::Auditor>(kTestKeyBits, auditor_rng, params);
    for (const core::RegisterZoneRequest& request : zone_requests) {
      auditor->register_zone(request);
    }
    return auditor;
  };

  // Proof frames: 3 distinct flights, serialized once.
  std::vector<crypto::Bytes> frames;
  std::vector<core::ProofOfAlibi> poas;
  // The drone must know its id before flying; register against a
  // throwaway auditor wired over a bus (the registration request bytes
  // are deterministic, so re-registering later runs is idempotent).
  {
    obs::MetricsRegistry scratch_reg;
    auto scratch = make_auditor(scratch_reg);
    net::MessageBus scratch_bus;
    scratch->bind(scratch_bus);
    ASSERT_TRUE(drone.register_with_auditor(scratch_bus));
  }
  for (int f = 0; f < 3; ++f) {
    poas.push_back(make_flight_poa(drone, kT0 + f * 100.0, 70u + f));
    frames.push_back(core::SubmitPoaRequest{poas.back().serialize()}.encode());
  }

  // ---- Baseline: the in-process MessageBus run ----
  std::vector<crypto::Bytes> bus_verdicts;
  ledger::Digest bus_root;
  std::uint64_t bus_entries = 0;
  std::size_t bus_audit_events = 0;
  {
    obs::MetricsRegistry reg;
    auto auditor = make_auditor(reg);
    auto led = std::make_shared<ledger::Ledger>();
    auto log = std::make_shared<core::AuditLog>();
    log->attach_ledger(led);
    auditor->attach_audit_log(log);

    net::MessageBus bus;
    auditor->bind(bus);
    core::AuditorIngest::Config ingest_config;
    ingest_config.verify_threads = 2;
    core::AuditorIngest ingest(*auditor, ingest_config);
    ingest.bind(bus);

    ASSERT_TRUE(drone.register_with_auditor(bus));
    for (std::size_t i = 0; i < kManyConnections; ++i) {
      bus_verdicts.push_back(
          bus.request("auditor.submit_poa", frames[i % frames.size()]));
    }
    bus_root = led->root_hash();
    bus_entries = led->entry_count();
    bus_audit_events = log->size();
  }
  ASSERT_GT(bus_entries, 0u);

  // ---- Socket run: same submissions over >= 1024 live connections ----
  std::vector<crypto::Bytes> socket_verdicts;
  {
    obs::MetricsRegistry reg;
    auto auditor = make_auditor(reg);
    auto led = std::make_shared<ledger::Ledger>();
    auto log = std::make_shared<core::AuditLog>();
    log->attach_ledger(led);
    auditor->attach_audit_log(log);

    TransportServer::Config config;
    config.listen = {unique_uds("byteident")};
    config.workers = 2;
    config.pool_buffers = 64;
    config.registry = &reg;
    TransportServer server(std::move(config));
    auditor->bind(server);
    core::AuditorIngest::Config ingest_config;
    ingest_config.verify_threads = 2;
    core::AuditorIngest ingest(*auditor, ingest_config);
    ingest.bind(server);
    server.start();
    const std::string address = server.bound_addresses()[0];

    {
      TransportClient::Config client_config;
      client_config.address = address;
      TransportClient register_client(std::move(client_config));
      ASSERT_TRUE(drone.register_with_auditor(register_client));
    }

    // Establish every connection first — all concurrently open for the
    // whole submission phase — then submit in the bus run's order.
    // Serialized submission fixes the commit order; the concurrency
    // claim is that the server holds and serves 1024 live sockets.
    std::vector<int> fds;
    fds.reserve(kManyConnections);
    for (std::size_t i = 0; i < kManyConnections; ++i) {
      fds.push_back(net::transport::connect_socket(address, 5.0));
    }
    for (std::size_t i = 0; i < kManyConnections; ++i) {
      socket_verdicts.push_back(raw_request(
          fds[i], i + 1, "auditor.submit_poa", frames[i % frames.size()]));
    }
    const TransportServer::Stats stats = server.stats();
    EXPECT_GE(stats.conns_opened, kManyConnections);
    // +1: the drone registration also went over the socket.
    EXPECT_EQ(stats.requests_handled, kManyConnections + 1);
    for (const int fd : fds) close(fd);
    server.stop();

    EXPECT_EQ(led->root_hash(), bus_root);
    EXPECT_EQ(led->entry_count(), bus_entries);
    EXPECT_EQ(log->size(), bus_audit_events);
  }

  ASSERT_EQ(socket_verdicts.size(), bus_verdicts.size());
  for (std::size_t i = 0; i < bus_verdicts.size(); ++i) {
    ASSERT_EQ(socket_verdicts[i], bus_verdicts[i]) << "submission " << i;
  }
}

}  // namespace
}  // namespace alidrone
