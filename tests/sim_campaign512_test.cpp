// The ISSUE acceptance bar, as a test (labelled `campaign512` — heavy,
// excluded from the sanitizer label sweeps): a 512-concurrent-flight
// adversarial campaign through the real ingest pipeline replays
// byte-identically from its seed across scheduler/shard configurations,
// with chain-forge and replay detected at precision/recall 1.0.
#include <gtest/gtest.h>

#include "sim/campaign.h"

namespace alidrone::sim {
namespace {

TEST(Campaign512, ReplaysByteIdenticallyAtFleetScale) {
  CampaignConfig config;
  config.flights = 512;
  config.seed = 2026;
  config.scheduler_workers = 4;
  config.auditor_shards = 8;
  config.ingest_verify_threads = 2;
  const CampaignReport parallel = run_campaign(config);

  CampaignConfig serial_config = config;
  serial_config.scheduler_workers = 1;
  serial_config.auditor_shards = 1;
  serial_config.ingest_verify_threads = 0;
  const CampaignReport serial = run_campaign(serial_config);

  ASSERT_EQ(parallel.outcomes.size(), 512u);
  EXPECT_EQ(parallel.fingerprint(), serial.fingerprint());

  // The hard-reject classes must be perfect at scale; in practice the
  // whole playbook is (each class flies 32 sorties here).
  for (const AttackClass c : {AttackClass::kChainForge, AttackClass::kReplay}) {
    const ClassMetrics& m = parallel.per_class[static_cast<std::size_t>(c)];
    EXPECT_GT(m.flights, 0u) << attack_class_name(c);
    EXPECT_EQ(m.precision, 1.0) << attack_class_name(c);
    EXPECT_EQ(m.recall, 1.0) << attack_class_name(c);
  }
  // No honest drone was falsely flagged.
  const ClassMetrics& honest =
      parallel.per_class[static_cast<std::size_t>(AttackClass::kHonest)];
  EXPECT_EQ(honest.flagged, 0u);
  EXPECT_EQ(honest.recall, 1.0);
}

}  // namespace
}  // namespace alidrone::sim
