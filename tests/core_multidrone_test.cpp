// Multi-drone integration: one Auditor serving a fleet — identity
// isolation, per-drone verdicts and accusation routing when several
// drones share the same airspace and the same zone database.
#include <gtest/gtest.h>

#include <memory>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

struct Fleet {
  crypto::DeterministicRandom auditor_rng{std::string_view("fleet-auditor")};
  crypto::DeterministicRandom owner_rng{std::string_view("fleet-owner")};
  net::MessageBus bus;
  Auditor auditor{kTestKeyBits, auditor_rng};
  ZoneOwner owner{kTestKeyBits, owner_rng};
  sim::Scenario scenario{sim::make_residential_scenario(kT0)};

  struct Member {
    std::unique_ptr<tee::DroneTee> tee;
    std::unique_ptr<DroneClient> client;
    std::unique_ptr<crypto::DeterministicRandom> rng;
  };
  std::vector<Member> drones;

  Fleet() {
    auditor.bind(bus);
    for (const geo::GeoZone& z : scenario.zones) owner.register_zone(bus, z, "house");
    for (int i = 0; i < 3; ++i) {
      Member m;
      tee::DroneTee::Config config;
      config.key_bits = kTestKeyBits;
      config.manufacturing_seed = "fleet-device-" + std::to_string(i);
      m.tee = std::make_unique<tee::DroneTee>(config);
      m.rng = std::make_unique<crypto::DeterministicRandom>(
          "fleet-operator-" + std::to_string(i));
      m.client = std::make_unique<DroneClient>(*m.tee, kTestKeyBits, *m.rng);
      EXPECT_TRUE(m.client->register_with_auditor(bus));
      drones.push_back(std::move(m));
    }
  }

  /// Fly drone `i` over the residential route, offset in time so flights
  /// do not coincide.
  ProofOfAlibi fly(std::size_t i, bool through_zone = false) {
    const double offset = static_cast<double>(i) * 1000.0;
    const sim::Scenario shifted = sim::make_residential_scenario(kT0 + offset);

    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = shifted.route.start_time();

    gps::PositionSource source = shifted.route.as_position_source();
    if (through_zone) {
      // A rogue detour: cut straight through house #10's zone.
      const geo::GeoZone target = shifted.zones[10];
      source = [base = shifted.route.as_position_source(), target,
                start = shifted.route.start_time()](double t) {
        gps::GpsFix f = base(t);
        if (t - start > 40.0 && t - start < 45.0) f.position = target.center;
        return f;
      };
    }
    gps::GpsReceiverSim receiver(rc, std::move(source));
    AdaptiveSampler policy(shifted.frame, shifted.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = shifted.route.end_time();
    config.frame = shifted.frame;
    config.local_zones = shifted.local_zones();
    return drones[i].client->fly(receiver, policy, config);
  }
};

TEST(Fleet, DistinctIdentitiesIssued) {
  Fleet fleet;
  EXPECT_EQ(fleet.auditor.drone_count(), 3u);
  EXPECT_EQ(fleet.drones[0].client->id(), "drone-1");
  EXPECT_EQ(fleet.drones[1].client->id(), "drone-2");
  EXPECT_EQ(fleet.drones[2].client->id(), "drone-3");
}

TEST(Fleet, PerDroneVerdictsIndependent) {
  Fleet fleet;
  const ProofOfAlibi clean0 = fleet.fly(0);
  const ProofOfAlibi rogue1 = fleet.fly(1, /*through_zone=*/true);
  const ProofOfAlibi clean2 = fleet.fly(2);

  const PoaVerdict v0 = fleet.auditor.verify_poa(clean0, kT0 + 500);
  const PoaVerdict v1 = fleet.auditor.verify_poa(rogue1, kT0 + 1500);
  const PoaVerdict v2 = fleet.auditor.verify_poa(clean2, kT0 + 2500);

  EXPECT_TRUE(v0.accepted && v0.compliant) << v0.detail;
  EXPECT_TRUE(v1.accepted);   // honest TEE signed the rogue detour too
  EXPECT_FALSE(v1.compliant); // ...which is exactly what convicts it
  EXPECT_TRUE(v2.accepted && v2.compliant) << v2.detail;
  EXPECT_EQ(fleet.auditor.retained_poa_count(), 3u);
}

TEST(Fleet, CrossDroneSignaturesNeverValidate) {
  Fleet fleet;
  ProofOfAlibi poa = fleet.fly(0);
  // Present drone 0's flight as drone 1's.
  poa.drone_id = fleet.drones[1].client->id();
  EXPECT_FALSE(fleet.auditor.verify_poa(poa, kT0 + 500).accepted);
}

TEST(Fleet, AccusationTargetsTheRightDrone) {
  Fleet fleet;
  fleet.auditor.verify_poa(fleet.fly(0), kT0 + 500);                       // clean
  fleet.auditor.verify_poa(fleet.fly(1, /*through_zone=*/true), kT0 + 1500);  // rogue

  // The owner saw *a* drone at house #10 during drone 1's flight window.
  const double incident = kT0 + 1000.0 + 42.0;
  const AccusationRequest vs_rogue =
      fleet.owner.make_accusation("zone-11", fleet.drones[1].client->id(), incident);
  const AccusationResponse rogue_answer = fleet.auditor.handle_accusation(vs_rogue);
  EXPECT_TRUE(rogue_answer.ok);
  EXPECT_FALSE(rogue_answer.alibi_holds);  // drone 1 cannot prove alibi

  // Drone 0 was not even flying at that time: no covering PoA either,
  // but for its own flight window its PoA clears it.
  const AccusationRequest vs_clean_in_window =
      fleet.owner.make_accusation("zone-11", fleet.drones[0].client->id(), kT0 + 42.0);
  const AccusationResponse clean_answer =
      fleet.auditor.handle_accusation(vs_clean_in_window);
  EXPECT_TRUE(clean_answer.ok);
  EXPECT_TRUE(clean_answer.alibi_holds) << clean_answer.detail;
}

TEST(Fleet, ZoneQueriesIsolatedPerDroneNonces) {
  Fleet fleet;
  const QueryRect rect{{40.10, -88.23}, {40.13, -88.20}};
  // Each drone queries with its own nonce; one drone's nonce cannot be
  // replayed by another (the signature binds it to D-).
  const ZoneQueryRequest q0 = fleet.drones[0].client->make_zone_query(rect);
  EXPECT_TRUE(fleet.auditor.query_zones(q0).ok);

  ZoneQueryRequest stolen = q0;
  stolen.drone_id = fleet.drones[1].client->id();
  const ZoneQueryResponse response = fleet.auditor.query_zones(stolen);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad nonce signature");
}

}  // namespace
}  // namespace alidrone::core
