// Real-time auditing (the paper's deferred alternative in Section IV-B):
// incremental verification at the Auditor and the radio-energy tradeoff
// that justifies the paper's end-of-flight choice.
#include <gtest/gtest.h>

#include "core/flight.h"
#include "core/sampler.h"
#include "core/streaming.h"
#include "geo/units.h"
#include "gps/receiver_sim.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
const geo::GeoPoint kAnchor{40.1100, -88.2200};

/// A TEE plus helper to produce genuine signed samples at given positions.
struct SignedSampleFactory {
  tee::DroneTee tee;

  SignedSampleFactory() : tee(make_config()) {}

  static tee::DroneTee::Config make_config() {
    tee::DroneTee::Config config;
    config.key_bits = 512;
    config.manufacturing_seed = "streaming-device";
    return config;
  }

  SignedSample make(double east_m, double north_m, double t) {
    const geo::LocalFrame frame(kAnchor);
    const geo::GeoPoint p = frame.to_geo({east_m, north_m});
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = t;
    gps::GpsReceiverSim sim(rc, [p](double tt) {
      gps::GpsFix f;
      f.position = p;
      f.unix_time = tt;
      return f;
    });
    for (const std::string& s : sim.advance_to(t)) tee.feed_gps(s);
    const tee::InvokeResult result = tee.monitor().invoke(
        tee.sampler_uuid(),
        static_cast<std::uint32_t>(tee::SamplerCommand::kGetGpsAuth));
    return {result.outputs[0], result.outputs[1]};
  }
};

SignedSampleFactory& factory() {
  static SignedSampleFactory f;
  return f;
}

std::vector<geo::GeoZone> one_zone(double east_m, double north_m, double r) {
  const geo::LocalFrame frame(kAnchor);
  return {{frame.to_geo({east_m, north_m}), r}};
}

TEST(StreamingVerifier, AcceptsCleanStream) {
  StreamingVerifier verifier(factory().tee.verification_key(),
                             crypto::HashAlgorithm::kSha1,
                             one_zone(0, 5000, 50.0), geo::kFaaMaxSpeedMps);
  for (int i = 0; i < 10; ++i) {
    const auto status = verifier.ingest(factory().make(i * 10.0, 0, kT0 + i));
    EXPECT_EQ(status, StreamingVerifier::SampleStatus::kAccepted) << i;
  }
  EXPECT_EQ(verifier.accepted(), 10u);
  EXPECT_TRUE(verifier.compliant_so_far());
}

TEST(StreamingVerifier, FlagsInsufficientGapTheMomentItArrives) {
  StreamingVerifier verifier(factory().tee.verification_key(),
                             crypto::HashAlgorithm::kSha1,
                             one_zone(50, 100, 40.0), geo::kFaaMaxSpeedMps);
  EXPECT_EQ(verifier.ingest(factory().make(0, 0, kT0)),
            StreamingVerifier::SampleStatus::kAccepted);
  // 60 s gap while ~60 m from the zone: the travel ellipse swallows it.
  EXPECT_EQ(verifier.ingest(factory().make(100, 0, kT0 + 60.0)),
            StreamingVerifier::SampleStatus::kInsufficientPair);
  EXPECT_FALSE(verifier.compliant_so_far());
  EXPECT_EQ(verifier.violations(), 1u);
}

TEST(StreamingVerifier, FlagsSampleInsideZone) {
  StreamingVerifier verifier(factory().tee.verification_key(),
                             crypto::HashAlgorithm::kSha1,
                             one_zone(50, 0, 40.0), geo::kFaaMaxSpeedMps);
  EXPECT_EQ(verifier.ingest(factory().make(50, 0, kT0)),
            StreamingVerifier::SampleStatus::kInsideZone);
  EXPECT_EQ(verifier.violations(), 1u);
}

TEST(StreamingVerifier, RejectsForgedAndMalformedSamples) {
  StreamingVerifier verifier(factory().tee.verification_key(),
                             crypto::HashAlgorithm::kSha1, {}, geo::kFaaMaxSpeedMps);
  SignedSample genuine = factory().make(0, 0, kT0);

  SignedSample tampered = genuine;
  tampered.sample[3] ^= 1;
  EXPECT_EQ(verifier.ingest(tampered),
            StreamingVerifier::SampleStatus::kBadSignature);

  SignedSample bad_sig = genuine;
  bad_sig.signature[3] ^= 1;
  EXPECT_EQ(verifier.ingest(bad_sig),
            StreamingVerifier::SampleStatus::kBadSignature);

  EXPECT_EQ(verifier.accepted(), 0u);  // rejected samples never count
}

TEST(StreamingVerifier, RejectsOutOfOrderTimestamps) {
  StreamingVerifier verifier(factory().tee.verification_key(),
                             crypto::HashAlgorithm::kSha1, {}, geo::kFaaMaxSpeedMps);
  EXPECT_EQ(verifier.ingest(factory().make(0, 0, kT0 + 100)),
            StreamingVerifier::SampleStatus::kAccepted);
  EXPECT_EQ(verifier.ingest(factory().make(10, 0, kT0 + 50)),
            StreamingVerifier::SampleStatus::kOutOfOrder);
}

TEST(StreamingUplink, TransmitsAndTracksEnergy) {
  net::MessageBus bus;
  std::size_t packets = 0;
  bus.register_endpoint("auditor.stream", [&](const crypto::Bytes&) {
    ++packets;
    return crypto::Bytes{};
  });

  StreamingUplink uplink(bus, "auditor.stream");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(uplink.send(factory().make(i * 10.0, 0, kT0 + 200 + i)));
  }
  EXPECT_EQ(packets, 5u);
  EXPECT_EQ(uplink.transmissions(), 5u);
  EXPECT_EQ(uplink.queued(), 0u);
  EXPECT_GT(uplink.energy_joules(), 5 * 0.030);  // at least the wake cost
}

TEST(StreamingUplink, DroppedPacketsAreQueuedAndRetransmitted) {
  net::MessageBus bus;
  std::size_t received = 0;
  bus.register_endpoint("auditor.stream", [&](const crypto::Bytes& payload) {
    net::Reader r(payload);
    received += *r.u32();
    return crypto::Bytes{};
  });
  net::MessageBus::FaultConfig faults;
  faults.drop_probability = 0.5;  // half the packets vanish
  faults.seed = 9;
  bus.set_faults(faults);

  StreamingUplink uplink(bus, "auditor.stream");
  for (int i = 0; i < 20; ++i) {
    uplink.send(factory().make(i * 10.0, 0, kT0 + 300 + i));
  }
  while (uplink.queued() > 0) uplink.flush();
  EXPECT_EQ(received, 20u);  // every sample eventually arrives
  EXPECT_GT(uplink.transmissions(), 20u);  // at the cost of retries
}

TEST(StreamingUplink, StreamingCostsMoreEnergyThanBatchUpload) {
  // The quantified version of the paper's G2 argument for end-of-flight
  // submission: per-sample radio wakes dominate.
  net::MessageBus bus;
  bus.register_endpoint("auditor.stream",
                        [](const crypto::Bytes&) { return crypto::Bytes{}; });
  StreamingUplink uplink(bus, "auditor.stream");

  constexpr int kSamples = 50;
  std::size_t sample_bytes = 0;
  std::size_t sig_bytes = 0;
  for (int i = 0; i < kSamples; ++i) {
    const SignedSample s = factory().make(i * 10.0, 0, kT0 + 400 + i);
    sample_bytes = s.sample.size();
    sig_bytes = s.signature.size();
    uplink.send(s);
  }
  const double streaming = uplink.energy_joules();
  const double batch = uplink.batch_upload_energy_j(kSamples, sample_bytes, sig_bytes);
  EXPECT_GT(streaming, 5.0 * batch);  // an order of magnitude more
}

// Equivalence: streaming the samples of a full flight through the
// incremental verifier yields exactly the pairwise violations the batch
// checker (eq. 1) reports on the same trace.
TEST(StreamingVerifier, AgreesWithBatchSufficiencyChecker) {
  const sim::Scenario scenario = sim::make_residential_scenario(kT0 + 10000);

  tee::DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = "streaming-equivalence-device";
  tee::DroneTee tee(config);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  // Deliberately undersample (2 Hz fixed) so violations exist.
  FixedRateSampler policy(2.0, rc.start_time);
  FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const FlightResult result = run_flight(tee, receiver, policy, flight);

  StreamingVerifier verifier(tee.verification_key(), crypto::HashAlgorithm::kSha1,
                             scenario.zones, geo::kFaaMaxSpeedMps);
  std::vector<gps::GpsFix> fixes;
  for (const SignedSample& s : result.poa_samples) {
    verifier.ingest(s);
    if (const auto f = s.fix()) fixes.push_back(*f);
  }

  const SufficiencyReport batch =
      check_sufficiency(fixes, scenario.zones, geo::kFaaMaxSpeedMps);
  EXPECT_EQ(verifier.accepted(), result.poa_samples.size());
  EXPECT_EQ(verifier.violations(), batch.violations.size());
  EXPECT_GT(verifier.violations(), 0u);  // the 2 Hz undersampling shows up
  EXPECT_EQ(verifier.compliant_so_far(), batch.sufficient);
}

}  // namespace
}  // namespace alidrone::core
