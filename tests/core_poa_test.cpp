#include <gtest/gtest.h>

#include "core/poa.h"
#include "core/sufficiency.h"
#include "geo/units.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
const geo::GeoPoint kAnchor{40.1100, -88.2200};

gps::GpsFix make_fix(double east_m, double north_m, double t) {
  const geo::LocalFrame frame(kAnchor);
  gps::GpsFix f;
  f.position = frame.to_geo({east_m, north_m});
  f.unix_time = t;
  return f;
}

SignedSample make_sample(double east_m, double north_m, double t) {
  return {tee::encode_sample(make_fix(east_m, north_m, t)), crypto::Bytes{0xAA}};
}

TEST(ProofOfAlibi, SerializeParseRoundTrip) {
  ProofOfAlibi poa;
  poa.drone_id = "drone-7";
  poa.mode = AuthMode::kHmacSession;
  poa.hash = crypto::HashAlgorithm::kSha256;
  poa.encrypted = true;
  poa.samples = {make_sample(0, 0, kT0), make_sample(10, 5, kT0 + 1)};
  poa.batch_signature = {1, 2, 3};
  poa.session_key_ciphertext = {4, 5};
  poa.session_key_signature = {6};

  const auto parsed = ProofOfAlibi::parse(poa.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->drone_id, "drone-7");
  EXPECT_EQ(parsed->mode, AuthMode::kHmacSession);
  EXPECT_EQ(parsed->hash, crypto::HashAlgorithm::kSha256);
  EXPECT_TRUE(parsed->encrypted);
  ASSERT_EQ(parsed->samples.size(), 2u);
  EXPECT_EQ(parsed->samples[0].sample, poa.samples[0].sample);
  EXPECT_EQ(parsed->samples[1].signature, poa.samples[1].signature);
  EXPECT_EQ(parsed->batch_signature, poa.batch_signature);
  EXPECT_EQ(parsed->session_key_ciphertext, poa.session_key_ciphertext);
}

TEST(ProofOfAlibi, ParseRejectsGarbage) {
  EXPECT_FALSE(ProofOfAlibi::parse({}).has_value());
  EXPECT_FALSE(ProofOfAlibi::parse(crypto::Bytes{1, 2, 3}).has_value());

  ProofOfAlibi poa;
  poa.drone_id = "d";
  crypto::Bytes bytes = poa.serialize();
  bytes.push_back(0x00);  // trailing garbage
  EXPECT_FALSE(ProofOfAlibi::parse(bytes).has_value());
}

TEST(ProofOfAlibi, ParseRejectsBadEnums) {
  ProofOfAlibi poa;
  poa.drone_id = "d";
  crypto::Bytes bytes = poa.serialize();
  // Byte layout: [len u32]["d"][mode][hash][encrypted]...
  bytes[5] = 7;  // invalid mode
  EXPECT_FALSE(ProofOfAlibi::parse(bytes).has_value());
}

TEST(ProofOfAlibi, StartEndTimes) {
  ProofOfAlibi poa;
  EXPECT_FALSE(poa.start_time().has_value());
  poa.samples = {make_sample(0, 0, kT0), make_sample(5, 0, kT0 + 30)};
  EXPECT_NEAR(*poa.start_time(), kT0, 1e-6);
  EXPECT_NEAR(*poa.end_time(), kT0 + 30, 1e-6);
}

TEST(Sufficiency, EmptyAlibiIsNotWellFormed) {
  const SufficiencyReport report = check_sufficiency({}, {}, geo::kFaaMaxSpeedMps);
  EXPECT_FALSE(report.well_formed);
  EXPECT_FALSE(report.sufficient);
}

TEST(Sufficiency, NoZonesAlwaysSufficient) {
  const std::vector<gps::GpsFix> samples{make_fix(0, 0, kT0),
                                         make_fix(5000, 0, kT0 + 1000)};
  const SufficiencyReport report = check_sufficiency(samples, {}, geo::kFaaMaxSpeedMps);
  EXPECT_TRUE(report.well_formed);
  EXPECT_TRUE(report.sufficient);
}

TEST(Sufficiency, OutOfOrderSamplesRejected) {
  const std::vector<gps::GpsFix> samples{make_fix(0, 0, kT0 + 10),
                                         make_fix(5, 0, kT0)};
  EXPECT_FALSE(check_sufficiency(samples, {}, geo::kFaaMaxSpeedMps).well_formed);
}

TEST(Sufficiency, FarZoneSufficientCloseZoneNot) {
  const geo::LocalFrame frame(kAnchor);
  const std::vector<gps::GpsFix> samples{make_fix(0, 0, kT0),
                                         make_fix(100, 0, kT0 + 10)};
  // 10 s at v_max covers 447 m of focal slack.
  const geo::GeoZone far_zone{frame.to_geo({0, 4000}), 50.0};
  EXPECT_TRUE(check_sufficiency(samples, {far_zone}, geo::kFaaMaxSpeedMps).sufficient);

  const geo::GeoZone near_zone{frame.to_geo({50, 150}), 50.0};
  const SufficiencyReport report =
      check_sufficiency(samples, {near_zone}, geo::kFaaMaxSpeedMps);
  EXPECT_FALSE(report.sufficient);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].first_index, 0u);
  EXPECT_LT(report.violations[0].focal_sum_m, report.violations[0].allowed_m);
}

TEST(Sufficiency, SampleInsideZoneIsViolation) {
  const geo::LocalFrame frame(kAnchor);
  const std::vector<gps::GpsFix> samples{make_fix(0, 0, kT0)};
  const geo::GeoZone zone{frame.to_geo({0, 0}), 100.0};  // sample inside
  const SufficiencyReport report =
      check_sufficiency(samples, {zone}, geo::kFaaMaxSpeedMps);
  EXPECT_TRUE(report.well_formed);
  EXPECT_FALSE(report.sufficient);
}

TEST(Sufficiency, PaperTangencyThreshold) {
  // Exactly at the boundary of eq. (2): D1 + D2 == vmax * dt is sufficient,
  // a hair under is not.
  const geo::LocalFrame frame(kAnchor);
  const double vmax = geo::kFaaMaxSpeedMps;
  const double dt = 2.0;
  // Zone north of the path; D1 = D2 = 300 m - radius. A millimeter of
  // slack absorbs the local-frame projection round trip.
  const double radius = 300.0 - vmax * dt / 2.0 - 0.001;
  const geo::GeoZone zone{frame.to_geo({0, 300}), radius};
  const std::vector<gps::GpsFix> at_threshold{make_fix(0, 0, kT0),
                                              make_fix(0, 0, kT0 + dt)};
  EXPECT_TRUE(check_sufficiency(at_threshold, {zone}, vmax).sufficient);

  const geo::GeoZone bigger{frame.to_geo({0, 300}), radius + 0.01};
  EXPECT_FALSE(check_sufficiency(at_threshold, {bigger}, vmax).sufficient);
}

TEST(Sufficiency, OnlyNearestZoneReported) {
  const geo::LocalFrame frame(kAnchor);
  const std::vector<gps::GpsFix> samples{make_fix(0, 0, kT0),
                                         make_fix(10, 0, kT0 + 5)};
  const std::vector<geo::GeoZone> zones{
      {frame.to_geo({0, 120}), 30.0},   // near (violating)
      {frame.to_geo({0, 200}), 30.0},   // farther (also violating alone)
  };
  const SufficiencyReport report = check_sufficiency(samples, zones, geo::kFaaMaxSpeedMps);
  ASSERT_EQ(report.violations.size(), 1u);  // one per pair, nearest zone
  EXPECT_EQ(report.violations[0].zone_index, 0u);
}

TEST(InsufficiencyCounter, MatchesBatchChecker) {
  const geo::LocalFrame frame(kAnchor);
  const geo::GeoZone zone{frame.to_geo({0, 100}), 40.0};
  std::vector<gps::GpsFix> samples;
  for (int i = 0; i < 30; ++i) {
    // Hovering near the zone with quadratically growing time gaps; later
    // pairs allow enough travel slack to become insufficient.
    samples.push_back(make_fix(0, 0, kT0 + i * i * 0.05));
  }
  const SufficiencyReport report =
      check_sufficiency(samples, {zone}, geo::kFaaMaxSpeedMps);

  InsufficiencyCounter counter(frame, {geo::to_local(frame, zone)},
                               geo::kFaaMaxSpeedMps);
  for (const gps::GpsFix& s : samples) counter.add_sample(s);
  EXPECT_EQ(static_cast<std::size_t>(counter.count()), report.violations.size());
  EXPECT_GT(counter.count(), 0);
}

TEST(Sufficiency3d, AltitudeProvidesAlibiThePlanarModelCannot) {
  const geo::LocalFrame frame(kAnchor);
  std::vector<gps::GpsFix> samples;
  for (int i = 0; i < 5; ++i) {
    gps::GpsFix f = make_fix(i * 20.0 - 40.0, 0, kT0 + i * 0.5);
    f.altitude_m = 300.0;  // well above the zone ceiling
    samples.push_back(f);
  }
  const geo::GeoZone planar{frame.to_geo({0, 2}), 10.0};
  const geo::GeoZone3 cylinder{frame.to_geo({0, 2}), 10.0, 60.0};

  // The 2D model flags the overflight...
  EXPECT_FALSE(check_sufficiency(samples, {planar}, geo::kFaaMaxSpeedMps).sufficient);
  // ...but in 3D the drone provably stayed above the 60 m ceiling.
  EXPECT_TRUE(check_sufficiency_3d(samples, {cylinder}, geo::kFaaMaxSpeedMps).sufficient);
}

TEST(Sufficiency3d, LowFlightThroughCylinderCaught) {
  const geo::LocalFrame frame(kAnchor);
  std::vector<gps::GpsFix> samples;
  for (int i = 0; i < 5; ++i) {
    gps::GpsFix f = make_fix(i * 20.0 - 40.0, 0, kT0 + i * 2.0);
    f.altitude_m = 30.0;  // below the ceiling
    samples.push_back(f);
  }
  const geo::GeoZone3 cylinder{frame.to_geo({0, 2}), 10.0, 60.0};
  EXPECT_FALSE(check_sufficiency_3d(samples, {cylinder}, geo::kFaaMaxSpeedMps).sufficient);
}

TEST(NearestZoneDistance, InfinityWithoutZones) {
  EXPECT_TRUE(std::isinf(nearest_zone_boundary_distance({0, 0}, {})));
  const std::vector<geo::Circle> zones{{{30, 40}, 10.0}};
  EXPECT_DOUBLE_EQ(nearest_zone_boundary_distance({0, 0}, zones), 40.0);
}

}  // namespace
}  // namespace alidrone::core
