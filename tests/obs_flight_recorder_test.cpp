// obs::FlightRecorder — replay determinism of the event-id stream, ring
// overwrite semantics, and concurrent recording (run under TSan via the
// `tsan` ctest label).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"

namespace alidrone::obs {
namespace {

/// Replays a fixed seeded scenario trace into `rec`.
void replay_scenario(FlightRecorder& rec) {
  rec.record(TraceKind::kWorldSwitch, 0.1, 2, 120000, "smc-pair");
  rec.record(TraceKind::kBusRequest, 0.2, 96, 0, "auditor/submit");
  rec.record(TraceKind::kBusFault, 0.2, 0, 0, "drop:auditor/submit");
  rec.record(TraceKind::kChannelRetry, 0.4, 1, 0, "auditor/submit");
  rec.record(TraceKind::kBreakerTransition, 0.6, 0, 1, "auditor/submit");
  rec.record(TraceKind::kIngestEvaluate, 0.8, 32, 1, "batch-evaluate");
  rec.record(TraceKind::kIngestCommit, 0.9, 32, 1, "batch-commit");
  rec.record(TraceKind::kGpsFixDropped, 1.0, 3, 8, "gps-overflow");
}

TEST(FlightRecorder, RecordsEventsInOrder) {
  FlightRecorder rec(42);
  replay_scenario(rec);

  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].kind, TraceKind::kWorldSwitch);
  EXPECT_EQ(events[0].a, 2u);
  EXPECT_EQ(events[0].tag, "smc-pair");
  EXPECT_EQ(events[7].kind, TraceKind::kGpsFixDropped);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].id, FlightRecorder::event_id(42, i));
  }
}

// Same seed, same operations: the dumped stream is byte-identical — the
// property that lets a failing chaos run be diffed against a passing one.
TEST(FlightRecorder, SameSeedReplaysToIdenticalStream) {
  FlightRecorder first(1234);
  FlightRecorder second(1234);
  replay_scenario(first);
  replay_scenario(second);

  const std::vector<TraceEvent> a = first.events();
  const std::vector<TraceEvent> b = second.events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_line(), b[i].to_line()) << "diverged at seq " << i;
  }

  std::ostringstream dump_a;
  std::ostringstream dump_b;
  first.dump(dump_a);
  second.dump(dump_b);
  EXPECT_EQ(dump_a.str(), dump_b.str());
}

TEST(FlightRecorder, DifferentSeedYieldsDifferentEventIds) {
  FlightRecorder first(1);
  FlightRecorder second(2);
  replay_scenario(first);
  replay_scenario(second);

  const std::vector<TraceEvent> a = first.events();
  const std::vector<TraceEvent> b = second.events();
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FlightRecorder, EventIdsAreUniqueAcrossALongStream) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t seq = 0; seq < 10000; ++seq) {
    ids.insert(FlightRecorder::event_id(7, seq));
  }
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(FlightRecorder, RingOverwritesOldestEvents) {
  FlightRecorder rec(9, /*capacity=*/16);
  for (int i = 0; i < 40; ++i) {
    rec.record(TraceKind::kCustom, static_cast<double>(i),
               static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 40u);

  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), rec.capacity());
  // Oldest surviving event is seq 40 - capacity; the rest are contiguous.
  EXPECT_EQ(events.front().seq, 40u - rec.capacity());
  EXPECT_EQ(events.back().seq, 39u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(FlightRecorder, LongTagsAreTruncatedNotDropped) {
  FlightRecorder rec(5);
  const std::string long_tag(64, 'x');
  rec.record(TraceKind::kCustom, 0.0, 0, 0, long_tag);

  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].tag.empty());
  EXPECT_LT(events[0].tag.size(), FlightRecorder::kTagBytes);
  EXPECT_EQ(events[0].tag, long_tag.substr(0, events[0].tag.size()));
}

// TSan target: writers from several threads with a concurrent reader. The
// seqlock must never hand back a torn slot; every returned event must be
// one that some thread actually recorded.
TEST(FlightRecorder, ConcurrentRecordAndRead) {
  FlightRecorder rec(77, /*capacity=*/256);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&rec, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        // a encodes writer and iteration so readers can validate payloads.
        rec.record(TraceKind::kCustom, static_cast<double>(i),
                   static_cast<std::uint64_t>(w) * kPerWriter + i, i, "stress");
      }
    });
  }
  threads.emplace_back([&rec] {
    for (int i = 0; i < 200; ++i) {
      for (const TraceEvent& e : rec.events()) {
        EXPECT_EQ(e.kind, TraceKind::kCustom);
        EXPECT_LT(e.a, static_cast<std::uint64_t>(kWriters) * kPerWriter);
        EXPECT_EQ(e.a % kPerWriter, e.b);
      }
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  const std::vector<TraceEvent> final_events = rec.events();
  EXPECT_EQ(final_events.size(), rec.capacity());
}

TEST(FlightRecorder, ToLineNamesTheKind) {
  FlightRecorder rec(3);
  rec.record(TraceKind::kBreakerTransition, 1.5, 0, 2, "auditor");
  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  const std::string line = events[0].to_line();
  EXPECT_NE(line.find(to_string(TraceKind::kBreakerTransition)),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("auditor"), std::string::npos) << line;
}

}  // namespace
}  // namespace alidrone::obs
