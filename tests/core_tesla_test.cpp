// TESLA broadcast PoA mode (labelled `tsan` in ctest).
//
// Three layers of coverage:
//  1. the lossy-broadcast workload end to end — run_tesla_broadcast_flight
//     against a bus with and without chaos drop windows, finalized through
//     the standard verify/retain/accusation pipeline;
//  2. the security boundary, attack by attack (core/attacks.h): forged
//     tags, late samples crafted from overheard keys, the receive-clock
//     disclosure deadline, forged / replayed / reordered disclosures and
//     forked chain commitments — each rejected with its exact detail
//     string and audit event;
//  3. determinism: the same admission-ordered operation sequence through
//     AuditorIngest must produce byte-identical replies and audit logs
//     for any verify-thread and shard count.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/attacks.h"
#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/ingest.h"
#include "core/tesla.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "resilience/sim_clock.h"
#include "sim/route.h"
#include "tee/gps_sampler_ta.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;  // fast; realistic sizes in benches
constexpr double kTick = 0.2;              // 5 Hz receiver
constexpr std::uint64_t kNonce = 1;

crypto::Bytes be_bytes(std::uint64_t v, std::size_t width) {
  crypto::Bytes out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * (width - 1 - i))) & 0xFF);
  }
  return out;
}

net::FaultWindow drop_window(const std::string& endpoint, double probability) {
  net::FaultWindow w;
  w.endpoint = endpoint;
  w.start = 0.0;
  w.end = 1e18;  // always armed; the drop dice decide
  w.kind = net::FaultKind::kOutage;
  w.probability = probability;
  return w;
}

// ---- Layer 1+: the broadcast flight end to end ----

struct FlightRig {
  explicit FlightRig(const std::string& suffix, const obs::Clock* clock = nullptr)
      : auditor_rng("tesla-auditor-" + suffix),
        operator_rng("tesla-operator-" + suffix),
        owner_rng("tesla-owner-" + suffix),
        auditor(kTestKeyBits, auditor_rng, make_params(clock)),
        owner(kTestKeyBits, owner_rng),
        tee(make_tee_config(suffix)),
        client(tee, kTestKeyBits, operator_rng),
        frame(geo::GeoPoint{40.0, -88.0}) {
    audit = std::make_shared<AuditLog>();
    auditor.attach_audit_log(audit);
    auditor.bind(bus);
  }

  static ProtocolParams make_params(const obs::Clock* clock) {
    ProtocolParams params;
    params.clock = clock;
    return params;
  }

  static tee::DroneTee::Config make_tee_config(const std::string& suffix) {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "tesla-device-" + suffix;
    return config;
  }

  /// A 600 m corridor at 10 m/s with zones `zone_offset_m` off to the
  /// side. 400 m matches the chaos-test geometry; lossy runs push the
  /// zones out so eq.-(1) sufficiency survives the widened sample gaps.
  TeslaFlightResult fly(double duration, std::uint64_t bus_seed = 0,
                        std::vector<net::FaultWindow> faults = {},
                        double zone_offset_m = 400.0,
                        double fixed_rate_hz = 0.0) {
    for (double x : {100.0, 300.0, 500.0}) {
      zone_ids.push_back(owner.register_zone(
          bus, {frame.to_geo(geo::Vec2{x, zone_offset_m}), 30.0},
          "tesla zone"));
    }
    if (!faults.empty()) {
      net::MessageBus::FaultConfig config;
      config.seed = bus_seed;
      config.schedule = std::move(faults);
      bus.set_faults(config);
    }

    sim::Route route(frame, {{geo::Vec2{0.0, 0.0}, 10.0},
                             {geo::Vec2{600.0, 0.0}, 10.0}},
                     kT0);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 1.0 / kTick;
    rc.start_time = kT0;
    rc.seed = bus_seed;
    gps::GpsReceiverSim receiver(rc, route.as_position_source());

    std::vector<geo::Circle> local_zones;
    for (double x : {100.0, 300.0, 500.0}) {
      local_zones.push_back({geo::Vec2{x, zone_offset_m}, 30.0});
    }
    // Adaptive rides the sufficiency edge (fault-free runs); lossy runs
    // use a fixed rate instead so the drop dice decide which subset lands,
    // not whether anything is recorded at all.
    AdaptiveSampler adaptive(frame, local_zones, geo::kFaaMaxSpeedMps, 0.2);
    FixedRateSampler fixed(fixed_rate_hz > 0.0 ? fixed_rate_hz : 1.0, kT0);
    SamplingPolicy& policy =
        fixed_rate_hz > 0.0 ? static_cast<SamplingPolicy&>(fixed)
                            : static_cast<SamplingPolicy&>(adaptive);

    TeslaFlightConfig config;
    config.end_time = kT0 + duration;
    config.session_nonce = kNonce;
    config.disclosure_delay = 2;
    config.interval_s = 1.0;
    config.local_zones = local_zones;
    config.frame = frame;
    return run_tesla_broadcast_flight(tee, receiver, policy, bus,
                                      client.id(), config);
  }

  crypto::DeterministicRandom auditor_rng;
  crypto::DeterministicRandom operator_rng;
  crypto::DeterministicRandom owner_rng;
  Auditor auditor;
  ZoneOwner owner;
  tee::DroneTee tee;
  DroneClient client;
  net::MessageBus bus;
  geo::LocalFrame frame;
  std::shared_ptr<AuditLog> audit;
  std::vector<ZoneId> zone_ids;
};

TEST(TeslaFlight, BroadcastFlightEndToEnd) {
  FlightRig rig("e2e");
  ASSERT_TRUE(rig.client.register_with_auditor(rig.bus));

  const TeslaFlightResult run = rig.fly(30.0);
  EXPECT_TRUE(run.announced);
  ASSERT_TRUE(run.finalized);
  EXPECT_TRUE(run.verdict.accepted) << run.verdict.detail;
  EXPECT_TRUE(run.verdict.compliant) << run.verdict.detail;
  EXPECT_GT(run.samples_sent, 0u);
  EXPECT_EQ(run.samples_dropped, 0u);
  EXPECT_EQ(run.samples_rejected, 0u);
  EXPECT_EQ(run.tee_failures, 0u);
  EXPECT_GT(run.disclosures_sent, 0u);

  // Finalize drained the session and retained the proof.
  EXPECT_EQ(rig.auditor.tesla_session_count(), 0u);
  EXPECT_EQ(rig.auditor.retained_poa_count(), 1u);

  // The session open is on the audit trail at the flight epoch.
  const auto sessions = rig.audit->by_type(AuditEventType::kTeslaSession);
  ASSERT_FALSE(sessions.empty());
  EXPECT_TRUE(sessions.front().outcome_ok);
  EXPECT_EQ(sessions.front().subject, rig.client.id());
  EXPECT_NEAR(sessions.front().time, kT0, 1e-3);

  // The retained kTeslaChain proof answers accusations like any other:
  // mid-flight incident at a zone 400 m off the corridor -> alibi holds.
  const AccusationRequest accusation = rig.owner.make_accusation(
      rig.zone_ids.at(1), rig.client.id(), kT0 + 15.0);
  const AccusationResponse response = rig.auditor.handle_accusation(accusation);
  EXPECT_TRUE(response.ok) << response.detail;
  EXPECT_TRUE(response.alibi_holds) << response.detail;
}

TEST(TeslaFlight, LossyBroadcastStillVerifies) {
  // Drop 40% of sample broadcasts and 30% of disclosures. The chain
  // verifies whatever subset lands: a later disclosure settles every
  // interval a dropped one covered, and finalize still adjudicates.
  FlightRig rig("lossy");
  ASSERT_TRUE(rig.client.register_with_auditor(rig.bus));

  // Zones sit 2 km off the corridor: even a 30 s sample gap leaves the
  // time-feasible ellipse ~700 m short, so compliance depends only on
  // which subset of the broadcast actually landed.
  const TeslaFlightResult run =
      rig.fly(30.0, 7,
              {drop_window("auditor.tesla_sample", 0.4),
               drop_window("auditor.tesla_disclose", 0.3)},
              2000.0, /*fixed_rate_hz=*/1.0);
  EXPECT_GT(run.samples_dropped, 0u);  // the fault schedule must bite
  EXPECT_TRUE(run.announced);
  ASSERT_TRUE(run.finalized);
  EXPECT_TRUE(run.verdict.accepted) << run.verdict.detail;
  EXPECT_TRUE(run.verdict.compliant) << run.verdict.detail;
  EXPECT_EQ(run.samples_rejected, 0u);  // drops, never rejections
  EXPECT_EQ(rig.auditor.retained_poa_count(), 1u);
}

// ---- Layer 2: the security boundary, direct API ----

/// Drives the real TA by hand (feed fixes, invoke TESLA commands) so each
/// attack can be aimed at a genuine commitment.
class TeslaSecurityTest : public ::testing::Test {
 protected:
  TeslaSecurityTest()
      : clock_(kT0),
        rig_("security", &clock_),
        attacker_rng_("tesla-attacker"),
        route_(rig_.frame, {{geo::Vec2{0.0, 0.0}, 10.0},
                            {geo::Vec2{600.0, 0.0}, 10.0}},
               kT0) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 1.0 / kTick;
    rc.start_time = kT0;
    receiver_.emplace(rc, route_.as_position_source());
    EXPECT_TRUE(rig_.client.register_with_auditor(rig_.bus));
  }

  void feed_to(double t) {
    for (const std::string& s : receiver_->advance_to(t)) rig_.tee.feed_gps(s);
  }

  tee::InvokeResult invoke(tee::SamplerCommand command,
                           const std::vector<crypto::Bytes>& params = {}) {
    return rig_.tee.monitor().invoke(
        rig_.tee.sampler_uuid(), static_cast<std::uint32_t>(command), params);
  }

  /// kTeslaBegin (chain 64, delay 2, tau = one receiver tick) + announce.
  void open_session() {
    feed_to(kT0);
    const std::vector<crypto::Bytes> params{
        be_bytes(64, 4), be_bytes(2, 4),
        be_bytes(static_cast<std::uint64_t>(kTick * 1e6), 8)};
    const tee::InvokeResult begun =
        invoke(tee::SamplerCommand::kTeslaBegin, params);
    ASSERT_TRUE(begun.ok());
    ASSERT_EQ(begun.outputs.size(), 2u);
    announce_.drone_id = rig_.client.id();
    announce_.session_nonce = kNonce;
    announce_.hash = crypto::HashAlgorithm::kSha1;
    announce_.commit_payload = begun.outputs[0];
    announce_.commit_signature = begun.outputs[1];
    const auto commit = tee::parse_tesla_commit(begun.outputs[0]);
    ASSERT_TRUE(commit.has_value());
    commit_ = *commit;
    const TeslaAck ack = rig_.auditor.tesla_announce(announce_);
    ASSERT_TRUE(ack.accepted) << ack.detail;
  }

  /// Honest tagged sample at receiver tick `tick` (interval tick + 1).
  TeslaSampleBroadcast honest_sample(std::uint64_t tick) {
    feed_to(kT0 + static_cast<double>(tick) * kTick);
    const tee::InvokeResult fix = invoke(tee::SamplerCommand::kGetGpsTesla);
    EXPECT_TRUE(fix.ok());
    EXPECT_EQ(fix.outputs.size(), 3u);
    TeslaSampleBroadcast sample;
    sample.drone_id = rig_.client.id();
    sample.session_nonce = kNonce;
    std::uint64_t interval = 0;
    for (const std::uint8_t b : fix.outputs[2]) interval = (interval << 8) | b;
    sample.interval = interval;
    sample.sample = fix.outputs[0];
    sample.tag = fix.outputs[1];
    return sample;
  }

  TeslaAck send(const TeslaSampleBroadcast& sample) {
    const crypto::Bytes frame = sample.encode();
    const auto view = TeslaSampleBroadcastView::decode(frame);
    EXPECT_TRUE(view.has_value());
    return rig_.auditor.tesla_sample(*view);
  }

  /// Feed the TA past K_index's maturity and fetch the genuine key.
  crypto::Bytes fetch_key(std::uint64_t index) {
    feed_to(kT0 + static_cast<double>(index + 2 + 1) * kTick);
    const std::vector<crypto::Bytes> params{be_bytes(index, 8)};
    const tee::InvokeResult disclosed =
        invoke(tee::SamplerCommand::kTeslaDisclose, params);
    EXPECT_TRUE(disclosed.ok());
    EXPECT_EQ(disclosed.outputs.size(), 1u);
    return disclosed.outputs[0];
  }

  TeslaAck disclose(std::uint64_t index, const crypto::Bytes& key) {
    TeslaDiscloseRequest request;
    request.drone_id = rig_.client.id();
    request.session_nonce = kNonce;
    request.index = index;
    request.key = key;
    const crypto::Bytes frame = request.encode();
    const auto view = TeslaDiscloseRequestView::decode(frame);
    EXPECT_TRUE(view.has_value());
    return rig_.auditor.tesla_disclose(*view);
  }

  gps::GpsFix some_fix() {
    const auto decoded = tee::decode_sample(honest_sample(1).sample);
    EXPECT_TRUE(decoded.has_value());
    return *decoded;
  }

  resilience::SimClock clock_;
  FlightRig rig_;
  crypto::DeterministicRandom attacker_rng_;
  sim::Route route_;
  std::optional<gps::GpsReceiverSim> receiver_;
  TeslaAnnounceRequest announce_;
  tee::TeslaCommit commit_;
};

TEST_F(TeslaSecurityTest, ForgedTagBuffersThenRejectsAtDisclosure) {
  open_session();
  // The attacker cannot know K_3 yet; a guessed tag is accepted into the
  // buffer (nothing is checkable) but must die when K_3 goes public.
  const TeslaSampleBroadcast forged = attacks::tesla_forge_tag(
      rig_.client.id(), kNonce, 3, commit_, some_fix(), attacker_rng_);
  EXPECT_TRUE(send(forged).accepted);

  const TeslaAck settled = disclose(3, fetch_key(3));
  EXPECT_TRUE(settled.accepted);
  EXPECT_EQ(settled.detail, "settled 0 samples");

  const auto rejects = rig_.audit->by_type(AuditEventType::kTeslaSampleRejected);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].detail, "interval 3: tag invalid");
  EXPECT_EQ(rejects[0].subject, rig_.client.id());
}

TEST_F(TeslaSecurityTest, LateSampleFromDisclosedKeyRejected) {
  open_session();
  const crypto::Bytes key5 = fetch_key(5);
  ASSERT_TRUE(disclose(5, key5).accepted);

  // An eavesdropper can derive K_3 from the public K_5 and compute a
  // perfectly valid tag — the defense is temporal, not cryptographic.
  crypto::ChainKey disclosed{};
  std::copy(key5.begin(), key5.end(), disclosed.begin());
  const TeslaSampleBroadcast late = attacks::tesla_late_sample(
      rig_.client.id(), kNonce, disclosed, 5, 3, commit_, some_fix());
  const TeslaAck ack = send(late);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.detail, "late: key already disclosed");
  EXPECT_FALSE(rig_.audit->by_type(AuditEventType::kTeslaSampleRejected).empty());
}

TEST_F(TeslaSecurityTest, DisclosureDeadlineEnforcedByReceiveClock) {
  open_session();
  const TeslaSampleBroadcast sample = honest_sample(1);
  // The Auditor's receive clock is past K_interval's scheduled disclosure
  // time: even an honestly tagged sample must be refused (its key may be
  // public without the frontier having seen a disclosure yet).
  clock_.advance(10.0);
  const TeslaAck ack = send(sample);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.detail, "late: past disclosure deadline");
}

TEST_F(TeslaSecurityTest, ForgedDisclosureRejectedWithoutFrontierAdvance) {
  open_session();
  const TeslaSampleBroadcast honest = honest_sample(1);
  ASSERT_TRUE(send(honest).accepted);

  const TeslaDiscloseRequest forged = attacks::tesla_forge_disclosure(
      rig_.client.id(), kNonce, honest.interval, attacker_rng_);
  const TeslaAck bad = disclose(forged.index, forged.key);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.detail, "key does not chain to committed anchor");
  const auto key_rejects = rig_.audit->by_type(AuditEventType::kTeslaKeyRejected);
  ASSERT_EQ(key_rejects.size(), 1u);
  EXPECT_FALSE(key_rejects[0].outcome_ok);

  // The frontier did not move: the genuine key still settles the sample.
  const TeslaAck good = disclose(honest.interval, fetch_key(honest.interval));
  EXPECT_TRUE(good.accepted);
  EXPECT_EQ(good.detail, "settled 1 samples");
}

TEST_F(TeslaSecurityTest, ReplayedAndReorderedDisclosuresRejected) {
  open_session();
  const crypto::Bytes key4 = fetch_key(4);
  ASSERT_TRUE(disclose(4, key4).accepted);

  // Verbatim replay.
  const TeslaAck replay = disclose(4, key4);
  EXPECT_FALSE(replay.accepted);
  EXPECT_EQ(replay.detail, "out-of-order disclosure (replayed index)");

  // A reordered (older) disclosure arriving after a newer one is already
  // settled by the frontier — accepting it would rewind verified state.
  const TeslaAck stale = disclose(2, fetch_key(2));
  EXPECT_FALSE(stale.accepted);
  EXPECT_EQ(stale.detail, "out-of-order disclosure (replayed index)");

  // Skipping forward over a gap is fine (lossy links drop disclosures).
  EXPECT_TRUE(disclose(9, fetch_key(9)).accepted);
}

TEST_F(TeslaSecurityTest, ForkedChainCommitmentRejected) {
  open_session();
  // Byte-identical re-announce: idempotent (lossy links re-send).
  const TeslaAck dup = rig_.auditor.tesla_announce(announce_);
  EXPECT_TRUE(dup.accepted);
  EXPECT_EQ(dup.detail, "duplicate announce");

  // A second kTeslaBegin builds a fresh chain; its (validly signed)
  // commitment under the SAME session nonce is a forked chain.
  const std::vector<crypto::Bytes> params{
      be_bytes(64, 4), be_bytes(2, 4),
      be_bytes(static_cast<std::uint64_t>(kTick * 1e6), 8)};
  const tee::InvokeResult second =
      invoke(tee::SamplerCommand::kTeslaBegin, params);
  ASSERT_TRUE(second.ok());
  TeslaAnnounceRequest fork = announce_;
  fork.commit_payload = second.outputs[0];
  fork.commit_signature = second.outputs[1];
  const TeslaAck ack = rig_.auditor.tesla_announce(fork);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.detail, "forked chain commitment");

  const auto sessions = rig_.audit->by_type(AuditEventType::kTeslaSession);
  ASSERT_EQ(sessions.size(), 2u);  // the open + the rejected fork
  EXPECT_TRUE(sessions[0].outcome_ok);
  EXPECT_FALSE(sessions[1].outcome_ok);
}

TEST_F(TeslaSecurityTest, UnknownSessionAndMalformedInputsRejected) {
  open_session();
  TeslaSampleBroadcast stray = honest_sample(1);
  stray.session_nonce = 99;
  EXPECT_EQ(send(stray).detail, "unknown tesla session");

  TeslaSampleBroadcast truncated = honest_sample(2);
  truncated.tag.pop_back();
  EXPECT_EQ(send(truncated).detail, "malformed sample or tag");

  TeslaSampleBroadcast shifted = honest_sample(3);
  shifted.interval += 1;  // claimed interval no longer matches sample time
  EXPECT_EQ(send(shifted).detail, "interval does not match sample time");

  TeslaSampleBroadcast outside = honest_sample(4);
  outside.interval = 65;  // past the committed chain length
  EXPECT_EQ(send(outside).detail, "interval out of range");
}

// ---- Layer 3: determinism across ingest thread and shard counts ----

struct RecordedOp {
  AuditorIngest::Kind kind = AuditorIngest::Kind::kPoa;
  crypto::Bytes frame;
};

/// One deterministic TESLA session recorded as wire frames: honest
/// samples, a forged tag, a forged disclosure, a replayed disclosure and
/// the finalize — the full mix of accept and reject paths.
std::vector<RecordedOp> record_session_ops(tee::DroneTee& tee,
                                           const DroneId& drone_id) {
  using Kind = AuditorIngest::Kind;
  std::vector<RecordedOp> ops;

  const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  sim::Route route(frame, {{geo::Vec2{0.0, 0.0}, 10.0},
                           {geo::Vec2{600.0, 0.0}, 10.0}},
                   kT0);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 1.0 / kTick;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());
  const auto feed_to = [&](double t) {
    for (const std::string& s : receiver.advance_to(t)) tee.feed_gps(s);
  };
  const auto invoke = [&](tee::SamplerCommand command,
                          const std::vector<crypto::Bytes>& params =
                              std::vector<crypto::Bytes>{}) {
    return tee.monitor().invoke(tee.sampler_uuid(),
                                static_cast<std::uint32_t>(command), params);
  };

  feed_to(kT0);
  const std::vector<crypto::Bytes> begin_params{
      be_bytes(64, 4), be_bytes(2, 4),
      be_bytes(static_cast<std::uint64_t>(kTick * 1e6), 8)};
  const tee::InvokeResult begun =
      invoke(tee::SamplerCommand::kTeslaBegin, begin_params);
  EXPECT_TRUE(begun.ok());
  const auto commit = tee::parse_tesla_commit(begun.outputs[0]);
  EXPECT_TRUE(commit.has_value());

  TeslaAnnounceRequest announce;
  announce.drone_id = drone_id;
  announce.session_nonce = kNonce;
  announce.hash = crypto::HashAlgorithm::kSha1;
  announce.commit_payload = begun.outputs[0];
  announce.commit_signature = begun.outputs[1];
  ops.push_back({Kind::kTeslaAnnounce, announce.encode()});

  // Twelve honest samples (intervals 2..13) …
  gps::GpsFix a_fix{};
  for (std::uint64_t tick = 1; tick <= 12; ++tick) {
    feed_to(kT0 + static_cast<double>(tick) * kTick);
    const tee::InvokeResult fix = invoke(tee::SamplerCommand::kGetGpsTesla);
    EXPECT_TRUE(fix.ok());
    TeslaSampleBroadcast sample;
    sample.drone_id = drone_id;
    sample.session_nonce = kNonce;
    std::uint64_t interval = 0;
    for (const std::uint8_t b : fix.outputs[2]) interval = (interval << 8) | b;
    sample.interval = interval;
    sample.sample = fix.outputs[0];
    sample.tag = fix.outputs[1];
    if (const auto decoded = tee::decode_sample(sample.sample)) a_fix = *decoded;
    ops.push_back({Kind::kTeslaSample, sample.encode()});
  }

  // … a forged tag for interval 5 and a forged disclosure for index 3.
  crypto::DeterministicRandom attacker_rng("tesla-ingest-attacker");
  ops.push_back({Kind::kTeslaSample,
                 attacks::tesla_forge_tag(drone_id, kNonce, 5, *commit, a_fix,
                                          attacker_rng)
                     .encode()});
  ops.push_back({Kind::kTeslaDisclose,
                 attacks::tesla_forge_disclosure(drone_id, kNonce, 3,
                                                 attacker_rng)
                     .encode()});

  // Honest disclosures: K_6, K_6 replayed, K_13 (settles the rest).
  const auto disclose_frame = [&](std::uint64_t index) {
    feed_to(kT0 + static_cast<double>(index + 2 + 1) * kTick);
    const std::vector<crypto::Bytes> params{be_bytes(index, 8)};
    const tee::InvokeResult disclosed =
        invoke(tee::SamplerCommand::kTeslaDisclose, params);
    EXPECT_TRUE(disclosed.ok());
    TeslaDiscloseRequest request;
    request.drone_id = drone_id;
    request.session_nonce = kNonce;
    request.index = index;
    request.key = disclosed.outputs[0];
    return request.encode();
  };
  const crypto::Bytes k6 = disclose_frame(6);
  ops.push_back({Kind::kTeslaDisclose, k6});
  ops.push_back({Kind::kTeslaDisclose, k6});  // verbatim replay
  ops.push_back({Kind::kTeslaDisclose, disclose_frame(13)});

  TeslaFinalizeRequest finalize;
  finalize.drone_id = drone_id;
  finalize.session_nonce = kNonce;
  finalize.end_time = kT0 + 13.0 * kTick;
  ops.push_back({Kind::kTeslaFinalize, finalize.encode()});
  return ops;
}

struct IngestRun {
  std::vector<crypto::Bytes> replies;
  std::vector<std::string> audit_lines;
};

IngestRun run_through_ingest(const std::vector<RecordedOp>& ops,
                             std::size_t verify_threads, std::size_t shards) {
  // A fresh Auditor per run; the shared manufacturing seed reproduces the
  // same TEE key, so the recorded commitment signature verifies under the
  // same registered T+ and the drone gets the same id.
  crypto::DeterministicRandom auditor_rng("tesla-ingest-auditor");
  crypto::DeterministicRandom operator_rng("tesla-ingest-operator");
  ProtocolParams params;
  params.auditor_shards = shards;
  Auditor auditor(kTestKeyBits, auditor_rng, params);
  auto audit = std::make_shared<AuditLog>();
  auditor.attach_audit_log(audit);

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "tesla-ingest-device";
  tee::DroneTee tee(tee_config);
  DroneClient client(tee, kTestKeyBits, operator_rng);
  net::MessageBus bus;
  auditor.bind(bus);
  EXPECT_TRUE(client.register_with_auditor(bus));

  AuditorIngest::Config config;
  config.verify_threads = verify_threads;
  AuditorIngest ingest(auditor, config);

  IngestRun run;
  for (const RecordedOp& op : ops) {
    run.replies.push_back(ingest.submit_tesla(op.kind, op.frame));
  }
  ingest.stop();
  for (const AuditEvent& event : audit->events()) {
    run.audit_lines.push_back(event.to_line());
  }
  return run;
}

TEST(TeslaIngestDeterminism, ByteIdenticalAcrossThreadAndShardCounts) {
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "tesla-ingest-device";
  tee::DroneTee tee(tee_config);
  const std::vector<RecordedOp> ops = record_session_ops(tee, "drone-1");
  ASSERT_GE(ops.size(), 18u);

  const IngestRun baseline = run_through_ingest(ops, 0, 8);

  // The baseline itself must exercise both accept and reject paths.
  const auto finalize_reply = PoaVerdict::decode(baseline.replies.back());
  ASSERT_TRUE(finalize_reply.has_value());
  EXPECT_TRUE(finalize_reply->accepted) << finalize_reply->detail;
  bool saw_reject = false;
  for (const std::string& line : baseline.audit_lines) {
    if (line.find("tesla-sample-rejected") != std::string::npos) saw_reject = true;
  }
  EXPECT_TRUE(saw_reject);

  for (const auto& [threads, shards] :
       std::vector<std::pair<std::size_t, std::size_t>>{{4, 8}, {4, 1}, {0, 1}}) {
    const IngestRun run = run_through_ingest(ops, threads, shards);
    EXPECT_EQ(run.replies, baseline.replies)
        << "replies diverged at threads=" << threads << " shards=" << shards;
    EXPECT_EQ(run.audit_lines, baseline.audit_lines)
        << "audit log diverged at threads=" << threads << " shards=" << shards;
  }
}

}  // namespace
}  // namespace alidrone::core
