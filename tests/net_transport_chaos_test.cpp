// Transport chaos (labelled `transport chaos`): the FaultWindow schedules
// the in-process bus interprets, applied to real sockets with real teeth.
// kOutage kills live connections, kStall parks finished responses past
// the caller's deadline, kResponseLoss discards framed replies,
// kCorruptResponse flips payload bits under a valid CRC, kLatency holds
// responses on the reactor timer wheel. The load-bearing claims: a
// ReliableChannel rides the failures to success with no protocol drift —
// verdicts, audit logs and ledger roots stay byte-identical to a clean
// in-process MessageBus run — and content dedup makes retries of
// already-executed submissions safe.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/ingest.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "ledger/ledger.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "net/transport/client.h"
#include "net/transport/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resilience/reliable_channel.h"
#include "resilience/sim_clock.h"
#include "sim/route.h"

namespace alidrone {
namespace {

using net::transport::ChaosConfig;
using net::transport::TransportClient;
using net::transport::TransportServer;

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

std::string unique_uds(const std::string& tag) {
  return "uds:/tmp/alidrone_" + tag + "_" + std::to_string(getpid()) + ".sock";
}

crypto::Bytes bytes_of(std::string_view text) {
  return crypto::Bytes(text.begin(), text.end());
}

const geo::LocalFrame& test_frame() {
  static const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  return frame;
}

std::vector<geo::GeoZone> test_zones() {
  std::vector<geo::GeoZone> zones;
  for (double x : {100.0, 300.0}) {
    zones.push_back({test_frame().to_geo(geo::Vec2{x, 400.0}), 30.0});
  }
  return zones;
}

core::ProofOfAlibi make_flight_poa(core::DroneClient& client, double start,
                                   std::uint64_t gps_seed) {
  sim::Route route(
      test_frame(),
      {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}}, start);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = start;
  rc.seed = gps_seed;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());

  std::vector<geo::Circle> local_zones;
  for (const geo::GeoZone& z : test_zones()) {
    local_zones.push_back({test_frame().to_local(z.center), z.radius_m});
  }
  core::AdaptiveSampler policy(test_frame(), local_zones,
                               geo::kFaaMaxSpeedMps, 0.2);
  core::FlightConfig config;
  config.end_time = start + 30.0;
  config.frame = test_frame();
  config.local_zones = local_zones;
  return client.fly(receiver, policy, config);
}

/// Everything both the clean baseline and a chaos run share: the drone,
/// its serialized proofs, and the zone registration request objects (the
/// owner draws rng per request, so both runs must apply the SAME ones).
struct Scenario {
  crypto::DeterministicRandom operator_rng{"chaos-operator"};
  crypto::DeterministicRandom owner_rng{"chaos-owner"};
  tee::DroneTee tee;
  core::DroneClient drone;
  core::ZoneOwner owner;
  std::vector<core::RegisterZoneRequest> zone_requests;
  std::vector<crypto::Bytes> frames;

  explicit Scenario(std::size_t flights)
      : tee([] {
          tee::DroneTee::Config config;
          config.key_bits = kTestKeyBits;
          config.manufacturing_seed = "chaos-device";
          return config;
        }()),
        drone(tee, kTestKeyBits, operator_rng),
        owner(kTestKeyBits, owner_rng) {
    for (const geo::GeoZone& zone : test_zones()) {
      zone_requests.push_back(owner.make_zone_request(zone, "chaos zone"));
    }
    // The drone needs its id before flying; registration bytes are
    // deterministic, so registering again per run is idempotent.
    {
      obs::MetricsRegistry scratch_reg;
      crypto::DeterministicRandom rng("chaos-auditor");
      core::ProtocolParams params;
      params.metrics = &scratch_reg;
      core::Auditor scratch(kTestKeyBits, rng, params);
      net::MessageBus bus;
      scratch.bind(bus);
      if (!drone.register_with_auditor(bus)) {
        throw std::runtime_error("scenario: registration failed");
      }
    }
    for (std::size_t f = 0; f < flights; ++f) {
      const core::ProofOfAlibi poa =
          make_flight_poa(drone, kT0 + static_cast<double>(f) * 100.0,
                          170u + f);
      frames.push_back(core::SubmitPoaRequest{poa.serialize()}.encode());
    }
  }

  struct AuditorRig {
    std::unique_ptr<obs::MetricsRegistry> registry =
        std::make_unique<obs::MetricsRegistry>();
    std::unique_ptr<core::Auditor> auditor;
    std::shared_ptr<ledger::Ledger> ledger;
    std::shared_ptr<core::AuditLog> log;
  };

  AuditorRig make_rig() {
    AuditorRig rig;
    crypto::DeterministicRandom rng("chaos-auditor");
    core::ProtocolParams params;
    params.auditor_shards = 8;
    params.metrics = rig.registry.get();
    rig.auditor =
        std::make_unique<core::Auditor>(kTestKeyBits, rng, params);
    for (const core::RegisterZoneRequest& request : zone_requests) {
      rig.auditor->register_zone(request);
    }
    rig.ledger = std::make_shared<ledger::Ledger>();
    rig.log = std::make_shared<core::AuditLog>();
    rig.log->attach_ledger(rig.ledger);
    rig.auditor->attach_audit_log(rig.log);
    return rig;
  }

  /// The clean in-process reference: every frame once over a MessageBus.
  struct Baseline {
    std::vector<crypto::Bytes> verdicts;
    ledger::Digest root;
    std::uint64_t entries = 0;
    std::size_t audit_events = 0;
  };

  Baseline run_baseline() {
    Baseline baseline;
    AuditorRig rig = make_rig();
    net::MessageBus bus;
    rig.auditor->bind(bus);
    if (!drone.register_with_auditor(bus)) {
      throw std::runtime_error("baseline: registration failed");
    }
    for (const crypto::Bytes& frame : frames) {
      baseline.verdicts.push_back(bus.request("auditor.submit_poa", frame));
    }
    baseline.root = rig.ledger->root_hash();
    baseline.entries = rig.ledger->entry_count();
    baseline.audit_events = rig.log->size();
    return baseline;
  }
};

TEST(TransportChaosTest, OutageKillsAreRetriedByteIdentical) {
  Scenario scenario(3);
  const Scenario::Baseline baseline = scenario.run_baseline();

  Scenario::AuditorRig rig = scenario.make_rig();
  obs::FlightRecorder recorder(1, 512);

  TransportServer::Config config;
  config.listen = {unique_uds("chaos_outage")};
  config.workers = 2;
  config.registry = rig.registry.get();
  TransportServer server(std::move(config));
  rig.auditor->bind(server);
  server.set_trace(&recorder);
  // Half of all submissions die on the wire: the connection is killed
  // before the handler runs, so a retry is a genuine first delivery.
  net::FaultWindow outage;
  outage.endpoint = "auditor.submit_poa";
  outage.start = 0.0;
  outage.end = 1e9;
  outage.kind = net::FaultKind::kOutage;
  outage.probability = 0.5;
  server.set_faults(ChaosConfig{42, {outage}});
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.registry = rig.registry.get();
  TransportClient client(std::move(client_config));
  ASSERT_TRUE(scenario.drone.register_with_auditor(client));

  resilience::SimClock clock;
  resilience::ReliableChannel::Config channel_config;
  channel_config.retry.max_attempts = 12;
  channel_config.retry.attempt_timeout_s = 2.0;  // guards a stalled read
  channel_config.retry.initial_backoff_s = 0.001;
  channel_config.breaker.failure_threshold = 100;
  channel_config.metrics = rig.registry.get();
  resilience::ReliableChannel channel(client, clock, channel_config);

  for (std::size_t i = 0; i < scenario.frames.size(); ++i) {
    const auto outcome =
        channel.request("auditor.submit_poa", scenario.frames[i]);
    ASSERT_TRUE(outcome.ok) << "submission " << i << ": " << outcome.error;
    EXPECT_EQ(outcome.response, baseline.verdicts[i]) << "submission " << i;
  }

  const TransportServer::Stats stats = server.stats();
  EXPECT_GT(stats.chaos_kills, 0u);  // the schedule actually fired
  EXPECT_GT(client.stats().resets, 0u);
  EXPECT_GT(channel.counters().retries, 0u);
  server.stop();

  EXPECT_EQ(rig.ledger->root_hash(), baseline.root);
  EXPECT_EQ(rig.ledger->entry_count(), baseline.entries);
  EXPECT_EQ(rig.log->size(), baseline.audit_events);

  bool saw_outage_trace = false;
  for (const obs::TraceEvent& event : recorder.events()) {
    if (event.kind == obs::TraceKind::kTransportChaos &&
        event.tag.find("outage") != std::string::npos) {
      saw_outage_trace = true;
    }
  }
  EXPECT_TRUE(saw_outage_trace);
}

TEST(TransportChaosTest, StallParksResponseDedupAbsorbsRetry) {
  Scenario scenario(1);
  const Scenario::Baseline baseline = scenario.run_baseline();

  Scenario::AuditorRig rig = scenario.make_rig();
  TransportServer::Config config;
  config.listen = {unique_uds("chaos_stall")};
  config.workers = 2;
  config.registry = rig.registry.get();
  TransportServer server(std::move(config));
  rig.auditor->bind(server);
  // Scenario clock: the stall window is [0, 10) in virtual time and the
  // clock sits at 5, so every submission is parked until the window
  // closes — which never happens on its own. Only the caller's
  // per-attempt deadline gets control back.
  resilience::SimClock chaos_clock(5.0);
  server.set_clock(&chaos_clock);
  net::FaultWindow stall;
  stall.endpoint = "auditor.submit_poa";
  stall.start = 0.0;
  stall.end = 10.0;
  stall.kind = net::FaultKind::kStall;
  server.set_faults(ChaosConfig{7, {stall}});
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.registry = rig.registry.get();
  TransportClient client(std::move(client_config));
  ASSERT_TRUE(scenario.drone.register_with_auditor(client));

  resilience::SimClock clock;
  resilience::ReliableChannel::Config channel_config;
  channel_config.retry.max_attempts = 2;
  channel_config.retry.attempt_timeout_s = 0.05;
  channel_config.retry.initial_backoff_s = 0.001;
  channel_config.breaker.failure_threshold = 10;
  channel_config.metrics = rig.registry.get();
  resilience::ReliableChannel channel(client, clock, channel_config);

  // Inside the window: the handler RUNS (the proof is committed) but the
  // response is parked — both attempts die on the per-attempt deadline.
  const auto stalled = channel.request("auditor.submit_poa",
                                       scenario.frames[0]);
  EXPECT_FALSE(stalled.ok);
  EXPECT_EQ(stalled.attempts, 2u);
  EXPECT_NE(stalled.error.find("attempt deadline"), std::string::npos);
  EXPECT_EQ(channel.counters().deadline_expired, 2u);
  EXPECT_EQ(client.stats().deadline_expired, 2u);
  EXPECT_EQ(server.stats().chaos_stalls, 2u);

  // The window closes; the retry is a duplicate of work that already
  // happened, and content dedup returns the original verdict verbatim.
  chaos_clock.advance(20.0);
  const auto retried = channel.request("auditor.submit_poa",
                                       scenario.frames[0]);
  ASSERT_TRUE(retried.ok) << retried.error;
  EXPECT_EQ(retried.response, baseline.verdicts[0]);
  server.stop();

  // Three handler executions, one logical submission: no double-count.
  EXPECT_EQ(rig.ledger->root_hash(), baseline.root);
  EXPECT_EQ(rig.ledger->entry_count(), baseline.entries);
  EXPECT_EQ(rig.log->size(), baseline.audit_events);
}

TEST(TransportChaosTest, ResponseLossExpiresDeadlineConnectionSurvives) {
  obs::MetricsRegistry registry;
  TransportServer::Config config;
  config.listen = {unique_uds("chaos_loss")};
  config.workers = 1;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.register_endpoint("echo",
                           [](const crypto::Bytes& in) { return in; });
  resilience::SimClock chaos_clock(1.0);
  server.set_clock(&chaos_clock);
  net::FaultWindow loss;
  loss.endpoint = "echo";
  loss.start = 0.0;
  loss.end = 10.0;
  loss.kind = net::FaultKind::kResponseLoss;
  server.set_faults(ChaosConfig{1, {loss}});
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.registry = &registry;
  TransportClient client(std::move(client_config));

  // The reply is framed and discarded; only the deadline returns control.
  EXPECT_THROW(client.request("echo", bytes_of("lost"), 0.05),
               net::DeadlineExpired);
  EXPECT_EQ(server.stats().chaos_drops, 1u);

  // A drop is not a kill: the same connection serves the next request.
  chaos_clock.advance(20.0);
  EXPECT_EQ(client.request("echo", bytes_of("found"), 1.0),
            bytes_of("found"));
  EXPECT_EQ(client.stats().connects, 1u);
  EXPECT_EQ(client.stats().resets, 0u);
  server.stop();
}

TEST(TransportChaosTest, CorruptResponseFlipsBitsUnderValidCrc) {
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(1, 64);
  TransportServer::Config config;
  config.listen = {unique_uds("chaos_corrupt")};
  config.workers = 1;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.set_trace(&recorder);
  server.register_endpoint("echo",
                           [](const crypto::Bytes& in) { return in; });
  net::FaultWindow corrupt;
  corrupt.endpoint = "echo";
  corrupt.start = 0.0;
  corrupt.end = 1e9;
  corrupt.kind = net::FaultKind::kCorruptResponse;
  server.set_faults(ChaosConfig{3, {corrupt}});
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.registry = &registry;
  TransportClient client(std::move(client_config));

  // Corruption happens before framing, so the CRC covers the corrupted
  // bytes — the frame parses cleanly and the damage reaches the caller,
  // exactly the bus's semantics (end-to-end checks live above transport).
  const crypto::Bytes payload = bytes_of("pristine payload bytes");
  const crypto::Bytes response = client.request("echo", payload);
  EXPECT_EQ(response.size(), payload.size());
  EXPECT_NE(response, payload);
  EXPECT_EQ(server.stats().chaos_corruptions, 1u);
  server.stop();

  bool saw_corrupt_trace = false;
  for (const obs::TraceEvent& event : recorder.events()) {
    if (event.kind == obs::TraceKind::kTransportChaos &&
        event.tag.find("corrupt-response:echo") != std::string::npos) {
      saw_corrupt_trace = true;
    }
  }
  EXPECT_TRUE(saw_corrupt_trace);
}

TEST(TransportChaosTest, LatencyHoldsResponseOnTimerWheel) {
  obs::MetricsRegistry registry;
  TransportServer::Config config;
  config.listen = {unique_uds("chaos_latency")};
  config.workers = 1;
  config.registry = &registry;
  TransportServer server(std::move(config));
  server.register_endpoint("echo",
                           [](const crypto::Bytes& in) { return in; });
  net::FaultWindow latency;
  latency.endpoint = "echo";
  latency.start = 0.0;
  latency.end = 1e9;
  latency.kind = net::FaultKind::kLatency;
  latency.latency_s = 0.08;
  server.set_faults(ChaosConfig{5, {latency}});
  server.start();

  TransportClient::Config client_config;
  client_config.address = server.bound_addresses()[0];
  client_config.registry = &registry;
  TransportClient client(std::move(client_config));

  const auto before = std::chrono::steady_clock::now();
  const crypto::Bytes response = client.request("echo", bytes_of("slow"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - before)
          .count();
  EXPECT_EQ(response, bytes_of("slow"));  // delayed, never damaged
  EXPECT_GE(elapsed, 0.08);
  EXPECT_EQ(server.stats().chaos_delays, 1u);
  server.stop();
}

}  // namespace
}  // namespace alidrone
