#include <gtest/gtest.h>

#include "crypto/ecdsa.h"

namespace alidrone::crypto {
namespace {

TEST(P256, GeneratorOnCurveAndHasOrderN) {
  const EcPoint g = P256::generator();
  EXPECT_TRUE(P256::on_curve(g));
  // n * G = infinity; (n-1) * G = -G.
  EXPECT_TRUE(P256::mul(P256::n(), g).infinity);
  const EcPoint minus_g = P256::mul(P256::n() - BigInt(1), g);
  EXPECT_EQ(minus_g, P256::negate(g));
}

TEST(P256, GroupLaws) {
  const EcPoint g = P256::generator();
  const EcPoint g2 = P256::mul(BigInt(2), g);
  const EcPoint g3 = P256::mul(BigInt(3), g);
  EXPECT_TRUE(P256::on_curve(g2));
  EXPECT_TRUE(P256::on_curve(g3));
  // 2G + G == 3G; G + 2G == 3G (commutativity through distinct paths).
  EXPECT_EQ(P256::add(g2, g), g3);
  EXPECT_EQ(P256::add(g, g2), g3);
  // P + (-P) = infinity; P + infinity = P.
  EXPECT_TRUE(P256::add(g, P256::negate(g)).infinity);
  const EcPoint inf{BigInt(0), BigInt(0), true};
  EXPECT_EQ(P256::add(g, inf), g);
  EXPECT_EQ(P256::add(inf, g), g);
}

TEST(P256, ScalarMulDistributes) {
  const EcPoint g = P256::generator();
  DeterministicRandom rng("p256-distribute");
  const BigInt a = rng.random_range(BigInt(1), P256::n() - BigInt(1));
  const BigInt b = rng.random_range(BigInt(1), P256::n() - BigInt(1));
  // (a + b) G == aG + bG
  const EcPoint lhs = P256::mul((a + b).mod(P256::n()), g);
  const EcPoint rhs = P256::add(P256::mul(a, g), P256::mul(b, g));
  EXPECT_EQ(lhs, rhs);
  // a(bG) == b(aG)
  EXPECT_EQ(P256::mul(a, P256::mul(b, g)), P256::mul(b, P256::mul(a, g)));
}

TEST(P256, KnownMultiple) {
  // 2G for P-256 (published test value).
  const EcPoint g2 = P256::mul(BigInt(2), P256::generator());
  EXPECT_EQ(g2.x, BigInt::from_string(
                      "0x7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"));
  EXPECT_EQ(g2.y, BigInt::from_string(
                      "0x07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"));
}

TEST(P256, EncodeDecodeRoundTrip) {
  const EcPoint g = P256::generator();
  const Bytes encoded = P256::encode(g);
  EXPECT_EQ(encoded.size(), 65u);
  EXPECT_EQ(encoded[0], 0x04);
  const auto decoded = P256::decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, g);

  // Infinity encodes as a single zero byte.
  const EcPoint inf{BigInt(0), BigInt(0), true};
  const auto inf_decoded = P256::decode(P256::encode(inf));
  ASSERT_TRUE(inf_decoded.has_value());
  EXPECT_TRUE(inf_decoded->infinity);

  // Off-curve points are rejected.
  Bytes tampered = encoded;
  tampered[40] ^= 0x01;
  EXPECT_FALSE(P256::decode(tampered).has_value());
  EXPECT_FALSE(P256::decode(Bytes(64, 0x04)).has_value());
}

TEST(Ecdsa, Rfc6979KnownAnswerSampleMessage) {
  // RFC 6979, appendix A.2.5 (P-256 + SHA-256, message "sample").
  const BigInt x = BigInt::from_string(
      "0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721");
  const EcdsaSignature sig = ecdsa_sign(x, to_bytes("sample"));
  EXPECT_EQ(sig.r, BigInt::from_string(
                       "0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716"));
  EXPECT_EQ(sig.s, BigInt::from_string(
                       "0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8"));

  // The corresponding public key verifies it.
  const EcPoint pub = P256::mul(x, P256::generator());
  EXPECT_EQ(pub.x, BigInt::from_string(
                       "0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6"));
  EXPECT_TRUE(ecdsa_verify(pub, to_bytes("sample"), sig));
}

TEST(Ecdsa, Rfc6979KnownAnswerTestMessage) {
  // RFC 6979, appendix A.2.5 (message "test").
  const BigInt x = BigInt::from_string(
      "0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721");
  const EcdsaSignature sig = ecdsa_sign(x, to_bytes("test"));
  EXPECT_EQ(sig.r, BigInt::from_string(
                       "0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367"));
  EXPECT_EQ(sig.s, BigInt::from_string(
                       "0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083"));
}

TEST(Ecdsa, SignVerifyRoundTripRandomKeys) {
  DeterministicRandom rng("ecdsa-roundtrip");
  for (int i = 0; i < 3; ++i) {
    const EcdsaKeyPair kp = ecdsa_generate(rng);
    EXPECT_TRUE(P256::on_curve(kp.public_key));

    const Bytes msg = rng.bytes(40 + i * 17);
    const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
    EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, sig));

    // Tampered message / signature / wrong key all fail.
    Bytes other = msg;
    other[0] ^= 1;
    EXPECT_FALSE(ecdsa_verify(kp.public_key, other, sig));

    EcdsaSignature bad = sig;
    bad.s = (bad.s + BigInt(1)).mod(P256::n());
    EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, bad));

    const EcdsaKeyPair other_kp = ecdsa_generate(rng);
    EXPECT_FALSE(ecdsa_verify(other_kp.public_key, msg, sig));
  }
}

TEST(Ecdsa, DeterministicSignaturesRepeat) {
  DeterministicRandom rng("ecdsa-deterministic");
  const EcdsaKeyPair kp = ecdsa_generate(rng);
  const Bytes msg = to_bytes("GPS sample 40.1164,-88.2434");
  const EcdsaSignature a = ecdsa_sign(kp.private_key, msg);
  const EcdsaSignature b = ecdsa_sign(kp.private_key, msg);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.s, b.s);
  // Different messages use different nonces -> different r.
  const EcdsaSignature c = ecdsa_sign(kp.private_key, to_bytes("other"));
  EXPECT_NE(a.r, c.r);
}

TEST(Ecdsa, SignatureBytesRoundTrip) {
  DeterministicRandom rng("ecdsa-bytes");
  const EcdsaKeyPair kp = ecdsa_generate(rng);
  const Bytes msg = to_bytes("alibi");
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);

  const Bytes wire = sig.to_bytes();
  EXPECT_EQ(wire.size(), 64u);
  const auto parsed = EcdsaSignature::from_bytes(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, *parsed));

  EXPECT_FALSE(EcdsaSignature::from_bytes(Bytes(63, 0)).has_value());
  EXPECT_FALSE(EcdsaSignature::from_bytes(Bytes(65, 0)).has_value());
}

TEST(Ecdsa, RejectsDegenerateSignatures) {
  DeterministicRandom rng("ecdsa-degenerate");
  const EcdsaKeyPair kp = ecdsa_generate(rng);
  const Bytes msg = to_bytes("alibi");
  EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, {BigInt(0), BigInt(1)}));
  EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, {BigInt(1), BigInt(0)}));
  EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, {P256::n(), BigInt(1)}));
  const EcPoint inf{BigInt(0), BigInt(0), true};
  EXPECT_FALSE(ecdsa_verify(inf, msg, {BigInt(1), BigInt(1)}));
}

}  // namespace
}  // namespace alidrone::crypto
