#include <gtest/gtest.h>

#include "core/flight.h"
#include "core/sampler.h"
#include "core/sufficiency.h"
#include "geo/units.h"
#include "sim/scenarios.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
const geo::GeoPoint kAnchor{40.1100, -88.2200};

gps::GpsFix make_fix(double east_m, double north_m, double t) {
  const geo::LocalFrame frame(kAnchor);
  gps::GpsFix f;
  f.position = frame.to_geo({east_m, north_m});
  f.unix_time = t;
  return f;
}

TEST(AdaptiveSampler, AlwaysRecordsFirstFix) {
  const geo::LocalFrame frame(kAnchor);
  AdaptiveSampler sampler(frame, {}, geo::kFaaMaxSpeedMps, 5.0);
  EXPECT_TRUE(sampler.should_authenticate(make_fix(0, 0, kT0)));
}

TEST(AdaptiveSampler, NoZonesMeansNoFurtherSamples) {
  const geo::LocalFrame frame(kAnchor);
  AdaptiveSampler sampler(frame, {}, geo::kFaaMaxSpeedMps, 5.0);
  sampler.on_recorded(make_fix(0, 0, kT0));
  for (int i = 1; i <= 100; ++i) {
    EXPECT_FALSE(sampler.should_authenticate(make_fix(i * 5.0, 0, kT0 + i * 0.2)));
  }
}

TEST(AdaptiveSampler, FarFromZoneSkipsNearZoneSamples) {
  const geo::LocalFrame frame(kAnchor);
  // Zone 5 km north: the drone can idle for ~minutes before resampling.
  AdaptiveSampler sampler(frame, {{{0, 5000}, 50.0}}, geo::kFaaMaxSpeedMps, 5.0);
  sampler.on_recorded(make_fix(0, 0, kT0));
  EXPECT_FALSE(sampler.should_authenticate(make_fix(0, 0, kT0 + 10.0)));
  EXPECT_FALSE(sampler.should_authenticate(make_fix(0, 0, kT0 + 100.0)));
  // Eventually conditions (2)+(3) trip: the window is
  // (2*4950/v_max - 2/R, 2*4950/v_max] ~ (221.06 s, 221.46 s].
  EXPECT_TRUE(sampler.should_authenticate(make_fix(0, 0, kT0 + 221.3)));
}

TEST(AdaptiveSampler, ImplementsAlgorithmOneWindow) {
  const geo::LocalFrame frame(kAnchor);
  const double vmax = geo::kFaaMaxSpeedMps;
  const double rate = 5.0;
  AdaptiveSampler sampler(frame, {{{0, 1000}, 100.0}}, vmax, rate);
  const gps::GpsFix s1 = make_fix(0, 0, kT0);
  sampler.on_recorded(s1);

  // D1 + D2 = 1800 m while hovering. The sampling window is
  // (D/vmax - 2/R, D/vmax]: inside it -> record; before it -> skip.
  const double window_end = 1800.0 / vmax;           // ~40.26 s
  const double window_start = window_end - 2.0 / rate;  // 0.4 s earlier

  EXPECT_FALSE(sampler.should_authenticate(make_fix(0, 0, kT0 + window_start - 0.05)));
  EXPECT_TRUE(sampler.should_authenticate(make_fix(0, 0, kT0 + window_start + 0.05)));
  EXPECT_TRUE(sampler.should_authenticate(make_fix(0, 0, kT0 + window_end - 0.01)));
  // Past the window (missed update): record as best effort.
  EXPECT_TRUE(sampler.should_authenticate(make_fix(0, 0, kT0 + window_end + 5.0)));
}

TEST(AdaptiveSampler, ChecksCounterIncrements) {
  const geo::LocalFrame frame(kAnchor);
  AdaptiveSampler sampler(frame, {}, geo::kFaaMaxSpeedMps, 5.0);
  sampler.should_authenticate(make_fix(0, 0, kT0));
  sampler.should_authenticate(make_fix(0, 0, kT0 + 0.2));
  EXPECT_EQ(sampler.checks(), 2u);
}

TEST(FixedRateSampler, PaperExampleThreeHzOverFiveHzUpdates) {
  // Section VI-A1: sampler at 3 Hz over a 5 Hz receiver samples at
  // t = 0.0, 0.4, 0.8 (first update at/after each wake).
  FixedRateSampler sampler(3.0, kT0);
  std::vector<double> taken;
  for (int i = 0; i <= 5; ++i) {  // updates at 0, .2, .4, .6, .8, 1.0
    const gps::GpsFix fix = make_fix(0, 0, kT0 + i * 0.2);
    if (sampler.should_authenticate(fix)) {
      taken.push_back(fix.unix_time - kT0);
      sampler.on_recorded(fix);
    }
  }
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_NEAR(taken[0], 0.0, 1e-6);
  EXPECT_NEAR(taken[1], 0.4, 1e-6);
  EXPECT_NEAR(taken[2], 0.8, 1e-6);
}

TEST(FixedRateSampler, MatchedRatesSampleEveryUpdate) {
  FixedRateSampler sampler(5.0, kT0);
  int taken = 0;
  for (int i = 0; i <= 24; ++i) {
    const gps::GpsFix fix = make_fix(0, 0, kT0 + i * 0.2);
    if (sampler.should_authenticate(fix)) {
      ++taken;
      sampler.on_recorded(fix);
    }
  }
  EXPECT_EQ(taken, 25);
}

TEST(FixedRateSampler, NameIncludesRate) {
  EXPECT_EQ(FixedRateSampler(2.0, kT0).name(), "fixed-2Hz");
}

// ---- The core correctness property of the paper ----
// At the receiver's maximum 5 Hz rate, Algorithm 1 yields a PoA that is
// *always* sufficient (eq. 1) in both field-study geometries, with far
// fewer samples than one per GPS update. At lower update rates even
// max-rate sampling cannot maintain sufficiency near dense zones (this is
// exactly why 2/3 Hz fixed-rate accumulate violations in Fig. 8(c)) — but
// adaptive sampling is never worse there than fixed-rate at the same
// rate, while still skipping samples when far from zones.
class AdaptiveSufficiencyProperty
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {
 protected:
  struct Outcome {
    std::size_t samples = 0;
    std::size_t gps_updates = 0;
    std::size_t violations = 0;
  };

  static Outcome run(const sim::Scenario& scenario, double gps_rate, bool adaptive) {
    tee::DroneTee::Config tee_config;
    tee_config.key_bits = 512;
    tee_config.manufacturing_seed = "sufficiency-prop";
    tee::DroneTee tee(tee_config);

    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = gps_rate;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

    std::unique_ptr<SamplingPolicy> policy;
    if (adaptive) {
      policy = std::make_unique<AdaptiveSampler>(
          scenario.frame, scenario.local_zones(), geo::kFaaMaxSpeedMps, gps_rate);
    } else {
      policy = std::make_unique<FixedRateSampler>(gps_rate, rc.start_time);
    }

    FlightConfig config;
    config.end_time = scenario.route.end_time();
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    const FlightResult result = run_flight(tee, receiver, *policy, config);

    std::vector<gps::GpsFix> fixes;
    for (const SignedSample& s : result.poa_samples) {
      const auto f = s.fix();
      if (f) fixes.push_back(*f);
    }
    const SufficiencyReport report =
        check_sufficiency(fixes, scenario.zones, geo::kFaaMaxSpeedMps);
    return {result.poa_samples.size(), static_cast<std::size_t>(result.gps_updates),
            report.violations.size()};
  }
};

TEST_P(AdaptiveSufficiencyProperty, SufficientAtMaxRateNeverWorseBelow) {
  const auto [scenario_name, gps_rate] = GetParam();
  const sim::Scenario scenario = std::string(scenario_name) == "airport"
                                     ? sim::make_airport_scenario(kT0)
                                     : sim::make_residential_scenario(kT0);

  const Outcome adaptive = run(scenario, gps_rate, /*adaptive=*/true);
  ASSERT_GT(adaptive.samples, 0u);

  const Outcome fixed = run(scenario, gps_rate, /*adaptive=*/false);

  // Never worse on sufficiency than burning every update through the TEE.
  EXPECT_LE(adaptive.violations, fixed.violations) << scenario.name;

  if (gps_rate >= 5.0) {
    // The paper's headline invariant (Goal G1 + G2): sufficient at max
    // rate, with strictly fewer TEE samples than fixed max-rate sampling.
    EXPECT_EQ(adaptive.violations, 0u) << scenario.name;
    EXPECT_LT(adaptive.samples, adaptive.gps_updates);
    EXPECT_LT(adaptive.samples, fixed.samples);
  } else {
    // Below the needed rate near dense zones the algorithm degenerates to
    // best-effort max-rate sampling — it may use every update, but never
    // more than one sample per update.
    EXPECT_LE(adaptive.samples, adaptive.gps_updates);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScenariosAndRates, AdaptiveSufficiencyProperty,
    ::testing::Combine(::testing::Values("airport", "residential"),
                       ::testing::Values(2.0, 3.0, 5.0)));

TEST(RunFlight, LogCoversEveryUpdateAndCountsMatch) {
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = 512;
  tee::DroneTee tee(tee_config);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 1.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                         geo::kFaaMaxSpeedMps, 1.0);
  FlightConfig config;
  config.end_time = scenario.route.start_time() + 60.0;
  config.frame = scenario.frame;
  config.local_zones = scenario.local_zones();
  const FlightResult result = run_flight(tee, receiver, policy, config);

  EXPECT_EQ(result.log.size(), result.gps_updates);
  EXPECT_EQ(result.tee_failures, 0u);
  std::size_t recorded = 0;
  for (const FlightLogEntry& e : result.log) {
    if (e.recorded) ++recorded;
    EXPECT_GT(e.nearest_zone_distance, 0.0);
  }
  EXPECT_EQ(recorded, result.poa_samples.size());
}

TEST(RunFlight, EncryptionProducesCiphertextSamples) {
  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = 512;
  tee::DroneTee tee(tee_config);

  crypto::DeterministicRandom rng("auditor-key");
  const crypto::RsaKeyPair auditor = crypto::generate_rsa_keypair(512, rng);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 1.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  FixedRateSampler policy(1.0, scenario.route.start_time());
  FlightConfig config;
  config.end_time = scenario.route.start_time() + 10.0;
  config.auditor_encryption_key = auditor.pub;
  const FlightResult result = run_flight(tee, receiver, policy, config);

  ASSERT_GT(result.poa_samples.size(), 0u);
  for (const SignedSample& s : result.poa_samples) {
    // Ciphertext, not a 32-byte plaintext sample.
    EXPECT_EQ(s.sample.size(), auditor.pub.modulus_bytes());
    const auto plain = crypto::rsa_decrypt(auditor.priv, s.sample);
    ASSERT_TRUE(plain.has_value());
    EXPECT_TRUE(crypto::rsa_verify(tee.verification_key(), *plain, s.signature,
                                   crypto::HashAlgorithm::kSha1));
  }
}

}  // namespace
}  // namespace alidrone::core
