// Durable PoA retention through the Auditor: accusations survive an
// Auditor restart because verified PoAs were persisted (Section IV-C2's
// "save the PoAs for a couple of days", made crash-safe). Also covers
// route altitude interpolation and the paper's record-then-replay
// evaluation methodology.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "gps/trace.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

tee::DroneTee::Config tee_config(const char* seed) {
  tee::DroneTee::Config config;
  config.key_bits = kTestKeyBits;
  config.manufacturing_seed = seed;
  return config;
}

TEST(DurableRetention, AccusationAnsweredAfterAuditorRestart) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("alidrone_retention_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  crypto::DeterministicRandom owner_rng("retention-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);
  tee::DroneTee tee(tee_config("retention-device"));

  ZoneId zone_id;
  DroneId drone_id;

  // --- First Auditor process: register, fly, verify, persist ---
  {
    crypto::DeterministicRandom auditor_rng("retention-auditor");
    Auditor auditor(kTestKeyBits, auditor_rng);
    auditor.attach_store(std::make_shared<PoaStore>(dir));
    net::MessageBus bus;
    auditor.bind(bus);

    crypto::DeterministicRandom operator_rng("retention-operator");
    DroneClient client(tee, kTestKeyBits, operator_rng);
    ASSERT_TRUE(client.register_with_auditor(bus));
    drone_id = client.id();
    zone_id = owner.register_zone(bus, scenario.zones[10], "house 10");

    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
    AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = scenario.route.end_time();
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    const ProofOfAlibi poa = client.fly(receiver, policy, config);
    ASSERT_TRUE(auditor.verify_poa(poa, kT0 + 300).compliant);
  }

  // --- Second Auditor process: fresh memory, same store ---
  {
    crypto::DeterministicRandom auditor_rng("retention-auditor");  // same keys
    Auditor restarted(kTestKeyBits, auditor_rng);
    restarted.attach_store(std::make_shared<PoaStore>(dir));
    net::MessageBus bus;
    restarted.bind(bus);

    // Re-register the same drone (same TEE) and zone owner records —
    // identity databases would be durable in production; the PoA store is
    // what this test exercises.
    crypto::DeterministicRandom operator_rng("retention-operator");
    DroneClient client(tee, kTestKeyBits, operator_rng);
    ASSERT_TRUE(client.register_with_auditor(bus));
    ASSERT_EQ(client.id(), drone_id);
    ASSERT_EQ(owner.register_zone(bus, scenario.zones[10], "house 10"), zone_id);

    const AccusationRequest accusation =
        owner.make_accusation(zone_id, drone_id, kT0 + 60.0);
    const AccusationResponse response = restarted.handle_accusation(accusation);
    EXPECT_TRUE(response.ok);
    EXPECT_TRUE(response.alibi_holds) << response.detail;
  }

  std::filesystem::remove_all(dir);
}

TEST(DurableRetention, ExpiryPrunesStoreThroughAuditor) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("alidrone_expiry_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  crypto::DeterministicRandom auditor_rng("expiry-auditor");
  Auditor auditor(kTestKeyBits, auditor_rng);
  const auto store = std::make_shared<PoaStore>(dir);
  auditor.attach_store(store);
  net::MessageBus bus;
  auditor.bind(bus);

  tee::DroneTee tee(tee_config("expiry-device"));
  crypto::DeterministicRandom operator_rng("expiry-operator");
  DroneClient client(tee, kTestKeyBits, operator_rng);
  ASSERT_TRUE(client.register_with_auditor(bus));

  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  FixedRateSampler policy(1.0, rc.start_time);
  FlightConfig config;
  config.end_time = rc.start_time + 20.0;
  const ProofOfAlibi poa = client.fly(receiver, policy, config);

  auditor.verify_poa(poa, kT0 + 100);
  EXPECT_EQ(store->count(), 1u);
  auditor.expire_poas(kT0 + auditor.params().poa_retention_seconds + 200.0);
  EXPECT_EQ(store->count(), 0u);
  EXPECT_EQ(auditor.retained_poa_count(), 0u);
}

TEST(RouteAltitude, InterpolatesBetweenWaypoints) {
  const geo::LocalFrame frame({40.0, -88.0});
  std::vector<sim::Waypoint> wps;
  wps.push_back({{0, 0}, 10.0, 0.0});
  wps.push_back({{100, 0}, 10.0, 50.0});
  wps.push_back({{200, 0}, 10.0, 50.0});
  const sim::Route route(frame, wps, kT0);

  EXPECT_DOUBLE_EQ(route.altitude_at(kT0), 0.0);
  EXPECT_NEAR(route.altitude_at(kT0 + 5.0), 25.0, 1e-9);   // mid-climb
  EXPECT_DOUBLE_EQ(route.altitude_at(kT0 + 10.0), 50.0);
  EXPECT_DOUBLE_EQ(route.altitude_at(kT0 + 15.0), 50.0);   // cruise
  EXPECT_DOUBLE_EQ(route.altitude_at(kT0 + 999.0), 50.0);  // clamped

  const gps::GpsFix mid = route.state_at(kT0 + 5.0);
  EXPECT_NEAR(mid.altitude_m, 25.0, 1e-9);
}

TEST(TraceReplayMethodology, ReplayedDriveReproducesLiveSampling) {
  // The paper's evaluation records the full GPS trace while driving, then
  // replays it into the sampler (Section VI-A1). Record the residential
  // drive at 5 Hz into a GpsTrace, round-trip it through CSV, replay, and
  // check the adaptive sampler makes identical decisions.
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);

  // "Drive": record the ground truth at the receiver rate.
  gps::GpsTrace recorded;
  for (double t = scenario.route.start_time(); t <= scenario.route.end_time();
       t += 0.2) {
    recorded.append(scenario.route.state_at(t));
  }
  const auto csv = std::filesystem::temp_directory_path() /
                   ("alidrone_replay_" + std::to_string(::getpid()) + ".csv");
  recorded.save_csv(csv.string());
  const gps::GpsTrace replayed = gps::GpsTrace::load_csv(csv.string());
  std::filesystem::remove(csv);

  const auto run_with = [&](gps::PositionSource source) {
    tee::DroneTee tee(tee_config("replay-device"));
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario.route.start_time();
    gps::GpsReceiverSim receiver(rc, std::move(source));
    AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = scenario.route.end_time();
    config.frame = scenario.frame;
    config.local_zones = scenario.local_zones();
    return run_flight(tee, receiver, policy, config);
  };

  const FlightResult live = run_with(scenario.route.as_position_source());
  const FlightResult replay = run_with(replayed.as_position_source());

  ASSERT_EQ(replay.poa_samples.size(), live.poa_samples.size());
  for (std::size_t i = 0; i < live.poa_samples.size(); ++i) {
    EXPECT_EQ(replay.poa_samples[i].sample, live.poa_samples[i].sample) << i;
  }
}

}  // namespace
}  // namespace alidrone::core
