// Robustness under degraded GPS ("urban canyon"): measurement noise plus
// random missed updates. The protocol's behaviour must degrade gracefully:
// honest flights stay verifiable, insufficiencies appear only where the
// paper predicts (missed updates near zones), and noisy-but-plausible
// motion never trips the spoofing detector.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/flight.h"
#include "core/sampler.h"
#include "core/sufficiency.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;

struct DegradedRun {
  std::size_t samples = 0;
  std::size_t violations = 0;
  std::size_t missed_updates = 0;
  std::uint64_t tee_failures = 0;
};

DegradedRun run_degraded(double noise_std_m, double miss_probability,
                         std::uint64_t seed, bool plausibility = false) {
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);

  tee::DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = "degraded-device";
  config.enable_plausibility_check = plausibility;
  tee::DroneTee tee(config);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  rc.noise_std_m = noise_std_m;
  rc.miss_probability = miss_probability;
  rc.seed = seed;
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                         geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const FlightResult result = run_flight(tee, receiver, policy, flight);

  std::vector<gps::GpsFix> fixes;
  for (const SignedSample& s : result.poa_samples) {
    if (const auto f = s.fix()) fixes.push_back(*f);
  }
  const SufficiencyReport report =
      check_sufficiency(fixes, scenario.zones, geo::kFaaMaxSpeedMps);

  DegradedRun out;
  out.samples = result.poa_samples.size();
  out.violations = report.violations.size();
  out.missed_updates = static_cast<std::size_t>(receiver.missed_updates());
  out.tee_failures = result.tee_failures;
  return out;
}

TEST(DegradedGps, CleanBaselineHasNoViolations) {
  const DegradedRun run = run_degraded(0.0, 0.0, 1);
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.missed_updates, 0u);
}

TEST(DegradedGps, MeterLevelNoiseToleratedByAdaptiveSampling) {
  // Consumer GPS noise (~1-2 m sigma). The sampler's conditions work on
  // noisy positions; the alibi must still come out sufficient (or nearly:
  // noise can push a borderline pair over by a hair, so allow a couple).
  const DegradedRun run = run_degraded(1.5, 0.0, 2);
  EXPECT_LE(run.violations, 2u);
  EXPECT_GT(run.samples, 0u);
}

class MissedUpdateSweep : public ::testing::TestWithParam<int> {};

TEST_P(MissedUpdateSweep, ViolationsScaleWithMissRate) {
  // 2% vs 20% missed updates: violations grow but stay bounded — every
  // insufficiency needs a miss in exactly the dense window, the same
  // mechanism as the paper's single residential insufficiency.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DegradedRun light = run_degraded(0.0, 0.02, seed);
  const DegradedRun heavy = run_degraded(0.0, 0.20, seed);

  EXPECT_LE(light.violations, 3u) << "2% misses";
  EXPECT_GE(heavy.missed_updates, light.missed_updates);
  EXPECT_LE(heavy.violations, 25u) << "20% misses";
  // The flight is still accepted evidence — violations localize; most of
  // the trace remains sufficient.
  EXPECT_GT(heavy.samples, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MissedUpdateSweep, ::testing::Range(1, 6));

TEST(DegradedGps, NoisyMotionDoesNotTripPlausibilityMonitor) {
  // 2 m noise at 5 Hz implies apparent speed jitter of ~ 2*2/0.2 = 20 m/s
  // on top of 10 m/s of travel — far below the 2x-v_max threshold, so the
  // Section VII-A2 detector must not starve an honest noisy flight.
  const DegradedRun run = run_degraded(2.0, 0.0, 3, /*plausibility=*/true);
  EXPECT_EQ(run.tee_failures, 0u);
  EXPECT_GT(run.samples, 0u);
}

TEST(DegradedGps, NoiseAndMissesTogetherStillVerifiable) {
  crypto::DeterministicRandom auditor_rng("degraded-auditor");
  Auditor auditor(512, auditor_rng);

  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  crypto::DeterministicRandom owner_rng("degraded-owner");
  ZoneOwner owner(512, owner_rng);
  net::MessageBus bus;
  auditor.bind(bus);
  for (const geo::GeoZone& z : scenario.zones) owner.register_zone(bus, z, "house");

  tee::DroneTee::Config config;
  config.key_bits = 512;
  config.manufacturing_seed = "degraded-e2e-device";
  tee::DroneTee tee(config);
  crypto::DeterministicRandom operator_rng("degraded-operator");
  DroneClient client(tee, 512, operator_rng);
  ASSERT_TRUE(client.register_with_auditor(bus));

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  rc.noise_std_m = 1.0;
  rc.miss_probability = 0.05;
  rc.seed = 11;
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                         geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const ProofOfAlibi poa = client.fly(receiver, policy, flight);

  // Signatures and structure must be impeccable even if sufficiency has a
  // few miss-induced holes.
  const PoaVerdict verdict = auditor.verify_poa(poa, kT0 + 500);
  EXPECT_TRUE(verdict.accepted) << verdict.detail;
}

}  // namespace
}  // namespace alidrone::core
