// TESLA hash-chain unit tests: sender-side HashChain (checkpoint cache
// ablation, derivation correctness), verifier-side ChainFrontier (replay /
// forgery / out-of-order rejection, total-cost bound), and the MAC-key
// separation + per-sample tag, cross-checked against the generic
// crypto::Hmac as an independent reference implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {
namespace {

ChainKey seed_key(std::uint8_t fill) {
  ChainKey k{};
  k.fill(fill);
  return k;
}

TEST(ChainStep, IsSha256OfTheKey) {
  const ChainKey k = seed_key(0xAB);
  const ChainKey stepped = chain_step(k);
  const Sha256::Digest ref = Sha256::hash(k);
  EXPECT_TRUE(std::equal(stepped.begin(), stepped.end(), ref.begin()));
}

TEST(HashChain, AdjacentKeysChainDownToTheAnchor) {
  const HashChain chain(seed_key(0x11), 64);
  EXPECT_EQ(chain.length(), 64u);
  for (std::size_t i = 64; i >= 2; --i) {
    EXPECT_EQ(chain_step(chain.key(i)), chain.key(i - 1)) << "at index " << i;
  }
  EXPECT_EQ(chain_step(chain.key(1)), chain.anchor());
}

TEST(HashChain, SeedIsTheTopKey) {
  const ChainKey seed = seed_key(0x22);
  const HashChain chain(seed, 17);
  EXPECT_EQ(chain.key(17), seed);
}

TEST(HashChain, StrideDoesNotChangeTheChain) {
  // Checkpoint stride is a pure time/memory knob: every stride must produce
  // byte-identical keys and anchor.
  const ChainKey seed = seed_key(0x33);
  const HashChain dense(seed, 100, 1);
  const HashChain sqrt_stride(seed, 100, 0);  // ceil(sqrt(100)) = 10
  const HashChain sparse(seed, 100, 100);     // single checkpoint (the seed)
  EXPECT_EQ(dense.anchor(), sqrt_stride.anchor());
  EXPECT_EQ(dense.anchor(), sparse.anchor());
  for (std::size_t i = 1; i <= 100; ++i) {
    EXPECT_EQ(dense.key(i), sqrt_stride.key(i)) << "at index " << i;
    EXPECT_EQ(dense.key(i), sparse.key(i)) << "at index " << i;
  }
}

TEST(HashChain, CheckpointCacheAblation) {
  const ChainKey seed = seed_key(0x44);
  // stride 1: every key is a checkpoint, lookups never hash.
  const HashChain dense(seed, 256, 1);
  for (std::size_t i = 1; i <= 256; ++i) dense.key(i);
  EXPECT_EQ(dense.derive_hashes(), 0u);
  // default sqrt stride: each lookup walks < stride steps.
  const HashChain sqrt_stride(seed, 256, 0);
  EXPECT_EQ(sqrt_stride.checkpoint_stride(), 16u);
  std::uint64_t worst = 0;
  for (std::size_t i = 1; i <= 256; ++i) {
    const std::uint64_t before = sqrt_stride.derive_hashes();
    sqrt_stride.key(i);
    worst = std::max(worst, sqrt_stride.derive_hashes() - before);
  }
  EXPECT_LT(worst, 16u);
  // single checkpoint: key(1) must walk nearly the whole chain.
  const HashChain sparse(seed, 256, 256);
  sparse.key(1);
  EXPECT_EQ(sparse.derive_hashes(), 255u);
}

TEST(HashChain, RejectsBadArguments) {
  EXPECT_THROW(HashChain(seed_key(0), 0), std::invalid_argument);
  const HashChain chain(seed_key(0x55), 8);
  EXPECT_THROW(chain.key(0), std::out_of_range);
  EXPECT_THROW(chain.key(9), std::out_of_range);
}

TEST(HashChain, LengthOneChain) {
  const ChainKey seed = seed_key(0x66);
  const HashChain chain(seed, 1);
  EXPECT_EQ(chain.key(1), seed);
  EXPECT_EQ(chain.anchor(), chain_step(seed));
}

TEST(ChainFrontier, AcceptsInOrderDisclosures) {
  const HashChain chain(seed_key(0x77), 32);
  ChainFrontier frontier(chain.anchor(), 32);
  for (std::size_t i = 1; i <= 32; ++i) {
    EXPECT_TRUE(frontier.accept(i, chain.key(i))) << "at index " << i;
    EXPECT_EQ(frontier.frontier_index(), i);
  }
  // Total verification cost for a fully disclosed flight is exactly N.
  EXPECT_EQ(frontier.verify_hashes(), 32u);
}

TEST(ChainFrontier, SkipsOverDroppedDisclosures) {
  // Lossy broadcast: disclosures 1..4 never arrive; K_5 still verifies by
  // hashing 5 steps down to the anchor, and the flight total stays N.
  const HashChain chain(seed_key(0x88), 16);
  ChainFrontier frontier(chain.anchor(), 16);
  EXPECT_TRUE(frontier.accept(5, chain.key(5)));
  EXPECT_EQ(frontier.frontier_index(), 5u);
  EXPECT_TRUE(frontier.accept(16, chain.key(16)));
  EXPECT_EQ(frontier.verify_hashes(), 16u);
}

TEST(ChainFrontier, RejectsReplayAndOutOfOrder) {
  const HashChain chain(seed_key(0x99), 16);
  ChainFrontier frontier(chain.anchor(), 16);
  ASSERT_TRUE(frontier.accept(8, chain.key(8)));
  EXPECT_FALSE(frontier.accept(8, chain.key(8)));  // replay
  EXPECT_FALSE(frontier.accept(3, chain.key(3)));  // behind the frontier
  EXPECT_EQ(frontier.frontier_index(), 8u);
  EXPECT_EQ(frontier.frontier_key(), chain.key(8));
}

TEST(ChainFrontier, RejectsOutOfRangeAndForgedKeys) {
  const HashChain chain(seed_key(0xAA), 16);
  ChainFrontier frontier(chain.anchor(), 16);
  EXPECT_FALSE(frontier.accept(0, chain.anchor()));
  EXPECT_FALSE(frontier.accept(17, seed_key(0x01)));
  // A forged key fails to chain to the anchor and must not move state.
  EXPECT_FALSE(frontier.accept(4, seed_key(0xBB)));
  EXPECT_EQ(frontier.frontier_index(), 0u);
  // A key from a *different* chain is just as forged.
  const HashChain other(seed_key(0xCC), 16);
  EXPECT_FALSE(frontier.accept(4, other.key(4)));
  EXPECT_EQ(frontier.frontier_index(), 0u);
  // The genuine key still works afterwards.
  EXPECT_TRUE(frontier.accept(4, chain.key(4)));
}

TEST(TeslaMacKey, MatchesGenericHmacReference) {
  // K'_i = HMAC-SHA256(K_i, "alidrone.tesla.mac.v1"), independently
  // computed here with the allocating crypto::Hmac.
  const ChainKey k = seed_key(0xDD);
  const ChainKey mac_key = tesla_mac_key(k);
  const Bytes context = to_bytes("alidrone.tesla.mac.v1");
  const Sha256::Digest ref = HmacSha256::mac(k, context);
  EXPECT_TRUE(std::equal(mac_key.begin(), mac_key.end(), ref.begin()));
  // Key separation: the MAC key is not the chain element itself.
  EXPECT_NE(mac_key, k);
}

TEST(TeslaTag, MatchesGenericHmacReference) {
  const ChainKey mac_key = tesla_mac_key(seed_key(0xEE));
  const Bytes sample = to_bytes("lat=40.1164 lon=-88.2434 t=1528395000");
  const std::uint64_t interval = 0x0102030405060708ULL;
  const ChainKey tag = tesla_tag(mac_key, interval, sample);

  Bytes msg = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};  // BE64
  msg.insert(msg.end(), sample.begin(), sample.end());
  const Sha256::Digest ref = HmacSha256::mac(mac_key, msg);
  EXPECT_TRUE(std::equal(tag.begin(), tag.end(), ref.begin()));
}

TEST(TeslaTag, BindsIntervalAndSample) {
  const ChainKey mac_key = tesla_mac_key(seed_key(0xFF));
  const Bytes sample = to_bytes("sample");
  const ChainKey tag = tesla_tag(mac_key, 7, sample);
  EXPECT_NE(tag, tesla_tag(mac_key, 8, sample));
  Bytes other = sample;
  other[0] ^= 0x01;
  EXPECT_NE(tag, tesla_tag(mac_key, 7, other));
  EXPECT_NE(tag, tesla_tag(tesla_mac_key(seed_key(0xFE)), 7, sample));
}

}  // namespace
}  // namespace alidrone::crypto
