// Frame codec edges (labelled `transport`): a TCP stream can hand the
// assembler any byte split, and a hostile or corrupted stream must be
// rejected with an exact, testable error — never fed into the protocol
// parsers. Covers: frames split at every byte boundary, byte-at-a-time
// delivery, seeded random chunking, partial reads via the zero-copy
// writable()/commit() path, oversized-length and bad-CRC rejection with
// exact strings, envelope rejects, poisoning after the first error, and
// torn-frame-on-disconnect detection.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/random.h"
#include "ledger/crc32.h"
#include "net/buffer_pool.h"
#include "net/transport/frame.h"

namespace alidrone::net::transport {
namespace {

crypto::Bytes bytes_of(std::string_view text) {
  return crypto::Bytes(text.begin(), text.end());
}

/// Collect every payload the assembler yields for `stream` fed in chunks
/// of the given sizes (last chunk takes the remainder).
std::vector<crypto::Bytes> absorb_chunked(FrameAssembler& assembler,
                                          const crypto::Bytes& stream,
                                          const std::vector<std::size_t>& cuts,
                                          std::string* error_out = nullptr) {
  std::vector<crypto::Bytes> payloads;
  const auto on_frame = [&](std::span<const std::uint8_t> payload) {
    payloads.emplace_back(payload.begin(), payload.end());
    return std::string();
  };
  std::size_t at = 0;
  std::string error;
  for (const std::size_t cut : cuts) {
    const std::size_t take = std::min(cut, stream.size() - at);
    error = assembler.absorb({stream.data() + at, take}, on_frame);
    at += take;
    if (!error.empty()) break;
  }
  if (error.empty() && at < stream.size()) {
    error = assembler.absorb({stream.data() + at, stream.size() - at}, on_frame);
  }
  if (error_out != nullptr) *error_out = error;
  return payloads;
}

TEST(FrameCodecTest, RequestEnvelopeRoundTrips) {
  crypto::Bytes wire;
  const crypto::Bytes body = bytes_of("proof bytes");
  append_request_frame(wire, 42, "auditor.submit_poa", body);

  FrameAssembler assembler;
  std::size_t frames = 0;
  const std::string err =
      assembler.absorb(wire, [&](std::span<const std::uint8_t> payload) {
        RequestEnvelope req;
        EXPECT_EQ(parse_request(payload, req), "");
        EXPECT_EQ(req.correlation_id, 42u);
        EXPECT_EQ(req.endpoint, "auditor.submit_poa");
        EXPECT_EQ(crypto::Bytes(req.body.begin(), req.body.end()), body);
        ++frames;
        return std::string();
      });
  EXPECT_EQ(err, "");
  EXPECT_EQ(frames, 1u);
  EXPECT_FALSE(assembler.mid_frame());
}

TEST(FrameCodecTest, ResponseEnvelopeRoundTrips) {
  crypto::Bytes wire;
  const crypto::Bytes body = bytes_of("verdict");
  append_response_frame(wire, 7, kStatusOk, body);

  FrameAssembler assembler;
  const std::string err =
      assembler.absorb(wire, [&](std::span<const std::uint8_t> payload) {
        ResponseEnvelope resp;
        EXPECT_EQ(parse_response(payload, resp), "");
        EXPECT_EQ(resp.correlation_id, 7u);
        EXPECT_EQ(resp.status, kStatusOk);
        EXPECT_EQ(crypto::Bytes(resp.body.begin(), resp.body.end()), body);
        return std::string();
      });
  EXPECT_EQ(err, "");
}

TEST(FrameCodecTest, FrameSplitAtEveryByteBoundaryReassembles) {
  crypto::Bytes wire;
  append_request_frame(wire, 1, "ep", bytes_of("first body"));
  append_response_frame(wire, 2, kStatusOk, bytes_of("second body"));

  // Reference: one-shot absorb.
  FrameAssembler whole;
  const std::vector<crypto::Bytes> expected =
      absorb_chunked(whole, wire, {wire.size()});
  ASSERT_EQ(expected.size(), 2u);

  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    FrameAssembler assembler;
    std::string error;
    const std::vector<crypto::Bytes> got =
        absorb_chunked(assembler, wire, {cut}, &error);
    EXPECT_EQ(error, "") << "cut at " << cut;
    EXPECT_EQ(got, expected) << "cut at " << cut;
    EXPECT_FALSE(assembler.mid_frame()) << "cut at " << cut;
  }
}

TEST(FrameCodecTest, ByteAtATimeDelivery) {
  crypto::Bytes wire;
  append_request_frame(wire, 9, "auditor.query_zones", bytes_of("q"));

  FrameAssembler assembler;
  std::size_t frames = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const std::string err = assembler.absorb(
        {wire.data() + i, 1}, [&](std::span<const std::uint8_t>) {
          ++frames;
          return std::string();
        });
    ASSERT_EQ(err, "");
    // The frame must complete exactly at the last byte, never before.
    EXPECT_EQ(frames, i + 1 == wire.size() ? 1u : 0u) << "byte " << i;
  }
}

TEST(FrameCodecTest, SeededRandomChunkingMatchesOneShot) {
  crypto::Bytes wire;
  for (int i = 0; i < 32; ++i) {
    crypto::Bytes body(static_cast<std::size_t>(i * 17 % 301), 0);
    for (std::size_t b = 0; b < body.size(); ++b) {
      body[b] = static_cast<std::uint8_t>(i + b);
    }
    append_request_frame(wire, static_cast<std::uint64_t>(i),
                         "endpoint." + std::to_string(i), body);
  }
  FrameAssembler whole;
  const std::vector<crypto::Bytes> expected =
      absorb_chunked(whole, wire, {wire.size()});
  ASSERT_EQ(expected.size(), 32u);

  crypto::DeterministicRandom rng("frame-chunk-fuzz");
  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> cuts;
    std::size_t total = 0;
    while (total < wire.size()) {
      const std::size_t cut = 1 + rng.uniform(97);
      cuts.push_back(cut);
      total += cut;
    }
    FrameAssembler assembler;
    std::string error;
    const std::vector<crypto::Bytes> got =
        absorb_chunked(assembler, wire, cuts, &error);
    EXPECT_EQ(error, "") << "round " << round;
    EXPECT_EQ(got, expected) << "round " << round;
  }
}

TEST(FrameCodecTest, WritableCommitPartialReadsMatchAbsorb) {
  crypto::Bytes wire;
  append_request_frame(wire, 3, "ep", bytes_of("zero copy payload"));
  append_response_frame(wire, 3, kStatusOk, bytes_of("reply"));

  // Simulate recv() filling only part of each requested chunk — the
  // short-write/short-read shape the reactor sees under load.
  FrameAssembler assembler;
  std::vector<crypto::Bytes> payloads;
  std::size_t at = 0;
  crypto::DeterministicRandom rng("writable-commit");
  while (at < wire.size()) {
    const std::size_t chunk = 16;
    const std::span<std::uint8_t> dst = assembler.writable(chunk);
    ASSERT_EQ(dst.size(), chunk);
    const std::size_t got =
        std::min<std::size_t>(1 + rng.uniform(chunk), wire.size() - at);
    std::memcpy(dst.data(), wire.data() + at, got);
    at += got;
    const std::string err = assembler.commit(
        got, chunk, [&](std::span<const std::uint8_t> payload) {
          payloads.emplace_back(payload.begin(), payload.end());
          return std::string();
        });
    ASSERT_EQ(err, "");
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_FALSE(assembler.mid_frame());
}

TEST(FrameCodecTest, OversizedLengthRejectedBeforeBuffering) {
  crypto::Bytes wire(kFrameHeaderBytes, 0);
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(wire.data(), &huge, 4);

  FrameAssembler assembler;
  const std::string err = assembler.absorb(
      wire, [](std::span<const std::uint8_t>) { return std::string(); });
  EXPECT_EQ(err, "frame: oversized length");
  EXPECT_EQ(assembler.error(), "frame: oversized length");
}

TEST(FrameCodecTest, BadCrcRejectedAndPoisons) {
  crypto::Bytes wire;
  append_request_frame(wire, 5, "ep", bytes_of("payload"));
  wire.back() ^= 0x01;  // flip one payload bit; the CRC no longer matches

  FrameAssembler assembler;
  const std::string err = assembler.absorb(
      wire, [](std::span<const std::uint8_t>) { return std::string(); });
  EXPECT_EQ(err, "frame: bad crc");

  // Poisoned: even a pristine follow-up frame is refused — once framing
  // is lost the stream cannot be trusted again.
  crypto::Bytes good;
  append_request_frame(good, 6, "ep", bytes_of("fine"));
  std::size_t frames = 0;
  const std::string again = assembler.absorb(
      good, [&](std::span<const std::uint8_t>) {
        ++frames;
        return std::string();
      });
  EXPECT_EQ(again, "frame: bad crc");
  EXPECT_EQ(frames, 0u);
}

TEST(FrameCodecTest, EnvelopeRejectsAreExact) {
  RequestEnvelope req;
  ResponseEnvelope resp;

  const crypto::Bytes short_payload = {kEnvelopeRequest, 0x00};
  EXPECT_EQ(parse_request(short_payload, req), "envelope: truncated");
  EXPECT_EQ(parse_response({short_payload.data(), 1}, resp),
            "envelope: truncated");

  crypto::Bytes wrong_type;
  append_request_frame(wrong_type, 1, "ep", {});
  crypto::Bytes payload(wrong_type.begin() + kFrameHeaderBytes,
                        wrong_type.end());
  payload[0] = 0x7F;
  EXPECT_EQ(parse_request(payload, req), "envelope: unknown type");
  EXPECT_EQ(parse_response(payload, resp), "envelope: unknown type");

  // endpoint_len pointing past the payload end.
  crypto::Bytes bad_len;
  append_request_frame(bad_len, 1, "endpoint", {});
  crypto::Bytes bad_payload(bad_len.begin() + kFrameHeaderBytes,
                            bad_len.end());
  const std::uint32_t lie = 1000;
  std::memcpy(bad_payload.data() + 9, &lie, 4);
  EXPECT_EQ(parse_request(bad_payload, req), "envelope: bad endpoint length");
}

TEST(FrameCodecTest, TornFrameOnDisconnectIsDetectable) {
  crypto::Bytes wire;
  append_request_frame(wire, 8, "ep", bytes_of("the peer dies mid-message"));

  FrameAssembler assembler;
  std::size_t frames = 0;
  // Deliver everything except the last byte, then "disconnect".
  const std::string err = assembler.absorb(
      {wire.data(), wire.size() - 1}, [&](std::span<const std::uint8_t>) {
        ++frames;
        return std::string();
      });
  EXPECT_EQ(err, "");
  EXPECT_EQ(frames, 0u);
  EXPECT_TRUE(assembler.mid_frame());  // what the reactor counts as torn
  EXPECT_GT(assembler.buffered(), 0u);
}

TEST(FrameCodecTest, PooledBufferIsReturnedOnDestruction) {
  BufferPool pool(4);
  {
    FrameAssembler assembler(&pool);
    crypto::Bytes wire;
    append_request_frame(wire, 1, "ep", crypto::Bytes(600, 0xAB));
    EXPECT_EQ(assembler.absorb(
                  wire, [](std::span<const std::uint8_t>) {
                    return std::string();
                  }),
              "");
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 1u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.pooled, 1u);

  // The next assembler reuses the returned capacity.
  FrameAssembler reuse(&pool);
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(FrameCodecTest, EmptyBodyAndEmptyEndpointFrames) {
  crypto::Bytes wire;
  append_request_frame(wire, 0, "", {});
  append_response_frame(wire, 0, kStatusUnknownEndpoint, {});

  FrameAssembler assembler;
  std::size_t frames = 0;
  const std::string err =
      assembler.absorb(wire, [&](std::span<const std::uint8_t> payload) {
        if (frames == 0) {
          RequestEnvelope req;
          EXPECT_EQ(parse_request(payload, req), "");
          EXPECT_EQ(req.endpoint, "");
          EXPECT_TRUE(req.body.empty());
        } else {
          ResponseEnvelope resp;
          EXPECT_EQ(parse_response(payload, resp), "");
          EXPECT_EQ(resp.status, kStatusUnknownEndpoint);
          EXPECT_TRUE(resp.body.empty());
        }
        ++frames;
        return std::string();
      });
  EXPECT_EQ(err, "");
  EXPECT_EQ(frames, 2u);
}

}  // namespace
}  // namespace alidrone::net::transport
