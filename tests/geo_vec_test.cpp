#include <gtest/gtest.h>

#include <numbers>

#include "geo/circle.h"
#include "geo/vec2.h"

namespace alidrone::geo {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{3, 4};
  const Vec2 b{-1, 2};
  EXPECT_EQ(a + b, (Vec2{2, 6}));
  EXPECT_EQ(a - b, (Vec2{4, 2}));
  EXPECT_EQ(a * 2.0, (Vec2{6, 8}));
  EXPECT_EQ(2.0 * a, (Vec2{6, 8}));
  EXPECT_EQ(a / 2.0, (Vec2{1.5, 2}));
  EXPECT_EQ(-a, (Vec2{-3, -4}));

  Vec2 c = a;
  c += b;
  EXPECT_EQ(c, (Vec2{2, 6}));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Vec2, NormAndDot) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(a.cross({1, 0}), -4.0);  // clockwise turn
  EXPECT_DOUBLE_EQ((Vec2{1, 0}).cross({0, 1}), 1.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).normalized().norm(), 1.0);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0, 0}));
}

TEST(Vec2, PerpAndAngle) {
  const Vec2 east{1, 0};
  EXPECT_EQ(east.perp(), (Vec2{0, 1}));  // CCW
  EXPECT_DOUBLE_EQ(east.angle(), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}).angle(), std::numbers::pi / 2.0);
  EXPECT_DOUBLE_EQ((Vec2{-1, 0}).angle(), std::numbers::pi);
}

TEST(Vec3, ArithmeticAndNorm) {
  const Vec3 a{1, 2, 2};
  EXPECT_DOUBLE_EQ(a.norm(), 3.0);
  EXPECT_DOUBLE_EQ(a.dot({2, 0, 1}), 4.0);
  EXPECT_EQ((a + Vec3{1, 1, 1}), (Vec3{2, 3, 3}));
  EXPECT_EQ((a - Vec3{1, 1, 1}), (Vec3{0, 1, 1}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 4}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 4}));
  EXPECT_DOUBLE_EQ(distance(a, Vec3{1, 2, 2}), 0.0);
}

TEST(PointSegmentDistance, AllRegimes) {
  // Projection inside the segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 3}, {0, 0}, {10, 0}), 3.0);
  // Projection beyond the ends clamps to endpoints.
  EXPECT_DOUBLE_EQ(point_segment_distance({-3, 4}, {0, 0}, {10, 0}), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({13, 4}, {0, 0}, {10, 0}), 5.0);
  // Degenerate segment (a == b).
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {0, 0}, {0, 0}), 5.0);
  // Point on the segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 0}, {0, 0}, {10, 0}), 0.0);
}

TEST(SegmentCircle, IntersectionRegimes) {
  const Circle z{{5, 0}, 2.0};
  EXPECT_TRUE(segment_intersects_circle({0, 0}, {10, 0}, z));   // through
  EXPECT_TRUE(segment_intersects_circle({0, 2}, {10, 2}, z));   // tangent
  EXPECT_FALSE(segment_intersects_circle({0, 3}, {10, 3}, z));  // above
  EXPECT_FALSE(segment_intersects_circle({0, 0}, {1, 0}, z));   // short of it
  EXPECT_TRUE(segment_intersects_circle({5, 0}, {5, 1}, z));    // inside
}

TEST(Circle, ContainsAndBoundaryDistance) {
  const Circle z{{0, 0}, 10.0};
  EXPECT_TRUE(z.contains({6, 8}));       // on the boundary
  EXPECT_TRUE(z.contains({3, 4}));
  EXPECT_FALSE(z.contains({8, 8}));
  EXPECT_DOUBLE_EQ(z.boundary_distance({6, 8}), 0.0);
  EXPECT_DOUBLE_EQ(z.boundary_distance({30, 40}), 40.0);
  EXPECT_DOUBLE_EQ(z.boundary_distance({3, 4}), -5.0);  // inside: negative
}

}  // namespace
}  // namespace alidrone::geo
