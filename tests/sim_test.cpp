#include <gtest/gtest.h>

#include "geo/units.h"
#include "sim/planner.h"
#include "sim/route.h"
#include "sim/scenarios.h"

namespace alidrone::sim {
namespace {

constexpr double kT0 = 1528400000.0;

Route straight_route(double speed = 10.0) {
  const geo::LocalFrame frame({40.0, -88.0});
  return Route(frame, {{{0, 0}, speed}, {{1000, 0}, speed}}, kT0);
}

TEST(Route, RequiresTwoWaypointsAndPositiveSpeed) {
  const geo::LocalFrame frame({40.0, -88.0});
  EXPECT_THROW(Route(frame, {{{0, 0}, 10.0}}, kT0), std::invalid_argument);
  EXPECT_THROW(Route(frame, {{{0, 0}, 10.0}, {{1, 0}, 0.0}}, kT0),
               std::invalid_argument);
}

TEST(Route, LengthAndDurationArithmetic) {
  const Route r = straight_route(10.0);
  EXPECT_DOUBLE_EQ(r.length_m(), 1000.0);
  EXPECT_DOUBLE_EQ(r.duration(), 100.0);
  EXPECT_DOUBLE_EQ(r.end_time(), kT0 + 100.0);
}

TEST(Route, InterpolatesAlongLeg) {
  const Route r = straight_route(10.0);
  EXPECT_NEAR(r.local_position_at(kT0 + 50.0).x, 500.0, 1e-9);
  EXPECT_NEAR(r.local_position_at(kT0 + 50.0).y, 0.0, 1e-9);
  // Clamped outside the time span.
  EXPECT_DOUBLE_EQ(r.local_position_at(kT0 - 10.0).x, 0.0);
  EXPECT_DOUBLE_EQ(r.local_position_at(kT0 + 1000.0).x, 1000.0);
}

TEST(Route, StateCarriesSpeedAndCourse) {
  const Route r = straight_route(10.0);
  const gps::GpsFix mid = r.state_at(kT0 + 50.0);
  EXPECT_DOUBLE_EQ(mid.speed_mps, 10.0);
  EXPECT_NEAR(mid.course_deg, 90.0, 1e-9);  // heading east

  const gps::GpsFix before = r.state_at(kT0 - 5.0);
  EXPECT_DOUBLE_EQ(before.speed_mps, 0.0);
}

TEST(Route, CourseNorthIsZero) {
  const geo::LocalFrame frame({40.0, -88.0});
  const Route r(frame, {{{0, 0}, 5.0}, {{0, 100}, 5.0}}, kT0);
  EXPECT_NEAR(r.state_at(kT0 + 1.0).course_deg, 0.0, 1e-9);
}

TEST(Route, SpeedsClampedToVmax) {
  const geo::LocalFrame frame({40.0, -88.0});
  const Route r(frame, {{{0, 0}, 10.0}, {{1000, 0}, 500.0}}, kT0);
  EXPECT_DOUBLE_EQ(r.state_at(kT0 + 1.0).speed_mps, geo::kFaaMaxSpeedMps);
}

TEST(Route, GroundTruthNeverExceedsVmaxBetweenSamples) {
  // The invariant that makes every honest PoA feasible: sampled positions
  // of a Route can never imply a speed above v_max.
  const Scenario s = make_residential_scenario(kT0);
  double prev_t = s.route.start_time();
  geo::Vec2 prev = s.route.local_position_at(prev_t);
  for (double t = prev_t + 0.2; t <= s.route.end_time(); t += 0.2) {
    const geo::Vec2 cur = s.route.local_position_at(t);
    EXPECT_LE(geo::distance(prev, cur), geo::kFaaMaxSpeedMps * (t - prev_t) + 1e-9);
    prev = cur;
    prev_t = t;
  }
}

TEST(AirportScenario, MatchesPaperGeometry) {
  const Scenario s = make_airport_scenario(kT0);
  ASSERT_EQ(s.zones.size(), 1u);
  EXPECT_NEAR(s.zones[0].radius_m, geo::miles_to_meters(5.0), 1e-6);

  // Starts ~30 ft outside the boundary.
  const geo::Circle zone = s.local_zones()[0];
  const geo::Vec2 start = s.route.local_position_at(s.route.start_time());
  EXPECT_NEAR(zone.boundary_distance(start), geo::feet_to_meters(30.0), 0.5);

  // Drives away ~3 miles in ~12 minutes.
  EXPECT_NEAR(s.route.length_m(), geo::miles_to_meters(3.0), 50.0);
  EXPECT_NEAR(s.route.duration(), 720.0, 120.0);

  // Monotonically receding from the zone (within small wiggle).
  double prev = zone.boundary_distance(start);
  for (double t = s.route.start_time(); t <= s.route.end_time(); t += 30.0) {
    const double d = zone.boundary_distance(s.route.local_position_at(t));
    EXPECT_GE(d, prev - 30.0);
    prev = std::max(prev, d);
  }
}

TEST(ResidentialScenario, MatchesPaperGeometry) {
  const Scenario s = make_residential_scenario(kT0);
  EXPECT_EQ(s.zones.size(), 94u);  // the paper identifies 94 NFZs
  for (const geo::GeoZone& z : s.zones) {
    EXPECT_NEAR(z.radius_m, geo::feet_to_meters(20.0), 1e-9);
  }
  // ~1 mile drive.
  EXPECT_NEAR(s.route.length_m(), geo::miles_to_meters(1.0), 80.0);
  // Fig. 8's time axis runs to ~150 s.
  EXPECT_NEAR(s.route.duration(), 155.0, 25.0);
}

TEST(ResidentialScenario, NearestDistanceProfileMatchesFig8a) {
  const Scenario s = make_residential_scenario(kT0);
  const auto zones = s.local_zones();

  double min_dist = 1e18;
  for (double t = s.route.start_time(); t <= s.route.end_time(); t += 0.2) {
    const geo::Vec2 p = s.route.local_position_at(t);
    double nearest = 1e18;
    for (const geo::Circle& z : zones) {
      nearest = std::min(nearest, z.boundary_distance(p));
    }
    min_dist = std::min(min_dist, nearest);
    // The vehicle itself never enters an NFZ.
    EXPECT_GT(nearest, 0.0);
  }
  // Closest approach ~21 ft (paper Fig. 8a).
  EXPECT_NEAR(geo::meters_to_feet(min_dist), 21.0, 3.0);
}

TEST(Planner, TrivialWhenNoZones) {
  const PlanResult r = plan_route({0, 0}, {100, 0}, {});
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.length_m, 100.0, 1e-9);
  EXPECT_EQ(r.path.size(), 2u);
}

TEST(Planner, RoutesAroundSingleZone) {
  const std::vector<geo::Circle> zones{{{50, 0}, 20.0}};
  const PlanResult r = plan_route({0, 0}, {100, 0}, zones);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(path_is_collision_free(r.path, zones));
  EXPECT_GT(r.length_m, 100.0);        // detour costs distance
  EXPECT_LT(r.length_m, 160.0);        // but not absurdly much
}

TEST(Planner, FailsWhenEndpointInsideZone) {
  const std::vector<geo::Circle> zones{{{0, 0}, 30.0}};
  EXPECT_FALSE(plan_route({0, 0}, {100, 0}, zones).found);
  EXPECT_FALSE(plan_route({100, 0}, {0, 0}, zones).found);
}

TEST(Planner, FailsWhenGoalFullyEnclosed) {
  // A ring of overlapping zones around the goal.
  std::vector<geo::Circle> zones;
  for (int k = 0; k < 12; ++k) {
    const double a = 2.0 * 3.14159265358979 * k / 12.0;
    zones.push_back({{200.0 + 60.0 * std::cos(a), 60.0 * std::sin(a)}, 20.0});
  }
  const PlanResult r = plan_route({0, 0}, {200, 0}, zones, {5.0, 16});
  EXPECT_FALSE(r.found);
}

TEST(Planner, ThreadsThroughZoneField) {
  // Staggered field of zones between start and goal.
  std::vector<geo::Circle> zones;
  for (int i = 0; i < 5; ++i) {
    zones.push_back({{100.0 + i * 80.0, (i % 2 == 0) ? 40.0 : -40.0}, 25.0});
  }
  const PlanResult r = plan_route({0, 0}, {600, 0}, zones);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(path_is_collision_free(r.path, zones));
  // Clearance margin respected (inflated radius 25 + 15).
  for (const geo::Vec2 p : r.path) {
    for (const geo::Circle& z : zones) {
      EXPECT_GE(geo::distance(p, z.center), z.radius + 15.0 - 1e-6);
    }
  }
}

TEST(Planner, SegmentPoaSamplesBasics) {
  const PlannerConfig config;
  // No zones -> no samples needed.
  EXPECT_DOUBLE_EQ(segment_poa_samples({0, 0}, {100, 0}, {}, config), 0.0);
  // Far from the zone -> very few; hugging the zone -> many.
  const std::vector<geo::Circle> zones{{{50, 30}, 10.0}};
  const double close = segment_poa_samples({0, 0}, {100, 0}, zones, config);
  const double far = segment_poa_samples({0, 2000}, {100, 2000}, zones, config);
  EXPECT_GT(close, far);
  EXPECT_GT(close, 1.0);
  EXPECT_LT(far, 0.2);
  // A segment through the zone charges the max rate.
  const double through = segment_poa_samples({0, 30}, {100, 30}, zones, config);
  EXPECT_GT(through, close);
}

TEST(Planner, PoaAwareRoutingTradesLengthForFewerSamples) {
  // Corridor with a zone near the straight line: with weight 0 the path
  // shaves the inflated circle; with a heavy weight it swings wide.
  const std::vector<geo::Circle> zones{{{300, 0}, 40.0}};

  PlannerConfig shortest;
  shortest.poa_sample_weight = 0.0;
  const PlanResult base = plan_route({0, 0}, {600, 0}, zones, shortest);
  ASSERT_TRUE(base.found);

  PlannerConfig poa_aware = shortest;
  poa_aware.poa_sample_weight = 40.0;  // meters of detour per sample saved
  const PlanResult wide = plan_route({0, 0}, {600, 0}, zones, poa_aware);
  ASSERT_TRUE(wide.found);

  EXPECT_TRUE(path_is_collision_free(wide.path, zones));
  EXPECT_GE(wide.length_m, base.length_m);                        // longer...
  EXPECT_LT(wide.expected_poa_samples, base.expected_poa_samples); // ...cheaper proof
  // And the weighted objective actually improved.
  EXPECT_LE(wide.length_m + 40.0 * wide.expected_poa_samples,
            base.length_m + 40.0 * base.expected_poa_samples + 1e-6);
}

TEST(Planner, HigherSamplingGetsCloserToOptimal) {
  const std::vector<geo::Circle> zones{{{50, 0}, 20.0}};
  const PlanResult coarse = plan_route({0, 0}, {100, 0}, zones, {10.0, 8});
  const PlanResult fine = plan_route({0, 0}, {100, 0}, zones, {10.0, 64});
  ASSERT_TRUE(coarse.found);
  ASSERT_TRUE(fine.found);
  EXPECT_LE(fine.length_m, coarse.length_m + 1e-9);
}

}  // namespace
}  // namespace alidrone::sim
