// AuditLog under movement and concurrency (labelled `ledger` and `tsan`):
// move semantics carry the file sink, the attached ledger and the anchor
// mask; concurrent record() from many threads loses nothing — not in
// memory, not in the file sink, not in the anchored ledger stream.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/audit_log.h"
#include "ledger/ledger.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;

AuditEvent make_event(AuditEventType type, int i) {
  AuditEvent event;
  event.time = kT0 + i;
  event.type = type;
  event.subject = "drone-" + std::to_string(i);
  event.detail = "detail " + std::to_string(i);
  event.outcome_ok = (i % 2) == 0;
  return event;
}

std::filesystem::path temp_file(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove(path);
  return path;
}

TEST(AuditLogMoveTest, MoveConstructionCarriesSinkLedgerAndMask) {
  const auto path = temp_file("alidrone-audit-move-ctor.log");
  auto led = std::make_shared<ledger::Ledger>();
  AuditLog original(path);
  original.attach_ledger(led, AuditLog::anchor_bit(AuditEventType::kPoaVerdict));
  original.record(make_event(AuditEventType::kPoaVerdict, 0));
  original.record(make_event(AuditEventType::kZoneQuery, 1));  // masked out

  AuditLog moved(std::move(original));
  moved.record(make_event(AuditEventType::kPoaVerdict, 2));
  moved.record(make_event(AuditEventType::kZoneQuery, 3));  // still masked

  // All four events in memory and in the file; only the two kPoaVerdict
  // events were anchored — before AND after the move.
  EXPECT_EQ(moved.size(), 4u);
  EXPECT_EQ(led->entry_count(), 2u);
  for (std::uint64_t seq = 0; seq < 2; ++seq) {
    const auto entry = led->entry(seq);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->kind, ledger::EntryKind::kAuditEvent);
    const std::string line(entry->payload.begin(), entry->payload.end());
    const auto event = AuditEvent::from_line(line);
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->type, AuditEventType::kPoaVerdict);
  }

  std::size_t corrupt = 0;
  const AuditLog replayed = AuditLog::replay(path, &corrupt);
  EXPECT_EQ(replayed.size(), 4u);
  EXPECT_EQ(corrupt, 0u);
  std::filesystem::remove(path);
}

TEST(AuditLogMoveTest, MoveAssignmentTransfersAnchoring) {
  auto led = std::make_shared<ledger::Ledger>();
  AuditLog source;
  source.attach_ledger(led);
  source.record(make_event(AuditEventType::kDroneRegistered, 0));

  AuditLog target;
  target = std::move(source);
  target.record(make_event(AuditEventType::kAccusation, 1));

  EXPECT_EQ(target.size(), 2u);
  EXPECT_EQ(led->entry_count(), 2u);
  EXPECT_EQ(target.by_type(AuditEventType::kAccusation).size(), 1u);
}

TEST(AuditLogConcurrencyTest, ParallelRecordersLoseNothingAnywhere) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;

  const auto path = temp_file("alidrone-audit-concurrent.log");
  ledger::Ledger::Config ledger_config;
  ledger_config.segment_capacity = 64;
  auto led = std::make_shared<ledger::Ledger>(ledger_config);
  AuditLog log(path);
  log.attach_ledger(led);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.record(make_event(AuditEventType::kPoaVerdict,
                              t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr std::size_t kTotal =
      static_cast<std::size_t>(kThreads) * kPerThread;
  EXPECT_EQ(log.size(), kTotal);
  EXPECT_EQ(led->entry_count(), kTotal);
  EXPECT_FALSE(led->audit_segments().first_divergent.has_value());

  // The ledger saw events in exactly record() order: entry i is the
  // line of the i-th in-memory event.
  const auto& events = log.events();
  for (std::uint64_t seq = 0; seq < kTotal; seq += 97) {
    const auto entry = led->entry(seq);
    ASSERT_TRUE(entry.has_value());
    const std::string line(entry->payload.begin(), entry->payload.end());
    EXPECT_EQ(line, events[seq].to_line());
  }

  // Every line made it to the file sink intact.
  std::size_t corrupt = 0;
  const AuditLog replayed = AuditLog::replay(path, &corrupt);
  EXPECT_EQ(replayed.size(), kTotal);
  EXPECT_EQ(corrupt, 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace alidrone::core
