// Edge-case coverage for paths the main suites do not reach: client nonce
// freshness, TA resource limits, bus-level submission corner cases.
#include <gtest/gtest.h>

#include <set>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "gps/receiver_sim.h"
#include "net/message_bus.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

tee::DroneTee::Config tee_config(const char* seed) {
  tee::DroneTee::Config config;
  config.key_bits = kTestKeyBits;
  config.manufacturing_seed = seed;
  return config;
}

TEST(DroneClientMisc, ZoneQueryNoncesAreFresh) {
  tee::DroneTee tee(tee_config("nonce-device"));
  crypto::DeterministicRandom rng("nonce-operator");
  DroneClient client(tee, kTestKeyBits, rng);

  std::set<crypto::Bytes> nonces;
  const QueryRect rect{{40.0, -89.0}, {41.0, -88.0}};
  for (int i = 0; i < 50; ++i) {
    const ZoneQueryRequest request = client.make_zone_query(rect);
    EXPECT_EQ(request.nonce.size(), 16u);
    EXPECT_TRUE(nonces.insert(request.nonce).second) << "duplicate nonce at " << i;
  }
}

TEST(SamplerTaMisc, BatchCapacityLimitEnforced) {
  tee::DroneTee tee(tee_config("capacity-device"));

  // Feed one fix so appends have data.
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim sim(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.0, -88.0};
    f.unix_time = t;
    return f;
  });
  for (const std::string& s : sim.advance_to(kT0)) tee.feed_gps(s);

  // The default DroneTee uses a 16384-sample batch capacity; the secure
  // storage (4 MB) also bounds it. Exercise the storage-capacity path by
  // filling storage-adjacent sessions... simplest honest check: append up
  // to a few thousand and confirm the TA keeps accepting, then verify the
  // capacity error surfaces at the configured limit via a small custom TA.
  tee::SecureStorage small_storage(3 * tee::kEncodedSampleSize);
  crypto::DeterministicRandom vault_rng("capacity-vault");
  const tee::KeyVault vault = tee::KeyVault::manufacture(512, vault_rng);
  gps::GpsDriver driver;
  for (const std::string& s : sim.advance_to(kT0 + 1.0)) driver.feed(s);
  crypto::SecureRandom ta_rng;
  tee::GpsSamplerTA ta(vault, driver, small_storage, ta_rng);

  ASSERT_TRUE(ta.invoke(tee::kDefaultSession,
                        static_cast<std::uint32_t>(tee::SamplerCommand::kBatchBegin), {})
                  .ok());
  // 3 samples fit; the 4th overflows the 96-byte secure storage.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ta.invoke(tee::kDefaultSession,
                          static_cast<std::uint32_t>(tee::SamplerCommand::kBatchAppend),
                          {})
                    .ok())
        << i;
  }
  EXPECT_EQ(ta.invoke(tee::kDefaultSession,
                      static_cast<std::uint32_t>(tee::SamplerCommand::kBatchAppend), {})
                .status,
            tee::TeeStatus::kOutOfResources);
}

TEST(AuditorMisc, SubmitEndpointHandlesEmptyPoaBytes) {
  crypto::DeterministicRandom rng("misc-auditor");
  Auditor auditor(kTestKeyBits, rng);
  net::MessageBus bus;
  auditor.bind(bus);

  const crypto::Bytes reply =
      bus.request("auditor.submit_poa", SubmitPoaRequest{{}}.encode());
  const auto verdict = PoaVerdict::decode(reply);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(verdict->accepted);
}

TEST(AuditorMisc, HmacPoaWithWrongAuditorKeyUnreadable) {
  // A drone establishes its session key against auditor A, then submits
  // the PoA to auditor B: B cannot unwrap the key and must reject.
  crypto::DeterministicRandom rng_a("auditor-A");
  crypto::DeterministicRandom rng_b("auditor-B");
  Auditor auditor_a(kTestKeyBits, rng_a);
  Auditor auditor_b(kTestKeyBits, rng_b);

  tee::DroneTee tee(tee_config("wrong-auditor-device"));
  crypto::DeterministicRandom operator_rng("wrong-auditor-operator");
  DroneClient client(tee, kTestKeyBits, operator_rng);
  net::MessageBus bus_a;
  auditor_a.bind(bus_a);
  net::MessageBus bus_b;
  auditor_b.bind(bus_b);
  ASSERT_TRUE(client.register_with_auditor(bus_a));

  // Register the same drone at B too (same TEE key allowed: separate DBs).
  ASSERT_TRUE(client.register_with_auditor(bus_b));

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.0, -88.0};
    f.unix_time = t;
    return f;
  });
  AdaptiveSampler policy(geo::LocalFrame({40.0, -88.0}), {}, geo::kFaaMaxSpeedMps,
                         5.0);
  FlightConfig config;
  config.end_time = kT0 + 5.0;
  config.auth_mode = AuthMode::kHmacSession;
  config.auditor_encryption_key = auditor_a.encryption_key();  // keyed to A
  const ProofOfAlibi poa = client.fly(receiver, policy, config);

  EXPECT_TRUE(auditor_a.verify_poa(poa, kT0 + 100).accepted);
  const PoaVerdict wrong = auditor_b.verify_poa(poa, kT0 + 100);
  EXPECT_FALSE(wrong.accepted);
  EXPECT_EQ(wrong.detail, "session key unreadable");
}

TEST(AuditorMisc, VerdictDetailNamesFirstBadSample) {
  crypto::DeterministicRandom rng("detail-auditor");
  Auditor auditor(kTestKeyBits, rng);
  tee::DroneTee tee(tee_config("detail-device"));
  crypto::DeterministicRandom operator_rng("detail-operator");
  DroneClient client(tee, kTestKeyBits, operator_rng);
  net::MessageBus bus;
  auditor.bind(bus);
  ASSERT_TRUE(client.register_with_auditor(bus));

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, [](double t) {
    gps::GpsFix f;
    f.position = {40.0, -88.0};
    f.unix_time = t;
    return f;
  });
  FixedRateSampler policy(5.0, kT0);
  FlightConfig config;
  config.end_time = kT0 + 3.0;
  ProofOfAlibi poa = client.fly(receiver, policy, config);
  ASSERT_GE(poa.samples.size(), 3u);
  poa.samples[2].signature[0] ^= 1;

  const PoaVerdict verdict = auditor.verify_poa(poa, kT0 + 100);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.detail, "sample 2 signature invalid");
}

}  // namespace
}  // namespace alidrone::core
