#include <gtest/gtest.h>

#include <cmath>

#include "core/flight.h"
#include "core/preflight.h"
#include "core/sampler.h"
#include "core/sufficiency.h"
#include "geo/units.h"
#include "sim/scenarios.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
const geo::GeoPoint kAnchor{40.1100, -88.2200};

TEST(MaxSampleInterval, TangencyFormula) {
  EXPECT_DOUBLE_EQ(max_sample_interval_s(100.0, 100.0, 50.0), 4.0);
  EXPECT_DOUBLE_EQ(max_sample_interval_s(0.0, 100.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(max_sample_interval_s(-5.0, 100.0, 50.0), 0.0);
  // Asymmetric distances simply add.
  EXPECT_DOUBLE_EQ(max_sample_interval_s(30.0, 70.0, geo::kFaaMaxSpeedMps),
                   100.0 / geo::kFaaMaxSpeedMps);
}

TEST(Preflight, NoZonesIsTriviallyFeasible) {
  const geo::LocalFrame frame(kAnchor);
  const sim::Route route(frame, {{{0, 0}, 10.0}, {{1000, 0}, 10.0}}, kT0);
  const PreflightReport report = analyze_route(route, {});
  EXPECT_TRUE(report.feasible());
  EXPECT_TRUE(std::isinf(report.min_clearance_m));
  EXPECT_DOUBLE_EQ(report.required_peak_rate_hz, 0.0);
  EXPECT_EQ(report.estimated_samples, 1u);  // the anchoring S_0
}

TEST(Preflight, RouteThroughZoneIsInfeasible) {
  const geo::LocalFrame frame(kAnchor);
  const sim::Route route(frame, {{{0, 0}, 10.0}, {{1000, 0}, 10.0}}, kT0);
  const std::vector<geo::Circle> zones{{{500, 0}, 30.0}};  // on the path
  const PreflightReport report = analyze_route(route, zones);
  EXPECT_FALSE(report.route_avoids_zones);
  EXPECT_FALSE(report.feasible());
  EXPECT_LT(report.min_clearance_m, 0.0);
}

TEST(Preflight, PeakRateMatchesClosestApproachFormula) {
  const geo::LocalFrame frame(kAnchor);
  const sim::Route route(frame, {{{0, 0}, 10.0}, {{1000, 0}, 10.0}}, kT0);
  const double offset = 50.0;
  const std::vector<geo::Circle> zones{{{500, offset}, 10.0}};
  const PreflightReport report = analyze_route(route, zones);

  // Closest approach: 50 - 10 = 40 m; peak rate = vmax / (2 * 40).
  EXPECT_NEAR(report.min_clearance_m, 40.0, 0.1);
  EXPECT_NEAR(report.required_peak_rate_hz, geo::kFaaMaxSpeedMps / 80.0, 0.02);
  EXPECT_TRUE(report.gps_rate_sufficient);  // ~0.56 Hz << 5 Hz
  EXPECT_TRUE(report.feasible());
}

TEST(Preflight, TightPassExceedsGpsRate) {
  const geo::LocalFrame frame(kAnchor);
  const sim::Route route(frame, {{{0, 0}, 10.0}, {{1000, 0}, 10.0}}, kT0);
  // 12 m offset, 10 m radius: clearance 2 m -> required ~11 Hz > 5 Hz.
  const std::vector<geo::Circle> zones{{{500, 12.0}, 10.0}};
  const PreflightReport report = analyze_route(route, zones);
  EXPECT_TRUE(report.route_avoids_zones);
  EXPECT_FALSE(report.gps_rate_sufficient);
  EXPECT_FALSE(report.feasible());
}

TEST(Preflight, LongKeyCannotKeepUpWhereShortKeyCan) {
  const geo::LocalFrame frame(kAnchor);
  const sim::Route route(frame, {{{0, 0}, 10.0}, {{1000, 0}, 10.0}}, kT0);
  // Clearance ~4.7 m: required rate ~4.75 Hz — inside the 5 Hz GPS but
  // above the 2048-bit signing ceiling of 1/0.219 s ~ 4.57 Hz.
  const std::vector<geo::Circle> zones{{{500, 14.7}, 10.0}};

  PreflightConfig short_key;
  short_key.tee_key_bits = 1024;  // 43 ms/sample -> 23 Hz ceiling
  EXPECT_TRUE(analyze_route(route, zones, short_key).tee_can_keep_up);

  PreflightConfig long_key;
  long_key.tee_key_bits = 2048;  // 219 ms/sample -> 4.6 Hz ceiling
  const PreflightReport report = analyze_route(route, zones, long_key);
  EXPECT_TRUE(report.gps_rate_sufficient);
  EXPECT_FALSE(report.tee_can_keep_up);  // Table II's "-" cells, predicted
  EXPECT_FALSE(report.feasible());
}

// The estimate must track reality: fly the scenarios and compare the
// predicted sample count with what Algorithm 1 actually records.
class PreflightVsFlight : public ::testing::TestWithParam<const char*> {};

TEST_P(PreflightVsFlight, EstimateWithinFactorOfActual) {
  const sim::Scenario scenario = std::string(GetParam()) == "airport"
                                     ? sim::make_airport_scenario(kT0)
                                     : sim::make_residential_scenario(kT0);

  const PreflightReport report =
      analyze_route(scenario.route, scenario.local_zones());
  EXPECT_TRUE(report.route_avoids_zones);

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = 512;
  tee_config.manufacturing_seed = "preflight-device";
  tee::DroneTee tee(tee_config);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                         geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig config;
  config.end_time = scenario.route.end_time();
  config.frame = scenario.frame;
  config.local_zones = scenario.local_zones();
  const FlightResult result = run_flight(tee, receiver, policy, config);

  const double actual = static_cast<double>(result.poa_samples.size());
  const double estimated = static_cast<double>(report.estimated_samples);
  EXPECT_GT(estimated, actual * 0.3) << GetParam();
  EXPECT_LT(estimated, actual * 3.0 + 10.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PreflightVsFlight,
                         ::testing::Values("airport", "residential"));

}  // namespace
}  // namespace alidrone::core
