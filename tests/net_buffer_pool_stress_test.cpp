// BufferPool under cross-thread fire (labelled `transport tsan`): the
// socket transport checks buffers out on reactor workers, client reader
// threads and request threads simultaneously, so the pool's freelist is
// the one lock every hot path crosses. This suite is meant to run under
// ThreadSanitizer (`ctest -L tsan` in the TSan CI job) and pins down the
// invariants the transport relies on: no lost or doubled buffers, stats
// that add up exactly, cleared contents on reuse, and a bounded
// free list no matter how unbalanced the acquire/release mix gets.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "crypto/bytes.h"
#include "net/buffer_pool.h"
#include "obs/metrics.h"

namespace alidrone::net {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::size_t kThreads = 4;
constexpr std::size_t kRoundsPerThread = 2000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::size_t kThreads = 4;
constexpr std::size_t kRoundsPerThread = 2000;
#else
constexpr std::size_t kThreads = 8;
constexpr std::size_t kRoundsPerThread = 10000;
#endif
#else
constexpr std::size_t kThreads = 8;
constexpr std::size_t kRoundsPerThread = 10000;
#endif

TEST(BufferPoolStressTest, ConcurrentAcquireReleaseKeepsStatsExact) {
  obs::MetricsRegistry registry;
  BufferPool pool(16, &registry);

  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> dirty_buffers{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &start, &dirty_buffers, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
        crypto::Bytes buffer = pool.acquire();
        if (!buffer.empty()) {
          dirty_buffers.fetch_add(1, std::memory_order_relaxed);
        }
        // Vary the footprint so reused capacities differ across threads.
        buffer.resize(64 + (t * 131 + round * 17) % 512,
                      static_cast<std::uint8_t>(t));
        pool.release(std::move(buffer));
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  // Reused buffers must always come back cleared.
  EXPECT_EQ(dirty_buffers.load(), 0u);

  const BufferPool::Stats stats = pool.stats();
  const std::uint64_t total = kThreads * kRoundsPerThread;
  EXPECT_EQ(stats.acquires, total);
  EXPECT_EQ(stats.releases, total);
  EXPECT_LE(stats.reuses, stats.acquires);
  EXPECT_LE(stats.pooled, 16u);
  // Conservation: every buffer that entered the freelist (a release not
  // discarded) either left it again via a reuse or is still pooled.
  EXPECT_EQ(stats.releases - stats.discards, stats.reuses + stats.pooled);
  // With max_pooled buffers circulating among more threads than slots,
  // the freelist must actually be exercised, not bypassed.
  EXPECT_GT(stats.reuses, 0u);
}

TEST(BufferPoolStressTest, UnbalancedProducersNeverExceedBound) {
  obs::MetricsRegistry registry;
  constexpr std::size_t kBound = 8;
  BufferPool pool(kBound, &registry);

  // Producers release buffers they never acquired (the codec's encode
  // path does exactly this with scratch buffers), consumers only acquire.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (std::size_t round = 0; round < kRoundsPerThread / 4; ++round) {
        if (t % 2 == 0) {
          crypto::Bytes fresh(256, 0x5A);
          pool.release(std::move(fresh));
        } else {
          crypto::Bytes buffer = pool.acquire();
          EXPECT_TRUE(buffer.empty());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const BufferPool::Stats stats = pool.stats();
  EXPECT_LE(stats.pooled, kBound);
  EXPECT_GT(stats.discards, 0u);  // the bound did real work
}

}  // namespace
}  // namespace alidrone::net
