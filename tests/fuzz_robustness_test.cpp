// Robustness property tests: every parser that consumes attacker-
// controlled bytes (PoA, protocol messages, NMEA sentences, codec) must
// never crash, hang or mis-accept on mutated or random input. These are
// deterministic fuzz sweeps — seeds are fixed, failures reproduce.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>

#include "core/auditor.h"
#include "core/messages.h"
#include "core/poa.h"
#include "core/sampler.h"
#include "crypto/random.h"
#include "geo/units.h"
#include "gps/driver.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "nmea/gga.h"
#include "nmea/rmc.h"
#include "nmea/sentence.h"
#include "tee/sample_codec.h"

namespace alidrone {
namespace {

using crypto::Bytes;
using crypto::DeterministicRandom;

Bytes mutate(const Bytes& input, DeterministicRandom& rng) {
  Bytes out = input;
  if (out.empty()) return out;
  switch (rng.uniform(4)) {
    case 0: {  // flip random bits
      const int flips = 1 + static_cast<int>(rng.uniform(8));
      for (int i = 0; i < flips; ++i) {
        out[rng.uniform(out.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      }
      break;
    }
    case 1:  // truncate
      out.resize(rng.uniform(out.size()));
      break;
    case 2: {  // insert garbage
      const std::size_t at = rng.uniform(out.size() + 1);
      const Bytes junk = rng.bytes(1 + rng.uniform(16));
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
                 junk.end());
      break;
    }
    default: {  // overwrite a window
      const std::size_t at = rng.uniform(out.size());
      const std::size_t len = std::min(out.size() - at, 1 + rng.uniform(8));
      const Bytes junk = rng.bytes(len);
      std::copy(junk.begin(), junk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(at));
      break;
    }
  }
  return out;
}

core::ProofOfAlibi sample_poa() {
  core::ProofOfAlibi poa;
  poa.drone_id = "drone-7";
  poa.mode = core::AuthMode::kRsaPerSample;
  for (int i = 0; i < 10; ++i) {
    gps::GpsFix f;
    f.position = {40.0 + i * 1e-4, -88.0};
    f.unix_time = 1528400000.0 + i;
    poa.samples.push_back({tee::encode_sample(f), Bytes(64, 0xAB)});
  }
  return poa;
}

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, PoaParserNeverCrashesOnMutations) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const Bytes original = sample_poa().serialize();
  for (int i = 0; i < 200; ++i) {
    const Bytes corrupted = mutate(original, rng);
    const auto parsed = core::ProofOfAlibi::parse(corrupted);
    if (parsed) {
      // If it parses, re-serialization must be stable (no hidden state).
      EXPECT_EQ(core::ProofOfAlibi::parse(parsed->serialize()).has_value(), true);
    }
  }
}

TEST_P(FuzzSeed, PoaParserRejectsPureRandomBytes) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 97 + 1);
  for (int i = 0; i < 200; ++i) {
    const Bytes random = rng.bytes(rng.uniform(300));
    core::ProofOfAlibi::parse(random);  // must not crash; result irrelevant
  }
  SUCCEED();
}

TEST_P(FuzzSeed, ProtocolMessageDecodersSurviveMutations) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);

  core::ZoneQueryRequest query;
  query.drone_id = "drone-1";
  query.rect = {{40.0, -89.0}, {41.0, -88.0}};
  query.nonce = rng.bytes(16);
  query.nonce_signature = rng.bytes(64);

  core::RegisterZoneRequest zone;
  zone.zone = {{40.0, -88.0}, 30.0};
  zone.description = "prop";
  zone.owner_key_n = rng.bytes(64);
  zone.owner_key_e = {1, 0, 1};
  zone.proof_signature = rng.bytes(64);

  const std::vector<Bytes> messages{
      query.encode(), zone.encode(),
      core::AccusationRequest{"z", "d", 1.0, rng.bytes(64)}.encode(),
      core::SubmitPoaRequest{sample_poa().serialize()}.encode()};

  for (const Bytes& original : messages) {
    for (int i = 0; i < 100; ++i) {
      const Bytes corrupted = mutate(original, rng);
      core::ZoneQueryRequest::decode(corrupted);
      core::RegisterZoneRequest::decode(corrupted);
      core::AccusationRequest::decode(corrupted);
      core::SubmitPoaRequest::decode(corrupted);
      core::RegisterDroneRequest::decode(corrupted);
      core::PoaVerdict::decode(corrupted);
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeed, AuditorEndpointsSurviveGarbageOverTheBus) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  DeterministicRandom key_rng("fuzz-auditor");
  core::Auditor auditor(512, key_rng);
  net::MessageBus bus;
  auditor.bind(bus);

  for (const char* endpoint :
       {"auditor.register_drone", "auditor.register_zone", "auditor.query_zones",
        "auditor.submit_poa", "auditor.accuse"}) {
    for (int i = 0; i < 50; ++i) {
      const Bytes garbage = rng.bytes(rng.uniform(200));
      EXPECT_NO_THROW(bus.request(endpoint, garbage)) << endpoint;
    }
  }
  EXPECT_EQ(auditor.drone_count(), 0u);
  EXPECT_EQ(auditor.zone_count(), 0u);
}

TEST_P(FuzzSeed, NmeaParsersSurviveLineNoise) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 53 + 29);
  const std::string valid =
      nmea::frame("GPRMC,123519.000,A,4807.0380,N,01131.0000,E,022.4,084.4,230394,,,A");

  for (int i = 0; i < 300; ++i) {
    std::string noisy = valid;
    const int mutations = 1 + static_cast<int>(rng.uniform(5));
    for (int m = 0; m < mutations; ++m) {
      if (noisy.empty()) break;
      const std::size_t at = rng.uniform(noisy.size());
      noisy[at] = static_cast<char>(rng.uniform(256));
    }
    nmea::parse_rmc(noisy);
    nmea::parse_gga(noisy);
    nmea::unframe(noisy);
  }
  // Pure random "sentences".
  for (int i = 0; i < 300; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(90));
    const std::string line(junk.begin(), junk.end());
    nmea::parse_rmc(line);
    nmea::parse_gga(line);
  }
  SUCCEED();
}

TEST_P(FuzzSeed, SampleCodecNeverCrashes) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
  for (int i = 0; i < 500; ++i) {
    const Bytes data = rng.bytes(rng.uniform(64));
    const auto fix = tee::decode_sample(data);
    if (fix) {
      // Any successfully decoded 32-byte buffer must re-encode to itself.
      EXPECT_EQ(tee::encode_sample(*fix), data);
    }
  }
}

TEST_P(FuzzSeed, CodecReaderTerminatesOnRandomBytes) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 41 + 13);
  for (int i = 0; i < 300; ++i) {
    const Bytes data = rng.bytes(rng.uniform(100));
    net::Reader r(data);
    // Drain with a mixed read pattern; must terminate.
    while (!r.at_end()) {
      const auto choice = rng.uniform(4);
      bool progressed = false;
      switch (choice) {
        case 0: progressed = r.u8().has_value(); break;
        case 1: progressed = r.u32().has_value(); break;
        case 2: progressed = r.f64().has_value(); break;
        default: progressed = r.bytes().has_value(); break;
      }
      if (!progressed) break;  // reader refused: stop
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Corrupted-NMEA corpus through the GpsDriver -> sampler path. A real UART
// delivers arbitrary byte chunks; the secure driver must reject every
// damaged sentence (bad checksum, truncation, empty mandatory fields, line
// noise) without ever fabricating a fix, and intact sentences must survive
// no matter how the stream is chunked.

/// An intact framed $GPRMC on a straight northbound track; each index moves
/// 0.01 NMEA-minutes of latitude and one second of flight time.
std::string intact_rmc(int i) {
  char body[96];
  std::snprintf(body, sizeof body,
                "GPRMC,1235%02d.000,A,%09.4f,N,01131.0000,E,022.4,084.4,"
                "230394,,,A",
                i % 60, 4807.0380 + 0.01 * i);
  return nmea::frame(body);
}

/// One damaged variant of `framed`. Every variant keeps its own "\r\n"
/// terminator so corruption stays confined to a single line — the corpus
/// counts rejections per sentence, and a swallowed terminator would merge
/// two entries into one.
std::string corrupt_nmea(const std::string& framed, DeterministicRandom& rng) {
  switch (rng.uniform(4)) {
    case 0: {  // checksum mismatch: flip one payload character
      std::string bad = framed;
      const std::size_t star = bad.find('*');
      const std::size_t at = 1 + rng.uniform(star - 1);
      bad[at] = (bad[at] == '9') ? '0' : static_cast<char>(bad[at] + 1);
      return bad;
    }
    case 1: {  // truncated mid-sentence (dropped UART burst)
      const std::size_t keep = 1 + rng.uniform(framed.size() - 3);
      return framed.substr(0, keep) + "\r\n";
    }
    case 2: {  // correctly checksummed but mandatory fields missing/bad
      static const char* const kMalformed[] = {
          "GPRMC,,,,,,,,,,,",
          "GPRMC,123519.000,A,,N,01131.0000,E,022.4,084.4,230394,,,A",
          "GPRMC,123519.000,Q,4807.0380,N,01131.0000,E,022.4,084.4,230394,,,A",
          "GPRMC,123519.000,A,4807.0380,N,01131.0000,E",
      };
      return nmea::frame(kMalformed[rng.uniform(4)]);
    }
    default: {  // pure line noise
      std::string junk;
      const std::size_t len = 1 + rng.uniform(40);
      for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(rng.uniform(256));
        if (c == '\n') c = 'x';
        junk.push_back(c);
      }
      return junk + "\r\n";
    }
  }
}

struct NmeaCorpus {
  std::string bytes;
  int intact = 0;
  int corrupted = 0;
};

NmeaCorpus build_corpus(DeterministicRandom& rng, int sentences) {
  NmeaCorpus corpus;
  for (int i = 0; i < sentences; ++i) {
    corpus.bytes += intact_rmc(i);
    ++corpus.intact;
    const int bad = static_cast<int>(rng.uniform(3));
    for (int j = 0; j < bad; ++j) {
      corpus.bytes += corrupt_nmea(intact_rmc(i), rng);
      ++corpus.corrupted;
    }
  }
  return corpus;
}

/// Feed `bytes` to `driver` in seeded chunks of 1..`max_chunk` bytes,
/// exercising sentence reassembly across arbitrary split frames.
void feed_chunked(gps::GpsDriver& driver, const std::string& bytes,
                  DeterministicRandom& rng, std::size_t max_chunk,
                  const std::function<void()>& after_chunk = {}) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n =
        std::min(bytes.size() - pos, 1 + rng.uniform(max_chunk));
    driver.feed_bytes(std::string_view(bytes).substr(pos, n));
    pos += n;
    if (after_chunk) after_chunk();
  }
}

TEST_P(FuzzSeed, GpsDriverRejectsEveryCorruptedSentence) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 211 + 19);
  const NmeaCorpus corpus = build_corpus(rng, 40);

  gps::GpsDriver driver;
  feed_chunked(driver, corpus.bytes, rng, 16);

  // Every intact sentence produced exactly one fresh fix; every corrupted
  // one was counted and dropped, never parsed into a fix.
  EXPECT_EQ(driver.sequence(), static_cast<std::uint64_t>(corpus.intact));
  EXPECT_EQ(driver.accepted_sentences(),
            static_cast<std::uint64_t>(corpus.intact));
  EXPECT_EQ(driver.rejected_sentences(),
            static_cast<std::uint64_t>(corpus.corrupted));

  const auto fix = driver.get_gps();
  ASSERT_TRUE(fix.has_value());
  EXPECT_TRUE(fix->valid);
  // Latest fix is the last intact sentence, unperturbed by the corruption
  // interleaved around it.
  EXPECT_NEAR(fix->position.lat_deg, 48.0 + (7.0380 + 0.01 * 39) / 60.0, 1e-9);
  EXPECT_NEAR(fix->position.lon_deg, 11.0 + 31.0 / 60.0, 1e-9);
}

TEST_P(FuzzSeed, ChunkedDeliveryMatchesWholeStreamDelivery) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 233 + 7);
  const NmeaCorpus corpus = build_corpus(rng, 30);

  gps::GpsDriver whole;
  whole.feed_bytes(corpus.bytes);

  gps::GpsDriver chunked;  // byte-at-a-time worst case included
  feed_chunked(chunked, corpus.bytes, rng, 1 + rng.uniform(5));

  EXPECT_EQ(whole.sequence(), chunked.sequence());
  EXPECT_EQ(whole.accepted_sentences(), chunked.accepted_sentences());
  EXPECT_EQ(whole.rejected_sentences(), chunked.rejected_sentences());
  ASSERT_TRUE(whole.get_gps() && chunked.get_gps());
  EXPECT_EQ(whole.get_gps()->unix_time, chunked.get_gps()->unix_time);
}

TEST_P(FuzzSeed, CorruptedNmeaNeverReachesTheSampler) {
  DeterministicRandom rng(static_cast<std::uint64_t>(GetParam()) * 257 + 3);
  const NmeaCorpus corpus = build_corpus(rng, 40);

  // The full normal-world path: driver reassembles the noisy byte stream,
  // the adaptive sampler sees only parsed fixes.
  const geo::LocalFrame frame(geo::GeoPoint{48.1173, 11.5167});
  const std::vector<geo::Circle> zones{
      {frame.to_local(geo::GeoPoint{48.1180, 11.5167}), 30.0}};
  core::AdaptiveSampler policy(frame, zones, geo::kFaaMaxSpeedMps, 1.0);

  gps::GpsDriver driver;
  int decisions = 0;
  feed_chunked(driver, corpus.bytes, rng, 16, [&] {
    for (const gps::GpsFix& fix : driver.take_pending()) {
      ++decisions;
      // No fabricated fix: everything the sampler sees lies on the track
      // the intact sentences describe.
      EXPECT_TRUE(fix.valid);
      EXPECT_NEAR(fix.position.lon_deg, 11.0 + 31.0 / 60.0, 1e-9);
      EXPECT_GE(fix.position.lat_deg, 48.0 + 7.0380 / 60.0 - 1e-9);
      if (policy.should_authenticate(fix)) policy.on_recorded(fix);
    }
  });
  EXPECT_EQ(decisions, corpus.intact);
  EXPECT_EQ(driver.dropped_fixes(), 0u);  // the loop drains every chunk
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(1, 9));

}  // namespace
}  // namespace alidrone
