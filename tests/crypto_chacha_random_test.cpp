#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "crypto/chacha20.h"
#include "crypto/random.h"

namespace alidrone::crypto {
namespace {

// RFC 8439 section 2.3.2: ChaCha20 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  Bytes key(32);
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000090000004a00000000");
  const ChaCha20 cipher(key, nonce);
  const auto block = cipher.block(1);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(block.data(), 16)),
            "10f1e7e4d13b5915500fdd1fa32071c4");
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(block.data() + 48, 16)),
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2: encryption test vector.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  Bytes key(32);
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const Bytes ct = ChaCha20::crypt(key, nonce, to_bytes(plaintext), 1);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct.data(), 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  EXPECT_EQ(ct.size(), plaintext.size());
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes nonce(12, 0x07);
  const Bytes msg = to_bytes("PoA sample: lat=40.1164 lon=-88.2434 t=123.4");
  const Bytes ct = ChaCha20::crypt(key, nonce, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(ChaCha20::crypt(key, nonce, ct), msg);
}

TEST(ChaCha20, DifferentNoncesProduceDifferentStreams) {
  const Bytes key(32, 0x42);
  Bytes n1(12, 0);
  Bytes n2(12, 0);
  n2[11] = 1;
  const Bytes msg(64, 0);
  EXPECT_NE(ChaCha20::crypt(key, n1, msg), ChaCha20::crypt(key, n2, msg));
}

TEST(ChaCha20, RejectsBadKeyAndNonceSizes) {
  const Bytes short_key(16, 0);
  const Bytes key(32, 0);
  const Bytes nonce(12, 0);
  const Bytes short_nonce(8, 0);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

TEST(ChaCha20, StreamingMatchesOneShotAcrossBlockBoundaries) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  Bytes msg(200);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);

  const Bytes one_shot = ChaCha20::crypt(key, nonce, msg);

  Bytes streamed = msg;
  ChaCha20 cipher(key, nonce);
  cipher.apply(std::span<std::uint8_t>(streamed.data(), 13));
  cipher.apply(std::span<std::uint8_t>(streamed.data() + 13, 100));
  cipher.apply(std::span<std::uint8_t>(streamed.data() + 113, 87));
  EXPECT_EQ(streamed, one_shot);
}

TEST(DeterministicRandom, SameSeedSameStream) {
  DeterministicRandom a(12345);
  DeterministicRandom b(12345);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(DeterministicRandom, DifferentSeedsDifferentStreams) {
  DeterministicRandom a(1);
  DeterministicRandom b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(DeterministicRandom, StringSeed) {
  DeterministicRandom a("alidrone-test");
  DeterministicRandom b("alidrone-test");
  DeterministicRandom c("other");
  EXPECT_EQ(a.bytes(16), b.bytes(16));
  EXPECT_NE(a.bytes(16), c.bytes(16));
}

TEST(RandomSource, UniformRespectsBound) {
  DeterministicRandom rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(RandomSource, UniformHitsAllResidues) {
  DeterministicRandom rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomSource, UniformDoubleInUnitInterval) {
  DeterministicRandom rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomSource, RandomBitsHasExactBitLength) {
  DeterministicRandom rng(5);
  for (const std::size_t bits : {8u, 9u, 32u, 33u, 256u, 1024u}) {
    EXPECT_EQ(rng.random_bits(bits).bit_length(), bits);
  }
  EXPECT_TRUE(rng.random_bits(0).is_zero());
}

TEST(RandomSource, RandomRangeInclusive) {
  DeterministicRandom rng(8);
  const BigInt lo(100);
  const BigInt hi(110);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    const BigInt v = rng.random_range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    seen.insert(v.to_decimal_string());
  }
  EXPECT_EQ(seen.size(), 11u);  // all values reachable
  EXPECT_THROW(rng.random_range(hi, lo), std::invalid_argument);
}

TEST(SecureRandom, ProducesNonConstantOutput) {
  SecureRandom rng;
  const Bytes a = rng.bytes(32);
  const Bytes b = rng.bytes(32);
  EXPECT_NE(a, b);  // 2^-256 false-failure probability
}

}  // namespace
}  // namespace alidrone::crypto
