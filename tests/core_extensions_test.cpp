// End-to-end tests of the Section VII extensions wired through the full
// protocol: HMAC-session and batch-signature PoA modes (VII-A1), 3D
// cylinder zones (VII-B1) and file-backed PoA retention.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/poa_store.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

class ExtensionFixture : public ::testing::Test {
 protected:
  ExtensionFixture()
      : auditor_rng_("ext-auditor"),
        owner_rng_("ext-owner"),
        operator_rng_("ext-operator"),
        auditor_(kTestKeyBits, auditor_rng_),
        owner_(kTestKeyBits, owner_rng_),
        tee_(make_tee_config()),
        client_(tee_, kTestKeyBits, operator_rng_),
        scenario_(sim::make_airport_scenario(kT0)) {
    auditor_.bind(bus_);
    EXPECT_TRUE(client_.register_with_auditor(bus_));
    owner_.register_zone(bus_, scenario_.zones[0], "airport");
  }

  static tee::DroneTee::Config make_tee_config() {
    tee::DroneTee::Config config;
    config.key_bits = kTestKeyBits;
    config.manufacturing_seed = "extension-test-device";
    return config;
  }

  ProofOfAlibi fly_with_mode(AuthMode mode) {
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = 5.0;
    rc.start_time = scenario_.route.start_time();
    gps::GpsReceiverSim receiver(rc, scenario_.route.as_position_source());

    AdaptiveSampler policy(scenario_.frame, scenario_.local_zones(),
                           geo::kFaaMaxSpeedMps, 5.0);
    FlightConfig config;
    config.end_time = scenario_.route.start_time() + 120.0;
    config.frame = scenario_.frame;
    config.local_zones = scenario_.local_zones();
    config.auth_mode = mode;
    config.auditor_encryption_key = auditor_.encryption_key();
    return client_.fly(receiver, policy, config);
  }

  crypto::DeterministicRandom auditor_rng_;
  crypto::DeterministicRandom owner_rng_;
  crypto::DeterministicRandom operator_rng_;
  net::MessageBus bus_;
  Auditor auditor_;
  ZoneOwner owner_;
  tee::DroneTee tee_;
  DroneClient client_;
  sim::Scenario scenario_;
};

// ---- Section VII-A1a: HMAC session mode ----

TEST_F(ExtensionFixture, HmacSessionPoaVerifiesEndToEnd) {
  const ProofOfAlibi poa = fly_with_mode(AuthMode::kHmacSession);
  ASSERT_GT(poa.samples.size(), 0u);
  EXPECT_FALSE(poa.session_key_ciphertext.empty());
  EXPECT_FALSE(poa.session_key_signature.empty());
  EXPECT_EQ(poa.samples[0].signature.size(), 32u);  // HMAC-SHA256 tag

  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 200);
  EXPECT_TRUE(verdict.accepted) << verdict.detail;
  EXPECT_TRUE(verdict.compliant);
}

TEST_F(ExtensionFixture, HmacSessionTamperedTagRejected) {
  ProofOfAlibi poa = fly_with_mode(AuthMode::kHmacSession);
  poa.samples[0].signature[5] ^= 0x01;
  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 200);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_NE(verdict.detail.find("MAC invalid"), std::string::npos);
}

TEST_F(ExtensionFixture, HmacSessionForgedKeyBlobRejected) {
  ProofOfAlibi poa = fly_with_mode(AuthMode::kHmacSession);
  poa.session_key_ciphertext[3] ^= 0x01;  // breaks the TEE's signature
  EXPECT_FALSE(auditor_.verify_poa(poa, kT0 + 200).accepted);
}

TEST_F(ExtensionFixture, HmacModeWithoutAuditorKeyThrows) {
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, scenario_.route.as_position_source());
  AdaptiveSampler policy(scenario_.frame, {}, geo::kFaaMaxSpeedMps, 5.0);
  FlightConfig config;
  config.end_time = kT0 + 1.0;
  config.auth_mode = AuthMode::kHmacSession;  // no auditor key set
  EXPECT_THROW(run_flight(tee_, receiver, policy, config), std::invalid_argument);
}

// ---- Section VII-A1b: batch signature mode ----

TEST_F(ExtensionFixture, BatchPoaVerifiesEndToEnd) {
  const ProofOfAlibi poa = fly_with_mode(AuthMode::kBatchSignature);
  ASSERT_GT(poa.samples.size(), 0u);
  EXPECT_FALSE(poa.batch_signature.empty());
  EXPECT_TRUE(poa.samples[0].signature.empty());  // no per-sample sigs

  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 200);
  EXPECT_TRUE(verdict.accepted) << verdict.detail;
  EXPECT_TRUE(verdict.compliant);
}

TEST_F(ExtensionFixture, BatchTamperedSampleRejected) {
  ProofOfAlibi poa = fly_with_mode(AuthMode::kBatchSignature);
  // Note samples are encrypted; flipping ciphertext breaks decryption or
  // the batch signature over the decrypted concatenation.
  poa.samples[1].sample[7] ^= 0x01;
  EXPECT_FALSE(auditor_.verify_poa(poa, kT0 + 200).accepted);
}

TEST_F(ExtensionFixture, BatchDroppedSampleBreaksBatchSignature) {
  // Unlike per-sample mode, dropping any sample invalidates the whole
  // batch signature — a side benefit of VII-A1b.
  ProofOfAlibi poa = fly_with_mode(AuthMode::kBatchSignature);
  ASSERT_GT(poa.samples.size(), 2u);
  poa.samples.erase(poa.samples.begin() + 1);
  EXPECT_FALSE(auditor_.verify_poa(poa, kT0 + 200).accepted);
}

// ---- Section VII-B1: cylinder zones through the Auditor ----

TEST_F(ExtensionFixture, OverflightAboveCylinderCeilingIsCompliant) {
  // Register a cylinder zone (ceiling 60 m) directly on the flight path.
  const geo::Vec2 mid = scenario_.route.local_position_at(kT0 + 60.0);
  RegisterZoneRequest request = owner_.make_zone_request(
      {scenario_.frame.to_geo(mid), 30.0}, "low cylinder");
  const RegisterZoneResponse created = auditor_.register_zone_3d(request, 60.0);
  ASSERT_TRUE(created.ok);

  // Hand-build a PoA whose samples carry 300 m altitude over that spot.
  // (Samples must be TEE-signed, so fly a receiver that reports altitude.)
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario_.route.start_time();
  rc.emit_gga = true;
  const sim::Route& route = scenario_.route;
  gps::GpsReceiverSim receiver(rc, [&route](double t) {
    gps::GpsFix f = route.state_at(t);
    f.altitude_m = 300.0;
    return f;
  });
  FixedRateSampler policy(5.0, scenario_.route.start_time());
  FlightConfig config;
  config.end_time = scenario_.route.start_time() + 120.0;
  config.frame = scenario_.frame;
  const ProofOfAlibi poa = client_.fly(receiver, policy, config);

  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 200);
  EXPECT_TRUE(verdict.accepted) << verdict.detail;
  EXPECT_TRUE(verdict.compliant) << "altitude should clear the cylinder";
}

TEST_F(ExtensionFixture, LowFlightThroughCylinderIsViolation) {
  const geo::Vec2 mid = scenario_.route.local_position_at(kT0 + 60.0);
  RegisterZoneRequest request = owner_.make_zone_request(
      {scenario_.frame.to_geo(mid), 30.0}, "low cylinder");
  ASSERT_TRUE(auditor_.register_zone_3d(request, 60.0).ok);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario_.route.start_time();
  rc.emit_gga = true;
  const sim::Route& route = scenario_.route;
  gps::GpsReceiverSim receiver(rc, [&route](double t) {
    gps::GpsFix f = route.state_at(t);
    f.altitude_m = 20.0;  // under the 60 m ceiling
    return f;
  });
  FixedRateSampler policy(5.0, scenario_.route.start_time());
  FlightConfig config;
  config.end_time = scenario_.route.start_time() + 120.0;
  config.frame = scenario_.frame;
  const ProofOfAlibi poa = client_.fly(receiver, policy, config);

  const PoaVerdict verdict = auditor_.verify_poa(poa, kT0 + 200);
  EXPECT_TRUE(verdict.accepted);
  EXPECT_FALSE(verdict.compliant);
}

TEST_F(ExtensionFixture, Register3dRejectsNonPositiveCeiling) {
  RegisterZoneRequest request =
      owner_.make_zone_request({{40.1, -88.2}, 30.0}, "bad");
  EXPECT_FALSE(auditor_.register_zone_3d(request, 0.0).ok);
  EXPECT_FALSE(auditor_.register_zone_3d(request, -5.0).ok);
}

// ---- File-backed PoA retention ----

class PoaStoreTest : public ExtensionFixture {
 protected:
  PoaStoreTest()
      : dir_(std::filesystem::temp_directory_path() /
             ("alidrone_poa_store_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir_);
  }
  ~PoaStoreTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PoaStoreTest, SaveLoadRoundTrip) {
  PoaStore store(dir_);
  const ProofOfAlibi poa = fly_with_mode(AuthMode::kRsaPerSample);
  store.save(client_.id(), kT0 + 200, poa);
  store.save(client_.id(), kT0 + 400, poa);
  EXPECT_EQ(store.count(), 2u);

  const auto loaded = store.load_all();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].drone_id, client_.id());
  EXPECT_DOUBLE_EQ(loaded[0].submission_time, kT0 + 200);
  EXPECT_EQ(loaded[0].poa.samples.size(), poa.samples.size());
  EXPECT_EQ(loaded[0].poa.samples[0].sample, poa.samples[0].sample);

  // Loaded PoAs still verify at the Auditor.
  EXPECT_TRUE(auditor_.verify_poa(loaded[0].poa, kT0 + 500).accepted);
}

TEST_F(PoaStoreTest, PersistsAcrossReopen) {
  {
    PoaStore store(dir_);
    store.save(client_.id(), kT0 + 200, fly_with_mode(AuthMode::kRsaPerSample));
  }
  PoaStore reopened(dir_);
  EXPECT_EQ(reopened.count(), 1u);
  EXPECT_EQ(reopened.load_for_drone(client_.id()).size(), 1u);
  EXPECT_TRUE(reopened.load_for_drone("drone-unknown").empty());
  // New saves continue the sequence without clobbering old files.
  reopened.save(client_.id(), kT0 + 600, fly_with_mode(AuthMode::kRsaPerSample));
  EXPECT_EQ(reopened.count(), 2u);
}

TEST_F(PoaStoreTest, ExpireBeforeDeletesOldSubmissions) {
  PoaStore store(dir_);
  const ProofOfAlibi poa = fly_with_mode(AuthMode::kRsaPerSample);
  store.save(client_.id(), kT0 + 100, poa);
  store.save(client_.id(), kT0 + 5000, poa);
  EXPECT_EQ(store.expire_before(kT0 + 1000), 1u);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_DOUBLE_EQ(store.load_all()[0].submission_time, kT0 + 5000);
}

TEST_F(PoaStoreTest, CorruptFilesSkippedNotFatal) {
  PoaStore store(dir_);
  store.save(client_.id(), kT0 + 100, fly_with_mode(AuthMode::kRsaPerSample));
  {
    std::ofstream bad(dir_ / "poa-999.poa", std::ios::binary);
    bad << "not a poa file";
  }
  const auto loaded = store.load_all();
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_GE(store.corrupt_files_seen(), 1u);
}

TEST(PoaStoreStandalone, RejectsFileAsDirectory) {
  const auto path = std::filesystem::temp_directory_path() / "alidrone_not_a_dir";
  {
    std::ofstream f(path);
    f << "x";
  }
  EXPECT_THROW(PoaStore{path}, std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace alidrone::core
