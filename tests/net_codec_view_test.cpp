// Zero-copy codec equivalence: bytes_view()/str_view() must agree with
// the owning bytes()/str() accessors on every frame — same values, same
// strict end-of-frame and trailing-garbage errors — and views must borrow
// the frame's storage (no copies). Also covers Writer::reserve() +
// encoded_size_hint() no-reallocation guarantees and BufferPool reuse.
// Run under ALIDRONE_SANITIZE=address,undefined: the lifetime tests make
// a dangling-view bug an ASan failure, not a flake.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/messages.h"
#include "core/poa.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/geopoint.h"
#include "net/buffer_pool.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "tee/sample_codec.h"

namespace alidrone {
namespace {

using crypto::Bytes;
using crypto::DeterministicRandom;
using core::AuthMode;
using core::PoaVerdict;
using core::PoaView;
using core::ProofOfAlibi;
using core::RegisterDroneRequest;
using core::SignedSample;
using core::SubmitPoaRequest;

// ---- fuzz: view vs owning accessors on random frames -------------------

// A random well-formed frame: a sequence of (tag, field) pairs we can
// re-read in order with either accessor family.
struct RandomFrame {
  std::vector<int> tags;  // 0=u8 1=u32 2=u64 3=f64 4=bytes 5=str
  Bytes encoded;
};

RandomFrame make_frame(DeterministicRandom& rng) {
  RandomFrame frame;
  net::Writer w;
  const std::size_t fields = rng.uniform(12);
  for (std::size_t i = 0; i < fields; ++i) {
    const int tag = static_cast<int>(rng.uniform(6));
    frame.tags.push_back(tag);
    switch (tag) {
      case 0: w.u8(static_cast<std::uint8_t>(rng.uniform(256))); break;
      case 1: w.u32(static_cast<std::uint32_t>(rng.uniform(1u << 30))); break;
      case 2: w.u64(rng.uniform(1u << 30)); break;
      case 3: w.f64(static_cast<double>(rng.uniform(1u << 20)) * 0.125); break;
      case 4: w.bytes(rng.bytes(rng.uniform(64))); break;
      case 5: {
        const Bytes raw = rng.bytes(rng.uniform(48));
        w.str(std::string(raw.begin(), raw.end()));
        break;
      }
    }
  }
  frame.encoded = std::move(w).take();
  return frame;
}

/// Read the tagged fields from `data` with both accessor families in
/// lock-step; every field must agree on success/failure and value, and
/// both readers must agree on at_end() afterwards.
void expect_readers_agree(const std::vector<int>& tags,
                          std::span<const std::uint8_t> data) {
  net::Reader owning(data);
  net::Reader viewing(data);
  for (const int tag : tags) {
    switch (tag) {
      case 0: EXPECT_EQ(owning.u8(), viewing.u8()); break;
      case 1: EXPECT_EQ(owning.u32(), viewing.u32()); break;
      case 2: EXPECT_EQ(owning.u64(), viewing.u64()); break;
      case 3: EXPECT_EQ(owning.f64(), viewing.f64()); break;
      case 4: {
        const auto copy = owning.bytes();
        const auto view = viewing.bytes_view();
        ASSERT_EQ(copy.has_value(), view.has_value());
        if (copy) EXPECT_EQ(*copy, Bytes(view->begin(), view->end()));
        break;
      }
      case 5: {
        const auto copy = owning.str();
        const auto view = viewing.str_view();
        ASSERT_EQ(copy.has_value(), view.has_value());
        if (copy) EXPECT_EQ(*copy, std::string(*view));
        break;
      }
    }
    EXPECT_EQ(owning.remaining(), viewing.remaining());
  }
  EXPECT_EQ(owning.at_end(), viewing.at_end());
}

TEST(CodecView, FuzzViewsMatchOwningAccessors) {
  DeterministicRandom rng(std::string_view("codec-view-fuzz"));
  for (int round = 0; round < 400; ++round) {
    const RandomFrame frame = make_frame(rng);
    expect_readers_agree(frame.tags, frame.encoded);

    // Truncation at every prefix must fail identically for both families.
    if (!frame.encoded.empty()) {
      const std::size_t cut = rng.uniform(frame.encoded.size());
      expect_readers_agree(
          frame.tags, std::span<const std::uint8_t>(frame.encoded.data(), cut));
    }

    // Trailing garbage: both readers see it as !at_end().
    Bytes padded = frame.encoded;
    const Bytes junk = rng.bytes(1 + rng.uniform(8));
    padded.insert(padded.end(), junk.begin(), junk.end());
    expect_readers_agree(frame.tags, padded);
  }
}

TEST(CodecView, ViewsBorrowTheFrame) {
  net::Writer w;
  w.bytes(Bytes{1, 2, 3, 4});
  w.str("alibi");
  const Bytes frame = std::move(w).take();

  net::Reader r(frame);
  const auto bytes = r.bytes_view();
  const auto str = r.str_view();
  ASSERT_TRUE(bytes && str && r.at_end());

  // Zero-copy means the views point into the frame's own storage.
  const auto* begin = frame.data();
  const auto* end = frame.data() + frame.size();
  EXPECT_GE(bytes->data(), begin);
  EXPECT_LE(bytes->data() + bytes->size(), end);
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(str->data()), begin);
  EXPECT_LE(reinterpret_cast<const std::uint8_t*>(str->data()) + str->size(), end);
}

// ASan-relevant lifetime shape: views parsed from a frame stay valid for
// exactly as long as the frame does, including across container moves of
// other data. (A use-after-free here is what ALIDRONE_SANITIZE=address
// exists to catch.)
TEST(CodecView, ViewsSurviveUnrelatedAllocations) {
  net::Writer w;
  w.str("drone-42");
  w.bytes(Bytes(256, 0xAB));
  const Bytes frame = std::move(w).take();

  net::Reader r(frame);
  const auto id = r.str_view();
  const auto blob = r.bytes_view();
  ASSERT_TRUE(id && blob);

  // Churn the heap; the frame is untouched so the views must still read.
  std::vector<Bytes> churn;
  for (int i = 0; i < 64; ++i) churn.emplace_back(1024, static_cast<std::uint8_t>(i));
  churn.clear();

  EXPECT_EQ(*id, "drone-42");
  EXPECT_EQ(blob->size(), 256u);
  EXPECT_EQ((*blob)[0], 0xAB);
}

// ---- PoaView vs ProofOfAlibi::parse ------------------------------------

ProofOfAlibi make_poa(DeterministicRandom& rng, const crypto::RsaKeyPair& keys) {
  ProofOfAlibi poa;
  poa.drone_id = "drone-7";
  poa.mode = AuthMode::kRsaPerSample;
  poa.hash = crypto::HashAlgorithm::kSha1;
  const std::size_t n = 1 + rng.uniform(4);
  for (std::size_t s = 0; s < n; ++s) {
    gps::GpsFix fix;
    fix.position = geo::GeoPoint{40.0, -88.0 + 0.001 * static_cast<double>(s)};
    fix.unix_time = 1528400000.0 + static_cast<double>(s);
    SignedSample sample;
    sample.sample = tee::encode_sample(fix);
    sample.signature = crypto::rsa_sign(keys.priv, sample.sample, poa.hash);
    poa.samples.push_back(std::move(sample));
  }
  return poa;
}

TEST(CodecView, PoaViewMatchesOwningParseOnMutatedBytes) {
  DeterministicRandom rng(std::string_view("poa-view-fuzz"));
  DeterministicRandom key_rng(std::string_view("poa-view-keys"));
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(512, key_rng);

  for (int round = 0; round < 200; ++round) {
    Bytes encoded = make_poa(rng, keys).serialize();
    if (round % 2 == 1) {  // half the rounds parse hostile mutations
      switch (rng.uniform(3)) {
        case 0:
          encoded[rng.uniform(encoded.size())] ^=
              static_cast<std::uint8_t>(1u << rng.uniform(8));
          break;
        case 1:
          encoded.resize(rng.uniform(encoded.size()));
          break;
        default: {
          const Bytes junk = rng.bytes(1 + rng.uniform(8));
          encoded.insert(encoded.end(), junk.begin(), junk.end());
          break;
        }
      }
    }

    const auto owned = ProofOfAlibi::parse(encoded);
    PoaView view;
    const bool viewed = PoaView::parse_into(encoded, view);
    ASSERT_EQ(owned.has_value(), viewed) << "round " << round;
    if (owned) {
      // Materializing the view must reproduce the owning parse exactly.
      EXPECT_EQ(view.materialize().serialize(), owned->serialize());
    }
  }
}

// ---- Writer::reserve + encoded_size_hint -------------------------------

TEST(CodecView, ReserveFromHintEncodesWithoutReallocation) {
  // A max-size submission: full PoA with batch signature and session-key
  // material, the largest frame the protocol produces.
  DeterministicRandom key_rng(std::string_view("reserve-keys"));
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(512, key_rng);
  DeterministicRandom rng(std::string_view("reserve-poa"));
  ProofOfAlibi poa = make_poa(rng, keys);
  poa.batch_signature = rng.bytes(64);
  poa.session_key_ciphertext = rng.bytes(64);
  poa.session_key_signature = rng.bytes(64);

  SubmitPoaRequest request;
  request.poa = poa.serialize();
  EXPECT_EQ(poa.serialize().size(), poa.encoded_size());

  net::Writer w;
  w.reserve(request.encoded_size_hint());
  const auto* before = w.data().data();
  const std::size_t reserved = w.capacity();

  // Re-encode through the same field sequence the struct uses.
  const Bytes encoded = request.encode();
  w.bytes(request.poa);
  EXPECT_EQ(w.size(), encoded.size());
  EXPECT_EQ(w.size(), request.encoded_size_hint());  // hint is exact
  EXPECT_EQ(w.capacity(), reserved);                 // no growth
  EXPECT_EQ(w.data().data(), before);                // no reallocation
}

TEST(CodecView, SizeHintsAreExactForProtocolMessages) {
  DeterministicRandom key_rng(std::string_view("hint-keys"));
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(512, key_rng);
  DeterministicRandom rng(std::string_view("hint-poa"));

  SubmitPoaRequest submit;
  submit.poa = make_poa(rng, keys).serialize();
  EXPECT_EQ(submit.encode().size(), submit.encoded_size_hint());

  PoaVerdict verdict;
  verdict.accepted = true;
  verdict.detail = "compliant";
  EXPECT_EQ(verdict.encode().size(), verdict.encoded_size_hint());

  RegisterDroneRequest reg;
  reg.operator_key_n = keys.pub.n.to_bytes();
  reg.operator_key_e = keys.pub.e.to_bytes();
  reg.tee_key_n = keys.pub.n.to_bytes();
  reg.tee_key_e = keys.pub.e.to_bytes();
  EXPECT_EQ(reg.encode().size(), reg.encoded_size_hint());
}

// ---- BufferPool ---------------------------------------------------------

TEST(CodecView, BufferPoolRecyclesCapacity) {
  net::BufferPool pool(2);

  Bytes a = pool.acquire();
  a.resize(512);
  const auto* storage = a.data();
  pool.release(std::move(a));

  Bytes b = pool.acquire();
  EXPECT_TRUE(b.empty());            // cleared...
  EXPECT_GE(b.capacity(), 512u);     // ...but capacity retained
  EXPECT_EQ(b.data(), storage);      // same allocation back
  pool.release(std::move(b));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.releases, 2u);
  EXPECT_EQ(stats.pooled, 1u);
}

TEST(CodecView, BufferPoolBoundsResidency) {
  net::BufferPool pool(1);
  Bytes a = pool.acquire();
  Bytes b = pool.acquire();
  pool.release(std::move(a));
  pool.release(std::move(b));  // pool full -> discarded
  const auto stats = pool.stats();
  EXPECT_EQ(stats.pooled, 1u);
  EXPECT_EQ(stats.discards, 1u);
}

TEST(CodecView, PooledWriterReturnsBufferOnDestruction) {
  net::BufferPool pool(4);
  {
    net::Writer w(pool);
    w.str("scratch");
  }  // not taken -> returned to the pool
  EXPECT_EQ(pool.stats().releases, 1u);

  {
    net::Writer w(pool);
    w.str("kept");
    const Bytes frame = std::move(w).take();
    EXPECT_FALSE(frame.empty());
  }  // taken -> the writer must NOT release it
  EXPECT_EQ(pool.stats().releases, 1u);
}

// ---- retry-later sentinel ----------------------------------------------

TEST(CodecView, RetryLaterSentinelNeverParsesAsProtocolMessage) {
  const Bytes& sentinel = net::retry_later_reply();
  EXPECT_TRUE(net::is_retry_later(sentinel));
  EXPECT_FALSE(net::is_retry_later(Bytes{}));
  EXPECT_FALSE(net::is_retry_later(PoaVerdict{}.encode()));
  // No verdict decode can mistake backpressure for a verdict.
  EXPECT_FALSE(PoaVerdict::decode(sentinel).has_value());
}

}  // namespace
}  // namespace alidrone
