// Encode/decode round trips for every protocol message, including edge
// values (empty strings, negative coordinates, zero-length buffers).
#include <gtest/gtest.h>

#include "core/messages.h"
#include "crypto/random.h"

namespace alidrone::core {
namespace {

TEST(Messages, RegisterDroneRoundTrip) {
  RegisterDroneRequest request;
  request.operator_key_n = {0x01, 0x02, 0x03};
  request.operator_key_e = {0x01, 0x00, 0x01};
  request.tee_key_n = {0xFF};
  request.tee_key_e = {};

  const auto decoded = RegisterDroneRequest::decode(request.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->operator_key_n, request.operator_key_n);
  EXPECT_EQ(decoded->tee_key_e, request.tee_key_e);
  EXPECT_EQ(decoded->operator_key().e, crypto::BigInt(65537));

  RegisterDroneResponse response{true, "drone-42"};
  const auto decoded_response = RegisterDroneResponse::decode(response.encode());
  ASSERT_TRUE(decoded_response.has_value());
  EXPECT_TRUE(decoded_response->ok);
  EXPECT_EQ(decoded_response->drone_id, "drone-42");
}

TEST(Messages, RegisterZoneRoundTripWithNegativeCoordinates) {
  RegisterZoneRequest request;
  request.zone = {{-33.8688, -151.2093}, 123.456};
  request.description = "southern hemisphere lot";
  request.owner_key_n = {0xAA, 0xBB};
  request.owner_key_e = {0x03};
  request.proof_signature = {0x10, 0x20, 0x30};

  const auto decoded = RegisterZoneRequest::decode(request.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->zone.center.lat_deg, -33.8688);
  EXPECT_DOUBLE_EQ(decoded->zone.center.lon_deg, -151.2093);
  EXPECT_DOUBLE_EQ(decoded->zone.radius_m, 123.456);
  EXPECT_EQ(decoded->description, request.description);
  // The signed payload is identical for the original and the decoded copy.
  EXPECT_EQ(decoded->signed_payload(), request.signed_payload());
}

TEST(Messages, ZoneQueryRoundTrip) {
  ZoneQueryRequest request;
  request.drone_id = "drone-1";
  request.rect = {{40.0, -89.0}, {41.0, -88.0}};
  request.nonce = crypto::Bytes(16, 0x5A);
  request.nonce_signature = crypto::Bytes(64, 0xC3);

  const auto decoded = ZoneQueryRequest::decode(request.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->drone_id, "drone-1");
  EXPECT_DOUBLE_EQ(decoded->rect.corner2.lat_deg, 41.0);
  EXPECT_EQ(decoded->nonce, request.nonce);
}

TEST(Messages, ZoneQueryResponseRoundTripEmptyAndFull) {
  ZoneQueryResponse empty{true, "", {}};
  const auto decoded_empty = ZoneQueryResponse::decode(empty.encode());
  ASSERT_TRUE(decoded_empty.has_value());
  EXPECT_TRUE(decoded_empty->ok);
  EXPECT_TRUE(decoded_empty->zones.empty());

  ZoneQueryResponse full;
  full.ok = true;
  for (int i = 0; i < 20; ++i) {
    full.zones.push_back(
        {"zone-" + std::to_string(i), {{40.0 + i, -88.0 - i}, i * 10.0}});
  }
  const auto decoded = ZoneQueryResponse::decode(full.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->zones.size(), 20u);
  EXPECT_EQ(decoded->zones[7].id, "zone-7");
  EXPECT_DOUBLE_EQ(decoded->zones[7].zone.radius_m, 70.0);

  ZoneQueryResponse error{false, "replayed nonce", {}};
  const auto decoded_error = ZoneQueryResponse::decode(error.encode());
  ASSERT_TRUE(decoded_error.has_value());
  EXPECT_FALSE(decoded_error->ok);
  EXPECT_EQ(decoded_error->error, "replayed nonce");
}

TEST(Messages, PoaVerdictRoundTrip) {
  PoaVerdict verdict{true, false, 17, "insufficient alibi"};
  const auto decoded = PoaVerdict::decode(verdict.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->accepted);
  EXPECT_FALSE(decoded->compliant);
  EXPECT_EQ(decoded->violation_count, 17u);
  EXPECT_EQ(decoded->detail, "insufficient alibi");
}

TEST(Messages, AccusationRoundTrip) {
  AccusationRequest request;
  request.zone_id = "zone-9";
  request.drone_id = "drone-3";
  request.incident_time = 1528400123.456;
  request.owner_signature = crypto::Bytes(64, 0x77);

  const auto decoded = AccusationRequest::decode(request.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->zone_id, "zone-9");
  EXPECT_DOUBLE_EQ(decoded->incident_time, 1528400123.456);
  EXPECT_EQ(decoded->signed_payload(), request.signed_payload());

  AccusationResponse response{true, true, "alibi holds"};
  const auto decoded_response = AccusationResponse::decode(response.encode());
  ASSERT_TRUE(decoded_response.has_value());
  EXPECT_TRUE(decoded_response->alibi_holds);
}

TEST(Messages, DecodersRejectTruncation) {
  RegisterZoneRequest zone;
  zone.zone = {{40.0, -88.0}, 10.0};
  zone.owner_key_n = {1};
  zone.owner_key_e = {1};
  const crypto::Bytes full = zone.encode();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const crypto::Bytes truncated(full.begin(),
                                  full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(RegisterZoneRequest::decode(truncated).has_value()) << cut;
  }
}

TEST(Messages, DecodersRejectTrailingBytes) {
  ZoneQueryRequest query;
  query.drone_id = "d";
  query.nonce = {1, 2};
  query.nonce_signature = {3};
  crypto::Bytes bytes = query.encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(ZoneQueryRequest::decode(bytes).has_value());

  PoaVerdict verdict;
  bytes = verdict.encode();
  bytes.push_back(0xFF);
  EXPECT_FALSE(PoaVerdict::decode(bytes).has_value());
}

TEST(Messages, PolygonPayloadDeterministic) {
  const std::vector<geo::GeoPoint> vertices{
      {40.0, -88.0}, {40.1, -88.0}, {40.05, -88.1}};
  EXPECT_EQ(polygon_zone_payload(vertices, "lot"),
            polygon_zone_payload(vertices, "lot"));
  EXPECT_NE(polygon_zone_payload(vertices, "lot"),
            polygon_zone_payload(vertices, "other"));
  std::vector<geo::GeoPoint> reordered{vertices[1], vertices[0], vertices[2]};
  EXPECT_NE(polygon_zone_payload(vertices, "lot"),
            polygon_zone_payload(reordered, "lot"));
}

TEST(Messages, QueryRectContainsIsOrientationAgnostic) {
  // Corners may come in any order.
  const QueryRect a{{40.0, -89.0}, {41.0, -88.0}};
  const QueryRect b{{41.0, -88.0}, {40.0, -89.0}};
  const geo::GeoPoint inside{40.5, -88.5};
  const geo::GeoPoint outside{41.5, -88.5};
  EXPECT_TRUE(a.contains(inside));
  EXPECT_TRUE(b.contains(inside));
  EXPECT_FALSE(a.contains(outside));
  EXPECT_FALSE(b.contains(outside));
  // Boundary is inclusive.
  EXPECT_TRUE(a.contains({40.0, -88.0}));
}

}  // namespace
}  // namespace alidrone::core
