// Replication invariants (labelled `ledger` in ctest):
//
//   1. the anchored ledger stream is byte-identical for any
//      verify_threads × auditor_shards configuration (the Auditor's
//      serial commit discipline is what the ledger inherits);
//   2. N ReplicatedAuditor replicas converge to the same root on every
//      write path (direct, forwarded, redelivered), with reads served
//      from any replica;
//   3. redelivery and cross-replica resubmission stay exactly-once;
//   4. a replica cut off by an outage catches up to a byte-identical
//      root;
//   5. a genuine fork is localized to the exact first divergent segment
//      by Merkle descent over the bus.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/ingest.h"
#include "core/poa_store.h"
#include "core/replicated_auditor.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "ledger/ledger.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "obs/metrics.h"
#include "sim/route.h"

namespace alidrone::core {
namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kTestKeyBits = 512;

const geo::LocalFrame& test_frame() {
  static const geo::LocalFrame frame(geo::GeoPoint{40.0, -88.0});
  return frame;
}

std::vector<geo::GeoZone> test_zones() {
  std::vector<geo::GeoZone> zones;
  for (double x : {100.0, 300.0}) {
    zones.push_back({test_frame().to_geo(geo::Vec2{x, 400.0}), 30.0});
  }
  return zones;
}

/// One deterministic compliant flight; identical bytes for identical
/// (tee seed, operator seed, gps seed, start time).
ProofOfAlibi make_flight_poa(DroneClient& client, double start,
                             std::uint64_t gps_seed) {
  sim::Route route(
      test_frame(),
      {{geo::Vec2{0.0, 0.0}, 10.0}, {geo::Vec2{600.0, 0.0}, 10.0}}, start);
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = start;
  rc.seed = gps_seed;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());

  std::vector<geo::Circle> local_zones;
  for (const geo::GeoZone& z : test_zones()) {
    local_zones.push_back({test_frame().to_local(z.center), z.radius_m});
  }
  AdaptiveSampler policy(test_frame(), local_zones, geo::kFaaMaxSpeedMps, 0.2);
  FlightConfig config;
  config.end_time = start + 30.0;
  config.frame = test_frame();
  config.local_zones = local_zones;
  return client.fly(receiver, policy, config);
}

resilience::ReliableChannel::Config channel_config(std::uint64_t seed,
                                                   obs::MetricsRegistry* reg) {
  resilience::ReliableChannel::Config config;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_s = 0.5;
  config.retry.backoff_multiplier = 2.0;
  config.retry.max_backoff_s = 4.0;
  config.retry.jitter_fraction = 0.1;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown_s = 10.0;
  config.seed = seed;
  config.metrics = reg;
  return config;
}

// ---- 1. One auditor, any pipeline shape: same ledger stream ----

TEST(LedgerStreamTest, ByteIdenticalForAnyVerifyThreadsAndShards) {
  std::vector<ledger::Digest> roots;
  std::vector<std::uint64_t> counts;
  for (const std::size_t verify_threads : {std::size_t{0}, std::size_t{4}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      obs::MetricsRegistry reg;
      crypto::DeterministicRandom auditor_rng("stream-auditor");
      crypto::DeterministicRandom owner_rng("stream-owner");
      crypto::DeterministicRandom operator_rng("stream-operator");
      ProtocolParams params;
      params.auditor_shards = shards;
      params.metrics = &reg;
      Auditor auditor(kTestKeyBits, auditor_rng, params);

      auto led = std::make_shared<ledger::Ledger>();
      auto log = std::make_shared<AuditLog>();
      log->attach_ledger(led);
      auditor.attach_audit_log(log);

      tee::DroneTee::Config tee_config;
      tee_config.key_bits = kTestKeyBits;
      tee_config.manufacturing_seed = "stream-device";
      tee::DroneTee tee(tee_config);
      DroneClient client(tee, kTestKeyBits, operator_rng, &reg);
      net::MessageBus bus;
      auditor.bind(bus);
      ASSERT_TRUE(client.register_with_auditor(bus));
      ZoneOwner owner(kTestKeyBits, owner_rng);
      for (const geo::GeoZone& zone : test_zones()) {
        auditor.register_zone(owner.make_zone_request(zone, "stream zone"));
      }

      AuditorIngest::Config ingest_config;
      ingest_config.verify_threads = verify_threads;
      AuditorIngest ingest(auditor, ingest_config);
      for (int f = 0; f < 2; ++f) {
        const ProofOfAlibi poa =
            make_flight_poa(client, kT0 + f * 100.0, 40u + f);
        const crypto::Bytes frame = SubmitPoaRequest{poa.serialize()}.encode();
        const auto verdict = PoaVerdict::decode(ingest.submit(frame));
        ASSERT_TRUE(verdict.has_value());
        EXPECT_TRUE(verdict->accepted);
      }
      roots.push_back(led->root_hash());
      counts.push_back(led->entry_count());
    }
  }
  ASSERT_EQ(roots.size(), 4u);
  EXPECT_GT(counts[0], 0u);
  for (std::size_t i = 1; i < roots.size(); ++i) {
    EXPECT_EQ(roots[i], roots[0]) << "config " << i;
    EXPECT_EQ(counts[i], counts[0]);
  }
}

TEST(LedgerStreamTest, PoaStoreAnchorsRetainedProofs) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "alidrone-ledger-poa-anchor";
  std::filesystem::remove_all(dir);

  obs::MetricsRegistry reg;
  crypto::DeterministicRandom auditor_rng("anchor-auditor");
  crypto::DeterministicRandom operator_rng("anchor-operator");
  ProtocolParams params;
  params.metrics = &reg;
  Auditor auditor(kTestKeyBits, auditor_rng, params);

  auto led = std::make_shared<ledger::Ledger>();
  auto store = std::make_shared<PoaStore>(dir, &reg);
  store->attach_ledger(led);
  auditor.attach_store(store);

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "anchor-device";
  tee::DroneTee tee(tee_config);
  DroneClient client(tee, kTestKeyBits, operator_rng, &reg);
  net::MessageBus bus;
  auditor.bind(bus);
  ASSERT_TRUE(client.register_with_auditor(bus));

  const ProofOfAlibi poa = make_flight_poa(client, kT0, 7);
  const crypto::Bytes poa_bytes = poa.serialize();
  const PoaVerdict verdict = auditor.verify_poa(poa, kT0 + 31.0);
  ASSERT_TRUE(verdict.accepted);

  // One kPoaAnchor entry: drone id, submission time, SHA-256 of the
  // serialized proof — enough to later prove the stored file untampered.
  ASSERT_EQ(led->entry_count(), 1u);
  const auto entry = led->entry(0);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->kind, ledger::EntryKind::kPoaAnchor);
  net::Reader reader(entry->payload);
  const auto drone_id = reader.str();
  const auto time = reader.f64();
  const auto digest = reader.bytes();
  ASSERT_TRUE(drone_id && time && digest);
  EXPECT_EQ(*drone_id, client.id());
  EXPECT_EQ(*time, kT0 + 31.0);
  const auto expect = crypto::Sha256::hash(poa_bytes);
  EXPECT_EQ(*digest, crypto::Bytes(expect.begin(), expect.end()));

  std::filesystem::remove_all(dir);
}

// ---- 2-5. Replicated federation ----

class ReplicationTest : public ::testing::Test {
 protected:
  void build(std::size_t replicas, net::MessageBus::FaultConfig faults = {}) {
    ReplicatedAuditor::Config config;
    config.replicas = replicas;
    config.key_bits = kTestKeyBits;
    config.key_seed = "replication-auditor";
    config.segment_capacity = 4;
    config.params.metrics = &reg_;
    config.channel = channel_config(1, &reg_);
    config.metrics = &reg_;
    fed_ = std::make_unique<ReplicatedAuditor>(bus_, clock_, config);
    bus_.set_faults(faults);
  }

  net::FaultWindow outage(const std::string& endpoint, double start,
                          double end) {
    net::FaultWindow w;
    w.endpoint = endpoint;
    w.start = start;
    w.end = end;
    w.kind = net::FaultKind::kOutage;
    w.probability = 1.0;
    return w;
  }

  net::MessageBus bus_;
  resilience::SimClock clock_{0.0};
  obs::MetricsRegistry reg_;
  std::unique_ptr<ReplicatedAuditor> fed_;
};

TEST_F(ReplicationTest, ThreeReplicasConvergeAcrossTheProtocol) {
  build(3);

  // Same key seed => same keypair: failover-encrypted proofs stay
  // decryptable by every replica.
  EXPECT_EQ(fed_->replica(0).encryption_key().n.to_bytes(),
            fed_->replica(1).encryption_key().n.to_bytes());
  EXPECT_EQ(fed_->replica(1).encryption_key().n.to_bytes(),
            fed_->replica(2).encryption_key().n.to_bytes());

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kTestKeyBits;
  tee_config.manufacturing_seed = "replication-device";
  tee::DroneTee tee(tee_config);
  crypto::DeterministicRandom operator_rng("replication-operator");
  DroneClient client(tee, kTestKeyBits, operator_rng, &reg_);
  client.set_auditor_endpoints(fed_->client_prefixes());

  // Registration lands on replica 0 and replicates out.
  ASSERT_TRUE(client.register_with_auditor(bus_));

  // A zone registered THROUGH A FOLLOWER is a write like any other.
  crypto::DeterministicRandom owner_rng("replication-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);
  const ZoneId zone_id =
      owner.register_zone(bus_, test_zones()[0], "replicated zone", "auditor1");
  ASSERT_FALSE(zone_id.empty());

  // Reads are served by every replica from its own replicated state.
  const QueryRect rect{{39.99, -88.01}, {40.02, -87.98}};
  const crypto::Bytes query = client.make_zone_query(rect).encode();
  for (std::size_t k = 0; k < 3; ++k) {
    const auto response = ZoneQueryResponse::decode(
        bus_.request(fed_->replica_prefix(k) + ".query_zones", query));
    ASSERT_TRUE(response.has_value()) << "replica " << k;
    EXPECT_TRUE(response->ok);
    EXPECT_EQ(response->zones.size(), 1u) << "replica " << k;
  }

  // Flight + submission through the resilient path.
  resilience::ReliableChannel channel(bus_, clock_, channel_config(2, &reg_));
  const ProofOfAlibi poa = make_flight_poa(client, kT0, 11);
  const auto verdict = client.submit_poa(channel, poa);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->accepted);

  // An accusation adjudicated by the LAST replica, from replicated
  // retention.
  const auto accusation =
      owner.accuse(bus_, zone_id, client.id(), kT0 + 10.0, "auditor2");
  ASSERT_TRUE(accusation.has_value());
  EXPECT_TRUE(accusation->ok);
  EXPECT_TRUE(accusation->alibi_holds);

  // Convergence: same retained state, same audit history, same root.
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(fed_->replica(k).retained_poa_count(), 1u) << "replica " << k;
  }
  EXPECT_EQ(fed_->replica_audit_log(0)->size(),
            fed_->replica_audit_log(1)->size());
  EXPECT_TRUE(fed_->converged());
  EXPECT_EQ(fed_->check_divergence(0, 1), std::nullopt);
  EXPECT_EQ(fed_->check_divergence(0, 2), std::nullopt);

  const auto counters = fed_->counters();
  EXPECT_GT(counters.forwards, 0u);
  EXPECT_EQ(counters.forward_failures, 0u);

  // The ledger_info endpoint reports what the replica itself does.
  const crypto::Bytes info_bytes = bus_.request("auditor0.ledger_info", {});
  net::Reader info(info_bytes);
  const auto count = info.u64();
  const auto segments = info.u64();
  const auto root = info.bytes();
  ASSERT_TRUE(count && segments && root);
  EXPECT_EQ(*count, fed_->replica_ledger(0)->entry_count());
  const ledger::Digest local_root = fed_->root_of(0);
  EXPECT_EQ(*root, crypto::Bytes(local_root.begin(), local_root.end()));
}

TEST_F(ReplicationTest, RedeliveryAndCrossReplicaResubmissionIsExactlyOnce) {
  build(3);
  crypto::DeterministicRandom owner_rng("dedup-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);
  const crypto::Bytes frame =
      owner.make_zone_request(test_zones()[0], "dedup zone").encode();

  const crypto::Bytes first = bus_.request("auditor0.register_zone", frame);
  const std::uint64_t count = fed_->replica_ledger(0)->entry_count();

  // Same bytes again, to the same replica and to a different one: the
  // first response verbatim, nothing appended anywhere.
  const crypto::Bytes again = bus_.request("auditor0.register_zone", frame);
  const crypto::Bytes other = bus_.request("auditor1.register_zone", frame);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first, other);
  EXPECT_EQ(fed_->replica_ledger(0)->entry_count(), count);
  EXPECT_TRUE(fed_->converged());
  EXPECT_GE(fed_->counters().dedup_hits, 2u);

  // Only one zone exists in every replica.
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(fed_->replica(k).zones().size(), 1u) << "replica " << k;
  }
}

TEST_F(ReplicationTest, OutageThenCatchUpConvergesToIdenticalRoot) {
  net::MessageBus::FaultConfig faults;
  faults.seed = 3;
  // Replica 2's replication inlet is dead for the whole write burst.
  faults.schedule.push_back(outage("auditor2.apply", 0.0, 1000.0));
  build(3, faults);

  crypto::DeterministicRandom owner_rng("catchup-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);
  for (int i = 0; i < 5; ++i) {
    const geo::GeoZone zone{
        test_frame().to_geo(geo::Vec2{100.0 + 50.0 * i, 400.0}), 30.0};
    const ZoneId id = owner.register_zone(bus_, zone,
                                          "zone " + std::to_string(i),
                                          "auditor0");
    ASSERT_FALSE(id.empty());
  }

  // 0 and 1 agree; 2 is a strict prefix (it heard nothing).
  EXPECT_EQ(fed_->root_of(0), fed_->root_of(1));
  EXPECT_FALSE(fed_->converged());
  EXPECT_GT(fed_->counters().forward_failures, 0u);
  EXPECT_LT(fed_->replica_ledger(2)->entry_count(),
            fed_->replica_ledger(0)->entry_count());

  // Catch-up re-executes the missed requests from replica 0's segments;
  // derived audit events regenerate byte-identically.
  const auto reapplied = fed_->catch_up(2, 0);
  ASSERT_TRUE(reapplied.has_value());
  EXPECT_EQ(*reapplied, 5u);
  EXPECT_TRUE(fed_->converged());
  EXPECT_EQ(fed_->replica(2).zones().size(), 5u);
  EXPECT_EQ(fed_->counters().reapplied, 5u);
}

TEST_F(ReplicationTest, ForkIsLocalizedToTheExactSegment) {
  net::MessageBus::FaultConfig faults;
  faults.seed = 4;
  // After t=100, the two replicas cannot reach each other.
  faults.schedule.push_back(outage("auditor0.apply", 100.0, 1e9));
  faults.schedule.push_back(outage("auditor1.apply", 100.0, 1e9));
  build(2, faults);

  crypto::DeterministicRandom owner_rng("fork-owner");
  ZoneOwner owner(kTestKeyBits, owner_rng);

  // Phase 1 (t=0, links healthy): a shared prefix spanning one sealed
  // segment — 3 writes x 2 entries at capacity 4.
  for (int i = 0; i < 3; ++i) {
    const geo::GeoZone zone{
        test_frame().to_geo(geo::Vec2{100.0 + 50.0 * i, 400.0}), 30.0};
    ASSERT_FALSE(owner.register_zone(bus_, zone,
                                     "shared " + std::to_string(i), "auditor0")
                     .empty());
  }
  ASSERT_TRUE(fed_->converged());
  const std::uint64_t shared_count = fed_->replica_ledger(0)->entry_count();
  const std::size_t expected_segment =
      static_cast<std::size_t>(shared_count) / 4;

  // Phase 2 (t>100, partitioned): each replica accepts a DIFFERENT write
  // at the same position — a genuine fork.
  clock_.advance(150.0);
  const geo::GeoZone zone_a{test_frame().to_geo(geo::Vec2{50.0, 400.0}), 25.0};
  const geo::GeoZone zone_b{test_frame().to_geo(geo::Vec2{80.0, 400.0}), 25.0};
  bus_.request("auditor0.register_zone",
               owner.make_zone_request(zone_a, "fork a").encode());
  bus_.request("auditor1.register_zone",
               owner.make_zone_request(zone_b, "fork b").encode());

  EXPECT_FALSE(fed_->converged());
  const auto divergence = fed_->check_divergence(0, 1);
  ASSERT_TRUE(divergence.has_value());
  ASSERT_TRUE(divergence->segment.has_value());
  EXPECT_EQ(*divergence->segment, expected_segment);

  // catch_up cannot reconcile a fork — it reports failure instead of
  // silently merging divergent histories.
  EXPECT_EQ(fed_->catch_up(0, 1), std::nullopt);
}

}  // namespace
}  // namespace alidrone::core
