#include <gtest/gtest.h>

#include <string>

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {
namespace {

template <typename Digest>
std::string hex(const Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP known-answer vectors.

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex(Sha1::hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(Sha1::hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha1 h;
  for (const char c : msg) {
    const auto b = static_cast<std::uint8_t>(c);
    h.update({&b, 1});
  }
  EXPECT_EQ(hex(h.finalize()), hex(Sha1::hash(msg)));
}

TEST(Sha1, ResetRestoresInitialState) {
  Sha1 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(hex(h.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(10000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 100; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message: padding spills into a second block.
  const std::string msg(64, 'x');
  Sha256 a;
  a.update(to_bytes(msg));
  Sha256 b;
  b.update(to_bytes(msg.substr(0, 31)));
  b.update(to_bytes(msg.substr(31)));
  EXPECT_EQ(hex(a.finalize()), hex(b.finalize()));
}

// RFC 2202 (HMAC-SHA1) and RFC 4231 (HMAC-SHA256) test cases.

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(HmacSha1::mac(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(hex(HmacSha1::mac(to_bytes("Jefe"),
                              to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(HmacSha256::mac(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hex(HmacSha256::mac(to_bytes("Jefe"),
                                to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3BinaryData) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex(HmacSha256::mac(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  // Key longer than the block size: must be hashed first.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(HmacSha256::mac(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes k1(32, 0x01);
  const Bytes k2(32, 0x02);
  const Bytes msg = to_bytes("sample GPS tuple");
  EXPECT_NE(hex(HmacSha256::mac(k1, msg)), hex(HmacSha256::mac(k2, msg)));
}

TEST(Hmac, SingleBitFlipChangesMac) {
  const Bytes key(32, 0x55);
  Bytes msg = to_bytes("40.1164,-88.2434,1528395000.0");
  const auto mac1 = HmacSha256::mac(key, msg);
  msg[5] ^= 0x01;
  const auto mac2 = HmacSha256::mac(key, msg);
  EXPECT_NE(hex(mac1), hex(mac2));
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x7f, 0x80, 0xff, 0x12};
  EXPECT_EQ(to_hex(data), "007f80ff12");
  EXPECT_EQ(from_hex("007f80ff12"), data);
  EXPECT_EQ(from_hex("007F80FF12"), data);
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  const Bytes d{1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

}  // namespace
}  // namespace alidrone::crypto
