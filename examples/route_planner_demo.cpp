// Route planner demo (paper Section IV-B step 2-3): after the zone query,
// the drone computes a viable route around the returned NFZs. Renders a
// small ASCII map of the zones and the planned path.
#include <cstdio>
#include <string>
#include <vector>

#include "geo/circle.h"
#include "sim/planner.h"

using namespace alidrone;

namespace {

void render_ascii(const std::vector<geo::Circle>& zones,
                  const std::vector<geo::Vec2>& path, double extent) {
  constexpr int kCols = 72;
  constexpr int kRows = 28;
  std::vector<std::string> grid(kRows, std::string(kCols, '.'));

  const auto to_cell = [&](geo::Vec2 p) {
    const int col = static_cast<int>((p.x / extent) * (kCols - 1));
    const int row =
        (kRows - 1) - static_cast<int>(((p.y + extent / 2) / extent) * (kRows - 1));
    return std::pair<int, int>{row, col};
  };
  const auto in_bounds = [&](int r, int c) {
    return r >= 0 && r < kRows && c >= 0 && c < kCols;
  };

  // Zones.
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      const geo::Vec2 p{extent * c / (kCols - 1),
                        (extent * (kRows - 1 - r)) / (kRows - 1) - extent / 2};
      for (const geo::Circle& z : zones) {
        if (z.contains(p)) {
          grid[r][c] = '#';
          break;
        }
      }
    }
  }

  // Path: dense interpolation between waypoints.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const geo::Vec2 a = path[i - 1];
    const geo::Vec2 b = path[i];
    const int steps = 200;
    for (int s = 0; s <= steps; ++s) {
      const geo::Vec2 p = a + (b - a) * (static_cast<double>(s) / steps);
      const auto [r, c] = to_cell(p);
      if (in_bounds(r, c)) grid[r][c] = '*';
    }
  }
  if (!path.empty()) {
    const auto [r0, c0] = to_cell(path.front());
    const auto [r1, c1] = to_cell(path.back());
    if (in_bounds(r0, c0)) grid[r0][c0] = 'S';
    if (in_bounds(r1, c1)) grid[r1][c1] = 'G';
  }

  for (const std::string& row : grid) std::printf("  %s\n", row.c_str());
}

}  // namespace

int main() {
  std::printf("AliDrone route planner demo\n===========================\n\n");

  // A zone field the Auditor returned for the flight rectangle.
  const std::vector<geo::Circle> zones{
      {{250, 40}, 70.0},  {{450, -60}, 60.0}, {{650, 50}, 80.0},
      {{850, -30}, 55.0}, {{520, 160}, 50.0}, {{380, -190}, 65.0},
  };
  const geo::Vec2 start{0, 0};
  const geo::Vec2 goal{1100, 0};

  const sim::PlanResult direct_check = sim::plan_route(start, goal, {});
  const sim::PlanResult plan = sim::plan_route(start, goal, zones);
  if (!plan.found) {
    std::printf("no route found\n");
    return 1;
  }

  std::printf("zones: %zu   direct distance: %.0f m   planned route: %.0f m "
              "(+%.1f%% detour)\n\n",
              zones.size(), direct_check.length_m, plan.length_m,
              100.0 * (plan.length_m / direct_check.length_m - 1.0));
  std::printf("  legend: S start, G goal, * path, # no-fly-zone\n\n");
  render_ascii(zones, plan.path, 1150.0);

  std::printf("\nwaypoints (%zu):\n", plan.path.size());
  for (const geo::Vec2 p : plan.path) {
    std::printf("  (%7.1f, %7.1f)\n", p.x, p.y);
  }
  std::printf("\ncollision-free: %s (with the planner's 15 m clearance margin)\n",
              sim::path_is_collision_free(plan.path, zones) ? "yes" : "NO");
  return sim::path_is_collision_free(plan.path, zones) ? 0 : 1;
}
