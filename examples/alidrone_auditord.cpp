// alidrone_auditord — the Auditor as a standalone multi-process daemon.
//
// Serves the full wire protocol (registration, zone registry, zone
// queries, PoA submission, TESLA streams, accusations) over real
// sockets: a TransportServer with an epoll acceptor and N worker event
// loops, PoA ingestion running through the batched AuditorIngest
// pipeline. Any client built on net::Transport — DroneClient,
// ReliableChannel, a raw TransportClient — talks to it unchanged.
//
//   alidrone_auditord --listen uds:/tmp/auditor.sock
//       --listen tcp:127.0.0.1:9000 --workers 2 --verify-threads 4
//       --shards 8 --seed 7
//
// Readiness: prints one "listening <address>" line per bound socket
// (ephemeral tcp ports resolved) and then "ready", all on stdout,
// flushed — parents fork+exec and wait for "ready".
//
// Shutdown: SIGTERM or SIGINT drains gracefully — the acceptor stops,
// in-flight requests finish and flush, then the daemon prints its final
// state (ledger root, entry counts, transport stats; --metrics adds the
// full registry as JSON) and exits 0. The printed ledger root is how
// out-of-process runs are asserted byte-identical to in-process ones.
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/ingest.h"
#include "crypto/bytes.h"
#include "crypto/random.h"
#include "ledger/ledger.h"
#include "net/transport/server.h"
#include "obs/metrics.h"

namespace {

// Signal handler writes one byte; main blocks on the read end. The
// self-pipe keeps all shutdown work out of signal context.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

struct Options {
  std::vector<std::string> listen;
  std::size_t workers = 2;
  std::size_t verify_threads = 0;
  std::size_t shards = 8;
  std::size_t key_bits = 512;
  std::uint64_t seed = 1;
  bool metrics = false;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --listen <tcp:host:port|uds:path> ...\n"
      << "  --listen ADDR        listen address (repeatable; required)\n"
      << "  --workers N          reactor event loops (default 2)\n"
      << "  --verify-threads N   ingest verify pool, 0 = inline (default 0)\n"
      << "  --shards N           auditor lock stripes (default 8)\n"
      << "  --key-bits N         auditor RSA modulus bits (default 512)\n"
      << "  --seed N             auditor keygen seed (default 1)\n"
      << "  --metrics            dump the metrics registry as JSON on exit\n";
  return 2;
}

bool parse_size(const char* s, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alidrone;

  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--listen" && has_value) {
      opt.listen.push_back(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      if (!parse_size(argv[++i], opt.workers)) return usage(argv[0]);
    } else if (arg == "--verify-threads" && has_value) {
      if (!parse_size(argv[++i], opt.verify_threads)) return usage(argv[0]);
    } else if (arg == "--shards" && has_value) {
      if (!parse_size(argv[++i], opt.shards)) return usage(argv[0]);
    } else if (arg == "--key-bits" && has_value) {
      if (!parse_size(argv[++i], opt.key_bits)) return usage(argv[0]);
    } else if (arg == "--seed" && has_value) {
      std::size_t seed = 0;
      if (!parse_size(argv[++i], seed)) return usage(argv[0]);
      opt.seed = seed;
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.listen.empty()) return usage(argv[0]);

  obs::MetricsRegistry registry;

  // The Auditor: deterministic keygen from --seed so a daemon run can be
  // compared byte-for-byte against an in-process run with the same seed.
  crypto::DeterministicRandom auditor_rng(opt.seed);
  core::ProtocolParams params;
  params.auditor_shards = std::max<std::size_t>(opt.shards, 1);
  params.metrics = &registry;
  core::Auditor auditor(opt.key_bits, auditor_rng, params);

  auto ledger = std::make_shared<ledger::Ledger>();
  auto audit_log = std::make_shared<core::AuditLog>();
  audit_log->attach_ledger(ledger);
  auditor.attach_audit_log(audit_log);

  core::AuditorIngest::Config ingest_config;
  ingest_config.verify_threads = opt.verify_threads;
  core::AuditorIngest ingest(auditor, ingest_config);

  net::transport::TransportServer::Config server_config;
  server_config.listen = opt.listen;
  server_config.workers = std::max<std::size_t>(opt.workers, 1);
  server_config.registry = &registry;
  net::transport::TransportServer server(std::move(server_config));

  // Registration/zone/accusation endpoints straight off the Auditor;
  // submission + TESLA endpoints rebind to the batched ingest pipeline.
  auditor.bind(server);
  ingest.bind(server);

  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "alidrone_auditord: " << e.what() << "\n";
    return 1;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::cerr << "alidrone_auditord: pipe failed\n";
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  for (const std::string& address : server.bound_addresses()) {
    std::cout << "listening " << address << "\n";
  }
  std::cout << "ready" << std::endl;  // endl: flush before the parent waits

  // Block until SIGTERM/SIGINT.
  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  server.stop();  // graceful drain: in-flight requests finish and flush

  const net::transport::TransportServer::Stats stats = server.stats();
  std::cout << "ledger_root " << crypto::to_hex(ledger->root_hash()) << "\n"
            << "ledger_entries " << ledger->entry_count() << "\n"
            << "audit_events " << audit_log->size() << "\n"
            << "conns " << stats.conns_opened << "\n"
            << "requests " << stats.requests_handled << "\n"
            << "frames_in " << stats.frames_in << "\n"
            << "torn_frames " << stats.torn_frames << "\n";
  if (opt.metrics) {
    registry.write_json(std::cout);
    std::cout << "\n";
  }
  std::cout << "drained" << std::endl;
  return 0;
}
