// Delivery mission: the paper's motivating application (Amazon-style
// package delivery) end to end, combining every extension:
//   - preflight feasibility analysis (can the hardware prove this route?),
//   - route planning around tall zones,
//   - 3D cylinder zones overflown above their ceiling (Section VII-B1),
//   - adaptive sampling + PoA submission.
#include <cstdio>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/preflight.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/planner.h"

using namespace alidrone;

int main() {
  std::printf("AliDrone delivery mission\n=========================\n\n");
  constexpr std::size_t kKeyBits = 512;
  constexpr double kT0 = 1528400000.0;
  constexpr double kCruiseAltitude = 80.0;

  crypto::SecureRandom rng;
  core::Auditor auditor(kKeyBits, rng);
  net::MessageBus bus;
  auditor.bind(bus);

  const geo::LocalFrame frame({40.1100, -88.2250});
  core::ZoneOwner owner(kKeyBits, rng);

  // Two kinds of zones along the corridor:
  //  - a "tall" zone (unbounded, e.g. a hospital helipad area) the drone
  //    must route AROUND;
  //  - three "house" cylinders with 60 m ceilings the drone may overfly
  //    at cruise altitude.
  const geo::GeoZone tall{frame.to_geo({600.0, 30.0}), 120.0};
  owner.register_zone(bus, tall, "helipad (unbounded)");
  for (const double x : {300.0, 900.0, 1200.0}) {
    core::RegisterZoneRequest request =
        owner.make_zone_request({frame.to_geo({x, 0.0}), 25.0}, "house");
    auditor.register_zone_3d(request, 60.0);
  }
  std::printf("[zones]    1 unbounded zone (must avoid), 3 cylinders with "
              "60 m ceilings (may overfly at %.0f m)\n",
              kCruiseAltitude);

  // Plan around the tall zone only: cylinders are cleared by altitude.
  const sim::PlanResult plan =
      sim::plan_route({0, 0}, {1500, 0}, {{frame.to_local(tall.center), tall.radius_m}});
  if (!plan.found) {
    std::printf("no route\n");
    return 1;
  }
  std::printf("[planner]  %.0f m route around the helipad zone "
              "(direct would be 1500 m)\n",
              plan.length_m);

  // Waypoints: climb to cruise within the first 60 m (well before the
  // first cylinder at x=300), hold cruise altitude around the planned
  // path, descend in the last 60 m.
  std::vector<sim::Waypoint> wps;
  wps.push_back({plan.path.front(), 15.0, 0.0});
  wps.push_back({{60.0, 0.0}, 15.0, kCruiseAltitude});
  for (std::size_t i = 1; i + 1 < plan.path.size(); ++i) {
    wps.push_back({plan.path[i], 15.0, kCruiseAltitude});
  }
  wps.push_back({{1440.0, 0.0}, 15.0, kCruiseAltitude});
  wps.push_back({plan.path.back(), 15.0, 0.0});
  const sim::Route route(frame, wps, kT0);

  // Preflight: can a 1024-bit TEE at 5 Hz prove this route compliant?
  // (Planar analysis against the zone the drone must route around.)
  core::PreflightConfig pf;
  pf.tee_key_bits = 1024;
  const core::PreflightReport report = core::analyze_route(
      route, {{frame.to_local(tall.center), tall.radius_m}}, pf);
  std::printf("[preflight] clearance %.0f m, peak rate %.2f Hz, "
              "~%zu samples expected -> %s\n",
              report.min_clearance_m, report.required_peak_rate_hz,
              report.estimated_samples,
              report.feasible() ? "FEASIBLE" : "NOT FEASIBLE");
  if (!report.feasible()) return 1;

  // Fly it.
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kKeyBits;
  tee_config.manufacturing_seed = "delivery-device";
  tee::DroneTee drone_tee(tee_config);
  core::DroneClient drone(drone_tee, kKeyBits, rng);
  drone.register_with_auditor(bus);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  rc.emit_gga = true;  // altitude matters on this mission
  gps::GpsReceiverSim receiver(rc, route.as_position_source());

  // The sampler watches every zone's planar footprint: overflying a
  // cylinder reads as "inside" in 2D, which drives it to max rate exactly
  // where the 3D verifier needs dense samples to certify the overflight.
  std::vector<geo::Circle> footprint{{frame.to_local(tall.center), tall.radius_m}};
  for (const double x : {300.0, 900.0, 1200.0}) {
    footprint.push_back({{x, 0.0}, 25.0});
  }
  core::AdaptiveSampler policy(frame, footprint, geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig flight;
  flight.end_time = route.end_time();
  flight.frame = frame;
  flight.auditor_encryption_key = auditor.encryption_key();

  const core::ProofOfAlibi poa = drone.fly(receiver, policy, flight);
  std::printf("[drone]    delivered: %.0f s flight, %zu signed samples\n",
              route.duration(), poa.samples.size());

  const auto verdict = drone.submit_poa(bus, poa);
  std::printf("[auditor]  verdict: %s, %s — %s\n",
              verdict->accepted ? "ACCEPTED" : "REJECTED",
              verdict->compliant ? "COMPLIANT" : "NON-COMPLIANT",
              verdict->detail.c_str());
  std::printf("           (cylinders overflown above their ceilings count "
              "as compliant\n            under the Section VII-B1 3D model)\n");
  return verdict->accepted && verdict->compliant ? 0 : 1;
}
