// Airport scenario (paper Section VI-A2 / Fig. 6) as an application:
// a drone operates just outside a 5-mile airport NFZ and recedes from it;
// adaptive sampling backs off from ~max rate to near-zero as the distance
// grows, and the resulting PoA proves compliance.
#include <cstdio>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

using namespace alidrone;

int main() {
  std::printf("AliDrone airport scenario\n=========================\n\n");
  constexpr std::size_t kKeyBits = 512;
  constexpr double kT0 = 1528400000.0;

  crypto::SecureRandom rng;
  core::Auditor auditor(kKeyBits, rng);
  net::MessageBus bus;
  auditor.bind(bus);

  const sim::Scenario scenario = sim::make_airport_scenario(kT0);
  core::ZoneOwner faa(kKeyBits, rng);  // the airport authority
  const core::ZoneId zone_id =
      faa.register_zone(bus, scenario.zones[0], "airport, FAA 5-mile rule");
  std::printf("[faa]      NFZ %s: radius %.1f miles around the airport\n",
              zone_id.c_str(), geo::meters_to_miles(scenario.zones[0].radius_m));

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kKeyBits;
  tee_config.manufacturing_seed = "airport-demo-device";
  tee::DroneTee drone_tee(tee_config);
  core::DroneClient drone(drone_tee, kKeyBits, rng);
  drone.register_with_auditor(bus);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                               geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();

  const core::ProofOfAlibi poa = drone.fly(receiver, policy, flight);
  const core::FlightResult& result = drone.last_flight();

  std::printf("[drone]    %.1f minute flight receding from the NFZ boundary\n",
              scenario.route.duration() / 60.0);
  std::printf("[drone]    GPS updates seen: %llu; TEE-signed samples: %zu\n",
              static_cast<unsigned long long>(result.gps_updates),
              poa.samples.size());

  // Show how the sampling interval stretches with distance.
  std::printf("\n  sample#   t(s)   distance to NFZ(ft)   gap since last(s)\n");
  double last_t = 0.0;
  std::size_t shown = 0;
  for (const core::FlightLogEntry& e : result.log) {
    if (!e.recorded) continue;
    ++shown;
    if (shown <= 8 || shown == poa.samples.size()) {
      std::printf("  %6zu %7.1f %18.0f %16.1f\n", shown, e.time - kT0,
                  geo::meters_to_feet(e.nearest_zone_distance),
                  shown == 1 ? 0.0 : e.time - last_t);
    } else if (shown == 9) {
      std::printf("  ...\n");
    }
    last_t = e.time;
  }

  const auto verdict = drone.submit_poa(bus, poa);
  std::printf("\n[auditor]  verdict: %s, %s — %s\n",
              verdict->accepted ? "ACCEPTED" : "REJECTED",
              verdict->compliant ? "COMPLIANT" : "NON-COMPLIANT",
              verdict->detail.c_str());
  return verdict->accepted && verdict->compliant ? 0 : 1;
}
