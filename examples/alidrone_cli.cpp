// alidrone_cli — command-line front end for the simulation stack.
//
//   alidrone_cli simulate  --scenario airport|residential
//                          [--sampler adaptive|fixed] [--rate HZ]
//                          [--mode rsa|hmac|batch] [--out FILE]
//   alidrone_cli verify    --scenario airport|residential --poa FILE
//   alidrone_cli preflight --scenario airport|residential [--key-bits N]
//
// `simulate` flies the scenario and writes the serialized Proof-of-Alibi
// to FILE; `verify` reconstructs the same Auditor (deterministic seeds)
// and renders a verdict on the file; `preflight` prints the feasibility
// report. simulate+verify across two process invocations demonstrates
// that the PoA file alone carries everything the Auditor needs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/preflight.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

using namespace alidrone;

namespace {

constexpr double kT0 = 1528400000.0;
constexpr std::size_t kKeyBits = 512;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      args.options[argv[i] + 2] = argv[i + 1];
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  alidrone_cli simulate  --scenario airport|residential"
               " [--sampler adaptive|fixed] [--rate HZ] [--mode rsa|hmac|batch]"
               " [--out FILE]\n"
               "  alidrone_cli verify    --scenario airport|residential --poa FILE\n"
               "  alidrone_cli preflight --scenario airport|residential"
               " [--key-bits N]\n");
  return 2;
}

sim::Scenario load_scenario(const std::string& name) {
  if (name == "airport") return sim::make_airport_scenario(kT0);
  if (name == "residential") return sim::make_residential_scenario(kT0);
  throw std::invalid_argument("unknown scenario: " + name);
}

/// Deterministic world shared by `simulate` and `verify`: same seeds give
/// the same Auditor keys and drone registration in both processes.
struct World {
  crypto::DeterministicRandom auditor_rng{std::string_view("cli-auditor")};
  crypto::DeterministicRandom owner_rng{std::string_view("cli-owner")};
  crypto::DeterministicRandom operator_rng{std::string_view("cli-operator")};
  core::Auditor auditor;
  core::ZoneOwner owner;
  tee::DroneTee tee;
  core::DroneClient client;
  net::MessageBus bus;

  explicit World(const sim::Scenario& scenario)
      : auditor(kKeyBits, auditor_rng),
        owner(kKeyBits, owner_rng),
        tee([] {
          tee::DroneTee::Config config;
          config.key_bits = kKeyBits;
          config.manufacturing_seed = "cli-device";
          return config;
        }()),
        client(tee, kKeyBits, operator_rng) {
    auditor.bind(bus);
    if (!client.register_with_auditor(bus)) {
      throw std::runtime_error("drone registration failed");
    }
    for (const geo::GeoZone& z : scenario.zones) {
      owner.register_zone(bus, z, "zone");
    }
  }
};

int cmd_simulate(const Args& args) {
  const sim::Scenario scenario = load_scenario(args.get("scenario", "airport"));
  World world(scenario);

  const double rate = std::stod(args.get("rate", "5"));
  const std::string sampler_name = args.get("sampler", "adaptive");
  const std::string mode_name = args.get("mode", "rsa");
  const std::string out_path = args.get("out", "poa.bin");

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  std::unique_ptr<core::SamplingPolicy> policy;
  if (sampler_name == "adaptive") {
    policy = std::make_unique<core::AdaptiveSampler>(
        scenario.frame, scenario.local_zones(), geo::kFaaMaxSpeedMps, 5.0);
  } else if (sampler_name == "fixed") {
    policy = std::make_unique<core::FixedRateSampler>(rate, rc.start_time);
  } else {
    std::fprintf(stderr, "unknown sampler: %s\n", sampler_name.c_str());
    return 2;
  }

  core::FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  flight.auditor_encryption_key = world.auditor.encryption_key();
  if (mode_name == "hmac") {
    flight.auth_mode = core::AuthMode::kHmacSession;
  } else if (mode_name == "batch") {
    flight.auth_mode = core::AuthMode::kBatchSignature;
  } else if (mode_name != "rsa") {
    std::fprintf(stderr, "unknown mode: %s\n", mode_name.c_str());
    return 2;
  }

  const core::ProofOfAlibi poa = world.client.fly(receiver, *policy, flight);
  const crypto::Bytes bytes = poa.serialize();
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("scenario    %s (%zu zones)\n", scenario.name.c_str(),
              scenario.zones.size());
  std::printf("sampler     %s\n", policy->name().c_str());
  std::printf("mode        %s, samples encrypted for the Auditor\n",
              core::to_string(poa.mode).c_str());
  std::printf("flight      %.0f s, %llu GPS updates\n", scenario.route.duration(),
              static_cast<unsigned long long>(world.client.last_flight().gps_updates));
  std::printf("PoA         %zu samples, %zu bytes -> %s\n", poa.samples.size(),
              bytes.size(), out_path.c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  const sim::Scenario scenario = load_scenario(args.get("scenario", "airport"));
  World world(scenario);

  const std::string poa_path = args.get("poa", "poa.bin");
  std::ifstream in(poa_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", poa_path.c_str());
    return 1;
  }
  const crypto::Bytes bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());

  const core::PoaVerdict verdict = world.auditor.verify_poa_bytes(bytes, kT0 + 3600);
  std::printf("PoA file    %s (%zu bytes)\n", poa_path.c_str(), bytes.size());
  std::printf("verdict     %s, %s\n", verdict.accepted ? "ACCEPTED" : "REJECTED",
              verdict.compliant ? "COMPLIANT" : "NON-COMPLIANT");
  std::printf("detail      %s (%u violations)\n", verdict.detail.c_str(),
              verdict.violation_count);
  return verdict.accepted && verdict.compliant ? 0 : 1;
}

int cmd_preflight(const Args& args) {
  const sim::Scenario scenario = load_scenario(args.get("scenario", "airport"));
  core::PreflightConfig config;
  config.tee_key_bits = static_cast<std::size_t>(
      std::stoul(args.get("key-bits", "1024")));
  const core::PreflightReport report =
      core::analyze_route(scenario.route, scenario.local_zones(), config);

  std::printf("scenario            %s (%zu zones)\n", scenario.name.c_str(),
              scenario.zones.size());
  std::printf("min clearance       %.1f m at t+%.1f s\n", report.min_clearance_m,
              report.min_clearance_time - scenario.route.start_time());
  std::printf("required peak rate  %.2f Hz (GPS caps at %.1f Hz)\n",
              report.required_peak_rate_hz, config.gps_rate_hz);
  std::printf("estimated samples   %zu\n", report.estimated_samples);
  std::printf("route avoids zones  %s\n", report.route_avoids_zones ? "yes" : "NO");
  std::printf("gps rate sufficient %s\n", report.gps_rate_sufficient ? "yes" : "NO");
  std::printf("tee keeps up        %s (%zu-bit key)\n",
              report.tee_can_keep_up ? "yes" : "NO", config.tee_key_bits);
  std::printf("=> %s\n", report.feasible() ? "FEASIBLE" : "NOT FEASIBLE");
  return report.feasible() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "preflight") return cmd_preflight(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
