// Real-time auditing (paper Section IV-B, the deferred alternative):
// the drone streams each TEE-signed sample to the Auditor as it is
// recorded; the Auditor verifies incrementally and raises the violation
// the moment a rogue detour happens — at a measurable battery premium
// over the paper's end-of-flight submission.
#include <cstdio>

#include "core/flight.h"
#include "core/sampler.h"
#include "core/streaming.h"
#include "geo/units.h"
#include "net/codec.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"
#include "tee/secure_monitor.h"

using namespace alidrone;

int main() {
  std::printf("AliDrone real-time audit\n========================\n\n");
  constexpr double kT0 = 1528400000.0;

  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = 512;
  tee_config.manufacturing_seed = "realtime-device";
  tee::DroneTee drone_tee(tee_config);

  // A rogue flight: the drone follows the route but dips into house #10's
  // zone between t+40s and t+45s.
  const geo::GeoZone target = scenario.zones[10];
  gps::PositionSource source =
      [base = scenario.route.as_position_source(), target, kT0](double t) {
        gps::GpsFix f = base(t);
        if (t - kT0 > 40.0 && t - kT0 < 45.0) f.position = target.center;
        return f;
      };

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, std::move(source));

  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                               geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig config;
  config.end_time = scenario.route.end_time();
  config.frame = scenario.frame;
  config.local_zones = scenario.local_zones();
  const core::FlightResult flight = core::run_flight(drone_tee, receiver, policy, config);

  // Replay the flight's recorded samples through the streaming pipeline.
  net::MessageBus bus;
  core::StreamingVerifier verifier(drone_tee.verification_key(),
                                   crypto::HashAlgorithm::kSha1, scenario.zones,
                                   geo::kFaaMaxSpeedMps);
  bool first_violation_reported = false;
  bus.register_endpoint("auditor.stream", [&](const crypto::Bytes& payload) {
    net::Reader r(payload);
    const auto count = r.u32();
    for (std::uint32_t i = 0; count && i < *count; ++i) {
      const auto blob = r.bytes();
      if (!blob) break;
      net::Reader inner(*blob);
      auto sample = inner.bytes();
      auto signature = inner.bytes();
      if (!sample || !signature) break;
      const auto status = verifier.ingest({*sample, *signature});
      if (!first_violation_reported &&
          (status == core::StreamingVerifier::SampleStatus::kInsideZone ||
           status == core::StreamingVerifier::SampleStatus::kInsufficientPair)) {
        first_violation_reported = true;
        std::printf("[auditor]  LIVE ALERT at t+%.1f s: %s\n",
                    *verifier.last_time() - kT0,
                    status == core::StreamingVerifier::SampleStatus::kInsideZone
                        ? "drone inside an NFZ"
                        : "alibi gap near an NFZ");
      }
    }
    return crypto::Bytes{};
  });

  core::StreamingUplink uplink(bus, "auditor.stream");
  for (const core::SignedSample& s : flight.poa_samples) uplink.send(s);

  std::printf("[drone]    streamed %zu samples in %zu transmissions\n",
              flight.poa_samples.size(), uplink.transmissions());
  std::printf("[auditor]  accepted %zu samples, %zu violation(s) — flight %s\n",
              verifier.accepted(), verifier.violations(),
              verifier.compliant_so_far() ? "COMPLIANT" : "NON-COMPLIANT");

  const double streaming_j = uplink.energy_joules();
  const double batch_j = uplink.batch_upload_energy_j(
      flight.poa_samples.size(), 32, flight.poa_samples[0].signature.size());
  std::printf("\nradio energy: %.2f J streamed vs %.3f J as one upload (%.0fx)\n",
              streaming_j, batch_j, streaming_j / batch_j);
  std::printf("-> the paper's Goal G2 rationale for end-of-flight submission,\n"
              "   quantified; streaming buys detection within seconds instead.\n");

  // This flight was rogue: the demo succeeds iff the violation was caught.
  return !verifier.compliant_so_far() && first_violation_reported ? 0 : 1;
}
