// Fleet campaign demo (ROADMAP item 5): a whole adversarial fleet in
// one process. Thirty-two TEE-equipped drones fly concurrently on the
// deterministic FleetScheduler — swarm, delivery and corridor route
// families, each skirting its own no-fly zone — while half the fleet
// runs the operator playbook from core/attacks (chain forge, replay,
// tamper, drop-window, navigation-deviation spoofing, thinning abuse).
// Every proof flows through the real batched ingest pipeline into the
// Merkle-anchored audit ledger; the Auditor's per-class detection
// quality and the campaign's replay fingerprint are printed at the end.
//
// Exits non-zero if any attack class scores below precision/recall 1.0
// or if a serial re-run of the same seed fails to reproduce the
// campaign fingerprint byte for byte — the two properties every other
// scale (the 512-flight ctest, the CI smoke bench) also pins.
#include <cstdio>
#include <cstdlib>

#include "sim/campaign.h"

using namespace alidrone;

int main(int argc, char** argv) {
  std::printf("AliDrone fleet campaign\n=======================\n\n");

  sim::CampaignConfig config;
  config.flights = 32;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  config.scheduler_workers = 4;
  config.auditor_shards = 8;
  config.ingest_verify_threads = 2;
  config.adversary_fraction = 0.5;

  std::printf("flying %zu drones (seed %llu): %zu scheduler workers, "
              "%zu auditor shards, %zu ingest verifiers...\n\n",
              config.flights, static_cast<unsigned long long>(config.seed),
              config.scheduler_workers, config.auditor_shards,
              config.ingest_verify_threads);
  const sim::CampaignReport report = sim::run_campaign(config);

  std::printf("  %-15s %8s %8s %10s %8s\n", "class", "flights", "flagged",
              "precision", "recall");
  bool perfect = true;
  for (std::size_t c = 0; c < sim::kAttackClassCount; ++c) {
    const sim::ClassMetrics& m = report.per_class[c];
    std::printf("  %-15s %8zu %8zu %10.3f %8.3f\n",
                sim::attack_class_name(static_cast<sim::AttackClass>(c)),
                m.flights, m.flagged, m.precision, m.recall);
    perfect = perfect && m.precision == 1.0 && m.recall == 1.0;
  }
  std::printf("\n  ingest: %llu submitted, %llu committed, %llu duplicates\n",
              static_cast<unsigned long long>(report.ingest.submitted),
              static_cast<unsigned long long>(report.ingest.committed),
              static_cast<unsigned long long>(report.ingest.duplicates));
  std::printf("  audit trail: %zu events, ledger root %.16s...\n",
              report.audit_events, report.ledger_root_hex.c_str());
  std::printf("  scheduler: %llu steps in %llu batches (max batch %llu)\n",
              static_cast<unsigned long long>(report.scheduler.steps),
              static_cast<unsigned long long>(report.scheduler.batches),
              static_cast<unsigned long long>(report.scheduler.max_batch));

  // Replay: the campaign is a pure function of its seed.
  sim::CampaignConfig serial = config;
  serial.scheduler_workers = 1;
  serial.auditor_shards = 1;
  serial.ingest_verify_threads = 0;
  const bool replays =
      sim::run_campaign(serial).fingerprint() == report.fingerprint();
  std::printf("  serial replay of seed %llu: fingerprint %s\n",
              static_cast<unsigned long long>(config.seed),
              replays ? "IDENTICAL" : "DIVERGED");

  if (!perfect || !replays) {
    std::printf("\nUNEXPECTED: detection below 1.0 or replay diverged\n");
    return 1;
  }
  std::printf("\nEvery attack flagged, no honest drone accused, campaign "
              "replayable from its seed.\n");
  return 0;
}
