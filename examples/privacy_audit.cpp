// Privacy-preserving verification demo (paper Section VII-B3): the
// operator uploads a one-time-key encrypted PoA, a Zone Owner files an
// accusation, and the operator reveals exactly two keys — the Auditor
// learns two trajectory points instead of the whole flight.
#include <cstdio>

#include "core/privacy.h"
#include "core/sampler.h"
#include "core/flight.h"
#include "geo/units.h"
#include "sim/scenarios.h"

using namespace alidrone;

int main() {
  std::printf("AliDrone privacy-preserving audit\n=================================\n\n");
  constexpr double kT0 = 1528400000.0;

  // An honest flight through the residential scenario.
  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = 512;
  tee_config.manufacturing_seed = "privacy-demo-device";
  tee::DroneTee drone_tee(tee_config);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                               geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const core::FlightResult result = run_flight(drone_tee, receiver, policy, flight);

  core::ProofOfAlibi plain;
  plain.drone_id = "drone-1";
  plain.samples = result.poa_samples;
  std::printf("[drone]    flight recorded %zu TEE-signed samples\n",
              plain.samples.size());

  // The operator encrypts every sample with its own one-time key.
  crypto::SecureRandom rng;
  const core::PrivatePoaBundle bundle = core::build_private_poa(plain, rng);
  std::printf("[operator] uploaded encrypted PoA: %zu ciphertexts, "
              "keys retained locally\n",
              bundle.upload.entries.size());
  std::printf("[auditor]  stores ciphertexts; trajectory is OPAQUE at this point\n\n");

  // A Zone Owner spots the drone near her house at t = +95 s and reports.
  const double incident = kT0 + 95.0;
  const geo::GeoZone accused_zone = scenario.zones[50];
  std::printf("[owner]    accusation: drone near my zone at t=+%.0f s\n",
              incident - kT0);

  // The operator reveals only the two bracketing keys.
  const auto reveal = core::make_reveal(bundle.secrets, incident);
  if (!reveal) {
    std::printf("[operator] incident outside the flight window — nothing to reveal\n");
    return 1;
  }
  std::printf("[operator] revealed keys for samples %zu and %zu (out of %zu)\n",
              reveal->first_index, reveal->first_index + 1,
              bundle.upload.entries.size());

  // The Auditor decrypts just those two, checks signatures and the alibi.
  const core::PrivateAuditResult audit = core::audit_reveal(
      bundle.upload, *reveal, drone_tee.verification_key(), accused_zone,
      incident, geo::kFaaMaxSpeedMps);

  std::printf("[auditor]  TEE signatures on revealed samples: %s\n",
              audit.signatures_valid ? "VALID" : "INVALID");
  std::printf("[auditor]  revealed pair brackets the incident: %s\n",
              audit.bracket_covers_incident ? "yes" : "no");
  if (audit.first && audit.second) {
    std::printf("[auditor]  learned exactly two points: t=+%.1fs and t=+%.1fs\n",
                audit.first->unix_time - kT0, audit.second->unix_time - kT0);
  }
  std::printf("[auditor]  alibi for the accused zone: %s\n",
              audit.alibi_holds ? "HOLDS — no violation" : "DOES NOT HOLD");
  std::printf("\nthe remaining %zu samples stay encrypted: the honest-but-curious\n"
              "Auditor cannot reconstruct the trajectory (Goal of Section VII-B3).\n",
              bundle.upload.entries.size() - 2);

  return audit.signatures_valid && audit.alibi_holds ? 0 : 1;
}
