// Residential scenario (paper Section VI-A3 / Fig. 7-8) as an application:
// a drone threads a neighborhood with 94 small NFZs. Adaptive sampling
// tracks the zone density — low rate on the sparse street, near max rate
// in the dense stretch — and the PoA stays sufficient for all 94 zones.
#include <algorithm>
#include <cstdio>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

using namespace alidrone;

int main() {
  std::printf("AliDrone residential scenario\n=============================\n\n");
  constexpr std::size_t kKeyBits = 512;
  constexpr double kT0 = 1528400000.0;

  crypto::SecureRandom rng;
  core::Auditor auditor(kKeyBits, rng);
  net::MessageBus bus;
  auditor.bind(bus);

  const sim::Scenario scenario = sim::make_residential_scenario(kT0);

  // Every house registers its own zone (one Zone Owner per household).
  core::ZoneOwner neighborhood(kKeyBits, rng);
  for (const geo::GeoZone& z : scenario.zones) {
    neighborhood.register_zone(bus, z, "house");
  }
  std::printf("[owners]   %zu houses registered 20 ft NFZs along the route\n",
              auditor.zone_count());

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kKeyBits;
  tee_config.manufacturing_seed = "residential-demo-device";
  tee::DroneTee drone_tee(tee_config);
  core::DroneClient drone(drone_tee, kKeyBits, rng);
  drone.register_with_auditor(bus);

  // The drone asks which zones are in its flight area before taking off.
  const auto zones = drone.query_zones(
      bus, {{40.1050, -88.2250}, {40.1250, -88.2050}});
  std::printf("[drone]    zone query: %zu NFZs in the navigation rectangle\n",
              zones ? zones->size() : 0);

  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());

  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                               geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();

  const core::ProofOfAlibi poa = drone.fly(receiver, policy, flight);
  const core::FlightResult& result = drone.last_flight();

  // Phase summary: sampling rate and nearest distance per 30 s window.
  std::printf("\n  window      nearest NFZ(ft)    PoA samples   avg rate(Hz)\n");
  const double duration = scenario.route.duration();
  for (double w = 0.0; w < duration; w += 30.0) {
    double nearest = 1e18;
    std::size_t samples = 0;
    for (const core::FlightLogEntry& e : result.log) {
      const double t = e.time - kT0;
      if (t < w || t >= w + 30.0) continue;
      nearest = std::min(nearest, e.nearest_zone_distance);
      if (e.recorded) ++samples;
    }
    std::printf("  %3.0f-%3.0fs %16.0f %14zu %13.2f\n", w,
                std::min(w + 30.0, duration), geo::meters_to_feet(nearest), samples,
                samples / 30.0);
  }

  const auto verdict = drone.submit_poa(bus, poa);
  std::printf("\n[auditor]  %zu samples checked against %zu zones: %s, %s\n",
              poa.samples.size(), auditor.zone_count(),
              verdict->accepted ? "ACCEPTED" : "REJECTED",
              verdict->compliant ? "COMPLIANT" : "NON-COMPLIANT");
  return verdict->accepted && verdict->compliant ? 0 : 1;
}
