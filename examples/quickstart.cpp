// Quickstart: the complete AliDrone workflow of Fig. 2 in one program.
//
//   1. a Zone Owner registers a no-fly-zone over her property;
//   2. a Drone Operator registers a drone (operator key D+ and TEE key T+);
//   3. before flying, the drone queries the Auditor for nearby NFZs;
//   4. the drone plans a compliant route, flies it while the Adapter runs
//      the adaptive sampling algorithm inside/outside the TEE;
//   5. the Proof-of-Alibi is submitted and the Auditor issues a verdict.
//
// Build: cmake --build build --target quickstart; run: build/examples/quickstart
#include <cstdio>

#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/planner.h"
#include "sim/route.h"

using namespace alidrone;

int main() {
  std::printf("AliDrone quickstart\n===================\n\n");

  // Key sizes: 512-bit keys keep this demo instant; the paper evaluates
  // 1024- and 2048-bit keys (see bench_table2_overhead).
  constexpr std::size_t kKeyBits = 512;
  constexpr double kT0 = 1528400000.0;

  // --- The Auditor (an FAA field office running the AliDrone server) ---
  crypto::SecureRandom rng;
  core::Auditor auditor(kKeyBits, rng);
  net::MessageBus bus;
  auditor.bind(bus);

  // --- 1. Zone registration ------------------------------------------
  const geo::GeoPoint property{40.1135, -88.2180};
  core::ZoneOwner owner(kKeyBits, rng);
  const core::ZoneId zone_id =
      owner.register_zone(bus, {property, geo::feet_to_meters(120.0)}, "backyard");
  std::printf("[owner]    registered NFZ %s: 120 ft around (%.4f, %.4f)\n",
              zone_id.c_str(), property.lat_deg, property.lon_deg);

  // --- 0/2. Drone registration ----------------------------------------
  // The TEE keypair was generated at manufacturing time; only T+ leaves
  // the secure world.
  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kKeyBits;
  tee_config.manufacturing_seed = "quickstart-device";
  tee::DroneTee drone_tee(tee_config);

  core::DroneClient drone(drone_tee, kKeyBits, rng);
  if (!drone.register_with_auditor(bus)) {
    std::printf("registration failed\n");
    return 1;
  }
  std::printf("[operator] registered %s (D+ and T+ on file at the Auditor)\n",
              drone.id().c_str());

  // --- 2-3. Zone query -------------------------------------------------
  const core::QueryRect area{{40.10, -88.23}, {40.13, -88.20}};
  const auto zones = drone.query_zones(bus, area);
  if (!zones) {
    std::printf("zone query failed\n");
    return 1;
  }
  std::printf("[drone]    zone query returned %zu NFZ(s) in the flight area\n",
              zones->size());

  // --- Route planning around the returned zones ------------------------
  const geo::LocalFrame frame({40.1100, -88.2250});
  std::vector<geo::Circle> local_zones;
  for (const core::ZoneInfo& z : *zones) {
    local_zones.push_back({frame.to_local(z.zone.center), z.zone.radius_m});
  }
  const geo::Vec2 start{0, 0};
  const geo::Vec2 goal{800, 600};
  const sim::PlanResult plan = sim::plan_route(start, goal, local_zones);
  std::printf("[drone]    planned a %.0f m route with %zu waypoints "
              "(clearance kept from every NFZ)\n",
              plan.length_m, plan.path.size());

  std::vector<sim::Waypoint> waypoints;
  for (const geo::Vec2 p : plan.path) waypoints.push_back({p, 12.0});
  const sim::Route route(frame, waypoints, kT0);

  // --- 4. Fly with adaptive sampling ----------------------------------
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = kT0;
  gps::GpsReceiverSim receiver(rc, route.as_position_source());

  core::AdaptiveSampler policy(frame, local_zones, geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig flight;
  flight.end_time = route.end_time();
  flight.frame = frame;
  flight.local_zones = local_zones;
  flight.auditor_encryption_key = auditor.encryption_key();

  const core::ProofOfAlibi poa = drone.fly(receiver, policy, flight);
  std::printf("[drone]    flew %.0f s; PoA holds %zu TEE-signed samples "
              "(%llu GPS updates seen)\n",
              route.duration(), poa.samples.size(),
              static_cast<unsigned long long>(drone.last_flight().gps_updates));

  // --- 5. PoA submission & verdict ------------------------------------
  const auto verdict = drone.submit_poa(bus, poa);
  if (!verdict) {
    std::printf("submission failed\n");
    return 1;
  }
  std::printf("[auditor]  verdict: %s, %s (%u violation(s)) — %s\n",
              verdict->accepted ? "ACCEPTED" : "REJECTED",
              verdict->compliant ? "COMPLIANT" : "NON-COMPLIANT",
              verdict->violation_count, verdict->detail.c_str());

  return verdict->accepted && verdict->compliant ? 0 : 1;
}
