// GPS forgery attack demo (paper Section III-B): a dishonest Drone
// Operator tries every trick in the threat model — forged traces,
// relayed PoAs, tampered samples, dropped samples — and the Auditor
// rejects each one. Shows Goal G3 (unforgeability) end to end.
#include <cstdio>

#include "core/attacks.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/zone_owner.h"
#include "geo/units.h"
#include "net/message_bus.h"
#include "sim/scenarios.h"

using namespace alidrone;

namespace {

void report(const char* attack, const core::PoaVerdict& verdict,
            bool expect_accepted, bool expect_compliant) {
  const bool as_expected =
      verdict.accepted == expect_accepted && verdict.compliant == expect_compliant;
  std::printf("  %-34s accepted=%-5s compliant=%-5s  -> %s (%s)\n", attack,
              verdict.accepted ? "yes" : "no", verdict.compliant ? "yes" : "no",
              as_expected ? "DEFENDED" : "UNEXPECTED", verdict.detail.c_str());
}

}  // namespace

int main() {
  std::printf("AliDrone attack demo\n====================\n\n");
  constexpr std::size_t kKeyBits = 512;
  constexpr double kT0 = 1528400000.0;

  crypto::SecureRandom rng;
  core::Auditor auditor(kKeyBits, rng);
  net::MessageBus bus;
  auditor.bind(bus);

  const sim::Scenario scenario = sim::make_residential_scenario(kT0);
  core::ZoneOwner owner(kKeyBits, rng);
  for (const geo::GeoZone& z : scenario.zones) owner.register_zone(bus, z, "house");

  tee::DroneTee::Config tee_config;
  tee_config.key_bits = kKeyBits;
  tee_config.manufacturing_seed = "attack-demo-device";
  tee::DroneTee drone_tee(tee_config);
  core::DroneClient drone(drone_tee, kKeyBits, rng);
  drone.register_with_auditor(bus);

  // The honest flight that serves as raw material for the attacks.
  gps::GpsReceiverSim::Config rc;
  rc.update_rate_hz = 5.0;
  rc.start_time = scenario.route.start_time();
  gps::GpsReceiverSim receiver(rc, scenario.route.as_position_source());
  core::AdaptiveSampler policy(scenario.frame, scenario.local_zones(),
                               geo::kFaaMaxSpeedMps, 5.0);
  core::FlightConfig flight;
  flight.end_time = scenario.route.end_time();
  flight.frame = scenario.frame;
  flight.local_zones = scenario.local_zones();
  const core::ProofOfAlibi honest = drone.fly(receiver, policy, flight);

  std::printf("honest baseline: %zu TEE-signed samples\n\n", honest.samples.size());
  report("honest PoA", auditor.verify_poa(honest, kT0 + 200), true, true);

  // 1. Forged trace: fabricate an innocuous route, sign with own key.
  std::printf("\nattacks:\n");
  crypto::SecureRandom attacker_rng;
  std::vector<gps::GpsFix> fake_route;
  for (int i = 0; i < 30; ++i) {
    gps::GpsFix f;
    f.position = scenario.frame.to_geo({-8000.0 + i * 15.0, -8000.0});
    f.unix_time = kT0 + i * 5.0;
    fake_route.push_back(f);
  }
  const core::ProofOfAlibi forged = core::attacks::forge_trace(
      drone.id(), fake_route, crypto::HashAlgorithm::kSha1, kKeyBits, attacker_rng);
  report("forged trace (attacker key)", auditor.verify_poa(forged, kT0 + 200),
         false, false);

  // 2. Relay: an accomplice drone's honest PoA under this drone's id.
  tee::DroneTee::Config accomplice_config;
  accomplice_config.key_bits = kKeyBits;
  accomplice_config.manufacturing_seed = "accomplice-device";
  tee::DroneTee accomplice_tee(accomplice_config);
  core::DroneClient accomplice(accomplice_tee, kKeyBits, rng);
  accomplice.register_with_auditor(bus);
  gps::GpsReceiverSim receiver2(rc, scenario.route.as_position_source());
  core::AdaptiveSampler policy2(scenario.frame, scenario.local_zones(),
                                geo::kFaaMaxSpeedMps, 5.0);
  const core::ProofOfAlibi accomplice_poa = accomplice.fly(receiver2, policy2, flight);
  report("relayed PoA (accomplice drone)",
         auditor.verify_poa(core::attacks::relay(accomplice_poa, drone.id()),
                            kT0 + 200),
         false, false);

  // 3. Tampering: move one sample / shift one timestamp.
  const auto fix = honest.samples[5].fix();
  report("tampered position (1 sample)",
         auditor.verify_poa(core::attacks::tamper_position(
                                honest, 5,
                                {fix->position.lat_deg, fix->position.lon_deg - 0.01}),
                            kT0 + 200),
         false, false);
  report("tampered timestamp (1 sample)",
         auditor.verify_poa(core::attacks::tamper_time(honest, 5, 12.0), kT0 + 200),
         false, false);

  // 4. Dropped samples: hide the middle third of the flight.
  const core::ProofOfAlibi gapped = core::attacks::drop_samples(
      honest, honest.samples.size() / 3, honest.samples.size() * 2 / 3);
  report("dropped samples (hide a window)", auditor.verify_poa(gapped, kT0 + 200),
         true, false);

  // 5. Replay against a later incident: the old PoA cannot answer it.
  const core::AccusationRequest accusation =
      owner.make_accusation("zone-5", drone.id(), kT0 + 7200.0);
  const core::AccusationResponse response = auditor.handle_accusation(accusation);
  std::printf("  %-34s alibi_holds=%-4s           -> %s (%s)\n",
              "replayed PoA vs later incident", response.alibi_holds ? "yes" : "no",
              response.alibi_holds ? "UNEXPECTED" : "DEFENDED",
              response.detail.c_str());

  std::printf("\nall attacks defended; the only accepted-but-noncompliant case\n"
              "(dropped samples) is flagged as a violation, as designed.\n");
  return 0;
}
