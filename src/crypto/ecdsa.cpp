#include "crypto/ecdsa.h"

#include <array>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

namespace {

// NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
const BigInt& curve_p() {
  static const BigInt value = BigInt::from_string(
      "0xffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  return value;
}
const BigInt& curve_n() {
  static const BigInt value = BigInt::from_string(
      "0xffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  return value;
}
const BigInt& curve_b() {
  static const BigInt value = BigInt::from_string(
      "0x5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  return value;
}
const BigInt& curve_gx() {
  static const BigInt value = BigInt::from_string(
      "0x6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  return value;
}
const BigInt& curve_gy() {
  static const BigInt value = BigInt::from_string(
      "0x4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  return value;
}

BigInt mod_p(const BigInt& v) { return v.mod(curve_p()); }

/// Jacobian projective point: (X, Y, Z) represents (X/Z^2, Y/Z^3).
struct Jacobian {
  BigInt x;
  BigInt y;
  BigInt z;  // zero <=> point at infinity

  bool infinity() const { return z.is_zero(); }
};

Jacobian to_jacobian(const EcPoint& point) {
  if (point.infinity) return {BigInt(1), BigInt(1), BigInt(0)};
  return {point.x, point.y, BigInt(1)};
}

EcPoint to_affine(const Jacobian& point) {
  if (point.infinity()) return {BigInt(0), BigInt(0), true};
  const BigInt z_inv = point.z.mod_inverse(curve_p());
  const BigInt z_inv2 = mod_p(z_inv * z_inv);
  const BigInt z_inv3 = mod_p(z_inv2 * z_inv);
  return {mod_p(point.x * z_inv2), mod_p(point.y * z_inv3), false};
}

/// Point doubling, a = -3 specialization ("dbl-2001-b" style).
Jacobian jacobian_double(const Jacobian& point) {
  if (point.infinity() || point.y.is_zero()) return {BigInt(1), BigInt(1), BigInt(0)};

  const BigInt z2 = mod_p(point.z * point.z);
  // M = 3 (X - Z^2)(X + Z^2)   [uses a = -3]
  const BigInt m = mod_p(BigInt(3) * (point.x - z2) * (point.x + z2));
  const BigInt y2 = mod_p(point.y * point.y);
  const BigInt s = mod_p(BigInt(4) * point.x * y2);  // S = 4 X Y^2
  const BigInt x3 = mod_p(m * m - BigInt(2) * s);
  const BigInt y3 = mod_p(m * (s - x3) - BigInt(8) * y2 * y2);
  const BigInt z3 = mod_p(BigInt(2) * point.y * point.z);
  return {x3, y3, z3};
}

/// General Jacobian addition ("add-2007-bl" style, unoptimized).
Jacobian jacobian_add(const Jacobian& lhs, const Jacobian& rhs) {
  if (lhs.infinity()) return rhs;
  if (rhs.infinity()) return lhs;

  const BigInt z1z1 = mod_p(lhs.z * lhs.z);
  const BigInt z2z2 = mod_p(rhs.z * rhs.z);
  const BigInt u1 = mod_p(lhs.x * z2z2);
  const BigInt u2 = mod_p(rhs.x * z1z1);
  const BigInt s1 = mod_p(lhs.y * rhs.z * z2z2);
  const BigInt s2 = mod_p(rhs.y * lhs.z * z1z1);

  if (u1 == u2) {
    if (s1 == s2) return jacobian_double(lhs);
    return {BigInt(1), BigInt(1), BigInt(0)};  // P + (-P) = infinity
  }

  const BigInt h = mod_p(u2 - u1);
  const BigInt r = mod_p(s2 - s1);
  const BigInt h2 = mod_p(h * h);
  const BigInt h3 = mod_p(h2 * h);
  const BigInt u1h2 = mod_p(u1 * h2);
  const BigInt x3 = mod_p(r * r - h3 - BigInt(2) * u1h2);
  const BigInt y3 = mod_p(r * (u1h2 - x3) - s1 * h3);
  const BigInt z3 = mod_p(lhs.z * rhs.z * h);
  return {x3, y3, z3};
}

Jacobian jacobian_mul(const BigInt& k, const Jacobian& point) {
  if (k.is_zero() || point.infinity()) return {BigInt(1), BigInt(1), BigInt(0)};

  // 4-bit fixed window.
  std::array<Jacobian, 16> table;
  table[0] = {BigInt(1), BigInt(1), BigInt(0)};
  table[1] = point;
  for (int i = 2; i < 16; ++i) table[i] = jacobian_add(table[i - 1], point);

  Jacobian acc{BigInt(1), BigInt(1), BigInt(0)};
  const std::size_t bits = k.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = jacobian_double(acc);
    int digit = 0;
    for (int b = 3; b >= 0; --b) {
      digit = (digit << 1) | (k.bit(w * 4 + static_cast<std::size_t>(b)) ? 1 : 0);
    }
    if (digit != 0) acc = jacobian_add(acc, table[static_cast<std::size_t>(digit)]);
  }
  return acc;
}

/// Hash-to-integer for P-256 with SHA-256: bit lengths match, so this is
/// a straight big-endian interpretation (RFC 6979 bits2int).
BigInt bits2int(std::span<const std::uint8_t> digest) {
  return BigInt::from_bytes(digest);
}

Bytes int2octets(const BigInt& v) { return v.to_bytes(32); }

/// RFC 6979 deterministic nonce for (private key, message digest).
BigInt rfc6979_nonce(const BigInt& private_key, const Sha256::Digest& h1) {
  const BigInt q = curve_n();
  const Bytes x_octets = int2octets(private_key);
  const Bytes h_octets = int2octets(bits2int(h1).mod(q));

  Bytes v(32, 0x01);
  Bytes k(32, 0x00);

  const auto hmac_update = [&](std::uint8_t tag, bool include_material) {
    HmacSha256 mac(k);
    mac.update(v);
    mac.update({&tag, 1});
    if (include_material) {
      mac.update(x_octets);
      mac.update(h_octets);
    }
    const auto digest = mac.finalize();
    k.assign(digest.begin(), digest.end());
    const auto v_digest = HmacSha256::mac(k, v);
    v.assign(v_digest.begin(), v_digest.end());
  };

  hmac_update(0x00, true);
  hmac_update(0x01, true);

  for (;;) {
    const auto t = HmacSha256::mac(k, v);
    v.assign(t.begin(), t.end());
    const BigInt candidate = bits2int(v);
    if (!candidate.is_zero() && candidate < q) return candidate;
    hmac_update(0x00, false);
  }
}

}  // namespace

const BigInt& P256::p() { return curve_p(); }
const BigInt& P256::n() { return curve_n(); }
const BigInt& P256::b() { return curve_b(); }

EcPoint P256::generator() { return {curve_gx(), curve_gy(), false}; }

bool P256::on_curve(const EcPoint& point) {
  if (point.infinity) return true;
  if (point.x.is_negative() || point.x >= curve_p()) return false;
  if (point.y.is_negative() || point.y >= curve_p()) return false;
  const BigInt lhs = mod_p(point.y * point.y);
  const BigInt rhs = mod_p(point.x * point.x * point.x - BigInt(3) * point.x + curve_b());
  return lhs == rhs;
}

EcPoint P256::add(const EcPoint& lhs, const EcPoint& rhs) {
  return to_affine(jacobian_add(to_jacobian(lhs), to_jacobian(rhs)));
}

EcPoint P256::negate(const EcPoint& point) {
  if (point.infinity) return point;
  return {point.x, mod_p(-point.y), false};
}

EcPoint P256::mul(const BigInt& k, const EcPoint& point) {
  if (k.is_negative()) return mul(-k, negate(point));
  return to_affine(jacobian_mul(k, to_jacobian(point)));
}

Bytes P256::encode(const EcPoint& point) {
  if (point.infinity) return {0x00};
  Bytes out{0x04};
  const Bytes x = point.x.to_bytes(32);
  const Bytes y = point.y.to_bytes(32);
  out.insert(out.end(), x.begin(), x.end());
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<EcPoint> P256::decode(std::span<const std::uint8_t> data) {
  if (data.size() == 1 && data[0] == 0x00) return EcPoint{BigInt(0), BigInt(0), true};
  if (data.size() != 65 || data[0] != 0x04) return std::nullopt;
  EcPoint point;
  point.x = BigInt::from_bytes(data.subspan(1, 32));
  point.y = BigInt::from_bytes(data.subspan(33, 32));
  if (!on_curve(point)) return std::nullopt;
  return point;
}

Bytes EcdsaSignature::to_bytes() const {
  Bytes out = r.to_bytes(32);
  const Bytes s_bytes = s.to_bytes(32);
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::from_bytes(
    std::span<const std::uint8_t> data) {
  if (data.size() != 64) return std::nullopt;
  return EcdsaSignature{BigInt::from_bytes(data.subspan(0, 32)),
                        BigInt::from_bytes(data.subspan(32, 32))};
}

EcdsaKeyPair ecdsa_generate(RandomSource& rng) {
  const BigInt d = rng.random_range(BigInt(1), curve_n() - BigInt(1));
  return {d, P256::mul(d, P256::generator())};
}

EcdsaSignature ecdsa_sign(const BigInt& private_key,
                          std::span<const std::uint8_t> message) {
  const BigInt q = curve_n();
  const Sha256::Digest h1 = Sha256::hash(message);
  const BigInt e = bits2int(h1).mod(q);

  BigInt k = rfc6979_nonce(private_key, h1);
  for (;;) {
    const EcPoint kg = P256::mul(k, P256::generator());
    const BigInt r = kg.x.mod(q);
    if (!r.is_zero()) {
      const BigInt s = (k.mod_inverse(q) * (e + r * private_key)).mod(q);
      if (!s.is_zero()) return {r, s};
    }
    // Vanishing r or s is astronomically unlikely; re-derive by hashing
    // the nonce (stays deterministic).
    k = bits2int(Sha256::hash(k.to_bytes(32))).mod(q - BigInt(1)) + BigInt(1);
  }
}

bool ecdsa_verify(const EcPoint& public_key, std::span<const std::uint8_t> message,
                  const EcdsaSignature& signature) {
  const BigInt& q = curve_n();
  if (signature.r < BigInt(1) || signature.r >= q) return false;
  if (signature.s < BigInt(1) || signature.s >= q) return false;
  if (public_key.infinity || !P256::on_curve(public_key)) return false;

  const BigInt e = bits2int(Sha256::hash(message)).mod(q);
  const BigInt w = signature.s.mod_inverse(q);
  const BigInt u1 = (e * w).mod(q);
  const BigInt u2 = (signature.r * w).mod(q);

  const EcPoint point =
      P256::add(P256::mul(u1, P256::generator()), P256::mul(u2, public_key));
  if (point.infinity) return false;
  return point.x.mod(q) == signature.r;
}

}  // namespace alidrone::crypto
