// Byte-buffer helpers shared across the crypto library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace alidrone::crypto {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of a byte buffer.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parse a hex string (even length, upper or lower case).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Bytes of a string, unchanged.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(std::span<const std::uint8_t> data) {
  return std::string(data.begin(), data.end());
}

/// Constant-time equality (length leaks; contents do not).
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

}  // namespace alidrone::crypto
