// SHA-256 (FIPS 180-4). The preferred digest for AliDrone signatures.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/bytes.h"

namespace alidrone::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(std::span<const std::uint8_t> data);
  Digest finalize();
  void reset();

  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace alidrone::crypto
