#include "crypto/montgomery.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace alidrone::crypto {

namespace {

using Limb = limb64::Limb;

/// Limb scratch: stack-backed up to the largest arena any protocol-size
/// (<= 4096-bit) operation needs, heap-backed beyond. The fallback keeps
/// the engine general while the verify path never allocates.
class Scratch {
 public:
  explicit Scratch(std::size_t n) {
    if (n <= sizeof(stack_) / sizeof(Limb)) {
      data_ = stack_;
      std::fill(stack_, stack_ + n, 0);
    } else {
      heap_.assign(n, 0);
      data_ = heap_.data();
    }
  }
  Limb* data() { return data_; }

 private:
  // pow() needs the most: a 16-entry window table + accumulator + k + 2
  // REDC limbs = 18k + 2.
  Limb stack_[18 * limb64::kMaxProtocolLimbs + 2];
  std::vector<Limb> heap_;
  Limb* data_;
};

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus) : m_(modulus) {
  if (m_.is_negative() || m_.is_even() || m_ < BigInt(3)) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd and >= 3");
  }
  k_ = m_.limb64_count();
  constants_.assign(3 * k_, 0);
  Limb* m64 = constants_.data();
  Limb* r2 = m64 + k_;
  Limb* one = r2 + k_;

  m_.to_limbs64(m64, k_);
  m_prime_ = limb64::neg_inverse(m64[0]);

  // R = 2^(64k): R mod m and R^2 mod m via shifting (setup-only division).
  const BigInt r = BigInt(1) << (64 * k_);
  const BigInt one_mont = r.mod(m_);
  one_mont.to_limbs64(one, k_);
  (one_mont * one_mont).mod(m_).to_limbs64(r2, k_);

  mont_ = limb64::Mont{k_, m_prime_, m64, r2, one};
}

BigInt MontgomeryContext::to_mont(const BigInt& a) const {
  // Reduce first: to_mont accepts any integer, while the kernel wants a
  // k-limb value (a * r2 < R * m keeps REDC exact).
  const BigInt reduced = a.mod(m_);
  Scratch scratch(2 * k_ + 2);
  Limb* x = scratch.data();
  Limb* t = x + k_;
  reduced.to_limbs64(x, k_);
  limb64::mont_mul(mont_, x, mont_.r2, x, t);
  return BigInt::from_limbs64(x, k_);
}

BigInt MontgomeryContext::from_mont(const BigInt& a) const {
  // REDC(a mod m) = a * R^-1 mod m for any a, so reducing oversized
  // inputs first preserves the result.
  BigInt reduced;
  const BigInt* p = &a;
  if (a.is_negative() || a.limb64_count() > k_) {
    reduced = a.mod(m_);
    p = &reduced;
  }
  Scratch scratch(2 * k_ + 2);
  Limb* x = scratch.data();
  Limb* t = x + k_;
  p->to_limbs64(x, k_);
  limb64::redc(mont_, x, x, t);
  return BigInt::from_limbs64(x, k_);
}

BigInt MontgomeryContext::mul(const BigInt& a, const BigInt& b) const {
  BigInt ra, rb;
  const BigInt* pa = &a;
  const BigInt* pb = &b;
  if (a.is_negative() || a.limb64_count() > k_) {
    ra = a.mod(m_);
    pa = &ra;
  }
  if (b.is_negative() || b.limb64_count() > k_) {
    rb = b.mod(m_);
    pb = &rb;
  }
  Scratch scratch(3 * k_ + 2);
  Limb* x = scratch.data();
  Limb* y = x + k_;
  Limb* t = y + k_;
  pa->to_limbs64(x, k_);
  pb->to_limbs64(y, k_);
  limb64::mont_mul(mont_, x, y, x, t);
  return BigInt::from_limbs64(x, k_);
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exponent) const {
  if (exponent.is_negative()) {
    throw std::domain_error("MontgomeryContext::pow: negative exponent");
  }
  if (exponent.is_zero()) return BigInt(1).mod(m_);

  // Bring the base under R: any k-limb value maps correctly through
  // REDC (the first Montgomery product reduces it mod m), so only wider
  // or negative inputs pay the division.
  BigInt reduced;
  const BigInt* b = &base;
  if (base.is_negative() || base.limb64_count() > k_) {
    reduced = base.mod(m_);
    b = &reduced;
  }

  // One arena: 16-entry window table (entry 1 doubles as the Montgomery
  // base), accumulator, k + 2 REDC limbs.
  Scratch scratch(17 * k_ + k_ + 2);
  Limb* table = scratch.data();
  Limb* acc = table + 16 * k_;
  Limb* t = acc + k_;
  Limb* base_m = table + k_;  // table entry 1 = base^1

  b->to_limbs64(base_m, k_);
  limb64::mont_mul(mont_, base_m, mont_.r2, base_m, t);

  const std::size_t bits = exponent.bit_length();

  // Short exponents (RSA verification: e = 65537, 17 bits) take plain
  // square-and-multiply: the 4-bit window's 14-entry table build would
  // cost more products than the whole exponentiation.
  if (bits <= 64) {
    std::copy(base_m, base_m + k_, acc);
    for (std::size_t j = bits - 1; j-- > 0;) {
      limb64::mont_mul(mont_, acc, acc, acc, t);
      if (exponent.bit(j)) limb64::mont_mul(mont_, acc, base_m, acc, t);
    }
    limb64::redc(mont_, acc, acc, t);
    return BigInt::from_limbs64(acc, k_);
  }

  // 4-bit fixed window over Montgomery-domain values.
  std::copy(mont_.one, mont_.one + k_, table);  // entry 0 = 1
  for (std::size_t i = 2; i < 16; ++i) {
    limb64::mont_mul(mont_, table + (i - 1) * k_, base_m, table + i * k_, t);
  }

  std::copy(mont_.one, mont_.one + k_, acc);
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) limb64::mont_mul(mont_, acc, acc, acc, t);
    int digit = 0;
    for (int bi = 3; bi >= 0; --bi) {
      digit = (digit << 1) |
              (exponent.bit(w * 4 + static_cast<std::size_t>(bi)) ? 1 : 0);
    }
    if (digit != 0) {
      limb64::mont_mul(mont_, acc, table + static_cast<std::size_t>(digit) * k_,
                       acc, t);
    }
  }
  limb64::redc(mont_, acc, acc, t);
  return BigInt::from_limbs64(acc, k_);
}

int FixedExponentPlan::choose_window_bits(std::size_t exponent_bits) {
  // Minimize (2^(w-1) table products) + (bits/(w+1) expected multiplies).
  // The crossover points put RSA CRT exponents at 5 bits (1024-bit keys)
  // and 6 bits (2048-bit and up).
  if (exponent_bits < 24) return 1;
  if (exponent_bits < 80) return 3;
  if (exponent_bits < 256) return 4;
  if (exponent_bits < 896) return 5;
  return 6;
}

FixedExponentPlan::FixedExponentPlan(
    std::shared_ptr<const MontgomeryContext> context, const BigInt& exponent)
    : ctx_(std::move(context)), exponent_(exponent) {
  if (ctx_ == nullptr) {
    throw std::invalid_argument("FixedExponentPlan: null context");
  }
  if (exponent_.is_negative()) {
    throw std::domain_error("FixedExponentPlan: negative exponent");
  }

  const std::size_t bits = exponent_.bit_length();
  if (bits == 0) return;  // pow() handles the x^0 case directly

  window_bits_ = choose_window_bits(bits);

  // Arena layout: odd-power table (2^(w-1) entries), base^2, accumulator,
  // REDC scratch — allocated once here so pow() never allocates limbs.
  const std::size_t k = ctx_->k_;
  const std::size_t entries = std::size_t{1} << (window_bits_ - 1);
  arena_.assign((entries + 2) * k + k + 2, 0);

  // Left-to-right sliding-window decomposition, done once. Each step is a
  // run of squarings followed by one multiply with an odd window value
  // (or none, for trailing zero bits). The first step's squarings act on
  // an accumulator equal to 1, so pow() skips them and seeds the
  // accumulator from the table instead.
  std::size_t i = bits;  // scan position (1 past the next bit to consume)
  std::uint32_t squares = 0;
  while (i > 0) {
    if (!exponent_.bit(i - 1)) {
      ++squares;
      --i;
      continue;
    }
    // Window [i-1 .. j]: at most window_bits_ wide, ends on a set bit.
    std::size_t j = i >= static_cast<std::size_t>(window_bits_)
                        ? i - static_cast<std::size_t>(window_bits_)
                        : 0;
    while (!exponent_.bit(j)) ++j;
    std::uint32_t digit = 0;
    for (std::size_t b = i; b-- > j;) {
      digit = (digit << 1) | (exponent_.bit(b) ? 1u : 0u);
    }
    const std::uint32_t width = static_cast<std::uint32_t>(i - j);
    program_.push_back(
        Step{squares + width, static_cast<std::int32_t>((digit - 1) / 2)});
    squares = 0;
    i = j;
  }
  if (squares > 0) program_.push_back(Step{squares, -1});
}

BigInt FixedExponentPlan::pow(const BigInt& base) {
  const MontgomeryContext& ctx = *ctx_;
  if (exponent_.is_zero()) return BigInt(1).mod(ctx.m_);

  const std::size_t k = ctx.k_;
  const limb64::Mont& mont = ctx.mont_;
  const std::size_t entries = std::size_t{1} << (window_bits_ - 1);
  Limb* table = arena_.data();
  Limb* base_sq = table + entries * k;
  Limb* acc = base_sq + k;
  Limb* t = acc + k;

  // Base into Montgomery form; only oversized or negative inputs pay the
  // division (REDC absorbs any k-limb value).
  BigInt reduced;
  const BigInt* b = &base;
  if (base.is_negative() || base.limb64_count() > k) {
    reduced = base.mod(ctx.m_);
    b = &reduced;
  }
  b->to_limbs64(table, k);  // table entry 0 = base^1
  limb64::mont_mul(mont, table, mont.r2, table, t);
  if (entries > 1) {
    limb64::mont_mul(mont, table, table, base_sq, t);
    for (std::size_t e = 1; e < entries; ++e) {
      limb64::mont_mul(mont, table + (e - 1) * k, base_sq, table + e * k, t);
    }
  }

  // Replay. The leading step seeds the accumulator (its squarings would
  // only square 1), every later step is squares-then-optional-multiply.
  const Limb* seed = table + static_cast<std::size_t>(program_.front().table_index) * k;
  std::copy(seed, seed + k, acc);
  for (std::size_t s = 1; s < program_.size(); ++s) {
    const Step& step = program_[s];
    for (std::uint32_t q = 0; q < step.squares; ++q) {
      limb64::mont_mul(mont, acc, acc, acc, t);
    }
    if (step.table_index >= 0) {
      limb64::mont_mul(mont, acc,
                       table + static_cast<std::size_t>(step.table_index) * k,
                       acc, t);
    }
  }
  limb64::redc(mont, acc, acc, t);
  return BigInt::from_limbs64(acc, k);
}

MontgomeryContextCache::MontgomeryContextCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      obs_hits_(&obs::MetricsRegistry::global().counter("crypto.mont.cache_hits")),
      obs_misses_(
          &obs::MetricsRegistry::global().counter("crypto.mont.cache_misses")) {}

std::shared_ptr<const MontgomeryContext> MontgomeryContextCache::get(
    const BigInt& modulus) {
  const Bytes key_bytes = modulus.to_bytes();
  std::string key(key_bytes.begin(), key_bytes.end());

  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      obs_hits_->increment();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.context;
    }
    ++misses_;
    obs_misses_->increment();
  }

  // Build outside the lock: R^2 setup is the expensive part and must not
  // serialize concurrent verifiers on unrelated moduli.
  auto context = std::make_shared<const MontgomeryContext>(modulus);

  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Another thread built it while we did; keep the cached copy.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.context;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{context, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return context;
}

std::size_t MontgomeryContextCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t MontgomeryContextCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t MontgomeryContextCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void MontgomeryContextCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
}

MontgomeryContextCache& MontgomeryContextCache::global() {
  static MontgomeryContextCache cache;
  return cache;
}

}  // namespace alidrone::crypto
