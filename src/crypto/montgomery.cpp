#include "crypto/montgomery.h"

#include <stdexcept>

namespace alidrone::crypto {

namespace {

/// Inverse of odd x modulo 2^32 via Newton-Hensel lifting.
std::uint32_t inverse_mod_2_32(std::uint32_t x) {
  std::uint32_t inv = x;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;  // doubles the number of correct bits
  }
  return inv;
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus) : m_(modulus) {
  if (m_.is_negative() || m_.is_even() || m_ < BigInt(3)) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd and >= 3");
  }
  k_ = m_.limbs_.size();
  m_prime_ = ~inverse_mod_2_32(m_.limbs_[0]) + 1;  // -m^-1 mod 2^32

  // R = 2^(32k): R mod m and R^2 mod m via shifting (setup-only division).
  const BigInt r = BigInt(1) << (32 * k_);
  one_mont_ = r.mod(m_);
  r2_ = (one_mont_ * one_mont_).mod(m_);
}

std::vector<std::uint32_t> MontgomeryContext::redc(std::vector<std::uint32_t> t) const {
  t.resize(2 * k_ + 1, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint32_t u = t[i] * m_prime_;  // mod 2^32 implicitly
    // t += u * m << (32 i)
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t sum =
          static_cast<std::uint64_t>(t[i + j]) +
          static_cast<std::uint64_t>(u) * m_.limbs_[j] + carry;
      t[i + j] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
      carry = sum >> 32;
    }
    std::size_t idx = i + k_;
    while (carry != 0) {
      const std::uint64_t sum = static_cast<std::uint64_t>(t[idx]) + carry;
      t[idx] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
      carry = sum >> 32;
      ++idx;
    }
  }

  // result = t >> 32k
  std::vector<std::uint32_t> out(t.begin() + static_cast<std::ptrdiff_t>(k_),
                                 t.end());
  while (!out.empty() && out.back() == 0) out.pop_back();

  BigInt result;
  result.limbs_ = std::move(out);
  if (result.compare_magnitude(m_) >= 0) result = result - m_;
  return std::move(result.limbs_);
}

BigInt MontgomeryContext::to_mont(const BigInt& a) const {
  return mul(a.mod(m_), r2_);
}

BigInt MontgomeryContext::from_mont(const BigInt& a) const {
  BigInt result;
  result.limbs_ = redc(a.limbs_);
  return result;
}

BigInt MontgomeryContext::mul(const BigInt& a, const BigInt& b) const {
  const BigInt product = a * b;
  BigInt result;
  result.limbs_ = redc(product.limbs_);
  return result;
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exponent) const {
  if (exponent.is_negative()) {
    throw std::domain_error("MontgomeryContext::pow: negative exponent");
  }
  if (exponent.is_zero()) return BigInt(1).mod(m_);

  const BigInt base_m = to_mont(base);

  // 4-bit fixed window over Montgomery-domain values.
  std::vector<BigInt> table(16);
  table[0] = one_mont_;
  table[1] = base_m;
  for (int i = 2; i < 16; ++i) table[i] = mul(table[i - 1], base_m);

  BigInt acc = one_mont_;
  const std::size_t bits = exponent.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = mul(acc, acc);
    int digit = 0;
    for (int b = 3; b >= 0; --b) {
      digit = (digit << 1) |
              (exponent.bit(w * 4 + static_cast<std::size_t>(b)) ? 1 : 0);
    }
    if (digit != 0) acc = mul(acc, table[static_cast<std::size_t>(digit)]);
  }
  return from_mont(acc);
}

}  // namespace alidrone::crypto
