#include "crypto/montgomery.h"

#include <stdexcept>
#include <utility>

namespace alidrone::crypto {

namespace {

/// Inverse of odd x modulo 2^32 via Newton-Hensel lifting.
std::uint32_t inverse_mod_2_32(std::uint32_t x) {
  std::uint32_t inv = x;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;  // doubles the number of correct bits
  }
  return inv;
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus) : m_(modulus) {
  if (m_.is_negative() || m_.is_even() || m_ < BigInt(3)) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd and >= 3");
  }
  k_ = m_.limbs_.size();
  m_prime_ = ~inverse_mod_2_32(m_.limbs_[0]) + 1;  // -m^-1 mod 2^32

  // R = 2^(32k): R mod m and R^2 mod m via shifting (setup-only division).
  const BigInt r = BigInt(1) << (32 * k_);
  one_mont_ = r.mod(m_);
  r2_ = (one_mont_ * one_mont_).mod(m_);
}

void MontgomeryContext::redc_in_place(std::vector<std::uint32_t>& t) const {
  t.resize(2 * k_ + 1, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint32_t u = t[i] * m_prime_;  // mod 2^32 implicitly
    // t += u * m << (32 i)
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t sum =
          static_cast<std::uint64_t>(t[i + j]) +
          static_cast<std::uint64_t>(u) * m_.limbs_[j] + carry;
      t[i + j] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
      carry = sum >> 32;
    }
    std::size_t idx = i + k_;
    while (carry != 0) {
      const std::uint64_t sum = static_cast<std::uint64_t>(t[idx]) + carry;
      t[idx] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
      carry = sum >> 32;
      ++idx;
    }
  }

  // result = t >> 32k (a memmove within the buffer, not a fresh vector)
  t.erase(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_));
  while (!t.empty() && t.back() == 0) t.pop_back();

  // Conditional final subtraction, also in place.
  if (BigInt::cmp_mag(t, m_.limbs_) >= 0) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::int64_t mi =
          i < m_.limbs_.size() ? static_cast<std::int64_t>(m_.limbs_[i]) : 0;
      std::int64_t diff = static_cast<std::int64_t>(t[i]) - mi - borrow;
      borrow = diff < 0 ? 1 : 0;
      if (diff < 0) diff += std::int64_t{1} << 32;
      t[i] = static_cast<std::uint32_t>(diff);
    }
    while (!t.empty() && t.back() == 0) t.pop_back();
  }
}

void MontgomeryContext::mul_into(const BigInt& a, const BigInt& b, BigInt& out,
                                 std::vector<std::uint32_t>& scratch) const {
  // Schoolbook product into the reusable scratch buffer. Row i writes
  // scratch[i + b_size] exactly once (nothing above i + b_size - 1 was
  // written by earlier rows), so the final carry is an assignment.
  const std::vector<std::uint32_t>& al = a.limbs_;
  const std::vector<std::uint32_t>& bl = b.limbs_;
  scratch.assign(al.size() + bl.size(), 0);
  for (std::size_t i = 0; i < al.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = al[i];
    for (std::size_t j = 0; j < bl.size(); ++j) {
      const std::uint64_t cur = scratch[i + j] + ai * bl[j] + carry;
      scratch[i + j] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    scratch[i + bl.size()] = static_cast<std::uint32_t>(carry);
  }

  redc_in_place(scratch);
  out.negative_ = false;
  out.limbs_.assign(scratch.begin(), scratch.end());  // reuses out's capacity
}

BigInt MontgomeryContext::to_mont(const BigInt& a) const {
  return mul(a.mod(m_), r2_);
}

BigInt MontgomeryContext::from_mont(const BigInt& a) const {
  std::vector<std::uint32_t> t = a.limbs_;
  redc_in_place(t);
  BigInt result;
  result.limbs_ = std::move(t);
  return result;
}

BigInt MontgomeryContext::mul(const BigInt& a, const BigInt& b) const {
  BigInt out;
  std::vector<std::uint32_t> scratch;
  mul_into(a, b, out, scratch);
  return out;
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exponent) const {
  if (exponent.is_negative()) {
    throw std::domain_error("MontgomeryContext::pow: negative exponent");
  }
  if (exponent.is_zero()) return BigInt(1).mod(m_);

  const BigInt base_m = to_mont(base);
  const std::size_t bits = exponent.bit_length();

  // Short exponents (RSA verification: e = 65537, 17 bits) take plain
  // square-and-multiply: the 4-bit window's 14-entry table build would
  // cost more products than the whole exponentiation.
  if (bits <= 32) {
    std::vector<std::uint32_t> scratch;
    scratch.reserve(2 * k_ + 1);
    BigInt acc = base_m;
    BigInt tmp;
    for (std::size_t j = bits - 1; j-- > 0;) {
      mul_into(acc, acc, tmp, scratch);
      std::swap(acc, tmp);
      if (exponent.bit(j)) {
        mul_into(acc, base_m, tmp, scratch);
        std::swap(acc, tmp);
      }
    }
    return from_mont(acc);
  }

  // 4-bit fixed window over Montgomery-domain values.
  std::vector<BigInt> table(16);
  table[0] = one_mont_;
  table[1] = base_m;
  std::vector<std::uint32_t> scratch;
  scratch.reserve(2 * k_ + 1);
  for (int i = 2; i < 16; ++i) mul_into(table[i - 1], base_m, table[i], scratch);

  BigInt acc = one_mont_;
  BigInt tmp;
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) {
      mul_into(acc, acc, tmp, scratch);
      std::swap(acc, tmp);
    }
    int digit = 0;
    for (int b = 3; b >= 0; --b) {
      digit = (digit << 1) |
              (exponent.bit(w * 4 + static_cast<std::size_t>(b)) ? 1 : 0);
    }
    if (digit != 0) {
      mul_into(acc, table[static_cast<std::size_t>(digit)], tmp, scratch);
      std::swap(acc, tmp);
    }
  }
  return from_mont(acc);
}

int FixedExponentPlan::choose_window_bits(std::size_t exponent_bits) {
  // Minimize (2^(w-1) table products) + (bits/(w+1) expected multiplies).
  // The crossover points put RSA CRT exponents at 5 bits (1024-bit keys)
  // and 6 bits (2048-bit and up).
  if (exponent_bits < 24) return 1;
  if (exponent_bits < 80) return 3;
  if (exponent_bits < 256) return 4;
  if (exponent_bits < 896) return 5;
  return 6;
}

FixedExponentPlan::FixedExponentPlan(
    std::shared_ptr<const MontgomeryContext> context, const BigInt& exponent)
    : ctx_(std::move(context)), exponent_(exponent) {
  if (ctx_ == nullptr) {
    throw std::invalid_argument("FixedExponentPlan: null context");
  }
  if (exponent_.is_negative()) {
    throw std::domain_error("FixedExponentPlan: negative exponent");
  }

  const std::size_t bits = exponent_.bit_length();
  if (bits == 0) return;  // pow() handles the x^0 case directly

  window_bits_ = choose_window_bits(bits);
  table_.resize(std::size_t{1} << (window_bits_ - 1));

  // Left-to-right sliding-window decomposition, done once. Each step is a
  // run of squarings followed by one multiply with an odd window value
  // (or none, for trailing zero bits). The first step's squarings act on
  // an accumulator equal to 1, so pow() skips them and seeds the
  // accumulator from the table instead.
  std::size_t i = bits;  // scan position (1 past the next bit to consume)
  std::uint32_t squares = 0;
  while (i > 0) {
    if (!exponent_.bit(i - 1)) {
      ++squares;
      --i;
      continue;
    }
    // Window [i-1 .. j]: at most window_bits_ wide, ends on a set bit.
    std::size_t j = i >= static_cast<std::size_t>(window_bits_)
                        ? i - static_cast<std::size_t>(window_bits_)
                        : 0;
    while (!exponent_.bit(j)) ++j;
    std::uint32_t digit = 0;
    for (std::size_t b = i; b-- > j;) {
      digit = (digit << 1) | (exponent_.bit(b) ? 1u : 0u);
    }
    const std::uint32_t width = static_cast<std::uint32_t>(i - j);
    program_.push_back(
        Step{squares + width, static_cast<std::int32_t>((digit - 1) / 2)});
    squares = 0;
    i = j;
  }
  if (squares > 0) program_.push_back(Step{squares, -1});
}

BigInt FixedExponentPlan::pow(const BigInt& base) {
  const MontgomeryContext& ctx = *ctx_;
  if (exponent_.is_zero()) return BigInt(1).mod(ctx.m_);

  scratch_.reserve(2 * ctx.k_ + 1);
  table_[0] = ctx.to_mont(base);
  if (table_.size() > 1) {
    ctx.mul_into(table_[0], table_[0], base_sq_, scratch_);
    for (std::size_t t = 1; t < table_.size(); ++t) {
      ctx.mul_into(table_[t - 1], base_sq_, table_[t], scratch_);
    }
  }

  // Replay. The leading step seeds the accumulator (its squarings would
  // only square 1), every later step is squares-then-optional-multiply.
  acc_ = table_[static_cast<std::size_t>(program_.front().table_index)];
  for (std::size_t s = 1; s < program_.size(); ++s) {
    const Step& step = program_[s];
    for (std::uint32_t q = 0; q < step.squares; ++q) {
      ctx.mul_into(acc_, acc_, tmp_, scratch_);
      std::swap(acc_, tmp_);
    }
    if (step.table_index >= 0) {
      ctx.mul_into(acc_, table_[static_cast<std::size_t>(step.table_index)],
                   tmp_, scratch_);
      std::swap(acc_, tmp_);
    }
  }
  return ctx.from_mont(acc_);
}

MontgomeryContextCache::MontgomeryContextCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const MontgomeryContext> MontgomeryContextCache::get(
    const BigInt& modulus) {
  const Bytes key_bytes = modulus.to_bytes();
  std::string key(key_bytes.begin(), key_bytes.end());

  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.context;
    }
    ++misses_;
  }

  // Build outside the lock: R^2 setup is the expensive part and must not
  // serialize concurrent verifiers on unrelated moduli.
  auto context = std::make_shared<const MontgomeryContext>(modulus);

  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Another thread built it while we did; keep the cached copy.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.context;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{context, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return context;
}

std::size_t MontgomeryContextCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t MontgomeryContextCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t MontgomeryContextCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void MontgomeryContextCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
}

MontgomeryContextCache& MontgomeryContextCache::global() {
  static MontgomeryContextCache cache;
  return cache;
}

}  // namespace alidrone::crypto
