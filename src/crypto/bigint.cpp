#include "crypto/bigint.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/montgomery.h"

namespace alidrone::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1 : static_cast<std::uint64_t>(value);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xFFFFFFFFu));
    mag >>= 32;
  }
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_string(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) throw std::invalid_argument("BigInt::from_string: empty input");

  BigInt result;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    if (s.empty()) throw std::invalid_argument("BigInt::from_string: empty hex");
    for (const char c : s) {
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        throw std::invalid_argument("BigInt::from_string: bad hex digit");
      }
      result = (result << 4) + BigInt(d);
    }
  } else {
    const BigInt ten(10);
    for (const char c : s) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("BigInt::from_string: bad decimal digit");
      }
      result = result * ten + BigInt(c - '0');
    }
  }
  result.negative_ = neg && !result.is_zero();
  return result;
}

BigInt BigInt::from_bytes(std::span<const std::uint8_t> be_bytes) {
  BigInt result;
  const std::size_t n = be_bytes.size();
  result.limbs_.assign((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // be_bytes[i] is the (n-1-i)-th byte counted from the least significant.
    const std::size_t byte_index = n - 1 - i;
    result.limbs_[byte_index / 4] |=
        static_cast<std::uint32_t>(be_bytes[i]) << (8 * (byte_index % 4));
  }
  result.trim();
  return result;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 32 +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

Bytes BigInt::to_bytes() const {
  const std::size_t bits = bit_length();
  const std::size_t len = bits == 0 ? 1 : (bits + 7) / 8;
  return to_bytes(len);
}

Bytes BigInt::to_bytes(std::size_t length) const {
  const std::size_t bits = bit_length();
  const std::size_t need = bits == 0 ? 0 : (bits + 7) / 8;
  if (need > length) {
    throw std::length_error("BigInt::to_bytes: value does not fit requested length");
  }
  Bytes out(length, 0);
  for (std::size_t i = 0; i < need; ++i) {
    // i-th byte from the least significant end.
    const std::uint32_t limb = limbs_[i / 4];
    out[length - 1 - i] = static_cast<std::uint8_t>((limb >> (8 * (i % 4))) & 0xFF);
  }
  return out;
}

void BigInt::to_limbs64(std::uint64_t* out, std::size_t n) const {
  if (limb64_count() > n) {
    throw std::length_error("BigInt::to_limbs64: value does not fit");
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(limbs_[i]) << (32 * (i % 2));
  }
}

BigInt BigInt::from_limbs64(const std::uint64_t* limbs, std::size_t n) {
  BigInt out;
  out.limbs_.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out.limbs_.push_back(static_cast<std::uint32_t>(limbs[i] & 0xFFFFFFFFu));
    out.limbs_.push_back(static_cast<std::uint32_t>(limbs[i] >> 32));
  }
  out.trim();
  return out;
}

std::string BigInt::to_hex_string() const {
  if (is_zero()) return "0x0";
  std::string out = negative_ ? "-0x" : "0x";
  static constexpr char kDigits[] = "0123456789abcdef";
  bool started = false;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      const int d = (limbs_[i] >> shift) & 0xF;
      if (!started && d == 0) continue;
      started = true;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::string BigInt::to_decimal_string() const {
  if (is_zero()) return "0";
  std::string digits;
  std::vector<std::uint32_t> work = limbs_;
  while (!work.empty()) {
    // Divide magnitude by 10^9 to extract 9 decimal digits at a time.
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (work.empty() && rem == 0) break;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::compare_magnitude(const BigInt& o) const {
  return cmp_mag(limbs_, o.limbs_);
}

int BigInt::compare(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_ ? -1 : 1;
  const int mag = cmp_mag(limbs_, o.limbs_);
  return negative_ ? -mag : mag;
}

std::vector<std::uint32_t> BigInt::add_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<std::uint32_t>(sum & 0xFFFFFFFFu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

namespace {

/// Schoolbook product of limb magnitudes.
std::vector<std::uint32_t> mul_school(const std::vector<std::uint32_t>& a,
                                      const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      const std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// In-place limb-vector addition: acc += v << (32 * shift).
void add_shifted(std::vector<std::uint32_t>& acc,
                 const std::vector<std::uint32_t>& v, std::size_t shift) {
  if (acc.size() < v.size() + shift + 1) acc.resize(v.size() + shift + 1, 0);
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < v.size(); ++i) {
    const std::uint64_t sum =
        static_cast<std::uint64_t>(acc[i + shift]) + v[i] + carry;
    acc[i + shift] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  while (carry != 0) {
    const std::uint64_t sum = static_cast<std::uint64_t>(acc[i + shift]) + carry;
    acc[i + shift] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
    ++i;
  }
}

}  // namespace

std::vector<std::uint32_t> BigInt::mul_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};

  // Karatsuba above this limb count (~1024 bits); schoolbook below, where
  // its lower constant factor wins.
  constexpr std::size_t kKaratsubaThreshold = 32;
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return mul_school(a, b);
  }

  // Split at half the larger operand: x = x1*B^h + x0.
  const std::size_t h = std::max(a.size(), b.size()) / 2;
  const auto lo = [&](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> out(v.begin(),
                                   v.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(h, v.size())));
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  const auto hi = [&](const std::vector<std::uint32_t>& v) {
    if (v.size() <= h) return std::vector<std::uint32_t>{};
    return std::vector<std::uint32_t>(v.begin() + static_cast<std::ptrdiff_t>(h),
                                      v.end());
  };

  const std::vector<std::uint32_t> a0 = lo(a);
  const std::vector<std::uint32_t> a1 = hi(a);
  const std::vector<std::uint32_t> b0 = lo(b);
  const std::vector<std::uint32_t> b1 = hi(b);

  const std::vector<std::uint32_t> z0 = mul_mag(a0, b0);
  const std::vector<std::uint32_t> z2 = mul_mag(a1, b1);
  // z1 = (a0+a1)(b0+b1) - z0 - z2, computed via BigInt to reuse borrow
  // handling (all quantities are non-negative).
  BigInt sum_a;
  sum_a.limbs_ = add_mag(a0, a1);
  BigInt sum_b;
  sum_b.limbs_ = add_mag(b0, b1);
  BigInt cross;
  cross.limbs_ = mul_mag(sum_a.limbs_, sum_b.limbs_);
  BigInt sub;
  sub.limbs_ = add_mag(z0, z2);
  const BigInt z1 = cross - sub;

  std::vector<std::uint32_t> out = z0;
  add_shifted(out, z1.limbs_, h);
  add_shifted(out, z2, 2 * h);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  if (negative_ == o.negative_) {
    out.limbs_ = add_mag(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else {
    const int cmp = cmp_mag(limbs_, o.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = sub_mag(limbs_, o.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = sub_mag(o.limbs_, limbs_);
      out.negative_ = o.negative_;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

void BigInt::add_mag_inplace(const std::vector<std::uint32_t>& b) {
  if (limbs_.size() < b.size()) limbs_.resize(b.size(), 0);
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < b.size(); ++i) {
    const std::uint64_t sum = static_cast<std::uint64_t>(limbs_[i]) + b[i] + carry;
    limbs_[i] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  for (; carry != 0 && i < limbs_.size(); ++i) {
    const std::uint64_t sum = static_cast<std::uint64_t>(limbs_[i]) + carry;
    limbs_[i] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::sub_mag_inplace(const std::vector<std::uint32_t>& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  trim();
}

BigInt& BigInt::operator+=(const BigInt& o) {
  if (negative_ == o.negative_) {
    add_mag_inplace(o.limbs_);
    return *this;
  }
  const int cmp = cmp_mag(limbs_, o.limbs_);
  if (cmp == 0) return *this = BigInt();
  if (cmp > 0) {
    sub_mag_inplace(o.limbs_);  // sign (ours) survives: result nonzero
    return *this;
  }
  return *this = *this + o;
}

BigInt& BigInt::operator-=(const BigInt& o) {
  if (negative_ != o.negative_) {
    add_mag_inplace(o.limbs_);  // this - o = this + |o| with our sign
    return *this;
  }
  const int cmp = cmp_mag(limbs_, o.limbs_);
  if (cmp == 0) return *this = BigInt();
  if (cmp > 0) {
    sub_mag_inplace(o.limbs_);
    return *this;
  }
  return *this = *this - o;
}

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  out.limbs_ = mul_mag(limbs_, o.limbs_);
  out.negative_ = negative_ != o.negative_ && !out.limbs_.empty();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v & 0xFFFFFFFFu);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v & 0xFFFFFFFFu);
  }
  out.trim();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");

  const int cmp = cmp_mag(limbs_, divisor.limbs_);
  if (cmp < 0) return {BigInt(), *this};

  DivMod result;
  if (divisor.limbs_.size() == 1) {
    // Short division.
    const std::uint64_t d = divisor.limbs_[0];
    std::vector<std::uint32_t> q(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    result.quotient.limbs_ = std::move(q);
    result.remainder = BigInt(static_cast<std::int64_t>(rem));
  } else {
    // Knuth Algorithm D. Normalize so the divisor's top limb has its high
    // bit set.
    const std::size_t shift =
        static_cast<std::size_t>(std::countl_zero(divisor.limbs_.back()));
    const BigInt u_n = [&] {
      BigInt t;
      t.limbs_ = limbs_;
      return t << shift;
    }();
    const BigInt v_n = [&] {
      BigInt t;
      t.limbs_ = divisor.limbs_;
      return t << shift;
    }();

    const std::size_t n = v_n.limbs_.size();
    const std::size_t m = u_n.limbs_.size() - n;
    std::vector<std::uint32_t> u = u_n.limbs_;
    u.push_back(0);  // u has m + n + 1 limbs
    const std::vector<std::uint32_t>& v = v_n.limbs_;
    std::vector<std::uint32_t> q(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
      // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1], clamped to B-1 so
      // the correction products below fit in 64 bits.
      const std::uint64_t top =
          (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
      std::uint64_t q_hat = top / v[n - 1];
      std::uint64_t r_hat = top % v[n - 1];
      if (q_hat >= kBase) {
        q_hat = kBase - 1;
        r_hat = top - q_hat * v[n - 1];
      }
      while (r_hat < kBase &&
             q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
        --q_hat;
        r_hat += v[n - 1];
      }

      // Multiply-subtract q_hat * v from u[j .. j+n].
      std::int64_t borrow = 0;
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t prod = q_hat * v[i] + carry;
        carry = prod >> 32;
        std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                            static_cast<std::int64_t>(prod & 0xFFFFFFFFu) - borrow;
        if (diff < 0) {
          diff += static_cast<std::int64_t>(kBase);
          borrow = 1;
        } else {
          borrow = 0;
        }
        u[i + j] = static_cast<std::uint32_t>(diff);
      }
      std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                          static_cast<std::int64_t>(carry) - borrow;
      if (diff < 0) {
        // q_hat was one too large: add back.
        diff += static_cast<std::int64_t>(kBase);
        u[j + n] = static_cast<std::uint32_t>(diff);
        --q_hat;
        std::uint64_t carry2 = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] + carry2;
          u[i + j] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
          carry2 = sum >> 32;
        }
        u[j + n] = static_cast<std::uint32_t>(u[j + n] + carry2);
      } else {
        u[j + n] = static_cast<std::uint32_t>(diff);
      }
      q[j] = static_cast<std::uint32_t>(q_hat);
    }

    result.quotient.limbs_ = std::move(q);
    BigInt rem;
    rem.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
    rem.trim();
    result.remainder = rem >> shift;
  }

  result.quotient.trim();
  result.remainder.trim();
  // Truncated division sign rules.
  result.quotient.negative_ =
      (negative_ != divisor.negative_) && !result.quotient.is_zero();
  result.remainder.negative_ = negative_ && !result.remainder.is_zero();
  return result;
}

BigInt BigInt::operator/(const BigInt& o) const { return divmod(o).quotient; }
BigInt BigInt::operator%(const BigInt& o) const { return divmod(o).remainder; }

BigInt BigInt::mod(const BigInt& m) const {
  if (m.is_zero() || m.is_negative()) {
    throw std::domain_error("BigInt::mod: modulus must be positive");
  }
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

std::uint32_t BigInt::mod_u32(std::uint32_t divisor) const {
  if (divisor == 0) throw std::domain_error("BigInt::mod_u32: division by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % divisor;
  }
  return static_cast<std::uint32_t>(rem);
}

BigInt BigInt::mod_pow(const BigInt& exponent, const BigInt& m) const {
  if (m.is_zero() || m.is_negative()) {
    throw std::domain_error("BigInt::mod_pow: modulus must be positive");
  }
  if (exponent.is_negative()) {
    throw std::domain_error("BigInt::mod_pow: negative exponent");
  }
  if (m == BigInt(1)) return BigInt();

  // Large odd moduli (every RSA/prime modulus): Montgomery REDC replaces
  // the division-based reduction below. Contexts come from the process-
  // wide LRU cache, so the R^2 setup division is paid once per modulus —
  // the Auditor verifies millions of signatures against the same handful
  // of public keys.
  if (m.is_odd() && m.bit_length() >= 128) {
    return MontgomeryContextCache::global().get(m)->pow(*this, exponent);
  }

  const BigInt base = mod(m);
  if (exponent.is_zero()) return BigInt(1);

  // 4-bit fixed-window exponentiation: precompute base^0 .. base^15.
  std::vector<BigInt> table(16);
  table[0] = BigInt(1);
  table[1] = base;
  for (int i = 2; i < 16; ++i) table[i] = (table[i - 1] * base).mod(m);

  BigInt result(1);
  const std::size_t bits = exponent.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) result = (result * result).mod(m);
    int digit = 0;
    for (int b = 3; b >= 0; --b) {
      digit = (digit << 1) | (exponent.bit(w * 4 + static_cast<std::size_t>(b)) ? 1 : 0);
    }
    if (digit != 0) result = (result * table[static_cast<std::size_t>(digit)]).mod(m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& m) const {
  if (m.is_zero() || m.is_negative()) {
    throw std::domain_error("BigInt::mod_inverse: modulus must be positive");
  }
  // Extended Euclid on (a, m).
  BigInt a = mod(m);
  BigInt r0 = m;
  BigInt r1 = a;
  BigInt s0(0);
  BigInt s1(1);
  while (!r1.is_zero()) {
    const DivMod dm = r0.divmod(r1);
    BigInt r2 = dm.remainder;
    BigInt s2 = s0 - dm.quotient * s1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s1 = std::move(s2);
  }
  if (r0 != BigInt(1)) {
    throw std::domain_error("BigInt::mod_inverse: not invertible");
  }
  return s0.mod(m);
}

}  // namespace alidrone::crypto
