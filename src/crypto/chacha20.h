// ChaCha20 stream cipher (RFC 8439).
//
// Serves two roles in this repository:
//  - one-time encryption of individual PoA samples in the privacy-
//    preserving verification extension (paper Section VII-B3), and
//  - the core of the deterministic DRBG used for reproducible key
//    generation and simulation randomness.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.h"

namespace alidrone::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t initial_counter = 0);

  /// XOR the keystream into `data` (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data);

  /// One-shot convenience.
  static Bytes crypt(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> nonce,
                     std::span<const std::uint8_t> data,
                     std::uint32_t initial_counter = 0);

  /// Produce the raw 64-byte keystream block for block `counter`
  /// (exposed for the DRBG and for RFC 8439 test vectors).
  std::array<std::uint8_t, 64> block(std::uint32_t counter) const;

 private:
  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> keystream_;
  std::size_t keystream_pos_ = 64;  // exhausted
  std::uint32_t counter_;
};

}  // namespace alidrone::crypto
