#include "crypto/prime.h"

#include <array>
#include <stdexcept>
#include <vector>

namespace alidrone::crypto {

namespace {

/// Primes below 2^16, computed once (Eratosthenes).
const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::size_t kLimit = 1 << 16;
    std::vector<bool> sieve(kLimit, true);
    sieve[0] = sieve[1] = false;
    for (std::size_t i = 2; i * i < kLimit; ++i) {
      if (!sieve[i]) continue;
      for (std::size_t j = i * i; j < kLimit; j += i) sieve[j] = false;
    }
    std::vector<std::uint32_t> out;
    for (std::size_t i = 2; i < kLimit; ++i) {
      if (sieve[i]) out.push_back(static_cast<std::uint32_t>(i));
    }
    return out;
  }();
  return primes;
}

}  // namespace

bool passes_trial_division(const BigInt& n) {
  for (const std::uint32_t p : small_primes()) {
    if (n.mod_u32(p) == 0) {
      // n is divisible by p: prime only if n == p itself.
      return n == BigInt(static_cast<std::int64_t>(p));
    }
  }
  return true;
}

bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds) {
  if (n < BigInt(2)) return false;
  if (n == BigInt(2) || n == BigInt(3)) return true;
  if (n.is_even()) return false;
  if (!passes_trial_division(n)) return false;

  // Write n - 1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = rng.random_range(two, n - two);
    BigInt x = a.mod_pow(d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, RandomSource& rng, int mr_rounds) {
  if (bits < 8) throw std::invalid_argument("generate_prime: need at least 8 bits");
  for (;;) {
    BigInt candidate = rng.random_bits(bits);
    if (candidate.is_even()) candidate += BigInt(1);
    // Walk odd numbers from the candidate; cheap trial division first.
    for (int step = 0; step < 512; ++step) {
      if (candidate.bit_length() != bits) break;  // walked past 2^bits
      if (passes_trial_division(candidate) &&
          is_probable_prime(candidate, rng, mr_rounds)) {
        return candidate;
      }
      candidate += BigInt(2);
    }
  }
}

}  // namespace alidrone::crypto
