#include "crypto/hash_chain.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace alidrone::crypto {

namespace {

// Process-wide TESLA counters, obtained once (mont.cache_* idiom). The
// hot-path cost is one relaxed atomic add; the lookups never run inside
// the zero-allocation guard window because warm-up touches them first.
obs::Counter& tag_ops_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("crypto.tesla.tag_ops");
  return c;
}

obs::Counter& derive_hashes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("crypto.tesla.derive_hashes");
  return c;
}

obs::Counter& frontier_hashes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("crypto.tesla.frontier_hashes");
  return c;
}

// HMAC-SHA256 with a key no longer than one block, entirely on the stack.
// crypto::Hmac allocates its pads; this path is what the per-sample
// zero-allocation guard in bench_sign_throughput measures.
Sha256::Digest hmac_fixed(const ChainKey& key,
                          std::span<const std::uint8_t> part1,
                          std::span<const std::uint8_t> part2) {
  static_assert(kChainKeySize <= Sha256::kBlockSize);
  std::array<std::uint8_t, Sha256::kBlockSize> pad{};
  for (std::size_t i = 0; i < key.size(); ++i) pad[i] = key[i] ^ 0x36;
  for (std::size_t i = key.size(); i < pad.size(); ++i) pad[i] = 0x36;

  Sha256 inner;
  inner.update(pad);
  inner.update(part1);
  inner.update(part2);
  const Sha256::Digest inner_digest = inner.finalize();

  for (auto& b : pad) b ^= 0x36 ^ 0x5c;  // flip ipad to opad in place
  Sha256 outer;
  outer.update(pad);
  outer.update(inner_digest);
  return outer.finalize();
}

}  // namespace

ChainKey chain_step(const ChainKey& key) { return Sha256::hash(key); }

HashChain::HashChain(const ChainKey& seed, std::size_t length,
                     std::size_t checkpoint_stride)
    : length_(length), stride_(checkpoint_stride) {
  if (length_ == 0) throw std::invalid_argument("HashChain: length == 0");
  if (stride_ == 0) {
    stride_ = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(length_))));
  }
  // Walk K_N .. K_0 once, capturing every stride_-th element. The walk
  // runs top-down but checkpoints_ is indexed bottom-up, so size it first
  // and fill by index.
  checkpoints_.assign(length_ / stride_, ChainKey{});
  ChainKey cur = seed;  // K_length
  for (std::size_t i = length_; i >= 1; --i) {
    if (i % stride_ == 0 && i / stride_ <= checkpoints_.size()) {
      checkpoints_[i / stride_ - 1] = cur;
    }
    cur = chain_step(cur);  // K_{i-1}
  }
  anchor_ = cur;  // K_0
  // The seed itself is the final fallback checkpoint so key(length) and
  // the tail above the last stride boundary stay cheap.
  checkpoints_.push_back(seed);
}

ChainKey HashChain::key(std::size_t index) const {
  if (index < 1 || index > length_) {
    throw std::out_of_range("HashChain::key: index outside [1, length]");
  }
  // Nearest checkpoint at or above index: checkpoints_[j] holds
  // K_{(j+1)*stride_}, with the seed (K_length) appended last.
  const std::size_t j = (index + stride_ - 1) / stride_ - 1;
  std::size_t at;
  ChainKey cur;
  if (j < checkpoints_.size() - 1) {
    at = (j + 1) * stride_;
    cur = checkpoints_[j];
  } else {
    at = length_;
    cur = checkpoints_.back();
  }
  std::uint64_t steps = 0;
  for (; at > index; --at, ++steps) cur = chain_step(cur);
  derive_hashes_ += steps;
  if (steps != 0) derive_hashes_counter().add(steps);
  return cur;
}

ChainFrontier::ChainFrontier(const ChainKey& anchor, std::size_t length)
    : frontier_(anchor), length_(length) {}

bool ChainFrontier::accept(std::size_t index, const ChainKey& key) {
  if (index <= index_ || index > length_) return false;
  ChainKey cur = key;
  std::uint64_t steps = 0;
  for (std::size_t i = index; i > index_; --i, ++steps) {
    cur = chain_step(cur);
  }
  verify_hashes_ += steps;
  frontier_hashes_counter().add(steps);
  if (cur != frontier_) return false;
  frontier_ = key;
  index_ = index;
  return true;
}

ChainKey tesla_mac_key(const ChainKey& chain_key) {
  static constexpr std::string_view kContext = "alidrone.tesla.mac.v1";
  return hmac_fixed(
      chain_key,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(kContext.data()),
          kContext.size()),
      {});
}

ChainKey tesla_tag(const ChainKey& mac_key, std::uint64_t interval,
                   std::span<const std::uint8_t> sample) {
  std::array<std::uint8_t, 8> be{};
  for (int i = 0; i < 8; ++i) {
    be[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((interval >> (8 * (7 - i))) & 0xFF);
  }
  tag_ops_counter().increment();
  return hmac_fixed(mac_key, be, sample);
}

}  // namespace alidrone::crypto
