// Random byte generation.
//
// SecureRandom draws from the OS entropy pool (/dev/urandom).
// DeterministicRandom is a ChaCha20-based DRBG seeded explicitly — used
// for reproducible key generation in tests/benchmarks and for simulation
// noise. Both implement the RandomSource interface so RSA key generation
// can be driven by either.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/bigint.h"
#include "crypto/bytes.h"

namespace alidrone::crypto {

/// Abstract source of random bytes (Core Guidelines C.121: pure interface).
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  virtual void fill(std::span<std::uint8_t> out) = 0;

  Bytes bytes(std::size_t n);
  std::uint64_t next_u64();
  /// Uniform in [0, bound); bound > 0 (rejection sampling, no modulo bias).
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double uniform_double();
  /// Uniformly random integer with exactly `bits` bits (top bit set).
  BigInt random_bits(std::size_t bits);
  /// Uniformly random integer in [min, max], inclusive; min <= max.
  BigInt random_range(const BigInt& min, const BigInt& max);
};

/// OS-entropy randomness (reads /dev/urandom).
class SecureRandom final : public RandomSource {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

/// Deterministic ChaCha20-based DRBG; identical seeds yield identical
/// streams across platforms.
class DeterministicRandom final : public RandomSource {
 public:
  explicit DeterministicRandom(std::uint64_t seed);
  explicit DeterministicRandom(std::string_view seed);

  void fill(std::span<std::uint8_t> out) override;

 private:
  Bytes key_;
  Bytes nonce_;
  std::uint64_t block_counter_ = 0;
  Bytes pool_;
  std::size_t pool_pos_ = 0;

  void refill();
};

}  // namespace alidrone::crypto
