// Random byte generation.
//
// SecureRandom draws from the OS entropy pool (/dev/urandom).
// DeterministicRandom is a ChaCha20-based DRBG seeded explicitly — used
// for reproducible key generation in tests/benchmarks and for simulation
// noise. Both implement the RandomSource interface so RSA key generation
// can be driven by either.
//
// Thread safety: a RandomSource instance is NOT thread-safe. The DRBG
// state (pool position, block counter, ratcheting key) is mutated on
// every fill, so concurrent use from two threads corrupts the stream.
// Confine each instance to one thread — DeterministicRandom asserts
// this in debug builds — or derive an independent per-thread stream
// with DeterministicRandom::fork() (the runtime::ThreadPool does this
// for its workers, see ThreadPool::worker_rng()).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <thread>

#include "crypto/bigint.h"
#include "crypto/bytes.h"

namespace alidrone::crypto {

/// Abstract source of random bytes (Core Guidelines C.121: pure interface).
/// Implementations are single-threaded; see the header comment.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  virtual void fill(std::span<std::uint8_t> out) = 0;

  Bytes bytes(std::size_t n);
  std::uint64_t next_u64();
  /// Uniform in [0, bound); bound > 0 (rejection sampling, no modulo bias).
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double uniform_double();
  /// Uniformly random integer with exactly `bits` bits (top bit set).
  BigInt random_bits(std::size_t bits);
  /// Uniformly random integer in [min, max], inclusive; min <= max.
  BigInt random_range(const BigInt& min, const BigInt& max);
};

/// OS-entropy randomness (reads /dev/urandom).
class SecureRandom final : public RandomSource {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

/// Deterministic ChaCha20-based DRBG; identical seeds yield identical
/// streams across platforms. Not thread-safe: the first fill() claims
/// the calling thread as owner and debug builds assert on any use from
/// a different thread. Hand a stream to another thread only before its
/// first fill, or fork() per-thread children instead.
class DeterministicRandom final : public RandomSource {
 public:
  explicit DeterministicRandom(std::uint64_t seed);
  explicit DeterministicRandom(std::string_view seed);

  void fill(std::span<std::uint8_t> out) override;

  /// Derive an independent child stream keyed by (this stream's seed
  /// material, `stream`). Forking does not consume or disturb this
  /// stream's state: fork(i) yields the same child no matter how many
  /// bytes were drawn in between, and distinct indices yield unrelated
  /// streams — the per-worker RNG recipe for thread pools.
  DeterministicRandom fork(std::uint64_t stream) const;

 private:
  Bytes key_;
  Bytes nonce_;
  std::uint64_t block_counter_ = 0;
  Bytes pool_;
  std::size_t pool_pos_ = 0;
  std::thread::id owner_;  ///< claimed by the first fill(); checked in debug

  void refill();
  bool claim_current_thread();
};

}  // namespace alidrone::crypto
