#include "crypto/batch_verify.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/bytes.h"

namespace alidrone::crypto {

using Limb = limb64::Limb;

bool RsaVerifyEngine::supports(const RsaPublicKey& key) {
  return !key.n.is_negative() && key.n.is_odd() && key.n.bit_length() >= 128 &&
         key.n.limb64_count() <= limb64::kMaxProtocolLimbs &&
         !key.e.is_negative() && !key.e.is_zero() && key.e.bit_length() <= 64;
}

RsaVerifyEngine::RsaVerifyEngine(const RsaPublicKey& key) {
  if (!supports(key)) {
    throw std::invalid_argument("RsaVerifyEngine: unsupported key");
  }
  ctx_ = MontgomeryContextCache::global().get(key.n);
  k_ = ctx_->limb_count();
  mod_bytes_ = key.modulus_bytes();
  key.e.to_limbs64(&e_, 1);
  e_bits_ = key.e.bit_length();
}

bool RsaVerifyEngine::verify(std::span<const std::uint8_t> message,
                             std::span<const std::uint8_t> signature,
                             HashAlgorithm hash) {
  if (signature.size() != mod_bytes_) return false;
  const limb64::Mont& mont = ctx_->mont();
  if (!limb64::from_bytes_be(signature.data(), signature.size(), base_, k_)) {
    return false;
  }
  if (limb64::cmp_n(base_, mont.m, k_) >= 0) return false;  // s >= n
  if (!emsa_pkcs1_encode_into(message, hash,
                              std::span<std::uint8_t>(expected_, mod_bytes_))) {
    return false;  // modulus too small for this digest
  }

  // acc = s^e, computed in the Montgomery domain (one shared R factor,
  // removed by the final REDC). e is at most 64 bits — 65537 in practice
  // — so plain square-and-multiply beats any window.
  limb64::mont_mul(mont, base_, mont.r2, base_, t_);
  std::copy(base_, base_ + k_, acc_);
  for (std::size_t j = e_bits_ - 1; j-- > 0;) {
    limb64::mont_mul(mont, acc_, acc_, acc_, t_);
    if ((e_ >> j) & 1) limb64::mont_mul(mont, acc_, base_, acc_, t_);
  }
  limb64::redc(mont, acc_, acc_, t_);

  limb64::to_bytes_be(acc_, k_, em_, mod_bytes_);  // result < n always fits
  return constant_time_equal(
      std::span<const std::uint8_t>(em_, mod_bytes_),
      std::span<const std::uint8_t>(expected_, mod_bytes_));
}

BatchRsaVerifier::BatchRsaVerifier(const RsaPublicKey& key, Config config)
    : config_(config) {
  if (!supports(key)) {
    throw std::invalid_argument("BatchRsaVerifier: unsupported key");
  }
  if (config_.max_batch == 0) config_.max_batch = 1;
  config_.check_bits = std::min<std::size_t>(config_.check_bits, 64);
  ctx_ = MontgomeryContextCache::global().get(key.n);
  k_ = ctx_->limb_count();
  mod_bytes_ = key.modulus_bytes();
  key.e.to_limbs64(&e_, 1);
  e_bits_ = key.e.bit_length();
  items_.assign(config_.max_batch * 2 * k_, 0);
  tags_.assign(config_.max_batch, 0);
  challenges_.assign(config_.max_batch, 0);
}

bool BatchRsaVerifier::enqueue(std::size_t tag,
                               std::span<const std::uint8_t> message,
                               std::span<const std::uint8_t> signature,
                               HashAlgorithm hash) {
  if (count_ >= config_.max_batch) {
    throw std::logic_error("BatchRsaVerifier: enqueue on a full batch");
  }
  const limb64::Mont& mont = ctx_->mont();
  Limb* s_hat = items_.data() + 2 * count_ * k_;
  Limb* m_hat = s_hat + k_;

  // Structural checks, mirroring what serial rsa_verify rejects before
  // exponentiating — so a false return carries the serial verdict.
  if (signature.size() != mod_bytes_) return false;
  if (!limb64::from_bytes_be(signature.data(), signature.size(), s_hat, k_)) {
    return false;
  }
  if (limb64::cmp_n(s_hat, mont.m, k_) >= 0) return false;  // s >= n
  if (!emsa_pkcs1_encode_into(message, hash,
                              std::span<std::uint8_t>(em_, mod_bytes_))) {
    return false;  // modulus too small for this digest
  }
  limb64::from_bytes_be(em_, mod_bytes_, m_hat, k_);
  if (limb64::cmp_n(m_hat, mont.m, k_) >= 0) {
    // em >= n can never equal s^e mod n < n; serial fails the byte compare.
    return false;
  }

  transcript_.update(signature);
  transcript_.update(std::span<const std::uint8_t>(em_, mod_bytes_));

  limb64::mont_mul(mont, s_hat, mont.r2, s_hat, t_);
  limb64::mont_mul(mont, m_hat, mont.r2, m_hat, t_);
  tags_[count_] = tag;
  ++count_;
  return true;
}

void BatchRsaVerifier::pow_e(const Limb* x, Limb* out) {
  const limb64::Mont& mont = ctx_->mont();
  std::copy(x, x + k_, out);
  for (std::size_t j = e_bits_ - 1; j-- > 0;) {
    limb64::mont_mul(mont, out, out, out, t_);
    if ((e_ >> j) & 1) limb64::mont_mul(mont, out, x, out, t_);
  }
}

std::size_t BatchRsaVerifier::find_invalid() {
  for (std::size_t i = 0; i < count_; ++i) {
    const Limb* s_hat = items_.data() + 2 * i * k_;
    pow_e(s_hat, acc_);
    if (limb64::cmp_n(acc_, s_hat + k_, k_) != 0) return tags_[i];
  }
  // Unreachable with exact arithmetic: a product mismatch implies some
  // item fails individually (if every s_i^e = m_i, the combined products
  // agree for ANY challenge vector).
  return tags_[0];
}

std::optional<std::size_t> BatchRsaVerifier::flush() {
  if (count_ == 0) return std::nullopt;
  const limb64::Mont& mont = ctx_->mont();
  ++flushes_;
  batched_items_ += count_;

  std::optional<std::size_t> bad;
  if (count_ == 1) {
    // Nothing to amortize: direct check.
    pow_e(items_.data(), acc_);
    if (limb64::cmp_n(acc_, items_.data() + k_, k_) != 0) {
      ++fallbacks_;
      bad = tags_[0];
    }
  } else {
    if (config_.check_bits == 0) {
      // Plain product test: P = prod s_i, Q = prod m_i.
      std::copy(items_.data(), items_.data() + k_, p_);
      std::copy(items_.data() + k_, items_.data() + 2 * k_, q_);
      for (std::size_t i = 1; i < count_; ++i) {
        const Limb* s_hat = items_.data() + 2 * i * k_;
        limb64::mont_mul(mont, p_, s_hat, p_, t_);
        limb64::mont_mul(mont, q_, s_hat + k_, q_, t_);
      }
    } else {
      // Challenges r_i: check_bits wide, top bit forced, derived from the
      // batch transcript — fixed only after every signature is committed.
      const Sha256::Digest seed = transcript_.finalize();
      for (std::size_t i = 0; i < count_; ++i) {
        Sha256 h;
        h.update(seed);
        const std::uint8_t idx[4] = {
            static_cast<std::uint8_t>(i >> 24), static_cast<std::uint8_t>(i >> 16),
            static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i)};
        h.update(idx);
        const Sha256::Digest d = h.finalize();
        std::uint64_t r = 0;
        for (int b = 0; b < 8; ++b) r = (r << 8) | d[static_cast<std::size_t>(b)];
        if (config_.check_bits < 64) r &= (1ull << config_.check_bits) - 1;
        r |= 1ull << (config_.check_bits - 1);
        challenges_[i] = r;
      }

      // Straus interleaving: P = prod s_i^{r_i}, Q = prod m_i^{r_i} with
      // ONE shared run of check_bits squarings for all items and both
      // accumulators — this is where the batch amortization comes from.
      std::copy(mont.one, mont.one + k_, p_);
      std::copy(mont.one, mont.one + k_, q_);
      for (std::size_t j = config_.check_bits; j-- > 0;) {
        limb64::mont_mul(mont, p_, p_, p_, t_);
        limb64::mont_mul(mont, q_, q_, q_, t_);
        for (std::size_t i = 0; i < count_; ++i) {
          if ((challenges_[i] >> j) & 1) {
            const Limb* s_hat = items_.data() + 2 * i * k_;
            limb64::mont_mul(mont, p_, s_hat, p_, t_);
            limb64::mont_mul(mont, q_, s_hat + k_, q_, t_);
          }
        }
      }
    }

    // One exponent ladder for the whole batch: P^e == Q.
    pow_e(p_, acc_);
    if (limb64::cmp_n(acc_, q_, k_) != 0) {
      ++fallbacks_;
      bad = find_invalid();
    }
  }

  count_ = 0;
  transcript_.reset();
  return bad;
}

}  // namespace alidrone::crypto
