#include "crypto/sha1.h"

#include <bit>
#include <cstring>

namespace alidrone::crypto {

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  if (data.empty()) return;  // an empty span may carry a null data()
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha1::Digest Sha1::finalize() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != kBlockSize - 8) update({&zero, 1});

  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>((bit_len >> (56 - 8 * i)) & 0xFF);
  }
  update({len_be, 8});

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

Sha1::Digest Sha1::hash(std::string_view data) {
  return hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace alidrone::crypto
