// Montgomery modular arithmetic (Montgomery, 1985).
//
// Replaces the division-based reduction in modular exponentiation with
// shift/add REDC steps, cutting RSA private-key operations by roughly
// 2-4x. Valid for odd moduli only — always true for RSA moduli and for
// the prime moduli used in Miller-Rabin. BigInt::mod_pow dispatches here
// automatically for odd moduli of at least 128 bits, through a process-
// wide MontgomeryContextCache so repeated operations under the same
// modulus (the Auditor re-verifying against a handful of public keys)
// pay the R^2 setup division once instead of per call.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bigint.h"

namespace alidrone::crypto {

/// Precomputed context for a fixed odd modulus m. R = 2^(32k) where k is
/// the limb count of m. Immutable after construction, so one context can
/// be shared freely across threads.
class MontgomeryContext {
 public:
  /// Throws std::invalid_argument when m is even or < 3.
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const { return m_; }

  /// Map into Montgomery form: a * R mod m.
  BigInt to_mont(const BigInt& a) const;
  /// Map out of Montgomery form: a * R^-1 mod m.
  BigInt from_mont(const BigInt& a) const;

  /// Montgomery product: REDC(a * b) = a * b * R^-1 mod m, for inputs in
  /// Montgomery form.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^exponent mod m (plain-domain base and result); 4-bit windows.
  /// The inner loop reuses one scratch buffer across all ~1.25*bits
  /// Montgomery products, so steady-state exponentiation allocates
  /// nothing per product.
  BigInt pow(const BigInt& base, const BigInt& exponent) const;

 private:
  BigInt m_;
  std::size_t k_;          // limb count of m
  std::uint32_t m_prime_;  // -m^-1 mod 2^32
  BigInt r2_;              // R^2 mod m, for to_mont
  BigInt one_mont_;        // R mod m (1 in Montgomery form)

  friend class FixedExponentPlan;  // reuses mul_into / one_mont_ / k_

  /// REDC over a raw double-width limb vector, in place: t becomes the
  /// reduced k-limb (or shorter) result with no intermediate allocation.
  void redc_in_place(std::vector<std::uint32_t>& t) const;

  /// out = REDC(a * b), with the double-width product built in `scratch`
  /// (grown once, then reused call after call).
  void mul_into(const BigInt& a, const BigInt& b, BigInt& out,
                std::vector<std::uint32_t>& scratch) const;
};

/// Exponentiation plan for a *fixed* (exponent, modulus) pair — the
/// drone-side signing hot path, where the same CRT exponents d_p and d_q
/// are applied to a fresh base on every signature.
///
/// MontgomeryContext::pow re-derives everything per call: it scans the
/// exponent bits, builds a full 16-entry 4-bit window table and allocates
/// the accumulators. A plan hoists all exponent-dependent work to
/// construction time:
///   - the sliding-window program (square runs + odd-window multiplies)
///     is decomposed once, so the per-call loop is a flat replay;
///   - the window width is sized to the exponent (4/5/6 bits for RSA-size
///     exponents — wider windows only pay off once the exponent is long
///     enough to amortize the bigger odd-power table);
///   - the odd-power table, accumulators and REDC scratch are owned by the
///     plan and reused, so steady-state signing allocates almost nothing.
/// Only the base-dependent odd-power table contents (2^(w-1) Montgomery
/// products) are computed per call.
///
/// NOT thread-safe: pow() mutates the internal buffers. Confine a plan to
/// one thread or guard it externally (KeyVault serializes its plan).
class FixedExponentPlan {
 public:
  /// Plans `base^exponent mod context->modulus()`. The context is shared
  /// (it is immutable); the exponent must be non-negative.
  FixedExponentPlan(std::shared_ptr<const MontgomeryContext> context,
                    const BigInt& exponent);

  /// base^exponent mod m, byte-identical to MontgomeryContext::pow /
  /// BigInt::mod_pow for the same inputs.
  BigInt pow(const BigInt& base);

  const BigInt& exponent() const { return exponent_; }
  const MontgomeryContext& context() const { return *ctx_; }
  int window_bits() const { return window_bits_; }

 private:
  /// One replay step: `squares` squarings, then (unless table_index < 0) a
  /// multiply by the precomputed odd power table_[table_index].
  struct Step {
    std::uint32_t squares = 0;
    std::int32_t table_index = -1;
  };

  static int choose_window_bits(std::size_t exponent_bits);

  std::shared_ptr<const MontgomeryContext> ctx_;
  BigInt exponent_;
  int window_bits_ = 1;
  std::vector<Step> program_;  // leading step first; its squares are skipped

  // Per-call buffers, reused across pow() calls.
  std::vector<BigInt> table_;  // odd powers base^1, base^3, ... (Montgomery form)
  BigInt base_sq_;
  BigInt acc_;
  BigInt tmp_;
  std::vector<std::uint32_t> scratch_;
};

/// Thread-safe, LRU-bounded cache of MontgomeryContext keyed by modulus
/// bytes. Contexts are handed out as shared_ptr<const ...>, so a context
/// stays valid for a caller even if the cache evicts it concurrently.
/// Lookups take a mutex only around the map access; the expensive
/// context construction happens outside the lock (two threads racing on
/// the same cold modulus may both build it — one copy wins, both are
/// correct).
class MontgomeryContextCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit MontgomeryContextCache(std::size_t capacity = kDefaultCapacity);

  /// The context for `modulus`, building and caching it on a miss.
  /// Throws std::invalid_argument for even or < 3 moduli (never cached).
  std::shared_ptr<const MontgomeryContext> get(const BigInt& modulus);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

  /// Process-wide cache used by BigInt::mod_pow.
  static MontgomeryContextCache& global();

 private:
  struct Entry {
    std::shared_ptr<const MontgomeryContext> context;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used key
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace alidrone::crypto
