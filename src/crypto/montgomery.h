// Montgomery modular arithmetic (Montgomery, 1985).
//
// Replaces the division-based reduction in modular exponentiation with
// shift/add REDC steps, cutting RSA private-key operations by roughly
// 2-4x. Valid for odd moduli only — always true for RSA moduli and for
// the prime moduli used in Miller-Rabin. BigInt::mod_pow dispatches here
// automatically for odd moduli of at least 128 bits.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"

namespace alidrone::crypto {

/// Precomputed context for a fixed odd modulus m. R = 2^(32k) where k is
/// the limb count of m.
class MontgomeryContext {
 public:
  /// Throws std::invalid_argument when m is even or < 3.
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const { return m_; }

  /// Map into Montgomery form: a * R mod m.
  BigInt to_mont(const BigInt& a) const;
  /// Map out of Montgomery form: a * R^-1 mod m.
  BigInt from_mont(const BigInt& a) const;

  /// Montgomery product: REDC(a * b) = a * b * R^-1 mod m, for inputs in
  /// Montgomery form.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^exponent mod m (plain-domain base and result); 4-bit windows.
  BigInt pow(const BigInt& base, const BigInt& exponent) const;

 private:
  BigInt m_;
  std::size_t k_;          // limb count of m
  std::uint32_t m_prime_;  // -m^-1 mod 2^32
  BigInt r2_;              // R^2 mod m, for to_mont
  BigInt one_mont_;        // R mod m (1 in Montgomery form)

  /// REDC over a raw double-width limb vector (size <= 2k).
  std::vector<std::uint32_t> redc(std::vector<std::uint32_t> t) const;
};

}  // namespace alidrone::crypto
