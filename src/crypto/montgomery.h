// Montgomery modular arithmetic (Montgomery, 1985).
//
// Replaces the division-based reduction in modular exponentiation with
// REDC steps. Valid for odd moduli only — always true for RSA moduli and
// for the prime moduli used in Miller-Rabin. BigInt::mod_pow dispatches
// here automatically for odd moduli of at least 128 bits, through a
// process-wide MontgomeryContextCache so repeated operations under the
// same modulus (the Auditor re-verifying against a handful of public
// keys) pay the R^2 setup division once instead of per call.
//
// The arithmetic itself runs on the 64-bit limb64 kernels (CIOS
// multiply-interleaved REDC, 128-bit products): contexts precompute the
// modulus and constants as flat uint64 limb arrays, and every operation
// works in caller- or member-owned scratch, so the verify inner loop
// performs zero heap allocations (guarded in bench_verify_throughput).
// The BigInt methods below are the convenience boundary; hot paths
// (RsaVerifyEngine, BatchRsaVerifier) use mont() directly.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/limb64.h"

namespace alidrone::obs {
class Counter;
}  // namespace alidrone::obs

namespace alidrone::crypto {

/// Precomputed context for a fixed odd modulus m. R = 2^(64k) where k is
/// the 64-bit limb count of m. Immutable after construction, so one
/// context can be shared freely across threads.
class MontgomeryContext {
 public:
  /// Throws std::invalid_argument when m is even or < 3.
  explicit MontgomeryContext(const BigInt& modulus);

  // The Mont view points into member storage; copying would leave it
  // dangling. Contexts are shared by shared_ptr, never copied.
  MontgomeryContext(const MontgomeryContext&) = delete;
  MontgomeryContext& operator=(const MontgomeryContext&) = delete;

  const BigInt& modulus() const { return m_; }

  /// Raw 64-bit limb view of the modulus and its constants — the
  /// zero-allocation engine interface (limb64::mont_mul / redc).
  const limb64::Mont& mont() const { return mont_; }
  /// Modulus size in 64-bit limbs (R = 2^(64 * limb_count())).
  std::size_t limb_count() const { return k_; }

  /// Map into Montgomery form: a * R mod m.
  BigInt to_mont(const BigInt& a) const;
  /// Map out of Montgomery form: a * R^-1 mod m.
  BigInt from_mont(const BigInt& a) const;

  /// Montgomery product: REDC(a * b) = a * b * R^-1 mod m, for inputs in
  /// Montgomery form.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^exponent mod m (plain-domain base and result); 4-bit windows
  /// over a single stack-backed limb arena for protocol-size moduli.
  BigInt pow(const BigInt& base, const BigInt& exponent) const;

 private:
  BigInt m_;
  std::size_t k_;             // 64-bit limb count of m
  limb64::Limb m_prime_;      // -m^-1 mod 2^64
  // Flat constant storage the Mont view points into: m | R^2 mod m |
  // R mod m, k limbs each.
  std::vector<limb64::Limb> constants_;
  limb64::Mont mont_;

  friend class FixedExponentPlan;  // reuses mont_ / m_ / k_
};

/// Exponentiation plan for a *fixed* (exponent, modulus) pair — the
/// drone-side signing hot path, where the same CRT exponents d_p and d_q
/// are applied to a fresh base on every signature.
///
/// MontgomeryContext::pow re-derives everything per call: it scans the
/// exponent bits and builds a full 16-entry 4-bit window table. A plan
/// hoists all exponent-dependent work to construction time:
///   - the sliding-window program (square runs + odd-window multiplies)
///     is decomposed once, so the per-call loop is a flat replay;
///   - the window width is sized to the exponent (4/5/6 bits for RSA-size
///     exponents — wider windows only pay off once the exponent is long
///     enough to amortize the bigger odd-power table);
///   - the odd-power table, accumulator and REDC scratch live in one
///     preallocated limb arena, so steady-state signing allocates only
///     the BigInt result.
/// Only the base-dependent odd-power table contents (2^(w-1) Montgomery
/// products) are computed per call.
///
/// NOT thread-safe: pow() mutates the internal buffers. Confine a plan to
/// one thread or guard it externally (KeyVault serializes its plan).
class FixedExponentPlan {
 public:
  /// Plans `base^exponent mod context->modulus()`. The context is shared
  /// (it is immutable); the exponent must be non-negative.
  FixedExponentPlan(std::shared_ptr<const MontgomeryContext> context,
                    const BigInt& exponent);

  /// base^exponent mod m, byte-identical to MontgomeryContext::pow /
  /// BigInt::mod_pow for the same inputs.
  BigInt pow(const BigInt& base);

  const BigInt& exponent() const { return exponent_; }
  const MontgomeryContext& context() const { return *ctx_; }
  int window_bits() const { return window_bits_; }

 private:
  /// One replay step: `squares` squarings, then (unless table_index < 0) a
  /// multiply by the precomputed odd power table[table_index].
  struct Step {
    std::uint32_t squares = 0;
    std::int32_t table_index = -1;
  };

  static int choose_window_bits(std::size_t exponent_bits);

  std::shared_ptr<const MontgomeryContext> ctx_;
  BigInt exponent_;
  int window_bits_ = 1;
  std::vector<Step> program_;  // leading step first; its squares are skipped

  // Per-call limb arena, reused across pow() calls: odd-power table
  // (2^(w-1) entries of k limbs, Montgomery form), base^2, accumulator,
  // then k + 2 limbs of REDC scratch.
  std::vector<limb64::Limb> arena_;
};

/// Thread-safe, LRU-bounded cache of MontgomeryContext keyed by modulus
/// bytes. Contexts are handed out as shared_ptr<const ...>, so a context
/// stays valid for a caller even if the cache evicts it concurrently.
/// Lookups take a mutex only around the map access; the expensive
/// context construction happens outside the lock (two threads racing on
/// the same cold modulus may both build it — one copy wins, both are
/// correct).
///
/// Hits and misses are tracked twice: per-cache counters behind hits() /
/// misses() (reset by clear(), asserted exactly by tests), and the
/// cumulative process-wide `crypto.mont.cache_hits` / `cache_misses`
/// counters in obs::MetricsRegistry::global() for `--metrics` snapshots.
class MontgomeryContextCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit MontgomeryContextCache(std::size_t capacity = kDefaultCapacity);

  /// The context for `modulus`, building and caching it on a miss.
  /// Throws std::invalid_argument for even or < 3 moduli (never cached).
  std::shared_ptr<const MontgomeryContext> get(const BigInt& modulus);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

  /// Process-wide cache used by BigInt::mod_pow.
  static MontgomeryContextCache& global();

 private:
  struct Entry {
    std::shared_ptr<const MontgomeryContext> context;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used key
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* obs_hits_;    // process-wide mirror, never reset
  obs::Counter* obs_misses_;
};

}  // namespace alidrone::crypto
