// ECDSA over NIST P-256 (secp256r1), with RFC 6979 deterministic nonces.
//
// The paper closes its benchmark section with: "more efficient signature
// schemes are required to support higher GPS sampling rate" (Section
// VI-B). ECDSA is the natural candidate — a P-256 signature costs one
// 256-bit scalar multiplication instead of a 1024/2048-bit RSA private
// exponentiation — and bench_signing_alternatives quantifies the gap.
//
// Implementation notes:
//  - Jacobian projective coordinates (one field inversion per scalar
//    multiplication), 4-bit fixed-window scalar multiplication;
//  - deterministic nonces per RFC 6979 with HMAC-SHA256, so a broken or
//    rigged RNG on the drone can never leak the key through repeated k;
//  - signatures are the 64-byte big-endian (r, s) concatenation.
#pragma once

#include <optional>
#include <span>

#include "crypto/bigint.h"
#include "crypto/bytes.h"
#include "crypto/random.h"

namespace alidrone::crypto {

/// An affine point on P-256 (or the point at infinity).
struct EcPoint {
  BigInt x;
  BigInt y;
  bool infinity = false;

  bool operator==(const EcPoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// The NIST P-256 curve: y^2 = x^3 - 3x + b over GF(p).
class P256 {
 public:
  static const BigInt& p();  ///< field prime
  static const BigInt& n();  ///< group order
  static const BigInt& b();  ///< curve constant
  static EcPoint generator();

  static bool on_curve(const EcPoint& point);
  static EcPoint add(const EcPoint& lhs, const EcPoint& rhs);
  static EcPoint negate(const EcPoint& point);
  /// Scalar multiplication k * point, k >= 0.
  static EcPoint mul(const BigInt& k, const EcPoint& point);

  /// Serialize as the uncompressed SEC1 form 0x04 || X || Y (65 bytes);
  /// the point at infinity encodes as the single byte 0x00.
  static Bytes encode(const EcPoint& point);
  static std::optional<EcPoint> decode(std::span<const std::uint8_t> data);
};

struct EcdsaSignature {
  BigInt r;
  BigInt s;

  Bytes to_bytes() const;  ///< 64 bytes: r || s, big-endian
  static std::optional<EcdsaSignature> from_bytes(std::span<const std::uint8_t>);
};

struct EcdsaKeyPair {
  BigInt private_key;  ///< in [1, n-1]
  EcPoint public_key;  ///< private_key * G
};

EcdsaKeyPair ecdsa_generate(RandomSource& rng);

/// Sign SHA-256(message) with an RFC 6979 deterministic nonce.
EcdsaSignature ecdsa_sign(const BigInt& private_key,
                          std::span<const std::uint8_t> message);

/// Strict verification; false on any malformed input (never throws).
bool ecdsa_verify(const EcPoint& public_key, std::span<const std::uint8_t> message,
                  const EcdsaSignature& signature);

}  // namespace alidrone::crypto
