// Allocation-free RSA verification and batched e-th-power product checks.
//
// RsaVerifyEngine is the single-signature hot path: a per-key object
// whose verify() runs RSASSA-PKCS1-v1_5 entirely on fixed member limb
// buffers over the limb64 CIOS kernels — zero heap allocations per call
// (guarded by the counting-operator-new check in bench_verify_throughput)
// and byte-identical verdicts to the legacy rsa_verify path, which now
// routes through it.
//
// BatchRsaVerifier amortizes the public-exponent ladder across K queued
// signatures under one modulus (the Auditor's per-sample RSA mode, where
// every sample in a PoA carries the same TEE key): instead of K
// independent s_i^e computations it checks
//
//     (prod_i s_i^{r_i})^e  ==  prod_i m_i^{r_i}   (mod n)
//
// with small random challenge exponents r_i derived Fiat-Shamir-style
// from a SHA-256 transcript of the batch content (soundness error
// 2^-check_bits per batch against an online forger, the small-exponents
// test of Bellare-Garay-Rabin; the challenges are transcript-derived,
// so treat check_bits as an offline grinding bound too). check_bits = 0
// is the plain product *screening* test: fastest, but it verifies a
// strictly weaker, permutation-invariant property — every message in
// the batch was authentically signed AS A SET. It does not check which
// signature sits next to which message: swapping two valid signatures
// leaves both products unchanged and passes, where serial verification
// rejects both items. Callers who need serial-identical verdicts must
// use nonzero check_bits (distinct per-item challenges break the
// permutation symmetry). On product mismatch the batch
// falls back to per-item Montgomery checks in enqueue order, so the
// reported first-failing item — and therefore every Auditor verdict and
// audit log line — is byte-identical to serial verification.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/limb64.h"
#include "crypto/montgomery.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

/// Per-key RSASSA-PKCS1-v1_5 verifier with preallocated working state.
/// Immutable key data is shared through the MontgomeryContextCache; the
/// member buffers make verify() zero-allocation but NOT thread-safe —
/// use one engine per thread (they are cheap: a few KB).
class RsaVerifyEngine {
 public:
  /// True when the key fits the fixed-capacity engine: odd modulus of
  /// 128..4096 bits and a public exponent of 1..64 bits. Keys outside
  /// this range (never produced by generate_rsa_keypair) verify through
  /// the generic BigInt path.
  static bool supports(const RsaPublicKey& key);

  /// Requires supports(key); throws std::invalid_argument otherwise.
  explicit RsaVerifyEngine(const RsaPublicKey& key);

  /// Strict verification, byte-identical to rsa_verify for this key.
  bool verify(std::span<const std::uint8_t> message,
              std::span<const std::uint8_t> signature, HashAlgorithm hash);

  std::size_t modulus_bytes() const { return mod_bytes_; }
  const MontgomeryContext& context() const { return *ctx_; }

 private:
  friend class BatchRsaVerifier;  // reuses the key-normalization logic

  std::shared_ptr<const MontgomeryContext> ctx_;
  std::size_t k_ = 0;          // modulus limbs
  std::size_t mod_bytes_ = 0;  // signature / EM length
  limb64::Limb e_ = 0;         // public exponent (<= 64 bits)
  std::size_t e_bits_ = 0;

  // Working state (member, not stack, so verify() stays cheap to call in
  // a loop and the arrays are sized once against the protocol ceiling).
  limb64::Limb base_[limb64::kMaxProtocolLimbs];
  limb64::Limb acc_[limb64::kMaxProtocolLimbs];
  limb64::Limb t_[limb64::kMaxProtocolLimbs + 2];
  std::uint8_t em_[limb64::kMaxProtocolBytes];
  std::uint8_t expected_[limb64::kMaxProtocolBytes];
};

/// BatchRsaVerifier tuning knobs (namespace scope so the struct can be a
/// defaulted constructor argument, as with RsaSigningPlanConfig).
struct BatchVerifyConfig {
  /// Items per flush; more amortizes the exponent ladder further but
  /// raises the cost of a fallback.
  std::size_t max_batch = 32;
  /// Challenge-exponent width. Soundness error 2^-check_bits against
  /// adversarial batches; 0 = plain product screening, which is
  /// permutation-invariant set authenticity, NOT per-item verdicts (see
  /// the header comment).
  std::size_t check_bits = 16;
};

/// Batched verification of RSASSA-PKCS1-v1_5 signatures under ONE public
/// key. Queue with enqueue(), settle with flush(). Not thread-safe.
class BatchRsaVerifier {
 public:
  using Config = BatchVerifyConfig;

  static bool supports(const RsaPublicKey& key) {
    return RsaVerifyEngine::supports(key);
  }

  /// Requires supports(key); throws std::invalid_argument otherwise.
  explicit BatchRsaVerifier(const RsaPublicKey& key, Config config = {});

  /// Queue one signature. Returns false — without queueing — when the
  /// item is structurally invalid (wrong length, s >= n, modulus too
  /// small for the digest): exactly the cases serial rsa_verify rejects
  /// before exponentiating, so the caller can fail it immediately with
  /// the serial verdict. `tag` is returned by flush() to identify a
  /// failing item (the Auditor passes the sample index).
  bool enqueue(std::size_t tag, std::span<const std::uint8_t> message,
               std::span<const std::uint8_t> signature, HashAlgorithm hash);

  bool full() const { return count_ == config_.max_batch; }
  std::size_t size() const { return count_; }

  /// Settle the queued items. Returns std::nullopt when every item
  /// verifies; otherwise the tag of the FIRST invalid item in enqueue
  /// order (identical to serial verification order). Resets the queue.
  std::optional<std::size_t> flush();

  // Introspection for metrics/tests (plain counts; the Auditor publishes
  // them through the obs registry at commit time).
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t batched_items() const { return batched_items_; }
  std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  /// acc = x^e in the Montgomery domain (one R factor preserved).
  void pow_e(const limb64::Limb* x, limb64::Limb* acc);
  /// First item (enqueue order) whose s^e != m, checked individually.
  std::size_t find_invalid();

  Config config_;
  std::shared_ptr<const MontgomeryContext> ctx_;
  std::size_t k_ = 0;
  std::size_t mod_bytes_ = 0;
  limb64::Limb e_ = 0;
  std::size_t e_bits_ = 0;

  // Queued items in Montgomery form: item i occupies 2k limbs at
  // items_[2ik] — s-hat first, then m-hat (the expected representative).
  std::vector<limb64::Limb> items_;
  std::vector<std::size_t> tags_;
  std::size_t count_ = 0;

  // Fiat-Shamir transcript over (signature || em) of every queued item;
  // the challenge seed for this batch.
  Sha256 transcript_;

  std::uint64_t flushes_ = 0;
  std::uint64_t batched_items_ = 0;
  std::uint64_t fallbacks_ = 0;

  // Working state.
  limb64::Limb p_[limb64::kMaxProtocolLimbs];  // signature-side accumulator
  limb64::Limb q_[limb64::kMaxProtocolLimbs];  // representative-side accumulator
  limb64::Limb acc_[limb64::kMaxProtocolLimbs];
  limb64::Limb work_[limb64::kMaxProtocolLimbs];
  limb64::Limb t_[limb64::kMaxProtocolLimbs + 2];
  std::uint8_t em_[limb64::kMaxProtocolBytes];
  std::vector<std::uint64_t> challenges_;
};

}  // namespace alidrone::crypto
