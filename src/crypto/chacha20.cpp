#include "crypto/chacha20.h"

#include <bit>
#include <stdexcept>

namespace alidrone::crypto {

namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce,
                   std::uint32_t initial_counter)
    : counter_(initial_counter) {
  if (key.size() != kKeySize) throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865u;
  state_[1] = 0x3320646eu;
  state_[2] = 0x79622d32u;
  state_[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + i * 4);
  state_[12] = 0;  // per-block counter filled in block()
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + i * 4);
}

std::array<std::uint8_t, 64> ChaCha20::block(std::uint32_t counter) const {
  std::array<std::uint32_t, 16> x = state_;
  x[12] = counter;
  std::array<std::uint32_t, 16> working = x;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + x[i];
    out[i * 4] = static_cast<std::uint8_t>(v & 0xFF);
    out[i * 4 + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
    out[i * 4 + 2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
    out[i * 4 + 3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
  }
  return out;
}

void ChaCha20::apply(std::span<std::uint8_t> data) {
  for (std::uint8_t& byte : data) {
    if (keystream_pos_ == 64) {
      keystream_ = block(counter_++);
      keystream_pos_ = 0;
    }
    byte ^= keystream_[keystream_pos_++];
  }
}

Bytes ChaCha20::crypt(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> nonce,
                      std::span<const std::uint8_t> data,
                      std::uint32_t initial_counter) {
  Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, initial_counter);
  cipher.apply(out);
  return out;
}

}  // namespace alidrone::crypto
