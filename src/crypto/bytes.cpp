#include "crypto/bytes.h"

#include <stdexcept>

namespace alidrone::crypto {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace alidrone::crypto
