// 64-bit limb kernels for the fixed-capacity bignum core.
//
// Every routine operates on raw little-endian uint64_t limb spans with
// caller-provided storage, so the verify hot path (MontgomeryContext,
// RsaVerifyEngine, BatchRsaVerifier) runs entirely on stack or
// preallocated buffers — zero heap allocations per operation, guarded by
// the counting-operator-new check in bench_verify_throughput. Products
// use 128-bit intermediates; the Montgomery product is the CIOS form of
// REDC (Koc, Acar, Kaliski, "Analyzing and Comparing Montgomery
// Multiplication Algorithms", 1996), which interleaves multiplication
// and reduction in one k-limb pass instead of building the double-width
// product first.
#pragma once

#include <cstddef>
#include <cstdint>

namespace alidrone::crypto::limb64 {

using Limb = std::uint64_t;
#if defined(__SIZEOF_INT128__)
using Wide = unsigned __int128;
#else
#error "limb64 requires a 128-bit integer type"
#endif

/// Protocol ceiling: 4096-bit RSA moduli are 64 limbs. Fixed-capacity
/// buffers in the verify path are sized against this; the engine itself
/// is generic and larger moduli simply spill to heap scratch.
inline constexpr std::size_t kMaxProtocolLimbs = 64;
inline constexpr std::size_t kMaxProtocolBytes = 8 * kMaxProtocolLimbs;

/// Limb count with trailing zeros stripped.
inline std::size_t normalized_size(const Limb* a, std::size_t n) {
  while (n > 0 && a[n - 1] == 0) --n;
  return n;
}

/// Fixed-width compare of two n-limb values: -1, 0 or +1.
inline int cmp_n(const Limb* a, const Limb* b, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// out = a + b over n limbs; returns the carry-out. out may alias a or b.
inline Limb add_n(Limb* out, const Limb* a, const Limb* b, std::size_t n) {
  Limb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Wide sum = static_cast<Wide>(a[i]) + b[i] + carry;
    out[i] = static_cast<Limb>(sum);
    carry = static_cast<Limb>(sum >> 64);
  }
  return carry;
}

/// out = a - b over n limbs; returns the borrow-out. out may alias a or b.
inline Limb sub_n(Limb* out, const Limb* a, const Limb* b, std::size_t n) {
  Limb borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Wide diff = static_cast<Wide>(a[i]) - b[i] - borrow;
    out[i] = static_cast<Limb>(diff);
    borrow = static_cast<Limb>((diff >> 64) & 1);
  }
  return borrow;
}

/// out[0 .. na+nb) = a * b — schoolbook with 128-bit products. Row i
/// writes out[i + nb] exactly once, so the final carry is an assignment.
/// out must not alias a or b.
inline void mul(Limb* out, const Limb* a, std::size_t na, const Limb* b,
                std::size_t nb) {
  for (std::size_t i = 0; i < na + nb; ++i) out[i] = 0;
  for (std::size_t i = 0; i < na; ++i) {
    const Limb ai = a[i];
    Limb carry = 0;
    for (std::size_t j = 0; j < nb; ++j) {
      const Wide cur = static_cast<Wide>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    out[i + nb] = carry;
  }
}

/// -m^-1 mod 2^64 for odd m. Newton-Hensel lifting: the seed is correct
/// to 3 bits and each step doubles that (3 -> 6 -> 12 -> 24 -> 48 -> 96).
inline Limb neg_inverse(Limb m0) {
  Limb inv = m0;
  for (int i = 0; i < 5; ++i) inv *= 2 - m0 * inv;
  return ~inv + 1;
}

/// Read-only view of a Montgomery modulus: k limbs of m plus the
/// precomputed constants, with R = 2^(64k). The pointed-to storage is
/// owned by a MontgomeryContext and outlives the view.
struct Mont {
  std::size_t k = 0;
  Limb m_prime = 0;          ///< -m^-1 mod 2^64
  const Limb* m = nullptr;   ///< modulus, k limbs
  const Limb* r2 = nullptr;  ///< R^2 mod m (to-Montgomery multiplier)
  const Limb* one = nullptr; ///< R mod m (1 in Montgomery form)
};

/// out = a * b * R^-1 mod m for k-limb fixed-width a, b (CIOS). out may
/// alias a or b; t is k + 2 limbs of scratch.
inline void mont_mul(const Mont& mont, const Limb* a, const Limb* b, Limb* out,
                     Limb* t) {
  const std::size_t k = mont.k;
  const Limb* m = mont.m;
  for (std::size_t i = 0; i <= k + 1; ++i) t[i] = 0;
  for (std::size_t i = 0; i < k; ++i) {
    // t += a * b[i]
    const Limb bi = b[i];
    Limb carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const Wide cur = static_cast<Wide>(a[j]) * bi + t[j] + carry;
      t[j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    Wide cur = static_cast<Wide>(t[k]) + carry;
    t[k] = static_cast<Limb>(cur);
    t[k + 1] = static_cast<Limb>(cur >> 64);

    // t = (t + u * m) / 2^64 — u chosen so the low limb cancels.
    const Limb u = t[0] * mont.m_prime;
    cur = static_cast<Wide>(u) * m[0] + t[0];
    carry = static_cast<Limb>(cur >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      cur = static_cast<Wide>(u) * m[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    cur = static_cast<Wide>(t[k]) + carry;
    t[k - 1] = static_cast<Limb>(cur);
    t[k] = t[k + 1] + static_cast<Limb>(cur >> 64);
  }
  // t < 2m, with the overflow bit in t[k]: one conditional subtraction.
  if (t[k] != 0 || cmp_n(t, m, k) >= 0) {
    sub_n(out, t, m, k);
  } else {
    for (std::size_t j = 0; j < k; ++j) out[j] = t[j];
  }
}

/// out = a * R^-1 mod m for a k-limb a (from-Montgomery). Same as
/// mont_mul with b = 1, minus the multiplication pass. out may alias a;
/// t is k + 2 limbs of scratch.
inline void redc(const Mont& mont, const Limb* a, Limb* out, Limb* t) {
  const std::size_t k = mont.k;
  const Limb* m = mont.m;
  for (std::size_t j = 0; j < k; ++j) t[j] = a[j];
  t[k] = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const Limb u = t[0] * mont.m_prime;
    Wide cur = static_cast<Wide>(u) * m[0] + t[0];
    Limb carry = static_cast<Limb>(cur >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      cur = static_cast<Wide>(u) * m[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    cur = static_cast<Wide>(t[k]) + carry;
    t[k - 1] = static_cast<Limb>(cur);
    t[k] = static_cast<Limb>(cur >> 64);
  }
  if (t[k] != 0 || cmp_n(t, m, k) >= 0) {
    sub_n(out, t, m, k);
  } else {
    for (std::size_t j = 0; j < k; ++j) out[j] = t[j];
  }
}

/// Big-endian bytes into n little-endian limbs (zero-padded). Returns
/// false when the value needs more than n limbs.
inline bool from_bytes_be(const std::uint8_t* bytes, std::size_t len, Limb* out,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t byte_index = len - 1 - i;  // from the LS end
    const std::size_t limb = byte_index / 8;
    if (limb >= n) {
      if (bytes[i] != 0) return false;
      continue;
    }
    out[limb] |= static_cast<Limb>(bytes[i]) << (8 * (byte_index % 8));
  }
  return true;
}

/// n limbs into exactly `len` big-endian bytes (zero-padded). Returns
/// false when the value does not fit.
inline bool to_bytes_be(const Limb* a, std::size_t n, std::uint8_t* out,
                        std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) out[i] = 0;
  for (std::size_t i = 0; i < 8 * n; ++i) {
    const std::uint8_t b = static_cast<std::uint8_t>(a[i / 8] >> (8 * (i % 8)));
    if (i < len) {
      out[len - 1 - i] = b;
    } else if (b != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace alidrone::crypto::limb64
