// Probabilistic primality testing and prime generation for RSA keygen.
#pragma once

#include <cstddef>

#include "crypto/bigint.h"
#include "crypto/random.h"

namespace alidrone::crypto {

/// Miller-Rabin with `rounds` random bases (error probability <= 4^-rounds
/// for composites). Handles small values and even numbers exactly.
bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds = 32);

/// Quick composite filter: trial division by primes below 2^16.
/// Returns false when a small factor exists (and n is not that prime).
bool passes_trial_division(const BigInt& n);

/// Uniformly random probable prime with exactly `bits` bits. Candidates
/// are drawn with the top bit set (so p*q has full length) and forced odd.
BigInt generate_prime(std::size_t bits, RandomSource& rng, int mr_rounds = 32);

}  // namespace alidrone::crypto
