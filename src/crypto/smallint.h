// crypto::SmallInt<N> — fixed-capacity, stack-only unsigned bignum.
//
// The value type over the limb64 kernels: little-endian uint64_t
// limbs[N] with an in-place normalized size, no heap anywhere. N is
// chosen per use site against limb64::kMaxProtocolLimbs (64 limbs =
// 4096 bits, the protocol ceiling); operations that would exceed the
// capacity throw rather than silently truncate. Conversion shims to and
// from the general sign/magnitude BigInt live at the API boundary so
// callers pay the translation cost once, outside inner loops.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "crypto/bigint.h"
#include "crypto/limb64.h"

namespace alidrone::crypto {

template <std::size_t N>
class SmallInt {
 public:
  static_assert(N > 0, "SmallInt needs at least one limb");
  using Limb = limb64::Limb;
  static constexpr std::size_t kCapacity = N;

  SmallInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): literal ergonomics.
  SmallInt(std::uint64_t v) {
    if (v != 0) {
      limbs_[0] = v;
      size_ = 1;
    }
  }

  /// From a non-negative BigInt; throws std::length_error when the value
  /// needs more than N limbs and std::domain_error when negative.
  static SmallInt from_big(const BigInt& v) {
    if (v.is_negative()) {
      throw std::domain_error("SmallInt::from_big: negative value");
    }
    SmallInt out;
    v.to_limbs64(out.limbs_, N);
    out.size_ = limb64::normalized_size(out.limbs_, N);
    return out;
  }

  BigInt to_big() const { return BigInt::from_limbs64(limbs_, size_); }

  /// From little-endian limbs; throws std::length_error on overflow.
  static SmallInt from_limbs(const Limb* limbs, std::size_t n) {
    const std::size_t used = limb64::normalized_size(limbs, n);
    if (used > N) {
      throw std::length_error("SmallInt::from_limbs: value does not fit");
    }
    SmallInt out;
    std::copy(limbs, limbs + used, out.limbs_);
    out.size_ = used;
    return out;
  }

  /// From big-endian bytes; throws std::length_error on overflow.
  static SmallInt from_bytes(std::span<const std::uint8_t> be) {
    SmallInt out;
    if (!limb64::from_bytes_be(be.data(), be.size(), out.limbs_, N)) {
      throw std::length_error("SmallInt::from_bytes: value does not fit");
    }
    out.size_ = limb64::normalized_size(out.limbs_, N);
    return out;
  }

  /// Exactly out.size() big-endian bytes, zero-padded on the left;
  /// throws std::length_error when the value does not fit.
  void to_bytes(std::span<std::uint8_t> out) const {
    if (!limb64::to_bytes_be(limbs_, size_, out.data(), out.size())) {
      throw std::length_error("SmallInt::to_bytes: value does not fit");
    }
  }

  bool is_zero() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const Limb* limbs() const { return limbs_; }
  Limb limb(std::size_t i) const { return i < size_ ? limbs_[i] : 0; }

  std::size_t bit_length() const {
    if (size_ == 0) return 0;
    return 64 * size_ - static_cast<std::size_t>(std::countl_zero(limbs_[size_ - 1]));
  }

  int compare(const SmallInt& o) const {
    if (size_ != o.size_) return size_ < o.size_ ? -1 : 1;
    return limb64::cmp_n(limbs_, o.limbs_, size_);
  }

  friend bool operator==(const SmallInt& a, const SmallInt& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const SmallInt& a, const SmallInt& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const SmallInt& a, const SmallInt& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const SmallInt& a, const SmallInt& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const SmallInt& a, const SmallInt& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const SmallInt& a, const SmallInt& b) {
    return a.compare(b) >= 0;
  }

  /// In-place add; throws std::overflow_error past N limbs.
  SmallInt& operator+=(const SmallInt& o) {
    const std::size_t n = std::max(size_, o.size_);
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const limb64::Wide sum =
          static_cast<limb64::Wide>(limb(i)) + o.limb(i) + carry;
      limbs_[i] = static_cast<Limb>(sum);
      carry = static_cast<Limb>(sum >> 64);
    }
    size_ = n;
    if (carry != 0) {
      if (n >= N) throw std::overflow_error("SmallInt: capacity exceeded");
      limbs_[n] = carry;
      size_ = n + 1;
    }
    return *this;
  }

  /// In-place subtract; throws std::underflow_error when o > *this
  /// (SmallInt is unsigned).
  SmallInt& operator-=(const SmallInt& o) {
    if (compare(o) < 0) {
      throw std::underflow_error("SmallInt: negative result");
    }
    Limb borrow = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const limb64::Wide diff =
          static_cast<limb64::Wide>(limbs_[i]) - o.limb(i) - borrow;
      limbs_[i] = static_cast<Limb>(diff);
      borrow = static_cast<Limb>((diff >> 64) & 1);
    }
    size_ = limb64::normalized_size(limbs_, size_);
    return *this;
  }

  friend SmallInt operator+(const SmallInt& a, const SmallInt& b) {
    SmallInt out = a;
    out += b;
    return out;
  }
  friend SmallInt operator-(const SmallInt& a, const SmallInt& b) {
    SmallInt out = a;
    out -= b;
    return out;
  }

 private:
  Limb limbs_[N] = {};
  std::size_t size_ = 0;  ///< normalized limb count (no trailing zeros)
};

/// Full product — the result capacity NA + NB always holds it, so no
/// overflow path exists.
template <std::size_t NA, std::size_t NB>
SmallInt<NA + NB> operator*(const SmallInt<NA>& a, const SmallInt<NB>& b) {
  limb64::Limb prod[NA + NB] = {};
  limb64::mul(prod, a.limbs(), a.size(), b.limbs(), b.size());
  return SmallInt<NA + NB>::from_limbs(prod, a.size() + b.size());
}

}  // namespace alidrone::crypto
