// SHA-1 (FIPS 180-4). Used by the paper's TEE_ALG_RSASSA_PKCS1_V1_5_SHA1
// signature scheme. SHA-1 is cryptographically broken for collision
// resistance; it is implemented here for fidelity to the prototype, and
// SHA-256 is offered (and preferred) alongside it.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.h"

namespace alidrone::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1();

  void update(std::span<const std::uint8_t> data);
  Digest finalize();  ///< One-shot: object must be reset() before reuse.
  void reset();

  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace alidrone::crypto
