// HMAC (RFC 2104) over any of the library's hash classes.
//
// Used by the symmetric-key signing extension (paper Section VII-A1a):
// a drone TEE and the Auditor can establish an ephemeral session key and
// authenticate GPS samples with HMAC instead of per-sample RSA signatures.
#pragma once

#include <span>

#include "crypto/bytes.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

/// Generic HMAC over a FIPS-180-style hash H (Sha1 or Sha256).
template <typename H>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = H::kDigestSize;
  using Digest = typename H::Digest;

  explicit Hmac(std::span<const std::uint8_t> key) {
    Bytes k(key.begin(), key.end());
    if (k.size() > H::kBlockSize) {
      const Digest d = H::hash(k);
      k.assign(d.begin(), d.end());
    }
    k.resize(H::kBlockSize, 0);
    ipad_ = k;
    opad_ = k;
    for (std::size_t i = 0; i < H::kBlockSize; ++i) {
      ipad_[i] ^= 0x36;
      opad_[i] ^= 0x5c;
    }
    reset();
  }

  void reset() {
    inner_.reset();
    inner_.update(ipad_);
  }

  void update(std::span<const std::uint8_t> data) { inner_.update(data); }

  Digest finalize() {
    const Digest inner_digest = inner_.finalize();
    H outer;
    outer.update(opad_);
    outer.update(inner_digest);
    return outer.finalize();
  }

  static Digest mac(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> data) {
    Hmac h(key);
    h.update(data);
    return h.finalize();
  }

 private:
  Bytes ipad_;
  Bytes opad_;
  H inner_;
};

using HmacSha1 = Hmac<Sha1>;
using HmacSha256 = Hmac<Sha256>;

}  // namespace alidrone::crypto
