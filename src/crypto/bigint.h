// Arbitrary-precision integers for the RSA implementation.
//
// Magnitude + sign representation with 32-bit limbs (little-endian limb
// order, 64-bit intermediates). Provides everything RSA needs: comparison,
// add/sub/mul, Knuth-D division, shifts, modular exponentiation (4-bit
// fixed window), gcd / modular inverse, and big-endian byte conversion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bytes.h"

namespace alidrone::crypto {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  /// Parse decimal (default) or hex with "0x" prefix; optional leading '-'.
  static BigInt from_string(std::string_view s);
  /// Big-endian unsigned byte interpretation (as in RSA I2OSP/OS2IP).
  static BigInt from_bytes(std::span<const std::uint8_t> be_bytes);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits in the magnitude (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  /// Big-endian bytes of the magnitude, zero-padded/validated to `length`
  /// if given (throws std::length_error when the value does not fit).
  Bytes to_bytes() const;
  Bytes to_bytes(std::size_t length) const;

  /// 64-bit limbs needed for the magnitude (0 for zero) — the boundary
  /// to the fixed-capacity limb64/SmallInt engine.
  std::size_t limb64_count() const { return (limbs_.size() + 1) / 2; }
  /// Magnitude into out[0..n) as little-endian 64-bit limbs, zero-padded;
  /// throws std::length_error when it needs more than n limbs.
  void to_limbs64(std::uint64_t* out, std::size_t n) const;
  /// Non-negative value from little-endian 64-bit limbs.
  static BigInt from_limbs64(const std::uint64_t* limbs, std::size_t n);

  std::string to_decimal_string() const;
  std::string to_hex_string() const;

  int compare(const BigInt& o) const;  ///< -1, 0, +1 with sign
  int compare_magnitude(const BigInt& o) const;

  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated (C-style) quotient and remainder; remainder has the sign of
  /// the dividend. Throws std::domain_error on division by zero.
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// In-place add/sub reuse this->limbs_ capacity on the common
  /// same-sign (resp. larger-magnitude) paths instead of building a
  /// fresh vector per call; only the sign-flip cases fall back to the
  /// copying operator.
  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  struct DivMod;
  DivMod divmod(const BigInt& divisor) const;

  /// Non-negative residue in [0, m); m must be positive.
  BigInt mod(const BigInt& m) const;

  /// (this ^ exponent) mod m; exponent >= 0, m > 0.
  BigInt mod_pow(const BigInt& exponent, const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Modular inverse in [1, m); throws std::domain_error when gcd != 1.
  BigInt mod_inverse(const BigInt& m) const;

  /// Convenience for small divisors; divisor in (0, 2^32).
  std::uint32_t mod_u32(std::uint32_t divisor) const;

 private:
  friend class MontgomeryContext;  // limb-level access for REDC

  // Little-endian limbs of the magnitude; no trailing zero limbs.
  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;

  void trim();
  // In-place magnitude helpers behind operator+=/-=; sub requires
  // |this| >= |b|. Both are safe when b aliases this->limbs_.
  void add_mag_inplace(const std::vector<std::uint32_t>& b);
  void sub_mag_inplace(const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static int cmp_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace alidrone::crypto
