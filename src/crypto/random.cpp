#include "crypto/random.h"

#include <cassert>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

Bytes RandomSource::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t RandomSource::next_u64() {
  std::uint8_t buf[8];
  fill(buf);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
  return v;
}

std::uint64_t RandomSource::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("RandomSource::uniform: zero bound");
  // Rejection sampling over the largest multiple of bound below 2^64.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double RandomSource::uniform_double() {
  // 53 uniform bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

BigInt RandomSource::random_bits(std::size_t bits) {
  if (bits == 0) return BigInt();
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes buf = bytes(nbytes);
  // Clear excess leading bits, then set the top bit so the bit length is
  // exactly `bits`.
  const std::size_t excess = nbytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return BigInt::from_bytes(buf);
}

BigInt RandomSource::random_range(const BigInt& min, const BigInt& max) {
  if (min > max) throw std::invalid_argument("RandomSource::random_range: min > max");
  const BigInt span = max - min + BigInt(1);
  const std::size_t bits = span.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  // Rejection sampling: draw `bits`-wide values until one is below span.
  for (;;) {
    Bytes buf = bytes(nbytes);
    const std::size_t excess = nbytes * 8 - bits;
    buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
    const BigInt candidate = BigInt::from_bytes(buf);
    if (candidate < span) return min + candidate;
  }
}

void SecureRandom::fill(std::span<std::uint8_t> out) {
  static thread_local std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (!urandom.good()) throw std::runtime_error("SecureRandom: cannot open /dev/urandom");
  urandom.read(reinterpret_cast<char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
  if (urandom.gcount() != static_cast<std::streamsize>(out.size())) {
    throw std::runtime_error("SecureRandom: short read from /dev/urandom");
  }
}

DeterministicRandom::DeterministicRandom(std::uint64_t seed) {
  Bytes seed_bytes(8);
  for (int i = 0; i < 8; ++i) {
    seed_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((seed >> (56 - 8 * i)) & 0xFF);
  }
  const Sha256::Digest d = Sha256::hash(seed_bytes);
  key_.assign(d.begin(), d.end());
  nonce_.assign(ChaCha20::kNonceSize, 0);
}

DeterministicRandom::DeterministicRandom(std::string_view seed) {
  const Sha256::Digest d = Sha256::hash(seed);
  key_.assign(d.begin(), d.end());
  nonce_.assign(ChaCha20::kNonceSize, 0);
}

void DeterministicRandom::refill() {
  const ChaCha20 cipher(key_, nonce_);
  const auto block = cipher.block(static_cast<std::uint32_t>(block_counter_++));
  pool_.assign(block.begin(), block.end());
  pool_pos_ = 0;
  if (block_counter_ > 0xFFFFFFFFull) {
    // Counter exhausted: ratchet the key and restart the counter.
    const Sha256::Digest d = Sha256::hash(key_);
    key_.assign(d.begin(), d.end());
    block_counter_ = 0;
  }
}

bool DeterministicRandom::claim_current_thread() {
  if (owner_ == std::thread::id()) owner_ = std::this_thread::get_id();
  return owner_ == std::this_thread::get_id();
}

DeterministicRandom DeterministicRandom::fork(std::uint64_t stream) const {
  // Child seed = this stream's key material || the big-endian stream
  // index; the string_view constructor hashes it into a fresh key.
  Bytes material = key_;
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>((stream >> (56 - 8 * i)) & 0xFF));
  }
  return DeterministicRandom(std::string_view(
      reinterpret_cast<const char*>(material.data()), material.size()));
}

void DeterministicRandom::fill(std::span<std::uint8_t> out) {
  assert(claim_current_thread() &&
         "DeterministicRandom is not thread-safe: fork() per-thread streams "
         "instead of sharing one instance");
  std::size_t written = 0;
  while (written < out.size()) {
    if (pool_pos_ >= pool_.size()) refill();
    const std::size_t take = std::min(out.size() - written, pool_.size() - pool_pos_);
    std::memcpy(out.data() + written, pool_.data() + pool_pos_, take);
    pool_pos_ += take;
    written += take;
  }
}

}  // namespace alidrone::crypto
